package toorjah

import (
	"fmt"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/source"
)

// UnionQuery is a prepared union of conjunctive queries (UCQ). Each
// disjunct gets its own optimized plan; execution unions the answers. This
// is the UCQ extension sketched in Section II of the paper (the answer to a
// union is the union of the answers to its CQs).
type UnionQuery struct {
	sys     *System
	queries []*Query
	name    string
	arity   int
}

// PrepareUCQ parses and prepares a union of conjunctive queries, one
// disjunct per line, all sharing the head predicate and arity.
func (s *System) PrepareUCQ(text string) (*UnionQuery, error) {
	u, err := cq.ParseUCQ(text)
	if err != nil {
		return nil, err
	}
	out := &UnionQuery{sys: s, name: u.Name, arity: u.Arity()}
	for _, d := range u.Disjuncts {
		q, err := s.PrepareCQ(d)
		if err != nil {
			return nil, fmt.Errorf("disjunct %s: %w", d, err)
		}
		out.queries = append(out.queries, q)
	}
	return out, nil
}

// Disjuncts returns the prepared per-disjunct queries.
func (u *UnionQuery) Disjuncts() []*Query { return u.queries }

// Answerable reports whether at least one disjunct is answerable.
func (u *UnionQuery) Answerable() bool {
	for _, q := range u.queries {
		if q.Answerable() {
			return true
		}
	}
	return false
}

// Execute runs every answerable disjunct with the fast-failing strategy and
// unions the answers; per-relation statistics are summed over disjuncts
// (each disjunct's plan runs independently, as in the paper's per-CQ
// treatment).
func (u *UnionQuery) Execute() (*Result, error) {
	union := datalog.NewRelation(u.name, u.arity)
	stats := make(map[string]source.Stats)
	out := &Result{Answers: union, Stats: stats}
	for _, q := range u.queries {
		r, err := q.Execute()
		if err != nil {
			return nil, err
		}
		for _, t := range r.Answers.Tuples() {
			union.Insert(t)
		}
		for rel, st := range r.Stats {
			cur := stats[rel]
			cur.Accesses += st.Accesses
			cur.Tuples += st.Tuples
			stats[rel] = cur
		}
		out.Elapsed += r.Elapsed
	}
	return out, nil
}
