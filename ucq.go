package toorjah

import (
	"context"
	"fmt"
	"time"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/exec"
	"toorjah/internal/source"
)

// UnionQuery is a prepared union of conjunctive queries (UCQ). Each
// disjunct gets its own optimized plan; execution unions the answers — the
// UCQ extension sketched in Section II of the paper (the answer to a union
// is the union of the answers to its CQs). Disjuncts are independent
// extractions over the same sources, so the concurrent entry points
// (Execute, ExecuteOpts, ExecuteNaive, Stream) run them in parallel with
// bounded concurrency; with a cross-query cache configured (WithCache /
// WithSharedCache), identical probes issued by overlapping disjuncts
// collapse into a single source access, so parallelism never costs extra
// accesses over the sequential loop. Every entry point pins one snapshot
// of the sources for the whole union, so all disjuncts — and therefore the
// union answer — evaluate over a single data version even while writers
// ingest into the relations.
type UnionQuery struct {
	sys     *System
	queries []*Query
	name    string
	arity   int

	// MaxConcurrent bounds how many disjuncts execute at once in the
	// concurrent entry points; 0 means runtime.GOMAXPROCS(0), negative
	// means one at a time.
	MaxConcurrent int
}

// PrepareUCQ parses and prepares a union of conjunctive queries, one
// disjunct per line, all sharing the head predicate and arity.
func (s *System) PrepareUCQ(text string) (*UnionQuery, error) {
	u, err := cq.ParseUCQ(text)
	if err != nil {
		return nil, err
	}
	return s.PrepareUCQFrom(u)
}

// PrepareUCQFrom is PrepareUCQ for an already-parsed union.
func (s *System) PrepareUCQFrom(u *UCQ) (*UnionQuery, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	out := &UnionQuery{sys: s, name: u.Name, arity: u.Arity()}
	for _, d := range u.Disjuncts {
		q, err := s.PrepareCQ(d)
		if err != nil {
			return nil, fmt.Errorf("disjunct %s: %w", d, err)
		}
		out.queries = append(out.queries, q)
	}
	return out, nil
}

// Disjuncts returns the prepared per-disjunct queries.
func (u *UnionQuery) Disjuncts() []*Query { return u.queries }

// Answerable reports whether at least one disjunct is answerable.
func (u *UnionQuery) Answerable() bool {
	for _, q := range u.queries {
		if q.Answerable() {
			return true
		}
	}
	return false
}

// unionOpts builds the runner options shared by the concurrent entry
// points.
func (u *UnionQuery) unionOpts(ctx context.Context) exec.UnionOptions {
	return exec.UnionOptions{MaxConcurrent: u.MaxConcurrent, Ctx: ctx}
}

// disjunctRuns adapts one per-Query execution function into the runner's
// disjunct slice; call receives the runner's derived context, which it must
// thread into the executor options.
func (u *UnionQuery) disjunctRuns(call func(q *Query, ctx context.Context, emit func(datalog.Tuple)) (*Result, error)) []exec.DisjunctRun {
	runs := make([]exec.DisjunctRun, len(u.queries))
	for i, q := range u.queries {
		q := q
		runs[i] = func(ctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
			return call(q, ctx, emit)
		}
	}
	return runs
}

// Execute runs every disjunct's fast-failing ⊂-minimal strategy
// concurrently and unions the answers.
func (u *UnionQuery) Execute() (*Result, error) {
	return u.ExecuteOpts(Options{})
}

// ExecuteOpts is Execute with ablation options: the disjuncts run
// concurrently (bounded by MaxConcurrent) over the shared registry and the
// system's cross-query cache. Per-relation statistics merge via
// source.Stats.Add over disjuncts — accesses, source round trips (Batches)
// and extracted tuples all survive — and Truncated/EarlyEmpty are OR-ed: a
// cancelled Options.Ctx yields a truncated, sound subset of the obtainable
// union, exactly as with the CQ executors. Elapsed and TimeToFirst are
// wall-clock times of the whole union.
func (u *UnionQuery) ExecuteOpts(opts Options) (*Result, error) {
	pinned := u.sys.reg.Snapshot() // one data version for every disjunct
	runs := u.disjunctRuns(func(q *Query, ctx context.Context, _ func(datalog.Tuple)) (*Result, error) {
		o := opts
		o.Ctx = ctx
		return q.executeOn(pinned, o)
	})
	return exec.Union(u.name, u.arity, runs, u.unionOpts(opts.Ctx), nil)
}

// ExecuteNaive runs the reference algorithm of the paper's Fig. 1 on every
// disjunct, concurrently, and unions the answers.
func (u *UnionQuery) ExecuteNaive() (*Result, error) {
	return u.ExecuteNaiveOpts(Options{})
}

// ExecuteNaiveOpts is ExecuteNaive with options (Cache, MaxBatch, Ctx).
func (u *UnionQuery) ExecuteNaiveOpts(opts Options) (*Result, error) {
	pinned := u.sys.reg.Snapshot()
	runs := u.disjunctRuns(func(q *Query, ctx context.Context, _ func(datalog.Tuple)) (*Result, error) {
		o := opts
		o.Ctx = ctx
		return q.executeNaiveOn(pinned, o)
	})
	return exec.Union(u.name, u.arity, runs, u.unionOpts(opts.Ctx), nil)
}

// Stream runs every disjunct's pipelined engine concurrently; onAnswer is
// invoked exactly once per distinct union answer, the moment the first
// disjunct derives it (cross-disjunct deduplication). Calls to onAnswer are
// serialized — never concurrent — so a single-threaded sink (an HTTP
// response, a terminal) needs no locking. opts.Limit caps the distinct
// union answers; opts.Ctx (or opts.Options.Ctx) cancels the whole union
// into a truncated sound subset.
func (u *UnionQuery) Stream(opts PipeOptions, onAnswer func(Tuple)) (*Result, error) {
	pinned := u.sys.reg.Snapshot()
	runs := u.disjunctRuns(func(q *Query, ctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
		o := opts
		o.Ctx = ctx
		return q.streamOn(pinned, o, emit)
	})
	ctx := opts.Ctx
	if ctx == nil {
		ctx = opts.Options.Ctx
	}
	uo := u.unionOpts(ctx)
	uo.Limit = opts.Limit
	return exec.Union(u.name, u.arity, runs, uo, onAnswer)
}

// ExecuteSequential runs the disjuncts one at a time with the fast-failing
// strategy — the historical UCQ loop, kept for measurement against the
// concurrent Execute (the benchmarks compare them under source latency).
// The merge is the same as ExecuteOpts: stats via source.Stats.Add, flags
// OR-ed, wall-clock Elapsed/TimeToFirst; a cancelled Options.Ctx stops
// between (and inside) disjuncts with a truncated sound subset.
func (u *UnionQuery) ExecuteSequential(opts Options) (*Result, error) {
	start := time.Now()
	pinned := u.sys.reg.Snapshot() // one data version across the loop too
	union := datalog.NewRelation(u.name, u.arity)
	stats := make(map[string]source.Stats)
	out := &Result{Answers: union, Stats: stats}
	for _, q := range u.queries {
		if ctxDone(opts.Ctx) {
			out.Truncated = true
			break
		}
		r, err := q.executeOn(pinned, opts)
		if err != nil {
			return nil, err
		}
		for _, t := range r.Answers.Tuples() {
			if union.Insert(t) && out.TimeToFirst == 0 {
				out.TimeToFirst = time.Since(start)
			}
		}
		for rel, st := range r.Stats {
			cur := stats[rel]
			cur.Add(st)
			stats[rel] = cur
		}
		out.Truncated = out.Truncated || r.Truncated
		out.EarlyEmpty = out.EarlyEmpty || r.EarlyEmpty
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// ctxDone reports whether a (possibly nil) context has been cancelled.
func ctxDone(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
