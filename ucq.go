package toorjah

import (
	"context"
	"fmt"
	"time"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/source"
)

// UnionQuery is a prepared union of conjunctive queries (UCQ). Each
// disjunct gets its own optimized plan; execution unions the answers — the
// UCQ extension sketched in Section II of the paper (the answer to a union
// is the union of the answers to its CQs). Disjuncts are independent
// extractions over the same sources, so the concurrent entry points
// (Execute, ExecuteOpts, ExecuteNaive, Stream) run them in parallel with
// bounded concurrency; with a cross-query cache configured (WithCache /
// WithSharedCache), identical probes issued by overlapping disjuncts
// collapse into a single source access, so parallelism never costs extra
// accesses over the sequential loop. Every entry point pins one snapshot
// of the sources for the whole union, so all disjuncts — and therefore the
// union answer — evaluate over a single data version even while writers
// ingest into the relations.
type UnionQuery struct {
	sys     *System
	queries []*Query
	name    string
	arity   int

	// MaxConcurrent bounds how many disjuncts execute at once in the
	// concurrent entry points; 0 means runtime.GOMAXPROCS(0), negative
	// means one at a time.
	MaxConcurrent int
}

// PrepareUCQ parses and prepares a union of conjunctive queries, one
// disjunct per line, all sharing the head predicate and arity.
func (s *System) PrepareUCQ(text string) (*UnionQuery, error) {
	u, err := cq.ParseUCQ(text)
	if err != nil {
		return nil, err
	}
	return s.PrepareUCQFrom(u)
}

// PrepareUCQFrom is PrepareUCQ for an already-parsed union.
func (s *System) PrepareUCQFrom(u *UCQ) (*UnionQuery, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	out := &UnionQuery{sys: s, name: u.Name, arity: u.Arity()}
	for _, d := range u.Disjuncts {
		q, err := s.PrepareCQ(d)
		if err != nil {
			return nil, fmt.Errorf("disjunct %s: %w", d, err)
		}
		out.queries = append(out.queries, q)
	}
	return out, nil
}

// Disjuncts returns the prepared per-disjunct queries.
func (u *UnionQuery) Disjuncts() []*Query { return u.queries }

// Answerable reports whether at least one disjunct is answerable.
func (u *UnionQuery) Answerable() bool {
	for _, q := range u.queries {
		if q.Answerable() {
			return true
		}
	}
	return false
}

// ExecuteOpts runs every disjunct's fast-failing strategy concurrently
// with ablation options.
//
// Deprecated: use Execute(ctx, WithExecOptions(opts)).
func (u *UnionQuery) ExecuteOpts(opts Options) (*Result, error) {
	return u.Execute(context.Background(), WithExecOptions(opts))
}

// ExecuteNaive runs the reference algorithm of the paper's Fig. 1 on every
// disjunct, concurrently, and unions the answers.
//
// Deprecated: use Execute(ctx, WithExecutor(ExecutorNaive)).
func (u *UnionQuery) ExecuteNaive() (*Result, error) {
	return u.Execute(context.Background(), WithExecutor(ExecutorNaive))
}

// ExecuteNaiveOpts is ExecuteNaive with options.
//
// Deprecated: use Execute(ctx, WithExecutor(ExecutorNaive),
// WithExecOptions(opts)).
func (u *UnionQuery) ExecuteNaiveOpts(opts Options) (*Result, error) {
	return u.Execute(context.Background(),
		WithExecutor(ExecutorNaive), WithExecOptions(opts))
}

// Stream runs every disjunct's pipelined engine concurrently; onAnswer is
// invoked exactly once per distinct union answer.
//
// Deprecated: use Execute(ctx, OnAnswer(onAnswer)) — OnAnswer alone
// selects the pipelined engine.
func (u *UnionQuery) Stream(opts PipeOptions, onAnswer func(Tuple)) (*Result, error) {
	return u.Execute(opts.Ctx, WithExecutor(ExecutorPipelined),
		WithExecOptions(opts.flatten()), OnAnswer(onAnswer))
}

// ExecuteSequential runs the disjuncts one at a time with the fast-failing
// strategy — the historical UCQ loop, kept for measurement against the
// concurrent Execute (the benchmarks compare them under source latency).
// The merge is the same as Execute's: stats via source.Stats.Add, flags
// OR-ed, wall-clock Elapsed/TimeToFirst; a cancelled ctx stops between
// (and inside) disjuncts with a truncated sound subset.
func (u *UnionQuery) ExecuteSequential(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	pinned := u.sys.reg.Snapshot() // one data version across the loop too
	union := datalog.NewRelation(u.name, u.arity)
	stats := make(map[string]source.Stats)
	out := &Result{Answers: union, Stats: stats}
	for _, q := range u.queries {
		if ctx.Err() != nil {
			out.Truncated = true
			break
		}
		r, err := q.executeWith(ctx, pinned, execConfig{opts: opts})
		if err != nil {
			return nil, err
		}
		for _, t := range r.Answers.Tuples() {
			if union.Insert(t) && out.TimeToFirst == 0 {
				out.TimeToFirst = time.Since(start)
			}
		}
		for rel, st := range r.Stats {
			cur := stats[rel]
			cur.Add(st)
			stats[rel] = cur
		}
		out.Truncated = out.Truncated || r.Truncated
		out.EarlyEmpty = out.EarlyEmpty || r.EarlyEmpty
	}
	out.Elapsed = time.Since(start)
	return out, nil
}
