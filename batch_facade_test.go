package toorjah

import (
	"context"
	"strings"
	"testing"
)

// newExample1System builds the quickstart system with the given options.
func newExample1System(t *testing.T, opts ...SystemOption) *System {
	t.Helper()
	sch, err := ParseSchema(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(sch, opts...)
	bind := func(name string, rows ...Row) {
		if err := sys.BindRows(name, rows...); err != nil {
			t.Fatal(err)
		}
	}
	bind("r1", Row{"modugno", "italy", "1928"}, Row{"madonna", "usa", "1958"}, Row{"dylan", "usa", "1941"})
	bind("r2", Row{"volare", "1958", "modugno"}, Row{"vogue", "1990", "madonna"}, Row{"hurricane", "1976", "dylan"})
	bind("r3", Row{"madonna", "like_a_virgin"}, Row{"dylan", "desire"})
	return sys
}

// TestWithMaxBatch: the facade threads the batch bound into every
// execution; answers and access counts are invariant, only the number of
// source round trips changes.
func TestWithMaxBatch(t *testing.T) {
	const queryText = "q(N) :- r1(A, N, Y1), r2(volare, Y2, A)"
	run := func(opts ...SystemOption) *Result {
		t.Helper()
		sys := newExample1System(t, opts...)
		q, err := sys.Prepare(queryText)
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	batched := run() // default: batching on
	unbatched := run(WithMaxBatch(-1))
	if got, want := strings.Join(batched.SortedAnswers(), ";"), strings.Join(unbatched.SortedAnswers(), ";"); got != want {
		t.Errorf("answers differ: batched %q, unbatched %q", got, want)
	}
	if batched.TotalAccesses() != unbatched.TotalAccesses() {
		t.Errorf("batching changed the access count: %d vs %d",
			batched.TotalAccesses(), unbatched.TotalAccesses())
	}
	if unbatched.TotalBatches() != unbatched.TotalAccesses() {
		t.Errorf("WithMaxBatch(-1): %d round trips for %d accesses, want equal",
			unbatched.TotalBatches(), unbatched.TotalAccesses())
	}
	if batched.TotalBatches() > batched.TotalAccesses() {
		t.Errorf("batched run has more round trips (%d) than accesses (%d)",
			batched.TotalBatches(), batched.TotalAccesses())
	}
}
