// The handler-hygiene fixture declares handler-shaped functions with
// unbounded body reads and discarded response writes, next to the
// corrected forms. Helpers that are not handlers are out of scope.
package handfixture

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// BadBody reads the request body unbounded.
func BadBody(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body) // want `without http\.MaxBytesReader`
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := w.Write(data); err != nil {
		return
	}
}

// BadWrites drops every write error.
func BadWrites(w http.ResponseWriter, r *http.Request) {
	enc := json.NewEncoder(w)
	enc.Encode(map[string]int{"answers": 1}) // want `response write discards its error`
	io.WriteString(w, "done\n")              // want `response write discards its error`
	fmt.Fprintln(w, "bye")                   // want `response write discards its error`
}

// BadNested drops a write error inside a streaming callback closure.
func BadNested(w http.ResponseWriter, r *http.Request) {
	stream := func(v any) {
		json.NewEncoder(w).Encode(v) // want `response write discards its error`
	}
	stream(1)
}

// GoodHandler bounds the body and checks every write.
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	data, err := io.ReadAll(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := json.NewEncoder(w).Encode(len(data)); err != nil {
		return
	}
}

// GoodReplace rebinds the body behind the cap before decoding.
func GoodReplace(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	defer r.Body.Close()
	var v any
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// GoodNested checks the write error inside the closure.
func GoodNested(w http.ResponseWriter, r *http.Request) {
	stream := func(v any) bool {
		return json.NewEncoder(w).Encode(v) == nil
	}
	stream(1)
}

// notAHandler is ordinary code; fmt writes to arbitrary writers are fine.
func notAHandler(w io.Writer) {
	fmt.Fprintln(w, "not a handler")
}
