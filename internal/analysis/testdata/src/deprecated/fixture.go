// The no-deprecated-shims fixture declares its own deprecated surface and
// exercises every way of (not) being allowed to touch it.
package depfixture

// Old is the pre-context entry point.
//
// Deprecated: use New.
func Old() int { return 1 }

// New is the replacement.
func New() int { return 2 }

// LegacyOptions configured the old entry point.
//
// Deprecated: use New's arguments.
type LegacyOptions struct{}

// BadCall references a deprecated function.
func BadCall() int {
	return Old() // want `reference to deprecated Old`
}

// BadType references a deprecated type.
func BadType() any {
	return LegacyOptions{} // want `reference to deprecated LegacyOptions`
}

// OldChain is itself deprecated, so it may use the deprecated surface.
//
// Deprecated: use New.
func OldChain() int {
	return Old()
}

// AllowedCall is suppressed by an explicit annotation.
//
//toorjahvet:allow no-deprecated-shims (fixture: annotated exception)
func AllowedCall() int {
	return Old()
}

// GoodCall uses the supported surface.
func GoodCall() int {
	return New()
}
