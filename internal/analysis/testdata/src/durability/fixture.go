// The durability-hygiene fixture poses as internal/wal and exercises both
// rules: discarded write-path errors (bare statements, blank assignments,
// defers) and write sites with no fsync in their function — next to the
// corrected forms and a documented //toorjahvet:allow exemption, which
// must all stay silent.
package walfixture

import "os"

// BadBareSync drops the fsync error on the floor.
func BadBareSync(f *os.File) {
	f.Sync() // want `error discarded by a call statement`
}

// BadBlankWrite blanks the write error; the sync below keeps rule 2 quiet
// so the blank assignment is the only finding.
func BadBlankWrite(f *os.File, b []byte) error {
	_, _ = f.Write(b) // want `error assigned to the blank identifier`
	return f.Sync()
}

// BadDeferClose defers a close whose error vanishes with the frame.
func BadDeferClose(f *os.File) error {
	defer f.Close() // want `error discarded by a defer`
	return f.Sync()
}

// BadBareTruncate discards the package-level truncate error.
func BadBareTruncate(path string) {
	os.Truncate(path, 0) // want `error discarded by a call statement`
}

// BadWriteNoSync checks the write error but never reaches the disk: the
// bytes can sit in the page cache past the function's durability promise.
func BadWriteNoSync(f *os.File, b []byte) error {
	_, err := f.Write(b) // want `without an fsync in BadWriteNoSync`
	return err
}

// BadCreateNoSync mints a writable file nothing ever flushes.
func BadCreateNoSync(path string) (*os.File, error) {
	return os.Create(path) // want `without an fsync in BadCreateNoSync`
}

// GoodChecked checks every failure on the write path and syncs.
func GoodChecked(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// GoodPropagated forwards the write result to the caller; returning an
// error is checking it.
func GoodPropagated(f *os.File, b []byte) (int, error) {
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return f.Write(b)
}

// GoodAllowed documents why the close error cannot matter.
func GoodAllowed(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		//toorjahvet:allow durability-hygiene (the write already failed; the close error cannot improve on it)
		_ = f.Close()
		return err
	}
	return f.Sync()
}

// GoodReadOnly reads; there is nothing to flush.
func GoodReadOnly(path string) ([]byte, error) {
	return os.ReadFile(path)
}
