// The snapshot-discipline fixture lives outside internal/storage and
// reads tables both ways: unpinned (flagged) and through a pinned
// snapshot (fine). Mutations are not reads and stay unflagged.
package snapfixture

import "toorjah/internal/storage"

// BadLen reads through the unpinned convenience surface.
func BadLen(t *storage.Table) int {
	return t.Len() // want `unpinned Table\.Len`
}

// BadRows re-loads the current snapshot per call.
func BadRows(t *storage.Table) []storage.Row {
	return t.Rows() // want `unpinned Table\.Rows`
}

// BadSelect does too.
func BadSelect(t *storage.Table, vals []string) []storage.Row {
	return t.Select([]int{0}, vals) // want `unpinned Table\.Select`
}

// GoodPinned pins one version and reads everything from it.
func GoodPinned(t *storage.Table) (int, []storage.Row) {
	snap := t.Snapshot()
	return snap.Len(), snap.Rows()
}

// GoodMutate mutates, which is not a read.
func GoodMutate(t *storage.Table, r storage.Row) bool {
	return t.Insert(r)
}

// GoodEpoch reads the version stamp, which is snapshot-consistent.
func GoodEpoch(t *storage.Table) uint64 {
	return t.Epoch()
}
