// The ctx-first fixture is loaded as a library package (non-main), where
// both rules apply: context.Context first in exported signatures, no
// manufactured root contexts.
package ctxfixture

import "context"

func helper(ctx context.Context) {}

// BadOrder takes the context in the wrong position.
func BadOrder(name string, ctx context.Context) { // want `context must come first`
	helper(ctx)
}

// BadRoot manufactures a root context.
func BadRoot() {
	helper(context.Background()) // want `thread the caller's context`
}

// BadTODO is no better.
func BadTODO() {
	helper(context.TODO()) // want `thread the caller's context`
}

// GoodOrder threads the caller's context.
func GoodOrder(ctx context.Context, name string) {
	helper(ctx)
}

// GoodFallback uses the nil-fallback reassignment idiom, which is allowed.
func GoodFallback(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// OldEntry is a quarantined compatibility shim.
//
// Deprecated: use GoodOrder.
func OldEntry() {
	helper(context.Background())
}

// Shimmed implements a contextless interface.
//
//toorjahvet:allow ctx-first (fixture: annotated interface shim)
func Shimmed() {
	helper(context.Background())
}
