// The hotpath-strings fixture poses as toorjah/internal/exec (the test
// loads it at that import path), so the analyzer treats it as hot-path
// code against the real sym and storage packages.
package exec

import (
	"fmt"
	"strings"

	"toorjah/internal/storage"
	"toorjah/internal/sym"
)

// BadKey round-trips IDs through strings to build a key.
func BadKey(ids []sym.ID) string {
	parts := sym.Strs(ids)          // want `materializes symbol IDs`
	return strings.Join(parts, ",") // want `builds a joined string key`
}

// BadFmt renders an ID through fmt.
func BadFmt(id sym.ID) string {
	return fmt.Sprintf("%d", id) // want `builds a string through fmt`
}

// BadRow materializes a stored row outside any boundary.
func BadRow(r storage.IRow) []string {
	return r.Strings() // want `materializes row strings`
}

// GoodKey packs IDs without materialization.
func GoodKey(ids []sym.ID) string {
	return sym.Key(ids)
}

// IDList's String renders for debugging; stringer methods are exempt.
type IDList []sym.ID

func (l IDList) String() string {
	return strings.Join(sym.Strs(l), ",")
}

// Render is a sanctioned result boundary.
//
//toorjahvet:boundary (fixture: the marked exit point)
func Render(r storage.IRow) []string {
	return r.Strings()
}

// GoodPanic formats only inside the panic argument.
func GoodPanic(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
}

// Allowed is suppressed by an explicit annotation.
//
//toorjahvet:allow hotpath-strings (fixture: annotated exception)
func Allowed(id sym.ID) string {
	return sym.Str(id)
}
