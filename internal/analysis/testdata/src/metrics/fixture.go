// The metrics-hygiene fixture registers metric families both ways: with
// constant toorjah_-prefixed names and real help (fine), and with dynamic
// names, foreign prefixes, or missing help (flagged).
package metfixture

import (
	"fmt"

	"toorjah/internal/obs"
)

const goodName = "toorjah_fixture_ops_total"

// GoodConstants registers well-formed families, including via a named
// constant and concatenation of constants.
func GoodConstants(r *obs.Registry) {
	r.Counter("toorjah_fixture_hits_total", "hits observed by the fixture")
	r.Counter(goodName, "ops observed by the fixture")
	r.Gauge("toorjah_"+"fixture_depth", "queue depth")
	r.CounterVec("toorjah_fixture_errs_total", "errors by kind", "kind")
	r.Histogram("toorjah_fixture_latency_seconds", "request latency", obs.LatencyBuckets)
	r.GaugeFunc("toorjah_fixture_uptime_seconds", "uptime", func() float64 { return 1 })
}

// GoodClosureHelper forwards constants through a local helper closure; the
// call sites stay in this declaration, so the names remain auditable.
func GoodClosureHelper(r *obs.Registry) {
	counter := func(name, help string) { r.Counter(name, help) }
	counter("toorjah_fixture_a_total", "a events")
	counter("toorjah_fixture_b_total", "b events")
}

// BadDynamicName mints a family per value — cardinality in the name.
func BadDynamicName(r *obs.Registry, shard int) {
	r.Counter(fmt.Sprintf("toorjah_shard_%d_total", shard), "per-shard ops") // want `not a compile-time constant`
}

// BadPrefix registers outside the repo's namespace.
func BadPrefix(r *obs.Registry) {
	r.Gauge("queue_depth", "queue depth") // want `outside the toorjah_ namespace`
}

// BadEmptyHelp leaves the # HELP line blank.
func BadEmptyHelp(r *obs.Registry) {
	r.Counter("toorjah_fixture_undoc_total", "") // want `empty help`
}

// BadDynamicHelp computes the help string at run time.
func BadDynamicHelp(r *obs.Registry, origin string) {
	r.Gauge("toorjah_fixture_origin", "from "+origin) // want `help passed to Registry\.Gauge is not a compile-time constant`
}

// BadVecName applies to the vec surface too.
func BadVecName(r *obs.Registry, name string) {
	r.HistogramVec(name, "latency by relation", obs.LatencyBuckets, "rel") // want `name passed to Registry\.HistogramVec is not a compile-time constant`
}
