// The pool-hygiene fixture returns values to a sync.Pool with and without
// clearing them first.
package poolfixture

import "sync"

type bindSet map[string]struct{}

// Clear empties the set, keeping its buckets.
func (s bindSet) Clear() { clear(s) }

var pool = sync.Pool{New: func() any { return make(bindSet) }}

// BadPut recycles a dirty set.
func BadPut(s bindSet) {
	pool.Put(s) // want `Put without clearing`
}

// GoodPut clears through the method first.
func GoodPut(s bindSet) {
	s.Clear()
	pool.Put(s)
}

// GoodBuiltin clears through the builtin first.
func GoodBuiltin(s bindSet) {
	clear(s)
	pool.Put(s)
}
