package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HandlerHygiene hardens the HTTP surface: in every handler-shaped
// function — a FuncDecl or FuncLit taking (http.ResponseWriter,
// *http.Request) — the request body may only be consumed through
// http.MaxBytesReader (or closed), and no write to the response stream
// may discard its error. Streaming NDJSON makes the second rule
// load-bearing: a dropped Encode error turns a disconnected client into
// silently truncated results.
var HandlerHygiene = &Analyzer{
	Name: "handler-hygiene",
	Doc:  "handler bodies wrap reads in MaxBytesReader and check every response-write error",
	Run:  runHandlerHygiene,
}

func runHandlerHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && isHandlerSig(funcDeclSig(pass, fn)) {
					checkHandler(pass, fn.Type.Params, fn.Body)
				}
			case *ast.FuncLit:
				if sig, _ := pass.Pkg.Info.Types[fn].Type.(*types.Signature); isHandlerSig(sig) {
					checkHandler(pass, fn.Type.Params, fn.Body)
				}
			}
			return true
		})
	}
}

func funcDeclSig(pass *Pass, fd *ast.FuncDecl) *types.Signature {
	if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return fn.Signature()
	}
	return nil
}

// isHandlerSig reports whether sig is (http.ResponseWriter, *http.Request).
func isHandlerSig(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isNetHTTP(sig.Params().At(0).Type(), "ResponseWriter") &&
		isPtrToNetHTTP(sig.Params().At(1).Type(), "Request")
}

func isNetHTTP(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func isPtrToNetHTTP(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNetHTTP(ptr.Elem(), name)
}

// checkHandler inspects one handler body. Nested function literals are
// included — streaming callbacks write to the captured ResponseWriter —
// except literals that are handlers themselves, which are visited on
// their own.
func checkHandler(pass *Pass, params *ast.FieldList, body *ast.BlockStmt) {
	writer, request := handlerParamObjs(pass, params)
	rebind := bodyRebindPos(pass, body, request)
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		if lit, ok := n.(*ast.FuncLit); ok {
			if sig, _ := pass.Pkg.Info.Types[lit].Type.(*types.Signature); isHandlerSig(sig) {
				stack = stack[:len(stack)-1]
				return false
			}
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkBodyRead(pass, n, request, parents, rebind)
		case *ast.ExprStmt:
			checkDiscardedWrite(pass, n, writer)
		}
		return true
	})
}

// bodyRebindPos finds the earliest `r.Body = http.MaxBytesReader(...)`
// assignment in the handler; every body read after it is capped. Returns
// token.NoPos when the handler never rebinds.
func bodyRebindPos(pass *Pass, body *ast.BlockStmt, request types.Object) token.Pos {
	pos := token.NoPos
	if request == nil {
		return pos
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || pass.CalleeName(call) != "net/http.MaxBytesReader" {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Body" {
				continue
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == request {
				if !pos.IsValid() || as.Pos() < pos {
					pos = as.Pos()
				}
			}
		}
		return true
	})
	return pos
}

// handlerParamObjs resolves the ResponseWriter and *Request parameter
// objects (nil for unnamed/underscore parameters).
func handlerParamObjs(pass *Pass, params *ast.FieldList) (writer, request types.Object) {
	idx := 0
	for _, field := range params.List {
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil}
		}
		for _, name := range names {
			var obj types.Object
			if name != nil {
				obj = pass.Pkg.Info.Defs[name]
			}
			switch idx {
			case 0:
				writer = obj
			case 1:
				request = obj
			}
			idx++
		}
	}
	return writer, request
}

// checkBodyRead flags r.Body uses that neither feed http.MaxBytesReader
// nor close/replace the body.
func checkBodyRead(pass *Pass, sel *ast.SelectorExpr, request types.Object, parents map[ast.Node]ast.Node, rebind token.Pos) {
	if request == nil || sel.Sel.Name != "Body" {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.Pkg.Info.Uses[id] != request {
		return
	}
	if rebind.IsValid() && sel.Pos() > rebind {
		return // the body was replaced by a capped reader above
	}
	switch parent := parents[sel].(type) {
	case *ast.CallExpr:
		if pass.CalleeName(parent) == "net/http.MaxBytesReader" {
			return
		}
	case *ast.SelectorExpr:
		if parent.Sel.Name == "Close" {
			return
		}
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if ast.Unparen(lhs) == sel {
				return // r.Body = http.MaxBytesReader(...) replaces the body
			}
		}
	}
	pass.Reportf(sel.Pos(),
		"request body consumed without http.MaxBytesReader: wrap it so a client cannot stream unbounded input")
}

// respWriteFuncs are writer-first helpers whose error must be checked when
// the target is the response.
var respWriteFuncs = map[string]bool{
	"io.WriteString": true,
	"fmt.Fprintf":    true,
	"fmt.Fprintln":   true,
	"fmt.Fprint":     true,
}

// checkDiscardedWrite flags statement-level calls that drop the error of a
// response write: Encoder.Encode (the NDJSON path), ResponseWriter.Write,
// and writer-first fmt/io helpers aimed at the response writer.
func checkDiscardedWrite(pass *Pass, stmt *ast.ExprStmt, writer types.Object) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	name := pass.CalleeName(call)
	bad := false
	switch {
	case name == "(*encoding/json.Encoder).Encode":
		bad = true // handlers only encode to the response stream
	case name == "(net/http.ResponseWriter).Write":
		bad = true
	case respWriteFuncs[name]:
		bad = len(call.Args) > 0 && isUseOf(pass, call.Args[0], writer)
	}
	if bad {
		pass.Reportf(call.Pos(),
			"response write discards its error: check the result of %s (a disconnected client must abort the stream)", name)
	}
}

// isUseOf reports whether expr is an identifier resolving to obj.
func isUseOf(pass *Pass, expr ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && pass.Pkg.Info.Uses[id] == obj
}
