package analysis

import (
	"go/ast"
	"strings"
)

// SnapshotDiscipline enforces PR 5/7's consistency model: every execution
// reads one pinned, epoch-stamped snapshot per relation. Code outside
// internal/storage must therefore not use storage.Table's unpinned
// convenience readers — each such call re-loads the current snapshot, so
// two calls can observe different epochs. Callers pin once via Snapshot()
// and read through it.
var SnapshotDiscipline = &Analyzer{
	Name: "snapshot-discipline",
	Doc:  "no unpinned storage.Table reads outside internal/storage: pin a Snapshot first",
	Run:  runSnapshotDiscipline,
}

// unpinnedTableReaders is the banned read surface of *storage.Table. The
// mutation surface (Insert/Delete/...) and Snapshot/Epoch remain fine.
var unpinnedTableReaders = map[string]bool{
	"Len": true, "Contains": true, "Rows": true,
	"Select": true, "SelectBatch": true, "Project": true,
}

func runSnapshotDiscipline(pass *Pass) {
	storagePath := pass.Module.Path + "/internal/storage"
	if pass.Pkg.Path == storagePath {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := pass.CalleeName(call)
			rest, ok := strings.CutPrefix(name, "(*"+storagePath+".Table).")
			if !ok || !unpinnedTableReaders[rest] {
				return true
			}
			pass.Reportf(call.Pos(),
				"unpinned Table.%s: pin one snapshot per execution via Snapshot() and read through it", rest)
			return true
		})
	}
}
