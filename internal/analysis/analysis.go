// Package analysis is toorjah's in-repo static-analysis framework: a
// dependency-free driver (stdlib go/parser + go/types + go/importer, same
// ethos as cmd/linkcheck) that loads every package of the module with full
// type information and runs repo-specific analyzers over them. The
// analyzers mechanically enforce the invariants the engine's correctness
// and performance rest on — integer-only hot paths, context-first
// execution, pinned snapshots, pooled-value hygiene, bounded and
// error-checked HTTP handlers — so regressions fail `go test ./...` and CI
// instead of waiting for a randomized property test to stumble on them.
//
// Two comment directives tune the analyzers at function granularity:
//
//	//toorjahvet:allow <analyzer> (reason)
//	//toorjahvet:boundary (reason)
//
// An allow directive in a function's doc comment or body suppresses the
// named analyzer for that whole function; a boundary directive marks the
// function as a result/serialization boundary where hotpath-strings
// permits string materialization. Every directive should carry a reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package of the module (tests excluded).
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	funcs map[*ast.File][]*funcInfo // built lazily, per file, decl order
}

// Module is the fully loaded module: every package, plus module-wide
// indexes the analyzers share (deprecated objects).
type Module struct {
	Path string
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package

	byPath     map[string]*Package
	deprecated map[types.Object]bool
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // stable identifier, used in -only and allow directives
	Doc  string // one-line description of the enforced invariant
	Run  func(*Pass)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos unless the enclosing function carries
// an allow directive for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if fn := p.Pkg.enclosingFunc(pos); fn != nil && fn.allowed[p.Analyzer.Name] {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Callee resolves the statically-known callee of a call expression, or nil
// for calls through function values, built-ins, and conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// CalleeName returns the fully qualified name of a call's static callee
// ("" when unresolvable): "path/pkg.Func" for package functions,
// "(path/pkg.Recv).Method" or "(*path/pkg.Recv).Method" for methods.
func (p *Pass) CalleeName(call *ast.CallExpr) string {
	if fn := p.Callee(call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// InBoundaryFunc reports whether pos sits inside a function marked with a
// //toorjahvet:boundary directive.
func (p *Pass) InBoundaryFunc(pos token.Pos) bool {
	fn := p.Pkg.enclosingFunc(pos)
	return fn != nil && fn.boundary
}

// InDeprecatedFunc reports whether pos sits inside a function whose doc
// comment marks it "Deprecated:". Deprecated shims may freely call each
// other and use pre-context idioms; they are already quarantined.
func (p *Pass) InDeprecatedFunc(pos token.Pos) bool {
	fn := p.Pkg.enclosingFunc(pos)
	return fn != nil && fn.deprecated
}

// EnclosingFuncDecl returns the function declaration containing pos, or nil
// at package scope.
func (p *Pass) EnclosingFuncDecl(pos token.Pos) *ast.FuncDecl {
	if fn := p.Pkg.enclosingFunc(pos); fn != nil {
		return fn.decl
	}
	return nil
}

// IsDeprecated reports whether obj is a module object declared deprecated.
func (p *Pass) IsDeprecated(obj types.Object) bool {
	return p.Module.deprecated[obj]
}

// funcInfo caches the directive state of one top-level function.
type funcInfo struct {
	decl       *ast.FuncDecl
	allowed    map[string]bool // analyzers suppressed by //toorjahvet:allow
	boundary   bool            // //toorjahvet:boundary present
	deprecated bool            // doc contains "Deprecated:"
}

// enclosingFunc returns the cached info of the top-level function whose
// extent contains pos. Function literals inherit the directives of the
// declaration they are written in.
func (p *Package) enclosingFunc(pos token.Pos) *funcInfo {
	tf := p.Fset.File(pos)
	if tf == nil {
		return nil
	}
	if p.funcs == nil {
		p.funcs = make(map[*ast.File][]*funcInfo, len(p.Files))
	}
	var file *ast.File
	for _, f := range p.Files {
		if p.Fset.File(f.Pos()) == tf {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	infos, ok := p.funcs[file]
	if !ok {
		infos = p.buildFuncInfos(file)
		p.funcs[file] = infos
	}
	i := sort.Search(len(infos), func(i int) bool { return infos[i].decl.End() > pos })
	if i < len(infos) && infos[i].decl.Pos() <= pos {
		return infos[i]
	}
	return nil
}

// buildFuncInfos scans one file's declarations and comments into directive
// records, in declaration order.
func (p *Package) buildFuncInfos(file *ast.File) []*funcInfo {
	var infos []*funcInfo
	for _, d := range file.Decls {
		decl, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fi := &funcInfo{decl: decl, allowed: make(map[string]bool), deprecated: isDeprecatedDoc(decl.Doc)}
		infos = append(infos, fi)
	}
	// Attach each directive comment to the function it appears in — as the
	// doc comment or anywhere inside the body.
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name, rest, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			fi := findFunc(infos, cg, c.Pos())
			if fi == nil {
				continue
			}
			switch name {
			case "allow":
				for _, a := range strings.Fields(rest) {
					fi.allowed[a] = true
				}
			case "boundary":
				fi.boundary = true
			}
		}
	}
	return infos
}

// findFunc locates the function a directive comment belongs to: the
// function whose extent contains it, or the one the comment group
// documents.
func findFunc(infos []*funcInfo, cg *ast.CommentGroup, pos token.Pos) *funcInfo {
	for _, fi := range infos {
		if fi.decl.Pos() <= pos && pos < fi.decl.End() {
			return fi
		}
		if fi.decl.Doc == cg {
			return fi
		}
	}
	return nil
}

// parseDirective splits a "//toorjahvet:name args (reason)" comment. Any
// trailing parenthesized reason is stripped from args.
func parseDirective(text string) (name, args string, ok bool) {
	rest, ok := strings.CutPrefix(text, "//toorjahvet:")
	if !ok {
		return "", "", false
	}
	if i := strings.IndexByte(rest, '('); i >= 0 {
		rest = rest[:i]
	}
	name, args, _ = strings.Cut(strings.TrimSpace(rest), " ")
	return name, strings.TrimSpace(args), name != ""
}

// isDeprecatedDoc reports whether a doc comment marks its declaration
// deprecated, per the godoc convention: a line starting "Deprecated:".
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// indexDeprecated records every module object whose declaration doc marks
// it deprecated — functions, methods, named types, vars, and consts.
func (m *Module) indexDeprecated() {
	m.deprecated = make(map[types.Object]bool)
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch decl := d.(type) {
				case *ast.FuncDecl:
					if isDeprecatedDoc(decl.Doc) {
						if obj := p.Info.Defs[decl.Name]; obj != nil {
							m.deprecated[obj] = true
						}
					}
				case *ast.GenDecl:
					m.indexDeprecatedGen(p, decl)
				}
			}
		}
	}
}

// indexDeprecatedGen handles type/var/const declarations: a deprecation
// marker on the GenDecl doc or an individual spec doc deprecates the
// declared names.
func (m *Module) indexDeprecatedGen(p *Package, decl *ast.GenDecl) {
	declDep := isDeprecatedDoc(decl.Doc)
	for _, spec := range decl.Specs {
		var names []*ast.Ident
		dep := declDep
		switch s := spec.(type) {
		case *ast.TypeSpec:
			names = []*ast.Ident{s.Name}
			dep = dep || isDeprecatedDoc(s.Doc)
		case *ast.ValueSpec:
			names = s.Names
			dep = dep || isDeprecatedDoc(s.Doc)
		}
		if !dep {
			continue
		}
		for _, n := range names {
			if obj := p.Info.Defs[n]; obj != nil {
				m.deprecated[obj] = true
			}
		}
	}
}
