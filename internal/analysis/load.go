package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks every package of the module with nothing beyond
// the standard library: go/parser for syntax, go/types for semantics, and
// go/importer for the export data of standard-library dependencies —
// module packages are resolved from source, recursively. Test files are
// skipped: the invariants govern shipped code, and the fixtures that *do*
// exercise the analyzers load through LoadFixture instead.

// loader resolves and type-checks packages on demand.
type loader struct {
	moduleDir  string
	modulePath string
	fset       *token.FileSet
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newLoader(moduleDir, modulePath string) *loader {
	return &loader{
		moduleDir:  moduleDir,
		modulePath: modulePath,
		fset:       token.NewFileSet(),
		std:        importer.Default(),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// LoadModule parses and type-checks every package of the module rooted at
// dir (the directory holding go.mod), excluding test files and testdata
// trees, and returns them with full type information.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(abs, modulePath)
	paths, err := l.discover()
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	return l.module(), nil
}

// module assembles the loaded packages into a Module.
func (l *loader) module() *Module {
	m := &Module{
		Path:   l.modulePath,
		Dir:    l.moduleDir,
		Fset:   l.fset,
		byPath: make(map[string]*Package, len(l.pkgs)),
	}
	for _, p := range l.pkgs {
		m.Pkgs = append(m.Pkgs, p)
		m.byPath[p.Path] = p
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	m.indexDeprecated()
	return m
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// discover walks the module tree and returns the import path of every
// directory holding at least one non-test Go file, in sorted order.
func (l *loader) discover() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleDir &&
			(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			out = append(out, l.importPathOf(path))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// importPathOf maps a module directory to its import path.
func (l *loader) importPathOf(dir string) string {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// dirOf maps an import path inside the module to its directory.
func (l *loader) dirOf(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	return filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
}

// goFilesIn lists the non-test Go files of one directory (no recursion).
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// load parses and type-checks one module package (and, recursively, every
// module package it imports), caching the result.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirOf(path)
	filenames, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(path, dir, files)
}

// check type-checks one package from its parsed files and caches it.
func (l *loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importPkg resolves one import: module packages from source, everything
// else through the standard importer's export data.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadFixture type-checks the given source files as a package pretending to
// live at importPath inside the module rooted at moduleDir — the analyzer
// test harness: a fixture can pose as a hot-path package and import real
// module packages, which resolve against the actual repository source. The
// returned Module holds the fixture package and everything it pulled in;
// the fixture itself is returned separately as the analysis target.
func LoadFixture(moduleDir, importPath string, filenames ...string) (*Module, *Package, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, nil, err
	}
	modulePath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	l := newLoader(abs, modulePath)
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	p, err := l.check(importPath, filepath.Dir(filenames[0]), files)
	if err != nil {
		return nil, nil, err
	}
	return l.module(), p, nil
}
