package analysis

import "sort"

// Suite returns every repo analyzer, in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		HotpathStrings,
		CtxFirst,
		NoDeprecatedShims,
		SnapshotDiscipline,
		PoolHygiene,
		HandlerHygiene,
		MetricsHygiene,
		DurabilityHygiene,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies each analyzer to each package and returns the diagnostics
// sorted by file, line, column, then analyzer name.
func Run(m *Module, analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Module:   m,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
