package analysis

import (
	"go/ast"
	"strings"
)

// DurabilityHygiene guards PR 10's crash-safety contract at its root: the
// write-ahead log is the only thing standing between an acknowledged batch
// and a crash, so inside internal/wal no durable-write error may vanish
// and no write site may silently skip fsync. Two rules:
//
//  1. Every error produced on the os.File write path (Write, Sync, Close,
//     Truncate, Rename, ...) is checked — a bare call statement, a blank
//     assignment, or a defer/go discards it.
//  2. Every function that writes to (or opens for writing) an *os.File
//     calls (*os.File).Sync before returning.
//
// Sites where a rule is deliberately violated — closing a file whose write
// already failed, the failpoint's intentionally torn write, creating an
// empty segment with nothing to flush — carry a function-scoped
// //toorjahvet:allow durability-hygiene (reason) directive, so every
// exemption is a documented decision, not an oversight.
var DurabilityHygiene = &Analyzer{
	Name: "durability-hygiene",
	Doc:  "internal/wal checks every os.File write-path error and fsyncs (or explicitly allows) every write site",
	Run:  runDurabilityHygiene,
}

// walErrIndex maps each durable-write call to the index of its error
// result — the error a caller inside internal/wal must not discard.
var walErrIndex = map[string]int{
	"(*os.File).Write":       1,
	"(*os.File).WriteString": 1,
	"(*os.File).WriteAt":     1,
	"(*os.File).Sync":        0,
	"(*os.File).Close":       0,
	"(*os.File).Truncate":    0,
	"os.Create":              1,
	"os.OpenFile":            1,
	"os.Truncate":            0,
	"os.Rename":              0,
	"os.WriteFile":           0,
}

// walWriteCalls are the calls that put bytes (or a new writable file) on
// the durable path; a function containing one must also fsync. os.Open is
// absent on purpose: read-only access has nothing to flush.
var walWriteCalls = map[string]bool{
	"(*os.File).Write":       true,
	"(*os.File).WriteString": true,
	"(*os.File).WriteAt":     true,
	"os.Create":              true,
	"os.OpenFile":            true,
	"os.WriteFile":           true, // cannot fsync at all — always annotate or avoid
}

func runDurabilityHygiene(pass *Pass) {
	if !strings.HasSuffix(pass.Pkg.Path, "/internal/wal") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkDurableFunc(pass, fd)
			}
		}
	}
}

// checkDurableFunc applies both rules to one function: flag every
// discarded write-path error where it happens, and — when the function
// writes but never syncs — flag each write site.
func checkDurableFunc(pass *Pass, fd *ast.FuncDecl) {
	var writes []*ast.CallExpr
	synced := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				reportDiscarded(pass, call, "call statement")
			}
		case *ast.DeferStmt:
			reportDiscarded(pass, st.Call, "defer")
		case *ast.GoStmt:
			reportDiscarded(pass, st.Call, "go statement")
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 {
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
					checkBlankAssign(pass, st, call)
				}
			}
		case *ast.CallExpr:
			name := pass.CalleeName(st)
			if walWriteCalls[name] {
				writes = append(writes, st)
			}
			if name == "(*os.File).Sync" {
				synced = true
			}
		}
		return true
	})
	if synced {
		return
	}
	for _, w := range writes {
		pass.Reportf(w.Pos(),
			"%s without an fsync in %s: a durable write must reach (*os.File).Sync before the function returns, or carry //toorjahvet:allow durability-hygiene (reason)",
			pass.CalleeName(w), fd.Name.Name)
	}
}

// reportDiscarded flags a write-path call whose results are dropped
// wholesale: a bare statement, a defer, or a go statement.
func reportDiscarded(pass *Pass, call *ast.CallExpr, how string) {
	name := pass.CalleeName(call)
	if _, ok := walErrIndex[name]; !ok {
		return
	}
	pass.Reportf(call.Pos(),
		"%s error discarded by a %s: a durable write path checks every failure (or documents the exemption with //toorjahvet:allow durability-hygiene)",
		name, how)
}

// checkBlankAssign flags a write-path call whose error result lands in the
// blank identifier.
func checkBlankAssign(pass *Pass, st *ast.AssignStmt, call *ast.CallExpr) {
	name := pass.CalleeName(call)
	idx, ok := walErrIndex[name]
	if !ok || idx >= len(st.Lhs) {
		return
	}
	if id, ok := ast.Unparen(st.Lhs[idx]).(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(call.Pos(),
			"%s error assigned to the blank identifier: a durable write path checks every failure (or documents the exemption with //toorjahvet:allow durability-hygiene)",
			name)
	}
}
