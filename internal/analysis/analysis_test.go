package analysis

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// runFixture loads testdata/src/<fixture> as a package at importPath
// against the real module source, runs one analyzer over it, and checks
// the diagnostics against the fixture's // want comments — both that every
// violation fires and that every corrected form stays silent.
func runFixture(t *testing.T, a *Analyzer, importPath, fixture string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "src", fixture, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files for %s: %v", fixture, err)
	}
	sort.Strings(files)
	mod, pkg, err := LoadFixture(moduleRoot(t), importPath, files...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	exps, err := ParseExpectations(mod.Fset, pkg.Files)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", fixture)
	}
	diags := Run(mod, []*Analyzer{a}, []*Package{pkg})
	for _, problem := range CheckExpectations(exps, diags) {
		t.Error(problem)
	}
}

func TestHotpathStringsFixture(t *testing.T) {
	// The fixture poses as internal/exec so the hot-path package filter
	// applies to it.
	runFixture(t, HotpathStrings, "toorjah/internal/exec", "hotpath")
}

func TestCtxFirstFixture(t *testing.T) {
	runFixture(t, CtxFirst, "toorjah/internal/ctxfixture", "ctxfirst")
}

func TestNoDeprecatedShimsFixture(t *testing.T) {
	runFixture(t, NoDeprecatedShims, "toorjah/internal/depfixture", "deprecated")
}

func TestSnapshotDisciplineFixture(t *testing.T) {
	runFixture(t, SnapshotDiscipline, "toorjah/internal/snapfixture", "snapshot")
}

func TestPoolHygieneFixture(t *testing.T) {
	runFixture(t, PoolHygiene, "toorjah/internal/poolfixture", "pool")
}

func TestHandlerHygieneFixture(t *testing.T) {
	runFixture(t, HandlerHygiene, "toorjah/internal/handfixture", "handler")
}

func TestMetricsHygieneFixture(t *testing.T) {
	runFixture(t, MetricsHygiene, "toorjah/internal/metfixture", "metrics")
}

func TestDurabilityHygieneFixture(t *testing.T) {
	// The fixture poses as internal/wal so the durable-path package filter
	// applies to it.
	runFixture(t, DurabilityHygiene, "toorjah/internal/wal", "durability")
}

// TestDurabilityWALOnly pins the analyzer's package filter: the same
// unchecked write-path code is silent outside internal/wal, where an
// unsynced write is an ordinary buffered file, not a broken durability
// promise.
func TestDurabilityWALOnly(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "src", "durability", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatal("no durability fixture files")
	}
	mod, pkg, err := LoadFixture(moduleRoot(t), "toorjah/internal/service", files...)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(mod, []*Analyzer{DurabilityHygiene}, []*Package{pkg}); len(diags) != 0 {
		t.Errorf("durability-hygiene fired outside internal/wal: %v", diags)
	}
}

// TestHotPathPackagesOnly pins the analyzer's package filter: the same
// string-materializing code is silent outside the hot-path packages.
func TestHotPathPackagesOnly(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "src", "hotpath", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatal("no hotpath fixture files")
	}
	mod, pkg, err := LoadFixture(moduleRoot(t), "toorjah/internal/coldpath", files...)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(mod, []*Analyzer{HotpathStrings}, []*Package{pkg}); len(diags) != 0 {
		t.Errorf("hotpath-strings fired outside hot-path packages: %v", diags)
	}
}

// TestSuiteNames pins the analyzer registry: names are the public contract
// of -only flags and //toorjahvet:allow directives.
func TestSuiteNames(t *testing.T) {
	want := []string{
		"hotpath-strings", "ctx-first", "no-deprecated-shims",
		"snapshot-discipline", "pool-hygiene", "handler-hygiene",
		"metrics-hygiene", "durability-hygiene",
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("%s: missing Doc or Run", a.Name)
		}
		if ByName(a.Name) != a {
			t.Errorf("ByName(%s) does not round-trip", a.Name)
		}
	}
	if ByName("nonsense") != nil {
		t.Error("ByName(nonsense) should be nil")
	}
}

// TestRepoInvariants runs the full analyzer suite over the real module, so
// a bare `go test ./...` fails the moment any repo invariant regresses —
// the same gate CI applies via cmd/toorjahvet.
func TestRepoInvariants(t *testing.T) {
	mod, err := LoadModule(moduleRoot(t))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the loader is missing the module", len(mod.Pkgs))
	}
	for _, d := range Run(mod, Suite(), mod.Pkgs) {
		t.Errorf("invariant violation: %s", d)
	}
}
