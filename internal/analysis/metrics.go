package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// MetricsHygiene keeps the /metrics exposition navigable: every metric
// family registered on an obs.Registry must carry a compile-time constant
// name in the repo's `toorjah_` namespace and a non-empty constant help
// string (the registry renders it as the family's # HELP line). Constant
// names keep the cardinality of families static — dynamic dimensions
// belong in labels, where scrapers can aggregate them, not in family
// names, where each value mints a new time series family.
var MetricsHygiene = &Analyzer{
	Name: "metrics-hygiene",
	Doc:  "obs metric families carry a constant toorjah_-prefixed name and non-empty constant help",
	Run:  runMetricsHygiene,
}

// registryMethods are the obs.Registry calls that mint a metric family;
// each takes (name, help) as its first two arguments.
var registryMethods = map[string]bool{
	"Counter":        true,
	"CounterFunc":    true,
	"CounterVec":     true,
	"CounterVecFunc": true,
	"Gauge":          true,
	"GaugeFunc":      true,
	"GaugeVecFunc":   true,
	"Histogram":      true,
	"HistogramVec":   true,
}

const metricPrefix = "toorjah_"

func runMetricsHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		lits := funcLitParams(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := pass.CalleeName(call)
			method, ok := strings.CutPrefix(name, "(*toorjah/internal/obs.Registry).")
			if !ok || !registryMethods[method] || len(call.Args) < 2 {
				return true
			}
			checkMetricName(pass, method, call.Args[0], lits)
			checkMetricHelp(pass, method, call.Args[1], lits)
			return true
		})
	}
}

// funcLitParams collects the parameter objects of every function literal in
// the file. A registration whose name or help is forwarded through such a
// parameter is a local helper closure — its call sites sit in the same
// declaration, where the constants they pass remain auditable — and is not
// flagged. Top-level functions taking a name parameter get no such pass:
// they leak the naming decision across the package.
func funcLitParams(pass *Pass, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// forwardedParam reports whether expr is a bare use of a function-literal
// parameter.
func forwardedParam(pass *Pass, expr ast.Expr, lits map[types.Object]bool) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && lits[pass.Pkg.Info.Uses[id]]
}

// constString resolves an argument's compile-time constant string value.
func constString(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func checkMetricName(pass *Pass, method string, arg ast.Expr, lits map[types.Object]bool) {
	name, ok := constString(pass, arg)
	if !ok {
		if forwardedParam(pass, arg, lits) {
			return
		}
		pass.Reportf(arg.Pos(),
			"metric family name passed to Registry.%s is not a compile-time constant: dynamic dimensions belong in labels, not family names", method)
		return
	}
	if !strings.HasPrefix(name, metricPrefix) {
		pass.Reportf(arg.Pos(),
			"metric family %q is outside the %s namespace: prefix it so the exposition groups by origin", name, metricPrefix)
	}
}

func checkMetricHelp(pass *Pass, method string, arg ast.Expr, lits map[types.Object]bool) {
	help, ok := constString(pass, arg)
	if !ok {
		if forwardedParam(pass, arg, lits) {
			return
		}
		pass.Reportf(arg.Pos(),
			"metric help passed to Registry.%s is not a compile-time constant", method)
		return
	}
	if strings.TrimSpace(help) == "" {
		pass.Reportf(arg.Pos(),
			"metric family registered with empty help: the # HELP line is the scraper's only documentation")
	}
}
