package analysis

import (
	"go/ast"
)

// NoDeprecatedShims keeps the deprecated compatibility surface (the
// pre-context Execute/ExecuteOpts/ExecuteNaive/Stream matrix and its
// option types) quarantined: non-test module code must not reference any
// module object whose declaration is marked "Deprecated:". Deprecated
// shims may call each other; anything else goes through the context-first
// Execute API.
var NoDeprecatedShims = &Analyzer{
	Name: "no-deprecated-shims",
	Doc:  "module code must not reference deprecated module declarations",
	Run:  runNoDeprecatedShims,
}

func runNoDeprecatedShims(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || !pass.IsDeprecated(obj) {
				return true
			}
			if pass.InDeprecatedFunc(id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(), "reference to deprecated %s: use the context-first Execute API", obj.Name())
			return true
		})
	}
}
