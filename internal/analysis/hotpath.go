package analysis

import (
	"go/ast"
	"strings"
)

// HotpathStrings enforces PR 7's integer-tuple representation: inside the
// hot-path packages (exec, storage, cache, datalog) no code may
// materialize symbol IDs back into strings or build keys through fmt — IDs
// flow end to end and strings appear only at result/serialization
// boundaries, which are marked //toorjahvet:boundary.
var HotpathStrings = &Analyzer{
	Name: "hotpath-strings",
	Doc:  "no string materialization or fmt-based key building in hot-path packages",
	Run:  runHotpathStrings,
}

// hotPathPkgs are the module packages the analyzer applies to, keyed by
// path suffix under the module root.
var hotPathPkgs = []string{
	"/internal/exec",
	"/internal/storage",
	"/internal/cache",
	"/internal/datalog",
}

// hotpathBanned maps fully qualified callee names to the reason each is
// banned on the hot path.
var hotpathBanned = map[string]string{
	"{mod}/internal/sym.Str":                 "materializes a symbol ID",
	"{mod}/internal/sym.Strs":                "materializes symbol IDs",
	"(*{mod}/internal/sym.Table).Str":        "materializes a symbol ID",
	"(*{mod}/internal/sym.Table).Strs":       "materializes symbol IDs",
	"(*{mod}/internal/sym.Table).StrsAppend": "materializes symbol IDs",
	"{mod}/internal/storage.MaterializeRows": "materializes row strings",
	"({mod}/internal/storage.IRow).Strings":  "materializes row strings",
	"({mod}/internal/storage.Row).Key":       "builds a string row key",
	"({mod}/internal/datalog.Tuple).Strings": "materializes tuple strings",
	"fmt.Sprintf":                            "builds a string through fmt",
	"fmt.Sprint":                             "builds a string through fmt",
	"fmt.Sprintln":                           "builds a string through fmt",
	"fmt.Appendf":                            "builds a string through fmt",
	"fmt.Append":                             "builds a string through fmt",
	"fmt.Appendln":                           "builds a string through fmt",
	"strings.Join":                           "builds a joined string key",
}

// stringerMethods may materialize freely: they exist to render.
var stringerMethods = map[string]bool{
	"String": true, "GoString": true, "Format": true, "Error": true,
}

func runHotpathStrings(pass *Pass) {
	if !isHotPathPkg(pass.Module.Path, pass.Pkg.Path) {
		return
	}
	panicArgs := collectPanicArgCalls(pass.Pkg.Files)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := pass.CalleeName(call)
			if name == "" {
				return true
			}
			name = strings.Replace(name, pass.Module.Path+"/", "{mod}/", 1)
			reason, banned := hotpathBanned[name]
			if !banned || panicArgs[call] || pass.InBoundaryFunc(call.Pos()) {
				return true
			}
			if fd := pass.EnclosingFuncDecl(call.Pos()); fd != nil && stringerMethods[fd.Name.Name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s on the hot path: call to %s (IDs only until the result boundary; mark boundary funcs //toorjahvet:boundary)",
				reason, strings.Replace(name, "{mod}/", pass.Module.Path+"/", 1))
			return true
		})
	}
}

func isHotPathPkg(modPath, pkgPath string) bool {
	for _, suffix := range hotPathPkgs {
		if pkgPath == modPath+suffix {
			return true
		}
	}
	return false
}

// collectPanicArgCalls gathers every call expression appearing inside a
// panic(...) argument: panic messages are allowed to format strings.
func collectPanicArgCalls(files []*ast.File) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "panic" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						out[c] = true
					}
					return true
				})
			}
			return true
		})
	}
	return out
}
