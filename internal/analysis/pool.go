package analysis

import (
	"go/ast"
	"go/types"
)

// PoolHygiene guards the executor's sync.Pool recycling: every value
// returned to a pool must be cleared first, so no binding from one
// execution can leak into — or pin memory for — the next. A function that
// calls (*sync.Pool).Put must clear the pooled value on every path, which
// this analyzer approximates as: the function also contains a Clear()
// method call or a clear() builtin call before the Put.
var PoolHygiene = &Analyzer{
	Name: "pool-hygiene",
	Doc:  "(*sync.Pool).Put sites must Clear the pooled value first",
	Run:  runPoolHygiene,
}

func runPoolHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.CalleeName(call) != "(*sync.Pool).Put" {
				return true
			}
			fd := pass.EnclosingFuncDecl(call.Pos())
			if fd == nil || !clearsBefore(pass, fd, call) {
				pass.Reportf(call.Pos(),
					"sync.Pool Put without clearing the pooled value: Clear() it first so stale bindings cannot leak across executions")
			}
			return true
		})
	}
}

// clearsBefore reports whether fd contains a Clear() method call or a
// clear() builtin call lexically before the Put call.
func clearsBefore(pass *Pass, fd *ast.FuncDecl, put *ast.CallExpr) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= put.Pos() {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, isBuiltin := pass.Pkg.Info.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "clear" {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Clear" {
				found = true
			}
		}
		return true
	})
	return found
}
