package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Expected-diagnostic comments: a fixture line carrying
//
//	// want `regex`
//
// declares that exactly one diagnostic whose message matches the
// backquoted regular expression must be reported on that line. The
// analyzer tests fail on any unmatched expectation and on any diagnostic
// without one, so every fixture proves both directions: the violation
// fires, the corrected form stays silent.

// Expectation is one parsed want comment.
type Expectation struct {
	File    string
	Line    int
	Pattern *regexp.Regexp
}

// ParseExpectations scans the files for want comments.
func ParseExpectations(fset *token.FileSet, files []*ast.File) ([]*Expectation, error) {
	var out []*Expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				if len(rest) < 2 || rest[0] != '`' || rest[len(rest)-1] != '`' {
					return nil, fmt.Errorf("%s: malformed want comment %q (use // want `regex`)",
						fset.Position(c.Pos()), c.Text)
				}
				re, err := regexp.Compile(rest[1 : len(rest)-1])
				if err != nil {
					return nil, fmt.Errorf("%s: bad want pattern: %w", fset.Position(c.Pos()), err)
				}
				pos := fset.Position(c.Pos())
				out = append(out, &Expectation{File: pos.Filename, Line: pos.Line, Pattern: re})
			}
		}
	}
	return out, nil
}

// CheckExpectations compares diagnostics against expectations and returns
// one problem per mismatch in either direction; nil means an exact match.
func CheckExpectations(exps []*Expectation, diags []Diagnostic) []string {
	matched := make([]bool, len(exps))
	var problems []string
	for _, d := range diags {
		found := false
		for i, e := range exps {
			if !matched[i] && e.File == d.Pos.Filename && e.Line == d.Pos.Line &&
				e.Pattern.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, "unexpected diagnostic: "+d.String())
		}
	}
	for i, e := range exps {
		if !matched[i] {
			problems = append(problems,
				fmt.Sprintf("%s:%d: expected diagnostic matching %q was not reported", e.File, e.Line, e.Pattern))
		}
	}
	return problems
}
