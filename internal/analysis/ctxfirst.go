package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFirst enforces the PR 7 execution-API convention: in library packages
// an exported function that takes a context.Context takes it as the first
// parameter, and no code manufactures a root context with
// context.Background()/context.TODO() — contexts are threaded from the
// caller. The nil-fallback idiom (reassigning an existing ctx variable)
// and deprecated compatibility shims are exempt; interface-imposed shims
// carry an explicit //toorjahvet:allow ctx-first directive.
var CtxFirst = &Analyzer{
	Name: "ctx-first",
	Doc:  "context.Context first in exported signatures; no context.Background/TODO in library packages",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	for _, f := range pass.Pkg.Files {
		checkCtxParamOrder(pass, f)
		checkNoRootContexts(pass, f)
	}
}

// checkCtxParamOrder flags exported functions whose context.Context
// parameter is not the first parameter.
func checkCtxParamOrder(pass *Pass, f *ast.File) {
	for _, d := range f.Decls {
		decl, ok := d.(*ast.FuncDecl)
		if !ok || !decl.Name.IsExported() {
			continue
		}
		fn, ok := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
		if !ok {
			continue
		}
		params := fn.Signature().Params()
		for i := 1; i < params.Len(); i++ {
			if isContextType(params.At(i).Type()) {
				pass.Reportf(decl.Name.Pos(),
					"exported %s takes context.Context as parameter %d: context must come first",
					decl.Name.Name, i+1)
				break
			}
		}
	}
}

// checkNoRootContexts flags context.Background()/context.TODO() calls,
// skipping the nil-fallback reassignment idiom (ctx = context.Background()
// with = , not :=) and deprecated shims.
func checkNoRootContexts(pass *Pass, f *ast.File) {
	fallbacks := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			for _, rhs := range as.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					fallbacks[call] = true
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := pass.CalleeName(call)
		if name != "context.Background" && name != "context.TODO" {
			return true
		}
		if fallbacks[call] || pass.InDeprecatedFunc(call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s in a library package: thread the caller's context instead", name)
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
