package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"toorjah/internal/storage"
)

func mustEncode(t *testing.T, r Record) []byte {
	t.Helper()
	b, err := AppendEncode(nil, r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: TypeInsert, Relation: "pub", Arity: 2, Epoch: 7,
			Rows: []storage.Row{{"a", "b"}, {"", "x\x00y"}}},
		{Type: TypeDelete, Relation: "conf", Arity: 3, Epoch: 1 << 40,
			Rows: []storage.Row{{"1", "2", "3"}}},
		{Type: TypeSnapshotRows, Relation: "empty", Arity: 1, Epoch: 1, Rows: nil},
	}
	var stream []byte
	for _, r := range recs {
		stream = append(stream, mustEncode(t, r)...)
	}
	for i, want := range recs {
		got, n, err := Decode(stream)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if got.Type != want.Type || got.Relation != want.Relation ||
			got.Arity != want.Arity || got.Epoch != want.Epoch ||
			!reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		// Canonical: re-encoding reproduces the input frame exactly.
		re := mustEncode(t, got)
		if !bytes.Equal(re, stream[:n]) {
			t.Fatalf("record %d: re-encode differs from input frame", i)
		}
		stream = stream[n:]
	}
	if len(stream) != 0 {
		t.Fatalf("%d bytes left over", len(stream))
	}
}

func TestEncodeRejectsMalformed(t *testing.T) {
	cases := []Record{
		{Type: TypeInsert, Relation: "", Arity: 1, Epoch: 1},
		{Type: TypeInsert, Relation: "r", Arity: 0, Epoch: 1},
		{Type: TypeInsert, Relation: "r", Arity: 2, Epoch: 1, Rows: []storage.Row{{"only-one"}}},
	}
	for i, r := range cases {
		if _, err := AppendEncode(nil, r); err == nil {
			t.Errorf("case %d: encode accepted malformed record", i)
		}
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	frame := mustEncode(t, Record{Type: TypeInsert, Relation: "r", Arity: 1, Epoch: 2,
		Rows: []storage.Row{{"v"}}})
	for cut := 0; cut < len(frame); cut++ {
		if _, n, err := Decode(frame[:cut]); !errors.Is(err, ErrTorn) || n != 0 {
			t.Fatalf("prefix of %d bytes: want ErrTorn/0, got n=%d err=%v", cut, n, err)
		}
	}
	// Flip a payload byte: checksum must catch it.
	bad := bytes.Clone(frame)
	bad[len(bad)-1] ^= 0xff
	if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: want ErrCorrupt, got %v", err)
	}
}

func TestDecodeUnknownTypeSkippable(t *testing.T) {
	frame := mustEncode(t, Record{Type: TypeInsert, Relation: "r", Arity: 1, Epoch: 2,
		Rows: []storage.Row{{"v"}}})
	// Rewrite the type byte (payload[0] = frame[8]) and fix the checksum:
	// a valid frame of a future record type.
	frame[8] = 250
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(frame[8:]))
	rec, n, err := Decode(frame)
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
	if n != len(frame) {
		t.Fatalf("unknown type must return the frame size %d, got %d", len(frame), n)
	}
	if rec.Type != 250 {
		t.Fatalf("rec.Type = %d, want 250", rec.Type)
	}
}

// openTestLog opens a log on dir with quiet logging and test-friendly
// defaults, failing the test on error.
func openTestLog(t *testing.T, dir string, mut func(*Options)) (*Log, *Recovered) {
	t.Helper()
	opts := Options{
		Dir:    dir,
		Fsync:  FsyncNever,
		Logger: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError})),
	}
	if mut != nil {
		mut(&opts)
	}
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l, rec
}

func ev(rel string, op storage.CommitOp, epoch uint64, rows ...storage.Row) storage.CommitEvent {
	return storage.CommitEvent{Relation: rel, Arity: len(rows[0]), Op: op, Epoch: epoch, Rows: rows}
}

func TestRecoverEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTestLog(t, dir, nil)
	if rec.HadSnapshot || len(rec.Relations) != 0 || rec.Records != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: one empty segment on disk, still nothing to recover.
	l2, rec2 := openTestLog(t, dir, nil)
	defer l2.Close()
	if len(rec2.Relations) != 0 || rec2.Truncated {
		t.Fatalf("empty WAL recovered state: %+v", rec2)
	}
	if rec2.SegmentsScanned == 0 {
		t.Fatal("expected the previous empty segment to be scanned")
	}
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, nil)
	l.AppendCommit(ev("pub", storage.OpInsert, 2, storage.Row{"a", "1"}, storage.Row{"b", "2"}))
	l.AppendCommit(ev("pub", storage.OpInsert, 3, storage.Row{"c", "3"}))
	l.AppendCommit(ev("pub", storage.OpDelete, 4, storage.Row{"a", "1"}))
	l.AppendCommit(ev("seed", storage.OpInsert, 2, storage.Row{"s"}))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := mustReopenClosed(t, dir)
	if rec.Records != 4 || rec.Truncated {
		t.Fatalf("recovery: %+v", rec)
	}
	pub := rec.Relations["pub"]
	if pub == nil || pub.Epoch != 4 || pub.Arity != 2 {
		t.Fatalf("pub state: %+v", pub)
	}
	wantRows := []storage.Row{{"b", "2"}, {"c", "3"}}
	if !reflect.DeepEqual(pub.Rows, wantRows) {
		t.Fatalf("pub rows = %v, want %v", pub.Rows, wantRows)
	}
	if seed := rec.Relations["seed"]; seed == nil || seed.Epoch != 2 || len(seed.Rows) != 1 {
		t.Fatalf("seed state: %+v", rec.Relations["seed"])
	}
}

// mustReopenClosed opens the log a second time and closes it before
// returning, handing back just the recovery result.
func mustReopenClosed(t *testing.T, dir string) (Stats, *Recovered) {
	t.Helper()
	l, rec := openTestLog(t, dir, nil)
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return st, rec
}

func TestSnapshotNoTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, nil)
	if err := l.WriteSnapshot([]RelationState{
		{Name: "pub", Arity: 2, Epoch: 9, Rows: []storage.Row{{"a", "1"}, {"b", "2"}}},
		{Name: "bare", Arity: 1, Epoch: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := mustReopenClosed(t, dir)
	if !rec.HadSnapshot || rec.Records != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	pub := rec.Relations["pub"]
	if pub == nil || pub.Epoch != 9 || len(pub.Rows) != 2 {
		t.Fatalf("pub state: %+v", pub)
	}
	if bare := rec.Relations["bare"]; bare == nil || bare.Epoch != 1 || len(bare.Rows) != 0 {
		t.Fatalf("bare state: %+v", rec.Relations["bare"])
	}
}

func TestSnapshotPlusTailAndIdempotentReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, nil)
	l.AppendCommit(ev("pub", storage.OpInsert, 2, storage.Row{"a", "1"}))
	l.AppendCommit(ev("pub", storage.OpInsert, 3, storage.Row{"b", "2"}))
	// Snapshot covers epochs <= 3; the segment holding them is archived.
	if err := l.WriteSnapshot([]RelationState{
		{Name: "pub", Arity: 2, Epoch: 3, Rows: []storage.Row{{"a", "1"}, {"b", "2"}}},
	}); err != nil {
		t.Fatal(err)
	}
	l.AppendCommit(ev("pub", storage.OpInsert, 4, storage.Row{"c", "3"}))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := mustReopenClosed(t, dir)
	if !rec.HadSnapshot {
		t.Fatal("snapshot not found")
	}
	pub := rec.Relations["pub"]
	if pub == nil || pub.Epoch != 4 || len(pub.Rows) != 3 {
		t.Fatalf("pub state: %+v", pub)
	}

	// Duplicate replay: put a copy of the pre-snapshot records back as a
	// fresh segment after the snapshot — replay must skip them by epoch,
	// not double-apply.
	dup, err := AppendEncode(nil, Record{Type: TypeInsert, Relation: "pub", Arity: 2, Epoch: 2,
		Rows: []storage.Row{{"a", "1"}}})
	if err != nil {
		t.Fatal(err)
	}
	dup, err = AppendEncode(dup, Record{Type: TypeDelete, Relation: "pub", Arity: 2, Epoch: 3,
		Rows: []storage.Row{{"b", "2"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, 99), dup, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec2 := mustReopenClosed(t, dir)
	pub2 := rec2.Relations["pub"]
	if pub2 == nil || pub2.Epoch != 4 || len(pub2.Rows) != 3 {
		t.Fatalf("after duplicate replay: %+v", pub2)
	}
	if rec2.Skipped == 0 {
		t.Fatal("duplicate records were not counted as skipped")
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, nil)
	l.AppendCommit(ev("pub", storage.OpInsert, 2, storage.Row{"a", "1"}))
	l.AppendCommit(ev("pub", storage.OpInsert, 3, storage.Row{"b", "2"}))
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop bytes off the active segment's tail.
	seg := segPath(dir, st.ActiveSegment)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	_, rec := mustReopenClosed(t, dir)
	if !rec.Truncated {
		t.Fatal("torn tail not reported")
	}
	pub := rec.Relations["pub"]
	if pub == nil || pub.Epoch != 2 || len(pub.Rows) != 1 {
		t.Fatalf("state after truncation: %+v", pub)
	}
	// The torn bytes are gone: a third open sees a clean log.
	_, rec2 := mustReopenClosed(t, dir)
	if rec2.Truncated {
		t.Fatal("truncation did not persist")
	}
	if p := rec2.Relations["pub"]; p == nil || p.Epoch != 2 {
		t.Fatalf("state after second recovery: %+v", p)
	}
}

func TestUnknownRecordTypeSkippedWithWarning(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, nil)
	l.AppendCommit(ev("pub", storage.OpInsert, 2, storage.Row{"a", "1"}))
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a valid-checksum frame of a future type, then a normal record
	// after it — replay must skip the unknown frame and keep going.
	future := mustFrameOfType(t, 251)
	tail, err := AppendEncode(nil, Record{Type: TypeInsert, Relation: "pub", Arity: 2, Epoch: 3,
		Rows: []storage.Row{{"b", "2"}}})
	if err != nil {
		t.Fatal(err)
	}
	seg := segPath(dir, st.ActiveSegment)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(future, tail...)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var logged bytes.Buffer
	opts := Options{Dir: dir, Fsync: FsyncNever,
		Logger: slog.New(slog.NewTextHandler(&logged, nil))}
	l2, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Unknown != 1 {
		t.Fatalf("unknown records = %d, want 1", rec.Unknown)
	}
	if rec.Truncated {
		t.Fatal("unknown type must not truncate")
	}
	if p := rec.Relations["pub"]; p == nil || p.Epoch != 3 || len(p.Rows) != 2 {
		t.Fatalf("records after the unknown frame were lost: %+v", rec.Relations["pub"])
	}
	if !bytes.Contains(logged.Bytes(), []byte("unknown type")) {
		t.Fatalf("no warning logged; log output:\n%s", logged.String())
	}
}

// mustFrameOfType builds a checksummed frame whose type byte no current
// binary understands.
func mustFrameOfType(t *testing.T, typ byte) []byte {
	t.Helper()
	frame, err := AppendEncode(nil, Record{Type: TypeInsert, Relation: "x", Arity: 1, Epoch: 1,
		Rows: []storage.Row{{"v"}}})
	if err != nil {
		t.Fatal(err)
	}
	frame[8] = typ
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(frame[8:]))
	return frame
}

func TestRotationAndArchive(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, func(o *Options) { o.SegmentMaxBytes = 128 })
	for i := 0; i < 20; i++ {
		l.AppendCommit(ev("pub", storage.OpInsert, uint64(i+2),
			storage.Row{"key-key-key", "value-value-value"}))
	}
	st := l.Stats()
	if st.SegmentsSealed == 0 {
		t.Fatalf("no segments sealed at a 128-byte cap: %+v", st)
	}

	// Snapshot: sealed segments move to the archive, recovery still sees
	// the full state.
	if err := l.WriteSnapshot([]RelationState{
		{Name: "pub", Arity: 2, Epoch: 21, Rows: []storage.Row{{"key-key-key", "value-value-value"}}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().SegmentsArchived; got == 0 {
		t.Fatal("snapshot archived no sealed segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	arch, err := os.ReadDir(filepath.Join(dir, "archive"))
	if err != nil || len(arch) == 0 {
		t.Fatalf("archive dir empty (err=%v)", err)
	}

	_, rec := mustReopenClosed(t, dir)
	if p := rec.Relations["pub"]; p == nil || p.Epoch != 21 {
		t.Fatalf("state after archive: %+v", rec.Relations["pub"])
	}
}

func TestSnapshotFromSource(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, nil)
	defer l.Close()
	if err := l.Snapshot(); err == nil {
		t.Fatal("Snapshot without a source must fail")
	}
	l.SetSource(func() []RelationState {
		return []RelationState{{Name: "pub", Arity: 2, Epoch: 5, Rows: []storage.Row{{"a", "1"}}}}
	})
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Snapshots != 1 {
		t.Fatalf("snapshots = %d, want 1", l.Stats().Snapshots)
	}
}

func TestIntervalFsyncPolicy(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, func(o *Options) {
		o.Fsync = FsyncInterval
		o.FsyncInterval = 5 * time.Millisecond
	})
	defer l.Close()
	l.AppendCommit(ev("pub", storage.OpInsert, 2, storage.Row{"a", "1"}))
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval policy never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir must fail")
	}
	if _, _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("Open with a bogus fsync policy must fail")
	}
}
