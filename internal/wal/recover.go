package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"toorjah/internal/storage"
)

// Recovered is the durable state Open found: per-relation live rows and
// epochs, ready for storage.RestoreTable, plus an account of how they were
// reassembled.
type Recovered struct {
	// Relations maps name to recovered state. Empty when the directory
	// was fresh.
	Relations map[string]*RelationState

	HadSnapshot     bool
	SnapshotSeq     uint64
	SegmentsScanned int
	Records         int  // tail records applied on top of the snapshot
	Skipped         int  // records at or below their relation's snapshot epoch
	Unknown         int  // checksummed records of unknown type, skipped
	Truncated       bool // a torn/corrupt tail was cut from a segment
	Duration        time.Duration
}

func (r *Recovered) stats() RecoveryStats {
	return RecoveryStats{
		HadSnapshot:     r.HadSnapshot,
		SnapshotSeq:     r.SnapshotSeq,
		SegmentsScanned: r.SegmentsScanned,
		RecordsReplayed: r.Records,
		RecordsSkipped:  r.Skipped,
		UnknownRecords:  r.Unknown,
		Truncated:       r.Truncated,
		Relations:       len(r.Relations),
		DurationMS:      float64(r.Duration) / float64(time.Millisecond),
	}
}

// relReplay accumulates one relation's state during replay, keeping live
// rows in first-insert order so a restored table enumerates like the
// original.
type relReplay struct {
	arity int
	epoch uint64
	order []storage.Row  // live rows; deleted slots are nil
	index map[string]int // row key -> slot in order
}

// rowKey builds a collision-free map key from a row's raw values
// (length-prefixed, so value boundaries cannot alias).
func rowKey(r storage.Row) string {
	var b []byte
	for _, v := range r {
		b = binary.AppendUvarint(b, uint64(len(v)))
		b = append(b, v...)
	}
	return string(b)
}

// apply folds one record into the replay state. Records at or below the
// relation's current epoch are duplicates of state already restored (the
// snapshot, or a record replayed from an earlier segment) and are skipped —
// this is what makes replay after a covering snapshot idempotent.
func (s *relReplay) apply(rec Record) (applied bool) {
	if rec.Epoch <= s.epoch {
		return false
	}
	switch rec.Type {
	case TypeSnapshotRows:
		s.order = s.order[:0]
		s.index = make(map[string]int, len(rec.Rows))
		for _, row := range rec.Rows {
			if _, dup := s.index[rowKey(row)]; dup {
				continue
			}
			s.index[rowKey(row)] = len(s.order)
			s.order = append(s.order, row)
		}
	case TypeInsert:
		if s.index == nil {
			s.index = make(map[string]int, len(rec.Rows))
		}
		for _, row := range rec.Rows {
			k := rowKey(row)
			if _, live := s.index[k]; live {
				continue
			}
			s.index[k] = len(s.order)
			s.order = append(s.order, row)
		}
	case TypeDelete:
		for _, row := range rec.Rows {
			k := rowKey(row)
			if slot, live := s.index[k]; live {
				s.order[slot] = nil
				delete(s.index, k)
			}
		}
	}
	s.epoch = rec.Epoch
	return true
}

func (s *relReplay) state(name string) *RelationState {
	rows := make([]storage.Row, 0, len(s.index))
	for _, row := range s.order {
		if row != nil {
			rows = append(rows, row)
		}
	}
	return &RelationState{Name: name, Arity: s.arity, Epoch: s.epoch, Rows: rows}
}

// seqEntry is one sequence-numbered file in the log directory.
type seqEntry struct {
	name string
	seq  uint64
}

// listSeq returns the prefix/suffix-matching files of dir in ascending
// sequence order, ignoring names that do not parse (temp files, strays).
func listSeq(dir, prefix, suffix string) ([]seqEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []seqEntry
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		mid := name[len(prefix) : len(name)-len(suffix)]
		seq, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, seqEntry{name: name, seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// recoverState reassembles durable state from dir: newest loadable
// snapshot first (corrupt snapshots fall back to older ones), then every
// segment in sequence order replayed on top, truncating the first torn or
// corrupt record and orphaning anything after it. It returns the highest
// sequence number seen across live and archived files, so new files never
// collide with old ones. Only I/O failures are errors — corruption is
// recovered around, not fatal.
func recoverState(dir string, logger *slog.Logger) (*Recovered, uint64, error) {
	start := time.Now()
	rec := &Recovered{Relations: make(map[string]*RelationState)}

	segs, err := listSeq(dir, "wal-", ".log")
	if err != nil {
		return nil, 0, fmt.Errorf("wal: scanning %s: %w", dir, err)
	}
	snaps, err := listSeq(dir, "snap-", ".snap")
	if err != nil {
		return nil, 0, fmt.Errorf("wal: scanning %s: %w", dir, err)
	}
	maxSeq := uint64(0)
	for _, e := range segs {
		maxSeq = max(maxSeq, e.seq)
	}
	for _, e := range snaps {
		maxSeq = max(maxSeq, e.seq)
	}
	// Archived files left the live directory, but their sequence numbers
	// must stay retired.
	for _, sub := range []struct{ prefix, suffix string }{{"wal-", ".log"}, {"snap-", ".snap"}} {
		if arch, err := listSeq(filepath.Join(dir, "archive"), sub.prefix, sub.suffix); err == nil {
			for _, e := range arch {
				maxSeq = max(maxSeq, e.seq)
			}
		}
	}

	states := make(map[string]*relReplay)

	// Newest loadable snapshot wins; a snapshot that fails its checksums
	// is logged and skipped in favor of an older one (replay of the full
	// segment history behind it restores the same state).
	for i := len(snaps) - 1; i >= 0; i-- {
		e := snaps[i]
		loaded, unknown, err := loadSnapshot(filepath.Join(dir, e.name))
		if err != nil {
			logger.Warn("wal: snapshot unreadable, falling back", "file", e.name, "err", err)
			continue
		}
		for name, s := range loaded {
			states[name] = s
		}
		rec.Unknown += unknown
		rec.HadSnapshot = true
		rec.SnapshotSeq = e.seq
		break
	}

	// Replay segments in order. The first torn/corrupt record ends replay:
	// everything after it postdates a record that never fully committed.
	truncated := false
	for _, e := range segs {
		if truncated {
			orphan(dir, e.name, logger)
			continue
		}
		rec.SegmentsScanned++
		res, err := replaySegment(filepath.Join(dir, e.name), states, logger)
		if err != nil {
			return nil, 0, err
		}
		rec.Records += res.applied
		rec.Skipped += res.skipped
		rec.Unknown += res.unknown
		if res.truncatedAt >= 0 {
			truncated = true
			rec.Truncated = true
			logger.Warn("wal: truncating torn tail",
				"file", e.name, "offset", res.truncatedAt, "reason", res.truncateReason)
			if err := os.Truncate(filepath.Join(dir, e.name), res.truncatedAt); err != nil {
				return nil, 0, fmt.Errorf("wal: truncating %s: %w", e.name, err)
			}
		}
	}

	for name, s := range states {
		rec.Relations[name] = s.state(name)
	}
	rec.Duration = time.Since(start)
	return rec, maxSeq, nil
}

// orphan renames a segment that postdates a truncation point out of the
// live directory — its records depend on a record that never committed, so
// no future recovery may replay it, but the bytes are kept for forensics.
func orphan(dir, name string, logger *slog.Logger) {
	logger.Warn("wal: orphaning segment past a truncated record", "file", name)
	to := filepath.Join(dir, "archive", name+".orphan")
	if err := os.Rename(filepath.Join(dir, name), to); err != nil {
		logger.Error("wal: orphan move failed", "file", name, "err", err)
	}
}

// loadSnapshot reads one snapshot file. Unlike segment replay, any tear or
// corruption invalidates the whole file (snapshots are written atomically,
// so damage means the file cannot be trusted at all).
func loadSnapshot(path string) (map[string]*relReplay, int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string]*relReplay)
	unknown := 0
	for len(b) > 0 {
		r, n, err := Decode(b)
		if errors.Is(err, ErrUnknownType) {
			unknown++
			b = b[n:]
			continue
		}
		if err != nil {
			return nil, 0, err
		}
		if r.Type != TypeSnapshotRows {
			return nil, 0, fmt.Errorf("wal: record type %d inside a snapshot file", r.Type)
		}
		s := &relReplay{arity: r.Arity}
		s.apply(r)
		out[r.Relation] = s
		b = b[n:]
	}
	return out, unknown, nil
}

// segmentResult is one segment's replay outcome. truncatedAt < 0 means the
// segment was clean.
type segmentResult struct {
	applied, skipped, unknown int
	truncatedAt               int64
	truncateReason            string
}

// replaySegment folds one segment's records into states, stopping at the
// first torn or corrupt record and reporting its byte offset.
func replaySegment(path string, states map[string]*relReplay, logger *slog.Logger) (segmentResult, error) {
	res := segmentResult{truncatedAt: -1}
	b, err := os.ReadFile(path)
	if err != nil {
		return res, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	off := int64(0)
	for len(b) > 0 {
		r, n, err := Decode(b)
		switch {
		case errors.Is(err, ErrUnknownType):
			res.unknown++
			logger.Warn("wal: skipping record of unknown type",
				"file", filepath.Base(path), "offset", off, "type", r.Type)
			b = b[n:]
			off += int64(n)
			continue
		case errors.Is(err, ErrTorn), errors.Is(err, ErrCorrupt):
			res.truncatedAt = off
			res.truncateReason = err.Error()
			return res, nil
		case err != nil:
			return res, fmt.Errorf("wal: decoding %s: %w", path, err)
		}
		s := states[r.Relation]
		if s == nil {
			s = &relReplay{arity: r.Arity}
			states[r.Relation] = s
		}
		if s.arity != r.Arity {
			logger.Warn("wal: skipping record with mismatched arity",
				"file", filepath.Base(path), "relation", r.Relation,
				"arity", r.Arity, "want", s.arity)
			res.skipped++
		} else if s.apply(r) {
			res.applied++
		} else {
			res.skipped++
		}
		b = b[n:]
		off += int64(n)
	}
	return res, nil
}
