package wal

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"

	"toorjah/internal/storage"
)

// FuzzWALDecode drives the frame decoder with arbitrary bytes. The
// invariants: decoding never panics, never returns a record whose payload
// fails its checksum, and every successfully decoded record re-encodes to
// exactly the bytes it was decoded from (the encoding is canonical — which
// is what lets recovery compute truncation offsets from re-encodable
// records). Seeds cover each record type, empty rows, and binary values.
func FuzzWALDecode(f *testing.F) {
	seed := func(r Record) {
		b, err := AppendEncode(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(Record{Type: TypeInsert, Relation: "pub", Arity: 2, Epoch: 2,
		Rows: []storage.Row{{"a", "1"}, {"b\x00c", ""}}})
	seed(Record{Type: TypeDelete, Relation: "r", Arity: 1, Epoch: 9,
		Rows: []storage.Row{{"gone"}}})
	seed(Record{Type: TypeSnapshotRows, Relation: "empty", Arity: 3, Epoch: 1})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xde, 0xad, 0xbe, 0xef, 42})

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := Decode(b)
		if err != nil {
			if errors.Is(err, ErrUnknownType) {
				// Skippable: n must cover a checksum-clean frame inside b.
				if n < frameHeader || n > len(b) {
					t.Fatalf("unknown-type frame size %d out of range (len %d)", n, len(b))
				}
			} else if n != 0 {
				t.Fatalf("error %v with nonzero frame size %d", err, n)
			}
			return
		}
		if n < frameHeader || n > len(b) {
			t.Fatalf("frame size %d out of range (len %d)", n, len(b))
		}
		// The decoded record's payload must match the checksum it carried.
		re, err := AppendEncode(nil, rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode differs from input frame:\n in: %x\nout: %x", b[:n], re)
		}
		sum := crc32.ChecksumIEEE(re[frameHeader:])
		if got := crc32.ChecksumIEEE(b[frameHeader:n]); got != sum {
			t.Fatalf("returned record fails its checksum: %08x vs %08x", got, sum)
		}
	})
}
