// Package wal gives toorjahd durable ingestion: a write-ahead log that
// appends one checksummed record per applied mutation batch, periodic
// epoch-stamped snapshot files of each relation's live rows, and startup
// recovery that loads the latest valid snapshot and replays the WAL tail.
//
// The on-disk unit is the frame:
//
//	uint32 payload length (big endian)
//	uint32 CRC-32 (IEEE) of the payload
//	payload
//
// and the payload is a canonical encoding of one Record:
//
//	byte   record type (1 insert, 2 delete, 3 snapshot-relation)
//	uint64 epoch after the batch applied (big endian)
//	uint16 relation name length + name bytes
//	uint16 arity
//	uint32 row count
//	rows:  arity × (uint32 value length + value bytes) each
//
// The encoding is canonical — for every decodable frame, re-encoding the
// decoded record reproduces the input bytes exactly — which is what makes
// the encode↔decode fuzz round-trip meaningful.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"toorjah/internal/storage"
)

// Record types. Insert and delete records live in log segments; snapshot
// records (one per relation, carrying the full live row set) live in
// snapshot files. Unknown types are tolerated on read — a checksummed
// frame of an unrecognized type is skipped with a warning, so an old
// binary can replay a newer log's tail.
const (
	TypeInsert       byte = 1
	TypeDelete       byte = 2
	TypeSnapshotRows byte = 3
)

// Frame layout constants.
const (
	frameHeader = 8 // uint32 length + uint32 CRC

	// maxPayload bounds a single record. A corrupt length prefix must not
	// make recovery allocate gigabytes before the checksum can refute it.
	maxPayload = 1 << 28 // 256 MiB

	maxRelationName = 1 << 16 // encoded in uint16
	maxArity        = 1 << 16 // encoded in uint16
)

// Decode errors. ErrTorn means the buffer ends before the frame does — the
// classic partially-written tail record; recovery truncates there.
// ErrCorrupt means the frame is self-inconsistent (bad checksum, impossible
// length, malformed payload). ErrUnknownType means the frame checksums
// clean but carries a record type this binary does not understand; the
// frame length is still returned so the reader can skip it.
var (
	ErrTorn        = errors.New("wal: torn record")
	ErrCorrupt     = errors.New("wal: corrupt record")
	ErrUnknownType = errors.New("wal: unknown record type")
)

// Record is one logged event: a mutation batch applied to a relation at a
// given epoch, or one relation's full live contents inside a snapshot.
type Record struct {
	Type     byte
	Relation string
	Arity    int
	Epoch    uint64
	Rows     []storage.Row
}

// AppendEncode appends the framed encoding of r to dst. Encoding fails
// only on records the log never produces (oversized names, rows that
// disagree with the arity, zero arity with rows) — the error keeps a
// corrupted in-memory event out of the log instead of panicking a server.
func AppendEncode(dst []byte, r Record) ([]byte, error) {
	if len(r.Relation) == 0 || len(r.Relation) >= maxRelationName {
		return dst, fmt.Errorf("wal: relation name length %d out of range", len(r.Relation))
	}
	if r.Arity <= 0 || r.Arity >= maxArity {
		return dst, fmt.Errorf("wal: arity %d out of range", r.Arity)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = append(dst, r.Type)
	dst = binary.BigEndian.AppendUint64(dst, r.Epoch)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Relation)))
	dst = append(dst, r.Relation...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.Arity))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Rows)))
	for _, row := range r.Rows {
		if len(row) != r.Arity {
			return dst[:start], fmt.Errorf("wal: row arity %d in a record of arity %d", len(row), r.Arity)
		}
		for _, v := range row {
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(v)))
			dst = append(dst, v...)
		}
	}
	payload := dst[start+frameHeader:]
	if len(payload) > maxPayload {
		return dst[:start], fmt.Errorf("wal: payload %d bytes exceeds the %d record cap", len(payload), maxPayload)
	}
	if len(r.Rows) > maxRows(len(payload), r.Arity) {
		return dst[:start], fmt.Errorf("wal: row count %d exceeds the record cap", len(r.Rows))
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// maxRows bounds the row count a payload of a given size can legitimately
// carry: every row costs at least 4 bytes per column on the wire. The
// bound defeats length-prefix inflation — a checksummed-but-hostile frame
// cannot make the decoder allocate rows it has no bytes for.
func maxRows(payloadLen, arity int) int {
	if arity <= 0 {
		return 0
	}
	return payloadLen / (4 * arity)
}

// Decode reads one frame from the front of b. On success it returns the
// record and the total frame size in bytes. ErrTorn and ErrCorrupt return
// n = 0; ErrUnknownType returns the frame size so callers can skip the
// frame while logging it.
func Decode(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, ErrTorn
	}
	payloadLen := int(binary.BigEndian.Uint32(b))
	if payloadLen > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds the %d cap", ErrCorrupt, payloadLen, maxPayload)
	}
	if len(b) < frameHeader+payloadLen {
		return Record{}, 0, ErrTorn
	}
	sum := binary.BigEndian.Uint32(b[4:])
	payload := b[frameHeader : frameHeader+payloadLen]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	n := frameHeader + payloadLen
	rec, err := decodePayload(payload)
	if err != nil {
		if errors.Is(err, ErrUnknownType) {
			return rec, n, err
		}
		return Record{}, 0, err
	}
	return rec, n, nil
}

// decodePayload parses a checksum-verified payload. Any malformation past
// this point is ErrCorrupt: the frame was written whole, but not by this
// encoder.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 1+8+2 {
		return Record{}, fmt.Errorf("%w: payload header short", ErrCorrupt)
	}
	var r Record
	r.Type = p[0]
	r.Epoch = binary.BigEndian.Uint64(p[1:])
	nameLen := int(binary.BigEndian.Uint16(p[9:]))
	p = p[11:]
	if len(p) < nameLen+2+4 {
		return Record{}, fmt.Errorf("%w: truncated relation name", ErrCorrupt)
	}
	if nameLen == 0 {
		return Record{}, fmt.Errorf("%w: empty relation name", ErrCorrupt)
	}
	r.Relation = string(p[:nameLen])
	r.Arity = int(binary.BigEndian.Uint16(p[nameLen:]))
	nrows := int(binary.BigEndian.Uint32(p[nameLen+2:]))
	p = p[nameLen+2+4:]
	if r.Type != TypeInsert && r.Type != TypeDelete && r.Type != TypeSnapshotRows {
		return r, fmt.Errorf("%w: type %d", ErrUnknownType, r.Type)
	}
	if r.Arity == 0 {
		return Record{}, fmt.Errorf("%w: zero arity", ErrCorrupt)
	}
	if nrows > maxRows(len(p), r.Arity) {
		return Record{}, fmt.Errorf("%w: row count %d exceeds payload capacity", ErrCorrupt, nrows)
	}
	if nrows > 0 {
		r.Rows = make([]storage.Row, 0, nrows)
	}
	for i := 0; i < nrows; i++ {
		row := make(storage.Row, r.Arity)
		for c := 0; c < r.Arity; c++ {
			if len(p) < 4 {
				return Record{}, fmt.Errorf("%w: truncated row", ErrCorrupt)
			}
			vlen := int(binary.BigEndian.Uint32(p))
			p = p[4:]
			if len(p) < vlen {
				return Record{}, fmt.Errorf("%w: truncated value", ErrCorrupt)
			}
			row[c] = string(p[:vlen])
			p = p[vlen:]
		}
		r.Rows = append(r.Rows, row)
	}
	if len(p) != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return r, nil
}
