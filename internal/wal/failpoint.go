package wal

import (
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

// FailpointEnv names the environment variable the crash harness uses to
// make a toorjahd child die at a byte-exact point in its own WAL I/O:
//
//	TOORJAH_WAL_FAILPOINT=crash-after-bytes=N   die mid-write after N
//	                                            total appended bytes,
//	                                            leaving a torn record
//	TOORJAH_WAL_FAILPOINT=crash-in-fsync=N      die entering the Nth fsync
//
// Death is SIGKILL to self — no deferred cleanup, no flush, the same
// no-goodbye exit a kill -9 or OOM kill delivers. The variable is read
// once at Open; production processes never set it.
const FailpointEnv = "TOORJAH_WAL_FAILPOINT"

const (
	failAfterBytes = iota + 1
	failInFsync
)

type failpoint struct {
	mode  int
	limit int64
	count atomic.Int64
}

// failpointFromEnv parses FailpointEnv, returning nil (no failpoint) when
// unset or malformed — a typo must not arm a crash in a real deployment.
func failpointFromEnv() *failpoint {
	spec := os.Getenv(FailpointEnv)
	if spec == "" {
		return nil
	}
	mode := 0
	rest := ""
	if v, ok := strings.CutPrefix(spec, "crash-after-bytes="); ok {
		mode, rest = failAfterBytes, v
	} else if v, ok := strings.CutPrefix(spec, "crash-in-fsync="); ok {
		mode, rest = failInFsync, v
	} else {
		return nil
	}
	limit, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || limit <= 0 {
		return nil
	}
	return &failpoint{mode: mode, limit: limit}
}

// write appends b to f, dying mid-write if the configured byte threshold
// falls inside b: the prefix up to the threshold is written (and pushed to
// the OS so the torn bytes actually reach the file), then the process
// SIGKILLs itself. The result is exactly the torn final record recovery
// must truncate.
func (fp *failpoint) write(f *os.File, b []byte) (int, error) {
	if fp == nil || fp.mode != failAfterBytes {
		return f.Write(b)
	}
	already := fp.count.Add(int64(len(b))) - int64(len(b))
	if already+int64(len(b)) < fp.limit {
		return f.Write(b)
	}
	keep := fp.limit - already
	if keep < 0 {
		keep = 0
	}
	if keep > 0 {
		//toorjahvet:allow durability-hygiene (the process dies on the next line; the torn prefix is the point)
		_, _ = f.Write(b[:keep])
	}
	die()
	return int(keep), nil
}

// beforeSync counts fsyncs and dies entering the configured one — the
// record bytes are written but the sync never completes, modeling a crash
// in the middle of the commit path.
func (fp *failpoint) beforeSync() {
	if fp == nil || fp.mode != failInFsync {
		return
	}
	if fp.count.Add(1) == fp.limit {
		die()
	}
}

// die delivers SIGKILL to the current process: unconditional, untrappable,
// identical to the kill -9 the crash harness sends externally.
func die() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable unless the kill syscall itself failed
}
