package wal

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"toorjah/internal/storage"
)

// Fsync policies. Always syncs inside every append, so a batch is on disk
// before the mutating call — and therefore the client's acknowledgement —
// returns. Interval syncs from a background ticker: bounded data loss on
// power failure, near-zero per-batch latency. Never leaves flushing to the
// OS entirely: process crashes still lose nothing (the bytes are written
// before the ack), power loss may lose the unflushed tail.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncNever    = "never"
)

// Defaults for zero Options fields.
const (
	defaultFsyncInterval   = 100 * time.Millisecond
	defaultSegmentMaxBytes = 64 << 20
)

// Options configures a Log. Only Dir is required.
type Options struct {
	// Dir holds the active log segments and snapshot files; created if
	// missing.
	Dir string

	// Fsync is the durability policy: FsyncAlways (default), FsyncInterval
	// or FsyncNever.
	Fsync string

	// FsyncInterval is the background flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration

	// SegmentMaxBytes seals the active segment when it would grow past
	// this size (default 64 MiB).
	SegmentMaxBytes int64

	// SegmentMaxAge seals a non-empty active segment older than this,
	// so low-traffic relations still reach the archive. 0 disables.
	SegmentMaxAge time.Duration

	// SnapshotInterval writes a snapshot (and archives the sealed
	// segments it covers) this often, when a source is set. 0 disables
	// automatic snapshots.
	SnapshotInterval time.Duration

	// ArchiveDir receives sealed segments and superseded snapshots
	// (default Dir/archive). Recovery never reads it; it is the cold
	// tier an operator ships elsewhere or prunes.
	ArchiveDir string

	// Logger receives recovery warnings and append-path errors
	// (default slog.Default()).
	Logger *slog.Logger
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("wal: Options.Dir is required")
	}
	switch o.Fsync {
	case "":
		o.Fsync = FsyncAlways
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return o, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", o.Fsync)
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = defaultFsyncInterval
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = defaultSegmentMaxBytes
	}
	if o.ArchiveDir == "" {
		o.ArchiveDir = filepath.Join(o.Dir, "archive")
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o, nil
}

// RelationState is one relation's durable state: the rows alive at Epoch.
// Recovery returns these; snapshot sources produce them.
type RelationState struct {
	Name  string
	Arity int
	Epoch uint64
	Rows  []storage.Row
}

// Log is an append-only write-ahead log over size/age-rotated segment
// files, with epoch-stamped snapshots that bound replay and feed sealed
// segments to the archive. Open recovers existing state; AppendCommit is
// the storage commit hook; Close flushes and stops background work.
type Log struct {
	opts   Options
	logger *slog.Logger
	fail   *failpoint

	mu          sync.Mutex
	f           *os.File
	activeSeq   uint64
	activeBytes int64
	openedAt    time.Time
	dirty       bool // unsynced bytes in the active segment
	nextSeq     uint64
	source      func() []RelationState
	buf         []byte // append-path encode scratch, reused under mu
	closed      bool
	lastErr     error

	snapMu sync.Mutex // serializes snapshot writers

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	appends   atomic.Int64
	bytes     atomic.Int64
	syncs     atomic.Int64
	errors    atomic.Int64
	sealed    atomic.Int64
	archived  atomic.Int64
	snapshots atomic.Int64

	recovery RecoveryStats
}

// Open creates Dir if needed, recovers the durable state it holds (latest
// valid snapshot + WAL tail replay, truncating at the first torn record),
// starts a fresh active segment, and launches the background flush /
// rotation / snapshot loop. The returned Recovered is never nil.
func Open(opts Options) (*Log, *Recovered, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if err := os.MkdirAll(opts.ArchiveDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		opts:   opts,
		logger: opts.Logger,
		fail:   failpointFromEnv(),
		stopc:  make(chan struct{}),
	}
	rec, maxSeq, err := recoverState(opts.Dir, l.logger)
	if err != nil {
		return nil, nil, err
	}
	l.recovery = rec.stats()
	l.nextSeq = maxSeq + 1
	l.mu.Lock()
	err = l.openSegmentLocked()
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	l.wg.Add(1)
	go l.run()
	return l, rec, nil
}

// segPath and snapPath name on-disk files; the 16-digit zero-padded
// sequence makes lexical order equal numeric order.
func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.snap", seq))
}

// AppendCommit logs one applied mutation batch. It has the exact shape of
// the storage commit hook and runs inside it: under FsyncAlways the record
// is on disk before the mutating call returns, so every acknowledged batch
// is durable. Append errors are counted and logged, never propagated — a
// full disk degrades durability, it does not take query serving down.
func (l *Log) AppendCommit(ev storage.CommitEvent) {
	typ := TypeInsert
	if ev.Op == storage.OpDelete {
		typ = TypeDelete
	}
	l.append(Record{Type: typ, Relation: ev.Relation, Arity: ev.Arity, Epoch: ev.Epoch, Rows: ev.Rows})
}

func (l *Log) append(rec Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	buf, err := AppendEncode(l.buf[:0], rec)
	if err != nil {
		l.noteErrLocked("encode", err)
		return
	}
	l.buf = buf
	l.rotateLocked(int64(len(buf)))
	n, err := l.fail.write(l.f, buf)
	l.activeBytes += int64(n)
	if n > 0 {
		l.dirty = true
	}
	if err != nil {
		l.noteErrLocked("append", err)
		return
	}
	l.appends.Add(1)
	l.bytes.Add(int64(n))
	if l.opts.Fsync == FsyncAlways {
		l.syncLocked()
	}
}

// syncLocked flushes the active segment if it has unsynced bytes.
func (l *Log) syncLocked() {
	if !l.dirty || l.f == nil {
		return
	}
	l.fail.beforeSync()
	if err := l.f.Sync(); err != nil {
		l.noteErrLocked("fsync", err)
		return
	}
	l.dirty = false
	l.syncs.Add(1)
}

func (l *Log) noteErrLocked(op string, err error) {
	l.errors.Add(1)
	l.lastErr = err
	l.logger.Error("wal "+op+" failed", "dir", l.opts.Dir, "err", err)
}

// rotateLocked seals the active segment and opens a fresh one when the
// incoming record would push it past the size cap or it has outlived the
// age cap. An empty segment never rotates.
func (l *Log) rotateLocked(incoming int64) {
	if l.activeBytes == 0 {
		return
	}
	over := l.activeBytes+incoming > l.opts.SegmentMaxBytes
	old := l.opts.SegmentMaxAge > 0 && time.Since(l.openedAt) >= l.opts.SegmentMaxAge
	if !over && !old {
		return
	}
	l.sealLocked()
}

// sealLocked syncs and closes the active segment, then opens the next one.
// A sealed segment is complete forever, so it is flushed regardless of the
// fsync policy. If the new segment cannot be created the old one stays
// active — rotation failure must not stop the log.
func (l *Log) sealLocked() {
	prev, prevSeq := l.f, l.activeSeq
	if err := l.openSegmentLocked(); err != nil {
		l.f, l.activeSeq = prev, prevSeq
		l.noteErrLocked("rotate", err)
		return
	}
	if err := prev.Sync(); err != nil {
		l.noteErrLocked("seal fsync", err)
	}
	if err := prev.Close(); err != nil {
		l.noteErrLocked("seal close", err)
	}
	l.sealed.Add(1)
}

// openSegmentLocked creates the next segment file and makes it active.
//
//toorjahvet:allow durability-hygiene (creates an empty segment; nothing to fsync until the first append)
func (l *Log) openSegmentLocked() error {
	seq := l.nextSeq
	f, err := os.OpenFile(segPath(l.opts.Dir, seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	l.nextSeq++
	l.f = f
	l.activeSeq = seq
	l.activeBytes = 0
	l.openedAt = time.Now()
	l.dirty = false
	return nil
}

// SetSource installs the function snapshots read the system state from: a
// consistent set of pinned relation versions. Until a source is set,
// Snapshot fails and the automatic snapshot ticker idles.
func (l *Log) SetSource(fn func() []RelationState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.source = fn
}

// Snapshot writes a snapshot from the installed source and archives the
// sealed segments it covers.
func (l *Log) Snapshot() error {
	l.mu.Lock()
	src := l.source
	l.mu.Unlock()
	if src == nil {
		return fmt.Errorf("wal: no snapshot source installed")
	}
	return l.snapshot(src)
}

// WriteSnapshot writes a snapshot of the given states directly — the
// bootstrap path, used to persist a freshly seeded database before the
// first batch arrives so the WAL tail always has a base to replay onto.
func (l *Log) WriteSnapshot(states []RelationState) error {
	return l.snapshot(func() []RelationState { return states })
}

// snapshot is the common snapshot procedure. Order matters: the active
// segment is sealed *before* the source reads the relation states, so
// every record in a sealed segment is covered by (or duplicated in) the
// snapshot — only then is archiving the sealed segments safe. Records that
// race into the new active segment while the source reads are at worst
// duplicated by the snapshot; replay's epoch check skips them.
func (l *Log) snapshot(src func() []RelationState) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	if l.activeBytes > 0 {
		l.sealLocked()
	}
	coveredBelow := l.activeSeq
	seq := l.nextSeq
	l.nextSeq++
	l.mu.Unlock()

	states := src()
	if err := l.writeSnapshotFile(seq, states); err != nil {
		l.mu.Lock()
		l.noteErrLocked("snapshot", err)
		l.mu.Unlock()
		return err
	}
	l.snapshots.Add(1)
	l.archive(coveredBelow, seq)
	return nil
}

// writeSnapshotFile writes states (sorted by name, one record each) to a
// temp file, flushes it, and renames it into place — a snapshot is either
// completely present or absent, never torn.
func (l *Log) writeSnapshotFile(seq uint64, states []RelationState) error {
	sort.Slice(states, func(i, j int) bool { return states[i].Name < states[j].Name })
	var buf []byte
	for _, st := range states {
		var err error
		buf, err = AppendEncode(buf, Record{
			Type:     TypeSnapshotRows,
			Relation: st.Name,
			Arity:    st.Arity,
			Epoch:    st.Epoch,
			Rows:     st.Rows,
		})
		if err != nil {
			return fmt.Errorf("wal: encoding snapshot of %s: %w", st.Name, err)
		}
	}
	final := snapPath(l.opts.Dir, seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		//toorjahvet:allow durability-hygiene (the write already failed; the close error cannot matter)
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//toorjahvet:allow durability-hygiene (the fsync already failed; the close error cannot matter)
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(l.opts.Dir)
}

// syncDir flushes a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		//toorjahvet:allow durability-hygiene (the directory fsync already failed; the close error cannot matter)
		_ = d.Close()
		return err
	}
	return d.Close()
}

// archive moves every sealed segment below the snapshot's rotation point,
// and every superseded snapshot, into the archive directory — the
// seal-then-archive-then-delete-local lifecycle, with os.Rename standing
// in for the upload. Failures are logged and retried implicitly by the
// next snapshot.
func (l *Log) archive(segsBelow, snapSeq uint64) {
	names, err := listSeq(l.opts.Dir, "wal-", ".log")
	if err != nil {
		l.logger.Error("wal archive scan failed", "dir", l.opts.Dir, "err", err)
		return
	}
	for _, e := range names {
		if e.seq >= segsBelow {
			continue
		}
		l.moveToArchive(e.name)
	}
	snaps, err := listSeq(l.opts.Dir, "snap-", ".snap")
	if err != nil {
		l.logger.Error("wal archive scan failed", "dir", l.opts.Dir, "err", err)
		return
	}
	for _, e := range snaps {
		if e.seq >= snapSeq {
			continue
		}
		l.moveToArchive(e.name)
	}
}

func (l *Log) moveToArchive(name string) {
	from := filepath.Join(l.opts.Dir, name)
	to := filepath.Join(l.opts.ArchiveDir, name)
	if err := os.Rename(from, to); err != nil {
		l.errors.Add(1)
		l.logger.Error("wal archive move failed", "file", name, "err", err)
		return
	}
	l.archived.Add(1)
}

// run is the background loop: interval fsync, age-based rotation, and
// periodic snapshots.
func (l *Log) run() {
	defer l.wg.Done()
	var syncC, ageC, snapC <-chan time.Time
	if l.opts.Fsync == FsyncInterval {
		t := time.NewTicker(l.opts.FsyncInterval)
		defer t.Stop()
		syncC = t.C
	}
	if l.opts.SegmentMaxAge > 0 {
		period := l.opts.SegmentMaxAge / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		ageC = t.C
	}
	if l.opts.SnapshotInterval > 0 {
		t := time.NewTicker(l.opts.SnapshotInterval)
		defer t.Stop()
		snapC = t.C
	}
	for {
		select {
		case <-l.stopc:
			return
		case <-syncC:
			l.mu.Lock()
			l.syncLocked()
			l.mu.Unlock()
		case <-ageC:
			l.mu.Lock()
			if !l.closed {
				l.rotateLocked(0)
			}
			l.mu.Unlock()
		case <-snapC:
			l.mu.Lock()
			src := l.source
			l.mu.Unlock()
			if src != nil {
				// Error already counted and logged by snapshot.
				_ = l.snapshot(src)
			}
		}
	}
}

// Close stops the background loop, flushes the active segment and closes
// it. The log accepts no appends afterwards.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.stopc) })
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.syncLocked()
	err := l.f.Close()
	l.f = nil
	return err
}

// Stats is a point-in-time counter snapshot for /stats and /metrics.
type Stats struct {
	Dir              string        `json:"dir"`
	Fsync            string        `json:"fsync"`
	Appends          int64         `json:"appends"`
	AppendedBytes    int64         `json:"appended_bytes"`
	Syncs            int64         `json:"syncs"`
	Errors           int64         `json:"errors"`
	SegmentsSealed   int64         `json:"segments_sealed"`
	SegmentsArchived int64         `json:"segments_archived"`
	Snapshots        int64         `json:"snapshots"`
	ActiveSegment    uint64        `json:"active_segment"`
	ActiveBytes      int64         `json:"active_bytes"`
	LastError        string        `json:"last_error,omitempty"`
	Recovery         RecoveryStats `json:"recovery"`
}

// RecoveryStats describes what Open found on disk.
type RecoveryStats struct {
	HadSnapshot     bool    `json:"had_snapshot"`
	SnapshotSeq     uint64  `json:"snapshot_seq,omitempty"`
	SegmentsScanned int     `json:"segments_scanned"`
	RecordsReplayed int     `json:"records_replayed"`
	RecordsSkipped  int     `json:"records_skipped"`
	UnknownRecords  int     `json:"unknown_records"`
	Truncated       bool    `json:"truncated"`
	Relations       int     `json:"relations"`
	DurationMS      float64 `json:"duration_ms"`
}

// Stats returns current counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	activeSeq, activeBytes, lastErr := l.activeSeq, l.activeBytes, l.lastErr
	l.mu.Unlock()
	s := Stats{
		Dir:              l.opts.Dir,
		Fsync:            l.opts.Fsync,
		Appends:          l.appends.Load(),
		AppendedBytes:    l.bytes.Load(),
		Syncs:            l.syncs.Load(),
		Errors:           l.errors.Load(),
		SegmentsSealed:   l.sealed.Load(),
		SegmentsArchived: l.archived.Load(),
		Snapshots:        l.snapshots.Load(),
		ActiveSegment:    activeSeq,
		ActiveBytes:      activeBytes,
		Recovery:         l.recovery,
	}
	if lastErr != nil {
		s.LastError = lastErr.Error()
	}
	return s
}
