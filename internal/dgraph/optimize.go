package dgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Optimized is the optimized d-graph: the marked d-graph of the maximal
// solution with deleted arcs removed and useless white sources dropped. It
// determines the relevant relations and is the input of plan generation.
type Optimized struct {
	Graph    *Graph
	Solution *Solution

	// Sources are the surviving sources: all black sources, plus the white
	// sources with at least one live incident arc.
	Sources []*Source
	// Arcs are the live (weak or strong) arcs.
	Arcs []*Arc

	sourceSet map[int]bool
}

// Optimize computes the maximal solution with GFP and assembles the
// optimized d-graph.
func (g *Graph) Optimize() *Optimized {
	return g.OptimizeWith(g.GFP())
}

// OptimizeWith assembles the optimized d-graph from a given solution; used
// by ablation experiments that want to bypass GFP (e.g. the naive solution
// with every arc weak).
func (g *Graph) OptimizeWith(sol *Solution) *Optimized {
	o := &Optimized{Graph: g, Solution: sol, sourceSet: make(map[int]bool)}
	touched := make(map[int]bool) // source IDs with a live incident arc
	for _, a := range g.Arcs {
		if sol.Deleted[a.ID] {
			continue
		}
		o.Arcs = append(o.Arcs, a)
		touched[a.From.Source.ID] = true
		touched[a.To.Source.ID] = true
	}
	for _, s := range g.Sources {
		if s.Black || touched[s.ID] {
			o.Sources = append(o.Sources, s)
			o.sourceSet[s.ID] = true
		}
	}
	return o
}

// Contains reports whether the source survives in the optimized d-graph.
func (o *Optimized) Contains(s *Source) bool { return o.sourceSet[s.ID] }

// RelevantRelations returns the sorted names of the relations relevant for
// the query: a relation r is relevant iff it is nullary and occurs in the
// query, or it occurs in the optimized d-graph (Section III).
func (o *Optimized) RelevantRelations() []string {
	set := make(map[string]bool)
	for _, s := range o.Sources {
		set[s.Rel.Name] = true
	}
	for _, s := range o.Graph.Sources {
		if s.Black && s.Rel.Arity() == 0 {
			set[s.Rel.Name] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IrrelevantRelations returns the sorted names of queryable relations that
// the optimization excluded from the plan.
func (o *Optimized) IrrelevantRelations() []string {
	relevant := make(map[string]bool)
	for _, n := range o.RelevantRelations() {
		relevant[n] = true
	}
	var out []string
	for _, rel := range o.Graph.Schema.Relations() {
		if !relevant[rel.Name] && o.Graph.Queryable[rel.Name] {
			out = append(out, rel.Name)
		}
	}
	sort.Strings(out)
	return out
}

// LiveInArcs returns the live arcs entering node n.
func (o *Optimized) LiveInArcs(n *Node) []*Arc { return o.Solution.LiveInArcs(n) }

// StrongInArcs returns the strong arcs entering node n.
func (o *Optimized) StrongInArcs(n *Node) []*Arc {
	var out []*Arc
	for _, a := range o.Graph.InArcs(n) {
		if o.Solution.Mark(a) == Strong {
			out = append(out, a)
		}
	}
	return out
}

// WeakInArcs returns the weak (live, non-strong) arcs entering node n.
func (o *Optimized) WeakInArcs(n *Node) []*Arc {
	var out []*Arc
	for _, a := range o.Graph.InArcs(n) {
		if o.Solution.Mark(a) == Weak {
			out = append(out, a)
		}
	}
	return out
}

// String renders the optimized graph: surviving sources and live arcs with
// their marks.
func (o *Optimized) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "optimized d-graph for %s\n", o.Graph.Query)
	for _, s := range o.Sources {
		fmt.Fprintf(&b, "  source %s\n", s.Label())
	}
	lines := make([]string, 0, len(o.Arcs))
	for _, a := range o.Arcs {
		lines = append(lines, fmt.Sprintf("  [%s] %s", o.Solution.Mark(a), a))
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}
