package dgraph

import (
	"strings"
	"testing"

	"toorjah/internal/cq"
	"toorjah/internal/schema"
)

// build runs the full preprocessing pipeline (validate, eliminate constants,
// build) on textual schema and query.
func build(t *testing.T, schemaText, queryText string) *Graph {
	t.Helper()
	sch := schema.MustParse(schemaText)
	q := cq.MustParse(queryText)
	ty, err := cq.Validate(q, sch)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	pre, err := cq.EliminateConstants(q, sch, ty)
	if err != nil {
		t.Fatalf("eliminate constants: %v", err)
	}
	g, err := Build(pre.Query, pre.Schema)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

const example3Schema = `
r1^io(A, B)
r2^io(B, C)
r3^io(C, A)
`

// TestPaperExample4 checks the d-graph of paper Example 4 (Fig. 2): the
// query q(C) :- r1(a, B), r2(B, C) over {r1^io(A,B), r2^io(B,C), r3^io(C,A)}
// yields sources ra, r1(1), r2(1) (black) and r3 (white), with the arc chain
// e1: ra.A->r1.A, e2: r1.B->r2.B, e3: r2.C->r3.C, e4: r3.A->r1.A.
func TestPaperExample4(t *testing.T) {
	g := build(t, example3Schema, "q(C) :- r1(a, B), r2(B, C)")
	if !g.Answerable {
		t.Fatal("query must be answerable")
	}
	if len(g.Sources) != 4 {
		t.Fatalf("sources = %d, want 4 (ra, r1, r2, r3)", len(g.Sources))
	}
	if len(g.Arcs) != 4 {
		for _, a := range g.Arcs {
			t.Logf("arc: %s", a)
		}
		t.Fatalf("arcs = %d, want 4 (e1..e4)", len(g.Arcs))
	}
	r3 := g.SourceByLabel("r3")
	if r3 == nil || r3.Black {
		t.Fatal("r3 must be a white source")
	}
	ra := g.SourceByLabel("l_a(1)")
	if ra == nil || !ra.Black || !ra.Free() {
		t.Fatal("artificial source l_a(1) must be black and free")
	}
}

// TestPaperExample5 checks the GFP result of paper Example 5 (Fig. 4): arcs
// e1 (ra.A->r1.A) and e2 (r1.B->r2.B) become strong, e3 and e4 are deleted,
// and the optimized d-graph drops source r3 — r3 is irrelevant.
func TestPaperExample5(t *testing.T) {
	g := build(t, example3Schema, "q(C) :- r1(a, B), r2(B, C)")
	sol := g.GFP()
	if err := sol.Verify(); err != nil {
		t.Fatalf("solution invariants: %v", err)
	}
	nStrong, nDeleted := sol.Counts()
	if nStrong != 2 || nDeleted != 2 {
		t.Fatalf("strong=%d deleted=%d, want 2 and 2\n%s", nStrong, nDeleted, sol)
	}
	for _, a := range g.Arcs {
		mark := sol.Mark(a)
		switch {
		case a.To.Source.Label() == "r1(1)" && a.From.Source.Label() == "l_a(1)":
			if mark != Strong {
				t.Errorf("e1 %s: mark %s, want strong", a, mark)
			}
		case a.To.Source.Label() == "r2(1)":
			if mark != Strong {
				t.Errorf("e2 %s: mark %s, want strong", a, mark)
			}
		case a.To.Source.Label() == "r3" || a.From.Source.Label() == "r3":
			if mark != Deleted {
				t.Errorf("e3/e4 %s: mark %s, want deleted", a, mark)
			}
		}
	}
	o := g.OptimizeWith(sol)
	rel := o.RelevantRelations()
	want := "l_a,r1,r2"
	if got := strings.Join(rel, ","); got != want {
		t.Errorf("relevant = %s, want %s", got, want)
	}
	irr := o.IrrelevantRelations()
	if len(irr) != 1 || irr[0] != "r3" {
		t.Errorf("irrelevant = %v, want [r3]", irr)
	}
	if o.Contains(g.SourceByLabel("r3")) {
		t.Error("optimized graph must drop r3")
	}
}

// TestPaperExample2Queryability checks queryability for query q2(X) :-
// r3(X, c1) of Example 2: r3 and r2 are queryable, r1 is not (no value of
// domain A is ever obtainable from c1), yet the query is answerable because
// r3 — the only relation occurring in it — is queryable.
func TestPaperExample2Queryability(t *testing.T) {
	g := build(t, `
r1^io(A, C)
r2^io(B, C)
r3^io(C, B)
`, "q(X) :- r3(X, c1)")
	if !g.Queryable["r3"] || !g.Queryable["r2"] {
		t.Errorf("r2, r3 must be queryable: %v", g.Queryable)
	}
	if g.Queryable["r1"] {
		t.Error("r1 must not be queryable")
	}
	if !g.Answerable {
		t.Error("q2 is answerable")
	}
	// Non-queryable relations get no white source.
	if g.SourceByLabel("r1") != nil {
		t.Error("non-queryable r1 must not appear in the d-graph")
	}
	// Graph-level accessibility agrees with queryability for all sources.
	acc := g.AccessibleSources()
	for _, s := range g.Sources {
		if !acc[s.ID] {
			t.Errorf("source %s should be accessible", s.Label())
		}
	}
}

// TestNonAnswerable checks a query mentioning a non-queryable relation.
func TestNonAnswerable(t *testing.T) {
	g := build(t, `
r1^io(A, C)
r2^io(B, C)
r3^io(C, B)
`, "q(C) :- r1(X, C), r3(C2, X2)")
	// Constant-free query: no seeds at all, nothing provides domain A.
	if g.Answerable {
		t.Error("query mentioning non-queryable r1 must not be answerable")
	}
}

// The publication schema of Section V.
const pubSchema = `
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
sub^oi(Paper, Person)
rev_icde^iio(Person, Paper, Eval)
`

// TestFig7Q1 checks the optimized d-graph of query q1 (paper Fig. 7): only
// pub1, conf and rev survive; pub2, sub and rev_icde are pruned.
func TestFig7Q1(t *testing.T) {
	g := build(t, pubSchema, "q1(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)")
	o := g.Optimize()
	if err := o.Solution.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if got := strings.Join(o.RelevantRelations(), ","); got != "conf,pub1,rev" {
		t.Errorf("relevant = %s, want conf,pub1,rev", got)
	}
	if got := strings.Join(o.IrrelevantRelations(), ","); got != "pub2,rev_icde,sub" {
		t.Errorf("irrelevant = %s", got)
	}
	// Both arcs of the optimized graph are strong: conf.Paper -> pub1.Paper
	// and conf.Year -> rev.Year.
	if len(o.Arcs) != 2 {
		t.Fatalf("live arcs = %d, want 2\n%s", len(o.Arcs), o)
	}
	for _, a := range o.Arcs {
		if o.Solution.Mark(a) != Strong {
			t.Errorf("arc %s should be strong", a)
		}
		if a.From.Source.Label() != "conf(1)" {
			t.Errorf("arc %s should originate in conf(1)", a)
		}
	}
}

// TestFig8Q2 checks q2 (paper Fig. 8): the optimized d-graph keeps
// rev_icde(1), conf(1), rev(1) and the constant source for 'rej'; pub1,
// pub2 and sub are pruned.
func TestFig8Q2(t *testing.T) {
	g := build(t, pubSchema, "q2(R) :- rev_icde(R, P, rej), conf(P, C, Y), rev(R, C, Y)")
	o := g.Optimize()
	if err := o.Solution.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if got := strings.Join(o.RelevantRelations(), ","); got != "conf,l_rej,rev,rev_icde" {
		t.Errorf("relevant = %s, want conf,l_rej,rev,rev_icde", got)
	}
	if got := strings.Join(o.IrrelevantRelations(), ","); got != "pub1,pub2,sub" {
		t.Errorf("irrelevant = %s", got)
	}
	// Three strong arcs: rev.Person->rev_icde.Person, conf.Paper->
	// rev_icde.Paper, conf.Year->rev.Year. The l_rej source provides a value
	// for an output position, so it has no arcs but stays (it is black).
	if len(o.Arcs) != 3 {
		t.Fatalf("live arcs = %d, want 3\n%s", len(o.Arcs), o)
	}
	for _, a := range o.Arcs {
		if o.Solution.Mark(a) != Strong {
			t.Errorf("arc %s should be strong", a)
		}
	}
	lrej := g.SourceByLabel("l_rej(1)")
	if lrej == nil || !o.Contains(lrej) {
		t.Error("constant source l_rej(1) must survive (black)")
	}
}

// TestFig9Q3 checks q3 (paper Fig. 9): every relation except pub2 stays.
func TestFig9Q3(t *testing.T) {
	g := build(t, pubSchema,
		"q3(R) :- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), rev(R, icde, y2008), conf(P, icde, Y)")
	o := g.Optimize()
	if err := o.Solution.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	want := "conf,l_acc,l_icde,l_y2008,pub1,rev,rev_icde,sub"
	if got := strings.Join(o.RelevantRelations(), ","); got != want {
		t.Errorf("relevant = %s\nwant %s", got, want)
	}
	if got := strings.Join(o.IrrelevantRelations(), ","); got != "pub2" {
		t.Errorf("irrelevant = %s, want pub2", got)
	}
	// pub1 occurs twice: two distinct black sources.
	if g.SourceByLabel("pub1(1)") == nil || g.SourceByLabel("pub1(2)") == nil {
		t.Error("two occurrences of pub1 expected")
	}
}

// TestExample3Relevance is the motivating Example 3: over the cyclic schema
// {r1^io(A,B), r2^io(B,C), r3^io(C,A)}, for q(C) :- r1(a, B), r2(B, C), the
// relation r3 is irrelevant — accessing r3 with values from r2 to re-access
// r1 is pointless because the selection on r1 already fixes its binding.
func TestExample3Relevance(t *testing.T) {
	g := build(t, example3Schema, "q(C) :- r1(a, B), r2(B, C)")
	o := g.Optimize()
	if got := strings.Join(o.IrrelevantRelations(), ","); got != "r3" {
		t.Errorf("irrelevant = %s, want r3", got)
	}
}

// TestCyclicCandidatesStayWeak builds a query whose join structure is a pure
// cycle of candidate strong arcs; none may become strong (their targets
// would lose free-reachability) and none may be deleted.
func TestCyclicCandidatesStayWeak(t *testing.T) {
	// r^io(A, A): values of A feed the input of the same domain. The query
	// joins X through both atoms in a cycle: r(X, Y), r(Y, X).
	g := build(t, "r^io(A, A)\nseed^o(A)", "q(X) :- r(X, Y), r(Y, X), seed(X)")
	sol := g.GFP()
	if err := sol.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Arcs between the two r occurrences on joined vars form a cycle:
	// r(1).out(Y) -> r(2).in(Y)... both directions. They must remain weak.
	cyc := g.CyclicCandidateArcs()
	if len(cyc) == 0 {
		t.Fatal("expected cyclic candidate arcs")
	}
	for id := range cyc {
		a := g.Arcs[id]
		if m := sol.Mark(a); m != Weak {
			t.Errorf("cyclic candidate %s marked %s, want weak", a, m)
		}
	}
	// The seed's arc into r(1)/r(2) inputs: seed.X -> r(1).in is candidate
	// (X joined) and not cyclic, so it may be strong only if it doesn't break
	// anything; regardless, invariants hold (checked by Verify above).
}

// TestSelfJoinSameAtom covers a variable joined twice within one atom.
func TestSelfJoinSameAtom(t *testing.T) {
	g := build(t, "r^io(A, A)\nseed^o(A)", "q(X) :- r(X, X), seed(X)")
	sol := g.GFP()
	if err := sol.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	o := g.OptimizeWith(sol)
	if len(o.RelevantRelations()) == 0 {
		t.Fatal("no relevant relations")
	}
}

// TestFreeQueryDeletesAllArcs: a query over free relations only needs no
// value flow at all; every arc is deleted (the paper excludes this extreme
// case from its experiments for fairness because the naive approach would
// do "a lot of useless work").
func TestFreeQueryDeletesAllArcs(t *testing.T) {
	g := build(t, `
f1^oo(A, B)
f2^oo(B, C)
lim^io(A, B)
`, "q(X) :- f1(X, Y), f2(Y, Z)")
	sol := g.GFP()
	if err := sol.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	o := g.OptimizeWith(sol)
	if len(o.Arcs) != 0 {
		t.Errorf("live arcs = %d, want 0:\n%s", len(o.Arcs), o)
	}
	if got := strings.Join(o.IrrelevantRelations(), ","); got != "lim" {
		t.Errorf("irrelevant = %s, want lim", got)
	}
}

// TestGFPDisjointSets: S and D disjoint and the fixpoint stable under
// re-application, on a batch of structurally different queries.
func TestGFPDisjointSets(t *testing.T) {
	cases := []struct{ schema, query string }{
		{example3Schema, "q(C) :- r1(a, B), r2(B, C)"},
		{pubSchema, "q1(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)"},
		{pubSchema, "q2(R) :- rev_icde(R, P, rej), conf(P, C, Y), rev(R, C, Y)"},
		{pubSchema, "q(P) :- pub2(P, R)"},
		{pubSchema, "q(P, R) :- pub1(P, R), sub(P, R)"},
	}
	for _, c := range cases {
		g := build(t, c.schema, c.query)
		sol := g.GFP()
		if err := sol.Verify(); err != nil {
			t.Errorf("%s: %v", c.query, err)
		}
		// Re-running the operators on the fixpoint must change nothing.
		s2 := g.unmarkStr(sol.Strong, sol.Deleted)
		d2 := g.unmarkDel(sol.Strong, sol.Deleted)
		if len(s2) != len(sol.Strong) || len(d2) != len(sol.Deleted) {
			t.Errorf("%s: fixpoint not stable (S %d->%d, D %d->%d)",
				c.query, len(sol.Strong), len(s2), len(sol.Deleted), len(d2))
		}
	}
}

// TestMaximalityOnExample5 brute-forces all solutions on the small Example 5
// graph and checks GFP's solution is the unique maximal one.
func TestMaximalityOnExample5(t *testing.T) {
	g := build(t, example3Schema, "q(C) :- r1(a, B), r2(B, C)")
	sol := g.GFP()
	// Enumerate all (S, D) assignments over the 4 arcs and keep those that
	// satisfy the local solution conditions; then check none strictly
	// extends GFP's sets.
	n := len(g.Arcs)
	isCand := make([]bool, n)
	for i, a := range g.Arcs {
		isCand[i] = g.isCandidate(a)
	}
	valid := func(s, d map[int]bool) bool {
		for id := range s {
			if d[id] || !isCand[id] {
				return false
			}
			// strong arc's target source must not need to provide arbitrary
			// values: all outgoing arcs strong or deleted
			for _, gamma := range g.OutArcs(g.Arcs[id].To) {
				if !s[gamma.ID] && !d[gamma.ID] {
					return false
				}
			}
		}
		for id := range d {
			if isCand[id] {
				return false
			}
			a := g.Arcs[id]
			if a.To.Source.Black {
				ok := false
				for _, in := range g.InArcs(a.To) {
					if s[in.ID] {
						ok = true
					}
				}
				if !ok {
					return false
				}
			} else {
				for _, gamma := range g.OutArcs(a.To) {
					if !d[gamma.ID] {
						return false
					}
				}
			}
		}
		// free-reachability of black input nodes
		tmp := &Solution{G: g, Strong: s, Deleted: d}
		fr := tmp.FreeReachable()
		for _, src := range g.Sources {
			if !src.Black {
				continue
			}
			for _, v := range src.InputNodes() {
				if !fr[v.ID] {
					return false
				}
			}
		}
		return true
	}
	for mask := 0; mask < 1<<(2*n); mask++ {
		s := map[int]bool{}
		d := map[int]bool{}
		for i := 0; i < n; i++ {
			switch (mask >> (2 * i)) & 3 {
			case 1:
				s[i] = true
			case 2:
				d[i] = true
			}
		}
		if !valid(s, d) {
			continue
		}
		// No valid solution may strictly extend GFP's.
		if superset(s, sol.Strong) && len(s) > len(sol.Strong) {
			t.Errorf("solution with larger S found: %v ⊋ %v", s, sol.Strong)
		}
		if superset(d, sol.Deleted) && len(d) > len(sol.Deleted) {
			t.Errorf("solution with larger D found: %v ⊋ %v", d, sol.Deleted)
		}
	}
}

func superset(big, small map[int]bool) bool {
	for id := range small {
		if !big[id] {
			return false
		}
	}
	return true
}

func TestDOTOutput(t *testing.T) {
	g := build(t, example3Schema, "q(C) :- r1(a, B), r2(B, C)")
	o := g.Optimize()
	full := DOT(g, o.Solution, true)
	for _, want := range []string{"digraph", "cluster_s0", "r3", "dashed"} {
		if !strings.Contains(full, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	opt := DOTOptimized(o)
	if strings.Contains(opt, "\"r3\"") {
		t.Error("optimized DOT should not contain pruned source r3")
	}
	if !strings.Contains(opt, "penwidth") {
		t.Error("optimized DOT should render strong arcs")
	}
}

func TestBuildRejectsConstants(t *testing.T) {
	sch := schema.MustParse("r^io(A, B)")
	q := cq.MustParse("q(X) :- r(a, X)")
	if _, err := Build(q, sch); err == nil {
		t.Error("Build must reject queries with constants")
	}
}

func TestNegatedAtomSources(t *testing.T) {
	g := build(t, `
r^oo(A, B)
s^io(B, C)
`, "q(X) :- r(X, Y), s(Y, Z), not s(Y, Z)")
	var neg *Source
	for _, src := range g.Sources {
		if src.Negated {
			neg = src
		}
	}
	if neg == nil {
		t.Fatal("no negated source built")
	}
	if len(g.OutArcsOfSource(neg)) != 0 {
		t.Error("negated sources must not provide values")
	}
	var hasIn bool
	for _, v := range neg.InputNodes() {
		if len(g.InArcs(v)) > 0 {
			hasIn = true
		}
	}
	if !hasIn {
		t.Error("negated source inputs still need providers")
	}
	sol := g.GFP()
	if err := sol.Verify(); err != nil {
		t.Fatalf("invariants with negation: %v", err)
	}
}
