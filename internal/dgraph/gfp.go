package dgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Mark is the label of an arc in a marked d-graph.
type Mark byte

const (
	// Weak marks an arc that may provide arbitrary values.
	Weak Mark = iota
	// Strong marks an arc between joined black nodes whose values dominate
	// every other provider of the target node.
	Strong
	// Deleted marks an arc that is never needed to compute all obtainable
	// answers.
	Deleted
)

// String returns "weak", "strong" or "deleted".
func (m Mark) String() string {
	switch m {
	case Strong:
		return "strong"
	case Deleted:
		return "deleted"
	default:
		return "weak"
	}
}

// Solution is a pair (S, D) of strong and deleted arc sets for a d-graph —
// the marked d-graph G^(S,D) of Section III. Solutions produced by GFP are
// the unique maximal solution.
type Solution struct {
	G       *Graph
	Strong  map[int]bool // arc IDs in S
	Deleted map[int]bool // arc IDs in D
	// Rounds is the number of fixpoint iterations GFP performed.
	Rounds int
}

// Mark returns the label of the given arc.
func (sol *Solution) Mark(a *Arc) Mark {
	switch {
	case sol.Strong[a.ID]:
		return Strong
	case sol.Deleted[a.ID]:
		return Deleted
	default:
		return Weak
	}
}

// LiveArcs returns the non-deleted arcs (weak and strong) in arc-ID order.
func (sol *Solution) LiveArcs() []*Arc {
	var out []*Arc
	for _, a := range sol.G.Arcs {
		if !sol.Deleted[a.ID] {
			out = append(out, a)
		}
	}
	return out
}

// LiveInArcs returns the non-deleted arcs entering node n.
func (sol *Solution) LiveInArcs(n *Node) []*Arc {
	var out []*Arc
	for _, a := range sol.G.InArcs(n) {
		if !sol.Deleted[a.ID] {
			out = append(out, a)
		}
	}
	return out
}

// Counts returns the number of strong and deleted arcs.
func (sol *Solution) Counts() (strong, deleted int) {
	return len(sol.Strong), len(sol.Deleted)
}

// String summarises the solution, listing arcs with their marks.
func (sol *Solution) String() string {
	lines := make([]string, 0, len(sol.G.Arcs))
	for _, a := range sol.G.Arcs {
		lines = append(lines, fmt.Sprintf("  [%s] %s", sol.Mark(a), a))
	}
	sort.Strings(lines)
	return "solution:\n" + strings.Join(lines, "\n")
}

// CandidateStrongArcs returns the arcs whose endpoints are both black and
// whose positions hold the same (joined) variable of the query — the
// paper's cand(G). Only these arcs can ever become strong.
func (g *Graph) CandidateStrongArcs() []*Arc {
	var out []*Arc
	for _, a := range g.Arcs {
		if g.isCandidate(a) {
			out = append(out, a)
		}
	}
	return out
}

func (g *Graph) isCandidate(a *Arc) bool {
	if !a.From.Source.Black || !a.To.Source.Black {
		return false
	}
	u, v := a.From.Var(), a.To.Var()
	return u != "" && u == v
}

// CyclicCandidateArcs returns the candidate strong arcs contained in a
// cyclic d-path all of whose arcs are candidate strong — the paper's
// cycl(G). Such arcs can never become strong (their targets would lose
// free-reachability) nor deleted (they reach black nodes).
//
// Two arcs a, b are d-path-adjacent when a enters the source b leaves; an
// arc is cyclic exactly when it lies on a cycle of this arc-adjacency graph,
// i.e. when its strongly connected component has more than one arc or the
// arc is adjacent to itself.
func (g *Graph) CyclicCandidateArcs() map[int]bool {
	cand := g.CandidateStrongArcs()
	index := make(map[int]int, len(cand)) // arc ID -> position in cand
	for i, a := range cand {
		index[a.ID] = i
	}
	// fromSource[s] = candidate arcs whose tail lies in source s.
	fromSource := make(map[int][]int)
	for i, a := range cand {
		fromSource[a.From.Source.ID] = append(fromSource[a.From.Source.ID], i)
	}
	adj := make([][]int, len(cand))
	for i, a := range cand {
		adj[i] = fromSource[a.To.Source.ID]
		_ = a
	}
	comp := tarjanSCC(len(cand), adj)
	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}
	cyclic := make(map[int]bool)
	for i, a := range cand {
		if compSize[comp[i]] > 1 {
			cyclic[a.ID] = true
			continue
		}
		// Single-arc component: cyclic only if self-adjacent (the arc leaves
		// and re-enters the same source).
		for _, j := range adj[i] {
			if j == i {
				cyclic[a.ID] = true
				break
			}
		}
	}
	return cyclic
}

// GFP computes the unique maximal solution (S, D) for the d-graph, as in the
// paper's Fig. 3: S starts from the non-cyclic candidate strong arcs, D from
// all non-candidate arcs; the two monotone operators unmarkStr and unmarkDel
// then shrink the sets to the greatest fixpoint.
func (g *Graph) GFP() *Solution {
	s := make(map[int]bool)
	d := make(map[int]bool)
	cyclic := g.CyclicCandidateArcs()
	for _, a := range g.Arcs {
		if g.isCandidate(a) {
			if !cyclic[a.ID] {
				s[a.ID] = true
			}
		} else {
			d[a.ID] = true
		}
	}
	sol := &Solution{G: g, Strong: s, Deleted: d}
	for {
		sol.Rounds++
		s2 := g.unmarkStr(s, d)
		d2 := g.unmarkDel(s, d)
		if len(s2) == len(s) && len(d2) == len(d) {
			sol.Strong, sol.Deleted = s2, d2
			return sol
		}
		s, d = s2, d2
	}
}

// unmarkStr removes from S every arc u->v such that v's source has an
// outgoing arc that is neither strong nor deleted: such a source must
// provide arbitrary values downstream, so the join on v cannot restrict the
// tuples extracted from it.
func (g *Graph) unmarkStr(s, d map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for id := range s {
		out[id] = true
	}
	for id := range s {
		a := g.Arcs[id]
		for _, gamma := range g.OutArcs(a.To) {
			if !s[gamma.ID] && !d[gamma.ID] {
				delete(out, id)
				break
			}
		}
	}
	return out
}

// unmarkDel removes from D every arc u->v that turns out to be needed:
// an arc into a black node stays deleted only while some strong arc into v
// dominates it; an arc into a white node stays deleted only while every
// outgoing arc of v's source is itself deleted (the source serves no one).
func (g *Graph) unmarkDel(s, d map[int]bool) map[int]bool {
	out := make(map[int]bool, len(d))
	for id := range d {
		out[id] = true
	}
	for id := range d {
		a := g.Arcs[id]
		v := a.To
		if v.Source.Black {
			strongExists := false
			for _, in := range g.InArcs(v) {
				if s[in.ID] {
					strongExists = true
					break
				}
			}
			if !strongExists {
				delete(out, id)
			}
			continue
		}
		// v is white.
		for _, gamma := range g.OutArcs(v) {
			if !d[gamma.ID] {
				delete(out, id)
				break
			}
		}
	}
	return out
}

// tarjanSCC computes strongly connected components of a directed graph given
// as adjacency lists; it returns, for each vertex, its component number.
// Implemented iteratively to cope with deep graphs.
func tarjanSCC(n int, adj [][]int) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0
	ncomp := 0

	type frame struct {
		v, i int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}
