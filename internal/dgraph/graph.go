// Package dgraph implements the dependency graphs (d-graphs) of Calì &
// Martinenghi, "Querying Data under Access Limitations" (ICDE 2008),
// Section III — the paper's primary contribution.
//
// A d-graph for a conjunctive query q over a schema R has one group of
// nodes, called a source, per atom of q (black sources) and one per relation
// of R not mentioned in q (white sources); each node corresponds to one
// argument of the relation and carries its access mode and abstract domain.
// An arc connects an output node u to an input node v whenever they share
// the abstract domain: values extracted from u's relation may be used to
// bind v's argument. Chains of arcs (d-paths) starting from free sources
// describe every way a relation with limitations can ever be accessed.
//
// The package computes the marked d-graph — the unique maximal solution of
// strong and deleted arcs via the GFP fixpoint algorithm of the paper's
// Fig. 3 — and from it the optimized d-graph, which contains exactly the
// relevant relations.
package dgraph

import (
	"fmt"
	"sort"
	"strings"

	"toorjah/internal/cq"
	"toorjah/internal/schema"
)

// Node is one argument position of a source.
type Node struct {
	ID     int
	Source *Source
	Pos    int // zero-based argument position within the relation
	Mode   schema.AccessMode
	Domain schema.Domain
}

// IsInput reports whether the node is an input node.
func (n *Node) IsInput() bool { return n.Mode == schema.Input }

// Var returns the variable occupying this position in the source's atom, or
// "" for white sources.
func (n *Node) Var() string {
	if n.Source.Atom == nil {
		return ""
	}
	t := n.Source.Atom.Args[n.Pos]
	if !t.IsVar {
		return ""
	}
	return t.Name
}

// String renders the node as "source.pos(mode:Domain)".
func (n *Node) String() string {
	return fmt.Sprintf("%s.%d(%s:%s)", n.Source.Label(), n.Pos+1, n.Mode, n.Domain)
}

// Source is a group of nodes: one occurrence of a relation in the query
// (black) or a relation of the schema not mentioned in the query (white).
type Source struct {
	ID      int
	Rel     *schema.Relation
	Occ     int  // 1-based occurrence number for black sources; 0 for white
	Black   bool // true when the source corresponds to a query atom
	Negated bool // true when the atom occurs under "not"
	Atom    *cq.Atom
	Nodes   []*Node
}

// Free reports whether the source has no input nodes.
func (s *Source) Free() bool {
	for _, n := range s.Nodes {
		if n.IsInput() {
			return false
		}
	}
	return true
}

// InputNodes returns the source's input nodes in position order.
func (s *Source) InputNodes() []*Node {
	var out []*Node
	for _, n := range s.Nodes {
		if n.IsInput() {
			out = append(out, n)
		}
	}
	return out
}

// OutputNodes returns the source's output nodes in position order.
func (s *Source) OutputNodes() []*Node {
	var out []*Node
	for _, n := range s.Nodes {
		if !n.IsInput() {
			out = append(out, n)
		}
	}
	return out
}

// Label renders the source name in the paper's style: the relation name with
// a parenthesised occurrence number for black sources, e.g. "pub1(2)".
func (s *Source) Label() string {
	if s.Black {
		return fmt.Sprintf("%s(%d)", s.Rel.Name, s.Occ)
	}
	return s.Rel.Name
}

// Arc is a dependency from an output node to an input node of the same
// abstract domain.
type Arc struct {
	ID   int
	From *Node
	To   *Node
}

// String renders the arc as "from -> to".
func (a *Arc) String() string { return fmt.Sprintf("%s -> %s", a.From, a.To) }

// Graph is the d-graph G^R_q of a constant-free conjunctive query q over a
// schema R.
type Graph struct {
	Query  *cq.CQ
	Schema *schema.Schema

	Sources []*Source
	Nodes   []*Node
	Arcs    []*Arc

	// Answerable reports whether every relation occurring in the query is
	// queryable (Section II): when false, the query's answer is empty on
	// every instance and no plan needs to run.
	Answerable bool
	// Queryable is the instance-independent set of queryable relations.
	Queryable map[string]bool

	arcsFromSource map[int][]*Arc // source ID -> arcs leaving any of its nodes
	arcsIntoNode   map[int][]*Arc // node ID -> incoming arcs
}

// Build constructs the d-graph for a constant-free query over a schema. The
// query must already be validated against the schema and preprocessed with
// cq.EliminateConstants (constants in q would violate the constant-free
// precondition). White sources are created only for queryable relations:
// non-queryable relations can never be accessed and are discarded up front,
// as Section II prescribes.
func Build(q *cq.CQ, sch *schema.Schema) (*Graph, error) {
	if !q.IsConstantFree() {
		return nil, fmt.Errorf("dgraph: query %s is not constant-free; run cq.EliminateConstants first", q.Name)
	}
	if _, err := cq.Validate(q, sch); err != nil {
		return nil, fmt.Errorf("dgraph: %w", err)
	}
	g := &Graph{
		Query:          q,
		Schema:         sch,
		arcsFromSource: make(map[int][]*Arc),
		arcsIntoNode:   make(map[int][]*Arc),
	}
	// The preprocessing turned every query constant into a free artificial
	// relation, so queryability needs no seed domains.
	g.Queryable = sch.QueryableRelations(nil)

	occ := make(map[string]int)
	inQuery := make(map[string]bool)
	addSource := func(rel *schema.Relation, atom *cq.Atom, negated bool) *Source {
		s := &Source{ID: len(g.Sources), Rel: rel, Negated: negated}
		if atom != nil {
			occ[rel.Name]++
			s.Occ = occ[rel.Name]
			s.Black = true
			a := atom.Clone()
			s.Atom = &a
			inQuery[rel.Name] = true
		}
		for pos := 0; pos < rel.Arity(); pos++ {
			n := &Node{
				ID:     len(g.Nodes),
				Source: s,
				Pos:    pos,
				Mode:   rel.Pattern[pos],
				Domain: rel.Domains[pos],
			}
			s.Nodes = append(s.Nodes, n)
			g.Nodes = append(g.Nodes, n)
		}
		g.Sources = append(g.Sources, s)
		return s
	}

	g.Answerable = true
	for i := range q.Body {
		rel := sch.Relation(q.Body[i].Pred)
		addSource(rel, &q.Body[i], false)
		if !g.Queryable[rel.Name] {
			g.Answerable = false
		}
	}
	for i := range q.Negated {
		rel := sch.Relation(q.Negated[i].Pred)
		addSource(rel, &q.Negated[i], true)
		if !g.Queryable[rel.Name] {
			g.Answerable = false
		}
	}
	for _, rel := range sch.Relations() {
		if inQuery[rel.Name] || !g.Queryable[rel.Name] {
			continue
		}
		addSource(rel, nil, false)
	}

	// Arcs: output node -> input node of the same abstract domain. Negated
	// sources never provide values, so no arcs leave them.
	for _, u := range g.Nodes {
		if u.IsInput() || u.Source.Negated {
			continue
		}
		for _, v := range g.Nodes {
			if !v.IsInput() || v.Domain != u.Domain {
				continue
			}
			a := &Arc{ID: len(g.Arcs), From: u, To: v}
			g.Arcs = append(g.Arcs, a)
			g.arcsFromSource[u.Source.ID] = append(g.arcsFromSource[u.Source.ID], a)
			g.arcsIntoNode[v.ID] = append(g.arcsIntoNode[v.ID], a)
		}
	}
	return g, nil
}

// OutArcs returns the arcs leaving any node of the given node's source — the
// paper's outArcs(u, G).
func (g *Graph) OutArcs(n *Node) []*Arc { return g.arcsFromSource[n.Source.ID] }

// OutArcsOfSource returns the arcs leaving any node of the source.
func (g *Graph) OutArcsOfSource(s *Source) []*Arc { return g.arcsFromSource[s.ID] }

// InArcs returns the arcs entering the given node.
func (g *Graph) InArcs(n *Node) []*Arc { return g.arcsIntoNode[n.ID] }

// BlackSources returns the sources corresponding to query atoms, in body
// order (positive atoms first, then negated ones).
func (g *Graph) BlackSources() []*Source {
	var out []*Source
	for _, s := range g.Sources {
		if s.Black {
			out = append(out, s)
		}
	}
	return out
}

// WhiteSources returns the sources of relations not mentioned in the query.
func (g *Graph) WhiteSources() []*Source {
	var out []*Source
	for _, s := range g.Sources {
		if !s.Black {
			out = append(out, s)
		}
	}
	return out
}

// SourceByLabel returns the source with the given Label(), or nil.
func (g *Graph) SourceByLabel(label string) *Source {
	for _, s := range g.Sources {
		if s.Label() == label {
			return s
		}
	}
	return nil
}

// String renders a summary of the graph: sources and arcs.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d-graph for %s\n", g.Query)
	for _, s := range g.Sources {
		color := "white"
		if s.Black {
			color = "black"
		}
		if s.Negated {
			color = "black,negated"
		}
		fmt.Fprintf(&b, "  source %s [%s] %s\n", s.Label(), color, s.Rel)
	}
	arcs := make([]string, 0, len(g.Arcs))
	for _, a := range g.Arcs {
		arcs = append(arcs, "  arc "+a.String())
	}
	sort.Strings(arcs)
	b.WriteString(strings.Join(arcs, "\n"))
	return b.String()
}
