package dgraph

import "fmt"

// AccessibleSources computes the graph-level counterpart of queryability: a
// source is accessible when every one of its input nodes is reachable by a
// d-path originating from sources having only output nodes. Negated sources
// never provide values (they have no outgoing arcs) but can themselves be
// accessible. The result maps source ID to accessibility.
func (g *Graph) AccessibleSources() map[int]bool {
	acc := make(map[int]bool, len(g.Sources))
	for changed := true; changed; {
		changed = false
		for _, s := range g.Sources {
			if acc[s.ID] {
				continue
			}
			ok := true
			for _, v := range s.InputNodes() {
				reachable := false
				for _, a := range g.InArcs(v) {
					if acc[a.From.Source.ID] {
						reachable = true
						break
					}
				}
				if !reachable {
					ok = false
					break
				}
			}
			if ok {
				acc[s.ID] = true
				changed = true
			}
		}
	}
	return acc
}

// FreeReachable computes, for a marked d-graph, the set of free-reachable
// input nodes of Section III: an input node v is free-reachable when either
// (i) some weak arc u->v exists with every input node of u's source
// free-reachable, or (ii) v has at least one incoming strong arc and every
// incoming strong arc u->v has every input node of u's source
// free-reachable. The result maps node ID to reachability (only input nodes
// appear).
func (sol *Solution) FreeReachable() map[int]bool {
	g := sol.G
	fr := make(map[int]bool)
	srcOK := func(s *Source) bool {
		for _, in := range s.InputNodes() {
			if !fr[in.ID] {
				return false
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, v := range g.Nodes {
			if !v.IsInput() || fr[v.ID] {
				continue
			}
			var strongIn []*Arc
			reachable := false
			for _, a := range g.InArcs(v) {
				switch sol.Mark(a) {
				case Weak:
					if srcOK(a.From.Source) {
						reachable = true
					}
				case Strong:
					strongIn = append(strongIn, a)
				}
			}
			if !reachable && len(strongIn) > 0 {
				reachable = true
				for _, a := range strongIn {
					if !srcOK(a.From.Source) {
						reachable = false
						break
					}
				}
			}
			if reachable {
				fr[v.ID] = true
				changed = true
			}
		}
	}
	return fr
}

// Verify checks the structural invariants of a solution computed by GFP:
// S and D are disjoint, every strong arc is a candidate strong arc, no
// candidate strong arc is deleted, and — when the query is answerable —
// every input node of a black source is free-reachable (the query keeps its
// queryability). It returns the first violated invariant.
func (sol *Solution) Verify() error {
	g := sol.G
	for id := range sol.Strong {
		if sol.Deleted[id] {
			return fmt.Errorf("arc %s both strong and deleted", g.Arcs[id])
		}
		if !g.isCandidate(g.Arcs[id]) {
			return fmt.Errorf("non-candidate arc %s marked strong", g.Arcs[id])
		}
	}
	for id := range sol.Deleted {
		if g.isCandidate(g.Arcs[id]) {
			return fmt.Errorf("candidate strong arc %s marked deleted", g.Arcs[id])
		}
	}
	if !g.Answerable {
		return nil
	}
	fr := sol.FreeReachable()
	for _, s := range g.Sources {
		if !s.Black {
			continue
		}
		for _, v := range s.InputNodes() {
			if !fr[v.ID] {
				return fmt.Errorf("black input node %s lost free-reachability", v)
			}
		}
	}
	return nil
}
