package dgraph

import (
	"testing"

	"toorjah/internal/cq"
	"toorjah/internal/gen"
)

// TestRandomizedGFPInvariants runs the full marking pipeline on random
// workloads and checks every structural invariant of the maximal solution:
// disjointness, candidate discipline, preserved free-reachability, fixpoint
// stability, and sanity of the optimized graph (every input node of a
// surviving source keeps at least one live provider).
func TestRandomizedGFPInvariants(t *testing.T) {
	cfg := gen.Fig10()
	ran := 0
	for seed := int64(0); seed < 60; seed++ {
		g := gen.New(seed, cfg)
		sch := g.Schema()
		q, ok := g.Query(sch, "q")
		if !ok {
			continue
		}
		ty, err := cq.Validate(q, sch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pre, err := cq.EliminateConstants(q, sch, ty)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dg, err := Build(pre.Query, pre.Schema)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !dg.Answerable {
			t.Errorf("seed %d: generator emitted non-answerable query %s", seed, q)
			continue
		}
		ran++
		sol := dg.GFP()
		if err := sol.Verify(); err != nil {
			t.Errorf("seed %d (%s): %v", seed, q, err)
			continue
		}
		// Fixpoint stability.
		s2 := dg.unmarkStr(sol.Strong, sol.Deleted)
		d2 := dg.unmarkDel(sol.Strong, sol.Deleted)
		if len(s2) != len(sol.Strong) || len(d2) != len(sol.Deleted) {
			t.Errorf("seed %d: GFP result not a fixpoint", seed)
		}
		// Optimized-graph sanity.
		o := dg.OptimizeWith(sol)
		for _, src := range o.Sources {
			for _, v := range src.InputNodes() {
				if len(o.LiveInArcs(v)) == 0 {
					t.Errorf("seed %d: surviving source %s has unprovided input %s",
						seed, src.Label(), v)
				}
			}
		}
		// Strong and weak arcs never enter white nodes as "dominated": a
		// white node's live in-arcs are all weak.
		for _, a := range o.Arcs {
			if !a.To.Source.Black && sol.Mark(a) == Strong {
				t.Errorf("seed %d: strong arc into white source: %s", seed, a)
			}
		}
		// Determinism: rebuilding and re-running GFP yields identical sets.
		dg2, err := Build(pre.Query, pre.Schema)
		if err != nil {
			t.Fatal(err)
		}
		sol2 := dg2.GFP()
		if len(sol2.Strong) != len(sol.Strong) || len(sol2.Deleted) != len(sol.Deleted) {
			t.Errorf("seed %d: GFP not deterministic", seed)
		}
	}
	if ran < 40 {
		t.Errorf("only %d/60 workloads ran", ran)
	}
}

// TestRandomizedQueryabilityAgreement: the graph-level accessibility
// fixpoint agrees with the domain-level queryability fixpoint for every
// white source.
func TestRandomizedQueryabilityAgreement(t *testing.T) {
	cfg := gen.Fig10()
	for seed := int64(100); seed < 140; seed++ {
		g := gen.New(seed, cfg)
		sch := g.Schema()
		q, ok := g.Query(sch, "q")
		if !ok {
			continue
		}
		ty, err := cq.Validate(q, sch)
		if err != nil {
			t.Fatal(err)
		}
		pre, err := cq.EliminateConstants(q, sch, ty)
		if err != nil {
			t.Fatal(err)
		}
		dg, err := Build(pre.Query, pre.Schema)
		if err != nil {
			t.Fatal(err)
		}
		acc := dg.AccessibleSources()
		for _, s := range dg.Sources {
			// Build only creates sources for queryable relations, and the
			// graph-level fixpoint must confirm each one.
			if !acc[s.ID] {
				t.Errorf("seed %d: queryable relation %s not graph-accessible", seed, s.Label())
			}
		}
	}
}
