package dgraph

import (
	"fmt"
	"strings"
)

// DOT renders the full d-graph in Graphviz DOT format, one cluster per
// source. Strong arcs render with double lines (penwidth), deleted arcs are
// dashed grey when includeDeleted is set, weak arcs are plain. Passing a nil
// solution renders every arc as weak (the unmarked d-graph).
func DOT(g *Graph, sol *Solution, includeDeleted bool) string {
	var b strings.Builder
	b.WriteString("digraph dgraph {\n")
	b.WriteString("  rankdir=LR;\n  compound=true;\n  node [shape=circle, fontsize=10];\n")
	for _, s := range g.Sources {
		fmt.Fprintf(&b, "  subgraph cluster_s%d {\n", s.ID)
		style := "dashed" // white sources
		if s.Black {
			style = "solid"
		}
		fmt.Fprintf(&b, "    label=%q; style=%s;\n", s.Label(), style)
		if len(s.Nodes) == 0 {
			// Nullary source: emit a point so the cluster renders.
			fmt.Fprintf(&b, "    n_s%d [shape=point, label=\"\"];\n", s.ID)
		}
		for _, n := range s.Nodes {
			fill := "white"
			if n.IsInput() {
				fill = "lightgrey"
			}
			fmt.Fprintf(&b, "    n%d [label=\"%s\\n%s\", style=filled, fillcolor=%s];\n",
				n.ID, n.Domain, n.Mode, fill)
		}
		b.WriteString("  }\n")
	}
	for _, a := range g.Arcs {
		mark := Weak
		if sol != nil {
			mark = sol.Mark(a)
		}
		switch mark {
		case Deleted:
			if !includeDeleted {
				continue
			}
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, color=grey];\n", a.From.ID, a.To.ID)
		case Strong:
			fmt.Fprintf(&b, "  n%d -> n%d [penwidth=2.5, color=\"black:white:black\"];\n", a.From.ID, a.To.ID)
		default:
			fmt.Fprintf(&b, "  n%d -> n%d;\n", a.From.ID, a.To.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOTOptimized renders the optimized d-graph (pruned sources omitted).
func DOTOptimized(o *Optimized) string {
	var b strings.Builder
	b.WriteString("digraph optimized {\n")
	b.WriteString("  rankdir=LR;\n  compound=true;\n  node [shape=circle, fontsize=10];\n")
	for _, s := range o.Sources {
		fmt.Fprintf(&b, "  subgraph cluster_s%d {\n", s.ID)
		fmt.Fprintf(&b, "    label=%q;\n", s.Label())
		if len(s.Nodes) == 0 {
			fmt.Fprintf(&b, "    n_s%d [shape=point, label=\"\"];\n", s.ID)
		}
		for _, n := range s.Nodes {
			fill := "white"
			if n.IsInput() {
				fill = "lightgrey"
			}
			fmt.Fprintf(&b, "    n%d [label=\"%s\\n%s\", style=filled, fillcolor=%s];\n",
				n.ID, n.Domain, n.Mode, fill)
		}
		b.WriteString("  }\n")
	}
	for _, a := range o.Arcs {
		if o.Solution.Mark(a) == Strong {
			fmt.Fprintf(&b, "  n%d -> n%d [penwidth=2.5, color=\"black:white:black\"];\n", a.From.ID, a.To.ID)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", a.From.ID, a.To.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
