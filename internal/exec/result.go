// Package exec executes query plans over access-limited sources. It
// provides the three evaluation strategies of the paper:
//
//   - Naive: the reference algorithm of Fig. 1 ([Li & Chang, ICDE 2000]):
//     probe every relation with every untried combination of known values
//     until no access yields anything new, then evaluate the query over the
//     accumulated cache;
//   - FastFailing: the ⊂-minimal strategy of Section IV: populate the cache
//     of each position group in the plan's ordering, running an early
//     non-emptiness test before each group and never repeating an access
//     (per-relation meta-caches);
//   - Pipelined: the Toorjah engine of Section V: per-source wrapper
//     goroutines with queued access tuples ("distillation"), incremental
//     join evaluation, and answers streamed as soon as they are derivable.
//
// All strategies compute the same answer — the set of obtainable answers
// under the access limitations — which the tests assert against the Datalog
// least-fixpoint reference semantics.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"toorjah/internal/datalog"
	"toorjah/internal/source"
)

// Result is the outcome of one query execution.
type Result struct {
	// Answers is the deduplicated answer relation.
	Answers *datalog.Relation
	// Stats has per-relation access accounting (relations never probed are
	// absent).
	Stats map[string]source.Stats
	// EarlyEmpty reports that the fast-failing test proved the answer empty
	// before all groups were populated.
	EarlyEmpty bool
	// Truncated reports that the run stopped early — a pipelined run at its
	// answer limit, or any executor on context cancellation; the answers
	// are a sound subset of the obtainable ones (empty for queries with
	// negation, where no partial answer is sound).
	Truncated bool
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// TimeToFirst is the time until the first answer was emitted; zero when
	// no answer was produced or the strategy does not stream.
	TimeToFirst time.Duration
}

// TotalAccesses sums accesses over all relations.
func (r *Result) TotalAccesses() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Accesses
	}
	return n
}

// TotalBatches sums source round trips over all relations; with batching
// disabled it equals TotalAccesses.
func (r *Result) TotalBatches() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Batches
	}
	return n
}

// TotalTuples sums extracted tuples over all relations.
func (r *Result) TotalTuples() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Tuples
	}
	return n
}

// SortedAnswers returns the answers as sorted strings, for deterministic
// comparison and display. This is a result boundary: tuples materialize
// from symbol IDs into strings here.
//
//toorjahvet:boundary (comparison/display rendering of a finished result)
func (r *Result) SortedAnswers() []string {
	if r.Answers == nil {
		return nil
	}
	out := make([]string, 0, r.Answers.Len())
	for _, t := range r.Answers.Tuples() {
		out = append(out, strings.Join(t.Strings(), ","))
	}
	sort.Strings(out)
	return out
}

// AnswerSet returns the answers as a set of encoded keys.
func (r *Result) AnswerSet() map[string]bool {
	set := make(map[string]bool)
	if r.Answers == nil {
		return set
	}
	for _, t := range r.Answers.Tuples() {
		set[t.Key()] = true
	}
	return set
}

// String renders a short execution summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "answers=%d accesses=%d tuples=%d elapsed=%s",
		r.Answers.Len(), r.TotalAccesses(), r.TotalTuples(), r.Elapsed)
	if r.EarlyEmpty {
		b.WriteString(" (early empty)")
	}
	return b.String()
}

// statsOf snapshots the counters of a counted registry.
func statsOf(counters map[string]*source.Counter) map[string]source.Stats {
	out := make(map[string]source.Stats, len(counters))
	for name, c := range counters {
		if st := c.Stats(); st.Accesses > 0 {
			out[name] = st
		}
	}
	return out
}
