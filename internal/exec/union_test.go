package exec

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"toorjah/internal/datalog"
	"toorjah/internal/source"
	"toorjah/internal/sym"
)

// fakeDisjunct fabricates a disjunct run that emits the given answers and
// returns them with the given stats and flags.
func fakeDisjunct(answers []datalog.Tuple, stats map[string]source.Stats, truncated, earlyEmpty bool) DisjunctRun {
	return func(ctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
		rel := datalog.NewRelation("q", 1)
		for _, t := range answers {
			rel.Insert(t)
			emit(t)
		}
		return &Result{Answers: rel, Stats: stats, Truncated: truncated, EarlyEmpty: earlyEmpty}, nil
	}
}

func sortedUnion(t *testing.T, r *Result) string {
	t.Helper()
	return strings.Join(r.SortedAnswers(), ";")
}

// TestUnionDedupAndStatsMerge: overlapping disjuncts dedup into one answer
// set; per-relation stats merge via Stats.Add (Batches included) and the
// Truncated/EarlyEmpty flags OR — the regression the hand-rolled merge of
// the old UCQ wrapper dropped.
func TestUnionDedupAndStatsMerge(t *testing.T) {
	runs := []DisjunctRun{
		fakeDisjunct(
			[]datalog.Tuple{datalog.T("a"), datalog.T("b")},
			map[string]source.Stats{"r": {Accesses: 3, Batches: 2, Tuples: 5}},
			false, true),
		fakeDisjunct(
			[]datalog.Tuple{datalog.T("b"), datalog.T("c")},
			map[string]source.Stats{"r": {Accesses: 1, Batches: 1, Tuples: 1}, "s": {Accesses: 4, Batches: 1, Tuples: 9}},
			true, false),
	}
	var streamed []string
	res, err := Union(context.Background(), "q", 1, runs, Options{}, func(t datalog.Tuple) {
		streamed = append(streamed, sym.Str(t[0]))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedUnion(t, res); got != "a;b;c" {
		t.Errorf("union answers = %s, want a;b;c", got)
	}
	if len(streamed) != 3 {
		t.Errorf("onAnswer saw %d answers (%v), want 3 deduplicated", len(streamed), streamed)
	}
	if st := res.Stats["r"]; st != (source.Stats{Accesses: 4, Batches: 3, Tuples: 6}) {
		t.Errorf("merged stats[r] = %+v", st)
	}
	if st := res.Stats["s"]; st != (source.Stats{Accesses: 4, Batches: 1, Tuples: 9}) {
		t.Errorf("merged stats[s] = %+v", st)
	}
	if res.TotalBatches() != 4 {
		t.Errorf("TotalBatches = %d, want 4", res.TotalBatches())
	}
	if !res.Truncated || !res.EarlyEmpty {
		t.Errorf("flags not OR-ed: truncated=%v earlyEmpty=%v", res.Truncated, res.EarlyEmpty)
	}
	if res.TimeToFirst == 0 || res.TimeToFirst > res.Elapsed {
		t.Errorf("TimeToFirst = %v, Elapsed = %v", res.TimeToFirst, res.Elapsed)
	}
}

// TestUnionError: the first disjunct error cancels the remaining disjuncts
// and is returned.
func TestUnionError(t *testing.T) {
	boom := errors.New("boom")
	// The error waits for the slow disjunct to start, so the cancellation
	// provably has a running disjunct to reach (otherwise the launcher might
	// skip it and nobody would report).
	started := make(chan struct{})
	sawCancel := make(chan bool, 1)
	runs := []DisjunctRun{
		func(ctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
			<-started
			return nil, boom
		},
		func(ctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
			close(started)
			select {
			case <-ctx.Done():
				sawCancel <- true
			case <-time.After(5 * time.Second):
				sawCancel <- false
			}
			return &Result{Answers: datalog.NewRelation("q", 1)}, nil
		},
	}
	// MaxConcurrent 2 so both disjuncts are in flight when the first fails.
	_, err := Union(context.Background(), "q", 1, runs, Options{MaxConcurrent: 2}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !<-sawCancel {
		t.Error("second disjunct never saw the cancellation")
	}
}

// TestUnionLimit: the limit caps the distinct answers forwarded and marks
// the result truncated exactly when more were obtainable.
func TestUnionLimit(t *testing.T) {
	many := make([]datalog.Tuple, 10)
	for i := range many {
		many[i] = datalog.T(string(rune('a' + i)))
	}
	var streamed int32
	res, err := Union(context.Background(), "q", 1,
		[]DisjunctRun{fakeDisjunct(many, nil, false, false)},
		Options{Limit: 3},
		func(datalog.Tuple) { atomic.AddInt32(&streamed, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 3 || streamed != 3 {
		t.Errorf("limit run: %d answers, %d streamed, want 3 and 3", res.Answers.Len(), streamed)
	}
	if !res.Truncated {
		t.Error("limit suppressed answers: want Truncated")
	}

	// A limit equal to the obtainable union is not a truncation.
	exact, err := Union(context.Background(), "q", 1,
		[]DisjunctRun{fakeDisjunct(many[:3], nil, false, false)},
		Options{Limit: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Answers.Len() != 3 || exact.Truncated {
		t.Errorf("exact-limit run: %d answers truncated=%v, want 3 and false",
			exact.Answers.Len(), exact.Truncated)
	}
}

// TestUnionCancelled: a pre-cancelled context yields an empty truncated
// result without running any disjunct.
func TestUnionCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	res, err := Union(ctx, "q", 1, []DisjunctRun{
		func(ctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
			ran = true
			return &Result{Answers: datalog.NewRelation("q", 1)}, nil
		},
	}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("disjunct ran under a cancelled context")
	}
	if !res.Truncated || res.Answers.Len() != 0 {
		t.Errorf("cancelled union: truncated=%v answers=%d", res.Truncated, res.Answers.Len())
	}
}

// TestUnionBoundedParallelism: at most MaxConcurrent disjuncts are ever in
// flight, and with more slots than disjuncts they genuinely overlap.
func TestUnionBoundedParallelism(t *testing.T) {
	var inFlight, peak int32
	slow := func(ctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt32(&inFlight, -1)
		return &Result{Answers: datalog.NewRelation("q", 1)}, nil
	}
	runs := []DisjunctRun{slow, slow, slow, slow}
	if _, err := Union(context.Background(), "q", 1, runs, Options{MaxConcurrent: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p > 2 {
		t.Errorf("peak concurrency = %d, want <= 2", p)
	}

	atomic.StoreInt32(&peak, 0)
	if _, err := Union(context.Background(), "q", 1, runs, Options{MaxConcurrent: 4}, nil); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p < 2 {
		t.Errorf("peak concurrency = %d with 4 slots, want >= 2 (no overlap at all)", p)
	}
}

// TestUnionSerializedEmission: concurrent disjuncts emitting the same and
// different answers never invoke onAnswer concurrently and never repeat an
// answer (exercised under -race).
func TestUnionSerializedEmission(t *testing.T) {
	const disjuncts = 8
	runs := make([]DisjunctRun, disjuncts)
	for i := range runs {
		i := i
		runs[i] = func(ctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
			rel := datalog.NewRelation("q", 1)
			for j := 0; j < 50; j++ {
				t := datalog.T(string(rune('a' + (i+j)%26)))
				rel.Insert(t)
				emit(t)
			}
			return &Result{Answers: rel}, nil
		}
	}
	var inCallback int32
	seen := make(map[string]bool)
	var mu sync.Mutex
	res, err := Union(context.Background(), "q", 1, runs, Options{MaxConcurrent: disjuncts}, func(t datalog.Tuple) {
		if atomic.AddInt32(&inCallback, 1) != 1 {
			panic("onAnswer invoked concurrently")
		}
		mu.Lock()
		if seen[sym.Str(t[0])] {
			panic("duplicate answer emitted")
		}
		seen[sym.Str(t[0])] = true
		mu.Unlock()
		atomic.AddInt32(&inCallback, -1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 26 || len(seen) != 26 {
		t.Errorf("answers = %d, streamed = %d, want 26", res.Answers.Len(), len(seen))
	}
}
