package exec

import (
	"context"
	"fmt"
	"time"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/sym"
)

// Naive runs the algorithm of the paper's Fig. 1 on the original query
// (constants included): starting from the constants in the query, probe
// every relation with every untried combination of known values of the
// right abstract domains, accumulate the extracted tuples in a cache and
// the extracted values in the known-value set, until no new access can be
// made; finally evaluate the query over the cache.
//
// The typing must come from cq.Validate(q, sch). Every access is counted
// once; no binding is ever probed twice.
func Naive(ctx context.Context, sch *schema.Schema, reg *source.Registry, q *cq.CQ, ty *cq.Typing) (*Result, error) {
	return NaiveOpts(ctx, sch, reg, q, ty, Options{})
}

// NaiveOpts is Naive with options; the cross-query Cache and MaxBatch
// options are meaningful here (the ablation switches target the optimized
// strategies). Each round's untried bindings of a relation are probed in
// batches of at most MaxBatch; a cancelled ctx stops the extraction and
// returns the answers derivable so far as a truncated, sound subset.
func NaiveOpts(ctx context.Context, sch *schema.Schema, reg *source.Registry, q *cq.CQ, ty *cq.Typing, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	counted, counters := instrument(reg, opts)

	// B: known values per abstract domain, seeded with the query constants
	// (interned here — the string boundary of the run).
	known := make(map[schema.Domain]map[sym.ID]bool)
	addValue := func(d schema.Domain, v sym.ID) bool {
		m, ok := known[d]
		if !ok {
			m = make(map[sym.ID]bool)
			known[d] = m
		}
		if m[v] {
			return false
		}
		m[v] = true
		return true
	}
	for c, d := range ty.ConstDomain {
		addValue(d, sym.Intern(c))
	}

	cache := datalog.DB{}
	for _, rel := range sch.Relations() {
		cache.Get(rel.Name, rel.Arity())
	}
	// tried: per-relation sets of already-probed input bindings, keyed on
	// packed symbol IDs and recycled across runs (and, in a sequential
	// union, across disjuncts).
	tried := getBindSets()
	defer putBindSets(tried)

	for changed := true; changed; {
		changed = false
		for _, rel := range sch.Relations() {
			w := counted.Source(rel.Name)
			if w == nil {
				return nil, fmt.Errorf("naive: no source bound for relation %s", rel.Name)
			}
			relTried := tried[rel.Name]
			if relTried == nil {
				relTried = &sym.BindMap[struct{}]{}
				tried[rel.Name] = relTried
			}
			inputs := rel.InputPositions()
			domains := rel.InputDomains()
			// Enumerate every combination of known values for the input
			// domains; free relations have the single empty combination.
			pools := make([][]sym.ID, len(inputs))
			empty := false
			for i, d := range domains {
				for v := range known[d] {
					pools[i] = append(pools[i], v)
				}
				if len(pools[i]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				continue
			}
			// Collect the untried bindings of this pass in enumeration
			// order, then probe them in batches of at most MaxBatch: the
			// access set is identical to probing one at a time (pools are
			// fixed for the pass; new values only feed the next round).
			var toProbe [][]sym.ID
			binding := make([]sym.ID, len(inputs))
			var walk func(i int)
			walk = func(i int) {
				if i == len(inputs) {
					if _, dup := relTried.Get(binding); dup {
						return
					}
					relTried.Put(binding, struct{}{})
					changed = true
					toProbe = append(toProbe, append([]sym.ID(nil), binding...))
					return
				}
				for _, v := range pools[i] {
					binding[i] = v
					walk(i + 1)
				}
			}
			walk(0)
			maxBatch := opts.maxBatch()
			for len(toProbe) > 0 {
				if ctxDone(ctx) {
					return truncatedResult(q, cache, counters, start)
				}
				n := min(maxBatch, len(toProbe))
				chunk := toProbe[:n]
				toProbe = toProbe[n:]
				raws, err := source.ProbeSyms(ctx, w, chunk)
				if err != nil {
					return nil, err
				}
				for _, rows := range raws {
					for _, row := range rows {
						if cache.Insert(rel.Name, datalog.Tuple(row)) {
							for pos, v := range row {
								addValue(rel.Domains[pos], v)
							}
						}
					}
				}
			}
		}
	}

	answers, err := datalog.EvalQuery(q, cache)
	if err != nil {
		return nil, fmt.Errorf("naive: final evaluation: %w", err)
	}
	res := &Result{
		Answers: answers,
		Stats:   statsOf(counters),
		Elapsed: time.Since(start),
	}
	if answers.Len() > 0 {
		// Batch strategy: the first answer becomes available with the final
		// evaluation — recorded so every executor feeds the latency
		// histograms uniformly.
		res.TimeToFirst = res.Elapsed
	}
	return res, nil
}
