package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"toorjah/internal/cache"
	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/obs"
	"toorjah/internal/plan"
	"toorjah/internal/source"
	"toorjah/internal/storage"
	"toorjah/internal/sym"
)

// DefaultMaxBatch is the batch size used when Options.MaxBatch is zero.
const DefaultMaxBatch = 16

// Options is the unified execution configuration of every executor in the
// package — the fast-failing batch strategy, the naive reference
// algorithm, the parallel pipelined engine and the concurrent union
// runner each read the fields that concern them and ignore the rest. The
// zero value is the paper's fast-failing defaults: batching at
// DefaultMaxBatch, no answer limit, full parallelism for unions.
// Cancellation is not configured here: every executor takes a
// context.Context as its first parameter — once the context is done no
// further probes are made and the run returns early with Truncated set
// (the answers already derivable are a sound subset for positive queries;
// queries with negated atoms return none, since no answer is sound until
// every cache is complete). The context also carries the query's
// observability baggage (trace ID, current span) down to the sources.
type Options struct {
	// NoEarlyFailure disables the per-group non-emptiness test.
	NoEarlyFailure bool
	// NoMetaCache disables cross-occurrence access sharing: repeated probes
	// of the same relation binding hit the source again.
	NoMetaCache bool
	// Cache, when set, serves accesses through a cross-query access cache
	// shared between executions (and between concurrent executions). The
	// cache is layered outside the per-run counters, so Result.Stats then
	// reports only the probes that actually reached the sources.
	Cache *cache.Cache
	// MaxBatch caps how many access bindings are folded into one source
	// round trip (source.BatchSource). 0 means DefaultMaxBatch; negative
	// (or 1) disables batching — one round trip per access. For a run that
	// completes, batching never changes the answer set or the access count:
	// a batch of N bindings is exactly N accesses under the paper's cost
	// model, it only amortises the per-probe overhead (Result.Stats reports
	// round trips as Batches). A truncated pipelined run (answer limit or
	// cancellation) may spend up to a batch of extra accesses per worker:
	// a batch already in flight when the stop lands completes as one round
	// trip and is charged in full.
	MaxBatch int
	// Obs, when non-nil, instruments the execution: probe metrics (latency
	// and batch-size histograms, per-relation access counters) are recorded
	// below the cache — only probes that reach a source count — and the
	// execution's demanded accesses (cache hits included) are counted above
	// it, yielding the per-query cache-hit ratio. All instruments are
	// atomic; a nil Obs leaves the probe path untouched.
	Obs *obs.ExecObs

	// QueueLen is the pipelined engine's per-wrapper access queue capacity
	// (paper Fig. 5); default 32. Ignored by the batch strategies.
	QueueLen int
	// Parallelism is the pipelined engine's concurrent probes per relation;
	// default 4. Ignored by the batch strategies.
	Parallelism int
	// Limit, when positive, caps the answers: the pipelined engine stops
	// the extraction as soon as that many answers have been emitted — the
	// paper's interactive early stop ("the user can stop the lengthy
	// answering process once satisfied") — and the union runner stops once
	// the union holds that many distinct answers. The result is then a
	// sound subset and carries Truncated. For queries with negated atoms no
	// answer is sound until every cache is complete, so the limit cannot
	// save accesses there; it still caps the answers returned.
	Limit int
	// MaxConcurrent bounds how many union disjuncts execute at once; 0
	// means runtime.GOMAXPROCS(0), negative means one at a time. Ignored
	// outside the union runner.
	MaxConcurrent int
}

// maxBatch resolves the effective batch bound (always >= 1).
func (o Options) maxBatch() int {
	if o.MaxBatch == 0 {
		return DefaultMaxBatch
	}
	if o.MaxBatch < 1 {
		return 1
	}
	return o.MaxBatch
}

// queueLen and parallelism resolve the pipelined defaults.
func (o Options) queueLen() int {
	if o.QueueLen <= 0 {
		return 32
	}
	return o.QueueLen
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return 4
	}
	return o.Parallelism
}

// maxConcurrent resolves the effective disjunct parallelism (always >= 1).
func (o Options) maxConcurrent() int {
	if o.MaxConcurrent == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.MaxConcurrent < 1 {
		return 1
	}
	return o.MaxConcurrent
}

// ctxDone reports whether ctx has been cancelled.
func ctxDone(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// errCancelled aborts an extraction from deep inside the probe loops when
// the context is done; the executors translate it into a truncated result
// rather than an error.
var errCancelled = errors.New("exec: extraction cancelled")

// instrument prepares the registry for one execution: it pins every
// versioned source to its current data version (Registry.Snapshot — the
// run then observes one consistent epoch per relation however far
// concurrent writers advance the tables), wraps every source in a fresh
// Counter — the per-run access accounting behind Result.Stats — and, when
// a cross-query cache is configured, layers the cache outside the counters
// (Cached(Counted(Snapshot(source)))) so cache hits bypass the counters
// entirely.
func instrument(reg *source.Registry, opts Options) (*source.Registry, map[string]*source.Counter) {
	counted, counters := reg.Snapshot().Counted(false)
	if opts.Obs != nil {
		// Probe metrics sit inside the cache: they observe exactly the
		// round trips that reach a source, in lockstep with the counters.
		counted = rewrap(counted, opts.Obs.WrapProbe)
	}
	if opts.Cache != nil {
		counted = opts.Cache.WrapRegistry(counted)
	}
	if opts.Obs != nil {
		// Demand counting sits outside the cache: it sees every access the
		// plan requested, cache hits included.
		counted = rewrap(counted, opts.Obs.WrapDemand)
	}
	return counted, counters
}

// rewrap maps a decorator over every source of a registry.
func rewrap(reg *source.Registry, wrap func(source.Wrapper) source.Wrapper) *source.Registry {
	out := source.NewRegistry()
	for _, name := range reg.Names() {
		out.Bind(wrap(reg.Source(name)))
	}
	return out
}

// metaCache shares access results across the occurrences of a relation:
// before probing a relation, the executor consults the relation's
// meta-cache and reuses the stored extraction without touching the source.
// One integer-keyed binding map per relation — an executor resolves its
// relation's map once per pass and every hit/store is a single-word map
// operation, no access-key string ever materializing.
type metaCache struct {
	disabled bool
	rels     map[string]*sym.BindMap[[]datalog.Tuple]
}

func newMetaCache(disabled bool) *metaCache {
	return &metaCache{disabled: disabled, rels: make(map[string]*sym.BindMap[[]datalog.Tuple])}
}

// forRel returns the relation's binding map (creating it on first use), or
// nil when the meta-cache is disabled — callers treat nil as "never hits,
// never stores".
func (m *metaCache) forRel(name string) *sym.BindMap[[]datalog.Tuple] {
	if m.disabled {
		return nil
	}
	rm := m.rels[name]
	if rm == nil {
		rm = new(sym.BindMap[[]datalog.Tuple])
		m.rels[name] = rm
	}
	return rm
}

// tuplesOf reinterprets stored rows as Datalog tuples; both are []sym.ID,
// so the conversion copies slice headers, never values.
func tuplesOf(rows []storage.IRow) []datalog.Tuple {
	out := make([]datalog.Tuple, len(rows))
	for i, r := range rows {
		out[i] = datalog.Tuple(r)
	}
	return out
}

// FastFailing executes a ⊂-minimal plan with the fast-failing strategy of
// Section IV: for each position group, in order, it first checks that the
// subquery over the already-populated caches is satisfiable (otherwise the
// answer is empty and execution stops), then populates the group's caches
// to a fixpoint, generating access bindings from the domain predicates and
// never repeating an access to a relation; finally it evaluates the
// rewritten query over the caches.
func FastFailing(ctx context.Context, p *plan.Plan, reg *source.Registry) (*Result, error) {
	return FastFailingOpts(ctx, p, reg, Options{})
}

// FastFailingOpts is FastFailing with ablation options.
func FastFailingOpts(ctx context.Context, p *plan.Plan, reg *source.Registry, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	counted, counters := instrument(reg, opts)
	st := newGroupState(p, counted, opts)

	for gi := range p.Groups {
		gctx, gsp := obs.StartSpan(ctx, "group")
		gsp.SetAttr("group", gi)
		if !opts.NoEarlyFailure && gi > 0 {
			sat, err := st.subquerySatisfiable(gi)
			if err != nil {
				gsp.End()
				return nil, err
			}
			if !sat {
				gsp.SetAttr("early_empty", true)
				gsp.End()
				answers := datalog.NewRelation(p.Query.Name, len(p.Query.Head))
				return &Result{
					Answers:    answers,
					Stats:      statsOf(counters),
					EarlyEmpty: true,
					Elapsed:    time.Since(start),
				}, nil
			}
		}
		err := st.populateGroup(gctx, gi, nil)
		gsp.End()
		if err != nil {
			if errors.Is(err, errCancelled) {
				return truncatedResult(p.Query, st.cdb, counters, start)
			}
			return nil, err
		}
	}

	answers, err := datalog.EvalQuery(p.Query, st.cdb)
	if err != nil {
		return nil, fmt.Errorf("fast-failing: final evaluation: %w", err)
	}
	res := &Result{
		Answers: answers,
		Stats:   statsOf(counters),
		Elapsed: time.Since(start),
	}
	if answers.Len() > 0 {
		// Batch strategy: the first answer becomes available with the final
		// evaluation, so TimeToFirst coincides with it — recorded so every
		// executor feeds the latency histograms uniformly.
		res.TimeToFirst = res.Elapsed
	}
	return res, nil
}

// groupState holds the cache database and bookkeeping shared by the
// sequential and pipelined executors.
type groupState struct {
	p    *plan.Plan
	reg  *source.Registry
	opts Options

	cdb   datalog.DB // cache predicate relations
	meta  *metaCache
	enums map[*plan.Cache]*enumState // per node: semi-naive binding enumeration

	// domainRules[pred] lists the rules defining a domain predicate.
	domainRules map[string][]*datalog.Rule
}

func newGroupState(p *plan.Plan, reg *source.Registry, opts Options) *groupState {
	st := &groupState{
		p:           p,
		reg:         reg,
		opts:        opts,
		cdb:         datalog.DB{},
		meta:        newMetaCache(opts.NoMetaCache),
		enums:       make(map[*plan.Cache]*enumState),
		domainRules: make(map[string][]*datalog.Rule),
	}
	domainPreds := make(map[string]bool)
	for _, c := range p.Caches {
		st.cdb.Get(c.Pred, c.Source.Rel.Arity())
		if c.IsConst {
			// Query constants intern here — the last string boundary on the
			// way into an execution.
			st.cdb.Insert(c.Pred, datalog.Tuple{sym.Intern(c.ConstValue)})
		}
		for _, dp := range c.DomainPreds {
			domainPreds[dp] = true
		}
	}
	for _, r := range p.Program.Rules {
		if domainPreds[r.Head.Pred] {
			st.domainRules[r.Head.Pred] = append(st.domainRules[r.Head.Pred], r)
		}
	}
	return st
}

// domainValues evaluates the rules of one domain predicate over the current
// caches and returns the provided values (as interned IDs).
func (st *groupState) domainValues(pred string) (map[sym.ID]bool, error) {
	out := make(map[sym.ID]bool)
	for _, r := range st.domainRules[pred] {
		tuples, err := datalog.EvalRuleWithDelta(r, st.cdb, nil, -1)
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			out[t[0]] = true
		}
	}
	return out, nil
}

// populateGroup brings the caches of one position group to their fixpoint.
// Each new binding derived from the domain predicates is probed (through
// the meta-cache) and the extraction is added to the occurrence's cache.
// onTuples, when non-nil, observes every batch of new cache tuples (used by
// the streaming executor).
func (st *groupState) populateGroup(ctx context.Context, gi int, onTuples func(pred string, tuples []datalog.Tuple) error) error {
	for changed := true; changed; {
		changed = false
		for _, c := range st.p.Caches {
			if c.Group != gi || c.IsConst {
				continue
			}
			added, err := st.populateCacheOnce(ctx, c, onTuples)
			if err != nil {
				return err
			}
			changed = changed || added
		}
	}
	return nil
}

// populateCacheOnce performs one pass over the candidate bindings of one
// cache; it reports whether any new probe was made or tuple extracted.
// The untried bindings of the pass are collected first and probed in
// batches of at most Options.MaxBatch (meta-cache hits are folded in
// without a probe), so a pass that generates N fresh bindings costs
// ceil(N/MaxBatch) source round trips instead of N.
func (st *groupState) populateCacheOnce(ctx context.Context, c *plan.Cache, onTuples func(string, []datalog.Tuple) error) (bool, error) {
	rel := c.Source.Rel
	w := st.reg.Source(rel.Name)
	if w == nil {
		return false, fmt.Errorf("exec: no source bound for relation %s", rel.Name)
	}

	// ingest folds one extraction into the cache, storing it in the
	// meta-cache so other occurrences of the relation reuse it.
	rm := st.meta.forRel(rel.Name)
	ingest := func(binding []sym.ID, rows []datalog.Tuple, fromMeta bool) error {
		if !fromMeta && rm != nil {
			rm.Put(binding, rows)
		}
		var fresh []datalog.Tuple
		for _, row := range rows {
			if st.cdb.Insert(c.Pred, row) {
				fresh = append(fresh, row)
			}
		}
		if onTuples != nil && len(fresh) > 0 {
			return onTuples(c.Pred, fresh)
		}
		return nil
	}

	// Enumerate the pass's new bindings in the canonical order (the
	// semi-naive enumerator guarantees each reaches here exactly once);
	// meta-cache hits are ingested on the spot, the rest queue for probing.
	var toProbe [][]sym.ID
	changed, err := st.newBindings(c, func(binding []sym.ID) error {
		if rm != nil {
			if rows, hit := rm.Get(binding); hit {
				return ingest(nil, rows, true)
			}
		}
		toProbe = append(toProbe, append([]sym.ID(nil), binding...))
		return nil
	})
	if err != nil {
		return false, err
	}

	maxBatch := st.opts.maxBatch()
	for len(toProbe) > 0 {
		if ctxDone(ctx) {
			return changed, errCancelled
		}
		n := min(maxBatch, len(toProbe))
		chunk := toProbe[:n]
		toProbe = toProbe[n:]
		raws, err := source.ProbeSyms(ctx, w, chunk)
		if err != nil {
			return false, err
		}
		for i := range chunk {
			if err := ingest(chunk[i], tuplesOf(raws[i]), false); err != nil {
				return false, err
			}
		}
	}
	return changed, nil
}

// truncatedResult builds the result of a cancelled sequential run: the
// answers derivable from the tuples extracted so far for positive queries
// (each is a real answer — the caches only ever hold true tuples), none for
// queries with negation, where no answer is sound before completion.
func truncatedResult(q *cq.CQ, cdb datalog.DB, counters map[string]*source.Counter, start time.Time) (*Result, error) {
	answers := datalog.NewRelation(q.Name, len(q.Head))
	if len(q.Negated) == 0 {
		full, err := datalog.EvalQuery(q, cdb)
		if err != nil {
			return nil, fmt.Errorf("truncated evaluation: %w", err)
		}
		answers = full
	}
	res := &Result{
		Answers:   answers,
		Stats:     statsOf(counters),
		Truncated: true,
		Elapsed:   time.Since(start),
	}
	if answers.Len() > 0 {
		res.TimeToFirst = res.Elapsed // first available with the evaluation
	}
	return res, nil
}

// subquerySatisfiable runs the early non-emptiness test before populating
// group gi: the positive subquery restricted to the atoms whose caches
// belong to groups j < gi must have at least one satisfying assignment.
func (st *groupState) subquerySatisfiable(gi int) (bool, error) {
	groupOf := make(map[string]int, len(st.p.Caches))
	for _, c := range st.p.Caches {
		groupOf[c.Pred] = c.Group
	}
	var body []cq.Atom
	for _, a := range st.p.Query.Body {
		if groupOf[a.Pred] < gi {
			body = append(body, a)
		}
	}
	if len(body) == 0 {
		return true, nil
	}
	sub := &cq.CQ{Name: "sat", Body: body} // boolean query: empty head
	ans, err := datalog.EvalQuery(sub, st.cdb)
	if err != nil {
		return false, fmt.Errorf("early test before group %d: %w", gi, err)
	}
	return ans.Len() > 0, nil
}
