package exec

import (
	"fmt"
	"time"

	"toorjah/internal/cache"
	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/plan"
	"toorjah/internal/source"
)

// Options tunes the optimized executors; the zero value is the paper's
// fast-failing strategy. The switches exist for the ablation experiments.
type Options struct {
	// NoEarlyFailure disables the per-group non-emptiness test.
	NoEarlyFailure bool
	// NoMetaCache disables cross-occurrence access sharing: repeated probes
	// of the same relation binding hit the source again.
	NoMetaCache bool
	// Cache, when set, serves accesses through a cross-query access cache
	// shared between executions (and between concurrent executions). The
	// cache is layered outside the per-run counters, so Result.Stats then
	// reports only the probes that actually reached the sources.
	Cache *cache.Cache
}

// instrument wraps every source of reg in a fresh Counter — the per-run
// access accounting behind Result.Stats — and, when a cross-query cache is
// configured, layers the cache outside the counters
// (Cached(Counted(source))) so cache hits bypass the counters entirely.
func instrument(reg *source.Registry, opts Options) (*source.Registry, map[string]*source.Counter) {
	counted, counters := reg.Counted(false)
	if opts.Cache != nil {
		counted = opts.Cache.WrapRegistry(counted)
	}
	return counted, counters
}

// metaCache shares access results across the occurrences of a relation:
// before probing a relation, the executor consults the relation's
// meta-cache and reuses the stored extraction without touching the source.
type metaCache struct {
	disabled bool
	results  map[string][]datalog.Tuple // access key -> extraction
}

func newMetaCache(disabled bool) *metaCache {
	return &metaCache{disabled: disabled, results: make(map[string][]datalog.Tuple)}
}

// probe returns the extraction for the access, hitting the source only when
// the binding was never probed before (or sharing is disabled).
func (m *metaCache) probe(w source.Wrapper, binding []string) ([]datalog.Tuple, error) {
	rel := w.Relation().Name
	if rows, ok := m.hit(rel, binding); ok {
		return rows, nil
	}
	raw, err := w.Access(binding)
	if err != nil {
		return nil, err
	}
	rows := make([]datalog.Tuple, len(raw))
	for i, r := range raw {
		rows[i] = datalog.Tuple(r)
	}
	m.store(rel, binding, rows)
	return rows, nil
}

// hit returns the stored extraction for an already-probed binding.
func (m *metaCache) hit(rel string, binding []string) ([]datalog.Tuple, bool) {
	if m.disabled {
		return nil, false
	}
	rows, ok := m.results[source.Access{Relation: rel, Binding: binding}.Key()]
	return rows, ok
}

// store records the extraction of one access.
func (m *metaCache) store(rel string, binding []string, rows []datalog.Tuple) {
	if m.disabled {
		return
	}
	m.results[source.Access{Relation: rel, Binding: binding}.Key()] = rows
}

// FastFailing executes a ⊂-minimal plan with the fast-failing strategy of
// Section IV: for each position group, in order, it first checks that the
// subquery over the already-populated caches is satisfiable (otherwise the
// answer is empty and execution stops), then populates the group's caches
// to a fixpoint, generating access bindings from the domain predicates and
// never repeating an access to a relation; finally it evaluates the
// rewritten query over the caches.
func FastFailing(p *plan.Plan, reg *source.Registry) (*Result, error) {
	return FastFailingOpts(p, reg, Options{})
}

// FastFailingOpts is FastFailing with ablation options.
func FastFailingOpts(p *plan.Plan, reg *source.Registry, opts Options) (*Result, error) {
	start := time.Now()
	counted, counters := instrument(reg, opts)
	st := newGroupState(p, counted, opts)

	for gi := range p.Groups {
		if !opts.NoEarlyFailure && gi > 0 {
			sat, err := st.subquerySatisfiable(gi)
			if err != nil {
				return nil, err
			}
			if !sat {
				answers := datalog.NewRelation(p.Query.Name, len(p.Query.Head))
				return &Result{
					Answers:    answers,
					Stats:      statsOf(counters),
					EarlyEmpty: true,
					Elapsed:    time.Since(start),
				}, nil
			}
		}
		if err := st.populateGroup(gi, nil); err != nil {
			return nil, err
		}
	}

	answers, err := datalog.EvalQuery(p.Query, st.cdb)
	if err != nil {
		return nil, fmt.Errorf("fast-failing: final evaluation: %w", err)
	}
	return &Result{
		Answers: answers,
		Stats:   statsOf(counters),
		Elapsed: time.Since(start),
	}, nil
}

// groupState holds the cache database and bookkeeping shared by the
// sequential and pipelined executors.
type groupState struct {
	p    *plan.Plan
	reg  *source.Registry
	opts Options

	cdb   datalog.DB // cache predicate relations
	meta  *metaCache
	tried map[string]map[string]bool // cache pred -> probed binding keys

	// domainRules[pred] lists the rules defining a domain predicate.
	domainRules map[string][]*datalog.Rule
}

func newGroupState(p *plan.Plan, reg *source.Registry, opts Options) *groupState {
	st := &groupState{
		p:           p,
		reg:         reg,
		opts:        opts,
		cdb:         datalog.DB{},
		meta:        newMetaCache(opts.NoMetaCache),
		tried:       make(map[string]map[string]bool),
		domainRules: make(map[string][]*datalog.Rule),
	}
	domainPreds := make(map[string]bool)
	for _, c := range p.Caches {
		st.cdb.Get(c.Pred, c.Source.Rel.Arity())
		st.tried[c.Pred] = make(map[string]bool)
		if c.IsConst {
			st.cdb.Insert(c.Pred, datalog.Tuple{c.ConstValue})
		}
		for _, dp := range c.DomainPreds {
			domainPreds[dp] = true
		}
	}
	for _, r := range p.Program.Rules {
		if domainPreds[r.Head.Pred] {
			st.domainRules[r.Head.Pred] = append(st.domainRules[r.Head.Pred], r)
		}
	}
	return st
}

// domainValues evaluates the rules of one domain predicate over the current
// caches and returns the provided values.
func (st *groupState) domainValues(pred string) (map[string]bool, error) {
	out := make(map[string]bool)
	for _, r := range st.domainRules[pred] {
		tuples, err := datalog.EvalRuleWithDelta(r, st.cdb, nil, -1)
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			out[t[0]] = true
		}
	}
	return out, nil
}

// populateGroup brings the caches of one position group to their fixpoint.
// Each new binding derived from the domain predicates is probed (through
// the meta-cache) and the extraction is added to the occurrence's cache.
// onTuples, when non-nil, observes every batch of new cache tuples (used by
// the streaming executor).
func (st *groupState) populateGroup(gi int, onTuples func(pred string, tuples []datalog.Tuple) error) error {
	for changed := true; changed; {
		changed = false
		for _, c := range st.p.Caches {
			if c.Group != gi || c.IsConst {
				continue
			}
			added, err := st.populateCacheOnce(c, onTuples)
			if err != nil {
				return err
			}
			changed = changed || added
		}
	}
	return nil
}

// populateCacheOnce performs one pass over the candidate bindings of one
// cache; it reports whether any new probe was made or tuple extracted.
func (st *groupState) populateCacheOnce(c *plan.Cache, onTuples func(string, []datalog.Tuple) error) (bool, error) {
	rel := c.Source.Rel
	w := st.reg.Source(rel.Name)
	if w == nil {
		return false, fmt.Errorf("exec: no source bound for relation %s", rel.Name)
	}
	pools := make([][]string, len(c.DomainPreds))
	for i, dp := range c.DomainPreds {
		vals, err := st.domainValues(dp)
		if err != nil {
			return false, err
		}
		if len(vals) == 0 {
			return false, nil // no bindings derivable yet
		}
		for v := range vals {
			pools[i] = append(pools[i], v)
		}
	}
	changed := false
	binding := make([]string, len(pools))
	var probe func(i int) error
	probe = func(i int) error {
		if i == len(pools) {
			key := source.Access{Relation: rel.Name, Binding: binding}.Key()
			if st.tried[c.Pred][key] {
				return nil
			}
			st.tried[c.Pred][key] = true
			changed = true
			rows, err := st.meta.probe(w, binding)
			if err != nil {
				return err
			}
			var fresh []datalog.Tuple
			for _, row := range rows {
				if st.cdb.Insert(c.Pred, row) {
					fresh = append(fresh, row)
				}
			}
			if onTuples != nil && len(fresh) > 0 {
				return onTuples(c.Pred, fresh)
			}
			return nil
		}
		for _, v := range pools[i] {
			binding[i] = v
			if err := probe(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := probe(0); err != nil {
		return false, err
	}
	return changed, nil
}

// subquerySatisfiable runs the early non-emptiness test before populating
// group gi: the positive subquery restricted to the atoms whose caches
// belong to groups j < gi must have at least one satisfying assignment.
func (st *groupState) subquerySatisfiable(gi int) (bool, error) {
	groupOf := make(map[string]int, len(st.p.Caches))
	for _, c := range st.p.Caches {
		groupOf[c.Pred] = c.Group
	}
	var body []cq.Atom
	for _, a := range st.p.Query.Body {
		if groupOf[a.Pred] < gi {
			body = append(body, a)
		}
	}
	if len(body) == 0 {
		return true, nil
	}
	sub := &cq.CQ{Name: "sat", Body: body} // boolean query: empty head
	ans, err := datalog.EvalQuery(sub, st.cdb)
	if err != nil {
		return false, fmt.Errorf("early test before group %d: %w", gi, err)
	}
	return ans.Len() > 0, nil
}
