package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"toorjah/internal/source"
	"toorjah/internal/storage"
)

var errSourceDown = errors.New("source unavailable")

// flakyFixture rebinds one relation of a fixture behind a failure-injecting
// wrapper.
func flakyFixture(t *testing.T, f *fixture, rel string, failAfter int) {
	t.Helper()
	w := f.reg.Source(rel)
	if w == nil {
		t.Fatalf("no source for %s", rel)
	}
	f.reg.Bind(source.NewFlaky(w, failAfter, errSourceDown))
}

func chainFixture(t *testing.T) *fixture {
	var free, mid []storage.Row
	for i := 0; i < 30; i++ {
		free = append(free, storage.Row{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)})
		mid = append(mid, storage.Row{fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)})
	}
	return setup(t, `
free^oo(A, B)
mid^io(B, C)
`, "q(X, Z) :- free(X, Y), mid(Y, Z)", map[string][]storage.Row{
		"free": free,
		"mid":  mid,
	})
}

func TestNaivePropagatesSourceError(t *testing.T) {
	f := chainFixture(t)
	flakyFixture(t, f, "mid", 5)
	_, err := Naive(context.Background(), f.sch, f.reg, f.q, f.ty)
	if !errors.Is(err, errSourceDown) {
		t.Errorf("err = %v, want %v", err, errSourceDown)
	}
}

func TestFastFailingPropagatesSourceError(t *testing.T) {
	f := chainFixture(t)
	flakyFixture(t, f, "mid", 5)
	_, err := FastFailing(context.Background(), f.plan, f.reg)
	if !errors.Is(err, errSourceDown) {
		t.Errorf("err = %v, want %v", err, errSourceDown)
	}
}

// TestPipelinedPropagatesSourceErrorNoDeadlock: the parallel engine must
// return the error promptly, shut down its workers and not leak goroutines
// or deadlock — run repeatedly to shake races.
func TestPipelinedPropagatesSourceErrorNoDeadlock(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		f := chainFixture(t)
		flakyFixture(t, f, "mid", trial)
		_, err := Pipelined(context.Background(), f.plan, f.reg, Options{Parallelism: 3, QueueLen: 2}, nil)
		if !errors.Is(err, errSourceDown) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errSourceDown)
		}
	}
}

// TestErrorBeforeAnyAccess: a source that fails immediately.
func TestErrorBeforeAnyAccess(t *testing.T) {
	f := chainFixture(t)
	flakyFixture(t, f, "free", 0)
	if _, err := FastFailing(context.Background(), f.plan, f.reg); !errors.Is(err, errSourceDown) {
		t.Errorf("fast: err = %v", err)
	}
	if _, err := Pipelined(context.Background(), f.plan, f.reg, Options{}, nil); !errors.Is(err, errSourceDown) {
		t.Errorf("pipelined: err = %v", err)
	}
}

// TestSufficientBudgetSucceeds: with enough budget the flaky wrapper is
// invisible and all strategies agree.
func TestSufficientBudgetSucceeds(t *testing.T) {
	f := chainFixture(t)
	flakyFixture(t, f, "mid", 1000)
	flakyFixture(t, f, "free", 1000)
	ff, err := FastFailing(context.Background(), f.plan, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Pipelined(context.Background(), f.plan, f.reg, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(ff.SortedAnswers(), ";") != strings.Join(pp.SortedAnswers(), ";") {
		t.Error("strategies disagree under a permissive flaky wrapper")
	}
	if ff.Answers.Len() != 30 {
		t.Errorf("answers = %d, want 30", ff.Answers.Len())
	}
}
