package exec

import (
	"sync"

	"toorjah/internal/sym"
)

// bindSetPool recycles the integer-keyed tried-binding sets of the naive
// executor. Every naive execution — and, in a sequential union, every
// disjunct — used to allocate a fresh string-keyed dedup map and grow it
// from empty; now each run borrows a per-relation family of sym.BindMap
// sets whose buckets stay allocated across runs. Clearing a map keeps its
// capacity in Go, which is the entire point: steady-state executions stop
// paying map growth, and no access key is ever materialized as a string.
// (The optimized executors need no such pool: their delta enumeration
// visits each candidate binding exactly once, so they keep no tried set.)
var bindSetPool = sync.Pool{
	New: func() any { return make(map[string]*sym.BindMap[struct{}], 8) },
}

// getBindSets returns an empty relation→tried-bindings family with warm
// per-relation capacity. Entries for relations of other schemas may be
// present but empty; lookups simply miss them.
func getBindSets() map[string]*sym.BindMap[struct{}] {
	return bindSetPool.Get().(map[string]*sym.BindMap[struct{}])
}

// putBindSets clears every relation's set — keeping the sets themselves,
// and their bucket arrays, for the next run — and returns the family to
// the pool. Callers must not retain the map or any set afterwards.
func putBindSets(m map[string]*sym.BindMap[struct{}]) {
	if m == nil {
		return
	}
	for _, s := range m {
		s.Clear()
	}
	bindSetPool.Put(m)
}
