package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// wideFixture joins three relations with fan-out, so each round generates
// many fresh bindings — the shape batching is for.
func wideFixture(t *testing.T, n int) *fixture {
	t.Helper()
	var free, mid, last []storage.Row
	for i := 0; i < n; i++ {
		free = append(free, storage.Row{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%7)})
		mid = append(mid, storage.Row{fmt.Sprintf("b%d", i%7), fmt.Sprintf("c%d", i)})
		last = append(last, storage.Row{fmt.Sprintf("c%d", i), fmt.Sprintf("d%d", i%5)})
	}
	return setup(t, `
free^oo(A, B)
mid^io(B, C)
last^io(C, D)
`, "q(X, W) :- free(X, Y), mid(Y, Z), last(Z, W)", map[string][]storage.Row{
		"free": free,
		"mid":  mid,
		"last": last,
	})
}

// recursiveFixture is the paper's Example 1 shape: the only way into the
// limited sources is a free relation the query never mentions.
func recursiveFixture(t *testing.T) *fixture {
	return setup(t, `
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`, "q(N) :- r1(A, N, Y1), r2(volare, Y2, A)", map[string][]storage.Row{
		"r1": {
			{"modugno", "italy", "1928"},
			{"madonna", "usa", "1958"},
			{"dylan", "usa", "1941"},
		},
		"r2": {
			{"volare", "1958", "modugno"},
			{"vogue", "1990", "madonna"},
			{"hurricane", "1976", "dylan"},
		},
		"r3": {
			{"madonna", "like_a_virgin"},
			{"dylan", "desire"},
		},
	})
}

// TestBatchingInvariance is the batching soundness property: every executor
// must produce the identical answer set and the identical access count with
// batching off, at 1, at a small bound, and at the default — a batch is
// just N accesses folded into one round trip.
func TestBatchingInvariance(t *testing.T) {
	fixtures := map[string]func(*testing.T) *fixture{
		"wide":      func(t *testing.T) *fixture { return wideFixture(t, 60) },
		"recursive": recursiveFixture,
		"chain":     chainFixture,
	}
	batchSettings := []int{-1, 1, 3, DefaultMaxBatch}
	for name, mk := range fixtures {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			type outcome struct {
				answers  string
				accesses int
				batches  int
			}
			var baseline map[string]outcome
			for _, mb := range batchSettings {
				opts := Options{MaxBatch: mb}
				got := map[string]outcome{}

				nr, err := NaiveOpts(context.Background(), f.sch, f.reg, f.q, f.ty, opts)
				if err != nil {
					t.Fatalf("naive MaxBatch=%d: %v", mb, err)
				}
				got["naive"] = outcome{strings.Join(nr.SortedAnswers(), ";"), nr.TotalAccesses(), nr.TotalBatches()}

				fr, err := FastFailingOpts(context.Background(), f.plan, f.reg, opts)
				if err != nil {
					t.Fatalf("fastfail MaxBatch=%d: %v", mb, err)
				}
				got["fastfail"] = outcome{strings.Join(fr.SortedAnswers(), ";"), fr.TotalAccesses(), fr.TotalBatches()}

				pr, err := Pipelined(context.Background(), f.plan, f.reg, opts, nil)
				if err != nil {
					t.Fatalf("pipelined MaxBatch=%d: %v", mb, err)
				}
				got["pipelined"] = outcome{strings.Join(pr.SortedAnswers(), ";"), pr.TotalAccesses(), pr.TotalBatches()}

				// All strategies agree on the answers at this setting.
				if got["naive"].answers != got["fastfail"].answers || got["fastfail"].answers != got["pipelined"].answers {
					t.Fatalf("MaxBatch=%d: strategies disagree on answers: %v", mb, got)
				}
				for strat, o := range got {
					if o.batches > o.accesses {
						t.Errorf("MaxBatch=%d %s: %d batches for %d accesses", mb, strat, o.batches, o.accesses)
					}
					if mb <= 1 && o.batches != o.accesses {
						t.Errorf("MaxBatch=%d %s: batching off but %d round trips for %d accesses",
							mb, strat, o.batches, o.accesses)
					}
				}
				if baseline == nil {
					baseline = got
					continue
				}
				// Against the unbatched baseline: same answers, same access
				// counts, per strategy.
				for strat, o := range got {
					b := baseline[strat]
					if o.answers != b.answers {
						t.Errorf("%s MaxBatch=%d: answers differ from unbatched", strat, mb)
					}
					if o.accesses != b.accesses {
						t.Errorf("%s MaxBatch=%d: %d accesses, unbatched %d — batching changed the cost",
							strat, mb, o.accesses, b.accesses)
					}
				}
			}
		})
	}
}

// TestBatchingSavesRoundTrips: with fan-out and the default bound, the
// sequential executors actually fold accesses into fewer round trips.
func TestBatchingSavesRoundTrips(t *testing.T) {
	f := wideFixture(t, 60)
	r, err := FastFailingOpts(context.Background(), f.plan, f.reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalBatches() >= r.TotalAccesses() {
		t.Errorf("batches = %d, accesses = %d: default batching saved nothing",
			r.TotalBatches(), r.TotalAccesses())
	}
}

// accessBudget cancels a context once a total number of accesses has been
// spent across every source of a fixture; the sources keep serving (the run
// must stop because the executor checks the context, not because a source
// fails).
type accessBudget struct {
	mu     sync.Mutex
	budget int
	cancel context.CancelFunc
}

// cancelSource routes one relation's accesses through the shared budget.
// It deliberately has no AccessBatch: the loop fallback charges the budget
// per access regardless of the executor's batch bound.
type cancelSource struct {
	source.Wrapper
	b *accessBudget
}

func (w *cancelSource) Access(binding []string) ([]storage.Row, error) {
	w.b.mu.Lock()
	w.b.budget--
	if w.b.budget <= 0 {
		w.b.cancel()
	}
	w.b.mu.Unlock()
	return w.Wrapper.Access(binding)
}

// cancelAfter rebinds every relation of the fixture behind wrappers that
// cancel the returned context once budget accesses have been spent.
func cancelAfter(t *testing.T, f *fixture, budget int) context.Context {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	shared := &accessBudget{budget: budget, cancel: cancel}
	for _, name := range f.reg.Names() {
		f.reg.Bind(&cancelSource{Wrapper: f.reg.Source(name), b: shared})
	}
	t.Cleanup(cancel)
	return ctx
}

// TestNaiveCancellation: a cancelled context stops the naive extraction;
// the result is flagged truncated, is a sound subset, and saved accesses.
func TestNaiveCancellation(t *testing.T) {
	f := wideFixture(t, 60)
	full, err := Naive(context.Background(), f.sch, f.reg, f.q, f.ty)
	if err != nil {
		t.Fatal(err)
	}
	ctx := cancelAfter(t, f, 10)
	r, err := NaiveOpts(ctx, f.sch, f.reg, f.q, f.ty, Options{MaxBatch: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Truncated {
		t.Error("cancelled naive run must be flagged truncated")
	}
	if r.TotalAccesses() >= full.TotalAccesses() {
		t.Errorf("cancellation saved nothing: %d vs %d accesses", r.TotalAccesses(), full.TotalAccesses())
	}
	fullSet := full.AnswerSet()
	for _, tu := range r.Answers.Tuples() {
		if !fullSet[tu.Key()] {
			t.Errorf("truncated run produced a wrong answer %v", tu)
		}
	}
}

// TestFastFailingCancellation: same contract for the fast-failing strategy.
func TestFastFailingCancellation(t *testing.T) {
	f := wideFixture(t, 60)
	full, err := FastFailing(context.Background(), f.plan, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := cancelAfter(t, f, 10)
	r, err := FastFailingOpts(ctx, f.plan, f.reg, Options{MaxBatch: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Truncated {
		t.Error("cancelled fast-failing run must be flagged truncated")
	}
	if r.TotalAccesses() >= full.TotalAccesses() {
		t.Errorf("cancellation saved nothing: %d vs %d accesses", r.TotalAccesses(), full.TotalAccesses())
	}
	fullSet := full.AnswerSet()
	for _, tu := range r.Answers.Tuples() {
		if !fullSet[tu.Key()] {
			t.Errorf("truncated run produced a wrong answer %v", tu)
		}
	}
}

// TestCancelledBeforeStart: an already-cancelled context spends no
// accesses in any sequential strategy.
func TestCancelledBeforeStart(t *testing.T) {
	f := wideFixture(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NaiveOpts(ctx, f.sch, f.reg, f.q, f.ty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Truncated || r.TotalAccesses() != 0 {
		t.Errorf("naive: truncated=%v accesses=%d, want truncated with 0 accesses", r.Truncated, r.TotalAccesses())
	}
	rf, err := FastFailingOpts(ctx, f.plan, f.reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rf.Truncated || rf.TotalAccesses() != 0 {
		t.Errorf("fastfail: truncated=%v accesses=%d, want truncated with 0 accesses", rf.Truncated, rf.TotalAccesses())
	}
}
