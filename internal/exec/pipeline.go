package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/obs"
	"toorjah/internal/plan"
	"toorjah/internal/source"
)

// PipeOptions tunes the pipelined executor.
type PipeOptions struct {
	// QueueLen is the per-wrapper access queue capacity (paper Fig. 5);
	// default 32.
	QueueLen int
	// Parallelism is the number of concurrent probes per relation;
	// default 4.
	Parallelism int
	// Limit, when positive, stops the extraction as soon as that many
	// answers have been emitted — the paper's interactive early stop
	// ("the user can stop the lengthy answering process once satisfied").
	// The result is then a sound subset of the obtainable answers and
	// carries Truncated. For queries with negated atoms no answer is sound
	// until every cache is complete, so the limit cannot save accesses
	// there; it still caps the answers returned.
	Limit int
	// Ctx, when non-nil, cancels the extraction: once the context is done
	// no further probes are dispatched and the run returns early with
	// Truncated set (the answers emitted so far are a sound subset). A
	// server uses this to stop spending accesses on abandoned requests.
	// When nil, Options.Ctx is used instead.
	Ctx context.Context
	// MaxBatch (inherited from Options) caps how many queued access tuples
	// a wrapper worker drains into one source round trip; default 16.
	Options
}

func (o *PipeOptions) defaults() {
	if o.QueueLen <= 0 {
		o.QueueLen = 32
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	if o.Ctx == nil {
		o.Ctx = o.Options.Ctx
	}
}

// job is one access tuple queued for a wrapper.
type job struct {
	cache   *plan.Cache
	binding []string
}

// probeResult carries a wrapper's extraction back to the coordinator.
type probeResult struct {
	cache   *plan.Cache
	binding []string
	rows    []datalog.Tuple
	err     error
}

// Pipelined executes the plan with the Toorjah engine of Section V: every
// relation gets a wrapper goroutine pool with a bounded access queue, the
// coordinator "distils" new access tuples into the queues as soon as the
// cache database can generate them, and answers are emitted through
// onAnswer the moment an incremental join derives them. The final result
// carries the same answer set as FastFailing.
//
// For queries with negated atoms, incremental emission would be unsound
// (a later extraction can invalidate a tentative answer), so answers are
// emitted only after all caches are complete.
func Pipelined(p *plan.Plan, reg *source.Registry, opts PipeOptions, onAnswer func(datalog.Tuple)) (*Result, error) {
	opts.defaults()
	start := time.Now()
	counted, counters := instrument(reg, opts.Options)
	st := newGroupState(p, counted, opts.Options)

	// One "pipeline" span covers the whole distillation; the workers' probe
	// batches hang off it (the span is nil — free — when the context
	// carries no trace).
	pctx, psp := obs.StartSpan(opts.Ctx, "pipeline")
	defer psp.End()

	// One queue and worker pool per relation occurring in the plan.
	queues := make(map[string]chan job)
	results := make(chan probeResult)
	var wg sync.WaitGroup
	var stopped atomic.Bool
	for _, c := range p.Caches {
		if c.IsConst {
			continue
		}
		name := c.Source.Rel.Name
		if _, ok := queues[name]; ok {
			continue
		}
		w := counted.Source(name)
		if w == nil {
			return nil, fmt.Errorf("pipelined: no source bound for relation %s", name)
		}
		q := make(chan job, opts.QueueLen)
		queues[name] = q
		maxBatch := opts.Options.maxBatch()
		for i := 0; i < opts.Parallelism; i++ {
			wg.Add(1)
			go func(w source.Wrapper, q chan job) {
				defer wg.Done()
				for j := range q {
					// Drain the queue into a batch: every access tuple
					// already waiting rides the same source round trip, up
					// to the MaxBatch bound.
					batch := []job{j}
				drain:
					for len(batch) < maxBatch {
						select {
						case j2, ok := <-q:
							if !ok {
								break drain
							}
							batch = append(batch, j2)
						default:
							break drain
						}
					}
					if stopped.Load() {
						// Truncated run: pass queued jobs through without
						// touching the source.
						for _, jb := range batch {
							results <- probeResult{cache: jb.cache, binding: jb.binding}
						}
						continue
					}
					bindings := make([][]string, len(batch))
					for k, jb := range batch {
						bindings[k] = jb.binding
					}
					raws, err := source.ProbeBatchCtx(pctx, w, bindings)
					if err != nil {
						for _, jb := range batch {
							results <- probeResult{cache: jb.cache, binding: jb.binding, err: err}
						}
						continue
					}
					for k, jb := range batch {
						rows := make([]datalog.Tuple, len(raws[k]))
						for i, r := range raws[k] {
							rows[i] = datalog.Tuple(r)
						}
						results <- probeResult{cache: jb.cache, binding: jb.binding, rows: rows}
					}
				}
			}(w, q)
		}
	}
	// cleanup stops the workers: close the queues, then drain the results
	// channel until every worker has exited, so no send can block forever.
	// It runs exactly once — explicitly on the success paths (so access
	// statistics are final when the result is built) and deferred for the
	// error paths.
	var cleanupOnce sync.Once
	cleanup := func() {
		cleanupOnce.Do(func() {
			stopped.Store(true)
			for _, q := range queues {
				close(q)
			}
			go func() {
				wg.Wait()
				close(results)
			}()
			for range results {
			}
		})
	}
	defer cleanup()

	streaming := len(p.Query.Negated) == 0
	answers := datalog.NewRelation(p.Query.Name, len(p.Query.Head))
	queryRule := &datalog.Rule{
		Head:    cq.Atom{Pred: p.Query.Name, Args: p.Query.Head},
		Body:    p.Query.Body,
		Negated: p.Query.Negated,
	}
	var firstAnswer time.Duration
	emit := func(t datalog.Tuple) {
		if !answers.Insert(t) {
			return
		}
		if firstAnswer == 0 {
			firstAnswer = time.Since(start)
		}
		if onAnswer != nil {
			onAnswer(t)
		}
	}

	// onFresh folds a batch of new cache tuples into the incremental
	// answer join.
	onFresh := func(pred string, fresh []datalog.Tuple) error {
		if !streaming {
			return nil
		}
		delta := datalog.NewRelation(pred, len(fresh[0]))
		for _, t := range fresh {
			delta.Insert(t)
		}
		for i, a := range p.Query.Body {
			if a.Pred != pred {
				continue
			}
			derived, err := datalog.EvalRuleWithDelta(queryRule, st.cdb, delta, i)
			if err != nil {
				return err
			}
			for _, t := range derived {
				emit(t)
			}
		}
		return nil
	}

	// generate derives every new access binding the caches currently
	// support. Meta-cache hits are folded in synchronously; probes already
	// in flight for the same relation binding register the extra cache as a
	// waiter instead of re-probing ("every access tuple is never sent twice
	// to the same wrapper"); everything else is queued.
	var pending []job
	inflight := make(map[string][]*plan.Cache)
	generate := func() error {
		for _, c := range p.Caches {
			if c.IsConst {
				continue
			}
			rel := c.Source.Rel
			pools := make([][]string, len(c.DomainPreds))
			ready := true
			for i, dp := range c.DomainPreds {
				vals, err := st.domainValues(dp)
				if err != nil {
					return err
				}
				if len(vals) == 0 {
					ready = false
					break
				}
				for v := range vals {
					pools[i] = append(pools[i], v)
				}
			}
			if !ready {
				continue
			}
			binding := make([]string, len(pools))
			var walk func(i int) error
			walk = func(i int) error {
				if i == len(pools) {
					key := source.Access{Relation: rel.Name, Binding: binding}.Key()
					if st.tried[c.Pred][key] {
						return nil
					}
					st.tried[c.Pred][key] = true
					b := append([]string(nil), binding...)
					if rows, hit := st.meta.hit(rel.Name, b); hit {
						return ingest(st, c, rows, onFresh)
					}
					if !opts.NoMetaCache {
						akey := source.Access{Relation: rel.Name, Binding: b}.Key()
						if _, flying := inflight[akey]; flying {
							inflight[akey] = append(inflight[akey], c)
							return nil
						}
						inflight[akey] = nil
					}
					pending = append(pending, job{cache: c, binding: b})
					return nil
				}
				for _, v := range pools[i] {
					binding[i] = v
					if err := walk(i + 1); err != nil {
						return err
					}
				}
				return nil
			}
			if err := walk(0); err != nil {
				return err
			}
		}
		return nil
	}

	limitHit := func() bool { return opts.Limit > 0 && answers.Len() >= opts.Limit }
	cancelled := func() bool {
		if opts.Ctx == nil {
			return false
		}
		select {
		case <-opts.Ctx.Done():
			return true
		default:
			return false
		}
	}
	stopRequested := func() bool { return limitHit() || cancelled() }

	if err := generate(); err != nil {
		return nil, err
	}
	outstanding := 0
	for (len(pending) > 0 || outstanding > 0) && !stopRequested() {
		// Dispatch as many pending jobs as the queues accept.
		kept := pending[:0]
		for _, j := range pending {
			select {
			case queues[j.cache.Source.Rel.Name] <- j:
				outstanding++
			default:
				kept = append(kept, j)
			}
		}
		pending = kept
		if outstanding == 0 {
			continue
		}
		res := <-results
		outstanding--
		if res.err != nil {
			return nil, res.err
		}
		relName := res.cache.Source.Rel.Name
		st.meta.store(relName, res.binding, res.rows)
		if err := ingest(st, res.cache, res.rows, onFresh); err != nil {
			return nil, err
		}
		akey := source.Access{Relation: relName, Binding: res.binding}.Key()
		for _, waiter := range inflight[akey] {
			if err := ingest(st, waiter, res.rows, onFresh); err != nil {
				return nil, err
			}
		}
		delete(inflight, akey)
		if err := generate(); err != nil {
			return nil, err
		}
	}

	truncated := stopRequested() && (len(pending) > 0 || outstanding > 0)
	if truncated {
		// Stop the workers from touching the sources for jobs still queued;
		// only probes already in flight complete.
		stopped.Store(true)
	}
	// Drain probes still in flight, then stop the workers; their remaining
	// extractions are discarded when the limit or cancellation stopped the
	// run.
	for ; outstanding > 0; outstanding-- {
		<-results
	}
	cleanup()

	if !truncated {
		// Authoritative final evaluation (also covers negation). The limit
		// applies here too: for negated queries this is where answers are
		// first emitted, and a client who asked for N gets N.
		final, err := datalog.EvalQuery(p.Query, st.cdb)
		if err != nil {
			return nil, fmt.Errorf("pipelined: final evaluation: %w", err)
		}
		for _, t := range final.Tuples() {
			if limitHit() && !answers.Contains(t) {
				truncated = true
				break
			}
			emit(t)
		}
	}
	return &Result{
		Answers:     answers,
		Stats:       statsOf(counters),
		Truncated:   truncated,
		Elapsed:     time.Since(start),
		TimeToFirst: firstAnswer,
	}, nil
}

// ingest inserts an extraction into a cache and forwards new tuples to the
// incremental join.
func ingest(st *groupState, c *plan.Cache, rows []datalog.Tuple, onFresh func(string, []datalog.Tuple) error) error {
	var fresh []datalog.Tuple
	for _, row := range rows {
		if st.cdb.Insert(c.Pred, row) {
			fresh = append(fresh, row)
		}
	}
	if len(fresh) > 0 {
		return onFresh(c.Pred, fresh)
	}
	return nil
}
