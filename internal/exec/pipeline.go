package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/obs"
	"toorjah/internal/plan"
	"toorjah/internal/source"
	"toorjah/internal/sym"
)

// job is one access tuple queued for a wrapper.
type job struct {
	cache   *plan.Cache
	binding []sym.ID
}

// probeResult carries a wrapper's extraction back to the coordinator.
type probeResult struct {
	cache   *plan.Cache
	binding []sym.ID
	rows    []datalog.Tuple
	err     error
}

// Pipelined executes the plan with the Toorjah engine of Section V: every
// relation gets a wrapper goroutine pool with a bounded access queue, the
// coordinator "distils" new access tuples into the queues as soon as the
// cache database can generate them, and answers are emitted through
// onAnswer the moment an incremental join derives them. The final result
// carries the same answer set as FastFailing.
//
// For queries with negated atoms, incremental emission would be unsound
// (a later extraction can invalidate a tentative answer), so answers are
// emitted only after all caches are complete.
func Pipelined(ctx context.Context, p *plan.Plan, reg *source.Registry, opts Options, onAnswer func(datalog.Tuple)) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	counted, counters := instrument(reg, opts)
	st := newGroupState(p, counted, opts)

	// One "pipeline" span covers the whole distillation; the workers' probe
	// batches hang off it (the span is nil — free — when the context
	// carries no trace).
	pctx, psp := obs.StartSpan(ctx, "pipeline")
	defer psp.End()

	// One queue and worker pool per relation occurring in the plan.
	queues := make(map[string]chan job)
	results := make(chan probeResult)
	var wg sync.WaitGroup
	var stopped atomic.Bool
	for _, c := range p.Caches {
		if c.IsConst {
			continue
		}
		name := c.Source.Rel.Name
		if _, ok := queues[name]; ok {
			continue
		}
		w := counted.Source(name)
		if w == nil {
			return nil, fmt.Errorf("pipelined: no source bound for relation %s", name)
		}
		q := make(chan job, opts.queueLen())
		queues[name] = q
		maxBatch := opts.maxBatch()
		for i := 0; i < opts.parallelism(); i++ {
			wg.Add(1)
			go func(w source.Wrapper, q chan job) {
				defer wg.Done()
				for j := range q {
					// Drain the queue into a batch: every access tuple
					// already waiting rides the same source round trip, up
					// to the MaxBatch bound.
					batch := []job{j}
				drain:
					for len(batch) < maxBatch {
						select {
						case j2, ok := <-q:
							if !ok {
								break drain
							}
							batch = append(batch, j2)
						default:
							break drain
						}
					}
					if stopped.Load() {
						// Truncated run: pass queued jobs through without
						// touching the source.
						for _, jb := range batch {
							results <- probeResult{cache: jb.cache, binding: jb.binding}
						}
						continue
					}
					bindings := make([][]sym.ID, len(batch))
					for k, jb := range batch {
						bindings[k] = jb.binding
					}
					raws, err := source.ProbeSyms(pctx, w, bindings)
					if err != nil {
						for _, jb := range batch {
							results <- probeResult{cache: jb.cache, binding: jb.binding, err: err}
						}
						continue
					}
					for k, jb := range batch {
						results <- probeResult{cache: jb.cache, binding: jb.binding, rows: tuplesOf(raws[k])}
					}
				}
			}(w, q)
		}
	}
	// cleanup stops the workers: close the queues, then drain the results
	// channel until every worker has exited, so no send can block forever.
	// It runs exactly once — explicitly on the success paths (so access
	// statistics are final when the result is built) and deferred for the
	// error paths.
	var cleanupOnce sync.Once
	cleanup := func() {
		cleanupOnce.Do(func() {
			stopped.Store(true)
			for _, q := range queues {
				close(q)
			}
			go func() {
				wg.Wait()
				close(results)
			}()
			for range results {
			}
		})
	}
	defer cleanup()

	streaming := len(p.Query.Negated) == 0
	answers := datalog.NewRelation(p.Query.Name, len(p.Query.Head))
	queryRule := &datalog.Rule{
		Head:    cq.Atom{Pred: p.Query.Name, Args: p.Query.Head},
		Body:    p.Query.Body,
		Negated: p.Query.Negated,
	}
	var firstAnswer time.Duration
	emit := func(t datalog.Tuple) {
		if !answers.Insert(t) {
			return
		}
		if firstAnswer == 0 {
			firstAnswer = time.Since(start)
		}
		if onAnswer != nil {
			onAnswer(t)
		}
	}

	// onFresh folds a batch of new cache tuples into the incremental
	// answer join.
	onFresh := func(pred string, fresh []datalog.Tuple) error {
		if !streaming {
			return nil
		}
		delta := datalog.NewRelation(pred, len(fresh[0]))
		for _, t := range fresh {
			delta.Insert(t)
		}
		for i, a := range p.Query.Body {
			if a.Pred != pred {
				continue
			}
			derived, err := datalog.EvalRuleWithDelta(queryRule, st.cdb, delta, i)
			if err != nil {
				return err
			}
			for _, t := range derived {
				emit(t)
			}
		}
		return nil
	}

	// generate derives every new access binding the caches currently
	// support. Meta-cache hits are folded in synchronously; probes already
	// in flight for the same relation binding register the extra cache as a
	// waiter instead of re-probing ("every access tuple is never sent twice
	// to the same wrapper"); everything else is queued.
	var pending []job
	inflight := make(map[string]*sym.BindMap[[]*plan.Cache])
	inflightFor := func(rel string) *sym.BindMap[[]*plan.Cache] {
		if opts.NoMetaCache {
			return nil
		}
		fl := inflight[rel]
		if fl == nil {
			fl = new(sym.BindMap[[]*plan.Cache])
			inflight[rel] = fl
		}
		return fl
	}
	generate := func() error {
		for _, c := range p.Caches {
			if c.IsConst {
				continue
			}
			rel := c.Source.Rel
			rm := st.meta.forRel(rel.Name)
			fl := inflightFor(rel.Name)
			// The semi-naive enumerator hands over each candidate binding of
			// this node exactly once across all generate calls.
			_, err := st.newBindings(c, func(binding []sym.ID) error {
				if rm != nil {
					if rows, hit := rm.Get(binding); hit {
						return ingest(st, c, rows, onFresh)
					}
				}
				cp := append([]sym.ID(nil), binding...)
				if fl != nil {
					if waiters, flying := fl.Get(cp); flying {
						fl.Put(cp, append(waiters, c))
						return nil
					}
					fl.Put(cp, nil)
				}
				pending = append(pending, job{cache: c, binding: cp})
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	limitHit := func() bool { return opts.Limit > 0 && answers.Len() >= opts.Limit }
	stopRequested := func() bool { return limitHit() || ctxDone(ctx) }

	if err := generate(); err != nil {
		return nil, err
	}
	outstanding := 0
	for (len(pending) > 0 || outstanding > 0) && !stopRequested() {
		// Dispatch as many pending jobs as the queues accept.
		kept := pending[:0]
		for _, j := range pending {
			select {
			case queues[j.cache.Source.Rel.Name] <- j:
				outstanding++
			default:
				kept = append(kept, j)
			}
		}
		pending = kept
		if outstanding == 0 {
			continue
		}
		res := <-results
		outstanding--
		if res.err != nil {
			return nil, res.err
		}
		relName := res.cache.Source.Rel.Name
		if rm := st.meta.forRel(relName); rm != nil {
			rm.Put(res.binding, res.rows)
		}
		if err := ingest(st, res.cache, res.rows, onFresh); err != nil {
			return nil, err
		}
		if fl := inflight[relName]; fl != nil {
			if waiters, ok := fl.Get(res.binding); ok {
				for _, waiter := range waiters {
					if err := ingest(st, waiter, res.rows, onFresh); err != nil {
						return nil, err
					}
				}
				fl.Delete(res.binding)
			}
		}
		if err := generate(); err != nil {
			return nil, err
		}
	}

	truncated := stopRequested() && (len(pending) > 0 || outstanding > 0)
	if truncated {
		// Stop the workers from touching the sources for jobs still queued;
		// only probes already in flight complete.
		stopped.Store(true)
	}
	// Drain probes still in flight, then stop the workers; their remaining
	// extractions are discarded when the limit or cancellation stopped the
	// run.
	for ; outstanding > 0; outstanding-- {
		<-results
	}
	cleanup()

	if !truncated {
		// Authoritative final evaluation (also covers negation). The limit
		// applies here too: for negated queries this is where answers are
		// first emitted, and a client who asked for N gets N.
		final, err := datalog.EvalQuery(p.Query, st.cdb)
		if err != nil {
			return nil, fmt.Errorf("pipelined: final evaluation: %w", err)
		}
		for _, t := range final.Tuples() {
			if limitHit() && !answers.Contains(t) {
				truncated = true
				break
			}
			emit(t)
		}
	}
	return &Result{
		Answers:     answers,
		Stats:       statsOf(counters),
		Truncated:   truncated,
		Elapsed:     time.Since(start),
		TimeToFirst: firstAnswer,
	}, nil
}

// ingest inserts an extraction into a cache and forwards new tuples to the
// incremental join.
func ingest(st *groupState, c *plan.Cache, rows []datalog.Tuple, onFresh func(string, []datalog.Tuple) error) error {
	var fresh []datalog.Tuple
	for _, row := range rows {
		if st.cdb.Insert(c.Pred, row) {
			fresh = append(fresh, row)
		}
	}
	if len(fresh) > 0 {
		return onFresh(c.Pred, fresh)
	}
	return nil
}
