package exec

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/dgraph"
	"toorjah/internal/plan"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// fixture bundles everything needed to run a query in all strategies.
type fixture struct {
	sch  *schema.Schema
	q    *cq.CQ
	ty   *cq.Typing
	plan *plan.Plan
	reg  *source.Registry
}

// setup builds a fixture from schema text, query text and table rows.
func setup(t *testing.T, schemaText, queryText string, data map[string][]storage.Row) *fixture {
	t.Helper()
	sch := schema.MustParse(schemaText)
	q := cq.MustParse(queryText)
	ty, err := cq.Validate(q, sch)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := cq.EliminateConstants(q, sch, ty)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dgraph.Build(pre.Query, pre.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Generate(g.Optimize())
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	for name, rows := range data {
		rel := sch.Relation(name)
		if rel == nil {
			t.Fatalf("data for unknown relation %s", name)
		}
		tab, err := db.Create(name, rel.Arity())
		if err != nil {
			t.Fatal(err)
		}
		tab.InsertAll(rows)
	}
	reg, err := source.FromDatabase(sch, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{sch: sch, q: q, ty: ty, plan: p, reg: reg}
}

// referenceAnswers computes the plan's Datalog least-fixpoint semantics
// with full relations as EDB.
func (f *fixture) referenceAnswers(t *testing.T) []string {
	t.Helper()
	edb := datalog.DB{}
	for _, rel := range f.sch.Relations() {
		edb.Get(rel.Name, rel.Arity())
		ts, ok := f.reg.Source(rel.Name).(*source.TableSource)
		if !ok {
			t.Fatalf("source for %s is not a table source", rel.Name)
		}
		for _, row := range ts.Table().Rows() {
			edb.Insert(rel.Name, datalog.T(row...))
		}
	}
	idb, err := datalog.Eval(f.plan.Program, edb)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Answers: idb[f.q.Name]}
	return res.SortedAnswers()
}

func (f *fixture) naive(t *testing.T) *Result {
	t.Helper()
	r, err := Naive(context.Background(), f.sch, f.reg, f.q, f.ty)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (f *fixture) fast(t *testing.T) *Result {
	t.Helper()
	r, err := FastFailing(context.Background(), f.plan, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (f *fixture) piped(t *testing.T) *Result {
	t.Helper()
	r, err := Pipelined(context.Background(), f.plan, f.reg, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// assertAllAgree runs every strategy and checks the answer sets coincide
// with the reference semantics; it returns (naive, fast) for further
// access-count assertions.
func assertAllAgree(t *testing.T, f *fixture) (*Result, *Result) {
	t.Helper()
	want := f.referenceAnswers(t)
	n := f.naive(t)
	ff := f.fast(t)
	pp := f.piped(t)
	if got := strings.Join(n.SortedAnswers(), ";"); got != strings.Join(want, ";") {
		t.Errorf("naive answers = [%s], want [%s]", got, strings.Join(want, ";"))
	}
	if got := strings.Join(ff.SortedAnswers(), ";"); got != strings.Join(want, ";") {
		t.Errorf("fast-failing answers = [%s], want [%s]", got, strings.Join(want, ";"))
	}
	if got := strings.Join(pp.SortedAnswers(), ";"); got != strings.Join(want, ";") {
		t.Errorf("pipelined answers = [%s], want [%s]", got, strings.Join(want, ";"))
	}
	if ff.TotalAccesses() > n.TotalAccesses() {
		t.Errorf("fast-failing made %d accesses, naive only %d", ff.TotalAccesses(), n.TotalAccesses())
	}
	return n, ff
}

// TestPaperExample2Extraction reproduces the extraction chain of paper
// Example 2: starting from a1, values hop r1 -> r3 -> r2 -> r3 -> r2 and
// only answer b1 is obtainable; b3 remains hidden.
func TestPaperExample2Extraction(t *testing.T) {
	f := setup(t, `
r1^io(A, C)
r2^io(B, C)
r3^io(C, B)
`, "q1(B) :- r1(a1, C), r2(B, C)", map[string][]storage.Row{
		"r1": {{"a1", "c1"}, {"a1", "c3"}},
		"r2": {{"b1", "c1"}, {"b2", "c2"}, {"b3", "c3"}},
		"r3": {{"c1", "b2"}, {"c2", "b1"}},
	})
	n, ff := assertAllAgree(t, f)
	if got := strings.Join(n.SortedAnswers(), ";"); got != "b1" {
		t.Errorf("answers = %s, want b1 (b3 is not obtainable)", got)
	}
	_ = ff
}

// TestExample1MusicRecursive reproduces paper Example 1: answering
// q(N) :- r1(A, N, Y1), r2(volare, Y2, A) requires accessing r3, which the
// query never mentions, to obtain artist names.
func TestExample1MusicRecursive(t *testing.T) {
	f := setup(t, `
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`, "q(N) :- r1(A, N, Y1), r2(volare, Y2, A)", map[string][]storage.Row{
		// The extraction chain: r3 seeds artist madonna; r1(madonna) yields
		// year 1958; r2 probed with 1958 yields volare by modugno; r1 probed
		// with modugno yields the nationality. Note modugno is reachable
		// only through r2's output — the recursion of Example 1.
		"r1": {{"modugno", "italy", "1928"}, {"madonna", "usa", "1958"}},
		"r2": {{"volare", "1958", "modugno"}, {"vogue", "1990", "madonna"}},
		"r3": {{"madonna", "like_a_virgin"}},
	})
	n, ff := assertAllAgree(t, f)
	if got := strings.Join(ff.SortedAnswers(), ";"); got != "italy" {
		t.Errorf("answers = %s, want italy", got)
	}
	// r3 must be relevant (it seeds artist values) and accessed by the
	// optimized plan.
	if _, ok := ff.Stats["r3"]; !ok {
		t.Errorf("optimized plan should access r3: %v", ff.Stats)
	}
	_ = n
}

// TestIrrelevantNeverAccessed: in Example 5, r3 is irrelevant and the
// optimized plan must not probe it, while the naive plan does.
func TestIrrelevantNeverAccessed(t *testing.T) {
	f := setup(t, `
r1^io(A, B)
r2^io(B, C)
r3^io(C, A)
`, "q(C) :- r1(a, B), r2(B, C)", map[string][]storage.Row{
		"r1": {{"a", "b1"}, {"x", "b2"}},
		"r2": {{"b1", "c1"}, {"b2", "c2"}},
		"r3": {{"c1", "x"}, {"c2", "a"}},
	})
	n, ff := assertAllAgree(t, f)
	if _, ok := ff.Stats["r3"]; ok {
		t.Errorf("optimized plan accessed irrelevant r3: %v", ff.Stats)
	}
	if _, ok := n.Stats["r3"]; !ok {
		t.Errorf("naive plan should access r3: %v", n.Stats)
	}
	if ff.TotalAccesses() >= n.TotalAccesses() {
		t.Errorf("optimized %d accesses, naive %d: no saving", ff.TotalAccesses(), n.TotalAccesses())
	}
}

// TestEarlyFailure: when a group's caches make the subquery unsatisfiable,
// later groups are never touched.
func TestEarlyFailure(t *testing.T) {
	f := setup(t, `
a^oo(P, D1)
lim^io(P, D2)
`, "q(Z) :- a(X, Y), lim(X, Z)", map[string][]storage.Row{
		"a":   {}, // empty: the join can never succeed
		"lim": {{"p1", "z1"}},
	})
	ff := f.fast(t)
	if !ff.EarlyEmpty {
		t.Error("expected early-empty detection")
	}
	if len(ff.SortedAnswers()) != 0 {
		t.Errorf("answers = %v", ff.SortedAnswers())
	}
	if _, ok := ff.Stats["lim"]; ok {
		t.Error("lim must not be accessed after early failure")
	}
	// Ablation: without early failure, lim is still not probed (no values
	// derivable) but no early-empty flag is set.
	r2, err := FastFailingOpts(context.Background(), f.plan, f.reg, Options{NoEarlyFailure: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.EarlyEmpty {
		t.Error("ablation must not set EarlyEmpty")
	}
	if len(r2.SortedAnswers()) != 0 {
		t.Errorf("ablation answers = %v", r2.SortedAnswers())
	}
}

// TestEarlyFailureSavesAccesses: a failing first group avoids probing an
// expensive later source even when bindings for it exist.
func TestEarlyFailureSavesAccesses(t *testing.T) {
	f := setup(t, `
a^oo(P, D1)
b^oo(P, D2)
lim^io(P, D3)
`, "q(Z) :- a(X, Y1), b(X, Y2), lim(X, Z)", map[string][]storage.Row{
		"a":   {{"p1", "d1"}},
		"b":   {{"p2", "d2"}}, // disjoint from a: join fails
		"lim": {{"p1", "z"}, {"p2", "z"}},
	})
	ff := f.fast(t)
	if !ff.EarlyEmpty {
		t.Errorf("expected early empty; stats %v", ff.Stats)
	}
	if _, ok := ff.Stats["lim"]; ok {
		t.Error("lim probed despite failed join of a and b")
	}
	// Sanity: strong-arc conjunction would also prevent the probe (empty
	// intersection); the early test additionally reports emptiness without
	// evaluating lim's group at all.
}

// TestMetaCacheSharing: two occurrences of a relation with the same binding
// probe the source once.
func TestMetaCacheSharing(t *testing.T) {
	f := setup(t, `
seed^o(A)
r^io(A, B)
`, "q(X, Y1, Y2) :- seed(X), r(X, Y1), r(X, Y2)", map[string][]storage.Row{
		"seed": {{"a1"}, {"a2"}},
		"r":    {{"a1", "b1"}, {"a2", "b2"}},
	})
	ff := f.fast(t)
	if got := ff.Stats["r"].Accesses; got != 2 {
		t.Errorf("r accessed %d times, want 2 (meta-cache shares occurrences)", got)
	}
	// Ablation: without the meta-cache, both occurrences probe.
	r2, err := FastFailingOpts(context.Background(), f.plan, f.reg, Options{NoMetaCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats["r"].Accesses; got != 4 {
		t.Errorf("ablation: r accessed %d times, want 4", got)
	}
	if strings.Join(r2.SortedAnswers(), ";") != strings.Join(ff.SortedAnswers(), ";") {
		t.Error("ablation changed the answers")
	}
}

// TestAccessSubsetProperty: on a pipeline schema, every access made by the
// optimized executor is also made by the naive one.
func TestAccessSubsetProperty(t *testing.T) {
	f := setup(t, `
free^oo(A, B)
mid^io(B, C)
last^io(C, D)
`, "q(D) :- free(X, Y), mid(Y, Z), last(Z, D)", map[string][]storage.Row{
		"free": {{"a1", "b1"}, {"a2", "b2"}},
		"mid":  {{"b1", "c1"}, {"b2", "c2"}, {"b9", "c9"}},
		"last": {{"c1", "d1"}, {"c2", "d2"}},
	})
	// Run with outer logging counters to compare access sets.
	countedN, countersN := f.reg.Counted(true)
	if _, err := Naive(context.Background(), f.sch, countedN, f.q, f.ty); err != nil {
		t.Fatal(err)
	}
	countedF, countersF := f.reg.Counted(true)
	if _, err := FastFailing(context.Background(), f.plan, countedF); err != nil {
		t.Fatal(err)
	}
	for name, cf := range countersF {
		cn := countersN[name]
		for key := range cf.AccessSet() {
			if !cn.AccessSet()[key] {
				t.Errorf("optimized made access %q on %s that naive never made", key, name)
			}
		}
	}
}

// TestQ1PublicationWorkload runs the paper's q1 on a small hand-built
// instance and checks relevance-driven savings.
func TestQ1PublicationWorkload(t *testing.T) {
	f := setup(t, `
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
sub^oi(Paper, Person)
rev_icde^iio(Person, Paper, Eval)
`, "q1(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)", map[string][]storage.Row{
		"pub1":     {{"p1", "alice"}, {"p2", "bob"}},
		"pub2":     {{"p1", "alice"}, {"p3", "carol"}},
		"conf":     {{"p1", "icde", "2008"}, {"p2", "vldb", "2007"}},
		"rev":      {{"alice", "icde", "2008"}, {"carol", "vldb", "2007"}},
		"sub":      {{"p9", "alice"}},
		"rev_icde": {{"alice", "p1", "acc"}},
	})
	n, ff := assertAllAgree(t, f)
	if got := strings.Join(ff.SortedAnswers(), ";"); got != "alice" {
		t.Errorf("q1 answers = %s, want alice", got)
	}
	for _, irr := range []string{"pub2", "sub", "rev_icde"} {
		if _, ok := ff.Stats[irr]; ok {
			t.Errorf("optimized plan accessed irrelevant %s", irr)
		}
		if _, ok := n.Stats[irr]; !ok {
			t.Errorf("naive plan should access %s", irr)
		}
	}
}

// TestNegationAcrossExecutors: safe negation agrees across strategies.
func TestNegationAcrossExecutors(t *testing.T) {
	f := setup(t, `
r^oo(A, B)
s^io(B, C)
`, "q(X) :- r(X, Y), s(Y, Z), not s(Y, Z)", map[string][]storage.Row{
		"r": {{"a1", "b1"}, {"a2", "b2"}},
		"s": {{"b1", "c1"}},
	})
	// not s(Y, Z) with s(Y, Z) in the body is always false when satisfied:
	// answer must be empty, consistently.
	n, ff := assertAllAgree(t, f)
	if len(n.SortedAnswers()) != 0 || len(ff.SortedAnswers()) != 0 {
		t.Errorf("answers should be empty: %v / %v", n.SortedAnswers(), ff.SortedAnswers())
	}
}

// TestNegationFiltersAnswers: a meaningful negation over a limited source.
func TestNegationFiltersAnswers(t *testing.T) {
	f := setup(t, `
person^oo(Name, City)
blocked^io(Name, City)
`, "q(N) :- person(N, C), not blocked(N, C)", map[string][]storage.Row{
		"person":  {{"alice", "rome"}, {"bob", "milan"}},
		"blocked": {{"bob", "milan"}},
	})
	n, ff := assertAllAgree(t, f)
	if got := strings.Join(ff.SortedAnswers(), ";"); got != "alice" {
		t.Errorf("answers = %s, want alice", got)
	}
	_ = n
}

// TestPipelinedStreamsAnswers: incremental answers arrive via the callback
// and match the final result.
func TestPipelinedStreamsAnswers(t *testing.T) {
	rows := []storage.Row{}
	for i := 0; i < 50; i++ {
		rows = append(rows, storage.Row{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)})
	}
	mid := []storage.Row{}
	for i := 0; i < 50; i++ {
		mid = append(mid, storage.Row{fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)})
	}
	f := setup(t, `
free^oo(A, B)
mid^io(B, C)
`, "q(X, Z) :- free(X, Y), mid(Y, Z)", map[string][]storage.Row{
		"free": rows,
		"mid":  mid,
	})
	var streamed []string
	r, err := Pipelined(context.Background(), f.plan, f.reg, Options{}, func(tu datalog.Tuple) {
		streamed = append(streamed, strings.Join(tu.Strings(), ","))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != r.Answers.Len() {
		t.Errorf("streamed %d answers, result has %d", len(streamed), r.Answers.Len())
	}
	if r.Answers.Len() != 50 {
		t.Errorf("answers = %d, want 50", r.Answers.Len())
	}
	if r.TimeToFirst <= 0 || r.TimeToFirst > r.Elapsed {
		t.Errorf("TimeToFirst = %v (elapsed %v)", r.TimeToFirst, r.Elapsed)
	}
}

// TestPipelinedParallelMatchesSequential on a deeper chain with fan-out.
func TestPipelinedParallelMatchesSequential(t *testing.T) {
	data := map[string][]storage.Row{"seed": {}, "r": {}, "s": {}}
	for i := 0; i < 20; i++ {
		data["seed"] = append(data["seed"], storage.Row{fmt.Sprintf("a%d", i)})
		data["r"] = append(data["r"], storage.Row{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", (i+1)%20)})
		data["s"] = append(data["s"], storage.Row{fmt.Sprintf("b%d", i), fmt.Sprintf("a%d", (i+7)%20)})
	}
	f := setup(t, `
seed^o(A)
r^io(A, B)
s^io(B, A)
`, "q(Y) :- r(X, Y), s(Y2, X2)", data)
	ff := f.fast(t)
	pp := f.piped(t)
	if strings.Join(ff.SortedAnswers(), ";") != strings.Join(pp.SortedAnswers(), ";") {
		t.Errorf("pipelined answers differ:\nfast: %v\npiped: %v", ff.SortedAnswers(), pp.SortedAnswers())
	}
	if pp.TotalAccesses() != ff.TotalAccesses() {
		t.Errorf("pipelined accesses %d, fast-failing %d (meta-cache should dedupe)",
			pp.TotalAccesses(), ff.TotalAccesses())
	}
}

// TestCartesianInputBlowup: a relation with two input arguments forces the
// naive plan into the full |Person| × |Paper| probe cross-product the paper
// reports for rev_icde. The paper's cache rule
// r̂(I1,I2,O) ← r(I1,I2,O), s1(I1), s2(I2) restricts each input position to
// its domain relation independently, so the optimized plan still probes a
// product — but of the far smaller join-restricted domains.
func TestCartesianInputBlowup(t *testing.T) {
	data := map[string][]storage.Row{}
	for i := 0; i < 30; i++ {
		data["people"] = append(data["people"], storage.Row{fmt.Sprintf("per%d", i)})
		data["papers"] = append(data["papers"], storage.Row{fmt.Sprintf("pap%d", i)})
	}
	for i := 0; i < 15; i++ {
		data["wrote"] = append(data["wrote"], storage.Row{fmt.Sprintf("per%d", i), fmt.Sprintf("pap%d", i)})
		if i%2 == 0 {
			data["revd"] = append(data["revd"], storage.Row{fmt.Sprintf("per%d", i), fmt.Sprintf("pap%d", i), "acc"})
		}
	}
	f := setup(t, `
people^o(Person)
papers^o(Paper)
wrote^oo(Person, Paper)
revd^iio(Person, Paper, Eval)
`, "q(X, P) :- wrote(X, P), revd(X, P, E)", data)
	n, ff := assertAllAgree(t, f)
	if got := len(ff.SortedAnswers()); got != 8 {
		t.Errorf("answers = %d, want 8", got)
	}
	// Naive: 30 persons x 30 papers = 900 probes of revd; optimized: only
	// the 15 x 15 values wrote can justify.
	if got := n.Stats["revd"].Accesses; got != 900 {
		t.Errorf("naive revd accesses = %d, want 900", got)
	}
	if got := ff.Stats["revd"].Accesses; got != 225 {
		t.Errorf("optimized revd accesses = %d, want 225", got)
	}
	// The irrelevant free domains are not even read by the optimized plan.
	if _, ok := ff.Stats["people"]; ok {
		t.Error("optimized plan accessed irrelevant people")
	}
}

// TestNullaryRelation: nullary atoms are probed once and join as guards.
func TestNullaryRelation(t *testing.T) {
	f := setup(t, `
flag^()
r^oo(A, B)
`, "q(X) :- r(X, Y), flag()", map[string][]storage.Row{
		"flag": {{}},
		"r":    {{"a", "b"}},
	})
	n, ff := assertAllAgree(t, f)
	if got := strings.Join(ff.SortedAnswers(), ";"); got != "a" {
		t.Errorf("answers = %s", got)
	}
	if got := ff.Stats["flag"].Accesses; got != 1 {
		t.Errorf("flag accesses = %d, want 1", got)
	}
	_ = n
}

// TestNullaryRelationEmpty: an empty nullary relation annihilates the query.
func TestNullaryRelationEmpty(t *testing.T) {
	f := setup(t, `
flag^()
r^oo(A, B)
`, "q(X) :- r(X, Y), flag()", map[string][]storage.Row{
		"flag": {},
		"r":    {{"a", "b"}},
	})
	_, ff := assertAllAgree(t, f)
	if len(ff.SortedAnswers()) != 0 {
		t.Errorf("answers = %v, want none", ff.SortedAnswers())
	}
}

// TestEmptyDomainsNoAnswers: all sources empty.
func TestEmptyDomainsNoAnswers(t *testing.T) {
	f := setup(t, `
free^oo(A, B)
mid^io(B, C)
`, "q(Z) :- free(X, Y), mid(Y, Z)", map[string][]storage.Row{})
	n, ff := assertAllAgree(t, f)
	if len(n.SortedAnswers()) != 0 || len(ff.SortedAnswers()) != 0 {
		t.Error("answers should be empty")
	}
}

// TestConstantsInHead: head constants survive execution.
func TestConstantsInHead(t *testing.T) {
	f := setup(t, `
r^oo(A, B)
`, "q(tag, X) :- r(X, tag)", map[string][]storage.Row{
		"r": {{"a1", "tag"}, {"a2", "other"}},
	})
	_, ff := assertAllAgree(t, f)
	if got := strings.Join(ff.SortedAnswers(), ";"); got != "tag,a1" {
		t.Errorf("answers = %s, want tag,a1", got)
	}
}
