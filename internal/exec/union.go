package exec

import (
	"context"
	"sync"
	"time"

	"toorjah/internal/datalog"
	"toorjah/internal/obs"
	"toorjah/internal/source"
)

// DisjunctRun executes one disjunct of a union. The runner hands it a
// context derived from the union's — the run must honor it the way the CQ
// executors honor their ctx parameter (stop probing, return a truncated
// sound subset) — and an emit callback for streaming strategies;
// non-streaming runs may ignore emit, since the runner also folds the
// returned Answers into the union. A run must return a non-nil Result
// unless it errors.
type DisjunctRun func(ctx context.Context, emit func(datalog.Tuple)) (*Result, error)

// Union executes the disjuncts of a union of conjunctive queries
// concurrently with bounded parallelism and merges their outcomes into one
// Result — the UCQ semantics of the paper's Section II (the answer to a
// union is the union of the per-CQ answers):
//
//   - answers are deduplicated across disjuncts, and onAnswer (when
//     non-nil) observes each distinct answer exactly once, the moment the
//     first disjunct derives it; calls are serialized, never concurrent;
//   - per-relation statistics merge via source.Stats.Add, so Accesses,
//     Batches and Tuples all survive (a disjunct's probes are counted
//     against whichever disjunct actually reached the source — under a
//     shared cross-query cache, concurrent identical probes collapse into
//     one flight and are counted once);
//   - Truncated and EarlyEmpty are OR-ed over disjuncts: a union containing
//     any truncated disjunct is itself a sound subset of the obtainable
//     answers, and EarlyEmpty records that at least one disjunct's
//     fast-failing test proved that disjunct empty early;
//   - Elapsed and TimeToFirst are wall-clock times of the whole union, not
//     sums over disjuncts.
//
// The union reads Options.MaxConcurrent and Options.Limit; the first
// disjunct error cancels the rest and is returned, while a cancelled ctx
// instead yields a truncated result, never an error.
func Union(ctx context.Context, name string, arity int, runs []DisjunctRun, opts Options, onAnswer func(datalog.Tuple)) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	union := datalog.NewRelation(name, arity)
	stats := make(map[string]source.Stats)
	var (
		mu          sync.Mutex // guards union, stats, flags and onAnswer
		truncated   bool
		earlyEmpty  bool
		firstAnswer time.Duration
		firstErr    error
	)

	// emit folds one answer into the union; fresh answers under the limit
	// are forwarded to onAnswer (serialized under mu), a fresh answer beyond
	// it proves the limit truncated the union and cancels the remaining
	// disjuncts.
	emit := func(t datalog.Tuple) {
		mu.Lock()
		defer mu.Unlock()
		if opts.Limit > 0 && union.Len() >= opts.Limit {
			if !union.Contains(t) {
				truncated = true
				cancel()
			}
			return
		}
		if union.Insert(t) {
			if firstAnswer == 0 {
				firstAnswer = time.Since(start)
			}
			if onAnswer != nil {
				onAnswer(t)
			}
		}
	}

	sem := make(chan struct{}, opts.maxConcurrent())
	var wg sync.WaitGroup
	for di, run := range runs {
		if ctx.Err() != nil {
			// Cancelled (or limit-stopped) before this disjunct started: its
			// answers are missing, so the union is a sound subset — unless a
			// disjunct error is what tore the context down, in which case the
			// error wins below.
			mu.Lock()
			truncated = true
			mu.Unlock()
			break
		}
		sem <- struct{}{} // bound occupancy; released when the disjunct ends
		wg.Add(1)
		go func(di int, run DisjunctRun) {
			defer wg.Done()
			defer func() { <-sem }()
			// One span per disjunct when the union context carries a trace;
			// the disjunct's executor hangs its own spans off it.
			dctx, dsp := obs.StartSpan(ctx, "disjunct")
			dsp.SetAttr("index", di)
			res, err := run(dctx, emit)
			dsp.End()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel() // stop the other disjuncts from spending accesses
				return
			}
			// Fold the final answer set through emit: for streaming runs this
			// deduplicates against what they already emitted; for batch runs
			// it is where their answers enter the union.
			for _, t := range res.Answers.Tuples() {
				emit(t)
			}
			mu.Lock()
			for rel, st := range res.Stats {
				cur := stats[rel]
				cur.Add(st)
				stats[rel] = cur
			}
			truncated = truncated || res.Truncated
			earlyEmpty = earlyEmpty || res.EarlyEmpty
			mu.Unlock()
		}(di, run)
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	return &Result{
		Answers:     union,
		Stats:       stats,
		Truncated:   truncated,
		EarlyEmpty:  earlyEmpty,
		Elapsed:     time.Since(start),
		TimeToFirst: firstAnswer,
	}, nil
}
