package exec

import (
	"context"
	"fmt"
	"testing"

	"toorjah/internal/datalog"
	"toorjah/internal/storage"
)

// TestPipelinedLimit: the answer limit stops extraction early; the returned
// answers are a sound subset and the run is flagged truncated.
func TestPipelinedLimit(t *testing.T) {
	var free, mid []storage.Row
	for i := 0; i < 200; i++ {
		free = append(free, storage.Row{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)})
		mid = append(mid, storage.Row{fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)})
	}
	f := setup(t, `
free^oo(A, B)
mid^io(B, C)
`, "q(X, Z) :- free(X, Y), mid(Y, Z)", map[string][]storage.Row{
		"free": free,
		"mid":  mid,
	})
	full, err := Pipelined(context.Background(), f.plan, f.reg, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Answers.Len() != 200 || full.Truncated {
		t.Fatalf("full run: %d answers, truncated=%v", full.Answers.Len(), full.Truncated)
	}

	var streamed []datalog.Tuple
	lim, err := Pipelined(context.Background(), f.plan, f.reg, Options{Limit: 10, Parallelism: 2}, func(tu datalog.Tuple) {
		streamed = append(streamed, tu)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lim.Truncated {
		t.Error("limited run must be flagged truncated")
	}
	if lim.Answers.Len() < 10 {
		t.Errorf("answers = %d, want >= 10", lim.Answers.Len())
	}
	if lim.TotalAccesses() >= full.TotalAccesses() {
		t.Errorf("limit did not save accesses: %d vs %d", lim.TotalAccesses(), full.TotalAccesses())
	}
	// Soundness: every limited answer is a real answer.
	fullSet := full.AnswerSet()
	for _, tu := range lim.Answers.Tuples() {
		if !fullSet[tu.Key()] {
			t.Errorf("limited run produced a wrong answer %v", tu)
		}
	}
}

// TestPipelinedCancellation: a cancelled context stops the extraction
// early; the answers are a sound subset and accesses are saved.
func TestPipelinedCancellation(t *testing.T) {
	var free, mid []storage.Row
	for i := 0; i < 200; i++ {
		free = append(free, storage.Row{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)})
		mid = append(mid, storage.Row{fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)})
	}
	f := setup(t, `
free^oo(A, B)
mid^io(B, C)
`, "q(X, Z) :- free(X, Y), mid(Y, Z)", map[string][]storage.Row{
		"free": free,
		"mid":  mid,
	})
	full, err := Pipelined(context.Background(), f.plan, f.reg, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel after the first few answers, as a disconnected client would.
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	res, err := Pipelined(ctx, f.plan, f.reg, Options{Parallelism: 2}, func(datalog.Tuple) {
		if n++; n == 5 {
			cancel()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("cancelled run must be flagged truncated")
	}
	if res.TotalAccesses() >= full.TotalAccesses() {
		t.Errorf("cancellation did not save accesses: %d vs %d",
			res.TotalAccesses(), full.TotalAccesses())
	}
	fullSet := full.AnswerSet()
	for _, tu := range res.Answers.Tuples() {
		if !fullSet[tu.Key()] {
			t.Errorf("cancelled run produced a wrong answer %v", tu)
		}
	}

	// An already-done context on a complete-in-zero-work query is still a
	// valid, non-erroring call.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := Pipelined(pre, f.plan, f.reg, Options{}, nil); err != nil {
		t.Fatalf("pre-cancelled run: %v", err)
	}
}

// TestPipelinedLimitWithNegation: for negated queries the limit cannot
// save accesses (no answer is sound before completion) but still caps the
// answers returned, with Truncated set.
func TestPipelinedLimitWithNegation(t *testing.T) {
	var free []storage.Row
	for i := 0; i < 20; i++ {
		free = append(free, storage.Row{fmt.Sprintf("a%02d", i)})
	}
	f := setup(t, `
free^o(A)
bad^i(A)
`, "q(X) :- free(X), not bad(X)", map[string][]storage.Row{
		"free": free,
		"bad":  {{"a00"}},
	})
	full, err := Pipelined(context.Background(), f.plan, f.reg, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Answers.Len() != 19 {
		t.Fatalf("full run: %d answers, want 19", full.Answers.Len())
	}
	lim, err := Pipelined(context.Background(), f.plan, f.reg, Options{Limit: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lim.Answers.Len() != 5 || !lim.Truncated {
		t.Errorf("limited negated run: %d answers truncated=%v, want 5/true",
			lim.Answers.Len(), lim.Truncated)
	}
	fullSet := full.AnswerSet()
	for _, tu := range lim.Answers.Tuples() {
		if !fullSet[tu.Key()] {
			t.Errorf("limited run produced a wrong answer %v", tu)
		}
	}
}

// TestPipelinedLimitLargerThanAnswers behaves like an unlimited run.
func TestPipelinedLimitLargerThanAnswers(t *testing.T) {
	f := setup(t, `
free^oo(A, B)
`, "q(X, Y) :- free(X, Y), free(X, Y2)", map[string][]storage.Row{
		"free": {{"a", "b"}, {"c", "d"}},
	})
	r, err := Pipelined(context.Background(), f.plan, f.reg, Options{Limit: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated || r.Answers.Len() != 2 {
		t.Errorf("truncated=%v answers=%d", r.Truncated, r.Answers.Len())
	}
}
