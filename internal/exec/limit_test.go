package exec

import (
	"fmt"
	"testing"

	"toorjah/internal/datalog"
	"toorjah/internal/storage"
)

// TestPipelinedLimit: the answer limit stops extraction early; the returned
// answers are a sound subset and the run is flagged truncated.
func TestPipelinedLimit(t *testing.T) {
	var free, mid []storage.Row
	for i := 0; i < 200; i++ {
		free = append(free, storage.Row{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)})
		mid = append(mid, storage.Row{fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)})
	}
	f := setup(t, `
free^oo(A, B)
mid^io(B, C)
`, "q(X, Z) :- free(X, Y), mid(Y, Z)", map[string][]storage.Row{
		"free": free,
		"mid":  mid,
	})
	full, err := Pipelined(f.plan, f.reg, PipeOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Answers.Len() != 200 || full.Truncated {
		t.Fatalf("full run: %d answers, truncated=%v", full.Answers.Len(), full.Truncated)
	}

	var streamed []datalog.Tuple
	lim, err := Pipelined(f.plan, f.reg, PipeOptions{Limit: 10, Parallelism: 2}, func(tu datalog.Tuple) {
		streamed = append(streamed, tu)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lim.Truncated {
		t.Error("limited run must be flagged truncated")
	}
	if lim.Answers.Len() < 10 {
		t.Errorf("answers = %d, want >= 10", lim.Answers.Len())
	}
	if lim.TotalAccesses() >= full.TotalAccesses() {
		t.Errorf("limit did not save accesses: %d vs %d", lim.TotalAccesses(), full.TotalAccesses())
	}
	// Soundness: every limited answer is a real answer.
	fullSet := full.AnswerSet()
	for _, tu := range lim.Answers.Tuples() {
		if !fullSet[tu.Key()] {
			t.Errorf("limited run produced a wrong answer %v", tu)
		}
	}
}

// TestPipelinedLimitLargerThanAnswers behaves like an unlimited run.
func TestPipelinedLimitLargerThanAnswers(t *testing.T) {
	f := setup(t, `
free^oo(A, B)
`, "q(X, Y) :- free(X, Y), free(X, Y2)", map[string][]storage.Row{
		"free": {{"a", "b"}, {"c", "d"}},
	})
	r, err := Pipelined(f.plan, f.reg, PipeOptions{Limit: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated || r.Answers.Len() != 2 {
		t.Errorf("truncated=%v answers=%d", r.Truncated, r.Answers.Len())
	}
}
