package exec

import (
	"toorjah/internal/plan"
	"toorjah/internal/sym"
)

// enumState tracks which domain values one cache node has already folded
// into its candidate cross product. The domain pools only ever grow (the
// cache database is monotone within an execution), so enumerating, each
// pass, exactly the combinations that contain at least one value first
// derived since the previous pass visits every candidate binding exactly
// once across the whole execution. The executors therefore need no
// per-binding tried set: a binding reaching the emit callback is new by
// construction, and its access key is packed and hashed once, not once per
// fixpoint pass.
type enumState struct {
	fired bool              // the empty binding () was emitted (no-input patterns)
	seen  []map[sym.ID]bool // per input position: values already enumerated
	old   [][]sym.ID        // per input position: those values, in first-seen order
}

// newBindings enumerates the candidate access bindings of cache c that no
// earlier pass has enumerated, and reports whether any were emitted. The
// binding slice handed to emit is reused between calls — emit must copy it
// if it keeps it. While any input position's domain is still empty no
// binding is complete, so nothing is emitted and no state is consumed: the
// values the other positions already derived stay fresh for the first pass
// that can combine them.
func (st *groupState) newBindings(c *plan.Cache, emit func(binding []sym.ID) error) (bool, error) {
	es := st.enums[c]
	if es == nil {
		n := len(c.DomainPreds)
		es = &enumState{seen: make([]map[sym.ID]bool, n), old: make([][]sym.ID, n)}
		for i := range es.seen {
			es.seen[i] = make(map[sym.ID]bool)
		}
		st.enums[c] = es
	}
	if len(c.DomainPreds) == 0 {
		// A pattern with no input attributes has the single free access ().
		if es.fired {
			return false, nil
		}
		es.fired = true
		return true, emit(nil)
	}
	fresh := make([][]sym.ID, len(c.DomainPreds))
	any := false
	for i, dp := range c.DomainPreds {
		vals, err := st.domainValues(dp)
		if err != nil {
			return false, err
		}
		for v := range vals {
			if !es.seen[i][v] {
				fresh[i] = append(fresh[i], v)
			}
		}
		if len(es.old[i])+len(fresh[i]) == 0 {
			return false, nil
		}
		any = any || len(fresh[i]) > 0
	}
	if !any {
		return false, nil
	}
	// Semi-naive product: with d the rightmost fresh coordinate, positions
	// before d draw from their full pools, position d from its fresh values
	// only, positions after d from their old pools — every combination with
	// at least one fresh coordinate appears under exactly one d.
	binding := make([]sym.ID, len(fresh))
	emitted := false
	var walk func(i, d int) error
	walk = func(i, d int) error {
		if i == len(binding) {
			emitted = true
			return emit(binding)
		}
		use := func(pool []sym.ID) error {
			for _, v := range pool {
				binding[i] = v
				if err := walk(i+1, d); err != nil {
					return err
				}
			}
			return nil
		}
		if i == d {
			return use(fresh[i])
		}
		if err := use(es.old[i]); err != nil {
			return err
		}
		if i < d {
			return use(fresh[i])
		}
		return nil
	}
	for d := range fresh {
		if len(fresh[d]) == 0 {
			continue
		}
		if err := walk(0, d); err != nil {
			return emitted, err
		}
	}
	for i := range fresh {
		for _, v := range fresh[i] {
			es.seen[i][v] = true
		}
		es.old[i] = append(es.old[i], fresh[i]...)
	}
	return emitted, nil
}
