package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"toorjah/internal/obs"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// Server-side bounds of one /probe request; both are defensive caps, not
// tuning knobs — a well-behaved client batches far below them.
const (
	// DefaultMaxBindings caps the bindings of one probe request.
	DefaultMaxBindings = 4096
	// DefaultMaxRequestBytes caps the request body.
	DefaultMaxRequestBytes = 8 << 20
)

// Handler serves the /probe protocol over a source registry: each request
// is one batched probe of a single relation, honoring the relation's
// binding pattern (a binding must cover exactly the input positions) and
// streaming every matching tuple back as NDJSON row frames.
type Handler struct {
	reg *source.Registry

	// Record, when set, observes every served probe. toorjahd feeds its
	// /stats, /metrics and probe log from it.
	Record func(ProbeRecord)

	// MaxBindings and MaxRequestBytes bound one request; zero means the
	// package defaults.
	MaxBindings     int
	MaxRequestBytes int64
}

// ProbeRecord is the accounting of one served probe: the relation, the
// number of bindings probed (accesses — one request is one round trip),
// the tuples streamed, the wall-clock serving time, and the caller's trace
// ID from the X-Toorjah-Trace header (empty when the caller sent none) —
// the peer half of a cross-node trace.
type ProbeRecord struct {
	Relation string
	Accesses int
	Tuples   int
	Elapsed  time.Duration
	TraceID  string
}

// NewHandler serves probes of the registry's relations.
func NewHandler(reg *source.Registry) *Handler {
	return &Handler{reg: reg}
}

// ServeHTTP answers one POST /probe.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST with a JSON probe request", http.StatusMethodNotAllowed)
		return
	}
	maxBytes := h.MaxRequestBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxRequestBytes
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("probe body exceeds %d bytes", tooLarge.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req ProbeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad probe request: "+err.Error(), http.StatusBadRequest)
		return
	}
	maxBindings := h.MaxBindings
	if maxBindings <= 0 {
		maxBindings = DefaultMaxBindings
	}
	if len(req.Bindings) > maxBindings {
		http.Error(w, fmt.Sprintf("probe of %d bindings exceeds the %d-binding cap",
			len(req.Bindings), maxBindings), http.StatusBadRequest)
		return
	}
	src := h.reg.Source(req.Relation)
	if src == nil {
		http.Error(w, "unknown relation "+req.Relation, http.StatusNotFound)
		return
	}
	inputs := len(src.Relation().InputPositions())
	for i, b := range req.Bindings {
		if len(b) != inputs {
			http.Error(w, fmt.Sprintf("binding %d has %d values for %d input arguments of %s",
				i, len(b), inputs, req.Relation), http.StatusBadRequest)
			return
		}
	}

	// Probe before streaming: the batch either succeeds whole (the
	// extractions are in memory anyway, the sources are local tables or a
	// cache over them) or fails as a clean, retryable 500. The epoch is
	// captured before the probe, like the cache does: if an ingest lands
	// mid-probe the done frame advertises the older version — conservative,
	// the client merely re-learns the epoch one probe later.
	//
	// The probe runs under the request context carrying the caller's trace
	// ID, so a further federated hop forwards the same ID — one query, one
	// trace, however many nodes deep.
	start := time.Now()
	traceID := r.Header.Get(obs.TraceHeader)
	ctx := r.Context()
	if traceID != "" {
		ctx = obs.ContextWithTraceID(ctx, traceID)
	}
	epoch := source.EpochOf(src)
	results, err := source.ProbeBatchCtx(ctx, src, req.Bindings)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	tuples := 0
	for i, rows := range results {
		for _, row := range rows {
			if row == nil {
				row = storage.Row{}
			}
			if err := enc.Encode(rowFrame{B: i, Row: row}); err != nil {
				return // peer gone mid-stream; it will retry against another replica
			}
		}
		tuples += len(rows)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(doneFrame{Done: true, Accesses: len(req.Bindings), Tuples: tuples, Epoch: epoch}); err != nil {
		return // without the done frame the client treats the stream as truncated
	}
	if h.Record != nil {
		h.Record(ProbeRecord{
			Relation: req.Relation,
			Accesses: len(req.Bindings),
			Tuples:   tuples,
			Elapsed:  time.Since(start),
			TraceID:  traceID,
		})
	}
}

// PeerMux is a minimal federation peer over a registry: the /probe
// endpoint, the /schema text the discovery client parses (one relation per
// line, in the paper's notation), and a /healthz liveness probe. toorjahd
// mounts the same Handler into its richer route table; PeerMux serves the
// tests, benchmarks, and embedders that need a probe-able node and nothing
// else.
func PeerMux(reg *source.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/probe", NewHandler(reg))
	mux.HandleFunc("/schema", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var b strings.Builder
		epochs := make(map[string]uint64)
		for _, name := range reg.Names() {
			src := reg.Source(name)
			fmt.Fprintln(&b, src.Relation())
			epochs[name] = source.EpochOf(src)
		}
		AppendSchemaEpochs(&b, epochs)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			return
		}
	})
	return mux
}
