package remote

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"toorjah/internal/schema"
)

// AttachSpec names a peer and the relations to source from it, as given on
// the command line: "http://host:8344=R1,R2" attaches R1 and R2;
// "http://host:8344" alone attaches every peer relation the local schema
// also declares.
type AttachSpec struct {
	Base string
	// Relations to attach; nil means all shared relations.
	Relations []string
}

// ParseAttachSpec parses the -remote flag syntax base[=R1,R2,...].
func ParseAttachSpec(s string) (AttachSpec, error) {
	spec := AttachSpec{Base: strings.TrimSpace(s)}
	if eq := strings.IndexByte(s, '='); eq >= 0 {
		spec.Base = strings.TrimSpace(s[:eq])
		for _, r := range strings.Split(s[eq+1:], ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			spec.Relations = append(spec.Relations, r)
		}
		if len(spec.Relations) == 0 {
			return spec, fmt.Errorf("remote spec %q: empty relation list after '='", s)
		}
	}
	if spec.Base == "" {
		return spec, fmt.Errorf("remote spec %q: empty peer address", s)
	}
	if !strings.Contains(spec.Base, "://") {
		spec.Base = "http://" + spec.Base
	}
	return spec, nil
}

// Attach discovers the peer's schema and builds one Source per attached
// relation. With an explicit relation list, every listed relation must be
// served by the peer; with none, all peer relations also declared locally
// are attached (and there must be at least one). Either way, each attached
// relation's declaration — name, access pattern, and domains — must be
// identical on both sides: a pattern mismatch would let the planner issue
// probes the peer rejects, and a domain mismatch would corrupt the
// relevance analysis.
func Attach(ctx context.Context, c *Client, local *schema.Schema, relations []string) ([]*Source, error) {
	peer, err := c.FetchSchema(ctx)
	if err != nil {
		return nil, err
	}
	return AttachDiscovered(c, local, peer, relations)
}

// AttachDiscovered is Attach for a peer schema already fetched (callers
// that inspect the discovery before choosing relations avoid a second
// round trip).
func AttachDiscovered(c *Client, local, peer *schema.Schema, relations []string) ([]*Source, error) {
	if relations == nil {
		for _, rel := range peer.Relations() {
			if local.Has(rel.Name) {
				relations = append(relations, rel.Name)
			}
		}
		sort.Strings(relations)
		if len(relations) == 0 {
			return nil, fmt.Errorf("remote %s: no peer relation appears in the local schema", c.base)
		}
	}
	out := make([]*Source, 0, len(relations))
	for _, name := range relations {
		lrel := local.Relation(name)
		if lrel == nil {
			return nil, fmt.Errorf("remote %s: relation %s is not in the local schema", c.base, name)
		}
		prel := peer.Relation(name)
		if prel == nil {
			return nil, fmt.Errorf("remote %s: peer does not serve relation %s", c.base, name)
		}
		if lrel.String() != prel.String() {
			return nil, fmt.Errorf("remote %s: relation %s declared as %s locally but %s on the peer",
				c.base, name, lrel, prel)
		}
		out = append(out, c.Source(lrel))
	}
	return out, nil
}
