package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toorjah/internal/obs"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
	"toorjah/internal/sym"
)

// Options tunes a remote-source client; the zero value means every default
// below. Where zero is a meaningful setting (MaxRetries), negative selects
// it, following the repo's MaxBatch convention.
type Options struct {
	// Timeout bounds each probe attempt (connection + full response
	// stream). Default 10s.
	Timeout time.Duration
	// MaxRetries is how many times a failed probe is retried after the
	// first attempt. 0 means the default (2); negative disables retries.
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// retries: attempt n waits RetryBase<<n, capped at RetryMax, jittered
	// to [wait/2, wait] so synchronized clients do not stampede a
	// recovering peer. Defaults 50ms and 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold consecutive probe failures of one relation open its
	// circuit breaker for BreakerCooldown; while open, probes fail fast
	// with ErrBreakerOpen, and the first probe after the cooldown is the
	// half-open trial. Defaults 5 and 10s; a negative threshold disables
	// the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxResponseBytes caps one probe response stream. Default 32 MiB.
	MaxResponseBytes int64
	// MaxIdleConns bounds the pooled idle connections to the peer.
	// Default 32.
	MaxIdleConns int
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.MaxResponseBytes <= 0 {
		o.MaxResponseBytes = 32 << 20
	}
	if o.MaxIdleConns <= 0 {
		o.MaxIdleConns = 32
	}
	return o
}

// Telemetry is the accumulated accounting of one relation's probes against
// one peer: HTTP round trips attempted (including retries), retries among
// them, times the circuit breaker opened, cumulative wall-clock probe
// latency, and the peer's data-version tracking — the relation's last
// observed epoch and how many times it changed between probes. A non-zero
// EpochChanges means the peer ingested new data while this node was
// probing it: everything cached locally from the older probes describes a
// stale peer snapshot (the epoch-keyed cache already stopped serving it).
type Telemetry struct {
	RoundTrips   int     `json:"round_trips"`
	Retries      int     `json:"retries"`
	BreakerOpens int     `json:"breaker_opens"`
	LatencyMS    float64 `json:"latency_ms"`
	Epoch        uint64  `json:"epoch,omitempty"`
	EpochChanges int     `json:"epoch_changes,omitempty"`
	// BreakerState is the relation's circuit at snapshot time: "closed",
	// "open" or "half-open". Empty in merged aggregates unless set.
	BreakerState string `json:"breaker_state,omitempty"`
}

// Add accumulates another relation's counters into t; Epoch, being a
// version rather than a counter, takes the latest non-zero value, and
// BreakerState, being a state rather than a counter, the latest non-empty
// one.
func (t *Telemetry) Add(o Telemetry) {
	t.RoundTrips += o.RoundTrips
	t.Retries += o.Retries
	t.BreakerOpens += o.BreakerOpens
	t.LatencyMS += o.LatencyMS
	t.EpochChanges += o.EpochChanges
	if o.Epoch != 0 {
		t.Epoch = o.Epoch
	}
	if o.BreakerState != "" {
		t.BreakerState = o.BreakerState
	}
}

// relState is the per-relation resilience state of a client. The counters
// are atomics, not a mutex block: the epoch is read on the hot path of
// every cached probe (Source.Epoch keys the cross-query cache), the
// accounting is written on every round trip, and /stats and /metrics
// snapshot them from other goroutines — lock-free loads keep the probe
// path allocation- and contention-free and make torn reads impossible by
// construction.
type relState struct {
	br *breaker

	roundTrips   atomic.Int64
	retries      atomic.Int64
	latencyNS    atomic.Int64
	lastEpoch    atomic.Uint64
	epochChanges atomic.Int64
}

// noteEpoch records the relation's data epoch as observed in a done frame
// (or seeded from /schema), counting a change from a previously observed
// epoch as one stale-snapshot detection. The CAS loop makes the
// change-detection exact under concurrent probes: every distinct
// transition is counted once, however many goroutines observe it.
func (st *relState) noteEpoch(e uint64) {
	if e == 0 {
		return
	}
	for {
		old := st.lastEpoch.Load()
		if old == e {
			return
		}
		if st.lastEpoch.CompareAndSwap(old, e) {
			if old != 0 {
				st.epochChanges.Add(1)
			}
			return
		}
	}
}

// Client speaks the probe protocol to one peer. It owns a per-host
// connection pool shared by every relation sourced from the peer, and keeps
// per-relation circuit breakers and telemetry. A Client is safe for
// concurrent use; the executors probe through it from many goroutines.
type Client struct {
	base string
	hc   *http.Client
	opts Options

	mu   sync.Mutex
	rels map[string]*relState
}

// Dial prepares a client for the peer at base (e.g. "http://host:8344").
// No connection is made until the first probe.
func Dial(base string, opts Options) *Client {
	o := opts.withDefaults()
	tr := &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        o.MaxIdleConns,
		MaxIdleConnsPerHost: o.MaxIdleConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Transport: tr},
		opts: o,
		rels: make(map[string]*relState),
	}
}

// Base returns the peer's base URL.
func (c *Client) Base() string { return c.base }

// Close releases the pooled idle connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// relStateFor returns (creating on first use) the relation's state.
func (c *Client) relStateFor(relation string) *relState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.rels[relation]
	if !ok {
		threshold := c.opts.BreakerThreshold
		if threshold < 0 {
			threshold = int(^uint(0) >> 1) // disabled: never trips
		}
		st = &relState{br: newBreaker(threshold, c.opts.BreakerCooldown)}
		c.rels[relation] = st
	}
	return st
}

// Telemetry snapshots the per-relation probe accounting.
func (c *Client) Telemetry() map[string]Telemetry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Telemetry, len(c.rels))
	for name, st := range c.rels {
		out[name] = Telemetry{
			RoundTrips:   int(st.roundTrips.Load()),
			Retries:      int(st.retries.Load()),
			BreakerOpens: st.br.openCount(),
			LatencyMS:    float64(st.latencyNS.Load()) / 1e6,
			Epoch:        st.lastEpoch.Load(),
			EpochChanges: int(st.epochChanges.Load()),
			BreakerState: st.br.stateName(),
		}
	}
	return out
}

// Healthy probes the peer's /healthz; nil means reachable.
func (c *Client) Healthy(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("%s/healthz: %s", c.base, resp.Status)
	}
	return nil
}

// FetchSchema discovers the peer's relations: it reads /schema (the paper's
// textual notation, one relation per line — exactly what toorjahd serves)
// and parses it.
func (c *Client) FetchSchema(ctx context.Context) (*schema.Schema, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/schema", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("remote %s: schema discovery: %w", c.base, err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("remote %s: schema discovery: %w", c.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote %s: schema discovery: %s: %s",
			c.base, resp.Status, bytes.TrimSpace(text))
	}
	sch, err := schema.Parse(string(text))
	if err != nil {
		return nil, fmt.Errorf("remote %s: bad /schema: %w", c.base, err)
	}
	// Seed the per-relation epoch tracking from the advertised "# epoch"
	// lines, so the epoch-keyed cache identity is right from the first
	// probe (peers without the lines stay unversioned until a done frame).
	for rel, e := range ParseSchemaEpochs(string(text)) {
		c.relStateFor(rel).noteEpoch(e)
	}
	return sch, nil
}

// errResponseTooLarge aborts a stream that exceeds MaxResponseBytes.
var errResponseTooLarge = errors.New("remote: probe response too large")

// limitedReader is io.LimitReader that remembers tripping the limit, so the
// decode error can be classified as non-retryable.
type limitedReader struct {
	r        io.Reader
	n        int64
	exceeded bool
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		l.exceeded = true
		return 0, errResponseTooLarge
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// Probe serves one batched probe of a relation: a single HTTP round trip
// for the whole batch, retried with exponential backoff and jitter on
// retryable failures (network errors, timeouts, 5xx, 408/429, truncated
// streams), failing fast while the relation's circuit breaker is open.
// Result i holds exactly the rows matching bindings[i].
func (c *Client) Probe(ctx context.Context, relation string, bindings [][]string) ([][]storage.Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := c.relStateFor(relation)
	if !st.br.allow() {
		return nil, fmt.Errorf("remote %s: relation %s: %w", c.base, relation, ErrBreakerOpen)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		start := time.Now()
		rows, retryable, err := c.probeOnce(ctx, relation, bindings)
		st.roundTrips.Add(1)
		st.latencyNS.Add(int64(time.Since(start)))
		if err == nil {
			st.br.success()
			return rows, nil
		}
		st.br.failure()
		lastErr = fmt.Errorf("remote %s: relation %s: %w", c.base, relation, err)
		if !retryable || attempt >= c.opts.MaxRetries {
			break
		}
		if err := c.backoff(ctx, attempt); err != nil {
			break // cancelled mid-backoff; lastErr is the more informative error
		}
		// The breaker may have opened on this very failure streak; stop
		// stacking retries against a tripped circuit. (allow also admits
		// the half-open trial when the cooldown is already over.)
		if !st.br.allow() {
			break
		}
		st.retries.Add(1)
	}
	return nil, lastErr
}

// backoff sleeps the jittered exponential delay of the given attempt,
// returning early if ctx is done.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	wait := c.opts.RetryBase << uint(attempt)
	if wait <= 0 || wait > c.opts.RetryMax {
		wait = c.opts.RetryMax
	}
	// Jitter to [wait/2, wait]: enough spread to desynchronize peers
	// without losing the exponential shape.
	wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// probeOnce is one HTTP round trip: POST the request, stream the NDJSON
// frames back, and classify any failure as retryable or not.
func (c *Client) probeOnce(ctx context.Context, relation string, bindings [][]string) (_ [][]storage.Row, retryable bool, _ error) {
	body, err := json.Marshal(ProbeRequest{Relation: relation, Bindings: bindings})
	if err != nil {
		return nil, false, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/probe", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the query's trace ID to the peer, so the peer's probe log
	// carries the same ID as the originating query's trace — one query, one
	// ID, across nodes.
	if id := obs.TraceIDFromContext(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, true, err // connection refused, reset, timeout: all retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		retry := resp.StatusCode >= 500 ||
			resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusRequestTimeout
		return nil, retry, fmt.Errorf("probe: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	out := make([][]storage.Row, len(bindings))
	lr := &limitedReader{r: resp.Body, n: c.opts.MaxResponseBytes}
	dec := json.NewDecoder(lr)
	tuples := 0
	for {
		var f probeFrame
		err := dec.Decode(&f)
		if err == io.EOF {
			// The peer died mid-stream; a retry re-probes from scratch
			// (probes are idempotent reads).
			return nil, true, errors.New("probe stream ended without a done frame")
		}
		if err != nil {
			if lr.exceeded || errors.Is(err, errResponseTooLarge) {
				return nil, false, fmt.Errorf("probe response exceeds %d bytes", c.opts.MaxResponseBytes)
			}
			return nil, true, fmt.Errorf("bad probe frame: %w", err)
		}
		switch {
		case f.Error != "":
			return nil, true, fmt.Errorf("peer: %s", f.Error)
		case f.Done:
			if f.Tuples != tuples {
				return nil, true, fmt.Errorf("probe stream carried %d tuples, done frame says %d", tuples, f.Tuples)
			}
			c.relStateFor(relation).noteEpoch(f.Epoch)
			return out, false, nil
		case f.Row != nil:
			if f.B < 0 || f.B >= len(out) {
				return nil, false, fmt.Errorf("row frame for binding %d of a %d-binding probe", f.B, len(out))
			}
			out[f.B] = append(out[f.B], storage.Row(f.Row))
			tuples++
		default:
			return nil, false, errors.New("unclassifiable probe frame")
		}
	}
}

// Source is one remote relation as a data source: a source.Wrapper (and
// source.BatchSource — a batch rides a single HTTP round trip) probing the
// relation on the client's peer. All sources of one client share its
// connection pool; each relation has its own breaker and telemetry.
type Source struct {
	c   *Client
	rel *schema.Relation
}

// Source binds a relation schema to the peer. The relation must match the
// peer's own declaration — Attach discovers and verifies that; this
// constructor trusts the caller.
func (c *Client) Source(rel *schema.Relation) *Source {
	return &Source{c: c, rel: rel}
}

// Relation returns the relation schema this source serves.
func (s *Source) Relation() *schema.Relation { return s.rel }

// Epoch returns the peer relation's last observed data epoch (0 until the
// peer advertises one via /schema or a probe's done frame). The local
// cross-query cache keys this source's entries by it, so when the peer
// ingests new data, every entry cached from the older version stops
// serving as soon as the change is observed.
func (s *Source) Epoch() uint64 {
	return s.c.relStateFor(s.rel.Name).lastEpoch.Load()
}

// Access probes the relation with one binding: a batch of one.
func (s *Source) Access(binding []string) ([]storage.Row, error) {
	out, err := s.AccessBatch([][]string{binding})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// AccessBatch probes the relation with the whole batch in one HTTP round
// trip; result i is exactly what Access(bindings[i]) would return.
func (s *Source) AccessBatch(bindings [][]string) ([][]storage.Row, error) {
	//toorjahvet:allow ctx-first (contextless BatchSource interface shim over the ctx-aware form)
	return s.AccessBatchCtx(context.Background(), bindings)
}

// AccessBatchCtx is AccessBatch under the request context: the caller's
// cancellation stops retries and in-flight round trips, the trace ID (when
// present) travels to the peer in the X-Toorjah-Trace header, and a
// "remote-probe" span records the round trip when the context carries a
// trace.
func (s *Source) AccessBatchCtx(ctx context.Context, bindings [][]string) ([][]storage.Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	inputs := s.rel.InputPositions()
	for _, b := range bindings {
		if len(b) != len(inputs) {
			return nil, fmt.Errorf("remote source %s: binding of %d values for %d input arguments",
				s.rel.Name, len(b), len(inputs))
		}
	}
	ctx, sp := obs.StartSpan(ctx, "remote-probe")
	sp.SetAttr("peer", s.c.base)
	sp.SetAttr("relation", s.rel.Name)
	sp.SetAttr("accesses", len(bindings))
	if id := obs.TraceIDFromContext(ctx); id != "" {
		sp.SetAttr("trace_id", id)
	}
	defer sp.End()
	results, err := s.c.Probe(ctx, s.rel.Name, bindings)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	// Soundness guard: every returned row must have the relation's arity
	// and agree with its binding on the input positions. A misconfigured or
	// buggy peer surfaces as an error, never as wrong answers.
	for i, rows := range results {
		for _, row := range rows {
			if len(row) != s.rel.Arity() {
				return nil, fmt.Errorf("remote source %s: peer %s returned a row of arity %d, want %d",
					s.rel.Name, s.c.base, len(row), s.rel.Arity())
			}
			for k, pos := range inputs {
				if row[pos] != bindings[i][k] {
					return nil, fmt.Errorf("remote source %s: peer %s returned a row not matching its binding at position %d",
						s.rel.Name, s.c.base, pos+1)
				}
			}
		}
	}
	return results, nil
}

// AccessSyms is AccessBatchCtx on interned tuples — the remote-decode
// boundary of the engine. The probe protocol speaks NDJSON strings, so the
// bindings materialize into wire form and every decoded row interns here;
// the freshly decoded strings become garbage immediately instead of living
// on in caches and relations, and everything above this source (cache,
// counters, executors) stays on integer tuples.
func (s *Source) AccessSyms(ctx context.Context, bindings [][]sym.ID) ([][]storage.IRow, error) {
	strs := make([][]string, len(bindings))
	for i, b := range bindings {
		strs[i] = sym.Strs(b)
	}
	rows, err := s.AccessBatchCtx(ctx, strs)
	if err != nil {
		return nil, err
	}
	out := make([][]storage.IRow, len(rows))
	for i, rs := range rows {
		out[i] = storage.InternRows(rs)
	}
	return out, nil
}
