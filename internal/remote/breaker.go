package remote

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen fails a probe fast while a relation's circuit breaker is
// open: the peer has failed repeatedly and retrying every access would only
// stack timeouts. The breaker re-admits a single trial probe after the
// cooldown; callers see the error wrapped with the peer and relation.
var ErrBreakerOpen = errors.New("remote: circuit breaker open")

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-relation circuit breaker: threshold consecutive probe
// failures open it for cooldown, during which every probe fails fast; the
// first probe after the cooldown is admitted as a trial (half-open), whose
// outcome closes or re-opens the circuit.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	opens    int       // lifetime count, for telemetry
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a probe may proceed. In the open state it admits
// nothing until the cooldown has elapsed, then transitions to half-open and
// admits exactly one trial; further probes fail fast until that trial
// resolves through success or failure.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: a trial is already in flight
		return false
	}
}

// success records a completed probe, closing the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
}

// failure records a failed probe: a failed half-open trial re-opens the
// circuit immediately, and the threshold-th consecutive failure while
// closed opens it.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.open()
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.open()
	}
}

// open trips the circuit; callers hold b.mu.
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.failures = 0
	b.opens++
}

// openCount returns the lifetime number of times the circuit opened.
func (b *breaker) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// stateName renders the current state for telemetry ("closed", "open",
// "half-open").
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
