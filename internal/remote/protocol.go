// Package remote federates access-limited sources across toorjahd nodes:
// it turns every relation a peer serves into a source.Wrapper on this node,
// so a deployment can shard relations across machines and answer queries
// over the union (the web sources the paper targets, reached over a real
// network instead of the simulated WithLatency sleeps).
//
// The wire protocol is one operation, the probe — exactly the paper's
// access, batched: POST /probe carries a relation name and a batch of input
// bindings, and the peer streams every matching tuple back as NDJSON,
// tagged with the index of the binding it answers. A batch is N accesses in
// one round trip, so the executors' batching machinery amortises real
// network latency the same way it amortises the simulated kind.
//
// The client half (Client, Source) implements source.Wrapper and
// source.BatchSource over that protocol with the resilience a real network
// needs: per-host connection pooling, per-attempt timeouts, bounded retries
// with exponential backoff and jitter, a per-relation circuit breaker, and
// response-size limits. Schema discovery (FetchSchema, Attach) builds the
// remote relations from a peer's /schema endpoint.
package remote

// The /probe wire format. Request: a JSON body naming the relation and the
// batch of input bindings (each parallel to the relation's input
// positions). Response: application/x-ndjson — zero or more row frames
// {"b":i,"row":[...]}, each a full tuple (inputs and outputs) matching
// binding i, terminated by a done frame {"done":true,...}. A failure after
// the stream has started is reported in-band as {"error":"..."}; failures
// before it use plain HTTP status codes.

// ProbeRequest is the body of a POST /probe: one batched probe of a single
// relation. Bindings holds one input binding per access, each parallel to
// the relation's input positions; a free relation probes with the single
// empty binding.
type ProbeRequest struct {
	Relation string     `json:"relation"`
	Bindings [][]string `json:"bindings"`
}

// rowFrame is one matching tuple: a full row (inputs and outputs) of the
// probed relation, answering binding B. Row is always present, so that the
// empty row of a nullary relation survives the trip.
type rowFrame struct {
	B   int      `json:"b"`
	Row []string `json:"row"`
}

// doneFrame terminates a successful stream, carrying the served accounting:
// bindings probed (always len(Bindings)) and total tuples streamed.
type doneFrame struct {
	Done     bool `json:"done"`
	Accesses int  `json:"accesses"`
	Tuples   int  `json:"tuples"`
}

// errorFrame reports a failure in-band once the stream has started.
type errorFrame struct {
	Error string `json:"error"`
}

// probeFrame is the decoding union of the three frame shapes: a frame is an
// error when Error is non-empty, done when Done is set, and a row when Row
// is non-nil (JSON "row":[] decodes to a non-nil empty slice, so nullary
// rows classify correctly); anything else is a protocol violation.
type probeFrame struct {
	B        int      `json:"b"`
	Row      []string `json:"row"`
	Done     bool     `json:"done"`
	Accesses int      `json:"accesses"`
	Tuples   int      `json:"tuples"`
	Error    string   `json:"error"`
}
