// Package remote federates access-limited sources across toorjahd nodes:
// it turns every relation a peer serves into a source.Wrapper on this node,
// so a deployment can shard relations across machines and answer queries
// over the union (the web sources the paper targets, reached over a real
// network instead of the simulated WithLatency sleeps).
//
// The wire protocol is one operation, the probe — exactly the paper's
// access, batched: POST /probe carries a relation name and a batch of input
// bindings, and the peer streams every matching tuple back as NDJSON,
// tagged with the index of the binding it answers. A batch is N accesses in
// one round trip, so the executors' batching machinery amortises real
// network latency the same way it amortises the simulated kind.
//
// The client half (Client, Source) implements source.Wrapper and
// source.BatchSource over that protocol with the resilience a real network
// needs: per-host connection pooling, per-attempt timeouts, bounded retries
// with exponential backoff and jitter, a per-relation circuit breaker, and
// response-size limits. Schema discovery (FetchSchema, Attach) builds the
// remote relations from a peer's /schema endpoint.
package remote

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The /probe wire format. Request: a JSON body naming the relation and the
// batch of input bindings (each parallel to the relation's input
// positions). Response: application/x-ndjson — zero or more row frames
// {"b":i,"row":[...]}, each a full tuple (inputs and outputs) matching
// binding i, terminated by a done frame {"done":true,...}. A failure after
// the stream has started is reported in-band as {"error":"..."}; failures
// before it use plain HTTP status codes.

// ProbeRequest is the body of a POST /probe: one batched probe of a single
// relation. Bindings holds one input binding per access, each parallel to
// the relation's input positions; a free relation probes with the single
// empty binding.
type ProbeRequest struct {
	Relation string     `json:"relation"`
	Bindings [][]string `json:"bindings"`
}

// rowFrame is one matching tuple: a full row (inputs and outputs) of the
// probed relation, answering binding B. Row is always present, so that the
// empty row of a nullary relation survives the trip.
type rowFrame struct {
	B   int      `json:"b"`
	Row []string `json:"row"`
}

// doneFrame terminates a successful stream, carrying the served accounting
// — bindings probed (always len(Bindings)) and total tuples streamed — and
// the relation's data epoch at serve time (0 when the peer's source is
// unversioned). A client remembers the last epoch per relation: a change
// between probes means the peer's data moved, so whatever this node cached
// from earlier probes describes a stale peer snapshot (the client's cache
// keys entries by this epoch, making the stale set unreachable, and the
// change is counted in telemetry as EpochChanges).
type doneFrame struct {
	Done     bool   `json:"done"`
	Accesses int    `json:"accesses"`
	Tuples   int    `json:"tuples"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// errorFrame reports a failure in-band once the stream has started.
type errorFrame struct {
	Error string `json:"error"`
}

// probeFrame is the decoding union of the three frame shapes: a frame is an
// error when Error is non-empty, done when Done is set, and a row when Row
// is non-nil (JSON "row":[] decodes to a non-nil empty slice, so nullary
// rows classify correctly); anything else is a protocol violation.
type probeFrame struct {
	B        int      `json:"b"`
	Row      []string `json:"row"`
	Done     bool     `json:"done"`
	Accesses int      `json:"accesses"`
	Tuples   int      `json:"tuples"`
	Epoch    uint64   `json:"epoch"`
	Error    string   `json:"error"`
}

// SchemaEpochPrefix starts the per-relation epoch lines a peer appends to
// its /schema text: "# epoch rev 3". The lines ride the schema's comment
// syntax, so schema.Parse ignores them and pre-epoch clients interoperate;
// ParseSchemaEpochs extracts them on the client side, seeding the epoch
// telemetry (and the epoch-keyed cache identity) before the first probe.
const SchemaEpochPrefix = "# epoch "

// AppendSchemaEpochs appends one "# epoch name N" line per versioned
// relation (epoch > 0) to a /schema response body, in sorted name order.
func AppendSchemaEpochs(b *strings.Builder, epochs map[string]uint64) {
	names := make([]string, 0, len(epochs))
	for name, e := range epochs {
		if e > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(b, "%s%s %d\n", SchemaEpochPrefix, name, epochs[name])
	}
}

// ParseSchemaEpochs extracts the per-relation epoch lines from a /schema
// body; unparseable lines are skipped (they are comments to everyone else).
func ParseSchemaEpochs(text string) map[string]uint64 {
	out := make(map[string]uint64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, SchemaEpochPrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, SchemaEpochPrefix))
		if len(fields) != 2 {
			continue
		}
		e, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil || e == 0 {
			continue
		}
		out[fields[0]] = e
	}
	return out
}
