package remote

import (
	"strings"
	"testing"
)

// FuzzParseSchemaEpochs checks the epoch side-channel in /schema bodies:
// parsing never panics, never yields a zero epoch (zero means unversioned
// and must not appear), and whatever is parsed survives an
// AppendSchemaEpochs/ParseSchemaEpochs round trip — the exact path a
// client takes when it seeds its cache identity from a peer's schema.
func FuzzParseSchemaEpochs(f *testing.F) {
	seeds := []string{
		"r1(a, b*)\nr2(c*, d)\n# epoch r1 3\n# epoch r2 17\n",
		"# epoch only 1\n",
		"# epoch broken\n# epoch zero 0\n# epoch neg -4\n# epoch big 18446744073709551615\n",
		"#epoch nospace 2\n  # epoch indented 5\n",
		"# epoch dup 1\n# epoch dup 2\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		epochs := ParseSchemaEpochs(text)
		for name, e := range epochs {
			if e == 0 {
				t.Fatalf("parsed zero epoch for %q", name)
			}
			if strings.ContainsAny(name, " \t\n\r") {
				t.Fatalf("parsed relation name with whitespace: %q", name)
			}
		}
		var b strings.Builder
		AppendSchemaEpochs(&b, epochs)
		again := ParseSchemaEpochs(b.String())
		if len(again) != len(epochs) {
			t.Fatalf("round trip lost entries: %v -> %q -> %v", epochs, b.String(), again)
		}
		for name, e := range epochs {
			if again[name] != e {
				t.Fatalf("round trip changed %q: %d -> %d", name, e, again[name])
			}
		}
	})
}
