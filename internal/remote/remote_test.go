package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

const testSchemaText = `
r^io(A, B)
free^oo(A, B)
empty^io(A, B)
`

// testRegistry builds the peer-side registry the tests probe.
func testRegistry(t *testing.T) (*schema.Schema, *source.Registry) {
	t.Helper()
	sch, err := schema.Parse(testSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	rows := map[string][]storage.Row{
		"r":    {{"a1", "b1"}, {"a1", "b2"}, {"a2", "b3"}},
		"free": {{"x", "y"}, {"z", "w"}},
	}
	for name, rs := range rows {
		tab, err := db.Create(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		tab.InsertAll(rs)
	}
	reg, err := source.FromDatabase(sch, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sch, reg
}

// fastOptions keeps every resilience delay test-sized.
func fastOptions() Options {
	return Options{
		Timeout:   2 * time.Second,
		RetryBase: time.Millisecond,
		RetryMax:  5 * time.Millisecond,
	}
}

// TestProbeRoundTrip: a batched probe over HTTP returns exactly what the
// wrapped table would, binding for binding.
func TestProbeRoundTrip(t *testing.T) {
	sch, reg := testRegistry(t)
	ts := httptest.NewServer(PeerMux(reg))
	defer ts.Close()
	c := Dial(ts.URL, fastOptions())
	defer c.Close()

	src := c.Source(sch.Relation("r"))
	bindings := [][]string{{"a1"}, {"missing"}, {"a2"}, {"a1"}}
	got, err := src.AccessBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	want, err := source.ProbeBatch(reg.Source("r"), bindings)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("remote batch has %d results, want %d", len(got), len(want))
	}
	for i := range want {
		// Compare per binding; an empty extraction may be nil on one side.
		if len(got[i])+len(want[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("binding %d: remote = %v, want %v", i, got[i], want[i])
		}
	}
	if len(got[1]) != 0 {
		t.Errorf("missing binding extracted %v, want nothing", got[1])
	}

	// Single access and a free relation's empty binding.
	rows, err := src.Access([]string{"a1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("Access(a1) = %v, want 2 rows", rows)
	}
	freeRows, err := c.Source(sch.Relation("free")).Access(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(freeRows) != 2 {
		t.Errorf("free access = %v, want 2 rows", freeRows)
	}
	// An empty source answers with no rows, not an error.
	emptyRows, err := c.Source(sch.Relation("empty")).Access([]string{"a1"})
	if err != nil || len(emptyRows) != 0 {
		t.Errorf("empty access = %v, %v", emptyRows, err)
	}

	tel := c.Telemetry()
	if tel["r"].RoundTrips != 2 || tel["r"].Retries != 0 {
		t.Errorf("telemetry for r = %+v, want 2 clean round trips", tel["r"])
	}
	if tel["r"].LatencyMS <= 0 {
		t.Errorf("telemetry latency = %v, want > 0", tel["r"].LatencyMS)
	}
}

// TestHandlerRejects: the server side enforces the protocol — method, body
// and binding caps, unknown relations, arity mismatches.
func TestHandlerRejects(t *testing.T) {
	_, reg := testRegistry(t)
	h := NewHandler(reg)
	h.MaxBindings = 2
	h.MaxRequestBytes = 256

	post := func(body string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/probe", strings.NewReader(body)))
		return w
	}
	if w := post(`{"relation":"nope","bindings":[["a"]]}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown relation: status %d, want 404", w.Code)
	}
	if w := post(`{"relation":"r","bindings":[["a","b"]]}`); w.Code != http.StatusBadRequest {
		t.Errorf("bad arity: status %d, want 400", w.Code)
	}
	if w := post(`{"relation":"r","bindings":[["a"],["b"],["c"]]}`); w.Code != http.StatusBadRequest {
		t.Errorf("binding cap: status %d, want 400", w.Code)
	}
	if w := post(`{"relation":"r","bindings":[["` + strings.Repeat("x", 300) + `"]]}`); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("body cap: status %d, want 413", w.Code)
	}
	if w := post("not json"); w.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", w.Code)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/probe", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", w.Code)
	}
}

// flakyPeer wraps a peer so its first fail /probe requests are answered by
// failWith instead; everything else passes through.
func flakyPeer(inner http.Handler, fail int, failWith http.HandlerFunc) (http.Handler, *atomic.Int64) {
	var probes atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/probe" {
			n := probes.Add(1)
			if n <= int64(fail) {
				failWith(w, r)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}), &probes
}

// TestRetryAfter5xx: transient server failures are retried with backoff and
// the probe succeeds; telemetry reports the extra round trips.
func TestRetryAfter5xx(t *testing.T) {
	sch, reg := testRegistry(t)
	h, probes := flakyPeer(PeerMux(reg), 2, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "catching my breath", http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := Dial(ts.URL, fastOptions())
	defer c.Close()

	rows, err := c.Source(sch.Relation("r")).Access([]string{"a1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v, want 2", rows)
	}
	if got := probes.Load(); got != 3 {
		t.Errorf("server saw %d probes, want 3 (2 failures + success)", got)
	}
	tel := c.Telemetry()["r"]
	if tel.RoundTrips != 3 || tel.Retries != 2 {
		t.Errorf("telemetry = %+v, want 3 round trips, 2 retries", tel)
	}
}

// TestRetryAfterTruncatedStream: a stream that dies before its done frame
// is retried, not trusted.
func TestRetryAfterTruncatedStream(t *testing.T) {
	sch, reg := testRegistry(t)
	h, _ := flakyPeer(PeerMux(reg), 1, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"b":0,"row":["a1","b1"]}` + "\n")) // no done frame
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := Dial(ts.URL, fastOptions())
	defer c.Close()

	rows, err := c.Source(sch.Relation("r")).Access([]string{"a1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v, want the full extraction after the retry", rows)
	}
	if tel := c.Telemetry()["r"]; tel.Retries != 1 {
		t.Errorf("telemetry = %+v, want 1 retry", tel)
	}
}

// TestRetryAfterTimeout: an attempt that exceeds the per-attempt timeout is
// cut off and retried.
func TestRetryAfterTimeout(t *testing.T) {
	sch, reg := testRegistry(t)
	h, _ := flakyPeer(PeerMux(reg), 1, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
		}
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	opts := fastOptions()
	opts.Timeout = 50 * time.Millisecond
	c := Dial(ts.URL, opts)
	defer c.Close()

	rows, err := c.Source(sch.Relation("r")).Access([]string{"a1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v, want 2 after the timeout retry", rows)
	}
}

// TestNoRetryOn4xx: client errors are final — one round trip, no retries.
func TestNoRetryOn4xx(t *testing.T) {
	_, reg := testRegistry(t)
	ts := httptest.NewServer(PeerMux(reg))
	defer ts.Close()
	c := Dial(ts.URL, fastOptions())
	defer c.Close()

	_, err := c.Probe(context.Background(), "nope", [][]string{{"a"}})
	if err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("err = %v, want unknown relation", err)
	}
	if tel := c.Telemetry()["nope"]; tel.RoundTrips != 1 || tel.Retries != 0 {
		t.Errorf("telemetry = %+v, want exactly one round trip", tel)
	}
}

// TestResponseSizeLimit: an oversized extraction is an error, not an
// unbounded read — and not retried, since it would exceed again.
func TestResponseSizeLimit(t *testing.T) {
	sch, reg := testRegistry(t)
	ts := httptest.NewServer(PeerMux(reg))
	defer ts.Close()
	opts := fastOptions()
	opts.MaxResponseBytes = 16
	c := Dial(ts.URL, opts)
	defer c.Close()

	_, err := c.Source(sch.Relation("r")).Access([]string{"a1"})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want a size-limit error", err)
	}
	if tel := c.Telemetry()["r"]; tel.RoundTrips != 1 {
		t.Errorf("telemetry = %+v, want no retry of an oversized response", tel)
	}
}

// TestBreaker: repeated failures open the relation's circuit — probes then
// fail fast without touching the peer — and after the cooldown a half-open
// trial closes it again.
func TestBreaker(t *testing.T) {
	sch, reg := testRegistry(t)
	var broken atomic.Bool
	broken.Store(true)
	var probes atomic.Int64
	inner := PeerMux(reg)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/probe" {
			probes.Add(1)
			if broken.Load() {
				http.Error(w, "down", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	opts := fastOptions()
	opts.MaxRetries = -1 // isolate the breaker from the retry loop
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 50 * time.Millisecond
	c := Dial(ts.URL, opts)
	defer c.Close()
	src := c.Source(sch.Relation("r"))

	for i := 0; i < 2; i++ {
		if _, err := src.Access([]string{"a1"}); err == nil {
			t.Fatalf("probe %d: err = nil, want failure", i)
		}
	}
	// Threshold reached: the circuit is open, probes fail fast.
	_, err := src.Access([]string{"a1"})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if got := probes.Load(); got != 2 {
		t.Errorf("peer saw %d probes, want 2 (open circuit fails fast)", got)
	}
	if tel := c.Telemetry()["r"]; tel.BreakerOpens != 1 {
		t.Errorf("telemetry = %+v, want 1 breaker open", tel)
	}

	// Other relations of the same peer are unaffected.
	if _, err := c.Source(sch.Relation("free")).Access(nil); err == nil {
		t.Error("free: the peer is down, want a real probe failure, got success") // still broken
	}

	// After the cooldown the half-open trial goes through; the peer has
	// recovered, so the circuit closes and stays closed.
	broken.Store(false)
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 3; i++ {
		rows, err := src.Access([]string{"a1"})
		if err != nil {
			t.Fatalf("post-recovery probe %d: %v", i, err)
		}
		if len(rows) != 2 {
			t.Fatalf("post-recovery rows = %v", rows)
		}
	}
	if tel := c.Telemetry()["r"]; tel.BreakerOpens != 1 {
		t.Errorf("telemetry after recovery = %+v, want still 1 open", tel)
	}
}

// TestBreakerReopensOnFailedTrial: a failed half-open trial re-opens the
// circuit immediately.
func TestBreakerReopensOnFailedTrial(t *testing.T) {
	sch, reg := testRegistry(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down for good", http.StatusInternalServerError)
	}))
	defer ts.Close()
	_ = reg

	opts := fastOptions()
	opts.MaxRetries = -1
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = 30 * time.Millisecond
	c := Dial(ts.URL, opts)
	defer c.Close()
	src := c.Source(sch.Relation("r"))

	if _, err := src.Access([]string{"a1"}); err == nil {
		t.Fatal("want failure")
	}
	time.Sleep(40 * time.Millisecond)
	if _, err := src.Access([]string{"a1"}); errors.Is(err, ErrBreakerOpen) || err == nil {
		t.Fatalf("half-open trial: err = %v, want the real probe failure", err)
	}
	// The failed trial re-opened the circuit.
	_, err := src.Access([]string{"a1"})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after failed trial: err = %v, want ErrBreakerOpen", err)
	}
	if tel := c.Telemetry()["r"]; tel.BreakerOpens != 2 {
		t.Errorf("telemetry = %+v, want 2 opens", tel)
	}
}

// TestSoundnessGuard: rows that contradict the probe's binding or the
// relation's arity are an error, never answers.
func TestSoundnessGuard(t *testing.T) {
	sch, _ := testRegistry(t)
	serve := func(lines ...string) *Client {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			for _, l := range lines {
				w.Write([]byte(l + "\n"))
			}
		}))
		t.Cleanup(ts.Close)
		c := Dial(ts.URL, fastOptions())
		t.Cleanup(c.Close)
		return c
	}
	// Wrong arity.
	c := serve(`{"b":0,"row":["a1","b1","extra"]}`, `{"done":true,"accesses":1,"tuples":1}`)
	if _, err := c.Source(sch.Relation("r")).Access([]string{"a1"}); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("wrong arity: err = %v", err)
	}
	// Row not matching the input binding.
	c = serve(`{"b":0,"row":["other","b1"]}`, `{"done":true,"accesses":1,"tuples":1}`)
	if _, err := c.Source(sch.Relation("r")).Access([]string{"a1"}); err == nil || !strings.Contains(err.Error(), "binding") {
		t.Errorf("binding mismatch: err = %v", err)
	}
}

// TestFetchSchemaAndAttach: discovery parses the peer's /schema and Attach
// verifies each attached relation against the local declaration.
func TestFetchSchemaAndAttach(t *testing.T) {
	_, reg := testRegistry(t)
	ts := httptest.NewServer(PeerMux(reg))
	defer ts.Close()
	c := Dial(ts.URL, fastOptions())
	defer c.Close()

	peer, err := c.FetchSchema(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !peer.Has("r") || !peer.Has("free") || peer.Relation("r").String() != "r^io(A,B)" {
		t.Fatalf("discovered schema = %s", peer)
	}

	// The local node declares a superset; nil relations attaches the
	// intersection.
	local := schema.MustParse(testSchemaText + "\nlocalonly^o(C)")
	srcs, err := Attach(context.Background(), c, local, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range srcs {
		names = append(names, s.Relation().Name)
	}
	if got := strings.Join(names, ","); got != "empty,free,r" {
		t.Errorf("attached %s, want empty,free,r", got)
	}

	// Explicit list: a relation the peer does not serve is an error.
	if _, err := Attach(context.Background(), c, local, []string{"localonly"}); err == nil {
		t.Error("attaching a relation the peer lacks: want error")
	}
	// A declaration mismatch is an error.
	mismatched := schema.MustParse("r^oi(A, B)\nfree^oo(A, B)\nempty^io(A, B)")
	if _, err := Attach(context.Background(), c, mismatched, []string{"r"}); err == nil || !strings.Contains(err.Error(), "declared as") {
		t.Errorf("pattern mismatch: err = %v", err)
	}
	// No shared relation at all.
	disjoint := schema.MustParse("other^o(X)")
	if _, err := Attach(context.Background(), c, disjoint, nil); err == nil {
		t.Error("disjoint schemas: want error")
	}
}

// TestParseAttachSpec covers the -remote flag syntax.
func TestParseAttachSpec(t *testing.T) {
	cases := []struct {
		in      string
		base    string
		rels    string
		wantErr bool
	}{
		{"http://h:1=r1,r2", "http://h:1", "r1,r2", false},
		{"http://h:1", "http://h:1", "", false},
		{"h:1=r1", "http://h:1", "r1", false},
		{"https://h:1/", "https://h:1/", "", false},
		{"http://h:1=", "", "", true},
		{"=r1", "", "", true},
		{"", "", "", true},
	}
	for _, c := range cases {
		spec, err := ParseAttachSpec(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseAttachSpec(%q): err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if spec.Base != c.base || strings.Join(spec.Relations, ",") != c.rels {
			t.Errorf("ParseAttachSpec(%q) = %+v, want base %q rels %q", c.in, spec, c.base, c.rels)
		}
	}
}

// TestHealthy: reachability reflects the peer's state.
func TestHealthy(t *testing.T) {
	_, reg := testRegistry(t)
	ts := httptest.NewServer(PeerMux(reg))
	c := Dial(ts.URL, fastOptions())
	defer c.Close()
	if err := c.Healthy(context.Background()); err != nil {
		t.Errorf("healthy peer: %v", err)
	}
	ts.Close()
	if err := c.Healthy(context.Background()); err == nil {
		t.Error("closed peer reported healthy")
	}
}

// TestHandlerRecord: the Record hook observes served probes.
func TestHandlerRecord(t *testing.T) {
	sch, reg := testRegistry(t)
	h := NewHandler(reg)
	type rec struct {
		rel              string
		accesses, tuples int
	}
	var recs []rec
	h.Record = func(p ProbeRecord) {
		recs = append(recs, rec{p.Relation, p.Accesses, p.Tuples})
	}
	mux := http.NewServeMux()
	mux.Handle("/probe", h)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := Dial(ts.URL, fastOptions())
	defer c.Close()

	if _, err := c.Source(sch.Relation("r")).AccessBatch([][]string{{"a1"}, {"a2"}}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != (rec{"r", 2, 3}) {
		t.Errorf("recorded %+v, want one probe of 2 accesses / 3 tuples", recs)
	}
}

// TestEpochPropagation: /schema advertises per-relation epochs, probe done
// frames carry them, the client's telemetry tracks the last observed epoch
// and counts changes (stale-peer-snapshot detections), and the remote
// source reports the epoch so a local cache can key entries by it.
func TestEpochPropagation(t *testing.T) {
	sch, reg := testRegistry(t)
	srv := httptest.NewServer(PeerMux(reg))
	defer srv.Close()

	c := Dial(srv.URL, Options{})
	defer c.Close()
	peer, err := c.FetchSchema(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if peer.Len() != sch.Len() {
		t.Fatalf("peer schema has %d relations, want %d", peer.Len(), sch.Len())
	}
	src := c.Source(peer.Relation("r"))

	// Seeded from /schema before any probe: the backing table loaded one
	// batch, so it sits at epoch 2 ("empty" never advanced past 1).
	if e := source.EpochOf(src); e != 2 {
		t.Errorf("epoch after schema discovery = %d, want 2", e)
	}

	if _, err := src.Access([]string{"a1"}); err != nil {
		t.Fatal(err)
	}
	tel := c.Telemetry()["r"]
	if tel.Epoch != 2 || tel.EpochChanges != 0 {
		t.Errorf("telemetry after first probe = %+v, want epoch 2, no changes", tel)
	}

	// The peer ingests: the next done frame advertises the new epoch and
	// the client counts one stale-snapshot detection.
	tab := reg.Source("r").(*source.TableSource).Table()
	tab.InsertAll([]storage.Row{{"a1", "b9"}})
	rows, err := src.Access([]string{"a1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("post-ingest probe rows = %v, want 3", rows)
	}
	tel = c.Telemetry()["r"]
	if tel.Epoch != 3 || tel.EpochChanges != 1 {
		t.Errorf("telemetry after peer ingest = %+v, want epoch 3 and 1 change", tel)
	}
	if e := source.EpochOf(src); e != 3 {
		t.Errorf("source epoch after peer ingest = %d, want 3", e)
	}
}

// TestSchemaEpochRoundTrip: the "# epoch" lines survive formatting and
// parsing, and plain schema parsers ignore them.
func TestSchemaEpochRoundTrip(t *testing.T) {
	var b strings.Builder
	b.WriteString("r^io(A, B)\n")
	AppendSchemaEpochs(&b, map[string]uint64{"r": 7, "unversioned": 0})
	got := ParseSchemaEpochs(b.String())
	if len(got) != 1 || got["r"] != 7 {
		t.Errorf("ParseSchemaEpochs = %v, want map[r:7]", got)
	}
	if _, err := schema.Parse(b.String()); err != nil {
		t.Errorf("epoch lines break schema.Parse: %v", err)
	}
	if got := ParseSchemaEpochs("# epoch bad\n# epoch x notanumber\n"); len(got) != 0 {
		t.Errorf("malformed epoch lines parsed: %v", got)
	}
}
