package source

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

func revSource(t *testing.T) *TableSource {
	t.Helper()
	rel := schema.MustRelation("rev", "ooi", "Person", "ConfName", "Year")
	tab := storage.NewTable("rev", 3)
	tab.Insert(storage.Row{"alice", "icde", "2008"})
	tab.Insert(storage.Row{"bob", "icde", "2008"})
	tab.Insert(storage.Row{"alice", "vldb", "2007"})
	s, err := NewTableSource(rel, tab)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTableSourceAccess(t *testing.T) {
	s := revSource(t)
	rows, err := s.Access([]string{"2008"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("access 2008: %v", rows)
	}
	rows, err = s.Access([]string{"1999"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("access 1999: %v", rows)
	}
	if _, err := s.Access(nil); err == nil {
		t.Error("binding arity mismatch: want error")
	}
}

func TestTableSourceArityMismatch(t *testing.T) {
	rel := schema.MustRelation("r", "oo", "A", "B")
	if _, err := NewTableSource(rel, storage.NewTable("r", 3)); err == nil {
		t.Error("want arity mismatch error")
	}
}

func TestFreeSourceEmptyBinding(t *testing.T) {
	rel := schema.MustRelation("f", "oo", "A", "B")
	tab := storage.NewTable("f", 2)
	tab.Insert(storage.Row{"a", "b"})
	s, _ := NewTableSource(rel, tab)
	rows, err := s.Access([]string{})
	if err != nil || len(rows) != 1 {
		t.Errorf("free access: %v, %v", rows, err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter(revSource(t), true)
	c.Access([]string{"2008"})
	c.Access([]string{"2008"}) // repeated probe still counts as an access
	c.Access([]string{"2007"})
	st := c.Stats()
	if st.Accesses != 3 {
		t.Errorf("Accesses = %d", st.Accesses)
	}
	if st.Tuples != 5 {
		t.Errorf("Tuples = %d", st.Tuples)
	}
	if c.DistinctAccesses() != 2 {
		t.Errorf("DistinctAccesses = %d", c.DistinctAccesses())
	}
	log := c.Log()
	if len(log) != 3 || log[0].String() != "rev(2008)" {
		t.Errorf("Log = %v", log)
	}
	set := c.AccessSet()
	if !set[Access{Relation: "rev", Binding: []string{"2008"}}.Key()] {
		t.Error("AccessSet missing key")
	}
	c.Reset()
	if c.Stats().Accesses != 0 || c.DistinctAccesses() != 0 || len(c.Log()) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(revSource(t), false)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Access([]string{fmt.Sprint(2000 + j%5)})
			}
		}(i)
	}
	wg.Wait()
	if got := c.Stats().Accesses; got != 400 {
		t.Errorf("Accesses = %d, want 400", got)
	}
	if got := c.DistinctAccesses(); got != 5 {
		t.Errorf("DistinctAccesses = %d, want 5", got)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Bind(revSource(t))
	if reg.Source("rev") == nil || reg.Source("nope") != nil {
		t.Error("Source lookup misbehaves")
	}
	if got := reg.Names(); len(got) != 1 || got[0] != "rev" {
		t.Errorf("Names = %v", got)
	}
	counted, counters := reg.Counted(false)
	counted.Source("rev").Access([]string{"2008"})
	if counters["rev"].Stats().Accesses != 1 {
		t.Error("counted registry not recording")
	}
	// Original registry unaffected.
	if _, ok := reg.Source("rev").(*Counter); ok {
		t.Error("Counted mutated the original registry")
	}
}

func TestFromDatabase(t *testing.T) {
	sch := schema.MustParse(`
r1^io(A, B)
r2^oo(B, C)
`)
	db := storage.NewDatabase()
	tab, _ := db.Create("r1", 2)
	tab.Insert(storage.Row{"a", "b"})
	reg, err := FromDatabase(sch, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := reg.Source("r1").Access([]string{"a"})
	if err != nil || len(rows) != 1 {
		t.Errorf("r1 access: %v, %v", rows, err)
	}
	// r2 has no table: empty source, not an error.
	rows, err = reg.Source("r2").Access(nil)
	if err != nil || len(rows) != 0 {
		t.Errorf("r2 access: %v, %v", rows, err)
	}
}

func TestLatency(t *testing.T) {
	s := revSource(t).WithLatency(5 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 4; i++ {
		s.Access([]string{"2008"})
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Errorf("latency not applied: %v", el)
	}
}

func TestAccessKeyDistinguishesRelations(t *testing.T) {
	a := Access{Relation: "r", Binding: []string{"x"}}
	b := Access{Relation: "rx", Binding: []string{}}
	if a.Key() == b.Key() {
		t.Error("access keys collide")
	}
}

// TestTableSourcePinning: a snapshotted source keeps serving the version it
// pinned while the live source and the table move on, and the registry
// snapshot pins every table-backed source at once.
func TestTableSourcePinning(t *testing.T) {
	sch, err := schema.Parse("r^io(K, V)")
	if err != nil {
		t.Fatal(err)
	}
	rel := sch.Relations()[0]
	tab := storage.NewTable("r", 2)
	tab.InsertAll([]storage.Row{{"k", "old"}})
	live, err := NewTableSource(rel, tab)
	if err != nil {
		t.Fatal(err)
	}
	pinned := live.Snapshot()
	if pinned.(*TableSource).Snapshot() != pinned {
		t.Error("snapshotting a pinned source should be a no-op")
	}
	wantEpoch := EpochOf(live)

	tab.InsertAll([]storage.Row{{"k", "new"}})
	tab.DeleteAll([]storage.Row{{"k", "old"}})

	got, err := pinned.Access([]string{"k"})
	if err != nil || len(got) != 1 || got[0][1] != "old" {
		t.Errorf("pinned access = %v, %v; want the old row", got, err)
	}
	if e := EpochOf(pinned); e != wantEpoch {
		t.Errorf("pinned epoch moved: %d, want %d", e, wantEpoch)
	}
	got, err = live.Access([]string{"k"})
	if err != nil || len(got) != 1 || got[0][1] != "new" {
		t.Errorf("live access = %v, %v; want the new row", got, err)
	}
	if e := EpochOf(live); e == wantEpoch {
		t.Errorf("live epoch did not advance from %d", wantEpoch)
	}

	// Registry.Snapshot pins table sources and forwards through Counter.
	reg := NewRegistry()
	reg.Bind(live)
	snapReg := reg.Snapshot()
	tab.InsertAll([]storage.Row{{"k", "newer"}})
	if rows, _ := snapReg.Source("r").Access([]string{"k"}); len(rows) != 1 {
		t.Errorf("registry snapshot reads the live table: %v", rows)
	}
	ctr := NewCounter(live, false)
	if EpochOf(ctr) != EpochOf(live) {
		t.Error("Counter does not forward the data epoch")
	}
}
