package source

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

func batchFixture(t *testing.T) (*schema.Relation, *TableSource) {
	t.Helper()
	sch := schema.MustParse("r^io(A, B)")
	rel := sch.Relation("r")
	tab := storage.NewTable("r", 2)
	for i := 0; i < 12; i++ {
		tab.Insert(storage.Row{fmt.Sprintf("a%d", i%4), fmt.Sprintf("b%d", i)})
	}
	src, err := NewTableSource(rel, tab)
	if err != nil {
		t.Fatal(err)
	}
	return rel, src
}

// TestTableSourceAccessBatch: a native batch is element-wise identical to
// probing one binding at a time.
func TestTableSourceAccessBatch(t *testing.T) {
	_, src := batchFixture(t)
	bindings := [][]string{{"a0"}, {"a3"}, {"missing"}, {"a1"}}
	batch, err := src.AccessBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bindings {
		single, err := src.Access(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], single) {
			t.Errorf("binding %v: batch %v, single %v", b, batch[i], single)
		}
	}
	if _, err := src.AccessBatch([][]string{{"a0", "extra"}}); err == nil {
		t.Error("mis-sized binding in a batch must be rejected")
	}
}

// TestBatcherUpgradesPlainWrapper: Batcher leaves native batch sources
// alone and gives everything else a loop adapter with identical semantics.
func TestBatcherUpgradesPlainWrapper(t *testing.T) {
	_, src := batchFixture(t)
	if b := Batcher(src); b != BatchSource(src) {
		t.Error("Batcher must return a native BatchSource unchanged")
	}
	flaky := NewFlaky(src, 1000, errors.New("x")) // plain Wrapper, no batch method
	if _, ok := Wrapper(flaky).(BatchSource); ok {
		t.Fatal("test premise broken: Flaky must not batch natively")
	}
	up := Batcher(flaky)
	bindings := [][]string{{"a0"}, {"a2"}}
	got, err := up.AccessBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ProbeBatch(src, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("loop adapter = %v, want %v", got, want)
	}
}

// TestCounterBatchAccounting: a batch of N bindings counts as N accesses
// but a single round trip, and every binding lands in the log and the
// distinct set.
func TestCounterBatchAccounting(t *testing.T) {
	_, src := batchFixture(t)
	c := NewCounter(src, true)
	bindings := [][]string{{"a0"}, {"a1"}, {"a0"}}
	rows, err := c.AccessBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	st := c.Stats()
	if st.Accesses != 3 {
		t.Errorf("Accesses = %d, want 3 (a batch is N accesses)", st.Accesses)
	}
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1 (one round trip)", st.Batches)
	}
	if got := c.DistinctAccesses(); got != 2 {
		t.Errorf("DistinctAccesses = %d, want 2", got)
	}
	if got := len(c.Log()); got != 3 {
		t.Errorf("log length = %d, want 3", got)
	}
	// A single access is a round trip of one: Batches tracks it too.
	if _, err := c.Access([]string{"a2"}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Accesses != 4 || st.Batches != 2 {
		t.Errorf("after single access: %+v, want Accesses=4 Batches=2", st)
	}
}

// TestProbeBatchStopsOnError: the loop fallback aborts at the failing
// binding, like sequential probing would.
func TestProbeBatchStopsOnError(t *testing.T) {
	_, src := batchFixture(t)
	errDown := errors.New("down")
	flaky := NewFlaky(src, 2, errDown)
	_, err := ProbeBatch(flaky, [][]string{{"a0"}, {"a1"}, {"a2"}})
	if !errors.Is(err, errDown) {
		t.Errorf("err = %v, want %v", err, errDown)
	}
}
