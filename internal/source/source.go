// Package source models the wrapped data sources of the Toorjah
// architecture (paper Section V, Fig. 5): every relation is reachable only
// through a Wrapper, whose single operation is an access — the probe of the
// relation with all its input arguments bound to constants, returning the
// matching tuples. Wrappers wrap local in-memory tables here (the paper used
// local PostgreSQL tables); a configurable per-access latency simulates the
// remote sources the paper targets, so that execution time is proportional
// to the number of accesses, as in the paper's Fig. 11.
//
// The package also provides the access accounting used throughout the
// experimental evaluation: a counting decorator records the number of
// accesses and extracted tuples per relation.
package source

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"toorjah/internal/schema"
	"toorjah/internal/storage"
	"toorjah/internal/sym"
)

// Access identifies one probe of a relation: the values binding its input
// positions, in input-position order. Free relations have exactly one
// access, the empty binding.
type Access struct {
	Relation string
	Binding  []string
}

// Key encodes the access for deduplication.
func (a Access) Key() string {
	return a.Relation + "\x00" + strings.Join(a.Binding, "\x00")
}

// String renders the access, e.g. "rev[Year=2008]".
func (a Access) String() string {
	return fmt.Sprintf("%s(%s)", a.Relation, strings.Join(a.Binding, ","))
}

// Wrapper is a data source with access limitations. Access probes the
// relation with the given input binding (parallel to
// Relation().InputPositions()) and returns every matching tuple, complete
// with both input and output attributes.
type Wrapper interface {
	Relation() *schema.Relation
	Access(binding []string) ([]storage.Row, error)
}

// BatchSource is a Wrapper that can serve many accesses of its relation in
// a single round trip. AccessBatch probes the relation once per binding and
// returns the extractions in binding order: result i is exactly what
// Access(bindings[i]) would return, so a batch is just N accesses folded
// into one round trip — soundness and access accounting are unaffected,
// only the per-probe overhead (network latency, lock traffic) is amortised.
type BatchSource interface {
	Wrapper
	AccessBatch(bindings [][]string) ([][]storage.Row, error)
}

// ProbeBatch serves a batch of accesses through w: natively when w
// implements BatchSource, otherwise by probing one binding at a time. An
// error aborts the batch; the extractions of the bindings already probed
// are discarded with it.
func ProbeBatch(w Wrapper, bindings [][]string) ([][]storage.Row, error) {
	if bs, ok := w.(BatchSource); ok {
		return bs.AccessBatch(bindings)
	}
	out := make([][]storage.Row, len(bindings))
	for i, b := range bindings {
		rows, err := w.Access(b)
		if err != nil {
			return nil, err
		}
		out[i] = rows
	}
	return out, nil
}

// CtxBatchSource is a BatchSource that accepts a request context for its
// batch probes. The context carries cancellation and the observability
// baggage of the query being served — the trace ID forwarded to federated
// peers, the current trace span — through decorator stacks (counting,
// caching, metrics) down to the source that pays the round trip.
// AccessBatchCtx(ctx, b) is semantically AccessBatch(b); a source is free
// to ignore the context entirely.
type CtxBatchSource interface {
	BatchSource
	AccessBatchCtx(ctx context.Context, bindings [][]string) ([][]storage.Row, error)
}

// ProbeBatchCtx is ProbeBatch with a request context: sources (and
// decorators) implementing CtxBatchSource receive it, everything else is
// served exactly as ProbeBatch would. A nil ctx is allowed and treated as
// context.Background().
func ProbeBatchCtx(ctx context.Context, w Wrapper, bindings [][]string) ([][]storage.Row, error) {
	if cs, ok := w.(CtxBatchSource); ok {
		if ctx == nil {
			ctx = context.Background()
		}
		return cs.AccessBatchCtx(ctx, bindings)
	}
	return ProbeBatch(w, bindings)
}

// SymBatchSource is the integer fast path of a source: AccessSyms is
// AccessBatchCtx with interned bindings and interned extractions, so the
// standard stack — table source, counting, caching, metrics decorators, the
// remote client — serves every probe without constructing a single string.
// Sources that cannot speak interned tuples simply do not implement the
// interface; ProbeSyms converts at the boundary for them.
type SymBatchSource interface {
	Wrapper
	AccessSyms(ctx context.Context, bindings [][]sym.ID) ([][]storage.IRow, error)
}

// ProbeSyms serves a batch of interned accesses through w: natively when w
// implements SymBatchSource, otherwise by materializing the bindings,
// probing the string surface, and interning the extracted rows on the way
// back — so custom string wrappers keep working unchanged while the
// standard stack stays integer end to end.
func ProbeSyms(ctx context.Context, w Wrapper, bindings [][]sym.ID) ([][]storage.IRow, error) {
	if ss, ok := w.(SymBatchSource); ok {
		if ctx == nil {
			ctx = context.Background()
		}
		return ss.AccessSyms(ctx, bindings)
	}
	strs := make([][]string, len(bindings))
	for i, b := range bindings {
		strs[i] = sym.Strs(b)
	}
	rows, err := ProbeBatchCtx(ctx, w, strs)
	if err != nil {
		return nil, err
	}
	out := make([][]storage.IRow, len(rows))
	for i, rs := range rows {
		out[i] = storage.InternRows(rs)
	}
	return out, nil
}

// SymAccessKey encodes an interned access for deduplication: the relation
// name and the packed binding. The integer counterpart of Access.Key.
func SymAccessKey(rel string, binding []sym.ID) string {
	return string(AppendSymAccessKey(nil, rel, binding))
}

// AppendSymAccessKey appends the encoding of SymAccessKey to dst, letting
// hot loops reuse one key buffer across probes.
func AppendSymAccessKey(dst []byte, rel string, binding []sym.ID) []byte {
	dst = append(dst, rel...)
	dst = append(dst, 0)
	return sym.AppendKey(dst, binding)
}

// Versioned is implemented by sources whose extraction set carries a
// monotonically increasing epoch: the version number of the data behind the
// source. Two probes of the same binding at the same epoch are guaranteed
// to extract the same tuples, which is what lets the cross-query cache key
// entries by (access, epoch) and lets executions pin one version per
// relation. A source that cannot version itself simply does not implement
// the interface; EpochOf reports 0 for it, meaning "unversioned".
type Versioned interface {
	Epoch() uint64
}

// EpochOf returns w's current data epoch, or 0 when w is unversioned.
func EpochOf(w Wrapper) uint64 {
	if v, ok := w.(Versioned); ok {
		return v.Epoch()
	}
	return 0
}

// Snapshottable is implemented by sources that can pin their current data
// version: Snapshot returns a wrapper whose every access reads the same
// immutable version, no matter how far concurrent writers advance the
// underlying data. Executors snapshot the registry once per execution
// (Registry.Snapshot), so an in-flight query never observes a torn mix of
// two versions of one relation.
type Snapshottable interface {
	Wrapper
	Snapshot() Wrapper
}

// Batcher upgrades any plain Wrapper to a BatchSource. Wrappers that
// already batch natively are returned unchanged; everything else gets a
// loop adapter, so callers can program uniformly against BatchSource.
func Batcher(w Wrapper) BatchSource {
	if bs, ok := w.(BatchSource); ok {
		return bs
	}
	return &loopBatcher{w}
}

// loopBatcher is the fallback BatchSource: one inner access per binding,
// with exactly ProbeBatch's semantics.
type loopBatcher struct {
	Wrapper
}

func (b *loopBatcher) AccessBatch(bindings [][]string) ([][]storage.Row, error) {
	return ProbeBatch(b.Wrapper, bindings)
}

// TableSource is a Wrapper over an in-memory table, with an optional
// simulated per-access latency. A live TableSource reads the table's
// current version on every access; Snapshot pins one version for the life
// of the returned source, so executors see a frozen relation while writers
// advance the table underneath.
type TableSource struct {
	rel     *schema.Relation
	table   *storage.Table
	pinned  *storage.Snapshot // nil = live: read the current version per access
	latency time.Duration
}

// NewTableSource wraps a table as a limited source. The table's arity must
// match the relation's.
func NewTableSource(rel *schema.Relation, table *storage.Table) (*TableSource, error) {
	if table.Arity != rel.Arity() {
		return nil, fmt.Errorf("source %s: table arity %d, relation arity %d",
			rel.Name, table.Arity, rel.Arity())
	}
	return &TableSource{rel: rel, table: table}, nil
}

// WithLatency returns a copy of the source that sleeps for d on every
// access, simulating a remote source.
func (s *TableSource) WithLatency(d time.Duration) *TableSource {
	return &TableSource{rel: s.rel, table: s.table, pinned: s.pinned, latency: d}
}

// Relation returns the wrapped relation schema.
func (s *TableSource) Relation() *schema.Relation { return s.rel }

// Table exposes the backing live table; the reference Datalog semantics of
// a plan reads full relation contents through it, and the facade's
// ingestion API mutates it.
func (s *TableSource) Table() *storage.Table { return s.table }

// Snapshot pins the table's current version: every access of the returned
// source reads that one immutable snapshot. Snapshotting an already pinned
// source returns it unchanged.
func (s *TableSource) Snapshot() Wrapper {
	if s.pinned != nil {
		return s
	}
	return &TableSource{rel: s.rel, table: s.table, pinned: s.table.Snapshot(), latency: s.latency}
}

// Epoch returns the version this source reads: the pinned snapshot's epoch,
// or the table's current one for a live source.
func (s *TableSource) Epoch() uint64 {
	if s.pinned != nil {
		return s.pinned.Epoch()
	}
	return s.table.Epoch()
}

// view returns the table version this access should read.
func (s *TableSource) view() *storage.Snapshot {
	if s.pinned != nil {
		return s.pinned
	}
	return s.table.Snapshot()
}

// Access probes the table with the binding over the relation's input
// positions.
func (s *TableSource) Access(binding []string) ([]storage.Row, error) {
	inputs := s.rel.InputPositions()
	if len(binding) != len(inputs) {
		return nil, fmt.Errorf("source %s: binding of %d values for %d input arguments",
			s.rel.Name, len(binding), len(inputs))
	}
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	return s.view().Select(inputs, binding), nil
}

// AccessBatch probes the table once per binding in a single round trip: the
// simulated latency is paid once for the whole batch (that is the point of
// batching a remote source) and one table version serves every binding of
// the batch.
func (s *TableSource) AccessBatch(bindings [][]string) ([][]storage.Row, error) {
	inputs := s.rel.InputPositions()
	for _, b := range bindings {
		if len(b) != len(inputs) {
			return nil, fmt.Errorf("source %s: binding of %d values for %d input arguments",
				s.rel.Name, len(b), len(inputs))
		}
	}
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	return s.view().SelectBatch(inputs, bindings), nil
}

// AccessSyms probes the table once per interned binding in a single round
// trip, entirely on packed integer keys; the extracted rows are shared
// stored rows and must not be mutated.
func (s *TableSource) AccessSyms(ctx context.Context, bindings [][]sym.ID) ([][]storage.IRow, error) {
	inputs := s.rel.InputPositions()
	for _, b := range bindings {
		if len(b) != len(inputs) {
			return nil, fmt.Errorf("source %s: binding of %d values for %d input arguments",
				s.rel.Name, len(b), len(inputs))
		}
	}
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	return s.view().SelectBatchSym(inputs, bindings), nil
}

// Stats aggregates the access accounting of one relation.
type Stats struct {
	// Accesses is the paper's cost metric: the number of bindings probed.
	// Batching never changes it — a batch of N bindings counts as N.
	Accesses int `json:"accesses"`
	// Batches is the number of round trips to the source; a single Access
	// is a round trip of one, so Accesses/Batches is the mean batch size.
	Batches int `json:"batches"`
	// Tuples is the total tuples extracted, summed over accesses.
	Tuples int `json:"tuples"`
}

// Add accumulates another relation's counters into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Batches += o.Batches
	s.Tuples += o.Tuples
}

// Counter decorates a Wrapper with thread-safe access accounting and an
// optional access log.
type Counter struct {
	inner Wrapper

	mu      sync.Mutex
	stats   Stats
	log     []Access
	keepLog bool
	// distinct holds the distinct bindings probed through the interned fast
	// path (integer-keyed — no string ever materializes for accounting);
	// distinctStr holds those probed through the legacy string methods. One
	// execution drives one path, so the split never double-counts in
	// practice.
	distinct    sym.BindMap[struct{}]
	distinctStr map[string]bool
}

// NewCounter wraps w; when keepLog is set every access is recorded in order.
func NewCounter(w Wrapper, keepLog bool) *Counter {
	return &Counter{inner: w, keepLog: keepLog, distinctStr: make(map[string]bool)}
}

// Relation returns the wrapped relation schema.
func (c *Counter) Relation() *schema.Relation { return c.inner.Relation() }

// Epoch forwards the wrapped source's data epoch (0 when unversioned), so
// the cross-query cache sees through the accounting decorator.
func (c *Counter) Epoch() uint64 { return EpochOf(c.inner) }

// Access forwards to the wrapped source, recording the probe.
func (c *Counter) Access(binding []string) ([]storage.Row, error) {
	rows, err := c.inner.Access(binding)
	if err != nil {
		return nil, err
	}
	a := Access{Relation: c.inner.Relation().Name, Binding: append([]string(nil), binding...)}
	c.mu.Lock()
	c.stats.Accesses++
	c.stats.Batches++
	c.stats.Tuples += len(rows)
	c.distinctStr[a.Key()] = true
	if c.keepLog {
		c.log = append(c.log, a)
	}
	c.mu.Unlock()
	return rows, nil
}

// AccessBatch forwards the batch to the wrapped source, recording one probe
// per binding and one round trip for the whole batch.
func (c *Counter) AccessBatch(bindings [][]string) ([][]storage.Row, error) {
	//toorjahvet:allow ctx-first (contextless BatchSource interface shim over the ctx-aware form)
	return c.AccessBatchCtx(context.Background(), bindings)
}

// AccessBatchCtx is AccessBatch threading the request context through to
// the wrapped source.
func (c *Counter) AccessBatchCtx(ctx context.Context, bindings [][]string) ([][]storage.Row, error) {
	rows, err := ProbeBatchCtx(ctx, c.inner, bindings)
	if err != nil {
		return nil, err
	}
	rel := c.inner.Relation().Name
	c.mu.Lock()
	c.stats.Accesses += len(bindings)
	c.stats.Batches++
	for i, b := range bindings {
		c.stats.Tuples += len(rows[i])
		a := Access{Relation: rel, Binding: append([]string(nil), b...)}
		c.distinctStr[a.Key()] = true
		if c.keepLog {
			c.log = append(c.log, a)
		}
	}
	c.mu.Unlock()
	return rows, nil
}

// AccessSyms forwards the interned batch to the wrapped source, recording
// one probe per binding and one round trip for the batch. Accounting runs
// on packed keys: the distinct-access set and the stats never materialize a
// string (the optional log does — it exists for debugging, not hot paths).
func (c *Counter) AccessSyms(ctx context.Context, bindings [][]sym.ID) ([][]storage.IRow, error) {
	rows, err := ProbeSyms(ctx, c.inner, bindings)
	if err != nil {
		return nil, err
	}
	rel := c.inner.Relation().Name
	c.mu.Lock()
	c.stats.Accesses += len(bindings)
	c.stats.Batches++
	for i, b := range bindings {
		c.stats.Tuples += len(rows[i])
		c.distinct.Put(b, struct{}{})
		if c.keepLog {
			c.log = append(c.log, Access{Relation: rel, Binding: sym.Strs(b)})
		}
	}
	c.mu.Unlock()
	return rows, nil
}

// Stats returns a snapshot of the counters.
func (c *Counter) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// DistinctAccesses returns the number of distinct access bindings probed.
func (c *Counter) DistinctAccesses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.distinct.Len() + len(c.distinctStr)
}

// AccessSet returns the set of distinct access keys probed so far.
func (c *Counter) AccessSet() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, c.distinct.Len()+len(c.distinctStr))
	rel := c.inner.Relation().Name
	c.distinct.Range(func(b []sym.ID, _ struct{}) bool {
		out[string(AppendSymAccessKey(nil, rel, b))] = true
		return true
	})
	for k := range c.distinctStr {
		out[k] = true
	}
	return out
}

// Log returns the recorded accesses (empty unless keepLog was set).
func (c *Counter) Log() []Access {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Access, len(c.log))
	copy(out, c.log)
	return out
}

// Reset clears counters and log.
func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
	c.log = nil
	c.distinct = sym.BindMap[struct{}]{}
	c.distinctStr = make(map[string]bool)
}

// Flaky decorates a wrapper with failure injection: the first FailAfter
// accesses succeed, every later access returns Err. Remote sources fail in
// practice (timeouts, rate limits); the executors must surface such errors
// without deadlocking or corrupting their caches, and the tests use this
// wrapper to prove it.
type Flaky struct {
	inner     Wrapper
	mu        sync.Mutex
	remaining int
	err       error
}

// NewFlaky wraps w so that accesses beyond failAfter return err.
func NewFlaky(w Wrapper, failAfter int, err error) *Flaky {
	return &Flaky{inner: w, remaining: failAfter, err: err}
}

// Relation returns the wrapped relation schema.
func (f *Flaky) Relation() *schema.Relation { return f.inner.Relation() }

// Epoch forwards the wrapped source's data epoch (0 when unversioned).
func (f *Flaky) Epoch() uint64 { return EpochOf(f.inner) }

// Access forwards to the wrapped source until the budget is exhausted.
func (f *Flaky) Access(binding []string) ([]storage.Row, error) {
	f.mu.Lock()
	ok := f.remaining > 0
	if ok {
		f.remaining--
	}
	f.mu.Unlock()
	if !ok {
		return nil, f.err
	}
	return f.inner.Access(binding)
}

// Registry is the set of wrapped sources of a schema, by relation name.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]Wrapper
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{sources: make(map[string]Wrapper)} }

// Bind registers the wrapper for its relation name, replacing any previous
// binding.
func (r *Registry) Bind(w Wrapper) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[w.Relation().Name] = w
}

// Source returns the wrapper for a relation, or nil.
func (r *Registry) Source(name string) Wrapper {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sources[name]
}

// Names returns the sorted bound relation names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sources))
	for n := range r.sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a registry in which every Snapshottable source is pinned
// to its current data version (everything else passes through unchanged).
// Executors snapshot once per execution, so a query in flight keeps reading
// one consistent epoch of every relation while Insert/Delete batches
// advance the live tables.
func (r *Registry) Snapshot() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := NewRegistry()
	for name, w := range r.sources {
		if s, ok := w.(Snapshottable); ok {
			out.sources[name] = s.Snapshot()
		} else {
			out.sources[name] = w
		}
	}
	return out
}

// Counted returns a copy of the registry in which every source is wrapped in
// a fresh Counter, together with the counters by relation name.
func (r *Registry) Counted(keepLog bool) (*Registry, map[string]*Counter) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := NewRegistry()
	counters := make(map[string]*Counter, len(r.sources))
	for name, w := range r.sources {
		c := NewCounter(w, keepLog)
		counters[name] = c
		out.sources[name] = c
	}
	return out, counters
}

// FromDatabase builds a registry of plain table sources for every relation
// of the schema, reading rows from same-named tables of db. Relations
// without a table get an empty table.
func FromDatabase(sch *schema.Schema, db *storage.Database, latency time.Duration) (*Registry, error) {
	reg := NewRegistry()
	for _, rel := range sch.Relations() {
		t := db.Table(rel.Name)
		if t == nil {
			t = storage.NewTable(rel.Name, rel.Arity())
		}
		src, err := NewTableSource(rel, t)
		if err != nil {
			return nil, err
		}
		if latency > 0 {
			src = src.WithLatency(latency)
		}
		reg.Bind(src)
	}
	return reg, nil
}
