package service

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"toorjah"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

// mutation is one randomly generated batch of the property test's history.
type mutation struct {
	rel    string
	delete bool
	rows   []storage.Row
}

// applyMutation routes one batch into a database through the same
// table-level entry points /ingest uses, so the WAL hook (when installed)
// observes it exactly like production traffic.
func applyMutation(db *storage.Database, m mutation) {
	t := db.Table(m.rel)
	if m.delete {
		t.DeleteAll(m.rows)
	} else {
		t.InsertAll(m.rows)
	}
}

// genMutations builds a random but replayable history over the pub schema:
// inserts and deletes drawn from small value pools, so deletes hit real
// rows, inserts collide with earlier ones, and some batches apply zero
// rows — every shape the WAL's applied-rows-only contract must absorb.
func genMutations(rng *rand.Rand, n int) []mutation {
	papers := []string{"p1", "p2", "p3", "p4"}
	persons := []string{"alice", "bob", "carol"}
	confs := []string{"icde", "vldb", "sigmod"}
	years := []string{"y2007", "y2008"}
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	row := func(rel string) storage.Row {
		switch rel {
		case "pub1":
			return storage.Row{pick(papers), pick(persons)}
		case "conf":
			return storage.Row{pick(papers), pick(confs), pick(years)}
		default: // rev
			return storage.Row{pick(persons), pick(confs), pick(years)}
		}
	}
	rels := []string{"pub1", "conf", "rev"}
	out := make([]mutation, n)
	for i := range out {
		m := mutation{rel: rels[rng.Intn(len(rels))], delete: rng.Intn(4) == 0}
		for j := 0; j < 1+rng.Intn(4); j++ {
			m.rows = append(m.rows, row(m.rel))
		}
		out[i] = m
	}
	return out
}

// answerSet executes the query with the given executor and returns the
// sorted answer multiset as comparable strings.
func answerSet(ctx context.Context, t *testing.T, sys *toorjah.System, query string, ex toorjah.Executor) []string {
	t.Helper()
	q, err := sys.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(ctx, toorjah.WithExecutor(ex))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, res.Answers.Len())
	for _, tup := range res.Answers.Tuples() {
		out = append(out, strings.Join(tup.Strings(), "\x1f"))
	}
	sort.Strings(out)
	return out
}

// sortedRows flattens a pinned snapshot's rows into sorted comparable
// strings.
func sortedRows(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(out)
	return out
}

// TestDurablePrefixReplayProperty is the randomized durability property:
// for any prefix of applied batches — interleaved with snapshots taken at
// random points — recovering the WAL directory yields a store
// observationally identical to a fresh store fed the same prefix: same
// epochs, same rows, and the same answers under every executor, with and
// without the access cache.
func TestDurablePrefixReplayProperty(t *testing.T) {
	sch, err := schema.Parse(pubSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		pubQuery,
		"q(C, Y) :- conf(P, C, Y)",
		"q(P, R) :- conf(P, C, Y), pub1(P, R)",
	}
	executors := []toorjah.Executor{
		toorjah.ExecutorFastFail, toorjah.ExecutorPipelined, toorjah.ExecutorNaive,
	}
	ctx := context.Background()

	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			history := genMutations(rng, 6+rng.Intn(14))
			prefix := history[:1+rng.Intn(len(history))]
			dir := t.TempDir()

			// The durable store: hook wired, batches applied, snapshots
			// taken at random points, then a clean close — the WAL tail
			// (or snapshot + tail) is all that persists.
			db, l, err := OpenDurable(sch, "", quietWALOpts(dir))
			if err != nil {
				t.Fatal(err)
			}
			// Nothing recovered and no CSV seed: materialize the schema's
			// tables so the history mutates the same hooked tables the
			// bound system serves.
			for _, rel := range sch.Relations() {
				if db.Table(rel.Name) != nil {
					continue
				}
				if _, err := db.Create(rel.Name, rel.Arity()); err != nil {
					t.Fatal(err)
				}
			}
			sys := toorjah.NewSystem(sch)
			if err := sys.BindDatabase(db); err != nil {
				t.Fatal(err)
			}
			WireWAL(sys, l)
			for _, m := range prefix {
				applyMutation(db, m)
				if rng.Intn(4) == 0 {
					if err := l.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery vs the never-persisted twin fed the same prefix.
			recDB, l2, err := OpenDurable(sch, "", quietWALOpts(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			twinDB := storage.NewDatabase()
			for _, rel := range sch.Relations() {
				if _, err := twinDB.Create(rel.Name, rel.Arity()); err != nil {
					t.Fatal(err)
				}
			}
			for _, m := range prefix {
				applyMutation(twinDB, m)
			}

			// Storage-level equivalence: epochs and live rows per relation.
			// A relation the WAL never saw (all its batches applied zero
			// rows) is absent from recovery; the restarted service binds it
			// fresh — epoch 1, no rows — which is what the twin holds too.
			for _, rel := range sch.Relations() {
				twinSnap := twinDB.Table(rel.Name).Snapshot()
				recEpoch, recRows := uint64(1), []storage.Row(nil)
				if rt := recDB.Table(rel.Name); rt != nil {
					s := rt.Snapshot()
					recEpoch, recRows = s.Epoch(), s.Rows()
				}
				if recEpoch != twinSnap.Epoch() {
					t.Errorf("%s: recovered epoch %d, twin %d", rel.Name, recEpoch, twinSnap.Epoch())
				}
				got, want := sortedRows(recRows), sortedRows(twinSnap.Rows())
				if strings.Join(got, ";") != strings.Join(want, ";") {
					t.Errorf("%s: recovered rows %v, twin %v", rel.Name, got, want)
				}
			}

			// Answer-level equivalence: every query, every executor, cache
			// on and off, must not distinguish the recovered store from the
			// twin.
			for _, cached := range []bool{false, true} {
				var sysOpts []toorjah.SystemOption
				if cached {
					sysOpts = append(sysOpts, toorjah.WithCache(toorjah.CacheOptions{}))
				}
				recSys := toorjah.NewSystem(sch, sysOpts...)
				if err := recSys.BindDatabase(recDB); err != nil {
					t.Fatal(err)
				}
				twinSys := toorjah.NewSystem(sch, sysOpts...)
				if err := twinSys.BindDatabase(twinDB); err != nil {
					t.Fatal(err)
				}
				for _, query := range queries {
					for _, ex := range executors {
						got := answerSet(ctx, t, recSys, query, ex)
						want := answerSet(ctx, t, twinSys, query, ex)
						if strings.Join(got, ";") != strings.Join(want, ";") {
							t.Errorf("cached=%v executor=%d %q: recovered answers %v, twin %v",
								cached, ex, query, got, want)
						}
					}
				}
			}
		})
	}
}
