// Package service is the toorjahd HTTP service behind cmd/toorjahd,
// importable so tools can run real in-process nodes: the full route table
// (/query streaming NDJSON, /ingest, /probe federation serving, /stats,
// /schema, /healthz, /metrics) over one toorjah.System, with warm prepared
// plans and the system's cross-query access cache shared by every request.
// cmd/loadgen uses it to stand up a live multi-node cluster inside one
// process — same handlers, same metrics — so a load run exercises exactly
// the code a deployment serves.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toorjah"
	"toorjah/internal/cq"
	"toorjah/internal/obs"
	"toorjah/internal/remote"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
	"toorjah/internal/wal"
)

// maxPreparedPlans bounds the warm-plan map: query texts carry arbitrary
// client-chosen constants, so distinct texts are unbounded in a
// long-running service; beyond the cap the oldest plan is dropped (plans
// are cheap to rebuild).
const maxPreparedPlans = 1024

// maxQueryBytes bounds the /query request body; longer bodies are rejected
// with 413 rather than silently truncated into a parse error.
const maxQueryBytes = 1 << 20

// DefaultMaxIngestBytes bounds the /ingest request body (toorjahd's
// -max-ingest-bytes overrides); one batch of NDJSON rows must fit in
// memory twice anyway (decoded rows + table), so the cap is a defensive
// bound, not a tuning knob.
const DefaultMaxIngestBytes = 8 << 20

// DefaultReadyTimeout bounds the peer reachability checks of GET
// /healthz?ready (toorjahd's -ready-timeout overrides).
const DefaultReadyTimeout = 2 * time.Second

// runnable is a prepared query of either kind — a single CQ or a UCQ whose
// disjuncts stream concurrently — behind the one entry point /query needs.
type runnable interface {
	Execute(ctx context.Context, options ...toorjah.ExecOption) (*toorjah.Result, error)
}

type Server struct {
	sys   *toorjah.System
	exec  toorjah.Options // executor tuning shared by every served query
	start time.Time

	mu        sync.Mutex
	plans     map[string]runnable
	planOrder []string // insertion order, for FIFO eviction
	planCap   int
	served    atomic.Int64
	ucqServed atomic.Int64

	srcMu        sync.Mutex
	sources      map[string]toorjah.SourceStats // per-relation accounting, summed over queries
	probeSources map[string]toorjah.SourceStats // per-relation accounting of probes served to peers

	probeH       *remote.Handler
	probesServed atomic.Int64

	// Ingestion state: the body cap and the per-relation accounting of
	// applied mutations behind /stats' data block.
	maxIngestBytes int64
	ingestsServed  atomic.Int64
	ingMu          sync.Mutex
	ingests        map[string]*ingestStats

	// Observability: the registry behind GET /metrics (counters and gauges
	// the service already accumulates become scrape-time collectors; the
	// histograms below are fed directly), the source-level metric families
	// every execution records into, the end-to-end latency histograms per
	// executor, the structured query log (nil = silent), and the peer
	// reachability timeout of /healthz?ready.
	metrics       *obs.Registry
	probeMetrics  *obs.ProbeMetrics
	queryDuration *obs.HistogramVec
	queryFirst    *obs.HistogramVec
	peerProbeDur  *obs.Histogram
	writeErrs     *obs.Counter
	queryLog      *obs.QueryLog
	readyTimeout  time.Duration

	// wal, when set (WithWAL), surfaces write-ahead-log counters on
	// /stats and /metrics.
	wal *wal.Log
}

// ingestStats accumulates one relation's served ingestion.
type ingestStats struct {
	Ingests  int64     `json:"ingests"`  // /ingest requests applied
	Inserted int64     `json:"inserted"` // rows added
	Deleted  int64     `json:"deleted"`  // rows removed
	LastAt   time.Time `json:"-"`        // wall clock of the last request
}

// Option configures a Server at construction.
type Option func(*Server)

// WithMaxIngestBytes caps one /ingest request body (default
// DefaultMaxIngestBytes); zero or negative keeps the default.
func WithMaxIngestBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxIngestBytes = n
		}
	}
}

// WithReadyTimeout bounds the peer reachability checks of /healthz?ready
// (default DefaultReadyTimeout); zero or negative keeps the default.
func WithReadyTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.readyTimeout = d
		}
	}
}

// WithQueryLog attaches a structured query log; nil keeps the server
// silent.
func WithQueryLog(l *obs.QueryLog) Option {
	return func(s *Server) { s.queryLog = l }
}

// New builds the route table's state over a fully bound system: the
// /probe endpoint snapshots the system's sources (behind its cross-query
// cache) at construction, so bind every relation — including remote
// attaches — first.
func New(sys *toorjah.System, execOpts toorjah.Options, opts ...Option) *Server {
	s := &Server{
		sys:            sys,
		exec:           execOpts,
		start:          time.Now(),
		plans:          make(map[string]runnable),
		planCap:        maxPreparedPlans,
		sources:        make(map[string]toorjah.SourceStats),
		probeSources:   make(map[string]toorjah.SourceStats),
		maxIngestBytes: DefaultMaxIngestBytes,
		ingests:        make(map[string]*ingestStats),
		readyTimeout:   DefaultReadyTimeout,
	}
	s.metrics = obs.NewRegistry()
	s.probeMetrics = obs.NewProbeMetrics(s.metrics)
	s.queryDuration = s.metrics.HistogramVec("toorjah_query_duration_seconds",
		"End-to-end latency of one served /query, by executor.", obs.LatencyBuckets, "executor")
	s.queryFirst = s.metrics.HistogramVec("toorjah_query_time_to_first_seconds",
		"Time until the first answer of one served /query streamed, by executor.", obs.LatencyBuckets, "executor")
	s.peerProbeDur = s.metrics.Histogram("toorjah_peer_probe_duration_seconds",
		"Latency of one /probe round trip served to a federated peer.", obs.LatencyBuckets)
	s.writeErrs = s.metrics.Counter("toorjah_response_write_errors_total",
		"Response writes dropped because the client disconnected mid-reply.")
	s.registerCollectors()
	obs.RegisterRuntimeMetrics(s.metrics)
	s.probeH = remote.NewHandler(sys.ProbeRegistry())
	s.probeH.Record = s.recordProbe
	for _, o := range opts {
		o(s)
	}
	return s
}

// registerCollectors turns every point-in-time statistic the service (and
// its system) already keeps into scrape-time series on /metrics: nothing is
// double-counted, a scrape renders the same accumulators /stats reports.
func (s *Server) registerCollectors() {
	m := s.metrics
	m.GaugeFunc("toorjah_uptime_seconds",
		"Seconds since the service started.",
		func() float64 { return time.Since(s.start).Seconds() })
	m.CounterFunc("toorjah_queries_served_total",
		"Queries served to completion by /query (unions included).",
		func() float64 { return float64(s.served.Load()) })
	m.CounterFunc("toorjah_ucqs_served_total",
		"Served queries that were unions of conjunctive queries.",
		func() float64 { return float64(s.ucqServed.Load()) })
	m.CounterFunc("toorjah_probes_served_total",
		"POST /probe round trips answered for federated peers.",
		func() float64 { return float64(s.probesServed.Load()) })
	m.CounterFunc("toorjah_ingests_served_total",
		"POST /ingest batches applied.",
		func() float64 { return float64(s.ingestsServed.Load()) })
	m.GaugeFunc("toorjah_prepared_plans",
		"Warm prepared query plans currently held.",
		func() float64 { return float64(s.planCount()) })
	m.CounterVecFunc("toorjah_ingest_rows_total",
		"Rows applied by POST /ingest, by relation and op.",
		[]string{"relation", "op"}, func(emit func([]string, float64)) {
			s.ingMu.Lock()
			defer s.ingMu.Unlock()
			for rel, st := range s.ingests {
				emit([]string{rel, "insert"}, float64(st.Inserted))
				emit([]string{rel, "delete"}, float64(st.Deleted))
			}
		})

	if c := s.sys.AccessCache(); c != nil {
		cacheCounter := func(name, help string, field func(toorjah.CacheStats) float64) {
			m.CounterVecFunc(name, help, []string{"relation"}, func(emit func([]string, float64)) {
				for rel, st := range c.Snapshot() {
					emit([]string{rel}, field(st))
				}
			})
		}
		cacheCounter("toorjah_cache_hits_total",
			"Accesses served from the cross-query cache, by relation.",
			func(st toorjah.CacheStats) float64 { return float64(st.Hits) })
		cacheCounter("toorjah_cache_misses_total",
			"Accesses that fell through the cross-query cache to the source, by relation.",
			func(st toorjah.CacheStats) float64 { return float64(st.Misses) })
		cacheCounter("toorjah_cache_coalesced_total",
			"Accesses merged into an identical probe already in flight (singleflight), by relation.",
			func(st toorjah.CacheStats) float64 { return float64(st.Collapsed) })
		cacheCounter("toorjah_cache_evictions_total",
			"Cache entries dropped by the LRU capacity bound, by relation.",
			func(st toorjah.CacheStats) float64 { return float64(st.Evictions) })
		cacheCounter("toorjah_cache_expirations_total",
			"Cache entries dropped by TTL expiry, by relation.",
			func(st toorjah.CacheStats) float64 { return float64(st.Expirations) })
		m.GaugeVecFunc("toorjah_cache_entries",
			"Accesses currently cached, by relation.",
			[]string{"relation"}, func(emit func([]string, float64)) {
				for rel, st := range c.Snapshot() {
					emit([]string{rel}, float64(st.Entries))
				}
			})
	}

	remoteCounter := func(name, help string, field func(toorjah.RemoteTelemetry) float64) {
		m.CounterVecFunc(name, help, []string{"peer", "relation"}, func(emit func([]string, float64)) {
			for _, p := range s.sys.RemotePeers() {
				for rel, t := range p.Telemetry() {
					emit([]string{p.Base(), rel}, field(t))
				}
			}
		})
	}
	remoteCounter("toorjah_remote_round_trips_total",
		"Outbound HTTP probe round trips to a federation peer (retries included), by peer and relation.",
		func(t toorjah.RemoteTelemetry) float64 { return float64(t.RoundTrips) })
	remoteCounter("toorjah_remote_retries_total",
		"Outbound probe attempts that were retries, by peer and relation.",
		func(t toorjah.RemoteTelemetry) float64 { return float64(t.Retries) })
	remoteCounter("toorjah_remote_breaker_opens_total",
		"Times a peer relation's circuit breaker opened, by peer and relation.",
		func(t toorjah.RemoteTelemetry) float64 { return float64(t.BreakerOpens) })
	remoteCounter("toorjah_remote_epoch_changes_total",
		"Times a peer relation's data epoch changed between probes (stale-snapshot detections), by peer and relation.",
		func(t toorjah.RemoteTelemetry) float64 { return float64(t.EpochChanges) })
	remoteCounter("toorjah_remote_latency_seconds_total",
		"Cumulative wall-clock probe latency spent on a peer relation, by peer and relation.",
		func(t toorjah.RemoteTelemetry) float64 { return t.LatencyMS / 1000 })
	m.GaugeVecFunc("toorjah_remote_breaker_state",
		"Circuit breaker state per peer relation: 0 closed, 1 half-open, 2 open.",
		[]string{"peer", "relation"}, func(emit func([]string, float64)) {
			for _, p := range s.sys.RemotePeers() {
				for rel, t := range p.Telemetry() {
					emit([]string{p.Base(), rel}, breakerStateValue(t.BreakerState))
				}
			}
		})
	m.GaugeVecFunc("toorjah_remote_epoch",
		"Last observed data epoch of a peer relation, by peer and relation.",
		[]string{"peer", "relation"}, func(emit func([]string, float64)) {
			for _, p := range s.sys.RemotePeers() {
				for rel, t := range p.Telemetry() {
					emit([]string{p.Base(), rel}, float64(t.Epoch))
				}
			}
		})

	m.GaugeVecFunc("toorjah_relation_epoch",
		"Current data version of a relation (advances once per mutating batch; 0 = unversioned).",
		[]string{"relation"}, func(emit func([]string, float64)) {
			for rel, info := range s.sys.DataInfo() {
				emit([]string{rel}, float64(info.Epoch))
			}
		})
	m.GaugeVecFunc("toorjah_relation_rows",
		"Live row count of a locally served relation.",
		[]string{"relation"}, func(emit func([]string, float64)) {
			for rel, info := range s.sys.DataInfo() {
				if info.Local {
					emit([]string{rel}, float64(info.Rows))
				}
			}
		})
}

// breakerStateValue maps a breaker state name onto the gauge scale.
func breakerStateValue(state string) float64 {
	switch state {
	case "closed":
		return 0
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return -1
}

// recordProbe folds one served /probe into the federation accounting (a
// request is one round trip of `accesses` bindings), the probe-latency
// histogram, and — carrying the calling query's trace ID — the query log,
// so a federated trace stitches across nodes in the logs.
func (s *Server) recordProbe(p remote.ProbeRecord) {
	s.probesServed.Add(1)
	s.peerProbeDur.Observe(p.Elapsed.Seconds())
	s.queryLog.Probe(p.TraceID, p.Relation, p.Accesses, p.Tuples, p.Elapsed)
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	cur := s.probeSources[p.Relation]
	cur.Add(toorjah.SourceStats{Accesses: p.Accesses, Batches: 1, Tuples: p.Tuples})
	s.probeSources[p.Relation] = cur
}

// probeSnapshot copies the served-probe accounting.
func (s *Server) probeSnapshot() (map[string]toorjah.SourceStats, toorjah.SourceStats) {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	out := make(map[string]toorjah.SourceStats, len(s.probeSources))
	var totals toorjah.SourceStats
	for rel, st := range s.probeSources {
		out[rel] = st
		totals.Add(st)
	}
	return out, totals
}

// recordSources folds one execution's per-relation accounting into the
// service totals (accesses, source round trips, extracted tuples).
func (s *Server) recordSources(stats map[string]toorjah.SourceStats) {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	for rel, st := range stats {
		cur := s.sources[rel]
		cur.Add(st)
		s.sources[rel] = cur
	}
}

// sourceSnapshot copies the service-wide per-relation accounting.
func (s *Server) sourceSnapshot() (map[string]toorjah.SourceStats, toorjah.SourceStats) {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	out := make(map[string]toorjah.SourceStats, len(s.sources))
	var totals toorjah.SourceStats
	for rel, st := range s.sources {
		out[rel] = st
		totals.Add(st)
	}
	return out, totals
}

// handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.Handle("/probe", s.probeH)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/schema", s.handleSchema)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.metrics.Handler())
	return mux
}

// handleHealthz is the liveness probe; with ?ready it becomes the readiness
// view, checking every attached federation peer's reachability in parallel
// and answering 503 when any is down (so a load balancer can stop routing
// federated queries to a node whose peers are unreachable).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !r.URL.Query().Has("ready") {
		s.writeString(w, "ok\n")
		return
	}
	type peerStatus struct {
		Reachable bool   `json:"reachable"`
		Error     string `json:"error,omitempty"`
	}
	resp := struct {
		Ready bool                  `json:"ready"`
		Peers map[string]peerStatus `json:"peers"`
	}{Ready: true, Peers: make(map[string]peerStatus)}

	ctx, cancel := context.WithTimeout(r.Context(), s.readyTimeout)
	defer cancel()
	peers := s.sys.RemotePeers()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *toorjah.RemotePeer) {
			defer wg.Done()
			err := p.Healthy(ctx)
			st := peerStatus{Reachable: err == nil}
			if err != nil {
				st.Error = err.Error()
			}
			mu.Lock()
			resp.Peers[p.Base()] = st
			if err != nil {
				resp.Ready = false
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	s.encode(enc, resp)
}

// encode writes one JSON value to the response stream, counting a failed
// write; the false return tells a streaming caller the client is gone.
func (s *Server) encode(enc *json.Encoder, v any) bool {
	if err := enc.Encode(v); err != nil {
		s.writeErrs.Inc()
		return false
	}
	return true
}

// writeString is io.WriteString to the response with the same
// dropped-write accounting.
func (s *Server) writeString(w io.Writer, text string) {
	if _, err := io.WriteString(w, text); err != nil {
		s.writeErrs.Inc()
	}
}

// prepared returns the warm plan for a query text — a single CQ, or a UCQ
// when the text has several disjunct lines — planning it on first use.
// Planning runs outside the lock so one slow-to-plan query cannot stall
// every other request; concurrent first requests for the same text may plan
// it twice, and the first to finish wins.
func (s *Server) prepared(text string) (runnable, error) {
	s.mu.Lock()
	if q, ok := s.plans[text]; ok {
		s.mu.Unlock()
		return q, nil
	}
	s.mu.Unlock()
	var q runnable
	var err error
	if cq.IsUnion(text) {
		q, err = s.sys.PrepareUCQ(text)
	} else {
		q, err = s.sys.Prepare(text)
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.plans[text]; ok {
		return existing, nil
	}
	if len(s.plans) >= s.planCap {
		oldest := s.planOrder[0]
		s.planOrder = s.planOrder[1:]
		delete(s.plans, oldest)
	}
	s.plans[text] = q
	s.planOrder = append(s.planOrder, text)
	return q, nil
}

func (s *Server) planCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.plans)
}

// answerLine / doneLine / errorLine are the NDJSON frames of /query.
type answerLine struct {
	Answer []string `json:"answer"`
}

type doneLine struct {
	Done      bool    `json:"done"`
	Answers   int     `json:"answers"`
	Accesses  int     `json:"accesses"`
	Batches   int     `json:"batches"`
	Tuples    int     `json:"tuples"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Truncated bool    `json:"truncated,omitempty"`
	// Disjuncts is the disjunct count of a UCQ request (absent for a CQ).
	Disjuncts int `json:"disjuncts,omitempty"`
	// TraceID identifies the query in this node's query log and, for
	// federated queries, in every probed peer's log (the ID rides the
	// X-Toorjah-Trace header).
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the query's span tree (query → disjunct/pipeline → probe →
	// remote round trip), present only when the request asked for it with
	// ?trace=1.
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

type errorLine struct {
	Error string `json:"error"`
}

// handleQuery answers one conjunctive query — or a union of them, one
// disjunct per line — streaming each distinct answer as an NDJSON line the
// moment the engine derives it, then a final summary line. The query text
// comes from the q parameter (GET) or the request body (POST); limit, when
// positive, stops after that many answers.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var text string
	switch r.Method {
	case http.MethodGet:
		text = r.URL.Query().Get("q")
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxQueryBytes))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				http.Error(w, fmt.Sprintf("query body exceeds %d bytes", tooLarge.Limit),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		text = string(body)
		if strings.TrimSpace(text) == "" {
			text = r.URL.Query().Get("q")
		}
	default:
		http.Error(w, "use GET ?q= or POST with the query as body", http.StatusMethodNotAllowed)
		return
	}
	if strings.TrimSpace(text) == "" {
		http.Error(w, "empty query; pass ?q= or a request body", http.StatusBadRequest)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	q, err := s.prepared(text)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	executor := "pipelined"
	if _, ok := q.(*toorjah.UnionQuery); ok {
		executor = "union"
	}

	// Every query gets a trace ID — it names the query in this node's log
	// and propagates to probed peers — but the span tree is only collected
	// when the client asks (?trace=1): the untraced path pays one context
	// value lookup per probe batch and nothing else.
	traceID := obs.NewTraceID()
	// A disconnected client cancels the run, so the executor stops
	// spending accesses on an answer nobody will read. A failed answer
	// write cancels it too: the TCP session can outlive the reader.
	ctx, cancel := context.WithCancel(obs.ContextWithTraceID(r.Context(), traceID))
	defer cancel()
	var trace *obs.Trace
	if r.URL.Query().Get("trace") == "1" {
		trace = obs.NewTrace(traceID, "query")
		trace.Root.SetAttr("executor", executor)
		ctx = obs.ContextWithSpan(ctx, trace.Root)
	}
	// The per-query observability bundle: the shared probe metric families
	// plus this query's demanded-access counter — demanded minus probed is
	// what the cross-query cache absorbed for this query.
	execObs := &obs.ExecObs{Probe: s.probeMetrics}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	opts := s.exec
	opts.Limit = limit
	opts.Obs = execObs
	// OnAnswer calls are serialized by both kinds of runnable — a CQ streams
	// from the goroutine executing the query, a UCQ serializes its concurrent
	// disjuncts — so writing to the response here needs no locking. Answers
	// materialize to strings only here, at the NDJSON boundary.
	res, err := q.Execute(ctx, toorjah.WithExecOptions(opts),
		toorjah.OnAnswer(func(t toorjah.Tuple) {
			if !s.encode(enc, answerLine{Answer: t.Strings()}) {
				cancel() // nobody is reading: abort the execution, not just the stream
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}))
	if err != nil {
		s.queryLog.Query(obs.QueryRecord{TraceID: traceID, Query: text, Executor: executor, Err: err})
		// The stream may already be half-written; report the error in-band.
		s.encode(enc, errorLine{Error: err.Error()})
		return
	}
	s.recordSources(res.Stats)
	s.queryDuration.With(executor).Observe(res.Elapsed.Seconds())
	if res.TimeToFirst > 0 {
		s.queryFirst.With(executor).Observe(res.TimeToFirst.Seconds())
	}
	s.queryLog.Query(obs.QueryRecord{
		TraceID:     traceID,
		Query:       text,
		Executor:    executor,
		Answers:     res.Answers.Len(),
		Accesses:    res.TotalAccesses(),
		Demanded:    execObs.Demanded(),
		RoundTrips:  res.TotalBatches(),
		Elapsed:     res.Elapsed,
		TimeToFirst: res.TimeToFirst,
		Truncated:   res.Truncated,
	})
	if r.Context().Err() != nil {
		return // client gone; nobody is reading the summary
	}
	s.served.Add(1)
	done := doneLine{
		Done:      true,
		Answers:   res.Answers.Len(),
		Accesses:  res.TotalAccesses(),
		Batches:   res.TotalBatches(),
		Tuples:    res.TotalTuples(),
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
		Truncated: res.Truncated,
		TraceID:   traceID,
	}
	if u, ok := q.(*toorjah.UnionQuery); ok {
		s.ucqServed.Add(1)
		done.Disjuncts = len(u.Disjuncts())
	}
	if trace != nil {
		trace.Root.End()
		tj := trace.JSON()
		done.Trace = &tj
	}
	s.encode(enc, done)
}

// ingestResponse is the JSON payload answering one applied /ingest.
type ingestResponse struct {
	Relation string `json:"relation"`
	Op       string `json:"op"`
	// Rows is how many rows the request carried; Applied how many actually
	// changed the relation (duplicates and absent deletions are no-ops).
	Rows    int `json:"rows"`
	Applied int `json:"applied"`
	// Epoch is the relation's data version after the batch. Queries already
	// running keep their pinned older version; every query starting after
	// this response sees exactly this epoch or a later one.
	Epoch     uint64  `json:"epoch"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// handleIngest applies one batch of live mutations to a relation:
//
//	POST /ingest?relation=rev[&op=insert|delete]
//
// with an NDJSON body, one JSON string array per line ("["alice","icde",
// "y2008"]"), each of the relation's arity. The whole body is one batch —
// one copy-on-write step, at most one epoch advance — applied atomically
// with respect to queries: in-flight executions keep their pinned version,
// and the cross-query cache stops serving the relation's older extractions
// (negative entries included) the moment the epoch advances. Bodies beyond
// -max-ingest-bytes are rejected with 413; nothing is applied on a parse
// or arity error.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST with NDJSON rows as the body", http.StatusMethodNotAllowed)
		return
	}
	rel := r.URL.Query().Get("relation")
	if rel == "" {
		http.Error(w, "missing ?relation=", http.StatusBadRequest)
		return
	}
	op := r.URL.Query().Get("op")
	if op == "" {
		op = "insert"
	}
	if op != "insert" && op != "delete" {
		http.Error(w, "op must be insert or delete", http.StatusBadRequest)
		return
	}
	relSchema := s.sys.Schema().Relation(rel)
	if relSchema == nil {
		http.Error(w, "unknown relation "+rel, http.StatusNotFound)
		return
	}

	rows, err := decodeIngestRows(http.MaxBytesReader(w, r.Body, s.maxIngestBytes), relSchema.Arity())
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("ingest body exceeds %d bytes", tooLarge.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	start := time.Now()
	var applied int
	if op == "insert" {
		applied, err = s.sys.Insert(rel, rows...)
	} else {
		applied, err = s.sys.Delete(rel, rows...)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.ingestsServed.Add(1)
	s.recordIngest(rel, op, applied)

	w.Header().Set("Content-Type", "application/json")
	s.encode(json.NewEncoder(w), ingestResponse{
		Relation:  rel,
		Op:        op,
		Rows:      len(rows),
		Applied:   applied,
		Epoch:     s.sys.RelationEpoch(rel),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// decodeIngestRows parses an NDJSON ingest body — one JSON string array
// per line, each of the given arity — stopping at the first malformed or
// wrong-arity row. The returned error wraps the decoder's, so a body cut
// off by http.MaxBytesReader still surfaces as *http.MaxBytesError for
// the handler's 413 path.
func decodeIngestRows(r io.Reader, arity int) ([]toorjah.Row, error) {
	dec := json.NewDecoder(r)
	var rows []toorjah.Row
	for {
		var row []string
		err := dec.Decode(&row)
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", len(rows)+1, err)
		}
		if len(row) != arity {
			return nil, fmt.Errorf("row %d has arity %d, want %d", len(rows)+1, len(row), arity)
		}
		rows = append(rows, toorjah.Row(row))
	}
}

// recordIngest folds one applied /ingest into the per-relation accounting.
func (s *Server) recordIngest(rel, op string, applied int) {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	st := s.ingests[rel]
	if st == nil {
		st = &ingestStats{}
		s.ingests[rel] = st
	}
	st.Ingests++
	if op == "insert" {
		st.Inserted += int64(applied)
	} else {
		st.Deleted += int64(applied)
	}
	st.LastAt = time.Now()
}

// statsResponse is the payload of /stats.
type statsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueriesServed int64   `json:"queries_served"`
	// UCQsServed counts the served queries that were unions of CQs (already
	// included in QueriesServed).
	UCQsServed    int64             `json:"ucqs_served"`
	PreparedPlans int               `json:"prepared_plans"`
	Sources       *sourceStatsBlock `json:"sources"`
	Cache         *cacheStatsBlock  `json:"cache"`
	// ProbesServed counts the /probe round trips this node answered for
	// federated peers; Probes breaks them down per relation (accesses =
	// bindings probed, batches = round trips, tuples streamed).
	ProbesServed int64             `json:"probes_served"`
	Probes       *sourceStatsBlock `json:"probes,omitempty"`
	// RemotePeers is the outbound federation telemetry: for every attached
	// peer, per sourced relation, the HTTP round trips, retries, circuit
	// breaker opens, cumulative probe latency, and last observed data epoch
	// (epoch_changes counts stale-snapshot detections) this node spent on
	// or learned from it.
	RemotePeers map[string]map[string]toorjah.RemoteTelemetry `json:"remote_peers,omitempty"`
	// IngestsServed counts the applied POST /ingest requests; Data is the
	// per-relation freshness view (current epoch, live rows, when the data
	// last changed, and what ingestion it has absorbed).
	IngestsServed int64                   `json:"ingests_served"`
	Data          map[string]dataRelStats `json:"data,omitempty"`
	// WAL is the write-ahead-log accounting (appends, bytes, syncs,
	// segment rotation/archival, snapshots, and what startup recovery
	// reassembled); present only when the server runs durable.
	WAL *wal.Stats `json:"wal,omitempty"`
}

// dataRelStats is one relation's freshness entry in /stats.
type dataRelStats struct {
	// Epoch is the relation's current data version (advances once per
	// mutating batch; 0 = unversioned source).
	Epoch uint64 `json:"epoch"`
	// Rows is the live row count, -1 when the source is not a local table.
	Rows int `json:"rows"`
	// Local reports whether the relation is served from a local table.
	Local bool `json:"local"`
	// LastModified is when the relation's data last changed (RFC 3339) —
	// the boot-time CSV load counts; absent only for an empty untouched
	// table or a non-local source. LastIngest isolates HTTP ingestion.
	LastModified string `json:"last_modified,omitempty"`
	// LastIngest is when /ingest last touched the relation (absent when it
	// never did); Ingests/Inserted/Deleted break down what was applied.
	LastIngest string `json:"last_ingest,omitempty"`
	Ingests    int64  `json:"ingests,omitempty"`
	Inserted   int64  `json:"inserted,omitempty"`
	Deleted    int64  `json:"deleted,omitempty"`
}

// sourceStatsBlock aggregates per-relation source accounting over every
// query the service has executed: accesses (the paper's cost metric),
// batches (actual round trips — accesses/batches is the mean batch size
// bought by -max-batch), and extracted tuples.
type sourceStatsBlock struct {
	Totals    toorjah.SourceStats            `json:"totals"`
	Relations map[string]toorjah.SourceStats `json:"relations"`
}

type cacheStatsBlock struct {
	Entries   int                           `json:"entries"`
	Totals    toorjah.CacheStats            `json:"totals"`
	Relations map[string]toorjah.CacheStats `json:"relations"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueriesServed: s.served.Load(),
		UCQsServed:    s.ucqServed.Load(),
		PreparedPlans: s.planCount(),
	}
	if rels, totals := s.sourceSnapshot(); len(rels) > 0 {
		resp.Sources = &sourceStatsBlock{Totals: totals, Relations: rels}
	}
	resp.ProbesServed = s.probesServed.Load()
	if rels, totals := s.probeSnapshot(); len(rels) > 0 {
		resp.Probes = &sourceStatsBlock{Totals: totals, Relations: rels}
	}
	if peers := s.sys.RemotePeers(); len(peers) > 0 {
		resp.RemotePeers = make(map[string]map[string]toorjah.RemoteTelemetry, len(peers))
		for _, p := range peers {
			resp.RemotePeers[p.Base()] = p.Telemetry()
		}
	}
	resp.IngestsServed = s.ingestsServed.Load()
	if info := s.sys.DataInfo(); len(info) > 0 {
		resp.Data = make(map[string]dataRelStats, len(info))
		s.ingMu.Lock()
		for name, ri := range info {
			d := dataRelStats{Epoch: ri.Epoch, Rows: ri.Rows, Local: ri.Local}
			if !ri.ModifiedAt.IsZero() {
				d.LastModified = ri.ModifiedAt.UTC().Format(time.RFC3339)
			}
			if ist := s.ingests[name]; ist != nil {
				d.Ingests, d.Inserted, d.Deleted = ist.Ingests, ist.Inserted, ist.Deleted
				d.LastIngest = ist.LastAt.UTC().Format(time.RFC3339)
			}
			resp.Data[name] = d
		}
		s.ingMu.Unlock()
	}
	if s.wal != nil {
		st := s.wal.Stats()
		resp.WAL = &st
	}
	if c := s.sys.AccessCache(); c != nil {
		// One snapshot pass; totals and entry count derive from it rather
		// than re-walking (and re-locking) every cache shard.
		snap := c.Snapshot()
		var totals toorjah.CacheStats
		for _, st := range snap {
			totals.Add(st)
		}
		resp.Cache = &cacheStatsBlock{
			Entries:   int(totals.Entries),
			Totals:    totals,
			Relations: snap,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	s.encode(enc, resp)
}

// handleSchema serves the schema in the paper's notation — the federation
// discovery format — followed by "# epoch" comment lines advertising each
// relation's current data version, so an attaching peer keys its cache by
// the right version before its first probe.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	for _, rel := range s.sys.Schema().Relations() {
		fmt.Fprintln(&b, rel)
	}
	epochs := make(map[string]uint64)
	for name, info := range s.sys.DataInfo() {
		epochs[name] = info.Epoch
	}
	remote.AppendSchemaEpochs(&b, epochs)
	s.writeString(w, b.String())
}

// LoadDatabase reads one CSV file per schema relation from dir; missing
// files become empty sources. It is the boot-time loader of cmd/toorjahd
// and of any other harness that stands a Server up over CSV data.
func LoadDatabase(sch *schema.Schema, dir string) (*storage.Database, error) {
	db := storage.NewDatabase()
	for _, rel := range sch.Relations() {
		path := filepath.Join(dir, rel.Name+".csv")
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		tab, err := storage.ReadCSV(rel.Name, rel.Arity(), f)
		f.Close()
		if err != nil {
			return nil, err
		}
		dbt, err := db.Create(rel.Name, rel.Arity())
		if err != nil {
			return nil, err
		}
		dbt.InsertAll(tab.Snapshot().Rows())
	}
	return db, nil
}
