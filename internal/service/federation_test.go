package service

// Federation acceptance tests: a toorjahd node must answer any CQ or UCQ
// over relations sourced from other toorjahd nodes exactly as it would over
// local tables — same answers, same per-relation access counts — across all
// three executors, with and without the cross-query cache, batched and
// unbatched; and injected transport faults (timeouts, 5xx) must be retried
// or surfaced as errors/truncated sound subsets, never as wrong answers.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"toorjah"
	"toorjah/internal/cq"
	"toorjah/internal/gen"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

// fastRemote keeps the resilience delays test-sized.
func fastRemote() toorjah.RemoteOptions {
	return toorjah.RemoteOptions{
		Timeout:   5 * time.Second,
		RetryBase: time.Millisecond,
		RetryMax:  10 * time.Millisecond,
	}
}

// startToorjahd runs a real toorjahd server (the full route table, /probe
// included) over the given relations and rows; wrap, when set, intercepts
// the handler for fault injection.
func startToorjahd(t *testing.T, rels []*schema.Relation, db *storage.Database, wrap func(http.Handler) http.Handler) string {
	t.Helper()
	sch, err := schema.New(rels...)
	if err != nil {
		t.Fatal(err)
	}
	sys := toorjah.NewSystem(sch)
	if err := sys.BindDatabase(db); err != nil {
		t.Fatal(err)
	}
	h := http.Handler(New(sys, toorjah.Options{}).Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL
}

// subDatabase copies the named tables out of a full instance.
func subDatabase(t *testing.T, db *storage.Database, rels []*schema.Relation) *storage.Database {
	t.Helper()
	out := storage.NewDatabase()
	for _, rel := range rels {
		tab, err := out.Create(rel.Name, rel.Arity())
		if err != nil {
			t.Fatal(err)
		}
		if src := db.Table(rel.Name); src != nil {
			tab.InsertAll(src.Rows())
		}
	}
	return out
}

// execKind selects one of the three executors through the facade.
type execKind string

const (
	execFastFail  execKind = "fastfail"
	execNaive     execKind = "naive"
	execPipelined execKind = "pipelined"
)

var allExecutors = []execKind{execFastFail, execNaive, execPipelined}

// runCQ executes a prepared query with the chosen executor.
func runCQ(q *toorjah.Query, kind execKind) (*toorjah.Result, error) {
	switch kind {
	case execNaive:
		return q.ExecuteNaive()
	case execPipelined:
		return q.Stream(toorjah.PipeOptions{}, func(toorjah.Tuple) {})
	default:
		return q.Execute(context.Background())
	}
}

// runUCQ executes a prepared union with the chosen executor.
func runUCQ(u *toorjah.UnionQuery, kind execKind) (*toorjah.Result, error) {
	switch kind {
	case execNaive:
		return u.ExecuteNaive()
	case execPipelined:
		return u.Stream(toorjah.PipeOptions{}, func(toorjah.Tuple) {})
	default:
		return u.Execute(context.Background())
	}
}

// compareResults asserts the federated run reproduced the local one: same
// answers, same per-relation accesses and extracted tuples. Round trips are
// not compared — batch grouping is scheduling-dependent; the access count
// is the paper's cost model and must be exact.
func compareResults(t *testing.T, label string, got, want *toorjah.Result) {
	t.Helper()
	if g, w := strings.Join(got.SortedAnswers(), ";"), strings.Join(want.SortedAnswers(), ";"); g != w {
		t.Errorf("%s: answers = %q, want %q", label, g, w)
	}
	rels := make(map[string]bool)
	for r := range got.Stats {
		rels[r] = true
	}
	for r := range want.Stats {
		rels[r] = true
	}
	for r := range rels {
		g, w := got.Stats[r], want.Stats[r]
		if g.Accesses != w.Accesses || g.Tuples != w.Tuples {
			t.Errorf("%s: relation %s: accesses/tuples = %d/%d, want %d/%d",
				label, r, g.Accesses, g.Tuples, w.Accesses, w.Tuples)
		}
	}
}

// federationWorkload is one randomized scenario: a generated schema and
// instance, its relations sharded over two toorjahd peers plus this node,
// and the attach specs for the shards.
type federationWorkload struct {
	sch      *schema.Schema
	db       *storage.Database
	local    []*schema.Relation
	specs    []string // one per peer
	queries  []*cq.CQ
	ucq      *cq.UCQ
	shardOf  map[string]string
	peerURLs []string
}

// newFederationWorkload generates the scenario for one seed: every third
// relation stays local, the rest are sharded round-robin across two peers.
func newFederationWorkload(t *testing.T, seed int64) *federationWorkload {
	t.Helper()
	cfg := gen.Scaled()
	// Small instances: the naive executor probes input-domain cross
	// products, and every probe here is a real HTTP round trip.
	cfg.MinTuples, cfg.MaxTuples = 5, 30
	cfg.MinDomainValues, cfg.MaxDomainValues = 5, 15
	g := gen.New(seed, cfg)
	sch := g.Schema()
	db := g.Instance(sch)

	var local, peerA, peerB []*schema.Relation
	shardOf := make(map[string]string)
	for i, rel := range sch.Relations() {
		switch i % 3 {
		case 0:
			local = append(local, rel)
			shardOf[rel.Name] = "local"
		case 1:
			peerA = append(peerA, rel)
			shardOf[rel.Name] = "peerA"
		default:
			peerB = append(peerB, rel)
			shardOf[rel.Name] = "peerB"
		}
	}
	if len(peerA) == 0 || len(peerB) == 0 {
		t.Fatalf("seed %d: schema of %d relations left a peer empty", seed, sch.Len())
	}
	w := &federationWorkload{sch: sch, db: db, local: local, shardOf: shardOf}
	for _, shard := range [][]*schema.Relation{peerA, peerB} {
		url := startToorjahd(t, shard, subDatabase(t, db, shard), nil)
		var names []string
		for _, rel := range shard {
			names = append(names, rel.Name)
		}
		w.peerURLs = append(w.peerURLs, url)
		w.specs = append(w.specs, url+"="+strings.Join(names, ","))
	}

	// A few generated queries (the generator only emits answerable ones),
	// plus a UCQ built from two same-arity queries when the draw allows.
	byArity := make(map[int][]*cq.CQ)
	for tries := 0; tries < 60 && len(w.queries) < 3; tries++ {
		q, ok := g.Query(sch, fmt.Sprintf("q%d", len(w.queries)))
		if !ok {
			continue
		}
		w.queries = append(w.queries, q)
		a := len(q.Head)
		byArity[a] = append(byArity[a], q)
		if w.ucq == nil && len(byArity[a]) == 2 {
			d1, d2 := byArity[a][0].Clone(), byArity[a][1].Clone()
			d2.Name = d1.Name
			w.ucq = &cq.UCQ{Name: d1.Name, Disjuncts: []*cq.CQ{d1, d2}}
		}
	}
	if len(w.queries) == 0 {
		t.Fatalf("seed %d: no answerable query generated", seed)
	}
	return w
}

// localSystem binds the full instance locally.
func (w *federationWorkload) localSystem(t *testing.T, opts ...toorjah.SystemOption) *toorjah.System {
	t.Helper()
	sys := toorjah.NewSystem(w.sch, opts...)
	if err := sys.BindDatabase(w.db); err != nil {
		t.Fatal(err)
	}
	return sys
}

// federatedSystem binds the local shard's tables and attaches both peers.
func (w *federationWorkload) federatedSystem(t *testing.T, opts ...toorjah.SystemOption) *toorjah.System {
	t.Helper()
	opts = append([]toorjah.SystemOption{toorjah.WithRemoteOptions(fastRemote())}, opts...)
	sys := toorjah.NewSystem(w.sch, opts...)
	if err := sys.BindDatabase(subDatabase(t, w.db, w.local)); err != nil {
		t.Fatal(err)
	}
	for _, spec := range w.specs {
		if err := sys.AttachRemote(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestFederationEquivalenceRandomized is the acceptance property: randomized
// CQs and UCQs answered over two in-process toorjahd peers return exactly
// the answers and per-relation access counts of the same query over local
// tables, across all three executors, with and without the cache, batched
// and unbatched.
func TestFederationEquivalenceRandomized(t *testing.T) {
	seeds := []int64{7, 19}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		w := newFederationWorkload(t, seed)
		for _, cached := range []bool{false, true} {
			for _, maxBatch := range []int{-1, 0} { // unbatched / default batching
				var opts []toorjah.SystemOption
				if cached {
					opts = append(opts, toorjah.WithCache(toorjah.CacheOptions{}))
				}
				opts = append(opts, toorjah.WithMaxBatch(maxBatch))
				for _, kind := range allExecutors {
					for qi, q := range w.queries {
						label := fmt.Sprintf("seed=%d %s cached=%v batch=%d q%d", seed, kind, cached, maxBatch, qi)
						// Fresh systems per run: cache state must not leak
						// across combinations.
						lq, err := w.localSystem(t, opts...).PrepareCQ(q)
						if err != nil {
							t.Fatalf("%s: local prepare: %v", label, err)
						}
						want, err := runCQ(lq, kind)
						if err != nil {
							t.Fatalf("%s: local run: %v", label, err)
						}
						fq, err := w.federatedSystem(t, opts...).PrepareCQ(q)
						if err != nil {
							t.Fatalf("%s: federated prepare: %v", label, err)
						}
						got, err := runCQ(fq, kind)
						if err != nil {
							t.Fatalf("%s: federated run: %v", label, err)
						}
						compareResults(t, label, got, want)
					}
					if w.ucq != nil {
						label := fmt.Sprintf("seed=%d %s cached=%v batch=%d ucq", seed, kind, cached, maxBatch)
						lu, err := w.localSystem(t, opts...).PrepareUCQFrom(w.ucq)
						if err != nil {
							t.Fatalf("%s: local prepare: %v", label, err)
						}
						want, err := runUCQ(lu, kind)
						if err != nil {
							t.Fatalf("%s: local run: %v", label, err)
						}
						fu, err := w.federatedSystem(t, opts...).PrepareUCQFrom(w.ucq)
						if err != nil {
							t.Fatalf("%s: federated prepare: %v", label, err)
						}
						got, err := runUCQ(fu, kind)
						if err != nil {
							t.Fatalf("%s: federated run: %v", label, err)
						}
						compareResults(t, label, got, want)
					}
				}
			}
		}
	}
}

// faultingPeer wraps a node handler so /probe requests are failed while
// fail() says so.
func faultingPeer(fail func(n int64) bool, how http.HandlerFunc) (func(http.Handler) http.Handler, *atomic.Int64) {
	var probes atomic.Int64
	return func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/probe" && fail(probes.Add(1)) {
				how(wr, r)
				return
			}
			inner.ServeHTTP(wr, r)
		})
	}, &probes
}

// TestFederationFaults: transient 5xx and timeouts on the wire are retried
// into exact answers; a hard-down peer surfaces as an error or a truncated
// sound subset — never as wrong answers.
func TestFederationFaults(t *testing.T) {
	sch := schema.MustParse(pubSchemaText)
	db := storage.NewDatabase()
	for name, rows := range pubRows {
		tab, err := db.Create(name, sch.Relation(name).Arity())
		if err != nil {
			t.Fatal(err)
		}
		tab.InsertAll(rows)
	}
	local := toorjah.NewSystem(sch)
	if err := local.BindDatabase(db); err != nil {
		t.Fatal(err)
	}
	lq, err := local.Prepare(pubQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lq.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantAnswers := want.AnswerSet()
	wantStrs := make(map[string]bool)
	for _, a := range want.SortedAnswers() {
		wantStrs[a] = true
	}

	serve503 := func(wr http.ResponseWriter, r *http.Request) {
		http.Error(wr, "injected fault", http.StatusServiceUnavailable)
	}
	hang := func(wr http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
		}
	}

	// federated builds a fresh querying node against a peer serving every
	// relation behind the given fault policy.
	federated := func(t *testing.T, wrap func(http.Handler) http.Handler, ropts toorjah.RemoteOptions) *toorjah.Query {
		t.Helper()
		url := startToorjahd(t, sch.Relations(), db, wrap)
		sys := toorjah.NewSystem(sch.Clone(), toorjah.WithRemoteOptions(ropts))
		if err := sys.AttachRemote(context.Background(), url); err != nil {
			t.Fatal(err)
		}
		q, err := sys.Prepare(pubQuery)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	t.Run("transient 5xx retried", func(t *testing.T) {
		wrap, probes := faultingPeer(func(n int64) bool { return n%3 == 1 }, serve503)
		q := federated(t, wrap, fastRemote())
		for _, kind := range allExecutors {
			res, err := runCQ(q, kind)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			compareResults(t, string(kind), res, want)
		}
		if probes.Load() == 0 {
			t.Fatal("fault injector never saw a probe")
		}
	})

	t.Run("timeouts retried", func(t *testing.T) {
		ropts := fastRemote()
		ropts.Timeout = 100 * time.Millisecond
		wrap, _ := faultingPeer(func(n int64) bool { return n%4 == 1 }, hang)
		q := federated(t, wrap, ropts)
		res, err := q.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, "timeout-retry", res, want)
	})

	t.Run("hard-down peer never yields wrong answers", func(t *testing.T) {
		ropts := fastRemote()
		ropts.MaxRetries = 1
		wrap, _ := faultingPeer(func(int64) bool { return true }, serve503)
		q := federated(t, wrap, ropts)
		for _, kind := range allExecutors {
			var streamed []toorjah.Tuple
			var res *toorjah.Result
			var err error
			if kind == execPipelined {
				res, err = q.Stream(toorjah.PipeOptions{}, func(tp toorjah.Tuple) { streamed = append(streamed, tp) })
			} else {
				res, err = runCQ(q, kind)
			}
			if err == nil {
				// A completed run must be exact; a truncated one sound.
				if res.Truncated {
					for _, a := range res.SortedAnswers() {
						if !wantStrs[a] {
							t.Errorf("%s: truncated result contains wrong answer %q", kind, a)
						}
					}
				} else {
					compareResults(t, string(kind), res, want)
				}
			}
			// Anything streamed before the failure must be a sound subset.
			for _, tp := range streamed {
				if !wantAnswers[tp.Key()] {
					t.Errorf("%s: streamed wrong answer %v before failing", kind, tp)
				}
			}
		}
	})

	t.Run("breaker trips on repeated failure", func(t *testing.T) {
		ropts := fastRemote()
		ropts.MaxRetries = -1
		ropts.BreakerThreshold = 2
		ropts.BreakerCooldown = time.Minute
		wrap, probes := faultingPeer(func(int64) bool { return true }, serve503)
		q := federated(t, wrap, ropts)
		for i := 0; i < 6; i++ {
			if _, err := q.Execute(context.Background()); err == nil {
				t.Fatalf("run %d: err = nil against a dead peer", i)
			}
		}
		// The circuit opened after the threshold: the peer saw only the
		// first failures, not 6 runs' worth of probes.
		if got := probes.Load(); got > 4 {
			t.Errorf("dead peer saw %d probes; breaker should have cut them off", got)
		}
	})
}

// TestServerFederationEndpoints: the server-level federation surface — a
// front node answering /query over a peer's relations, probe accounting in
// the peer's /stats, outbound telemetry in the front's /stats, and the
// /healthz?ready readiness view tracking peer reachability.
func TestServerFederationEndpoints(t *testing.T) {
	sch := schema.MustParse(pubSchemaText)
	// The peer serves rev; pub1 and conf stay on the front node.
	db := storage.NewDatabase()
	for name, rows := range pubRows {
		tab, err := db.Create(name, sch.Relation(name).Arity())
		if err != nil {
			t.Fatal(err)
		}
		tab.InsertAll(rows)
	}
	peerURL := startToorjahd(t, []*schema.Relation{sch.Relation("rev")},
		subDatabase(t, db, []*schema.Relation{sch.Relation("rev")}), nil)

	front := toorjah.NewSystem(sch.Clone(),
		toorjah.WithCache(toorjah.CacheOptions{}),
		toorjah.WithRemoteOptions(fastRemote()))
	if err := front.BindDatabase(subDatabase(t, db,
		[]*schema.Relation{sch.Relation("pub1"), sch.Relation("conf")})); err != nil {
		t.Fatal(err)
	}
	if err := front.AttachRemote(context.Background(), peerURL+"=rev"); err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(New(front, toorjah.Options{}).Handler())
	defer fsrv.Close()

	answers, done := queryNDJSON(t, fsrv.URL+"/query?q="+strings.ReplaceAll(pubQuery, " ", "%20"))
	if strings.Join(answers, ";") != "alice" || !done.Done {
		t.Fatalf("federated /query = %v %+v, want alice", answers, done)
	}

	// Front node /stats: outbound telemetry for the peer.
	var fst statsResponse
	getJSON(t, fsrv.URL+"/stats", &fst)
	tel, ok := fst.RemotePeers[peerURL]
	if !ok {
		t.Fatalf("front /stats remote_peers = %v, want %s", fst.RemotePeers, peerURL)
	}
	if tel["rev"].RoundTrips == 0 || tel["rev"].LatencyMS <= 0 {
		t.Errorf("front telemetry for rev = %+v, want round trips and latency", tel["rev"])
	}

	// Peer /stats: the served probes are accounted per relation.
	var pst statsResponse
	getJSON(t, peerURL+"/stats", &pst)
	if pst.ProbesServed == 0 || pst.Probes == nil {
		t.Fatalf("peer /stats probes_served=%d probes=%v, want served probes", pst.ProbesServed, pst.Probes)
	}
	if st := pst.Probes.Relations["rev"]; st.Accesses == 0 || st.Batches == 0 || st.Batches > st.Accesses {
		t.Errorf("peer probe accounting for rev = %+v", st)
	}

	// Readiness: healthy while the peer is up, 503 once it is gone.
	resp, err := http.Get(fsrv.URL + "/healthz?ready")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Ready bool                       `json:"ready"`
		Peers map[string]json.RawMessage `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !ready.Ready || len(ready.Peers) != 1 {
		t.Fatalf("ready view = %d %+v, want ready with 1 peer", resp.StatusCode, ready)
	}

	// queryNDJSON(fsrv) again: the front's cache absorbs the repeat — the
	// peer's probe count must not grow.
	probesBefore := pst.ProbesServed
	if a2, _ := queryNDJSON(t, fsrv.URL+"/query?q="+strings.ReplaceAll(pubQuery, " ", "%20")); strings.Join(a2, ";") != "alice" {
		t.Fatalf("warm federated query = %v", a2)
	}
	getJSON(t, peerURL+"/stats", &pst)
	if pst.ProbesServed != probesBefore {
		t.Errorf("warm query reached the peer: probes %d -> %d", probesBefore, pst.ProbesServed)
	}
}

// getJSON fetches and decodes a JSON endpoint.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestReadinessReportsDeadPeer: the readiness view flips to 503 when an
// attached peer disappears.
func TestReadinessReportsDeadPeer(t *testing.T) {
	sch := schema.MustParse(pubSchemaText)
	db := storage.NewDatabase()
	for name, rows := range pubRows {
		tab, err := db.Create(name, sch.Relation(name).Arity())
		if err != nil {
			t.Fatal(err)
		}
		tab.InsertAll(rows)
	}
	revOnly := []*schema.Relation{sch.Relation("rev")}
	peerSys := toorjah.NewSystem(schema.MustNew(revOnly...))
	if err := peerSys.BindDatabase(subDatabase(t, db, revOnly)); err != nil {
		t.Fatal(err)
	}
	peer := httptest.NewServer(New(peerSys, toorjah.Options{}).Handler())

	ropts := fastRemote()
	ropts.Timeout = 200 * time.Millisecond
	front := toorjah.NewSystem(sch.Clone(), toorjah.WithRemoteOptions(ropts))
	if err := front.BindDatabase(subDatabase(t, db,
		[]*schema.Relation{sch.Relation("pub1"), sch.Relation("conf")})); err != nil {
		t.Fatal(err)
	}
	if err := front.AttachRemote(context.Background(), peer.URL+"=rev"); err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(New(front, toorjah.Options{}).Handler())
	defer fsrv.Close()

	peer.Close() // the peer vanishes
	resp, err := http.Get(fsrv.URL + "/healthz?ready")
	if err != nil {
		t.Fatal(err)
	}
	body := struct {
		Ready bool `json:"ready"`
		Peers map[string]struct {
			Reachable bool   `json:"reachable"`
			Error     string `json:"error"`
		} `json:"peers"`
	}{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.Ready {
		t.Errorf("dead peer: status %d ready %v, want 503 not-ready", resp.StatusCode, body.Ready)
	}
	p, ok := body.Peers[peer.URL]
	if !ok || p.Reachable || p.Error == "" {
		t.Errorf("dead peer entry = %+v", body.Peers)
	}
	// Liveness stays green: the node itself is up.
	lresp, err := http.Get(fsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 16)
	n, _ := lresp.Body.Read(b)
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK || !strings.Contains(string(b[:n]), "ok") {
		t.Errorf("liveness = %d %q", lresp.StatusCode, b[:n])
	}
}
