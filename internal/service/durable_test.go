package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"toorjah"
	"toorjah/internal/schema"
	"toorjah/internal/wal"
)

// quietWALOpts returns test WAL options that keep recovery warnings out of
// the test log unless they are errors.
func quietWALOpts(dir string) wal.Options {
	return wal.Options{
		Dir:    dir,
		Fsync:  wal.FsyncNever,
		Logger: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError})),
	}
}

// startDurableNode boots a durable server over the given directories and
// returns it with its test listener.
func startDurableNode(t *testing.T, sch *schema.Schema, csvDir, walDir string) (*httptest.Server, *toorjah.System, *wal.Log) {
	t.Helper()
	db, l, err := OpenDurable(sch, csvDir, quietWALOpts(walDir))
	if err != nil {
		t.Fatal(err)
	}
	sys := toorjah.NewSystem(sch, toorjah.WithCache(toorjah.CacheOptions{}))
	if err := sys.BindDatabase(db); err != nil {
		t.Fatal(err)
	}
	WireWAL(sys, l)
	srv := New(sys, toorjah.Options{}, WithWAL(l))
	return httptest.NewServer(srv.Handler()), sys, l
}

func ingestRows(t *testing.T, base, relation, op string, rows ...[]string) {
	t.Helper()
	var body bytes.Buffer
	for _, r := range rows {
		if err := json.NewEncoder(&body).Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	url := fmt.Sprintf("%s/ingest?relation=%s&op=%s", base, relation, op)
	resp, err := http.Post(url, "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest %s: status %d: %s", relation, resp.StatusCode, b)
	}
}

// TestDurableRestartPreservesStateAndEpochs is the service-level durability
// contract: a node that ingested batches over HTTP, restarted from its
// data dir, serves the same answers and the same epochs — and the CSV seed
// is not re-read on the second boot.
func TestDurableRestartPreservesStateAndEpochs(t *testing.T) {
	sch, err := schema.Parse(pubSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	csvDir := t.TempDir()
	seed := "p1,alice\np2,bob\n"
	if err := os.WriteFile(filepath.Join(csvDir, "pub1.csv"), []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()

	ts, sys, l := startDurableNode(t, sch, csvDir, walDir)
	ingestRows(t, ts.URL, "conf", "insert", []string{"p1", "icde", "y2008"}, []string{"p2", "vldb", "y2007"})
	ingestRows(t, ts.URL, "rev", "insert", []string{"alice", "icde", "y2008"})
	ingestRows(t, ts.URL, "pub1", "insert", []string{"p3", "carol"})
	ingestRows(t, ts.URL, "pub1", "delete", []string{"p2", "bob"})
	wantEpochs := map[string]uint64{}
	for name, d := range sys.DataSnapshot() {
		wantEpochs[name] = d.Epoch
	}
	answers, _ := queryNDJSON(t, ts.URL+"/query?q="+strings.ReplaceAll(pubQuery, " ", "%20"))
	if strings.Join(answers, ";") != "alice" {
		t.Fatalf("pre-restart answers = %v", answers)
	}
	if l.Stats().Appends != 4 {
		t.Fatalf("wal appends = %d, want 4", l.Stats().Appends)
	}
	ts.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the CSV seed *removed*: everything must come from the
	// WAL directory.
	if err := os.Remove(filepath.Join(csvDir, "pub1.csv")); err != nil {
		t.Fatal(err)
	}
	ts2, sys2, l2 := startDurableNode(t, sch, csvDir, walDir)
	defer ts2.Close()
	defer l2.Close()

	answers2, _ := queryNDJSON(t, ts2.URL+"/query?q="+strings.ReplaceAll(pubQuery, " ", "%20"))
	if strings.Join(answers2, ";") != "alice" {
		t.Fatalf("post-restart answers = %v", answers2)
	}
	got := sys2.DataSnapshot()
	for name, want := range wantEpochs {
		if got[name].Epoch != want {
			t.Errorf("relation %s: epoch %d after restart, want %d", name, got[name].Epoch, want)
		}
	}
	if rows := got["pub1"].Rows; len(rows) != 2 { // alice + carol, bob deleted
		t.Errorf("pub1 rows after restart: %v", rows)
	}

	// The restarted node keeps accepting ingest on top of recovered state.
	ingestRows(t, ts2.URL, "pub1", "insert", []string{"p4", "dave"})
	if e := sys2.DataSnapshot()["pub1"].Epoch; e != wantEpochs["pub1"]+1 {
		t.Errorf("epoch after post-restart ingest = %d, want %d", e, wantEpochs["pub1"]+1)
	}

	// /stats surfaces the wal block with the recovery account.
	resp, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		WAL *wal.Stats `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.WAL == nil {
		t.Fatal("/stats has no wal block")
	}
	if stats.WAL.Recovery.RecordsReplayed != 4 {
		t.Errorf("recovery replayed %d records, want 4", stats.WAL.Recovery.RecordsReplayed)
	}
	if !stats.WAL.Recovery.HadSnapshot {
		t.Error("first boot wrote no initial snapshot")
	}

	// /metrics exposes the toorjah_wal_* families.
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	exposition, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"toorjah_wal_appends_total", "toorjah_wal_appended_bytes_total",
		"toorjah_wal_snapshots_total", "toorjah_wal_recovery_duration_seconds"} {
		if !bytes.Contains(exposition, []byte(fam)) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
}
