package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"toorjah"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

const pubSchemaText = `
pub1^io(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
`

var pubRows = map[string][]storage.Row{
	"pub1": {{"p1", "alice"}, {"p2", "bob"}},
	"conf": {{"p1", "icde", "y2008"}, {"p2", "vldb", "y2007"}},
	"rev":  {{"alice", "icde", "y2008"}},
}

const pubQuery = "q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)"

// newTestSystem builds a cached System over Counter-wrapped table sources,
// so the counters observe exactly the probes that reach the tables through
// the shared cache.
func newTestSystem(t *testing.T, opts ...toorjah.SystemOption) (*toorjah.System, map[string]*source.Counter) {
	t.Helper()
	sch, err := schema.Parse(pubSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	sys := toorjah.NewSystem(sch, opts...)
	counters := make(map[string]*source.Counter)
	for _, rel := range sch.Relations() {
		tab := storage.NewTable(rel.Name, rel.Arity())
		tab.InsertAll(pubRows[rel.Name])
		src, err := source.NewTableSource(rel, tab)
		if err != nil {
			t.Fatal(err)
		}
		ctr := source.NewCounter(src, false)
		counters[rel.Name] = ctr
		sys.Bind(ctr)
	}
	return sys, counters
}

// queryNDJSON issues one /query request and decodes the stream.
func queryNDJSON(t *testing.T, url string) (answers []string, done doneLine) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var e errorLine
		if json.Unmarshal(line, &e) == nil && e.Error != "" {
			t.Fatalf("in-band error: %s", e.Error)
		}
		var d doneLine
		if json.Unmarshal(line, &d) == nil && d.Done {
			done = d
			continue
		}
		var a answerLine
		if err := json.Unmarshal(line, &a); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if a.Answer != nil {
			answers = append(answers, strings.Join(a.Answer, ","))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done.Done {
		t.Fatal("stream ended without a done line")
	}
	return answers, done
}

// TestServerConcurrentQueriesShareCache is the service acceptance property:
// several concurrent streaming queries share one access cache with correct
// answers, each distinct access reaches the tables at most once, and a
// later identical query probes nothing at all.
func TestServerConcurrentQueriesShareCache(t *testing.T) {
	// Uncached baseline: the expected answers and access count of one run.
	baseSys, _ := newTestSystem(t)
	baseQ, err := baseSys.Prepare(pubQuery)
	if err != nil {
		t.Fatal(err)
	}
	base, err := baseQ.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantAnswers := strings.Join(base.SortedAnswers(), ";")
	if wantAnswers != "alice" {
		t.Fatalf("baseline answers = %q", wantAnswers)
	}

	sys, counters := newTestSystem(t, toorjah.WithCache(toorjah.CacheOptions{}))
	srv := New(sys, toorjah.Options{Parallelism: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/query?q=" + strings.ReplaceAll(pubQuery, " ", "%20")

	const G = 4
	var wg sync.WaitGroup
	got := make([]string, G)
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers, _ := queryNDJSON(t, url)
			got[i] = strings.Join(answers, ";")
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != wantAnswers {
			t.Errorf("request %d: answers = %q, want %q", i, g, wantAnswers)
		}
	}
	// Singleflight + sharing: no distinct access ever hit a table twice,
	// and the G concurrent runs together probed no more than one uncached
	// run would.
	underlying := 0
	for rel, ctr := range counters {
		st := ctr.Stats()
		if st.Accesses != ctr.DistinctAccesses() {
			t.Errorf("%s: %d accesses for %d distinct bindings (some probed twice)",
				rel, st.Accesses, ctr.DistinctAccesses())
		}
		underlying += st.Accesses
	}
	if underlying > base.TotalAccesses() {
		t.Errorf("concurrent cached runs probed %d times, uncached baseline needs %d",
			underlying, base.TotalAccesses())
	}

	// A later identical query is served entirely from the cache.
	answers, done := queryNDJSON(t, url)
	if strings.Join(answers, ";") != wantAnswers {
		t.Errorf("warm answers = %v", answers)
	}
	if done.Accesses != 0 {
		t.Errorf("warm request made %d source probes, want 0", done.Accesses)
	}
	after := 0
	for _, ctr := range counters {
		after += ctr.Stats().Accesses
	}
	if after != underlying {
		t.Errorf("warm request grew underlying probes %d -> %d", underlying, after)
	}

	// /stats reflects the shared cache and the warm plan.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache == nil || st.Cache.Totals.Hits == 0 {
		t.Errorf("stats cache block = %+v, want hits > 0", st.Cache)
	}
	// The sources block accumulates per-relation accounting across queries:
	// the cold runs probed the sources, so accesses and round trips are
	// positive, round trips never exceed accesses, and every probed relation
	// appears.
	if st.Sources == nil || st.Sources.Totals.Accesses == 0 {
		t.Fatalf("stats sources block = %+v, want accumulated accesses", st.Sources)
	}
	if b, a := st.Sources.Totals.Batches, st.Sources.Totals.Accesses; b == 0 || b > a {
		t.Errorf("sources totals: %d round trips for %d accesses", b, a)
	}
	if st.Sources.Totals.Accesses != underlying {
		t.Errorf("sources totals = %d accesses, counters saw %d",
			st.Sources.Totals.Accesses, underlying)
	}
	if st.PreparedPlans != 1 {
		t.Errorf("prepared plans = %d, want 1", st.PreparedPlans)
	}
	if st.QueriesServed != G+1 {
		t.Errorf("queries served = %d, want %d", st.QueriesServed, G+1)
	}
}

func TestServerEndpoints(t *testing.T) {
	sys, _ := newTestSystem(t, toorjah.WithCache(toorjah.CacheOptions{}))
	srv := New(sys, toorjah.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// POST body form of /query.
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(pubQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"alice"`) {
		t.Errorf("POST /query: status %d body %s", resp.StatusCode, body)
	}

	// Malformed query: a client error, not a stream.
	resp, err = http.Get(ts.URL + "/query?q=" + "not%20a%20query")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed query: status %d, want 400", resp.StatusCode)
	}

	// Empty query.
	resp, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query: status %d, want 400", resp.StatusCode)
	}

	// /schema and /healthz.
	resp, err = http.Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, rel := range []string{"pub1", "conf", "rev"} {
		if !strings.Contains(string(body), rel) {
			t.Errorf("/schema missing %s: %s", rel, body)
		}
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz = %q", body)
	}
}

// pubUCQ unions two overlapping disjuncts: both derive alice through
// different first atoms, so the stream must deduplicate across disjuncts.
const pubUCQ = "q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)\nq(R) :- pub1(P, R), rev(R, icde, y2008)"

// TestServerUCQStream: a multi-line query streams as a UCQ — deduplicated
// NDJSON answers, a summary carrying merged accesses/batches/tuples and the
// disjunct count — and /stats counts the union.
func TestServerUCQStream(t *testing.T) {
	sys, counters := newTestSystem(t, toorjah.WithCache(toorjah.CacheOptions{}))
	srv := New(sys, toorjah.Options{Parallelism: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(pubUCQ))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var answers []string
	var done doneLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var e errorLine
		if json.Unmarshal(line, &e) == nil && e.Error != "" {
			t.Fatalf("in-band error: %s", e.Error)
		}
		var d doneLine
		if json.Unmarshal(line, &d) == nil && d.Done {
			done = d
			continue
		}
		var a answerLine
		if err := json.Unmarshal(line, &a); err == nil && a.Answer != nil {
			answers = append(answers, strings.Join(a.Answer, ","))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(answers, ";"); got != "alice" {
		t.Errorf("streamed answers = %q, want exactly one deduplicated alice", got)
	}
	if !done.Done || done.Answers != 1 || done.Disjuncts != 2 {
		t.Errorf("done = %+v, want answers=1 disjuncts=2", done)
	}
	if done.Truncated {
		t.Errorf("complete UCQ marked truncated: %+v", done)
	}
	if done.Accesses == 0 || done.Batches == 0 || done.Batches > done.Accesses {
		t.Errorf("summary accounting wrong: %+v", done)
	}
	// The summary's access count is the probes that reached the tables.
	under := 0
	for _, ctr := range counters {
		under += ctr.Stats().Accesses
	}
	if done.Accesses != under {
		t.Errorf("summary reports %d accesses, tables saw %d", done.Accesses, under)
	}

	// /stats counts the union among the served queries.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.QueriesServed != 1 || st.UCQsServed != 1 {
		t.Errorf("stats served=%d ucqs=%d, want 1 and 1", st.QueriesServed, st.UCQsServed)
	}
	if st.PreparedPlans != 1 {
		t.Errorf("prepared plans = %d, want 1 (the UCQ plan is warm)", st.PreparedPlans)
	}

	// A warm repeat of the same UCQ is served from the shared cache.
	answers2, done2 := queryNDJSON(t, ts.URL+"/query?q="+strings.ReplaceAll(strings.ReplaceAll(pubUCQ, "\n", "%0A"), " ", "%20"))
	if strings.Join(answers2, ";") != "alice" || done2.Accesses != 0 {
		t.Errorf("warm UCQ: answers=%v accesses=%d, want alice and 0", answers2, done2.Accesses)
	}
}

// TestServerQueryBodyTooLarge: an oversized POST body is rejected with 413,
// not truncated into a confusing parse error.
func TestServerQueryBodyTooLarge(t *testing.T) {
	sys, _ := newTestSystem(t)
	srv := New(sys, toorjah.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := strings.Repeat("x", maxQueryBytes+1)
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "exceeds") {
		t.Errorf("oversized body message unclear: %q", body)
	}
}

// TestServerLimit: the limit parameter truncates the stream soundly.
func TestServerLimit(t *testing.T) {
	sch, err := schema.Parse("r^o(A)")
	if err != nil {
		t.Fatal(err)
	}
	sys := toorjah.NewSystem(sch, toorjah.WithCache(toorjah.CacheOptions{}))
	var rows []toorjah.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, toorjah.Row{fmt.Sprintf("v%02d", i)})
	}
	if err := sys.BindRows("r", rows...); err != nil {
		t.Fatal(err)
	}
	srv := New(sys, toorjah.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	answers, done := queryNDJSON(t, ts.URL+"/query?limit=3&q=q(X)%20:-%20r(X)")
	if len(answers) < 3 || done.Answers < 3 {
		t.Errorf("limit run: %d streamed, done=%+v", len(answers), done)
	}
	if done.Answers > 50 {
		t.Errorf("answers = %d > instance size", done.Answers)
	}
}

// TestPlanCacheBounded: the warm-plan map evicts oldest entries beyond its
// cap instead of growing forever.
func TestPlanCacheBounded(t *testing.T) {
	sys, _ := newTestSystem(t)
	srv := New(sys, toorjah.Options{})
	srv.planCap = 2
	texts := []string{
		"q(N) :- pub1(P, N)",
		"q(P) :- conf(P, icde, Y)",
		"q(R) :- rev(R, C, y2008)",
	}
	for _, text := range texts {
		if _, err := srv.prepared(text); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.planCount(); got != 2 {
		t.Errorf("plan count = %d, want 2 (capped)", got)
	}
	srv.mu.Lock()
	_, oldest := srv.plans[texts[0]]
	_, newest := srv.plans[texts[2]]
	srv.mu.Unlock()
	if oldest || !newest {
		t.Errorf("eviction order wrong: oldest present=%v newest present=%v", oldest, newest)
	}
	// An evicted plan is transparently rebuilt.
	if _, err := srv.prepared(texts[0]); err != nil {
		t.Fatal(err)
	}
}

// TestLoadDatabase covers the service's CSV loading path, including the
// tolerant parsing of storage.ReadCSV (BOM, blank trailing lines).
func TestLoadDatabase(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"pub1.csv": "\xef\xbb\xbfp1,alice\np2,bob\n\n",
		"conf.csv": "p1,icde,y2008\n  p2,vldb,y2007\n   \n",
		"rev.csv":  "alice,icde,y2008\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sch, err := schema.Parse(pubSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	db, err := LoadDatabase(sch, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Table("pub1").Len(); got != 2 {
		t.Errorf("pub1 rows = %d, want 2", got)
	}
	if got := db.Table("conf").Len(); got != 2 {
		t.Errorf("conf rows = %d, want 2", got)
	}

	sys := toorjah.NewSystem(sch, toorjah.WithCache(toorjah.CacheOptions{TTL: time.Minute}))
	if err := sys.BindDatabase(db); err != nil {
		t.Fatal(err)
	}
	q, err := sys.Prepare(pubQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.SortedAnswers(), ";"); got != "alice" {
		t.Errorf("answers = %q, want alice", got)
	}
}

// TestServerIngest: rows POSTed to /ingest become visible to the next
// /query through the shared cache with no rebind, /stats reports the
// relation's epoch and last-ingest time, and malformed or oversized bodies
// are rejected without applying anything.
func TestServerIngest(t *testing.T) {
	// Plain table bindings (no Counter decorators): ingestion needs the
	// live tables reachable behind the sources, as in the real server.
	sch := schema.MustParse(pubSchemaText)
	sys := toorjah.NewSystem(sch, toorjah.WithCache(toorjah.CacheOptions{}))
	for rel, rows := range pubRows {
		if err := sys.BindRows(rel, rows...); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(sys, toorjah.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queryURL := ts.URL + "/query?q=" + strings.ReplaceAll(pubQuery, " ", "%20")
	if answers, _ := queryNDJSON(t, queryURL); strings.Join(answers, ";") != "alice" {
		t.Fatalf("cold query = %v, want alice", answers)
	}

	// carol reviews icde'08 and publishes p9 there: two single-batch ingests.
	post := func(path, body string) *http.Response {
		resp, err := http.Post(ts.URL+path, "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post("/ingest?relation=rev", "[\"carol\",\"icde\",\"y2008\"]\n")
	var ing struct {
		Applied int    `json:"applied"`
		Epoch   uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Applied != 1 || ing.Epoch < 2 {
		t.Fatalf("ingest rev: status=%d resp=%+v", resp.StatusCode, ing)
	}
	resp = post("/ingest?relation=pub1", "[\"p9\",\"carol\"]\n")
	resp.Body.Close()
	resp = post("/ingest?relation=conf", "[\"p9\",\"icde\",\"y2008\"]\n")
	resp.Body.Close()

	// The warm plan now answers over the new data — same prepared plan, no
	// rebind, straight through the shared cache.
	answers, _ := queryNDJSON(t, queryURL)
	sort.Strings(answers)
	if strings.Join(answers, ";") != "alice;carol" {
		t.Fatalf("post-ingest query = %v, want alice;carol", answers)
	}

	// Deleting the review removes carol again.
	resp = post("/ingest?relation=rev&op=delete", "[\"carol\",\"icde\",\"y2008\"]\n")
	resp.Body.Close()
	if answers, _ := queryNDJSON(t, queryURL); strings.Join(answers, ";") != "alice" {
		t.Fatalf("post-delete query = %v, want alice", answers)
	}

	// /stats: per-relation epoch, row count and ingest accounting.
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.IngestsServed != 4 {
		t.Errorf("ingests_served = %d, want 4", st.IngestsServed)
	}
	rev, ok := st.Data["rev"]
	if !ok {
		t.Fatalf("stats data block missing rev: %+v", st.Data)
	}
	if rev.Epoch < 3 || rev.Rows != 1 || !rev.Local || rev.LastIngest == "" ||
		rev.Ingests != 2 || rev.Inserted != 1 || rev.Deleted != 1 {
		t.Errorf("rev data stats = %+v", rev)
	}

	// Error paths apply nothing: wrong arity, bad JSON, unknown relation,
	// bad op, oversized body.
	for _, tc := range []struct {
		path, body string
		status     int
	}{
		{"/ingest?relation=rev", "[\"too\",\"short\"]\n", http.StatusBadRequest},
		{"/ingest?relation=rev", "[\"nul\\u0000byte\",\"icde\",\"y2008\"]\n", http.StatusBadRequest},
		{"/ingest?relation=rev&op=delete", "[\"nul\\u0000byte\",\"icde\",\"y2008\"]\n", http.StatusBadRequest},
		{"/ingest?relation=rev", "not json\n", http.StatusBadRequest},
		{"/ingest?relation=nope", "[]\n", http.StatusNotFound},
		{"/ingest?relation=rev&op=upsert", "[]\n", http.StatusBadRequest},
	} {
		resp := post(tc.path, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("POST %s %q: status = %d, want %d", tc.path, tc.body, resp.StatusCode, tc.status)
		}
	}
	srv.maxIngestBytes = 64
	resp = post("/ingest?relation=rev", strings.Repeat("[\"x\",\"y\",\"z\"]\n", 100))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized ingest: status = %d, want 413", resp.StatusCode)
	}
	if answers, _ := queryNDJSON(t, queryURL); strings.Join(answers, ";") != "alice" {
		t.Errorf("failed ingests changed data: %v", answers)
	}
}
