package service

// Observability acceptance tests: /metrics must render valid Prometheus
// text covering the query/cache/source/remote/ingest families and stay
// consistent under concurrent queries and scrapes; a federated ?trace=1
// query must return a span tree whose remote-probe spans carry the same
// trace ID the probed peer logs; and /healthz?ready must answer within the
// configured -ready-timeout even against a peer that hangs.

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"toorjah"
	"toorjah/internal/obs"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

// scrapeMetrics fetches /metrics and returns the body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	var b strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// metricValue extracts one sample's value from an exposition body; the
// series must be present exactly as given (labels included).
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if name, val, ok := strings.Cut(line, " "); ok && name == series {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, val)
			}
			return f
		}
	}
	t.Fatalf("series %s not found in /metrics", series)
	return 0
}

// checkExposition validates the format invariants of a scrape: every sample
// belongs to a family announced by HELP and TYPE lines, and every
// histogram's cumulative buckets are monotone with the +Inf bucket equal to
// its _count.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	typed := make(map[string]string) // family -> type
	helped := make(map[string]bool)
	type bucketSeries struct {
		last  int64
		bound float64
	}
	buckets := make(map[string]*bucketSeries) // series-sans-le -> state
	counts := make(map[string]int64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			typed[f[0]] = f[1]
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		family := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(base, suffix); ok && typed[f] == "histogram" {
				family = f
			}
		}
		if typed[family] == "" || !helped[family] {
			t.Errorf("sample %q has no HELP/TYPE for family %q", line, family)
		}
		if strings.HasSuffix(base, "_bucket") && typed[family] == "histogram" {
			le := ""
			if i := strings.Index(name, `le="`); i >= 0 {
				le = name[i+4:]
				le = le[:strings.IndexByte(le, '"')]
			}
			// Strip the le pair (it is always the last label), comma
			// included when other labels precede it.
			key := strings.Replace(name, `,le="`+le+`"`, "", 1)
			key = strings.Replace(key, `le="`+le+`"`, "", 1)
			cum, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket %q: bad count %q", name, val)
			}
			bs := buckets[key]
			if bs == nil {
				bs = &bucketSeries{last: -1}
				buckets[key] = bs
			}
			if cum < bs.last {
				t.Errorf("bucket %q: cumulative count %d < previous %d", name, cum, bs.last)
			}
			bs.last = cum
			if le == "+Inf" {
				counts[key] = cum
			}
		}
	}
	if len(buckets) == 0 {
		t.Error("no histogram buckets in scrape")
	}
	for key, inf := range counts {
		countSeries := strings.Replace(key, "_bucket", "_count", 1)
		countSeries = strings.TrimSuffix(countSeries, "{}")
		if got := metricValue(t, body, countSeries); int64(got) != inf {
			t.Errorf("series %s: +Inf bucket %d != _count %v", key, inf, got)
		}
	}
}

// TestMetricsEndpoint is the scrape golden test: after two identical
// queries (the second fully absorbed by the cross-query cache) and one
// ingest batch, /metrics must render every required family with HELP/TYPE,
// monotone histogram buckets, and values matching what the service did.
func TestMetricsEndpoint(t *testing.T) {
	// Mutable tables via BindDatabase so /ingest works against the fixture.
	sch := schema.MustParse(pubSchemaText)
	sys := toorjah.NewSystem(sch, toorjah.WithCache(toorjah.CacheOptions{}))
	if err := sys.BindDatabase(pubDatabase(t, sch)); err != nil {
		t.Fatal(err)
	}
	srv := New(sys, toorjah.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := ts.URL + "/query?q=" + strings.ReplaceAll(pubQuery, " ", "%20")
	for i := 0; i < 2; i++ {
		if answers, _ := queryNDJSON(t, q); strings.Join(answers, ";") != "alice" {
			t.Fatalf("query %d answers = %v", i, answers)
		}
	}
	resp, err := http.Post(ts.URL+"/ingest?relation=pub1", "application/x-ndjson",
		strings.NewReader("[\"p9\",\"zoe\"]\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/ingest status %d", resp.StatusCode)
	}

	body := scrapeMetrics(t, ts.URL)
	checkExposition(t, body)

	// Catalog coverage: one family per signal group the issue demands.
	for family, typ := range map[string]string{
		"toorjah_query_duration_seconds":   "histogram",
		"toorjah_probe_duration_seconds":   "histogram",
		"toorjah_probe_batch_size":         "histogram",
		"toorjah_source_accesses_total":    "counter",
		"toorjah_source_round_trips_total": "counter",
		"toorjah_cache_hits_total":         "counter",
		"toorjah_cache_misses_total":       "counter",
		"toorjah_cache_coalesced_total":    "counter",
		"toorjah_cache_evictions_total":    "counter",
		"toorjah_remote_round_trips_total": "counter",
		"toorjah_remote_breaker_state":     "gauge",
		"toorjah_ingests_served_total":     "counter",
		"toorjah_queries_served_total":     "counter",
		"toorjah_uptime_seconds":           "gauge",
	} {
		if !strings.Contains(body, "# TYPE "+family+" "+typ) {
			t.Errorf("family %s (%s) missing from scrape", family, typ)
		}
	}

	if got := metricValue(t, body, "toorjah_queries_served_total"); got != 2 {
		t.Errorf("queries_served_total = %v, want 2", got)
	}
	if got := metricValue(t, body, `toorjah_query_duration_seconds_count{executor="pipelined"}`); got != 2 {
		t.Errorf("query duration count = %v, want 2", got)
	}
	// The first query probed rev; the second was absorbed by the cache.
	if got := metricValue(t, body, `toorjah_source_accesses_total{relation="rev"}`); got == 0 {
		t.Error("no source accesses recorded for rev")
	}
	if got := metricValue(t, body, `toorjah_cache_hits_total{relation="rev"}`); got == 0 {
		t.Error("repeat query recorded no cache hits for rev")
	}
	if got := metricValue(t, body, "toorjah_ingests_served_total"); got != 1 {
		t.Errorf("ingests_served_total = %v, want 1", got)
	}
	if got := metricValue(t, body, `toorjah_ingest_rows_total{relation="pub1",op="insert"}`); got != 1 {
		t.Errorf("ingest_rows_total = %v, want 1", got)
	}
	if got := metricValue(t, body, `toorjah_relation_epoch{relation="pub1"}`); got == 0 {
		t.Error("pub1 epoch did not advance on /metrics after ingest")
	}
}

// TestMetricsConcurrentWithQueries hammers /query and /metrics together —
// run under -race this is the torn-read audit of the whole scrape path; in
// any mode the final scrape must still satisfy every format invariant.
func TestMetricsConcurrentWithQueries(t *testing.T) {
	sys, _ := newTestSystem(t, toorjah.WithCache(toorjah.CacheOptions{}))
	srv := New(sys, toorjah.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers, rounds = 4, 8
	q := ts.URL + "/query?q=" + strings.ReplaceAll(pubQuery, " ", "%20")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				queryNDJSON(t, q)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				checkExposition(t, scrapeMetrics(t, ts.URL))
			}
		}()
	}
	wg.Wait()

	body := scrapeMetrics(t, ts.URL)
	checkExposition(t, body)
	if got := metricValue(t, body, "toorjah_queries_served_total"); got != workers*rounds {
		t.Errorf("queries_served_total = %v, want %d", got, workers*rounds)
	}
	if got := metricValue(t, body, `toorjah_query_duration_seconds_count{executor="pipelined"}`); got != workers*rounds {
		t.Errorf("query duration count = %v, want %d", got, workers*rounds)
	}
}

// findSpans walks a span tree depth-first collecting every span of a name.
func findSpans(s obs.SpanJSON, name string) []obs.SpanJSON {
	var out []obs.SpanJSON
	if s.Name == name {
		out = append(out, s)
	}
	for _, c := range s.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

// syncBuffer is a mutex-guarded bytes.Buffer for capturing a peer's log
// from a concurrent server.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestFederatedTraceStitching is the cross-node tracing acceptance test: a
// front node answers ?trace=1 over a relation sourced from a peer; the
// returned span tree must contain a remote-probe span attributed with the
// query's trace ID, and the peer's own query log must record a probe with
// that same ID (the stitch point between the two nodes' logs).
func TestFederatedTraceStitching(t *testing.T) {
	sch := schema.MustParse(pubSchemaText)
	db := pubDatabase(t, sch)
	revOnly := []*schema.Relation{sch.Relation("rev")}
	peerSys := toorjah.NewSystem(schema.MustNew(revOnly...))
	if err := peerSys.BindDatabase(subDatabase(t, db, revOnly)); err != nil {
		t.Fatal(err)
	}
	peerSrv := New(peerSys, toorjah.Options{})
	var peerLog syncBuffer
	peerSrv.queryLog = obs.NewQueryLog(slog.New(slog.NewTextHandler(&peerLog, nil)), 0)
	peer := httptest.NewServer(peerSrv.Handler())
	defer peer.Close()

	front := toorjah.NewSystem(sch.Clone(),
		toorjah.WithCache(toorjah.CacheOptions{}),
		toorjah.WithRemoteOptions(fastRemote()))
	if err := front.BindDatabase(subDatabase(t, db,
		[]*schema.Relation{sch.Relation("pub1"), sch.Relation("conf")})); err != nil {
		t.Fatal(err)
	}
	if err := front.AttachRemote(context.Background(), peer.URL+"=rev"); err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(New(front, toorjah.Options{}).Handler())
	defer fsrv.Close()

	answers, done := queryNDJSON(t,
		fsrv.URL+"/query?trace=1&q="+strings.ReplaceAll(pubQuery, " ", "%20"))
	if strings.Join(answers, ";") != "alice" {
		t.Fatalf("federated answers = %v, want alice", answers)
	}
	if done.TraceID == "" {
		t.Fatal("done line carries no trace_id")
	}
	if done.Trace == nil {
		t.Fatal("?trace=1 returned no span tree")
	}
	if done.Trace.Name != "query" {
		t.Errorf("root span = %q, want query", done.Trace.Name)
	}
	remoteSpans := findSpans(*done.Trace, "remote-probe")
	if len(remoteSpans) == 0 {
		t.Fatalf("no remote-probe span in trace: %+v", done.Trace)
	}
	for _, sp := range remoteSpans {
		if id, _ := sp.Attrs["trace_id"].(string); id != done.TraceID {
			t.Errorf("remote-probe span trace_id = %v, want %s", sp.Attrs["trace_id"], done.TraceID)
		}
		if rel, _ := sp.Attrs["relation"].(string); rel != "rev" {
			t.Errorf("remote-probe span relation = %v, want rev", sp.Attrs["relation"])
		}
	}
	// The trace also shows the local execution structure under the root.
	if len(findSpans(*done.Trace, "probe")) == 0 {
		t.Error("no probe span in trace")
	}

	// The stitch: the peer logged the served probe under the same ID.
	if lg := peerLog.String(); !strings.Contains(lg, done.TraceID) {
		t.Errorf("peer query log does not mention trace %s:\n%s", done.TraceID, lg)
	} else if !strings.Contains(lg, "msg=probe") {
		t.Errorf("peer query log has no probe record:\n%s", lg)
	}

	// An untraced query still gets a trace ID but no span tree.
	_, plain := queryNDJSON(t, fsrv.URL+"/query?q="+strings.ReplaceAll(pubQuery, " ", "%20"))
	if plain.TraceID == "" || plain.Trace != nil {
		t.Errorf("untraced query: trace_id=%q trace=%v, want id only", plain.TraceID, plain.Trace)
	}
	if plain.TraceID == done.TraceID {
		t.Error("two queries shared one trace ID")
	}
}

// pubDatabase materializes the shared pub fixture as a storage database.
func pubDatabase(t *testing.T, sch *schema.Schema) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	for name, rows := range pubRows {
		tab, err := db.Create(name, sch.Relation(name).Arity())
		if err != nil {
			t.Fatal(err)
		}
		tab.InsertAll(rows)
	}
	return db
}

// TestReadyTimeoutBoundsSlowPeer: a peer that accepts connections but never
// answers /healthz must not stall the readiness view past the configured
// timeout — the view flips to 503 with the peer marked unreachable.
func TestReadyTimeoutBoundsSlowPeer(t *testing.T) {
	sch := schema.MustParse(pubSchemaText)
	db := pubDatabase(t, sch)
	revOnly := []*schema.Relation{sch.Relation("rev")}
	hang := make(chan struct{})
	defer close(hang)
	peerURL := startToorjahd(t, revOnly, subDatabase(t, db, revOnly),
		func(h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.URL.Path, "/healthz") {
					select { // hold the request until the test ends
					case <-hang:
					case <-r.Context().Done():
					}
					return
				}
				h.ServeHTTP(w, r)
			})
		})

	front := toorjah.NewSystem(sch.Clone(), toorjah.WithRemoteOptions(fastRemote()))
	if err := front.BindDatabase(subDatabase(t, db,
		[]*schema.Relation{sch.Relation("pub1"), sch.Relation("conf")})); err != nil {
		t.Fatal(err)
	}
	if err := front.AttachRemote(context.Background(), peerURL+"=rev"); err != nil {
		t.Fatal(err)
	}
	fsrv := New(front, toorjah.Options{})
	fsrv.readyTimeout = 150 * time.Millisecond
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()

	start := time.Now()
	resp, err := http.Get(fts.URL + "/healthz?ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("hung peer: status = %d, want 503", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Errorf("readiness took %v against a hung peer; -ready-timeout was %v", elapsed, fsrv.readyTimeout)
	}
}
