package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"toorjah"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
	"toorjah/internal/wal"
)

// OpenDurable opens (or creates) the durable state under wopts.Dir and
// returns the recovered database plus the live log. Each schema relation
// comes from, in order of preference: the recovered WAL state (latest
// valid snapshot + replayed tail), else its CSV seed file in csvDir (""
// skips seeding), else an absent table (the facade auto-binds it empty).
// On a first boot — nothing recovered — the seeded database is snapshotted
// synchronously before returning, so the WAL tail always has a durable
// base state to replay onto and the CSV seed is never re-read again.
//
// Recovered relations missing from the schema are kept on disk but not
// loaded; a warning notes each one. A recovered arity that contradicts the
// schema is an error — silently serving rows under the wrong shape would
// corrupt answers.
func OpenDurable(sch *schema.Schema, csvDir string, wopts wal.Options) (*storage.Database, *wal.Log, error) {
	l, rec, err := wal.Open(wopts)
	if err != nil {
		return nil, nil, err
	}
	logger := wopts.Logger
	db := storage.NewDatabase()
	seeded := false
	for _, rel := range sch.Relations() {
		if st, ok := rec.Relations[rel.Name]; ok {
			if st.Arity != rel.Arity() {
				closeQuiet(l)
				return nil, nil, fmt.Errorf(
					"service: recovered relation %s has arity %d, schema says %d — refusing to serve reshaped data",
					rel.Name, st.Arity, rel.Arity())
			}
			if err := db.Attach(storage.RestoreTable(rel.Name, st.Arity, st.Epoch, st.Rows)); err != nil {
				closeQuiet(l)
				return nil, nil, err
			}
			continue
		}
		if csvDir == "" {
			continue
		}
		n, err := loadCSVRelation(db, rel, csvDir)
		if err != nil {
			closeQuiet(l)
			return nil, nil, err
		}
		seeded = seeded || n > 0
	}
	if logger != nil {
		for name := range rec.Relations {
			if sch.Relation(name) == nil {
				logger.Warn("recovered relation absent from the schema; leaving its state on disk unloaded",
					"relation", name)
			}
		}
	}
	if !rec.HadSnapshot && seeded {
		if err := l.WriteSnapshot(databaseStates(sch, db)); err != nil {
			closeQuiet(l)
			return nil, nil, fmt.Errorf("service: writing the initial snapshot: %w", err)
		}
	}
	return db, l, nil
}

func closeQuiet(l *wal.Log) {
	// The open failed for an unrelated reason; the close error cannot
	// improve on it.
	_ = l.Close()
}

// loadCSVRelation seeds one relation from its CSV file, mirroring
// LoadDatabase; it reports how many rows it loaded (0 when the file is
// absent).
func loadCSVRelation(db *storage.Database, rel *schema.Relation, dir string) (int, error) {
	path := filepath.Join(dir, rel.Name+".csv")
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	tab, err := storage.ReadCSV(rel.Name, rel.Arity(), f)
	f.Close()
	if err != nil {
		return 0, err
	}
	dbt, err := db.Create(rel.Name, rel.Arity())
	if err != nil {
		return 0, err
	}
	return dbt.InsertAll(tab.Snapshot().Rows()), nil
}

// databaseStates reads a pinned version of every schema relation present
// in db, in name order — the bootstrap snapshot source.
func databaseStates(sch *schema.Schema, db *storage.Database) []wal.RelationState {
	var states []wal.RelationState
	for _, rel := range sch.Relations() {
		t := db.Table(rel.Name)
		if t == nil {
			continue
		}
		snap := t.Snapshot()
		states = append(states, wal.RelationState{
			Name:  rel.Name,
			Arity: rel.Arity(),
			Epoch: snap.Epoch(),
			Rows:  snap.Rows(),
		})
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Name < states[j].Name })
	return states
}

// WireWAL connects a fully bound system to the log: every applied mutation
// batch appends (and, under -fsync always, reaches disk) before its
// acknowledgement, and snapshots read the system's pinned relation
// versions. Call it after BindDatabase and before serving traffic.
func WireWAL(sys *toorjah.System, l *wal.Log) {
	sys.SetCommitHook(l.AppendCommit)
	l.SetSource(func() []wal.RelationState {
		dump := sys.DataSnapshot()
		states := make([]wal.RelationState, 0, len(dump))
		for name, d := range dump {
			states = append(states, wal.RelationState{
				Name: name, Arity: d.Arity, Epoch: d.Epoch, Rows: d.Rows,
			})
		}
		sort.Slice(states, func(i, j int) bool { return states[i].Name < states[j].Name })
		return states
	})
}

// WithWAL surfaces a write-ahead log on the server: /stats gains the wal
// block and /metrics the toorjah_wal_* families. The log itself is wired
// to the system by WireWAL — this option only makes it observable.
func WithWAL(l *wal.Log) Option {
	return func(s *Server) {
		s.wal = l
		s.registerWALCollectors()
	}
}

// registerWALCollectors exposes the log's counters as scrape-time series.
func (s *Server) registerWALCollectors() {
	m := s.metrics
	l := s.wal
	m.CounterFunc("toorjah_wal_appends_total",
		"Mutation batches appended to the write-ahead log.",
		func() float64 { return float64(l.Stats().Appends) })
	m.CounterFunc("toorjah_wal_appended_bytes_total",
		"Bytes appended to the write-ahead log.",
		func() float64 { return float64(l.Stats().AppendedBytes) })
	m.CounterFunc("toorjah_wal_syncs_total",
		"fsync calls completed on the active WAL segment.",
		func() float64 { return float64(l.Stats().Syncs) })
	m.CounterFunc("toorjah_wal_errors_total",
		"WAL append, fsync, rotation or snapshot failures (durability degraded, serving continues).",
		func() float64 { return float64(l.Stats().Errors) })
	m.CounterFunc("toorjah_wal_segments_sealed_total",
		"WAL segments sealed by the size or age cap.",
		func() float64 { return float64(l.Stats().SegmentsSealed) })
	m.CounterFunc("toorjah_wal_segments_archived_total",
		"Sealed WAL segments and superseded snapshots moved to the archive directory.",
		func() float64 { return float64(l.Stats().SegmentsArchived) })
	m.CounterFunc("toorjah_wal_snapshots_total",
		"Epoch-stamped snapshot files written.",
		func() float64 { return float64(l.Stats().Snapshots) })
	m.GaugeFunc("toorjah_wal_active_segment_bytes",
		"Bytes in the active (unsealed) WAL segment.",
		func() float64 { return float64(l.Stats().ActiveBytes) })
	m.GaugeFunc("toorjah_wal_recovery_duration_seconds",
		"How long startup recovery (snapshot load + tail replay) took.",
		func() float64 { return l.Stats().Recovery.DurationMS / 1000 })
	m.GaugeFunc("toorjah_wal_recovery_records_replayed",
		"Tail records replayed on top of the snapshot at startup.",
		func() float64 { return float64(l.Stats().Recovery.RecordsReplayed) })
}
