package service

import (
	"strings"
	"testing"
)

// FuzzDecodeIngestRows drives the /ingest NDJSON row decoder with
// arbitrary bodies: it must never panic, and every accepted row must have
// exactly the declared arity — the invariant the storage layer builds
// indexes on.
func FuzzDecodeIngestRows(f *testing.F) {
	f.Add(`["a","b"]`+"\n"+`["c","d"]`, 2)
	f.Add(`["a","b"] ["c","d"]`, 2)
	f.Add(`[]`, 0)
	f.Add(`["only"]`, 2)
	f.Add(`{"not":"an array"}`, 1)
	f.Add(`["a",`, 1)
	f.Add("", 3)
	f.Add(`null`, 1)
	f.Add(`["a","b","c"]`+"\n"+"garbage", 3)
	f.Fuzz(func(t *testing.T, body string, arity int) {
		rows, err := decodeIngestRows(strings.NewReader(body), arity)
		if err != nil {
			return
		}
		for i, row := range rows {
			if len(row) != arity {
				t.Fatalf("accepted row %d with arity %d, want %d", i, len(row), arity)
			}
		}
	})
}
