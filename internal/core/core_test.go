package core

import (
	"context"
	"strings"
	"testing"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/exec"
	"toorjah/internal/gen"
	"toorjah/internal/schema"
	"toorjah/internal/source"
)

func TestPrepareFullPipeline(t *testing.T) {
	sch := schema.MustParse(`
r1^io(A, B)
r2^io(B, C)
r3^io(C, A)
`)
	q := cq.MustParse("q(C) :- r1(a, B), r2(B, C)")
	p, err := Prepare(sch, q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Answerable() || p.Plan == nil {
		t.Fatal("query should be answerable with a plan")
	}
	if got := strings.Join(p.Opt.IrrelevantRelations(), ","); got != "r3" {
		t.Errorf("irrelevant = %s", got)
	}
}

func TestPrepareMinimizesRedundantQuery(t *testing.T) {
	sch := schema.MustParse("r^oo(A, B)")
	q := cq.MustParse("q(X) :- r(X, Y), r(X, Z)")
	p, err := Prepare(sch, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Query.Body) != 1 {
		t.Errorf("query not minimized: %s", p.Query)
	}
	// Opting out keeps the redundancy.
	p2, err := PrepareOpts(sch, q, Options{SkipMinimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Query.Body) != 2 {
		t.Errorf("SkipMinimize ignored: %s", p2.Query)
	}
}

func TestPrepareNonAnswerable(t *testing.T) {
	sch := schema.MustParse(`
r1^io(A, C)
r2^oo(B, C)
`)
	q := cq.MustParse("q(C) :- r1(X, C), r2(B, C2)")
	p, err := Prepare(sch, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Answerable() || p.Plan != nil {
		t.Error("query mentioning non-queryable r1 must have no plan")
	}
}

func TestPrepareSkipPruningKeepsAllSources(t *testing.T) {
	sch := schema.MustParse(`
r1^io(A, B)
r2^io(B, C)
r3^io(C, A)
`)
	q := cq.MustParse("q(C) :- r1(a, B), r2(B, C)")
	p, err := PrepareOpts(sch, q, Options{SkipPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	rel := p.Opt.RelevantRelations()
	if got := strings.Join(rel, ","); !strings.Contains(got, "r3") {
		t.Errorf("unpruned pipeline should keep r3: %s", got)
	}
}

// TestRandomizedExecutorEquivalence is the central end-to-end property test
// of the reproduction: on randomly generated schemata, queries and
// instances, the naive algorithm (Fig. 1), the fast-failing ⊂-minimal plan
// (Section IV), the pipelined Toorjah engine (Section V), the unpruned
// ablation plan, and the Datalog least-fixpoint reference semantics all
// return exactly the same set of obtainable answers — and the optimized
// executors never exceed the naive access count.
func TestRandomizedExecutorEquivalence(t *testing.T) {
	cfg := gen.Scaled()
	ran := 0
	for seed := int64(0); seed < 40; seed++ {
		g := gen.New(seed, cfg)
		sch := g.Schema()
		q, ok := g.Query(sch, "q")
		if !ok {
			continue
		}
		db := g.Instance(sch)
		reg, err := source.FromDatabase(sch, db, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Prepare(sch, q)
		if err != nil {
			t.Errorf("seed %d: prepare %s: %v", seed, q, err)
			continue
		}
		if !p.Answerable() {
			t.Errorf("seed %d: generator promised an answerable query: %s", seed, q)
			continue
		}
		ran++

		// Reference: least fixpoint of the plan program over full contents.
		edb := datalog.DB{}
		for _, rel := range sch.Relations() {
			r := edb.Get(rel.Name, rel.Arity())
			for _, row := range db.Table(rel.Name).Rows() {
				r.Insert(datalog.T(row...))
			}
		}
		idb, err := datalog.Eval(p.Plan.Program, edb)
		if err != nil {
			t.Errorf("seed %d: reference eval: %v", seed, err)
			continue
		}
		ref := &exec.Result{Answers: idb[p.Query.Name]}
		want := strings.Join(ref.SortedAnswers(), ";")

		naive, err := exec.Naive(context.Background(), sch, reg, p.Query, p.Typing)
		if err != nil {
			t.Errorf("seed %d: naive: %v", seed, err)
			continue
		}
		fast, err := exec.FastFailing(context.Background(), p.Plan, reg)
		if err != nil {
			t.Errorf("seed %d: fast: %v", seed, err)
			continue
		}
		piped, err := exec.Pipelined(context.Background(), p.Plan, reg, exec.Options{}, nil)
		if err != nil {
			t.Errorf("seed %d: pipelined: %v", seed, err)
			continue
		}
		unpruned, err := PrepareOpts(sch, q, Options{SkipPruning: true})
		if err != nil {
			t.Errorf("seed %d: unpruned prepare: %v", seed, err)
			continue
		}
		ab, err := exec.FastFailing(context.Background(), unpruned.Plan, reg)
		if err != nil {
			t.Errorf("seed %d: unpruned exec: %v", seed, err)
			continue
		}

		for label, r := range map[string]*exec.Result{
			"naive": naive, "fast-failing": fast, "pipelined": piped, "unpruned": ab,
		} {
			if got := strings.Join(r.SortedAnswers(), ";"); got != want {
				t.Errorf("seed %d (%s): %s answers = [%s]\nwant [%s]\nschema:\n%s",
					seed, q, label, got, want, sch)
			}
		}
		if fast.TotalAccesses() > naive.TotalAccesses() {
			t.Errorf("seed %d: fast-failing %d accesses > naive %d",
				seed, fast.TotalAccesses(), naive.TotalAccesses())
		}
		if ab.TotalAccesses() > naive.TotalAccesses() {
			t.Errorf("seed %d: unpruned plan %d accesses > naive %d",
				seed, ab.TotalAccesses(), naive.TotalAccesses())
		}
		// Note: pruned vs unpruned access counts are NOT comparable in
		// general — they may use different source orderings, and the paper
		// notes (Section IV) that for every ordering there is an instance
		// where another ordering detects failure faster. Only the naive
		// bound is an invariant.
	}
	if ran < 25 {
		t.Errorf("only %d/40 random workloads ran; generator too restrictive", ran)
	}
}

// TestRandomizedAccessSubset asserts the stronger per-access property on a
// smaller sample: every access the optimized executor makes, the naive
// executor also makes.
func TestRandomizedAccessSubset(t *testing.T) {
	cfg := gen.Scaled()
	cfg.MaxTuples = 80
	for seed := int64(100); seed < 115; seed++ {
		g := gen.New(seed, cfg)
		sch := g.Schema()
		q, ok := g.Query(sch, "q")
		if !ok {
			continue
		}
		db := g.Instance(sch)
		reg, err := source.FromDatabase(sch, db, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Prepare(sch, q)
		if err != nil || !p.Answerable() {
			continue
		}
		countedN, countersN := reg.Counted(true)
		if _, err := exec.Naive(context.Background(), sch, countedN, p.Query, p.Typing); err != nil {
			t.Fatal(err)
		}
		countedF, countersF := reg.Counted(true)
		if _, err := exec.FastFailing(context.Background(), p.Plan, countedF); err != nil {
			t.Fatal(err)
		}
		for name, cf := range countersF {
			cn := countersN[name]
			naiveSet := cn.AccessSet()
			for key := range cf.AccessSet() {
				if !naiveSet[key] {
					t.Errorf("seed %d: optimized access %q on %s never made by naive (query %s)",
						seed, key, name, q)
				}
			}
		}
	}
}
