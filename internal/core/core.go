// Package core wires the stages of the Toorjah pipeline together: query
// validation and typing, optional Chandra–Merlin minimization, constant
// elimination, dependency-graph construction, GFP optimization, and
// ⊂-minimal plan generation. It is the implementation behind the module's
// public API.
package core

import (
	"fmt"

	"toorjah/internal/cq"
	"toorjah/internal/dgraph"
	"toorjah/internal/plan"
	"toorjah/internal/schema"
)

// Options tunes Prepare.
type Options struct {
	// SkipMinimize disables the CQ-minimization preprocessing. Section IV
	// assumes a minimal CQ as planner input; minimization is exponential in
	// query size in the worst case, so callers with known-minimal queries
	// may skip it.
	SkipMinimize bool
	// SkipPruning keeps every arc of the d-graph weak (no GFP), producing
	// the unoptimized plan; used by ablation experiments.
	SkipPruning bool
	// Order tunes the linearization of the source ordering (statistics or
	// heuristic-free; see plan.OrderOptions).
	Order plan.OrderOptions
}

// Pipeline carries every artifact of query preparation.
type Pipeline struct {
	Schema *schema.Schema
	// Query is the input query after optional minimization.
	Query  *cq.CQ
	Typing *cq.Typing
	// Pre is the constant-free rewriting over the extended schema.
	Pre *cq.Preprocessed
	// Graph is the d-graph; Opt the optimized d-graph.
	Graph *dgraph.Graph
	Opt   *dgraph.Optimized
	// Plan is the ⊂-minimal plan; nil when the query is not answerable.
	Plan *plan.Plan
}

// Answerable reports whether every relation in the query is queryable; when
// false the answer is empty on every instance and Plan is nil.
func (p *Pipeline) Answerable() bool { return p.Graph.Answerable }

// Prepare runs the full pipeline with default options.
func Prepare(sch *schema.Schema, q *cq.CQ) (*Pipeline, error) {
	return PrepareOpts(sch, q, Options{})
}

// PrepareOpts runs the full pipeline: validate, minimize, eliminate
// constants, build the d-graph, compute the maximal solution, generate the
// plan. A non-answerable query yields a Pipeline with Plan == nil and no
// error (the empty answer needs no plan).
func PrepareOpts(sch *schema.Schema, q *cq.CQ, opts Options) (*Pipeline, error) {
	p := &Pipeline{Schema: sch}
	ty, err := cq.Validate(q, sch)
	if err != nil {
		return nil, err
	}
	p.Query = q
	if !opts.SkipMinimize {
		m := cq.Minimize(q)
		if len(m.Body) < len(q.Body) {
			p.Query = m
			if ty, err = cq.Validate(m, sch); err != nil {
				return nil, fmt.Errorf("core: minimized query invalid: %w", err)
			}
		}
	}
	p.Typing = ty
	p.Pre, err = cq.EliminateConstants(p.Query, sch, ty)
	if err != nil {
		return nil, err
	}
	p.Graph, err = dgraph.Build(p.Pre.Query, p.Pre.Schema)
	if err != nil {
		return nil, err
	}
	if opts.SkipPruning {
		sol := &dgraph.Solution{
			G:       p.Graph,
			Strong:  map[int]bool{},
			Deleted: map[int]bool{},
		}
		p.Opt = p.Graph.OptimizeWith(sol)
	} else {
		p.Opt = p.Graph.Optimize()
	}
	if !p.Graph.Answerable {
		return p, nil
	}
	p.Plan, err = plan.GenerateWith(p.Opt, opts.Order)
	if err != nil {
		return nil, err
	}
	return p, nil
}
