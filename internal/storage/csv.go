package storage

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
)

// utf8BOM is the byte-order mark some spreadsheet exports prepend.
var utf8BOM = []byte{0xEF, 0xBB, 0xBF}

// ReadCSV loads rows from CSV data into a new table of the given arity,
// applying them as one batch (one epoch). Every record must have exactly
// arity fields; errors name the offending line. The reader tolerates the
// rough edges of hand-edited and exported files: a leading UTF-8 byte-order
// mark, leading whitespace before fields, and blank (or whitespace-only)
// lines anywhere in the file. Quoted content — an empty field ("") or a
// whitespace-only line inside a multi-line quoted field — is data, not
// blankness, and is preserved.
func ReadCSV(name string, arity int, r io.Reader) (*Table, error) {
	rows, err := ReadCSVRows(name, arity, r)
	if err != nil {
		return nil, err
	}
	t := NewTable(name, arity)
	t.InsertAll(rows)
	return t, nil
}

// ReadCSVRows parses CSV data into rows of the given arity without building
// a table, for callers that batch-apply the rows to a live table (the
// ingestion API). Parsing rules are exactly ReadCSV's.
func ReadCSVRows(name string, arity int, r io.Reader) ([]Row, error) {
	var rows []Row
	br := bufio.NewReader(r)
	if head, err := br.Peek(len(utf8BOM)); err == nil && bytes.Equal(head, utf8BOM) {
		br.Discard(len(utf8BOM))
	}
	cr := csv.NewReader(&blankLineEraser{br: br})
	cr.FieldsPerRecord = -1 // arity is validated below, with line numbers
	cr.TrimLeadingSpace = true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", name, err) // csv errors carry the line
		}
		if len(rec) != arity {
			line, _ := cr.FieldPos(0)
			return nil, fmt.Errorf("table %s: line %d: %d field(s), want %d",
				name, line, len(rec), arity)
		}
		rows = append(rows, Row(rec))
	}
	return rows, nil
}

// blankLineEraser streams its input line by line, emptying whitespace-only
// lines that lie outside quoted fields: encoding/csv then drops them
// natively while still counting them for error line numbers. Lines inside a
// quoted multi-line field pass through untouched (quote state is tracked
// across lines). Memory use is bounded by the longest line, not the file.
type blankLineEraser struct {
	br      *bufio.Reader
	buf     []byte // pending output
	inQuote bool
	err     error // terminal error (including io.EOF), after buf drains
}

func (e *blankLineEraser) Read(p []byte) (int, error) {
	for len(e.buf) == 0 {
		if e.err != nil {
			return 0, e.err
		}
		line, err := e.br.ReadBytes('\n')
		if err != nil {
			e.err = err
		}
		if len(line) == 0 {
			continue
		}
		// A whitespace-only line contains no quote, so erasing it never
		// changes the quote state tracked below.
		if e.inQuote || len(bytes.TrimSpace(line)) > 0 {
			e.buf = line
		} else if line[len(line)-1] == '\n' {
			e.buf = line[len(line)-1:] // keep the newline for line counting
		}
		for _, b := range line {
			if b == '"' {
				e.inQuote = !e.inQuote
			}
		}
	}
	n := copy(p, e.buf)
	e.buf = e.buf[n:]
	return n, nil
}

// WriteCSV writes every row of the table as CSV.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, r := range t.Rows() {
		if err := cw.Write([]string(r)); err != nil {
			return fmt.Errorf("table %s: %w", t.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
