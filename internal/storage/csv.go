package storage

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV loads rows from CSV data into a new table of the given arity.
// Every record must have exactly arity fields.
func ReadCSV(name string, arity int, r io.Reader) (*Table, error) {
	t := NewTable(name, arity)
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = arity
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", name, err)
		}
		t.Insert(Row(rec))
	}
	return t, nil
}

// WriteCSV writes every row of the table as CSV.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, r := range t.Rows() {
		if err := cw.Write([]string(r)); err != nil {
			return fmt.Errorf("table %s: %w", t.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
