package storage

import (
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	tab, err := ReadCSV("r", 2, strings.NewReader("a,1\nb,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 || !tab.Contains(Row{"a", "1"}) || !tab.Contains(Row{"b", "2"}) {
		t.Errorf("rows = %v", tab.Rows())
	}
}

func TestReadCSVTolerance(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want int
	}{
		{"trailing blank line", "a,1\nb,2\n\n", 2},
		{"several trailing blanks", "a,1\n\n\n\n", 1},
		{"whitespace-only line", "a,1\n   \nb,2\n", 2},
		{"tab-only line", "a,1\n\t\nb,2\n", 2},
		{"utf8 BOM", "\xef\xbb\xbfa,1\n", 1},
		{"leading whitespace before fields", "  a,  1\n\tb,\t2\n", 2},
		{"no final newline", "a,1\nb,2", 2},
		{"empty input", "", 0},
		{"only blank lines", "\n  \n\n", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tab, err := ReadCSV("r", 2, strings.NewReader(c.in))
			if err != nil {
				t.Fatal(err)
			}
			if tab.Len() != c.want {
				t.Errorf("rows = %v, want %d", tab.Rows(), c.want)
			}
		})
	}
	// BOM stripped from the first field's value, not kept as data.
	tab, err := ReadCSV("r", 2, strings.NewReader("\xef\xbb\xbfa,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Contains(Row{"a", "1"}) {
		t.Errorf("BOM leaked into data: %v", tab.Rows())
	}
}

// TestReadCSVQuotedEmptyIsData: a quoted empty field is a record, not a
// blank line — the whitespace tolerance must not swallow it.
func TestReadCSVQuotedEmptyIsData(t *testing.T) {
	tab, err := ReadCSV("r", 1, strings.NewReader("a\n\"\"\nb\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 || !tab.Contains(Row{""}) {
		t.Errorf("rows = %v, want a, \"\", b", tab.Rows())
	}
	tab2, err := ReadCSV("r", 2, strings.NewReader("a,\"\"\n  \"\",b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Len() != 2 || !tab2.Contains(Row{"a", ""}) || !tab2.Contains(Row{"", "b"}) {
		t.Errorf("rows = %v", tab2.Rows())
	}
}

// TestReadCSVQuotedMultilineField: whitespace-only lines inside a quoted
// multi-line field are field content, not blank lines, and must survive.
func TestReadCSVQuotedMultilineField(t *testing.T) {
	tab, err := ReadCSV("r", 2, strings.NewReader("a,\"x\n   \ny\"\nb,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 || !tab.Contains(Row{"a", "x\n   \ny"}) {
		t.Errorf("rows = %q, want the quoted field intact", tab.Rows())
	}
	// Escaped quotes inside a field keep the quote tracking honest.
	tab2, err := ReadCSV("r", 2, strings.NewReader("a,\"say \"\"hi\"\"\"\n   \nb,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Len() != 2 || !tab2.Contains(Row{"a", `say "hi"`}) {
		t.Errorf("rows = %q", tab2.Rows())
	}
}

// TestReadCSVLineNumbersCountBlanks: erased blank lines still count toward
// the line number reported in errors.
func TestReadCSVLineNumbersCountBlanks(t *testing.T) {
	_, err := ReadCSV("r", 2, strings.NewReader("a,1\n   \nb,2,3\n"))
	if err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q should name line 3", err)
	}
}

func TestReadCSVErrorsNameLine(t *testing.T) {
	_, err := ReadCSV("r", 2, strings.NewReader("a,1\nb,2,3\n"))
	if err == nil {
		t.Fatal("arity mismatch accepted")
	}
	for _, want := range []string{"table r", "line 2", "3 field(s)", "want 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	_, err = ReadCSV("r", 2, strings.NewReader("a,1\n\"unterminated\n"))
	if err == nil {
		t.Fatal("bad quoting accepted")
	}
	if !strings.Contains(err.Error(), "table r") || !strings.Contains(err.Error(), "2") {
		t.Errorf("quote error lacks table/line context: %q", err)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	tab := NewTable("r", 2)
	tab.InsertAll([]Row{{"a", "1"}, {"b", "2"}})
	var b strings.Builder
	if err := WriteCSV(tab, &b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("r", 2, strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Contains(Row{"a", "1"}) {
		t.Errorf("round trip lost rows: %v", back.Rows())
	}
}
