package storage

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestInsertDedupAndLen(t *testing.T) {
	tab := NewTable("r", 2)
	if !tab.Insert(Row{"a", "1"}) {
		t.Error("first insert should be new")
	}
	if tab.Insert(Row{"a", "1"}) {
		t.Error("duplicate insert should report false")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
	if !tab.Contains(Row{"a", "1"}) || tab.Contains(Row{"a", "2"}) {
		t.Error("Contains misbehaves")
	}
}

func TestInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on arity mismatch")
		}
	}()
	NewTable("r", 2).Insert(Row{"a"})
}

func TestSelectWithIndex(t *testing.T) {
	tab := NewTable("r", 3)
	tab.Insert(Row{"a", "1", "x"})
	tab.Insert(Row{"a", "2", "y"})
	tab.Insert(Row{"b", "1", "x"})
	if got := tab.Select([]int{0}, []string{"a"}); len(got) != 2 {
		t.Errorf("Select(0=a) = %v", got)
	}
	if got := tab.Select([]int{0, 2}, []string{"b", "x"}); len(got) != 1 {
		t.Errorf("Select(0=b,2=x) = %v", got)
	}
	if got := tab.Select(nil, nil); len(got) != 3 {
		t.Errorf("Select(all) = %v", got)
	}
	// Insert after index creation must be visible.
	tab.Insert(Row{"a", "3", "z"})
	if got := tab.Select([]int{0}, []string{"a"}); len(got) != 3 {
		t.Errorf("Select after insert = %v", got)
	}
}

func TestSelectMismatchedArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on positions/values mismatch")
		}
	}()
	NewTable("r", 2).Select([]int{0, 1}, []string{"a"})
}

func TestProject(t *testing.T) {
	tab := NewTable("r", 2)
	tab.Insert(Row{"b", "1"})
	tab.Insert(Row{"a", "2"})
	tab.Insert(Row{"a", "3"})
	if got := strings.Join(tab.Project(0), ","); got != "a,b" {
		t.Errorf("Project(0) = %s", got)
	}
}

func TestRowKeyCollision(t *testing.T) {
	if (Row{"ab", "c"}).Key() == (Row{"a", "bc"}).Key() {
		t.Error("row keys collide")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Create("r", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("r", 3); err == nil {
		t.Error("duplicate Create: want error")
	}
	if db.Table("r") == nil || db.Table("x") != nil {
		t.Error("Table lookup misbehaves")
	}
	db.Create("a", 1)
	if got := strings.Join(db.Names(), ","); got != "a,r" {
		t.Errorf("Names = %s", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := NewTable("r", 2)
	tab.Insert(Row{"a", "hello, world"})
	tab.Insert(Row{"b", "line\nbreak"})
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("r", 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Contains(Row{"a", "hello, world"}) || !back.Contains(Row{"b", "line\nbreak"}) {
		t.Errorf("round trip lost rows: %v", back.Rows())
	}
}

func TestReadCSVWrongArity(t *testing.T) {
	if _, err := ReadCSV("r", 3, strings.NewReader("a,b\n")); err == nil {
		t.Error("want arity error")
	}
}

// Property: Select(positions, vals) returns exactly the rows matching the
// predicate, for random small tables.
func TestSelectAgreesWithScanProperty(t *testing.T) {
	f := func(data []uint8, p0 uint8) bool {
		tab := NewTable("r", 2)
		var rows []Row
		for _, d := range data {
			r := Row{fmt.Sprint(d % 4), fmt.Sprint((d >> 2) % 4)}
			if tab.Insert(r) {
				rows = append(rows, r)
			}
		}
		val := fmt.Sprint(p0 % 4)
		got := tab.Select([]int{0}, []string{val})
		want := 0
		for _, r := range rows {
			if r[0] == val {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentSelectInsert(t *testing.T) {
	tab := NewTable("r", 2)
	done := make(chan bool)
	go func() {
		for i := 0; i < 500; i++ {
			tab.Insert(Row{fmt.Sprint(i % 10), fmt.Sprint(i)})
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 500; i++ {
			tab.Select([]int{0}, []string{fmt.Sprint(i % 10)})
		}
		done <- true
	}()
	<-done
	<-done
	if tab.Len() != 500 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestEpochAdvancesPerBatch(t *testing.T) {
	tab := NewTable("r", 2)
	if tab.Epoch() != 1 {
		t.Fatalf("fresh table epoch = %d, want 1", tab.Epoch())
	}
	if n := tab.InsertAll([]Row{{"a", "1"}, {"b", "2"}}); n != 2 {
		t.Fatalf("InsertAll = %d, want 2", n)
	}
	if tab.Epoch() != 2 {
		t.Errorf("after insert batch: epoch = %d, want 2", tab.Epoch())
	}
	if tab.Insert(Row{"a", "1"}) {
		t.Error("duplicate insert reported new")
	}
	if tab.Epoch() != 2 {
		t.Errorf("no-op batch advanced epoch to %d", tab.Epoch())
	}
	if !tab.Delete(Row{"a", "1"}) {
		t.Error("delete of present row reported absent")
	}
	if tab.Epoch() != 3 {
		t.Errorf("after delete: epoch = %d, want 3", tab.Epoch())
	}
	if tab.Delete(Row{"zzz", "9"}) || tab.Epoch() != 3 {
		t.Errorf("no-op delete changed state: epoch = %d", tab.Epoch())
	}
	if tab.Snapshot().ModifiedAt().IsZero() {
		t.Error("mutated table has zero ModifiedAt")
	}
}

func TestDeleteAndRevive(t *testing.T) {
	tab := NewTable("r", 2)
	tab.InsertAll([]Row{{"a", "1"}, {"b", "2"}, {"c", "3"}})
	if n := tab.DeleteAll([]Row{{"b", "2"}, {"nope", "0"}}); n != 1 {
		t.Fatalf("DeleteAll = %d, want 1", n)
	}
	if tab.Len() != 2 || tab.Contains(Row{"b", "2"}) {
		t.Errorf("after delete: Len=%d Contains(b)=%v", tab.Len(), tab.Contains(Row{"b", "2"}))
	}
	if got := tab.Select([]int{0}, []string{"b"}); len(got) != 0 {
		t.Errorf("deleted row still selectable: %v", got)
	}
	if got := tab.Project(0); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Project after delete = %v", got)
	}
	if !tab.Insert(Row{"b", "2"}) {
		t.Error("revive insert reported duplicate")
	}
	if tab.Len() != 3 || !tab.Contains(Row{"b", "2"}) {
		t.Errorf("revive failed: Len=%d", tab.Len())
	}
	if got := tab.Select([]int{0}, []string{"b"}); len(got) != 1 {
		t.Errorf("revived row not selectable: %v", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tab := NewTable("r", 2)
	tab.InsertAll([]Row{{"a", "1"}, {"b", "2"}})
	snap := tab.Snapshot()
	// Force the snapshot's index before mutating, then again after: both
	// reads must see the frozen version.
	if got := snap.Select([]int{0}, []string{"a"}); len(got) != 1 {
		t.Fatalf("pre-mutation select: %v", got)
	}
	tab.Delete(Row{"a", "1"})
	tab.InsertAll([]Row{{"c", "3"}, {"d", "4"}})
	if got := snap.Select([]int{0}, []string{"a"}); len(got) != 1 {
		t.Errorf("snapshot lost a deleted row: %v", got)
	}
	if got := snap.Select([]int{0}, []string{"c"}); len(got) != 0 {
		t.Errorf("snapshot sees a future row: %v", got)
	}
	if snap.Len() != 2 || tab.Len() != 3 {
		t.Errorf("Len: snapshot=%d (want 2) table=%d (want 3)", snap.Len(), tab.Len())
	}
	if snap.Epoch() == tab.Epoch() {
		t.Errorf("snapshot epoch %d did not diverge from table epoch %d", snap.Epoch(), tab.Epoch())
	}
}

func TestConcurrentMutateAndSnapshotRead(t *testing.T) {
	tab := NewTable("r", 2)
	tab.InsertAll([]Row{{"k", "v0"}})
	done := make(chan bool)
	go func() {
		for i := 1; i <= 300; i++ {
			tab.InsertAll([]Row{{"k", fmt.Sprintf("v%d", i)}})
			tab.DeleteAll([]Row{{"k", fmt.Sprintf("v%d", i-1)}})
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 300; i++ {
			snap := tab.Snapshot()
			// Within one snapshot, two reads agree however writers advance.
			a := snap.Select([]int{0}, []string{"k"})
			b := snap.SelectBatch([]int{0}, [][]string{{"k"}})[0]
			if len(a) != len(b) || snap.Len() != len(a) {
				t.Errorf("torn snapshot read: %v vs %v (len %d)", a, b, snap.Len())
				break
			}
		}
		done <- true
	}()
	<-done
	<-done
	if tab.Len() != 1 {
		t.Errorf("final Len = %d, want 1", tab.Len())
	}
}

// TestCompaction: sustained insert/delete churn rewrites the master log
// once tombstones dominate, bounding memory by the live data; snapshots
// published before the compaction keep serving their frozen version.
func TestCompaction(t *testing.T) {
	tab := NewTable("r", 2)
	var all []Row
	for i := 0; i < 3*compactMinDead; i++ {
		all = append(all, Row{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)})
	}
	tab.InsertAll(all)
	pre := tab.Snapshot()
	tab.DeleteAll(all[:len(all)-10])

	tab.wmu.Lock()
	logLen, deadLen := len(tab.rows), len(tab.dead)
	tab.wmu.Unlock()
	if logLen != 10 || deadLen != 0 {
		t.Errorf("after churn: log=%d dead=%d, want compacted to 10 live rows", logLen, deadLen)
	}
	if tab.Len() != 10 {
		t.Errorf("Len = %d, want 10", tab.Len())
	}
	if got := tab.Select([]int{0}, []string{all[len(all)-1][0]}); len(got) != 1 {
		t.Errorf("live row lost by compaction: %v", got)
	}
	if got := tab.Select([]int{0}, []string{"k0"}); len(got) != 0 {
		t.Errorf("deleted row survived compaction: %v", got)
	}
	// The pre-compaction snapshot still serves everything it froze.
	if pre.Len() != len(all) {
		t.Errorf("old snapshot Len = %d, want %d", pre.Len(), len(all))
	}
	if got := pre.Select([]int{0}, []string{"k0"}); len(got) != 1 {
		t.Errorf("old snapshot lost a row after compaction: %v", got)
	}
	// Reinsert after compaction: dedup state was rebuilt correctly.
	if !tab.Insert(all[0]) || tab.Len() != 11 {
		t.Errorf("reinsert after compaction failed (Len=%d)", tab.Len())
	}
}
