package storage

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestInsertDedupAndLen(t *testing.T) {
	tab := NewTable("r", 2)
	if !tab.Insert(Row{"a", "1"}) {
		t.Error("first insert should be new")
	}
	if tab.Insert(Row{"a", "1"}) {
		t.Error("duplicate insert should report false")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
	if !tab.Contains(Row{"a", "1"}) || tab.Contains(Row{"a", "2"}) {
		t.Error("Contains misbehaves")
	}
}

func TestInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on arity mismatch")
		}
	}()
	NewTable("r", 2).Insert(Row{"a"})
}

func TestSelectWithIndex(t *testing.T) {
	tab := NewTable("r", 3)
	tab.Insert(Row{"a", "1", "x"})
	tab.Insert(Row{"a", "2", "y"})
	tab.Insert(Row{"b", "1", "x"})
	if got := tab.Select([]int{0}, []string{"a"}); len(got) != 2 {
		t.Errorf("Select(0=a) = %v", got)
	}
	if got := tab.Select([]int{0, 2}, []string{"b", "x"}); len(got) != 1 {
		t.Errorf("Select(0=b,2=x) = %v", got)
	}
	if got := tab.Select(nil, nil); len(got) != 3 {
		t.Errorf("Select(all) = %v", got)
	}
	// Insert after index creation must be visible.
	tab.Insert(Row{"a", "3", "z"})
	if got := tab.Select([]int{0}, []string{"a"}); len(got) != 3 {
		t.Errorf("Select after insert = %v", got)
	}
}

func TestSelectMismatchedArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on positions/values mismatch")
		}
	}()
	NewTable("r", 2).Select([]int{0, 1}, []string{"a"})
}

func TestProject(t *testing.T) {
	tab := NewTable("r", 2)
	tab.Insert(Row{"b", "1"})
	tab.Insert(Row{"a", "2"})
	tab.Insert(Row{"a", "3"})
	if got := strings.Join(tab.Project(0), ","); got != "a,b" {
		t.Errorf("Project(0) = %s", got)
	}
}

func TestRowKeyCollision(t *testing.T) {
	if (Row{"ab", "c"}).Key() == (Row{"a", "bc"}).Key() {
		t.Error("row keys collide")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Create("r", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("r", 3); err == nil {
		t.Error("duplicate Create: want error")
	}
	if db.Table("r") == nil || db.Table("x") != nil {
		t.Error("Table lookup misbehaves")
	}
	db.Create("a", 1)
	if got := strings.Join(db.Names(), ","); got != "a,r" {
		t.Errorf("Names = %s", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := NewTable("r", 2)
	tab.Insert(Row{"a", "hello, world"})
	tab.Insert(Row{"b", "line\nbreak"})
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("r", 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Contains(Row{"a", "hello, world"}) || !back.Contains(Row{"b", "line\nbreak"}) {
		t.Errorf("round trip lost rows: %v", back.Rows())
	}
}

func TestReadCSVWrongArity(t *testing.T) {
	if _, err := ReadCSV("r", 3, strings.NewReader("a,b\n")); err == nil {
		t.Error("want arity error")
	}
}

// Property: Select(positions, vals) returns exactly the rows matching the
// predicate, for random small tables.
func TestSelectAgreesWithScanProperty(t *testing.T) {
	f := func(data []uint8, p0 uint8) bool {
		tab := NewTable("r", 2)
		var rows []Row
		for _, d := range data {
			r := Row{fmt.Sprint(d % 4), fmt.Sprint((d >> 2) % 4)}
			if tab.Insert(r) {
				rows = append(rows, r)
			}
		}
		val := fmt.Sprint(p0 % 4)
		got := tab.Select([]int{0}, []string{val})
		want := 0
		for _, r := range rows {
			if r[0] == val {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentSelectInsert(t *testing.T) {
	tab := NewTable("r", 2)
	done := make(chan bool)
	go func() {
		for i := 0; i < 500; i++ {
			tab.Insert(Row{fmt.Sprint(i % 10), fmt.Sprint(i)})
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 500; i++ {
			tab.Select([]int{0}, []string{fmt.Sprint(i % 10)})
		}
		done <- true
	}()
	<-done
	<-done
	if tab.Len() != 500 {
		t.Errorf("Len = %d", tab.Len())
	}
}
