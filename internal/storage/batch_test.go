package storage

import (
	"fmt"
	"reflect"
	"testing"
)

// TestSelectBatch: batched selection must agree with Select binding by
// binding, including misses and the empty position set.
func TestSelectBatch(t *testing.T) {
	tab := NewTable("r", 2)
	for i := 0; i < 10; i++ {
		tab.Insert(Row{fmt.Sprintf("a%d", i%3), fmt.Sprintf("b%d", i)})
	}
	bindings := [][]string{{"a0"}, {"a1"}, {"nope"}, {"a2"}, {"a0"}}
	got := tab.SelectBatch([]int{0}, bindings)
	if len(got) != len(bindings) {
		t.Fatalf("got %d results for %d bindings", len(got), len(bindings))
	}
	for i, b := range bindings {
		want := tab.Select([]int{0}, b)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("binding %v: batch %v, single %v", b, got[i], want)
		}
	}
}

func TestSelectBatchFreeRelation(t *testing.T) {
	tab := NewTable("free", 1)
	tab.Insert(Row{"x"})
	tab.Insert(Row{"y"})
	got := tab.SelectBatch(nil, [][]string{{}, {}})
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("free-relation batch = %v, want every row twice", got)
	}
}

func TestSelectBatchArityMismatchPanics(t *testing.T) {
	tab := NewTable("r", 2)
	defer func() {
		if recover() == nil {
			t.Error("mismatched binding width must panic like Select does")
		}
	}()
	tab.SelectBatch([]int{0}, [][]string{{"a", "b"}})
}
