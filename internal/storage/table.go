// Package storage provides the in-memory relational store backing the data
// sources of the reproduction. The paper's prototype kept its sources in
// local PostgreSQL tables and translated each access into an SQL query; here
// a Table plays that role: an immutable-after-load set of rows with lazily
// built hash indexes on the position sets that accesses bind. The cost
// metric of the paper is the number of accesses, not SQL time, so this
// substitution preserves every reported behaviour.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Row is one tuple of a table.
type Row []string

// Key encodes the row into a collision-free string.
func (r Row) Key() string { return strings.Join([]string(r), "\x00") }

// Table is a named set of rows of fixed arity with hash indexes.
type Table struct {
	Name  string
	Arity int

	mu      sync.RWMutex
	rows    []Row
	seen    map[string]bool
	indexes map[string]map[string][]int
}

// NewTable creates an empty table.
func NewTable(name string, arity int) *Table {
	return &Table{Name: name, Arity: arity, seen: make(map[string]bool)}
}

// Insert adds a row, deduplicating; it reports whether the row was new.
func (t *Table) Insert(r Row) bool {
	if len(r) != t.Arity {
		panic(fmt.Sprintf("table %s: row arity %d, want %d", t.Name, len(r), t.Arity))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := r.Key()
	if t.seen[k] {
		return false
	}
	t.seen[k] = true
	t.rows = append(t.rows, r)
	off := len(t.rows) - 1
	for sig, m := range t.indexes {
		m[indexKey(r, parseSig(sig))] = append(m[indexKey(r, parseSig(sig))], off)
	}
	return true
}

// InsertAll adds every row, returning the number of new rows.
func (t *Table) InsertAll(rows []Row) int {
	n := 0
	for _, r := range rows {
		if t.Insert(r) {
			n++
		}
	}
	return n
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Contains reports row membership.
func (t *Table) Contains(r Row) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seen[r.Key()]
}

// Rows returns a copy of all rows.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, len(t.rows))
	copy(out, t.rows)
	return out
}

// Select returns the rows whose values at positions equal vals; with no
// positions it returns every row. Selection is served by a hash index built
// on first use for each distinct position set.
func (t *Table) Select(positions []int, vals []string) []Row {
	if len(positions) != len(vals) {
		panic(fmt.Sprintf("table %s: %d positions for %d values", t.Name, len(positions), len(vals)))
	}
	if len(positions) == 0 {
		return t.Rows()
	}
	t.mu.Lock()
	m := t.indexFor(positions)
	offs := m[strings.Join(vals, "\x00")]
	out := make([]Row, len(offs))
	for i, off := range offs {
		out[i] = t.rows[off]
	}
	t.mu.Unlock()
	return out
}

// indexFor returns the hash index of one position set, building it on
// first use; the caller must hold t.mu.
func (t *Table) indexFor(positions []int) map[string][]int {
	sig := sigOf(positions)
	m, ok := t.indexes[sig]
	if !ok {
		m = make(map[string][]int)
		for off, r := range t.rows {
			k := indexKey(r, positions)
			m[k] = append(m[k], off)
		}
		if t.indexes == nil {
			t.indexes = make(map[string]map[string][]int)
		}
		t.indexes[sig] = m
	}
	return m
}

// SelectBatch answers many selections over the same position set in one
// call: result i holds the rows matching bindings[i], exactly as
// Select(positions, bindings[i]) would return them. The index for the
// position set is built at most once and every binding is served under a
// single lock acquisition, so a batch of N lookups costs one table pass
// instead of N.
func (t *Table) SelectBatch(positions []int, bindings [][]string) [][]Row {
	out := make([][]Row, len(bindings))
	if len(positions) == 0 {
		rows := t.Rows()
		for i := range out {
			out[i] = rows
		}
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.indexFor(positions)
	for i, b := range bindings {
		if len(positions) != len(b) {
			panic(fmt.Sprintf("table %s: %d positions for %d values", t.Name, len(positions), len(b)))
		}
		offs := m[strings.Join(b, "\x00")]
		rows := make([]Row, len(offs))
		for j, off := range offs {
			rows[j] = t.rows[off]
		}
		out[i] = rows
	}
	return out
}

// Project returns the sorted, deduplicated values of one column.
func (t *Table) Project(pos int) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	set := make(map[string]bool)
	for _, r := range t.rows {
		set[r[pos]] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func sigOf(positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = fmt.Sprint(p)
	}
	return strings.Join(parts, ",")
}

func parseSig(sig string) []int {
	parts := strings.Split(sig, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		fmt.Sscan(p, &out[i])
	}
	return out
}

func indexKey(r Row, positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = r[p]
	}
	return strings.Join(parts, "\x00")
}

// Database is a collection of named tables.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDatabase creates an empty database.
func NewDatabase() *Database { return &Database{tables: make(map[string]*Table)} }

// Create adds an empty table; it fails on duplicate names.
func (d *Database) Create(name string, arity int) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[name]; dup {
		return nil, fmt.Errorf("table %s already exists", name)
	}
	t := NewTable(name, arity)
	d.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tables[name]
}

// Names returns the sorted table names.
func (d *Database) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
