// Package storage provides the in-memory relational store backing the data
// sources of the reproduction. The paper's prototype kept its sources in
// local PostgreSQL tables and translated each access into an SQL query; here
// a Table plays that role — a named set of rows with hash indexes on the
// position sets that accesses bind. The cost metric of the paper is the
// number of accesses, not SQL time, so this substitution preserves every
// reported behaviour.
//
// Rows are interned: every value is swapped for its internal/sym ID at
// insert time (ingest, CSV load), so the stored representation is an IRow —
// a flat []sym.ID with no pointers for the GC to trace — and every lookup
// below the insert boundary runs on packed integer keys instead of
// NUL-joined strings. The string Row type remains the boundary
// representation (CSV files, JSON ingestion, results); Select/Rows
// materialize through the symbol table only when a caller asks for strings.
//
// Tables are live: Insert and Delete batches mutate a table while queries
// run. Mutation is copy-on-write — every batch publishes a new immutable
// Snapshot under a monotonically increasing epoch, and readers pick up the
// current snapshot through a single atomic load, so a reader holding a
// snapshot observes a frozen version of the relation no matter how far
// writers advance it. Executors pin one snapshot per relation per execution
// (source.Registry.Snapshot), which is what makes concurrent ingestion safe:
// a query's answers are always the answers over some single epoch of each
// relation, never a torn mix of two.
//
// Indexes are persistent across epochs: all snapshots of a table share one
// copy-on-write index set, and a snapshot that needs an index extends it
// incrementally over the rows appended since the index was last used —
// instead of rebuilding a fresh map per snapshot per position set, the old
// per-snapshot lazy scheme. Buckets hold master-log offsets in ascending
// order; each snapshot serves lookups by cutting a bucket at its own row
// watermark and skipping its own tombstones, so arbitrarily many epochs
// read one shared index without seeing each other's rows. Compaction (which
// renumbers offsets) starts a fresh index set; snapshots published before
// it keep the old one.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toorjah/internal/sym"
)

// Row is one tuple of a table in its boundary representation: plain
// strings, as read from CSV files or JSON ingestion and as rendered into
// results. Inside the table rows are stored interned (IRow).
type Row []string

// Key encodes the row into a collision-free string.
//
//toorjahvet:boundary (Row is the boundary representation; its key is a string by definition)
func (r Row) Key() string { return strings.Join([]string(r), "\x00") }

// Intern swaps every value for its symbol ID (interning first-seen values).
func (r Row) Intern() IRow { return sym.InternAll(r) }

// IRow is one stored tuple: the interned form of a Row. It is the canonical
// representation everywhere below the ingest boundary — storage, sources,
// the cross-query cache and the executors exchange IRows and materialize
// strings only at the result/NDJSON boundary.
type IRow []sym.ID

// Strings materializes the row back into its boundary form.
//
//toorjahvet:boundary (the one sanctioned ID→string exit of a stored row)
func (r IRow) Strings() Row { return sym.Strs(r) }

// Key packs the row into a collision-free map key (4 bytes per value).
func (r IRow) Key() string { return sym.Key(r) }

// InternRows interns a batch of boundary rows.
func InternRows(rows []Row) []IRow {
	out := make([]IRow, len(rows))
	for i, r := range rows {
		out[i] = r.Intern()
	}
	return out
}

// MaterializeRows renders a batch of stored rows into boundary rows.
//
//toorjahvet:boundary (the batch form of IRow.Strings)
func MaterializeRows(rows []IRow) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = r.Strings()
	}
	return out
}

// Table is a named set of rows of fixed arity with hash indexes and
// copy-on-write mutation. The master state — an append-only interned row
// log, the dedup map, and the current tombstone set — belongs to writers
// and is guarded by wmu; readers never touch it. Every mutating batch
// publishes a fresh immutable Snapshot (sharing the row log's backing
// array, which is safe: a snapshot of length n never reads past n, and
// writers only append) carrying the table's shared persistent index set.
type Table struct {
	Name  string
	Arity int

	wmu  sync.Mutex     // serializes writers
	rows []IRow         // append-only master log (interned)
	seen map[string]int // packed row key -> offset in rows
	dead map[int]bool   // current tombstones; copied, never mutated, once published
	idx  *indexSet      // persistent indexes over rows; replaced on compaction
	hook func(CommitEvent)
	snap atomic.Pointer[Snapshot]
}

// CommitOp says what a committed batch did.
type CommitOp uint8

const (
	OpInsert CommitOp = iota + 1
	OpDelete
)

// String names the operation for logs and wire formats.
func (op CommitOp) String() string {
	if op == OpDelete {
		return "delete"
	}
	return "insert"
}

// CommitEvent describes one applied mutating batch: the rows that actually
// changed the table (duplicates and misses filtered out) and the epoch the
// batch advanced the table to. Replaying the events of a table in order on
// an empty table of the same name and arity rebuilds both its live row set
// and its epoch — the contract the write-ahead log persists.
type CommitEvent struct {
	Relation string
	Arity    int
	Op       CommitOp
	Epoch    uint64 // epoch after the batch applied
	Rows     []Row  // the rows actually inserted/deleted, in batch order
}

// SetCommitHook installs fn to be called after every batch that changes
// the table, while the writer lock is still held — events arrive in strict
// epoch order, and the mutating call does not return (so a caller cannot
// observe its own write, let alone acknowledge it) until fn does. A nil fn
// removes the hook. Hooks observe only batches applied after installation.
func (t *Table) SetCommitHook(fn func(CommitEvent)) {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.hook = fn
}

// NewTable creates an empty table at epoch 1.
func NewTable(name string, arity int) *Table {
	t := &Table{Name: name, Arity: arity, seen: make(map[string]int), idx: newIndexSet()}
	t.snap.Store(&Snapshot{name: name, arity: arity, epoch: 1, idx: t.idx})
	return t
}

// RestoreTable rebuilds a table from recovered durable state: the live
// rows it held and the epoch it had reached. It is the write-ahead-log
// recovery entry point — the restored table is observationally identical
// to one that applied the original batches, so epochs keep their meaning
// (cache keys, federation staleness checks) across a restart. Rows that
// disagree with the arity or duplicate earlier rows are dropped. An epoch
// of 0 restores to 1, the epoch of a fresh table.
func RestoreTable(name string, arity int, epoch uint64, rows []Row) *Table {
	t := &Table{Name: name, Arity: arity, seen: make(map[string]int, len(rows)), idx: newIndexSet()}
	var kb []byte
	for _, r := range rows {
		if len(r) != arity {
			continue
		}
		ir := r.Intern()
		kb = sym.AppendKey(kb[:0], ir)
		if _, ok := t.seen[string(kb)]; ok {
			continue
		}
		t.seen[string(kb)] = len(t.rows)
		t.rows = append(t.rows, ir)
	}
	if epoch == 0 {
		epoch = 1
	}
	snap := &Snapshot{
		name:  name,
		arity: arity,
		epoch: epoch,
		rows:  t.rows[:len(t.rows):len(t.rows)],
		idx:   t.idx,
	}
	if epoch > 1 {
		snap.at = time.Now()
	}
	t.snap.Store(snap)
	return t
}

// Snapshot returns the current immutable version of the table. The snapshot
// stays valid and consistent forever: later Insert/Delete batches publish
// new versions without disturbing it.
func (t *Table) Snapshot() *Snapshot { return t.snap.Load() }

// Epoch returns the current version number. Epochs start at 1 and advance
// by one per mutating batch (a batch that changes nothing keeps the epoch).
func (t *Table) Epoch() uint64 { return t.Snapshot().epoch }

// publish installs a new snapshot one epoch past the current one; the
// caller holds wmu and has finished mutating the master state.
func (t *Table) publish() {
	cur := t.snap.Load()
	t.snap.Store(&Snapshot{
		name:  t.Name,
		arity: t.Arity,
		epoch: cur.epoch + 1,
		at:    time.Now(),
		rows:  t.rows[:len(t.rows):len(t.rows)],
		dead:  t.dead,
		idx:   t.idx,
	})
}

// copyDeadLocked returns a private copy of the tombstone set, so the batch
// can mutate it without disturbing published snapshots; wmu is held.
func (t *Table) copyDeadLocked() map[int]bool {
	out := make(map[int]bool, len(t.dead))
	for off := range t.dead {
		out[off] = true
	}
	return out
}

// Insert adds a row, deduplicating; it reports whether the row was new.
// Single-row convenience over InsertAll — batch mutations where possible:
// every changing batch is one copy-on-write step and one epoch.
func (t *Table) Insert(r Row) bool { return t.InsertAll([]Row{r}) == 1 }

// InsertAll adds every row in one batch, interning the values and
// deduplicating against the live contents, and returns the number of rows
// actually added. A batch that adds at least one row advances the table's
// epoch by exactly one; re-inserting a previously deleted row revives it.
func (t *Table) InsertAll(rows []Row) int {
	for _, r := range rows {
		if len(r) != t.Arity {
			panic(fmt.Sprintf("table %s: row arity %d, want %d", t.Name, len(r), t.Arity))
		}
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	n := 0
	deadCopied := false
	var kb []byte
	var applied []Row // collected only when a commit hook is listening
	for _, r := range rows {
		ir := r.Intern()
		kb = sym.AppendKey(kb[:0], ir)
		if off, ok := t.seen[string(kb)]; ok {
			if !t.dead[off] {
				continue
			}
			if !deadCopied {
				t.dead = t.copyDeadLocked()
				deadCopied = true
			}
			delete(t.dead, off)
			n++
			if t.hook != nil {
				applied = append(applied, r)
			}
			continue
		}
		t.seen[string(kb)] = len(t.rows)
		t.rows = append(t.rows, ir)
		n++
		if t.hook != nil {
			applied = append(applied, r)
		}
	}
	if n > 0 {
		t.publish()
		t.commitLocked(OpInsert, applied)
	}
	return n
}

// commitLocked delivers the batch to the commit hook, if any; wmu is held
// and publish has run, so the snapshot carries the post-batch epoch.
func (t *Table) commitLocked(op CommitOp, applied []Row) {
	if t.hook == nil {
		return
	}
	t.hook(CommitEvent{
		Relation: t.Name,
		Arity:    t.Arity,
		Op:       op,
		Epoch:    t.snap.Load().epoch,
		Rows:     applied,
	})
}

// Delete removes a row; it reports whether the row was present.
func (t *Table) Delete(r Row) bool { return t.DeleteAll([]Row{r}) == 1 }

// DeleteAll removes every given row in one batch and returns the number of
// rows actually removed. Deletion is a tombstone over the master log: the
// batch copies the tombstone set once, so published snapshots keep serving
// the rows they were born with. A batch that removes at least one row
// advances the epoch by exactly one.
func (t *Table) DeleteAll(rows []Row) int {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	n := 0
	deadCopied := false
	var applied []Row // collected only when a commit hook is listening
	for _, r := range rows {
		if len(r) != t.Arity {
			continue
		}
		// A row whose values were never interned cannot be stored anywhere.
		ir, ok := sym.LookupAll(r)
		if !ok {
			continue
		}
		off, present := t.seen[sym.Key(ir)]
		if !present || t.dead[off] {
			continue
		}
		if !deadCopied {
			t.dead = t.copyDeadLocked()
			deadCopied = true
		}
		t.dead[off] = true
		n++
		if t.hook != nil {
			applied = append(applied, r)
		}
	}
	if n > 0 {
		t.maybeCompactLocked()
		t.publish()
		t.commitLocked(OpDelete, applied)
	}
	return n
}

// compactMinDead is the tombstone count below which compaction is never
// worth the rewrite.
const compactMinDead = 1024

// maybeCompactLocked rewrites the master log without its tombstoned rows
// once they dominate it, so that sustained insert/delete churn — the
// streaming-ingest workload — keeps memory and index cost proportional to
// the live data, not to everything ever inserted. The rewrite renumbers
// offsets, so it also starts a fresh persistent index set; snapshots
// already published keep the old log and the old indexes untouched.
// Invisible to readers: the next publish carries the usual single epoch
// advance. wmu is held.
func (t *Table) maybeCompactLocked() {
	if len(t.dead) < compactMinDead || 2*len(t.dead) < len(t.rows) {
		return
	}
	live := make([]IRow, 0, len(t.rows)-len(t.dead))
	seen := make(map[string]int, len(t.rows)-len(t.dead))
	for off, r := range t.rows {
		if !t.dead[off] {
			seen[sym.Key(r)] = len(live)
			live = append(live, r)
		}
	}
	t.rows, t.seen, t.dead = live, seen, make(map[int]bool)
	t.idx = newIndexSet()
}

// The read surface of Table delegates to the current snapshot, so callers
// holding only a *Table still get internally consistent single calls; pin a
// Snapshot explicitly for consistency across calls.

// Len returns the number of live rows.
func (t *Table) Len() int { return t.Snapshot().Len() }

// Contains reports row membership.
func (t *Table) Contains(r Row) bool { return t.Snapshot().Contains(r) }

// Rows returns a copy of all live rows in boundary form.
func (t *Table) Rows() []Row { return t.Snapshot().Rows() }

// Select returns the rows whose values at positions equal vals; with no
// positions it returns every row.
func (t *Table) Select(positions []int, vals []string) []Row {
	return t.Snapshot().Select(positions, vals)
}

// SelectBatch answers many selections over the same position set in one
// call; see Snapshot.SelectBatch.
func (t *Table) SelectBatch(positions []int, bindings [][]string) [][]Row {
	return t.Snapshot().SelectBatch(positions, bindings)
}

// Project returns the sorted, deduplicated values of one column.
func (t *Table) Project(pos int) []string { return t.Snapshot().Project(pos) }

// Snapshot is one immutable version of a table: the rows visible at one
// epoch. All methods are safe for concurrent use. Lookups are served by the
// table's persistent index set, shared across snapshots: the first snapshot
// to use a position set builds its index, later epochs only extend it over
// their newly appended rows, and each snapshot filters lookups through its
// own row watermark and tombstones.
type Snapshot struct {
	name  string
	arity int
	epoch uint64
	at    time.Time
	rows  []IRow       // immutable prefix of the master log
	dead  map[int]bool // immutable tombstones over rows
	idx   *indexSet    // shared persistent indexes (see indexSet)

	liveOnce sync.Once
	live     []IRow // cached live rows (== rows when no tombstones)
}

// Epoch returns this version's number; epochs start at 1 and increase by
// one per mutating batch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// ModifiedAt returns when this version was published (zero for the initial
// empty version of a table).
func (s *Snapshot) ModifiedAt() time.Time { return s.at }

// Len returns the number of live rows in this version.
func (s *Snapshot) Len() int { return len(s.rows) - len(s.dead) }

// RowsSym returns the live rows of this version in stored (interned) form.
// The returned slice is shared and must not be mutated; free-relation
// probes serve every access from it without materializing a string.
func (s *Snapshot) RowsSym() []IRow {
	s.liveOnce.Do(func() {
		if len(s.dead) == 0 {
			s.live = s.rows
			return
		}
		live := make([]IRow, 0, s.Len())
		for off, r := range s.rows {
			if !s.dead[off] {
				live = append(live, r)
			}
		}
		s.live = live
	})
	return s.live
}

// Rows returns a copy of the live rows of this version in boundary form.
//
//toorjahvet:boundary (boundary-form adapter over RowsSym)
func (s *Snapshot) Rows() []Row { return MaterializeRows(s.RowsSym()) }

// Contains reports row membership in this version.
func (s *Snapshot) Contains(r Row) bool {
	if len(r) != s.arity {
		return false
	}
	if s.arity == 0 {
		return s.Len() > 0
	}
	ir, ok := sym.LookupAll(r)
	if !ok {
		return false
	}
	positions := make([]int, s.arity)
	for i := range positions {
		positions[i] = i
	}
	return len(s.SelectSym(positions, ir)) > 0
}

// Select returns the rows whose values at positions equal vals; with no
// positions it returns every live row. The boundary-form adapter over
// SelectSym: values never interned match nothing.
//
//toorjahvet:boundary (boundary-form adapter over SelectSym)
func (s *Snapshot) Select(positions []int, vals []string) []Row {
	if len(positions) != len(vals) {
		panic(fmt.Sprintf("table %s: %d positions for %d values", s.name, len(positions), len(vals)))
	}
	if len(positions) == 0 {
		return s.Rows()
	}
	ids, ok := sym.LookupAll(vals)
	if !ok {
		return []Row{}
	}
	return MaterializeRows(s.SelectSym(positions, ids))
}

// SelectSym returns the stored rows whose values at positions equal vals;
// with no positions it returns every live row (shared slice). This is the
// probe primitive of the engine: lookup key packing, index access and the
// returned rows are all integer-only.
func (s *Snapshot) SelectSym(positions []int, vals []sym.ID) []IRow {
	if len(positions) != len(vals) {
		panic(fmt.Sprintf("table %s: %d positions for %d values", s.name, len(positions), len(vals)))
	}
	if len(positions) == 0 {
		return s.RowsSym()
	}
	var kb [64]byte
	key := sym.AppendKey(kb[:0], vals)
	return s.idx.lookup(s, positions, string(key))
}

// SelectBatch answers many selections over the same position set in one
// call: result i holds the rows matching bindings[i], exactly as
// Select(positions, bindings[i]) would return them.
func (s *Snapshot) SelectBatch(positions []int, bindings [][]string) [][]Row {
	out := make([][]Row, len(bindings))
	if len(positions) == 0 {
		rows := s.Rows()
		for i := range out {
			out[i] = rows
		}
		return out
	}
	for i, b := range bindings {
		out[i] = s.Select(positions, b)
	}
	return out
}

// SelectBatchSym answers many interned selections over the same position
// set in one call; the index for the position set is extended at most once,
// so a batch of N lookups costs one index pass instead of N.
func (s *Snapshot) SelectBatchSym(positions []int, bindings [][]sym.ID) [][]IRow {
	out := make([][]IRow, len(bindings))
	if len(positions) == 0 {
		rows := s.RowsSym()
		for i := range out {
			out[i] = rows
		}
		return out
	}
	var kb [64]byte
	for i, b := range bindings {
		if len(positions) != len(b) {
			panic(fmt.Sprintf("table %s: %d positions for %d values", s.name, len(positions), len(b)))
		}
		key := sym.AppendKey(kb[:0], b)
		out[i] = s.idx.lookup(s, positions, string(key))
	}
	return out
}

// Project returns the sorted, deduplicated values of one column.
//
//toorjahvet:boundary (renders a column for boundary callers, off the probe path)
func (s *Snapshot) Project(pos int) []string {
	set := make(map[sym.ID]bool)
	for _, r := range s.RowsSym() {
		set[r[pos]] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, sym.Str(v))
	}
	sort.Strings(out)
	return out
}

// indexSet is the persistent index state shared by every snapshot of one
// table (until a compaction renumbers offsets and starts a fresh set).
// Each index maps a packed value key to the ascending master-log offsets of
// the rows projecting to it, over the prefix [0, built); a snapshot
// extends an index to its own watermark on first use and filters lookups
// through its watermark and tombstone set, so one index serves every epoch.
type indexSet struct {
	mu      sync.RWMutex
	indexes map[string]*index
}

type index struct {
	positions []int
	built     int // rows [0, built) are indexed
	m         map[string][]int32
}

func newIndexSet() *indexSet { return &indexSet{indexes: make(map[string]*index)} }

// lookup returns the rows of snapshot s matching the packed key over the
// position set, extending the index over s's rows first when it lags.
func (ix *indexSet) lookup(s *Snapshot, positions []int, key string) []IRow {
	sig := sigOf(positions)
	ix.mu.RLock()
	in, ok := ix.indexes[sig]
	if !ok || in.built < len(s.rows) {
		ix.mu.RUnlock()
		ix.mu.Lock()
		in = ix.extendLocked(sig, positions, s.rows)
		rows := s.collect(in.m[key])
		ix.mu.Unlock()
		return rows
	}
	rows := s.collect(in.m[key])
	ix.mu.RUnlock()
	return rows
}

// extendLocked brings the index of one position set up to the given row
// prefix; ix.mu is held for writing. Later rows appended by newer epochs
// are indexed when a newer snapshot first looks them up.
func (ix *indexSet) extendLocked(sig string, positions []int, rows []IRow) *index {
	in, ok := ix.indexes[sig]
	if !ok {
		in = &index{positions: append([]int(nil), positions...)}
		in.m = make(map[string][]int32)
		ix.indexes[sig] = in
	}
	var kb [64]byte
	for off := in.built; off < len(rows); off++ {
		key := sym.AppendKey(kb[:0], projectRow(rows[off], in.positions))
		in.m[string(key)] = append(in.m[string(key)], int32(off))
	}
	if len(rows) > in.built {
		in.built = len(rows)
	}
	return in
}

// collect resolves a bucket of master-log offsets into this snapshot's
// rows: offsets are ascending, so the bucket is cut at the snapshot's
// watermark, and the snapshot's own tombstones are skipped.
func (s *Snapshot) collect(offs []int32) []IRow {
	n := len(offs)
	// Binary-search the watermark cut: rows past this snapshot belong to
	// later epochs.
	if n > 0 && int(offs[n-1]) >= len(s.rows) {
		n = sort.Search(n, func(i int) bool { return int(offs[i]) >= len(s.rows) })
	}
	if n == 0 {
		return nil
	}
	out := make([]IRow, 0, n)
	if len(s.dead) == 0 {
		for _, off := range offs[:n] {
			out = append(out, s.rows[off])
		}
		return out
	}
	for _, off := range offs[:n] {
		if !s.dead[int(off)] {
			out = append(out, s.rows[off])
		}
	}
	return out
}

// projectRow gathers the row's values at the given positions; small
// position sets reuse a stack buffer at the call sites via sym.AppendKey.
func projectRow(r IRow, positions []int) []sym.ID {
	out := make([]sym.ID, len(positions))
	for i, p := range positions {
		out[i] = r[p]
	}
	return out
}

func sigOf(positions []int) string {
	var b [16]byte
	out := b[:0]
	for i, p := range positions {
		if i > 0 {
			out = append(out, ',')
		}
		out = appendInt(out, p)
	}
	return string(out)
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// Database is a collection of named tables.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDatabase creates an empty database.
func NewDatabase() *Database { return &Database{tables: make(map[string]*Table)} }

// Create adds an empty table; it fails on duplicate names.
func (d *Database) Create(name string, arity int) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[name]; dup {
		return nil, fmt.Errorf("table %s already exists", name)
	}
	t := NewTable(name, arity)
	d.tables[name] = t
	return t, nil
}

// Attach adds an existing table — typically one rebuilt by RestoreTable
// during recovery; it fails on duplicate names.
func (d *Database) Attach(t *Table) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[t.Name]; dup {
		return fmt.Errorf("table %s already exists", t.Name)
	}
	d.tables[t.Name] = t
	return nil
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tables[name]
}

// Names returns the sorted table names.
func (d *Database) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
