// Package storage provides the in-memory relational store backing the data
// sources of the reproduction. The paper's prototype kept its sources in
// local PostgreSQL tables and translated each access into an SQL query; here
// a Table plays that role — a named set of rows with lazily built hash
// indexes on the position sets that accesses bind. The cost metric of the
// paper is the number of accesses, not SQL time, so this substitution
// preserves every reported behaviour.
//
// Tables are live: Insert and Delete batches mutate a table while queries
// run. Mutation is copy-on-write — every batch publishes a new immutable
// Snapshot under a monotonically increasing epoch, and readers pick up the
// current snapshot through a single atomic load, so a reader holding a
// snapshot observes a frozen version of the relation no matter how far
// writers advance it. Executors pin one snapshot per relation per execution
// (source.Registry.Snapshot), which is what makes concurrent ingestion safe:
// a query's answers are always the answers over some single epoch of each
// relation, never a torn mix of two.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Row is one tuple of a table.
type Row []string

// Key encodes the row into a collision-free string.
func (r Row) Key() string { return strings.Join([]string(r), "\x00") }

// Table is a named set of rows of fixed arity with hash indexes and
// copy-on-write mutation. The master state — an append-only row log, the
// dedup map, and the current tombstone set — belongs to writers and is
// guarded by wmu; readers never touch it. Every mutating batch publishes a
// fresh immutable Snapshot (sharing the row log's backing array, which is
// safe: a snapshot of length n never reads past n, and writers only append).
type Table struct {
	Name  string
	Arity int

	wmu  sync.Mutex     // serializes writers
	rows []Row          // append-only master log
	seen map[string]int // row key -> offset in rows
	dead map[int]bool   // current tombstones; copied, never mutated, once published
	snap atomic.Pointer[Snapshot]
}

// NewTable creates an empty table at epoch 1.
func NewTable(name string, arity int) *Table {
	t := &Table{Name: name, Arity: arity, seen: make(map[string]int)}
	t.snap.Store(&Snapshot{name: name, arity: arity, epoch: 1})
	return t
}

// Snapshot returns the current immutable version of the table. The snapshot
// stays valid and consistent forever: later Insert/Delete batches publish
// new versions without disturbing it.
func (t *Table) Snapshot() *Snapshot { return t.snap.Load() }

// Epoch returns the current version number. Epochs start at 1 and advance
// by one per mutating batch (a batch that changes nothing keeps the epoch).
func (t *Table) Epoch() uint64 { return t.Snapshot().epoch }

// publish installs a new snapshot one epoch past the current one; the
// caller holds wmu and has finished mutating the master state.
func (t *Table) publish() {
	cur := t.snap.Load()
	t.snap.Store(&Snapshot{
		name:  t.Name,
		arity: t.Arity,
		epoch: cur.epoch + 1,
		at:    time.Now(),
		rows:  t.rows[:len(t.rows):len(t.rows)],
		dead:  t.dead,
	})
}

// copyDeadLocked returns a private copy of the tombstone set, so the batch
// can mutate it without disturbing published snapshots; wmu is held.
func (t *Table) copyDeadLocked() map[int]bool {
	out := make(map[int]bool, len(t.dead))
	for off := range t.dead {
		out[off] = true
	}
	return out
}

// Insert adds a row, deduplicating; it reports whether the row was new.
// Single-row convenience over InsertAll — batch mutations where possible:
// every changing batch is one copy-on-write step and one epoch.
func (t *Table) Insert(r Row) bool { return t.InsertAll([]Row{r}) == 1 }

// InsertAll adds every row in one batch, deduplicating against the live
// contents, and returns the number of rows actually added. A batch that
// adds at least one row advances the table's epoch by exactly one;
// re-inserting a previously deleted row revives it.
func (t *Table) InsertAll(rows []Row) int {
	for _, r := range rows {
		if len(r) != t.Arity {
			panic(fmt.Sprintf("table %s: row arity %d, want %d", t.Name, len(r), t.Arity))
		}
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	n := 0
	deadCopied := false
	for _, r := range rows {
		k := r.Key()
		if off, ok := t.seen[k]; ok {
			if !t.dead[off] {
				continue
			}
			if !deadCopied {
				t.dead = t.copyDeadLocked()
				deadCopied = true
			}
			delete(t.dead, off)
			n++
			continue
		}
		t.seen[k] = len(t.rows)
		t.rows = append(t.rows, r)
		n++
	}
	if n > 0 {
		t.publish()
	}
	return n
}

// Delete removes a row; it reports whether the row was present.
func (t *Table) Delete(r Row) bool { return t.DeleteAll([]Row{r}) == 1 }

// DeleteAll removes every given row in one batch and returns the number of
// rows actually removed. Deletion is a tombstone over the master log: the
// batch copies the tombstone set once, so published snapshots keep serving
// the rows they were born with. A batch that removes at least one row
// advances the epoch by exactly one.
func (t *Table) DeleteAll(rows []Row) int {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	n := 0
	deadCopied := false
	for _, r := range rows {
		off, ok := t.seen[r.Key()]
		if !ok || t.dead[off] || len(r) != t.Arity {
			continue
		}
		if !deadCopied {
			t.dead = t.copyDeadLocked()
			deadCopied = true
		}
		t.dead[off] = true
		n++
	}
	if n > 0 {
		t.maybeCompactLocked()
		t.publish()
	}
	return n
}

// compactMinDead is the tombstone count below which compaction is never
// worth the rewrite.
const compactMinDead = 1024

// maybeCompactLocked rewrites the master log without its tombstoned rows
// once they dominate it, so that sustained insert/delete churn — the
// streaming-ingest workload — keeps memory and per-snapshot index cost
// proportional to the live data, not to everything ever inserted. The
// rewrite allocates fresh state; snapshots already published keep the old
// log untouched. Invisible to readers: the next publish carries the usual
// single epoch advance. wmu is held.
func (t *Table) maybeCompactLocked() {
	if len(t.dead) < compactMinDead || 2*len(t.dead) < len(t.rows) {
		return
	}
	live := make([]Row, 0, len(t.rows)-len(t.dead))
	seen := make(map[string]int, len(t.rows)-len(t.dead))
	for off, r := range t.rows {
		if !t.dead[off] {
			seen[r.Key()] = len(live)
			live = append(live, r)
		}
	}
	t.rows, t.seen, t.dead = live, seen, make(map[int]bool)
}

// The read surface of Table delegates to the current snapshot, so callers
// holding only a *Table still get internally consistent single calls; pin a
// Snapshot explicitly for consistency across calls.

// Len returns the number of live rows.
func (t *Table) Len() int { return t.Snapshot().Len() }

// Contains reports row membership.
func (t *Table) Contains(r Row) bool { return t.Snapshot().Contains(r) }

// Rows returns a copy of all live rows.
func (t *Table) Rows() []Row { return t.Snapshot().Rows() }

// Select returns the rows whose values at positions equal vals; with no
// positions it returns every row.
func (t *Table) Select(positions []int, vals []string) []Row {
	return t.Snapshot().Select(positions, vals)
}

// SelectBatch answers many selections over the same position set in one
// call; see Snapshot.SelectBatch.
func (t *Table) SelectBatch(positions []int, bindings [][]string) [][]Row {
	return t.Snapshot().SelectBatch(positions, bindings)
}

// Project returns the sorted, deduplicated values of one column.
func (t *Table) Project(pos int) []string { return t.Snapshot().Project(pos) }

// Snapshot is one immutable version of a table: the rows visible at one
// epoch. All methods are safe for concurrent use; the hash indexes are
// built lazily per snapshot — on first use for each distinct position set —
// under the snapshot's own mutex, while the row data itself is read
// lock-free.
type Snapshot struct {
	name  string
	arity int
	epoch uint64
	at    time.Time
	rows  []Row        // immutable prefix of the master log
	dead  map[int]bool // immutable tombstones over rows

	mu      sync.Mutex
	indexes map[string]map[string][]int
}

// Epoch returns this version's number; epochs start at 1 and increase by
// one per mutating batch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// ModifiedAt returns when this version was published (zero for the initial
// empty version of a table).
func (s *Snapshot) ModifiedAt() time.Time { return s.at }

// Len returns the number of live rows in this version.
func (s *Snapshot) Len() int { return len(s.rows) - len(s.dead) }

// Rows returns a copy of the live rows of this version.
func (s *Snapshot) Rows() []Row {
	out := make([]Row, 0, s.Len())
	for off, r := range s.rows {
		if !s.dead[off] {
			out = append(out, r)
		}
	}
	return out
}

// Contains reports row membership in this version.
func (s *Snapshot) Contains(r Row) bool {
	if len(r) != s.arity {
		return false
	}
	if s.arity == 0 {
		return s.Len() > 0
	}
	positions := make([]int, s.arity)
	for i := range positions {
		positions[i] = i
	}
	return len(s.Select(positions, r)) > 0
}

// Select returns the rows whose values at positions equal vals; with no
// positions it returns every live row. Selection is served by a hash index
// built on first use for each distinct position set.
func (s *Snapshot) Select(positions []int, vals []string) []Row {
	if len(positions) != len(vals) {
		panic(fmt.Sprintf("table %s: %d positions for %d values", s.name, len(positions), len(vals)))
	}
	if len(positions) == 0 {
		return s.Rows()
	}
	m := s.indexFor(positions)
	offs := m[strings.Join(vals, "\x00")]
	out := make([]Row, len(offs))
	for i, off := range offs {
		out[i] = s.rows[off]
	}
	return out
}

// SelectBatch answers many selections over the same position set in one
// call: result i holds the rows matching bindings[i], exactly as
// Select(positions, bindings[i]) would return them. The index for the
// position set is built at most once, so a batch of N lookups costs one
// table pass instead of N.
func (s *Snapshot) SelectBatch(positions []int, bindings [][]string) [][]Row {
	out := make([][]Row, len(bindings))
	if len(positions) == 0 {
		rows := s.Rows()
		for i := range out {
			out[i] = rows
		}
		return out
	}
	m := s.indexFor(positions)
	for i, b := range bindings {
		if len(positions) != len(b) {
			panic(fmt.Sprintf("table %s: %d positions for %d values", s.name, len(positions), len(b)))
		}
		offs := m[strings.Join(b, "\x00")]
		rows := make([]Row, len(offs))
		for j, off := range offs {
			rows[j] = s.rows[off]
		}
		out[i] = rows
	}
	return out
}

// Project returns the sorted, deduplicated values of one column.
func (s *Snapshot) Project(pos int) []string {
	set := make(map[string]bool)
	for off, r := range s.rows {
		if !s.dead[off] {
			set[r[pos]] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// indexFor returns the hash index of one position set, building it on first
// use. Tombstoned rows are skipped at build time, so lookups need no
// per-row liveness check. The index maps are reached only through this
// method, under mu; the offsets they hold point into the immutable rows.
func (s *Snapshot) indexFor(positions []int) map[string][]int {
	sig := sigOf(positions)
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.indexes[sig]
	if !ok {
		m = make(map[string][]int)
		for off, r := range s.rows {
			if s.dead[off] {
				continue
			}
			k := indexKey(r, positions)
			m[k] = append(m[k], off)
		}
		if s.indexes == nil {
			s.indexes = make(map[string]map[string][]int)
		}
		s.indexes[sig] = m
	}
	return m
}

func sigOf(positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = fmt.Sprint(p)
	}
	return strings.Join(parts, ",")
}

func indexKey(r Row, positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = r[p]
	}
	return strings.Join(parts, "\x00")
}

// Database is a collection of named tables.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDatabase creates an empty database.
func NewDatabase() *Database { return &Database{tables: make(map[string]*Table)} }

// Create adds an empty table; it fails on duplicate names.
func (d *Database) Create(name string, arity int) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[name]; dup {
		return nil, fmt.Errorf("table %s already exists", name)
	}
	t := NewTable(name, arity)
	d.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tables[name]
}

// Names returns the sorted table names.
func (d *Database) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
