package cq

import "testing"

func ucq(t *testing.T, lines string) *UCQ {
	t.Helper()
	u, err := ParseUCQ(lines)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestContainsCQInUCQ(t *testing.T) {
	u := ucq(t, `
q(X) :- r(X, Y)
q(X) :- s(X)
`)
	if !ContainsCQInUCQ(u, MustParse("q(X) :- r(X, c), t(X)")) {
		t.Error("restricted r-query is contained in the union")
	}
	if ContainsCQInUCQ(u, MustParse("q(X) :- t(X)")) {
		t.Error("t-query is not contained")
	}
}

// TestSagivYannakakisPerDisjunct: containment in a union does not require a
// single homomorphism target in general for unions of *different* shapes,
// but for CQs it reduces to per-disjunct containment; check both
// directions on a classic pair.
func TestSagivYannakakisPerDisjunct(t *testing.T) {
	u1 := ucq(t, `
q(X) :- e(X, Y), e(Y, Z)
q(X) :- e(X, X)
`)
	// A self-loop query: contained in the second disjunct (and in the first
	// via Y=Z=X too).
	if !ContainsCQInUCQ(u1, MustParse("q(X) :- e(X, X)")) {
		t.Error("self-loop contained")
	}
	u2 := ucq(t, "q(X) :- e(X, Y)")
	if !ContainsUCQ(u2, u1) {
		t.Error("both disjuncts of u1 are restrictions of e(X, Y)")
	}
	if ContainsUCQ(u1, u2) {
		t.Error("e(X, Y) is not contained in u1 (no second edge, no loop)")
	}
}

func TestEquivalentUCQ(t *testing.T) {
	u1 := ucq(t, `
q(X) :- r(X, Y)
q(X) :- r(X, c)
`)
	u2 := ucq(t, "q(X) :- r(X, Y)")
	if !EquivalentUCQ(u1, u2) {
		t.Error("the constant disjunct is redundant; unions are equivalent")
	}
}

func TestMinimizeUCQDropsRedundantDisjuncts(t *testing.T) {
	u := ucq(t, `
q(X) :- r(X, Y)
q(X) :- r(X, c)
q(X) :- r(X, Y), s(Y)
q(X) :- t(X)
`)
	m := MinimizeUCQ(u)
	if len(m.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d, want 2 (r(X,Y) and t(X)): %s", len(m.Disjuncts), m)
	}
	if !EquivalentUCQ(u, m) {
		t.Error("minimized union not equivalent")
	}
}

func TestMinimizeUCQMinimizesDisjuncts(t *testing.T) {
	u := ucq(t, "q(X) :- r(X, Y), r(X, Z)")
	m := MinimizeUCQ(u)
	if len(m.Disjuncts) != 1 || len(m.Disjuncts[0].Body) != 1 {
		t.Errorf("disjunct not minimized: %s", m)
	}
}

func TestMinimizeUCQEquivalentDisjunctsKeepOne(t *testing.T) {
	u := ucq(t, `
q(X) :- r(X, Y)
q(A) :- r(A, B)
`)
	m := MinimizeUCQ(u)
	if len(m.Disjuncts) != 1 {
		t.Errorf("alpha-equivalent disjuncts should collapse: %s", m)
	}
}
