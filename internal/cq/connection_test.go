package cq

import (
	"testing"

	"toorjah/internal/schema"
)

func TestIsConnectionQuery(t *testing.T) {
	pub := schema.MustParse(`
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
sub^oi(Paper, Person)
rev_icde^iio(Person, Paper, Eval)
`)
	cases := []struct {
		query string
		want  bool
	}{
		// Every Paper position holds P, every Person position holds R.
		{"q(R) :- pub1(P, R), pub2(P, R)", true},
		// Single atom with all-distinct domains is trivially connection.
		{"q(P) :- conf(P, C, Y)", true},
		// q1 of the paper: Person R occurs in pub1 and rev jointly — all
		// Person positions hold R, Paper positions hold P, ConfName C,
		// Year Y: connection.
		{"q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)", true},
		// Two distinct Paper variables: not a connection query.
		{"q(R) :- pub1(P, R), conf(P2, C, Y)", false},
		// The paper's q3 is explicitly not a connection query (two Paper
		// variables P and S, two Person variables R and A).
		{"q(R) :- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), rev(R, icde, y2008), conf(P, icde, Y)", false},
		// Mixed constant and variable on one domain: not connection.
		{"q(R) :- rev(R, icde, Y), conf(P, C, Y)", false},
	}
	for _, c := range cases {
		q := MustParse(c.query)
		if got := IsConnectionQuery(q, pub); got != c.want {
			t.Errorf("IsConnectionQuery(%s) = %v, want %v", c.query, got, c.want)
		}
	}
}

// TestConnectionParentExample reproduces the paper's Section VI remark: over
// parent(Person, Person), the only variable-using connection query asks for
// people who are their own parents.
func TestConnectionParentExample(t *testing.T) {
	s := schema.MustParse("parent^oo(Person, Person)")
	selfParent := MustParse("q(X) :- parent(X, X)")
	if !IsConnectionQuery(selfParent, s) {
		t.Error("parent(X, X) is the connection query")
	}
	normal := MustParse("q(X, Y) :- parent(X, Y)")
	if IsConnectionQuery(normal, s) {
		t.Error("parent(X, Y) uses two Person terms: not connection")
	}
}
