package cq

import "toorjah/internal/schema"

// IsConnectionQuery reports whether q belongs to the connection-query class
// of Li & Chang (TODS 2001), the class handled by earlier relevance work and
// discussed in Section VI of the paper: in a connection query, all
// attributes with the same abstract domain must be in join — they must all
// hold one single term — and that term must be either one shared variable
// (all non-selected) or one shared constant (all selected).
//
// Connection queries are inexpressive: over a binary relation
// parent(Person, Person) the only connection query asks for people who are
// their own parents. The paper reports that roughly 70% of its synthetic
// queries are not connection queries (q3 among them); the planner here
// handles arbitrary CQs, which is the paper's main generalization.
func IsConnectionQuery(q *CQ, s *schema.Schema) bool {
	termOf := make(map[schema.Domain]Term)
	for _, a := range q.Body {
		rel := s.Relation(a.Pred)
		if rel == nil || rel.Arity() != len(a.Args) {
			return false // not even valid; certainly not connection
		}
		for i, t := range a.Args {
			d := rel.Domains[i]
			prev, seen := termOf[d]
			if !seen {
				termOf[d] = t
				continue
			}
			if prev != t {
				return false
			}
		}
	}
	return true
}
