package cq

import (
	"strings"
	"testing"
)

// FuzzParseCQ checks that Parse never panics and that its output
// round-trips: whatever parses must render to a string that reparses to
// the same rendering. The fixpoint property pins both the parser (no
// accepted input is mangled) and String (quoting is sufficient for every
// constant the parser can produce).
func FuzzParseCQ(f *testing.F) {
	seeds := []string{
		"q(N) :- r1(A, N, Y1), r2(volare, Y2, A)",
		"q(X, Y) <- edge(X, Z), edge(Z, Y)",
		"q(A) :- person('Domenico Modugno', A)",
		"q(X) :- r(X), not s(X)",
		"q(X) :- r(X), !s(X)",
		"q() :- r(a)",
		"q(X):-r(X,'')",
		"q(_V) :- r(_V, _)",
		"bad(",
		"q(X) :- ",
		"q(X) :- not s(X)",
		"q(X) :- r('a,b', 'c)d', ':-')",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return
		}
		first := q.String()
		q2, err := Parse(first)
		if err != nil {
			t.Fatalf("rendering of %q does not reparse: %v\nrendered: %q", text, err, first)
		}
		if second := q2.String(); second != first {
			t.Fatalf("render/reparse not a fixpoint:\n first: %q\nsecond: %q", first, second)
		}
		if q2.Name != q.Name || q2.Arity() != q.Arity() {
			t.Fatalf("head changed across round-trip: %s/%d vs %s/%d",
				q.Name, q.Arity(), q2.Name, q2.Arity())
		}
	})
}

// FuzzParseUCQ checks the union layer on top: line splitting, comment
// skipping, and cross-disjunct validation never panic, and a parsed union
// renders one disjunct per line that reparses to the same rendering.
func FuzzParseUCQ(f *testing.F) {
	seeds := []string{
		"q(X) :- r(X)\nq(X) :- s(X)",
		"q(X) :- r(X)\n\n# a comment\nq(X) :- t(X, y)",
		"q(X, Y) :- r(X, Y)\nq(X, Y) :- r(Y, X)",
		"q(X) :- r(X)\np(X) :- s(X)",
		"q(X) :- r(X)\nq(X, Y) :- s(X, Y)",
		"# only comments\n\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		u, err := ParseUCQ(text)
		if err != nil {
			return
		}
		if len(u.Disjuncts) == 0 {
			t.Fatalf("ParseUCQ(%q) succeeded with no disjuncts", text)
		}
		first := u.String()
		u2, err := ParseUCQ(first)
		if err != nil {
			t.Fatalf("rendering of %q does not reparse: %v\nrendered: %q", text, err, first)
		}
		if second := u2.String(); second != first {
			t.Fatalf("render/reparse not a fixpoint:\n first: %q\nsecond: %q", first, second)
		}
		// ParseUCQ assigns disjuncts line by line, so no rendered disjunct
		// may swallow its neighbours.
		if got := len(strings.Split(first, "\n")); got != len(u.Disjuncts) {
			t.Fatalf("%d disjuncts rendered as %d lines: %q", len(u.Disjuncts), got, first)
		}
	})
}
