package cq

import (
	"testing"

	"toorjah/internal/schema"
)

func musicSchema() *schema.Schema {
	// Paper Example 1: artists, songs, albums.
	return schema.MustParse(`
r1^ioo(Artist, Nation, YOB)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
}

func TestValidateExample1(t *testing.T) {
	s := musicSchema()
	q := MustParse("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	ty, err := Validate(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if ty.VarDomain["A"] != "Artist" || ty.VarDomain["N"] != "Nation" {
		t.Errorf("VarDomain = %v", ty.VarDomain)
	}
	if ty.ConstDomain["volare"] != "Title" {
		t.Errorf("ConstDomain = %v", ty.ConstDomain)
	}
	// YOB and Year are distinct abstract domains here, so Y1 and Y2 are
	// separate variables; using one variable across both must fail.
	bad := MustParse("q(N) :- r1(A, N, Y), r2(volare, Y, A)")
	if _, err := Validate(bad, s); err == nil {
		t.Error("cross-domain join: want error")
	}
}

func TestValidateSharedYearDomain(t *testing.T) {
	// The paper notes YOB and Year "represent values of the same kind";
	// modelled by giving both positions the same abstract domain.
	s := schema.MustParse(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
`)
	q := MustParse("q(N) :- r1(A, N, Y), r2(volare, Y, A)")
	if _, err := Validate(q, s); err != nil {
		t.Errorf("same-domain join should validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	s := musicSchema()
	cases := []string{
		"q(N) :- nosuch(N)",                  // unknown relation
		"q(N) :- r1(A, N)",                   // wrong arity
		"q(Z) :- r1(A, N, Y)",                // head var not in body
		"q(N) :- r1(A, N, Y), not r3(B, AL)", // unsafe negation
		"q(N) :- r1(volare, N, Y)",           // constant volare in both Artist...
	}
	for _, src := range cases[:4] {
		q := MustParse(src)
		if _, err := Validate(q, s); err == nil {
			t.Errorf("Validate(%q): want error", src)
		}
	}
	// Constant used in two domains.
	q := MustParse("q(N) :- r1(A, N, Y), r2(A2, Y2, A), r1(volare, N2, Y3), r2(volare, Y4, A3)")
	if _, err := Validate(q, s); err == nil {
		t.Error("constant in two domains: want error")
	}
}

func TestValidateHeadConstant(t *testing.T) {
	s := musicSchema()
	q := MustParse("q(italy, A) :- r1(A, italy, Y)")
	ty, err := Validate(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if ty.ConstDomain["italy"] != "Nation" {
		t.Errorf("ConstDomain = %v", ty.ConstDomain)
	}
	// A head constant that never occurs in the body has no domain.
	bad := MustParse("q(mars, A) :- r1(A, N, Y)")
	if _, err := Validate(bad, s); err == nil {
		t.Error("head constant without body occurrence: want error")
	}
}

func TestValidateSafeNegation(t *testing.T) {
	s := musicSchema()
	q := MustParse("q(A) :- r3(A, AL), not r1(A, N, Y)")
	if _, err := Validate(q, s); err == nil {
		t.Error("negated atom introducing N, Y: want error (vars unbound)")
	}
	ok := MustParse("q(A) :- r3(A, AL), r1(A, N, Y), not r2(T, Y2, A)")
	if _, err := Validate(ok, s); err == nil {
		t.Error("negated atom with fresh T, Y2: want error")
	}
	ok2 := MustParse("q(A) :- r3(A, AL), r3(A, AL2), not r3(A, AL2)")
	if _, err := Validate(ok2, s); err != nil {
		t.Errorf("safe negation rejected: %v", err)
	}
}

func TestSeedDomains(t *testing.T) {
	s := musicSchema()
	q := MustParse("q(N) :- r1(A, N, Y1), r2(volare, Y2, A), r3(elvis, AL)")
	ty, err := Validate(q, s)
	if err != nil {
		t.Fatal(err)
	}
	seeds := ty.SeedDomains()
	if len(seeds) != 2 || seeds[0] != "Artist" || seeds[1] != "Title" {
		t.Errorf("SeedDomains = %v", seeds)
	}
}

func TestEliminateConstants(t *testing.T) {
	s := musicSchema()
	q := MustParse("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	ty, err := Validate(q, s)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := EliminateConstants(q, s, ty)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Query.IsConstantFree() {
		t.Fatalf("rewriting still has constants: %s", pre.Query)
	}
	if len(pre.Consts) != 1 || pre.Consts[0].Value != "volare" || pre.Consts[0].Domain != "Title" {
		t.Fatalf("Consts = %+v", pre.Consts)
	}
	rel := pre.Schema.Relation(pre.Consts[0].Name)
	if rel == nil || rel.Arity() != 1 || !rel.Free() || rel.Domains[0] != "Title" {
		t.Fatalf("artificial relation schema: %v", rel)
	}
	// The rewritten query must validate against the extended schema.
	if _, err := Validate(pre.Query, pre.Schema); err != nil {
		t.Fatalf("rewritten query invalid: %v", err)
	}
	// One extra atom for the constant.
	if len(pre.Query.Body) != len(q.Body)+1 {
		t.Errorf("body length %d, want %d", len(pre.Query.Body), len(q.Body)+1)
	}
	// Input schema untouched.
	if s.Has(pre.Consts[0].Name) {
		t.Error("EliminateConstants mutated the input schema")
	}
}

func TestEliminateConstantsRepeatedAndHead(t *testing.T) {
	s := schema.MustParse(`
rev^ooi(Person, ConfName, Year)
conf^ooo(Paper, ConfName, Year)
`)
	q := MustParse("q(icde, R) :- rev(R, icde, Y), conf(P, icde, Y)")
	ty, err := Validate(q, s)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := EliminateConstants(q, s, ty)
	if err != nil {
		t.Fatal(err)
	}
	// icde appears three times (twice in body, once in head) but yields one
	// artificial relation and one replacement variable.
	if len(pre.Consts) != 1 {
		t.Fatalf("Consts = %+v", pre.Consts)
	}
	if !pre.Query.IsConstantFree() {
		t.Fatalf("still has constants: %s", pre.Query)
	}
	if pre.HeadConsts[0] != "icde" {
		t.Errorf("HeadConsts = %v", pre.HeadConsts)
	}
	if !pre.Query.Head[0].IsVar {
		t.Errorf("head constant not replaced: %s", pre.Query)
	}
	v := pre.Query.Head[0].Name
	if pre.Query.Body[1].Args[1].Name != v || pre.Query.Body[2].Args[1].Name != v {
		t.Errorf("occurrences should share the variable: %s", pre.Query)
	}
}

func TestEliminateConstantsNameCollision(t *testing.T) {
	s := schema.MustParse(`r^oo(A, A)`)
	q := MustParse("q(X) :- r(X, foo), r(X, 'Foo')")
	ty, err := Validate(q, s)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := EliminateConstants(q, s, ty)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.Consts) != 2 {
		t.Fatalf("want 2 artificial relations, got %+v", pre.Consts)
	}
	if pre.Consts[0].Name == pre.Consts[1].Name {
		t.Errorf("sanitized names collide: %+v", pre.Consts)
	}
}

func TestIsConstRelation(t *testing.T) {
	if v, ok := IsConstRelation("l_volare"); !ok || v != "volare" {
		t.Errorf("IsConstRelation = %q, %v", v, ok)
	}
	if _, ok := IsConstRelation("pub1"); ok {
		t.Error("pub1 is not a const relation")
	}
}
