package cq

import (
	"testing"
	"testing/quick"
)

func TestContainmentBasics(t *testing.T) {
	q1 := MustParse("q(X) :- r(X, Y)")
	q2 := MustParse("q(X) :- r(X, Y), s(Y)")
	// q2 has an extra conjunct, so q2 ⊆ q1 but not conversely.
	if !Contains(q1, q2) {
		t.Error("q1 should contain q2")
	}
	if Contains(q2, q1) {
		t.Error("q2 should not contain q1")
	}
	if Equivalent(q1, q2) {
		t.Error("not equivalent")
	}
}

func TestContainmentRenaming(t *testing.T) {
	q1 := MustParse("q(X) :- r(X, Y), r(Y, Z)")
	q2 := MustParse("q(A) :- r(A, B), r(B, C)")
	if !Equivalent(q1, q2) {
		t.Error("alpha-equivalent queries must be equivalent")
	}
}

func TestContainmentConstants(t *testing.T) {
	q1 := MustParse("q(X) :- r(X, Y)")
	q2 := MustParse("q(X) :- r(X, c)")
	// Mapping Y -> c shows q2 ⊆ q1.
	if !Contains(q1, q2) {
		t.Error("q1 should contain the constant-restricted q2")
	}
	if Contains(q2, q1) {
		t.Error("constant can't map to a variable")
	}
	q3 := MustParse("q(X) :- r(X, d)")
	if Contains(q2, q3) || Contains(q3, q2) {
		t.Error("distinct constants are incomparable")
	}
}

func TestContainmentHeadMismatch(t *testing.T) {
	q1 := MustParse("q(X, Y) :- r(X, Y)")
	q2 := MustParse("q(X) :- r(X, X)")
	if Contains(q1, q2) || Contains(q2, q1) {
		t.Error("different arities are incomparable")
	}
}

func TestContainmentClassicCycleIntoSelfLoop(t *testing.T) {
	// The canonical example: a length-2 cycle query is contained in the
	// self-loop query's... precisely: q_loop(X) :- e(X, X) maps into any
	// query only via X. And q2(X) :- e(X, Y), e(Y, X) contains q_loop.
	loop := MustParse("q(X) :- e(X, X)")
	cyc := MustParse("q(X) :- e(X, Y), e(Y, X)")
	if !Contains(cyc, loop) {
		t.Error("cycle query contains the self-loop query")
	}
	if Contains(loop, cyc) {
		t.Error("self-loop does not contain the 2-cycle")
	}
}

func TestMinimizePathIntoEdge(t *testing.T) {
	// Redundant chain: r(X,Y), r(X,Z) minimizes to one atom (Z maps to Y).
	q := MustParse("q(X) :- r(X, Y), r(X, Z)")
	m := Minimize(q)
	if len(m.Body) != 1 {
		t.Errorf("Minimize: %s", m)
	}
	if !Equivalent(q, m) {
		t.Error("minimized query not equivalent")
	}
}

func TestMinimizeKeepsCore(t *testing.T) {
	// Nothing removable: head uses both variables.
	q := MustParse("q(X, Z) :- r(X, Y), r(Y, Z)")
	m := Minimize(q)
	if len(m.Body) != 2 {
		t.Errorf("Minimize removed a needed atom: %s", m)
	}
	if !IsMinimal(q) {
		t.Error("IsMinimal")
	}
	red := MustParse("q(X) :- r(X, Y), r(X, Z)")
	if IsMinimal(red) {
		t.Error("redundant query reported minimal")
	}
}

func TestMinimizeRespectsConstants(t *testing.T) {
	q := MustParse("q(X) :- r(X, a), r(X, Y)")
	m := Minimize(q)
	// r(X, Y) maps into r(X, a) via Y -> a, so only the constant atom stays.
	if len(m.Body) != 1 {
		t.Fatalf("Minimize: %s", m)
	}
	if m.Body[0].Args[1].IsVar {
		t.Errorf("kept the wrong atom: %s", m)
	}
}

func TestMinimizeSafeNegation(t *testing.T) {
	// r(X, Y) is redundant wrt r(X, Z) only if dropping it keeps Y bound;
	// Y occurs in the negated atom, so the removal must be rejected.
	q := MustParse("q(X) :- r(X, Y), r(X, Z), not s(Y)")
	m := Minimize(q)
	for _, a := range m.Body {
		for _, tm := range a.Args {
			_ = tm
		}
	}
	// Y must still be bound by some positive atom.
	if !safeForNegation(m) {
		t.Fatalf("minimization broke negation safety: %s", m)
	}
	if len(m.Negated) != 1 {
		t.Errorf("negated atoms must be preserved: %s", m)
	}
}

func TestMinimizeSingleAtomUntouched(t *testing.T) {
	q := MustParse("q(X) :- r(X, X)")
	m := Minimize(q)
	if len(m.Body) != 1 {
		t.Errorf("single-atom query must stay: %s", m)
	}
}

// Property: Minimize is idempotent and always yields an equivalent query.
func TestMinimizeIdempotentProperty(t *testing.T) {
	queries := []*CQ{
		MustParse("q(X) :- r(X, Y), r(Y, Z), r(X, Z)"),
		MustParse("q(X) :- r(X, Y), r(X, Z), s(Z)"),
		MustParse("q(X, Y) :- e(X, Y), e(Y, X), e(X, X)"),
		MustParse("q(X) :- a(X, Y), b(Y, W), a(X, Z), b(Z, W)"),
		MustParse("q(X) :- r(X, c), r(X, Y), s(Y, c)"),
	}
	for _, q := range queries {
		m := Minimize(q)
		if !Equivalent(q, m) {
			t.Errorf("Minimize(%s) = %s not equivalent", q, m)
		}
		m2 := Minimize(m)
		if len(m2.Body) != len(m.Body) {
			t.Errorf("Minimize not idempotent on %s: %s then %s", q, m, m2)
		}
	}
}

// Property: containment is reflexive and transitive on a pool of queries.
func TestContainmentPreorderProperty(t *testing.T) {
	pool := []*CQ{
		MustParse("q(X) :- r(X, Y)"),
		MustParse("q(X) :- r(X, Y), s(Y)"),
		MustParse("q(X) :- r(X, Y), s(Y), t(Y)"),
		MustParse("q(X) :- r(X, c)"),
		MustParse("q(X) :- r(X, X)"),
		MustParse("q(X) :- r(X, Y), r(Y, X)"),
	}
	for _, q := range pool {
		if !Contains(q, q) {
			t.Errorf("containment not reflexive on %s", q)
		}
	}
	f := func(i, j, k uint8) bool {
		a := pool[int(i)%len(pool)]
		b := pool[int(j)%len(pool)]
		c := pool[int(k)%len(pool)]
		if Contains(a, b) && Contains(b, c) && !Contains(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRenameApart(t *testing.T) {
	q := MustParse("q(X) :- r(X, Y)")
	r := RenameApart(q, "_1")
	if r.Head[0].Name != "X_1" || r.Body[0].Args[1].Name != "Y_1" {
		t.Errorf("RenameApart: %s", r)
	}
	if !Equivalent(q, r) {
		t.Error("renaming must preserve equivalence")
	}
}

func TestHomomorphismMapping(t *testing.T) {
	q1 := MustParse("q(X) :- r(X, Y)")
	q2 := MustParse("q(A) :- r(A, c), s(A)")
	h := Homomorphism(q1, q2)
	if h == nil {
		t.Fatal("no homomorphism found")
	}
	if h["X"] != V("A") || h["Y"] != C("c") {
		t.Errorf("mapping = %v", h)
	}
}
