package cq

import "fmt"

// Homomorphism searches for a homomorphism from query q1 to query q2: a
// mapping h of q1's variables to q2's terms such that h is the identity on
// constants, h(head(q1)) = head(q2) position-wise, and every positive body
// atom of q1 maps to a positive body atom of q2. Negated atoms are ignored
// (containment with negation is beyond Chandra–Merlin and not needed by the
// planner). It returns the mapping, or nil when none exists.
//
// By the Chandra–Merlin theorem, q2 ⊆ q1 (every answer of q2 is an answer of
// q1 on all databases) iff such a homomorphism exists.
func Homomorphism(q1, q2 *CQ) map[string]Term {
	if len(q1.Head) != len(q2.Head) {
		return nil
	}
	h := make(map[string]Term)
	// Seed the mapping with the head correspondence.
	for i, t := range q1.Head {
		if !bindTerm(h, t, q2.Head[i]) {
			return nil
		}
	}
	if mapAtoms(q1.Body, q2.Body, h) {
		return h
	}
	return nil
}

// bindTerm extends h so that term src of q1 maps to term dst of q2; it
// reports whether the extension is consistent.
func bindTerm(h map[string]Term, src, dst Term) bool {
	if !src.IsVar {
		// Constants must map to themselves.
		return !dst.IsVar && src.Name == dst.Name
	}
	if prev, ok := h[src.Name]; ok {
		return prev == dst
	}
	h[src.Name] = dst
	return true
}

// mapAtoms extends h to map every atom of src into some atom of dst,
// backtracking over the choices.
func mapAtoms(src, dst []Atom, h map[string]Term) bool {
	if len(src) == 0 {
		return true
	}
	a := src[0]
	for _, b := range dst {
		if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
			continue
		}
		// Try to map a onto b, remembering which variables we newly bind so
		// we can undo on failure.
		var added []string
		ok := true
		for i := range a.Args {
			s, d := a.Args[i], b.Args[i]
			if s.IsVar {
				if _, bound := h[s.Name]; !bound {
					added = append(added, s.Name)
				}
			}
			if !bindTerm(h, s, d) {
				ok = false
				break
			}
		}
		if ok && mapAtoms(src[1:], dst, h) {
			return true
		}
		for _, v := range added {
			delete(h, v)
		}
	}
	return false
}

// Contains reports whether q1 contains q2 (q2 ⊆ q1): every answer of q2 is
// an answer of q1 over every database instance.
func Contains(q1, q2 *CQ) bool { return Homomorphism(q1, q2) != nil }

// Equivalent reports whether the two queries are logically equivalent.
func Equivalent(q1, q2 *CQ) bool { return Contains(q1, q2) && Contains(q2, q1) }

// Minimize computes the core of q: an equivalent query with a minimal set of
// body atoms, obtained by repeatedly dropping atoms whose removal preserves
// equivalence (paper Section IV assumes a minimal CQ as planner input; the
// underlying decision problem is the NP-complete CQ minimization of Chandra
// and Merlin). Negated atoms are retained verbatim: dropping a negated atom
// never preserves equivalence, and positive-atom removal is checked against
// the positive part only, which is sound because the negated atoms are safe
// (all their variables also occur in retained positive atoms, re-checked
// before accepting a removal).
func Minimize(q *CQ) *CQ {
	cur := q.Clone()
	for {
		removed := false
		for i := range cur.Body {
			if len(cur.Body) == 1 {
				break
			}
			cand := &CQ{Name: cur.Name, Head: cur.Head, Negated: cur.Negated}
			cand.Body = append(cand.Body, cur.Body[:i]...)
			cand.Body = append(cand.Body, cur.Body[i+1:]...)
			if !safeForNegation(cand) {
				continue
			}
			// cand has a subset of cur's atoms, hence cur ⊆ cand always; the
			// removal is sound iff cand ⊆ cur, i.e. a homomorphism cur → cand.
			if Contains(cur, cand) {
				cur = cand.Clone()
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// safeForNegation reports whether every head variable and every variable of
// a negated atom still occurs in a positive body atom.
func safeForNegation(q *CQ) bool {
	positive := make(map[string]bool)
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar {
				positive[t.Name] = true
			}
		}
	}
	for _, t := range q.Head {
		if t.IsVar && !positive[t.Name] {
			return false
		}
	}
	for _, a := range q.Negated {
		for _, t := range a.Args {
			if t.IsVar && !positive[t.Name] {
				return false
			}
		}
	}
	return true
}

// IsMinimal reports whether no single body atom can be dropped from q while
// preserving equivalence.
func IsMinimal(q *CQ) bool { return len(Minimize(q).Body) == len(q.Body) }

// RenameApart returns a copy of q whose variables are renamed with the given
// suffix so they are disjoint from any other query's variables.
func RenameApart(q *CQ, suffix string) *CQ {
	sub := make(map[string]Term)
	for _, v := range q.Vars() {
		sub[v] = V(fmt.Sprintf("%s%s", v, suffix))
	}
	return q.Substitute(sub)
}
