package cq

import (
	"fmt"

	"toorjah/internal/schema"
)

// Typing records the abstract domain of every variable and constant of a
// query, as inferred from the argument positions they occupy.
type Typing struct {
	// VarDomain maps variable name to its abstract domain.
	VarDomain map[string]schema.Domain
	// ConstDomain maps constant value to its abstract domain.
	ConstDomain map[string]schema.Domain
}

// SeedDomains returns the sorted domains of the constants occurring in the
// query; these are the initial obtainable domains of the evaluation.
func (t *Typing) SeedDomains() []schema.Domain {
	set := make(map[schema.Domain]bool)
	for _, d := range t.ConstDomain {
		set[d] = true
	}
	out := make([]schema.Domain, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sortDomains(out)
	return out
}

func sortDomains(ds []schema.Domain) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// Validate checks a query against a schema and infers its typing. It
// enforces:
//
//   - every body predicate exists in the schema, with matching arity;
//   - every variable and constant occupies positions of a single abstract
//     domain (the paper's abstract-domain discipline: joins are only
//     meaningful within one domain);
//   - every head variable occurs in a positive body atom (safety);
//   - every variable of a negated atom occurs in a positive atom (safe
//     negation).
func Validate(q *CQ, s *schema.Schema) (*Typing, error) {
	t := &Typing{
		VarDomain:   make(map[string]schema.Domain),
		ConstDomain: make(map[string]schema.Domain),
	}
	record := func(term Term, d schema.Domain, where string) error {
		m := t.VarDomain
		if !term.IsVar {
			m = t.ConstDomain
		}
		if prev, ok := m[term.Name]; ok && prev != d {
			kind := "variable"
			if !term.IsVar {
				kind = "constant"
			}
			return fmt.Errorf("query %s: %s %q used with domains %s and %s (%s)",
				q.Name, kind, term.Name, prev, d, where)
		}
		m[term.Name] = d
		return nil
	}
	checkAtom := func(a Atom) error {
		r := s.Relation(a.Pred)
		if r == nil {
			return fmt.Errorf("query %s: unknown relation %s", q.Name, a.Pred)
		}
		if len(a.Args) != r.Arity() {
			return fmt.Errorf("query %s: atom %s has %d arguments, relation has arity %d",
				q.Name, a, len(a.Args), r.Arity())
		}
		for i, term := range a.Args {
			if err := record(term, r.Domains[i], a.String()); err != nil {
				return err
			}
		}
		return nil
	}
	if len(q.Body) == 0 {
		return nil, fmt.Errorf("query %s: empty body", q.Name)
	}
	for _, a := range q.Body {
		if err := checkAtom(a); err != nil {
			return nil, err
		}
	}
	for _, a := range q.Negated {
		if err := checkAtom(a); err != nil {
			return nil, err
		}
	}
	// Safety of the head and of negated atoms.
	positive := make(map[string]bool)
	for _, a := range q.Body {
		for _, term := range a.Args {
			if term.IsVar {
				positive[term.Name] = true
			}
		}
	}
	for _, term := range q.Head {
		if term.IsVar && !positive[term.Name] {
			return nil, fmt.Errorf("query %s: head variable %s does not occur in the body", q.Name, term.Name)
		}
		if !term.IsVar {
			if _, ok := t.ConstDomain[term.Name]; !ok {
				return nil, fmt.Errorf("query %s: head constant %q does not occur in the body (domain unknown)",
					q.Name, term.Name)
			}
		}
	}
	for _, a := range q.Negated {
		for _, term := range a.Args {
			if term.IsVar && !positive[term.Name] {
				return nil, fmt.Errorf("query %s: negated atom %s uses variable %s not bound by a positive atom",
					q.Name, a, term.Name)
			}
		}
	}
	return t, nil
}

// ValidateUCQ validates every disjunct of a union against the schema.
func ValidateUCQ(u *UCQ, s *schema.Schema) ([]*Typing, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	out := make([]*Typing, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		t, err := Validate(d, s)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}
