package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a single conjunctive query in Datalog notation:
//
//	q(N) :- r1(A, N, Y1), r2('volare', Y2, A), not r3(A)
//
// The separator may be ":-" or "<-". Identifiers beginning with an
// upper-case letter or underscore are variables; single-quoted strings and
// all other identifiers are constants.
func Parse(text string) (*CQ, error) {
	p := &parser{src: text}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errf("trailing input %q", p.rest())
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(text string) *CQ {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

// IsUnion reports whether a query text is a union under ParseUCQ's
// line-splitting rules: more than one non-blank, non-comment line. Both
// binaries use it to route a text to Parse or ParseUCQ.
func IsUnion(text string) bool {
	lines := 0
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
	}
	return lines > 1
}

// ParseUCQ parses a union of conjunctive queries, one disjunct per line
// (blank lines and '#' comments ignored). All disjuncts must share the head
// predicate and arity.
func ParseUCQ(text string) (*UCQ, error) {
	u := &UCQ{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if u.Name == "" {
			u.Name = q.Name
		}
		u.Disjuncts = append(u.Disjuncts, q)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query parse at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) eof() bool     { return p.pos >= len(p.src) }
func (p *parser) rest() string  { return p.src[p.pos:] }
func (p *parser) peek() byte    { return p.src[p.pos] }
func (p *parser) advance() byte { b := p.src[p.pos]; p.pos++; return b }

func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
}

func (p *parser) expect(tok string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.rest(), tok) {
		return p.errf("expected %q", tok)
	}
	p.pos += len(tok)
	return nil
}

func (p *parser) parseQuery() (*CQ, error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, fmt.Errorf("head: %w", err)
	}
	p.skipSpace()
	switch {
	case strings.HasPrefix(p.rest(), ":-"):
		p.pos += 2
	case strings.HasPrefix(p.rest(), "<-"):
		p.pos += 2
	default:
		return nil, p.errf("expected \":-\" or \"<-\" after head")
	}
	q := &CQ{Name: head.Pred, Head: head.Args}
	for {
		p.skipSpace()
		neg := false
		if strings.HasPrefix(p.rest(), "not ") || strings.HasPrefix(p.rest(), "not\t") {
			neg = true
			p.pos += 4
		} else if strings.HasPrefix(p.rest(), "!") {
			neg = true
			p.pos++
		}
		a, err := p.parseAtom()
		if err != nil {
			return nil, fmt.Errorf("body: %w", err)
		}
		if neg {
			q.Negated = append(q.Negated, a)
		} else {
			q.Body = append(q.Body, a)
		}
		p.skipSpace()
		if p.eof() || p.peek() != ',' {
			break
		}
		p.pos++ // consume ','
	}
	if len(q.Body) == 0 && len(q.Negated) > 0 {
		return nil, p.errf("query with only negated atoms is unsafe")
	}
	if len(q.Body) == 0 {
		return nil, p.errf("query with empty body")
	}
	return q, nil
}

func (p *parser) parseAtom() (Atom, error) {
	p.skipSpace()
	name, err := p.parseIdent()
	if err != nil {
		return Atom{}, err
	}
	if err := p.expect("("); err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name}
	p.skipSpace()
	if !p.eof() && p.peek() == ')' {
		p.pos++
		return a, nil // nullary atom
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		p.skipSpace()
		if p.eof() {
			return Atom{}, p.errf("unterminated atom %s", name)
		}
		switch p.advance() {
		case ',':
			continue
		case ')':
			return a, nil
		default:
			return Atom{}, p.errf("expected ',' or ')' in atom %s", name)
		}
	}
}

func (p *parser) parseTerm() (Term, error) {
	p.skipSpace()
	if p.eof() {
		return Term{}, p.errf("expected term")
	}
	if p.peek() == '\'' {
		p.pos++
		start := p.pos
		for !p.eof() && p.peek() != '\'' {
			p.pos++
		}
		if p.eof() {
			return Term{}, p.errf("unterminated quoted constant")
		}
		val := p.src[start:p.pos]
		p.pos++ // closing quote
		return C(val), nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return Term{}, err
	}
	first := rune(name[0])
	if unicode.IsUpper(first) || first == '_' {
		return V(name), nil
	}
	return C(name), nil
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := p.peek()
		if c == '(' || c == ')' || c == ',' || c == ' ' || c == '\t' ||
			c == '\n' || c == '\r' || c == '\'' {
			break
		}
		if c == ':' || c == '<' { // start of the rule separator
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}
