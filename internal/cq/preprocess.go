package cq

import (
	"fmt"
	"strings"

	"toorjah/internal/schema"
)

// ConstPrefix prefixes the names of the artificial relations created by
// EliminateConstants (the paper's ℓ_a relations); the prefix keeps them
// disjoint from user relation names.
const ConstPrefix = "l_"

// ConstRelation describes an artificial unary relation introduced for a
// query constant: an output-only relation of the constant's abstract domain
// whose extension is exactly the singleton {⟨value⟩}.
type ConstRelation struct {
	Name   string
	Value  string
	Domain schema.Domain
}

// Preprocessed is the result of constant elimination: an equivalent
// constant-free query over the schema extended with one artificial relation
// per (constant, domain) pair.
type Preprocessed struct {
	// Query is the constant-free rewriting of the original query. For every
	// occurrence of a constant a at a body position of domain A, a fresh
	// variable replaces the constant and an atom l_a(X) is appended.
	Query *CQ
	// Schema is the input schema extended with the artificial relations.
	Schema *schema.Schema
	// Consts lists the artificial relations in deterministic order.
	Consts []ConstRelation
	// HeadConsts maps, for each head position holding a constant in the
	// original query, the position to the constant. The rewritten head uses
	// a variable bound by the corresponding artificial atom.
	HeadConsts map[int]string
}

// EliminateConstants rewrites q into an equivalent constant-free query, as
// in Section III of the paper: every constant a acts as an artificial
// relation ℓ_a with a single output attribute whose content is exactly ⟨a⟩.
// For example q(Y) :- r(a, Y) becomes q(Y) :- r(X, Y), l_a(X).
func EliminateConstants(q *CQ, s *schema.Schema, typing *Typing) (*Preprocessed, error) {
	out := &Preprocessed{
		Query:      &CQ{Name: q.Name},
		Schema:     s.Clone(),
		HeadConsts: make(map[int]string),
	}
	used := make(map[string]bool)
	for _, v := range q.Vars() {
		used[v] = true
	}
	constVar := make(map[string]string)  // constant value -> replacement variable
	nameOwner := make(map[string]string) // artificial relation name -> constant value
	fresh := func(base string) string {
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s%d", base, i)
		}
		used[name] = true
		return name
	}
	handle := func(value string) (string, error) {
		if v, ok := constVar[value]; ok {
			return v, nil
		}
		d, ok := typing.ConstDomain[value]
		if !ok {
			return "", fmt.Errorf("constant %q has no inferred domain", value)
		}
		name := constRelName(value)
		for i := 2; ; i++ {
			owner, taken := nameOwner[name]
			if !taken || owner == value {
				break
			}
			name = fmt.Sprintf("%s_%d", constRelName(value), i)
		}
		nameOwner[name] = value
		rel := ConstRelation{Name: name, Value: value, Domain: d}
		v := fresh("X_" + sanitizeIdent(value))
		constVar[value] = v
		if !out.Schema.Has(rel.Name) {
			r, err := schema.NewRelation(rel.Name, "o", d)
			if err != nil {
				return "", err
			}
			if err := out.Schema.Add(r); err != nil {
				return "", err
			}
		}
		out.Consts = append(out.Consts, rel)
		out.Query.Body = append(out.Query.Body, Atom{Pred: rel.Name, Args: []Term{V(v)}})
		return v, nil
	}
	rewriteArgs := func(args []Term) ([]Term, error) {
		nargs := make([]Term, len(args))
		for i, t := range args {
			if t.IsVar {
				nargs[i] = t
				continue
			}
			v, err := handle(t.Name)
			if err != nil {
				return nil, err
			}
			nargs[i] = V(v)
		}
		return nargs, nil
	}
	// The artificial atoms are appended as they are first encountered, then
	// the original atoms follow; order within the body is immaterial.
	for _, a := range q.Body {
		nargs, err := rewriteArgs(a.Args)
		if err != nil {
			return nil, err
		}
		out.Query.Body = append(out.Query.Body, Atom{Pred: a.Pred, Args: nargs})
	}
	for _, a := range q.Negated {
		nargs, err := rewriteArgs(a.Args)
		if err != nil {
			return nil, err
		}
		out.Query.Negated = append(out.Query.Negated, Atom{Pred: a.Pred, Args: nargs})
	}
	out.Query.Head = make([]Term, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			out.Query.Head[i] = t
			continue
		}
		out.HeadConsts[i] = t.Name
		v, err := handle(t.Name)
		if err != nil {
			return nil, err
		}
		out.Query.Head[i] = V(v)
	}
	return out, nil
}

// constRelName builds the artificial relation name for a constant.
func constRelName(value string) string { return ConstPrefix + sanitizeIdent(value) }

// IsConstRelation reports whether a relation name denotes an artificial
// constant relation, returning the constant value it carries.
func IsConstRelation(name string) (value string, ok bool) {
	if !strings.HasPrefix(name, ConstPrefix) {
		return "", false
	}
	return strings.TrimPrefix(name, ConstPrefix), true
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
		default:
			fmt.Fprintf(&b, "x%02x", c)
		}
	}
	if b.Len() == 0 {
		return "empty"
	}
	return b.String()
}
