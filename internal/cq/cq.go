// Package cq implements conjunctive queries (CQs) and unions of conjunctive
// queries (UCQs) over schemas with access limitations, together with the
// classic operations the planner of Calì & Martinenghi (ICDE 2008) relies
// on: parsing, validation against a schema (including abstract-domain
// consistency), constant elimination into artificial unary relations,
// Chandra–Merlin containment, and CQ minimization.
//
// A CQ is written in Datalog notation:
//
//	q(N) :- r1(A, N, Y1), r2(volare, Y2, A)
//
// Identifiers starting with an upper-case letter or '_' are variables;
// everything else (including quoted strings and numbers) is a constant. An
// optional "not " prefix marks a negated atom (the safe-negation extension
// mentioned in the paper's conclusion).
package cq

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// Term is a variable or a constant appearing in an atom or in a query head.
type Term struct {
	// Name is the variable name when IsVar, otherwise the constant value.
	Name  string
	IsVar bool
}

// V builds a variable term.
func V(name string) Term { return Term{Name: name, IsVar: true} }

// C builds a constant term.
func C(value string) Term { return Term{Name: value} }

// String renders the term; constants that could be mistaken for variables
// are quoted.
func (t Term) String() string {
	if t.IsVar {
		return t.Name
	}
	if needsQuoting(t.Name) {
		return "'" + t.Name + "'"
	}
	return t.Name
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	// Mirror the parser's classification exactly: parseTerm treats a
	// leading upper-case rune (by unicode, via the same byte-to-rune
	// conversion) or underscore as a variable.
	if first := rune(s[0]); unicode.IsUpper(first) || first == '_' {
		return true // would parse as a variable
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '(', ')', '\'', ' ', '\t', '\n', '\r', ':', '-', '<':
			return true
		}
	}
	return false
}

// Atom is a predicate applied to a list of terms.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// String renders the atom, e.g. "r2(volare, Y2, A)".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ", "))
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	return Atom{Pred: a.Pred, Args: append([]Term(nil), a.Args...)}
}

// Equal reports syntactic equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// CQ is a conjunctive query head(X) :- body, with an optional set of safely
// negated atoms.
type CQ struct {
	// Name is the head predicate name.
	Name string
	// Head is the list of head terms (distinguished variables or constants).
	Head []Term
	// Body is the list of positive atoms.
	Body []Atom
	// Negated is the list of negated atoms (safe-negation extension); they
	// participate in the final evaluation but never provide bindings.
	Negated []Atom
}

// Arity returns the arity of the query head.
func (q *CQ) Arity() int { return len(q.Head) }

// Clone returns a deep copy of the query.
func (q *CQ) Clone() *CQ {
	c := &CQ{Name: q.Name, Head: append([]Term(nil), q.Head...)}
	for _, a := range q.Body {
		c.Body = append(c.Body, a.Clone())
	}
	for _, a := range q.Negated {
		c.Negated = append(c.Negated, a.Clone())
	}
	return c
}

// String renders the query in Datalog notation.
func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString(q.Name)
	b.WriteByte('(')
	for i, t := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString(") :- ")
	for i, a := range q.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	for _, a := range q.Negated {
		if len(q.Body) > 0 || len(q.Negated) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("not ")
		b.WriteString(a.String())
	}
	return b.String()
}

// Vars returns the sorted set of variable names occurring anywhere in the
// query (head, body, or negated atoms).
func (q *CQ) Vars() []string {
	set := make(map[string]bool)
	add := func(ts []Term) {
		for _, t := range ts {
			if t.IsVar {
				set[t.Name] = true
			}
		}
	}
	add(q.Head)
	for _, a := range q.Body {
		add(a.Args)
	}
	for _, a := range q.Negated {
		add(a.Args)
	}
	return sortedKeys(set)
}

// BodyVars returns the sorted set of variables occurring in positive body
// atoms.
func (q *CQ) BodyVars() []string {
	set := make(map[string]bool)
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar {
				set[t.Name] = true
			}
		}
	}
	return sortedKeys(set)
}

// Constants returns the sorted set of constants occurring anywhere in the
// query.
func (q *CQ) Constants() []string {
	set := make(map[string]bool)
	add := func(ts []Term) {
		for _, t := range ts {
			if !t.IsVar {
				set[t.Name] = true
			}
		}
	}
	add(q.Head)
	for _, a := range q.Body {
		add(a.Args)
	}
	for _, a := range q.Negated {
		add(a.Args)
	}
	return sortedKeys(set)
}

// Predicates returns the sorted set of predicate names used in the body
// (positive and negated).
func (q *CQ) Predicates() []string {
	set := make(map[string]bool)
	for _, a := range q.Body {
		set[a.Pred] = true
	}
	for _, a := range q.Negated {
		set[a.Pred] = true
	}
	return sortedKeys(set)
}

// JoinVars returns the sorted set of variables occurring in at least two
// distinct positions of positive body atoms (including twice within one
// atom). These are the variables whose occurrences give rise to candidate
// strong arcs in the dependency graph.
func (q *CQ) JoinVars() []string {
	count := make(map[string]int)
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar {
				count[t.Name]++
			}
		}
	}
	set := make(map[string]bool)
	for v, n := range count {
		if n >= 2 {
			set[v] = true
		}
	}
	return sortedKeys(set)
}

// HasJoin reports whether the query contains at least one join (a variable
// occurring in two or more body positions).
func (q *CQ) HasJoin() bool { return len(q.JoinVars()) > 0 }

// IsConstantFree reports whether no constants occur in the body.
func (q *CQ) IsConstantFree() bool {
	for _, a := range q.Body {
		for _, t := range a.Args {
			if !t.IsVar {
				return false
			}
		}
	}
	for _, a := range q.Negated {
		for _, t := range a.Args {
			if !t.IsVar {
				return false
			}
		}
	}
	return true
}

// Substitute applies a variable substitution to the whole query and returns
// the result. Variables missing from sub are left untouched.
func (q *CQ) Substitute(sub map[string]Term) *CQ {
	out := &CQ{Name: q.Name}
	out.Head = substTerms(q.Head, sub)
	for _, a := range q.Body {
		out.Body = append(out.Body, Atom{Pred: a.Pred, Args: substTerms(a.Args, sub)})
	}
	for _, a := range q.Negated {
		out.Negated = append(out.Negated, Atom{Pred: a.Pred, Args: substTerms(a.Args, sub)})
	}
	return out
}

func substTerms(ts []Term, sub map[string]Term) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		if t.IsVar {
			if r, ok := sub[t.Name]; ok {
				out[i] = r
				continue
			}
		}
		out[i] = t
	}
	return out
}

// UCQ is a union of conjunctive queries sharing head predicate and arity.
type UCQ struct {
	Name      string
	Disjuncts []*CQ
}

// Arity returns the arity of the union's head, or -1 when empty.
func (u *UCQ) Arity() int {
	if len(u.Disjuncts) == 0 {
		return -1
	}
	return u.Disjuncts[0].Arity()
}

// Validate checks that all disjuncts share the head name and arity.
func (u *UCQ) Validate() error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("UCQ %s has no disjuncts", u.Name)
	}
	n := u.Disjuncts[0].Arity()
	for _, d := range u.Disjuncts {
		if d.Name != u.Name {
			return fmt.Errorf("UCQ %s: disjunct has head %s", u.Name, d.Name)
		}
		if d.Arity() != n {
			return fmt.Errorf("UCQ %s: disjuncts with arities %d and %d", u.Name, n, d.Arity())
		}
	}
	return nil
}

// String renders the union one disjunct per line.
func (u *UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
