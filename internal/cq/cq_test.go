package cq

import (
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	q, err := Parse("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || q.Arity() != 1 {
		t.Fatalf("head: %s/%d", q.Name, q.Arity())
	}
	if len(q.Body) != 2 {
		t.Fatalf("body len = %d", len(q.Body))
	}
	if got := q.Body[1].Args[0]; got.IsVar || got.Name != "volare" {
		t.Errorf("constant parsed as %+v", got)
	}
	if got := q.Body[0].Args[1]; !got.IsVar || got.Name != "N" {
		t.Errorf("variable parsed as %+v", got)
	}
}

func TestParseArrowVariant(t *testing.T) {
	q, err := Parse("q(X) <- r(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 1 || q.Body[0].Pred != "r" {
		t.Fatalf("bad parse: %v", q)
	}
}

func TestParseQuotedConstant(t *testing.T) {
	q := MustParse("q(X) :- r(X, 'Hello, world')")
	got := q.Body[0].Args[1]
	if got.IsVar || got.Name != "Hello, world" {
		t.Errorf("quoted constant: %+v", got)
	}
}

func TestParseNegation(t *testing.T) {
	q := MustParse("q(X) :- r(X, Y), not s(Y)")
	if len(q.Body) != 1 || len(q.Negated) != 1 {
		t.Fatalf("body=%d negated=%d", len(q.Body), len(q.Negated))
	}
	if q.Negated[0].Pred != "s" {
		t.Errorf("negated atom %v", q.Negated[0])
	}
	q2 := MustParse("q(X) :- r(X, Y), !s(Y)")
	if len(q2.Negated) != 1 {
		t.Error("! form not parsed")
	}
}

func TestParseNullaryAtom(t *testing.T) {
	q := MustParse("q(X) :- r(X), flag()")
	if len(q.Body) != 2 || len(q.Body[1].Args) != 0 {
		t.Fatalf("nullary atom: %v", q)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"q(X)",                  // no body
		"q(X) :-",               // empty body
		"q(X) :- r(X",           // unterminated atom
		"q(X) :- r(X) trailing", // trailing junk
		"q(X) :- r('oops)",      // unterminated quote
		"q(X) :- not s(X)",      // only negated atoms
		"q(X) : - r(X)",         // broken separator
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"q(N) :- r1(A, N, Y1), r2(volare, Y2, A)",
		"q(X, Y) :- r(X, Y), s(Y, c1), not t(X)",
		"q(X) :- r(X, X)",
	} {
		q := MustParse(src)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("round trip: %q vs %q", q.String(), q2.String())
		}
	}
}

func TestQuotingInString(t *testing.T) {
	q := &CQ{Name: "q", Head: []Term{V("X")}, Body: []Atom{
		{Pred: "r", Args: []Term{V("X"), C("Upper")}},
	}}
	s := q.String()
	if !strings.Contains(s, "'Upper'") {
		t.Errorf("upper-case constant must be quoted: %s", s)
	}
	q2 := MustParse(s)
	if got := q2.Body[0].Args[1]; got.IsVar || got.Name != "Upper" {
		t.Errorf("quoted round trip: %+v", got)
	}
}

func TestVarsConstantsJoins(t *testing.T) {
	q := MustParse("q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)")
	if got := strings.Join(q.Vars(), ","); got != "C,P,R,Y" {
		t.Errorf("Vars = %s", got)
	}
	if len(q.Constants()) != 0 {
		t.Errorf("Constants = %v", q.Constants())
	}
	if got := strings.Join(q.JoinVars(), ","); got != "C,P,R,Y" {
		t.Errorf("JoinVars = %s", got)
	}
	if !q.HasJoin() {
		t.Error("HasJoin")
	}
	q2 := MustParse("q(X) :- r(X, a), s(b)")
	if got := strings.Join(q2.Constants(), ","); got != "a,b" {
		t.Errorf("Constants = %s", got)
	}
	if q2.HasJoin() {
		t.Error("q2 has no join")
	}
	q3 := MustParse("q(X) :- r(X, X)")
	if got := strings.Join(q3.JoinVars(), ","); got != "X" {
		t.Errorf("self-join within one atom: JoinVars = %s", got)
	}
}

func TestSubstitute(t *testing.T) {
	q := MustParse("q(X) :- r(X, Y), s(Y)")
	out := q.Substitute(map[string]Term{"Y": C("k")})
	want := "q(X) :- r(X, k), s(k)"
	if out.String() != want {
		t.Errorf("Substitute = %q, want %q", out.String(), want)
	}
	// Original untouched.
	if q.Body[1].Args[0].Name != "Y" {
		t.Error("Substitute mutated the receiver")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse("q(X) :- r(X, Y), not s(Y)")
	c := q.Clone()
	c.Body[0].Args[0] = C("z")
	c.Negated[0].Args[0] = C("w")
	if !q.Body[0].Args[0].IsVar || !q.Negated[0].Args[0].IsVar {
		t.Error("Clone shares atom slices")
	}
}

func TestParseUCQ(t *testing.T) {
	u, err := ParseUCQ(`
# two ways to find authors
q(X) :- pub1(P, X)
q(X) :- pub2(P, X)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 2 || u.Name != "q" || u.Arity() != 1 {
		t.Fatalf("UCQ: %v", u)
	}
	if _, err := ParseUCQ("q(X) :- r(X)\np(X) :- r(X)"); err == nil {
		t.Error("mismatched head names: want error")
	}
	if _, err := ParseUCQ("q(X) :- r(X)\nq(X, Y) :- r(X), s(Y)"); err == nil {
		t.Error("mismatched arities: want error")
	}
	if _, err := ParseUCQ("  \n# nothing\n"); err == nil {
		t.Error("empty UCQ: want error")
	}
}
