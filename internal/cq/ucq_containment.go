package cq

// ContainsCQInUCQ reports whether the union u contains the conjunctive
// query q (q ⊆ u): by the Sagiv–Yannakakis theorem, a CQ is contained in a
// union of CQs iff it is contained in one of the disjuncts.
func ContainsCQInUCQ(u *UCQ, q *CQ) bool {
	for _, d := range u.Disjuncts {
		if Contains(d, q) {
			return true
		}
	}
	return false
}

// ContainsUCQ reports whether u1 contains u2 (u2 ⊆ u1): every disjunct of
// u2 must be contained in some disjunct of u1.
func ContainsUCQ(u1, u2 *UCQ) bool {
	for _, d := range u2.Disjuncts {
		if !ContainsCQInUCQ(u1, d) {
			return false
		}
	}
	return true
}

// EquivalentUCQ reports logical equivalence of two unions.
func EquivalentUCQ(u1, u2 *UCQ) bool {
	return ContainsUCQ(u1, u2) && ContainsUCQ(u2, u1)
}

// MinimizeUCQ computes an equivalent union with a minimal set of disjuncts,
// each itself a minimal CQ: every disjunct is replaced by its core and
// disjuncts contained in another retained disjunct are dropped.
func MinimizeUCQ(u *UCQ) *UCQ {
	cores := make([]*CQ, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		cores[i] = Minimize(d)
	}
	keep := make([]bool, len(cores))
	for i := range keep {
		keep[i] = true
	}
	for i, d := range cores {
		if !keep[i] {
			continue
		}
		for j, e := range cores {
			if i == j || !keep[j] {
				continue
			}
			// Drop e when d contains it; on mutual containment keep the
			// earlier disjunct.
			if Contains(d, e) && (!Contains(e, d) || i < j) {
				keep[j] = false
			}
		}
	}
	out := &UCQ{Name: u.Name}
	for i, d := range cores {
		if keep[i] {
			out.Disjuncts = append(out.Disjuncts, d)
		}
	}
	return out
}
