package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.N() != 3 || s.Min() != 1 || s.Max() != 3 || s.Avg() != 2 || s.Sum() != 6 {
		t.Errorf("series: n=%d min=%v max=%v avg=%v sum=%v", s.N(), s.Min(), s.Max(), s.Avg(), s.Sum())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Avg() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Error("empty series must be all zeros")
	}
}

func TestSeriesNegativeValues(t *testing.T) {
	var s Series
	s.Add(-5)
	s.Add(-1)
	if s.Min() != -5 || s.Max() != -1 {
		t.Errorf("min=%v max=%v", s.Min(), s.Max())
	}
}

// Property: min <= avg <= max for any non-empty series.
func TestSeriesInvariantProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var s Series
		for _, v := range vals {
			if v != v { // skip NaN
				continue
			}
			s.Add(math.Mod(v, 1e12)) // clamp so the sum cannot overflow
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Avg()+1e-9 && s.Avg() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	var tb Table
	tb.Row("alpha", "1")
	tb.Rowf("b", 22)
	tb.Header("name", "value")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header not first: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("no separator: %q", lines[1])
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Errorf("missing cells:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	var tb Table
	if tb.String() != "" {
		t.Error("empty table should render empty")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.8102); got != "81.02%" {
		t.Errorf("Pct = %s", got)
	}
}
