// Package stats aggregates experiment measurements into the min/max/avg
// summaries the paper reports (Fig. 10) and renders simple text tables.
package stats

import (
	"fmt"
	"strings"
)

// Series accumulates float64 observations.
type Series struct {
	n          int
	sum        float64
	min, max   float64
	hasExtrema bool
}

// Add records one observation.
func (s *Series) Add(v float64) {
	s.n++
	s.sum += v
	if !s.hasExtrema || v < s.min {
		s.min = v
	}
	if !s.hasExtrema || v > s.max {
		s.max = v
	}
	s.hasExtrema = true
}

// N returns the number of observations.
func (s *Series) N() int { return s.n }

// Min returns the smallest observation (0 when empty).
func (s *Series) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Series) Max() float64 { return s.max }

// Avg returns the mean observation (0 when empty).
func (s *Series) Avg() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the total.
func (s *Series) Sum() float64 { return s.sum }

// Table renders an aligned text table; the first row is the header.
type Table struct {
	rows [][]string
}

// Header sets the header cells.
func (t *Table) Header(cells ...string) { t.rows = append([][]string{cells}, t.rows...) }

// Row appends a data row.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Rowf appends a row of formatted cells ({format, value} pairs are applied
// elementwise via fmt.Sprintf("%v")).
func (t *Table) Rowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, out)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i := 0; i < cols; i++ {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", width[i]))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown pipe table (the
// first row is the header), for CI job summaries. Pipe characters inside
// cells are escaped so a cell can carry query text.
func (t *Table) Markdown() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	cell := func(r []string, i int) string {
		if i >= len(r) {
			return ""
		}
		return strings.ReplaceAll(r[i], "|", `\|`)
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i := 0; i < cols; i++ {
			b.WriteByte('|')
			b.WriteString(cell(r, i))
		}
		b.WriteString("|\n")
		if ri == 0 {
			b.WriteString(strings.Repeat("|---", cols))
			b.WriteString("|\n")
		}
	}
	return b.String()
}

// Pct formats a ratio as a percentage with two decimals, e.g. "81.02%".
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
