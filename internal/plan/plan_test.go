package plan

import (
	"strings"
	"testing"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/dgraph"
	"toorjah/internal/schema"
)

// optimize runs the full pipeline up to the optimized d-graph.
func optimize(t *testing.T, schemaText, queryText string) *dgraph.Optimized {
	t.Helper()
	sch := schema.MustParse(schemaText)
	q := cq.MustParse(queryText)
	ty, err := cq.Validate(q, sch)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := cq.EliminateConstants(q, sch, ty)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dgraph.Build(pre.Query, pre.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return g.Optimize()
}

const example3Schema = `
r1^io(A, B)
r2^io(B, C)
r3^io(C, A)
`

// TestPaperExample7 checks the generated Datalog program for the running
// example (paper Example 7): caches for ra, r1, r2 with strong-arc domain
// predicates, the ordering ra ≺ r1 ≺ r2, and no trace of the irrelevant r3.
func TestPaperExample7(t *testing.T) {
	o := optimize(t, example3Schema, "q(C) :- r1(a, B), r2(B, C)")
	p, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	// Ordering: three singleton groups, l_a before r1 before r2.
	if len(p.Groups) != 3 {
		t.Fatalf("groups = %d, want 3\n%s", len(p.Groups), p)
	}
	var labels []string
	for _, g := range p.Groups {
		if len(g) != 1 {
			t.Fatalf("non-singleton group: %v", g)
		}
		labels = append(labels, g[0].Label())
	}
	if got := strings.Join(labels, " "); got != "l_a(1) r1(1) r2(1)" {
		t.Errorf("ordering = %s, want l_a(1) r1(1) r2(1)", got)
	}
	// Paper: "the only possible ordering", hence the plan is ∀-minimal.
	if !p.UniqueOrdering || !p.ForAllMinimal() {
		t.Error("Example 7 has a unique ordering (∀-minimal plan)")
	}
	prog := p.Program.String()
	if strings.Contains(prog, "r3") {
		t.Errorf("irrelevant r3 must not appear in the program:\n%s", prog)
	}
	// Domain predicates: r1's input A fed by ra's cache (strong), r2's
	// input B fed by r1's cache (strong).
	for _, want := range []string{
		"s_hat_r1_1_0(X) :- hat_l_a_1(X)",
		"s_hat_r2_1_0(X) :- hat_r1_1(",
		"hat_l_a_1(a).",
	} {
		if !strings.Contains(prog, want) {
			t.Errorf("program missing %q:\n%s", want, prog)
		}
	}
	// Reference semantics: evaluating the program's least fixpoint over
	// Example 2-style data returns the right answers.
	edb := datalog.DB{}
	edb.Insert("r1", datalog.T("a", "b1"))
	edb.Insert("r1", datalog.T("z", "b9")) // not reachable via l_a
	edb.Insert("r2", datalog.T("b1", "c1"))
	edb.Insert("r2", datalog.T("b9", "c9"))
	idb, err := datalog.Eval(p.Program, edb)
	if err != nil {
		t.Fatal(err)
	}
	ans := idb["q"]
	if ans.Len() != 1 || !ans.Contains(datalog.T("c1")) {
		t.Errorf("answers = %v", ans.Tuples())
	}
	// The cache of r1 must not contain the unreachable tuple.
	if idb["hat_r1_1"].Contains(datalog.T("z", "b9")) {
		t.Error("cache contains tuple unreachable under access limitations")
	}
}

// TestExample6NoForAllMinimal reproduces paper Example 6: for
// q(X) :- r1(X), r2(Y) over two free relations, any plan must pick an
// arbitrary first access, so no ∀-minimal plan exists — the ordering is not
// unique.
func TestExample6NoForAllMinimal(t *testing.T) {
	o := optimize(t, "r1^o(A)\nr2^o(B)", "q(X) :- r1(X), r2(Y)")
	p, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	if p.UniqueOrdering {
		t.Error("Example 6 admits several orderings; no ∀-minimal plan exists")
	}
	if len(p.Groups) != 2 {
		t.Errorf("groups = %d, want 2", len(p.Groups))
	}
}

// TestGenerateRejectsNonAnswerable ensures unanswerable queries are refused.
func TestGenerateRejectsNonAnswerable(t *testing.T) {
	o := optimize(t, `
r1^io(A, C)
r2^io(B, C)
r3^io(C, B)
`, "q(C) :- r1(X, C), r3(C2, X2)")
	if _, err := Generate(o); err == nil {
		t.Error("want error for non-answerable query")
	}
}

const pubSchema = `
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
sub^oi(Paper, Person)
rev_icde^iio(Person, Paper, Eval)
`

// TestQ1PlanShape checks the plan for the paper's q1: conf first (free and
// maximally joined), strong-conjunction domain predicates, irrelevant
// relations absent.
func TestQ1PlanShape(t *testing.T) {
	o := optimize(t, pubSchema, "q1(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)")
	p, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	prog := p.Program.String()
	for _, banned := range []string{"pub2", "sub", "rev_icde"} {
		if strings.Contains(prog, banned) {
			t.Errorf("irrelevant %s appears in program:\n%s", banned, prog)
		}
	}
	// First group must be conf (the only free source).
	if p.Groups[0][0].Rel.Name != "conf" {
		t.Errorf("first group = %s, want conf", p.Groups[0][0].Label())
	}
	// Caches in group order; conf's cache has no domain predicates.
	confCache := p.CacheBySource(p.Groups[0][0])
	if confCache == nil || len(confCache.DomainPreds) != 0 {
		t.Errorf("conf cache: %+v", confCache)
	}
	// rev^ooi has one input (Year): exactly one domain predicate.
	rev := o.Graph.SourceByLabel("rev(1)")
	revCache := p.CacheBySource(rev)
	if revCache == nil || len(revCache.DomainPreds) != 1 {
		t.Fatalf("rev cache: %+v", revCache)
	}
}

// TestMixedWeakProvidersDisjunction: a white source feeding a black input
// with no join produces one domain rule per weak provider.
func TestMixedWeakProvidersDisjunction(t *testing.T) {
	// lim's input B can be fed (weakly) by both free relations; there is no
	// join on that variable, so no candidate strong arc exists.
	o := optimize(t, `
f1^oo(A, B)
f2^oo(B, C)
lim^io(B, D)
`, "q(D) :- lim(X, D)")
	p, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	// Count rules defining lim's domain predicate.
	limSrc := o.Graph.SourceByLabel("lim(1)")
	c := p.CacheBySource(limSrc)
	if c == nil || len(c.DomainPreds) != 1 {
		t.Fatalf("lim cache: %+v", c)
	}
	dp := c.DomainPreds[0]
	n := 0
	for _, r := range p.Program.Rules {
		if r.Head.Pred == dp {
			n++
			if len(r.Body) != 1 {
				t.Errorf("weak domain rule must have one provider: %s", r)
			}
		}
	}
	if n != 2 {
		t.Errorf("domain rules for %s = %d, want 2 (disjunction of f1, f2)", dp, n)
	}
}

// TestStrongConjunctionJoins: two black providers joined on the same
// variable feeding one input produce a single two-atom domain rule.
func TestStrongConjunctionJoins(t *testing.T) {
	o := optimize(t, `
a^oo(P, D1)
b^oo(P, D2)
lim^io(P, D3)
`, "q(Z) :- a(X, Y1), b(X, Y2), lim(X, Z)")
	p, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	limSrc := o.Graph.SourceByLabel("lim(1)")
	c := p.CacheBySource(limSrc)
	dp := c.DomainPreds[0]
	var defs []*datalog.Rule
	for _, r := range p.Program.Rules {
		if r.Head.Pred == dp {
			defs = append(defs, r)
		}
	}
	if len(defs) != 1 {
		t.Fatalf("domain rules = %d, want single conjunction rule", len(defs))
	}
	if len(defs[0].Body) != 2 {
		t.Errorf("conjunction rule must join both providers: %s", defs[0])
	}
	// Both atoms share variable X at the provider positions.
	for _, a := range defs[0].Body {
		if a.Args[0] != cq.V("X") {
			t.Errorf("provider atom not joined on X: %s", a)
		}
	}
}

// TestSelfJoinCacheNotRestricted: the cache rule of r(X, X) must use fresh
// distinct variables so the cache can still feed other sources with
// off-diagonal tuples; the diagonal restriction lives in the query rule.
func TestSelfJoinCacheNotRestricted(t *testing.T) {
	o := optimize(t, "r^oo(A, A)\nlim^io(A, B)", "q(X, Z) :- r(X, X), lim(X, Z)")
	p, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Program.Rules {
		if r.Head.Pred != "hat_r_1" {
			continue
		}
		if r.Head.Args[0] == r.Head.Args[1] {
			t.Errorf("cache rule restricted to the diagonal: %s", r)
		}
	}
	// But the query rule must keep the self-join.
	if p.Query.Body[0].Args[0] != p.Query.Body[0].Args[1] {
		t.Errorf("query rule lost the self-join: %s", p.Query)
	}
}

// TestNegatedAtomInPlan: negated occurrences get caches and appear negated
// in the rewritten query.
func TestNegatedAtomInPlan(t *testing.T) {
	o := optimize(t, `
r^oo(A, B)
s^io(B, C)
`, "q(X) :- r(X, Y), s(Y, Z), not s(Y, Z)")
	p, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Query.Negated) != 1 {
		t.Fatalf("rewritten query: %s", p.Query)
	}
	if !strings.HasPrefix(p.Query.Negated[0].Pred, "hat_s_") {
		t.Errorf("negated atom not over a cache: %s", p.Query)
	}
	// Program must stratify (negation only in the final query rule).
	if _, err := p.Program.Stratify(); err != nil {
		t.Errorf("plan program must stratify: %v", err)
	}
}

// TestCyclicSchemaSingleGroup: mutually recursive sources share a group.
func TestCyclicSchemaSingleGroup(t *testing.T) {
	// Two limited relations feeding each other; a free seed starts the flow.
	// No joins beyond the chain, so arcs between r and s are weak cycles.
	o := optimize(t, `
seed^o(A)
r^io(A, B)
s^io(B, A)
`, "q(Y) :- r(X, Y), s(Y2, X2)")
	p, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	// r and s form one cyclic group.
	found := false
	for _, g := range p.Groups {
		if len(g) == 2 {
			names := []string{g[0].Rel.Name, g[1].Rel.Name}
			if (names[0] == "r" && names[1] == "s") || (names[0] == "s" && names[1] == "r") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("r and s must share a group:\n%s", p)
	}
}

// TestPlanProgramValidates on a batch of pipeline queries.
func TestPlanProgramValidates(t *testing.T) {
	cases := []struct{ schema, query string }{
		{example3Schema, "q(C) :- r1(a, B), r2(B, C)"},
		{pubSchema, "q1(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)"},
		{pubSchema, "q2(R) :- rev_icde(R, P, rej), conf(P, C, Y), rev(R, C, Y)"},
		{pubSchema, "q3(R) :- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), rev(R, icde, y2008), conf(P, icde, Y)"},
		{pubSchema, "q(P) :- pub2(P, R)"},
	}
	for _, c := range cases {
		o := optimize(t, c.schema, c.query)
		p, err := Generate(o)
		if err != nil {
			t.Errorf("%s: %v", c.query, err)
			continue
		}
		if err := p.Program.Validate(); err != nil {
			t.Errorf("%s: %v", c.query, err)
		}
		if _, err := p.Program.Stratify(); err != nil {
			t.Errorf("%s: %v", c.query, err)
		}
		// Every black source must have a cache.
		for _, s := range o.Graph.BlackSources() {
			if p.CacheBySource(s) == nil {
				t.Errorf("%s: black source %s has no cache", c.query, s.Label())
			}
		}
		// Strong arcs must cross strictly ordered groups.
		groupOf := map[int]int{}
		for gi, g := range p.Groups {
			for _, s := range g {
				groupOf[s.ID] = gi
			}
		}
		for _, a := range o.Arcs {
			gu, gv := groupOf[a.From.Source.ID], groupOf[a.To.Source.ID]
			switch o.Solution.Mark(a) {
			case dgraph.Strong:
				if gu >= gv {
					t.Errorf("%s: strong arc %s not strictly ordered", c.query, a)
				}
			case dgraph.Weak:
				if gu > gv {
					t.Errorf("%s: weak arc %s violates ordering", c.query, a)
				}
			}
		}
	}
}
