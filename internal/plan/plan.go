// Package plan generates ⊂-minimal query plans from optimized dependency
// graphs, implementing Section IV of Calì & Martinenghi (ICDE 2008).
//
// A plan is a Datalog program with three layers:
//
//   - a cache predicate per surviving source of the optimized d-graph,
//     defined by a rule "ĉ(V̄) ← r(V̄), s₁(Vᵢ₁), …, sₙ(Vᵢₙ)" with one domain
//     predicate per input argument;
//   - domain predicates providing the values with which input arguments may
//     be bound: a disjunction (one rule per provider) of the caches behind
//     weak incoming arcs, and a conjunction (a single join rule) of the
//     caches behind strong incoming arcs;
//   - the rewritten query over the black caches, plus one fact per
//     artificial constant relation introduced by the preprocessing.
//
// The plan also carries the source ordering: the surviving sources are
// grouped into positions 1…k (sources on a common cyclic d-path share a
// position; weak arcs order groups non-strictly, strong arcs strictly), and
// the fast-failing executor populates group i only after an early
// non-emptiness test over groups j < i. A ∀-minimal plan exists iff this
// ordering is unique, which the plan reports.
package plan

import (
	"fmt"
	"strings"

	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/dgraph"
)

// Cache describes the cache predicate of one surviving source.
type Cache struct {
	Source *dgraph.Source
	// Pred is the cache predicate name (the paper's r̂ with occurrence).
	Pred string
	// Group is the zero-based position of the source's group in the
	// ordering.
	Group int
	// DomainPreds maps each input position of the relation to its domain
	// predicate name; parallel to Source.Rel.InputPositions().
	DomainPreds []string
	// IsConst marks caches of artificial constant relations; they are
	// populated by a fact instead of source accesses.
	IsConst bool
	// ConstValue is the constant carried by an IsConst cache.
	ConstValue string
}

// Plan is a ⊂-minimal query plan.
type Plan struct {
	Opt *dgraph.Optimized
	// Program is the full Datalog program: cache rules, domain rules, the
	// query rule, and constant facts. Its least fixpoint over the source
	// relations is the plan's reference semantics.
	Program *datalog.Program
	// Query is the rewritten query whose body atoms range over the black
	// caches (negated atoms over negated-occurrence caches).
	Query *cq.CQ
	// Caches lists one entry per surviving source, ordered by group then
	// source ID.
	Caches []*Cache
	// Groups are the position groups of sources, in execution order.
	Groups [][]*dgraph.Source
	// UniqueOrdering reports whether only one ordering of the groups was
	// possible; by Section IV this is exactly the condition under which a
	// ∀-minimal plan exists (and then this plan is it).
	UniqueOrdering bool
}

// CacheBySource returns the cache of the given source, or nil.
func (p *Plan) CacheBySource(s *dgraph.Source) *Cache {
	for _, c := range p.Caches {
		if c.Source.ID == s.ID {
			return c
		}
	}
	return nil
}

// ForAllMinimal reports whether the plan is ∀-minimal (Section IV: the
// ⊂-minimal plan is unique iff exactly one ordering is possible).
func (p *Plan) ForAllMinimal() bool { return p.UniqueOrdering }

// String renders the plan: ordering, program.
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("ordering:")
	for i, g := range p.Groups {
		if i > 0 {
			b.WriteString(" ≺")
		}
		var labels []string
		for _, s := range g {
			labels = append(labels, s.Label())
		}
		fmt.Fprintf(&b, " {%s}", strings.Join(labels, ", "))
	}
	b.WriteString("\nprogram:\n")
	b.WriteString(p.Program.String())
	return b.String()
}

// cachePred names the cache predicate of a source: "hat_rel_1" for the
// first occurrence of rel in the query, "hat_rel_w" for a white source.
func cachePred(s *dgraph.Source) string {
	if s.Black {
		return fmt.Sprintf("hat_%s_%d", s.Rel.Name, s.Occ)
	}
	return fmt.Sprintf("hat_%s_w", s.Rel.Name)
}

// domainPred names the domain predicate feeding input position pos of the
// source's cache.
func domainPred(s *dgraph.Source, pos int) string {
	return fmt.Sprintf("s_%s_%d", cachePred(s), pos)
}

// Generate builds the ⊂-minimal plan for an optimized d-graph whose query
// is answerable.
func Generate(o *dgraph.Optimized) (*Plan, error) {
	return GenerateWith(o, OrderOptions{})
}

// GenerateWith is Generate with explicit ordering options (statistics-based
// or heuristic-free linearization).
func GenerateWith(o *dgraph.Optimized, ordOpts OrderOptions) (*Plan, error) {
	if !o.Graph.Answerable {
		return nil, fmt.Errorf("plan: query %s is not answerable", o.Graph.Query.Name)
	}
	groups, unique := OrderWith(o, ordOpts)
	p := &Plan{
		Opt:            o,
		Program:        &datalog.Program{},
		Groups:         groups,
		UniqueOrdering: unique,
	}
	// Caches in group order for deterministic output.
	for gi, g := range groups {
		for _, s := range g {
			c := &Cache{Source: s, Pred: cachePred(s), Group: gi}
			if v, ok := cq.IsConstRelation(s.Rel.Name); ok {
				c.IsConst = true
				c.ConstValue = v
			}
			p.Caches = append(p.Caches, c)
		}
	}

	for _, c := range p.Caches {
		if c.IsConst {
			// The artificial relation ℓ_a contributes the single fact
			// ĉ(a); no access is ever made for it.
			p.Program.AddFact(c.Pred, c.ConstValue)
			continue
		}
		rel := c.Source.Rel
		// Cache rule over fresh variables: using the atom's own variables
		// would wrongly restrict the cache on self-joined atoms like
		// r(X, X); the query rule re-imposes those equalities at the end.
		vars := make([]cq.Term, rel.Arity())
		for i := range vars {
			vars[i] = cq.V(fmt.Sprintf("V%d", i+1))
		}
		rule := &datalog.Rule{Head: cq.Atom{Pred: c.Pred, Args: vars}}
		rule.Body = append(rule.Body, cq.Atom{Pred: rel.Name, Args: vars})
		for _, pos := range rel.InputPositions() {
			node := c.Source.Nodes[pos]
			strongIn := o.StrongInArcs(node)
			weakIn := o.WeakInArcs(node)
			if len(strongIn)+len(weakIn) == 0 {
				return nil, fmt.Errorf("plan: input node %s of surviving source has no live providers", node)
			}
			dp := domainPred(c.Source, pos)
			c.DomainPreds = append(c.DomainPreds, dp)
			rule.Body = append(rule.Body, cq.NewAtom(dp, vars[pos]))

			// Conjunction of strong providers: one joint rule.
			if len(strongIn) > 0 {
				join := &datalog.Rule{Head: cq.NewAtom(dp, cq.V("X"))}
				for ai, a := range strongIn {
					join.Body = append(join.Body, providerAtom(a, ai))
				}
				p.Program.Add(join)
			}
			// Disjunction of weak providers: one rule each.
			for _, a := range weakIn {
				r := &datalog.Rule{Head: cq.NewAtom(dp, cq.V("X"))}
				r.Body = append(r.Body, providerAtom(a, 0))
				p.Program.Add(r)
			}
		}
		p.Program.Add(rule)
	}

	// The rewritten query: each atom of the (constant-free) query ranges
	// over its occurrence's cache.
	q := o.Graph.Query
	rw := &cq.CQ{Name: q.Name, Head: append([]cq.Term(nil), q.Head...)}
	for _, s := range o.Graph.BlackSources() {
		atom := cq.Atom{Pred: cachePred(s), Args: append([]cq.Term(nil), s.Atom.Args...)}
		if s.Negated {
			rw.Negated = append(rw.Negated, atom)
		} else {
			rw.Body = append(rw.Body, atom)
		}
	}
	p.Query = rw
	p.Program.Add(&datalog.Rule{
		Head:    cq.Atom{Pred: rw.Name, Args: rw.Head},
		Body:    rw.Body,
		Negated: rw.Negated,
	})
	if err := p.Program.Validate(); err != nil {
		return nil, fmt.Errorf("plan: generated program invalid: %w", err)
	}
	return p, nil
}

// providerAtom builds the cache atom of the provider behind arc a, with the
// shared variable X at the provider's position and fresh variables (indexed
// by k to keep joint rules collision-free) elsewhere.
func providerAtom(a *dgraph.Arc, k int) cq.Atom {
	src := a.From.Source
	args := make([]cq.Term, src.Rel.Arity())
	for i := range args {
		if i == a.From.Pos {
			args[i] = cq.V("X")
		} else {
			args[i] = cq.V(fmt.Sprintf("W%d_%d", k, i+1))
		}
	}
	return cq.Atom{Pred: cachePred(src), Args: args}
}
