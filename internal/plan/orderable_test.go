package plan

import (
	"testing"

	"toorjah/internal/cq"
	"toorjah/internal/schema"
)

func TestOrderableChain(t *testing.T) {
	sch := schema.MustParse(`
free^oo(A, B)
mid^io(B, C)
last^io(C, D)
`)
	q := cq.MustParse("q(D) :- last(Z, D), mid(Y, Z), free(X, Y)")
	ordering, ok := Orderable(q, sch)
	if !ok {
		t.Fatal("chain query is orderable")
	}
	// The only executable order is free, mid, last = body indexes 2, 1, 0.
	if len(ordering) != 3 || ordering[0] != 2 || ordering[1] != 1 || ordering[2] != 0 {
		t.Errorf("ordering = %v, want [2 1 0]", ordering)
	}
}

func TestOrderableWithConstants(t *testing.T) {
	sch := schema.MustParse("r^io(A, B)")
	q := cq.MustParse("q(B) :- r(a, B)")
	if _, ok := Orderable(q, sch); !ok {
		t.Error("constant-bound input: orderable")
	}
	q2 := cq.MustParse("q(B) :- r(X, B)")
	if _, ok := Orderable(q2, sch); ok {
		t.Error("unbound input: not orderable")
	}
}

// TestExample1NotOrderable: the paper's motivating query needs recursion —
// no left-to-right ordering of its own atoms can execute it.
func TestExample1NotOrderable(t *testing.T) {
	sch := schema.MustParse(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	q := cq.MustParse("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if _, ok := Orderable(q, sch); ok {
		t.Error("Example 1 must not be orderable: that is why recursive plans exist")
	}
	// Even with the free r3 added to the body, r2's Year input holds the
	// fresh variable Y2 that no other atom binds: still not orderable.
	q2 := cq.MustParse("q(N) :- r3(A, AL), r1(A, N, Y1), r2(volare, Y2, A)")
	if _, ok := Orderable(q2, sch); ok {
		t.Error("Y2 is never bound by another atom: not orderable")
	}
	// Joining the years (one Year domain, shared variable) makes the chain
	// executable: r3 binds A, r1 binds Y, r2 runs with Y.
	q3 := cq.MustParse("q(N) :- r3(A, AL), r1(A, N, Y), r2(volare, Y, A)")
	sch2 := schema.MustParse(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	if _, ok := Orderable(q3, sch2); !ok {
		t.Error("r3 -> r1 -> r2 binds every input: orderable")
	}
}

// TestOrderableQ1: the paper's q1 is executable left-to-right
// (conf, then pub1 and rev), even though the optimized recursive plan is
// still what minimizes accesses.
func TestOrderableQ1(t *testing.T) {
	sch := schema.MustParse(`
pub1^io(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
`)
	q := cq.MustParse("q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)")
	ordering, ok := Orderable(q, sch)
	if !ok {
		t.Fatal("q1 is orderable")
	}
	if ordering[0] != 1 {
		t.Errorf("conf (free) must come first: %v", ordering)
	}
}

func TestOrderableUnknownRelation(t *testing.T) {
	sch := schema.MustParse("r^oo(A, B)")
	q := cq.MustParse("q(X) :- nosuch(X, Y)")
	if _, ok := Orderable(q, sch); ok {
		t.Error("unknown relation: not orderable")
	}
}
