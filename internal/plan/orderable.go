package plan

import (
	"toorjah/internal/cq"
	"toorjah/internal/schema"
)

// Orderable reports whether the query is executable as-is by some
// left-to-right ordering of its atoms that respects the access limitations:
// each atom's input arguments must be bound by constants or by variables
// occurring in earlier atoms. This is the practical approximation of
// feasibility studied by Ludäscher & Nash (PODS 2004) and the subgoal
// ordering of Yang, Kifer & Chaudhri (PODS 2006), both discussed in the
// paper's related work. When ok, the returned slice gives one executable
// ordering as indexes into q.Body.
//
// An orderable query needs no recursion and no relation outside the query;
// a non-orderable but answerable query (like the paper's Example 1) is
// exactly where the recursive plans of this package are required.
func Orderable(q *cq.CQ, s *schema.Schema) (ordering []int, ok bool) {
	n := len(q.Body)
	bound := make(map[string]bool)
	placed := make([]bool, n)
	canRun := func(a cq.Atom) bool {
		rel := s.Relation(a.Pred)
		if rel == nil || rel.Arity() != len(a.Args) {
			return false
		}
		for _, pos := range rel.InputPositions() {
			t := a.Args[pos]
			if t.IsVar && !bound[t.Name] {
				return false
			}
		}
		return true
	}
	// Greedy placement is complete: binding variables is monotone, so a
	// runnable atom never becomes unrunnable by running another one first.
	for len(ordering) < n {
		progress := false
		for i := 0; i < n; i++ {
			if placed[i] || !canRun(q.Body[i]) {
				continue
			}
			placed[i] = true
			ordering = append(ordering, i)
			for _, t := range q.Body[i].Args {
				if t.IsVar {
					bound[t.Name] = true
				}
			}
			progress = true
		}
		if !progress {
			return nil, false
		}
	}
	return ordering, true
}
