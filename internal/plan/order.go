package plan

import (
	"sort"

	"toorjah/internal/dgraph"
)

// OrderOptions tunes the linearization of the source ordering among the
// many valid ones.
type OrderOptions struct {
	// NoHeuristic disables the fast-failure tie-breaks: ready groups are
	// taken in source-ID order. Used by ablation experiments.
	NoHeuristic bool
	// Sizes, when provided, gives estimated relation cardinalities; among
	// ready groups the smaller total size goes first — the paper's
	// "compatibly with the ordering, place small tables first" (§IV).
	// A relation absent from the map has unknown cardinality, which is not
	// the same as zero: a group is size-compared only when every relation in
	// it has an entry, so partial statistics (say, live counts of the local
	// relations while federated ones stay opaque) never demote a group below
	// one whose size is simply unknown.
	Sizes map[string]int
}

// Order computes the source ordering of Section IV for an optimized
// d-graph: sources traversed by a cyclic d-path (a strongly connected
// component of the live source graph) share a position group; a weak arc
// u→v forces src(u) ⪯ src(v) and a strong arc forces src(u) ≺ src(v). The
// groups are returned in execution order, linearized with the paper's
// fast-failure heuristic: among groups whose prerequisites are complete,
// free sources go first (one access may already refute the query), then
// those whose sources take part in more query joins (failure is detected
// earlier). The second result reports whether the linearization was forced
// at every step — exactly one ordering possible — which is the paper's
// criterion for the existence of a ∀-minimal plan.
func Order(o *dgraph.Optimized) (groups [][]*dgraph.Source, unique bool) {
	return OrderWith(o, OrderOptions{})
}

// OrderWith is Order with explicit linearization options.
func OrderWith(o *dgraph.Optimized, opts OrderOptions) (groups [][]*dgraph.Source, unique bool) {
	sources := o.Sources
	if len(sources) == 0 {
		return nil, true
	}
	index := make(map[int]int, len(sources)) // source ID -> slice index
	for i, s := range sources {
		index[s.ID] = i
	}
	adj := make([][]int, len(sources))
	for _, a := range o.Arcs {
		u, v := index[a.From.Source.ID], index[a.To.Source.ID]
		if u != v {
			adj[u] = append(adj[u], v)
		}
	}
	comp := sccOf(len(sources), adj)
	ncomp := 0
	for _, c := range comp {
		if c+1 > ncomp {
			ncomp = c + 1
		}
	}
	members := make([][]*dgraph.Source, ncomp)
	for i, s := range sources {
		members[comp[i]] = append(members[comp[i]], s)
	}
	// Condensation edges and in-degrees.
	cadj := make([]map[int]bool, ncomp)
	indeg := make([]int, ncomp)
	for i := range cadj {
		cadj[i] = make(map[int]bool)
	}
	for _, a := range o.Arcs {
		cu, cv := comp[index[a.From.Source.ID]], comp[index[a.To.Source.ID]]
		if cu != cv && !cadj[cu][cv] {
			cadj[cu][cv] = true
			indeg[cv]++
		}
	}
	// Kahn linearization; tie-break: all-free groups first (a free source
	// costs one access and may already refute the query — the paper's
	// "place small tables first"), then by join involvement (descending,
	// the paper's "sources involved in more joins are more likely to lead
	// to failure"), then by smallest source ID for determinism.
	joinScore := make([]int, ncomp)
	allFree := make([]bool, ncomp)
	size := make([]int, ncomp)
	sized := make([]bool, ncomp)
	for ci, ms := range members {
		allFree[ci] = true
		sized[ci] = opts.Sizes != nil
		for _, s := range ms {
			joinScore[ci] += sourceJoins(o, s)
			if !s.Free() {
				allFree[ci] = false
			}
			if opts.Sizes != nil {
				n, known := opts.Sizes[s.Rel.Name]
				if !known {
					sized[ci] = false
				}
				size[ci] += n
			}
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	}
	unique = true
	var ready []int
	for c := 0; c < ncomp; c++ {
		if indeg[c] == 0 {
			ready = append(ready, c)
		}
	}
	for len(ready) > 0 {
		if len(ready) > 1 {
			unique = false
		}
		best := 0
		for i := 1; i < len(ready); i++ {
			a, b := ready[i], ready[best]
			if opts.NoHeuristic {
				if members[a][0].ID < members[b][0].ID {
					best = i
				}
				continue
			}
			switch {
			case allFree[a] != allFree[b]:
				if allFree[a] {
					best = i
				}
			case sized[a] && sized[b] && size[a] != size[b]:
				if size[a] < size[b] {
					best = i
				}
			case joinScore[a] != joinScore[b]:
				if joinScore[a] > joinScore[b] {
					best = i
				}
			case members[a][0].ID < members[b][0].ID:
				best = i
			}
		}
		c := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		groups = append(groups, members[c])
		for d := range cadj[c] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	return groups, unique
}

// sourceJoins counts, for a black source, how many of its argument
// variables take part in a join of the query; white sources score zero.
func sourceJoins(o *dgraph.Optimized, s *dgraph.Source) int {
	if !s.Black {
		return 0
	}
	joined := make(map[string]bool)
	for _, v := range o.Graph.Query.JoinVars() {
		joined[v] = true
	}
	n := 0
	for _, t := range s.Atom.Args {
		if t.IsVar && joined[t.Name] {
			n++
		}
	}
	return n
}

// sccOf computes strongly connected components with an iterative Tarjan,
// returning component numbers in reverse topological order normalized so
// that components are usable as indexes.
func sccOf(n int, adj [][]int) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next, ncomp := 0, 0
	type frame struct{ v, i int }
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: start}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}
