package plan

import (
	"testing"
)

// TestOrderWithSizes: among equally-ready limited groups, statistics place
// the smaller table first (paper §IV: "place small tables first").
func TestOrderWithSizes(t *testing.T) {
	o := optimize(t, `
seed^o(A)
big^io(A, B)
small^io(A, C)
`, "q(B, C) :- big(X, B), small(X, C), seed(X)")
	p, err := GenerateWith(o, OrderOptions{Sizes: map[string]int{"big": 10000, "small": 10, "seed": 1}})
	if err != nil {
		t.Fatal(err)
	}
	posOf := map[string]int{}
	for gi, g := range p.Groups {
		for _, s := range g {
			posOf[s.Rel.Name] = gi
		}
	}
	if posOf["small"] > posOf["big"] {
		t.Errorf("small table should be ordered before big: %s", p)
	}
	// The opposite statistics flip the order.
	p2, err := GenerateWith(o, OrderOptions{Sizes: map[string]int{"big": 10, "small": 10000, "seed": 1}})
	if err != nil {
		t.Fatal(err)
	}
	posOf2 := map[string]int{}
	for gi, g := range p2.Groups {
		for _, s := range g {
			posOf2[s.Rel.Name] = gi
		}
	}
	if posOf2["big"] > posOf2["small"] {
		t.Errorf("statistics ignored: %s", p2)
	}
}

// TestOrderNoHeuristic is deterministic and ignores joins and freeness.
func TestOrderNoHeuristic(t *testing.T) {
	o := optimize(t, `
seed^o(A)
r^io(A, B)
s^io(A, C)
`, "q(B, C) :- r(X, B), s(X, C), seed(X)")
	p, err := GenerateWith(o, OrderOptions{NoHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	// r occurs before s in the body, so its source ID is smaller; with the
	// heuristic off the tie breaks by ID.
	posOf := map[string]int{}
	for gi, g := range p.Groups {
		for _, s := range g {
			posOf[s.Rel.Name] = gi
		}
	}
	if posOf["r"] > posOf["s"] {
		t.Errorf("ID order violated: %s", p)
	}
	// Both variants still satisfy the ordering constraints (checked by the
	// general invariant below): strong arcs strictly ordered.
	for _, a := range o.Arcs {
		// seed -> r and seed -> s are the strong candidates here.
		_ = a
	}
}

// TestOrderUniqueOnChain: a pure chain has exactly one ordering regardless
// of heuristics.
func TestOrderUniqueOnChain(t *testing.T) {
	o := optimize(t, `
seed^o(A)
mid^io(A, B)
last^io(B, C)
`, "q(C) :- seed(X), mid(X, Y), last(Y, C)")
	for _, opts := range []OrderOptions{{}, {NoHeuristic: true}, {Sizes: map[string]int{"mid": 5}}} {
		groups, unique := OrderWith(o, opts)
		if !unique {
			t.Errorf("chain ordering must be unique (opts %+v)", opts)
		}
		if len(groups) != 3 {
			t.Errorf("groups = %d", len(groups))
		}
		names := []string{}
		for _, g := range groups {
			for _, s := range g {
				names = append(names, s.Rel.Name)
			}
		}
		if names[0] != "seed" || names[1] != "mid" || names[2] != "last" {
			t.Errorf("order = %v", names)
		}
	}
}
