package schema

import (
	"fmt"
	"strings"
)

// Parse reads a schema from its textual form, one relation per line, in the
// paper's notation:
//
//	pub1^io(Paper, Person)
//	conf^ooo(Paper, ConfName, Year)
//
// Blank lines and lines starting with '#' or "//" are ignored.
// Nullary relations are written with an empty pattern and argument list:
// "r^()".
func Parse(text string) (*Schema, error) {
	s := &Schema{rels: make(map[string]*Relation)}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		r, err := ParseRelation(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if err := s.Add(r); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("empty schema")
	}
	return s, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(text string) *Schema {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseRelation parses a single relation declaration such as
// "rev^ooi(Person, ConfName, Year)".
func ParseRelation(line string) (*Relation, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return nil, fmt.Errorf("relation %q: want name^pattern(Domain,...)", line)
	}
	head := strings.TrimSpace(line[:open])
	body := strings.TrimSpace(line[open+1 : len(line)-1])
	caret := strings.IndexByte(head, '^')
	if caret < 0 {
		return nil, fmt.Errorf("relation %q: missing ^pattern", line)
	}
	name := strings.TrimSpace(head[:caret])
	pattern := strings.TrimSpace(head[caret+1:])
	if name == "" {
		return nil, fmt.Errorf("relation %q: empty name", line)
	}
	var domains []Domain
	if body != "" {
		for _, part := range strings.Split(body, ",") {
			d := strings.TrimSpace(part)
			if d == "" {
				return nil, fmt.Errorf("relation %q: empty domain name", line)
			}
			domains = append(domains, Domain(d))
		}
	}
	if len(domains) == 0 && pattern != "" {
		return nil, fmt.Errorf("relation %q: nullary relation must have empty pattern", line)
	}
	return NewRelation(name, pattern, domains...)
}
