package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern("ioo")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "ioo" {
		t.Fatalf("round trip: got %q", p.String())
	}
	if p.Free() {
		t.Error("ioo should not be free")
	}
	if got := p.Inputs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Inputs() = %v, want [0]", got)
	}
	if got := p.Outputs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Outputs() = %v, want [1 2]", got)
	}
}

func TestParsePatternInvalid(t *testing.T) {
	for _, bad := range []string{"iox", "Io", "1", "i o"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q): want error", bad)
		}
	}
}

func TestParsePatternEmptyIsFree(t *testing.T) {
	p, err := ParsePattern("")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Free() {
		t.Error("empty pattern must be free")
	}
}

func TestNewRelation(t *testing.T) {
	r, err := NewRelation("rev", "ooi", "Person", "ConfName", "Year")
	if err != nil {
		t.Fatal(err)
	}
	if r.Arity() != 3 {
		t.Errorf("Arity = %d, want 3", r.Arity())
	}
	if r.Free() {
		t.Error("rev^ooi should not be free")
	}
	if got := r.String(); got != "rev^ooi(Person,ConfName,Year)" {
		t.Errorf("String() = %q", got)
	}
	in := r.InputDomains()
	if len(in) != 1 || in[0] != "Year" {
		t.Errorf("InputDomains = %v", in)
	}
	out := r.OutputDomains()
	if len(out) != 2 || out[0] != "Person" || out[1] != "ConfName" {
		t.Errorf("OutputDomains = %v", out)
	}
}

func TestNewRelationArityMismatch(t *testing.T) {
	if _, err := NewRelation("r", "io", "A"); err == nil {
		t.Error("want arity mismatch error")
	}
	if _, err := NewRelation("", "o", "A"); err == nil {
		t.Error("want empty-name error")
	}
	if _, err := NewRelation("r", "o", ""); err == nil {
		t.Error("want empty-domain error")
	}
}

func TestSchemaAddDuplicate(t *testing.T) {
	s := MustNew(MustRelation("r", "o", "A"))
	if err := s.Add(MustRelation("r", "oo", "A", "B")); err == nil {
		t.Error("want duplicate-relation error")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := MustNew(
		MustRelation("r1", "io", "A", "B"),
		MustRelation("r2", "io", "B", "C"),
		MustRelation("r3", "io", "C", "A"),
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has("r2") || s.Has("nope") {
		t.Error("Has misbehaves")
	}
	if s.Relation("r3").Domains[1] != "A" {
		t.Error("Relation lookup wrong")
	}
	names := s.Names()
	if strings.Join(names, ",") != "r1,r2,r3" {
		t.Errorf("Names = %v", names)
	}
	doms := s.Domains()
	if len(doms) != 3 || doms[0] != "A" || doms[1] != "B" || doms[2] != "C" {
		t.Errorf("Domains = %v", doms)
	}
}

func TestSchemaClone(t *testing.T) {
	s := MustNew(MustRelation("r1", "io", "A", "B"))
	c := s.Clone()
	c.Relation("r1").Domains[0] = "Z"
	if s.Relation("r1").Domains[0] != "A" {
		t.Error("Clone shares domain slice")
	}
}

func TestParseSchemaRoundTrip(t *testing.T) {
	text := `
# the publication schema of the paper, Section V
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
sub^oi(Paper, Person)
rev_icde^iio(Person, Paper, Eval)
`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	re, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse of String(): %v", err)
	}
	if re.String() != s.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", s, re)
	}
	ri := s.Relation("rev_icde")
	if got := ri.Pattern.String(); got != "iio" {
		t.Errorf("rev_icde pattern = %q", got)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"r1(A,B)",             // missing pattern
		"r1^io(A,B",           // missing close paren
		"r1^iox(A,B,C)",       // bad mode
		"r1^io(A,B)\nr1^o(A)", // duplicate
		"r1^io(A,)",           // empty domain
		"^io(A,B)",            // empty name
		"r1^i()",              // nullary with nonempty pattern
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

func TestParseNullary(t *testing.T) {
	s, err := Parse("r0^()")
	if err != nil {
		t.Fatal(err)
	}
	r := s.Relation("r0")
	if r.Arity() != 0 || !r.Free() {
		t.Errorf("nullary relation: arity=%d free=%v", r.Arity(), r.Free())
	}
}

// TestQueryableExample2 reproduces paper Example 2: over
// {r1^io(A,C), r2^io(B,C), r3^io(C,B)}, with seed domain C (from constant
// c1), relations r3 and r2 are queryable but r1 is not, because no value of
// domain A is ever obtainable.
func TestQueryableExample2(t *testing.T) {
	s := MustNew(
		MustRelation("r1", "io", "A", "C"),
		MustRelation("r2", "io", "B", "C"),
		MustRelation("r3", "io", "C", "B"),
	)
	q := s.QueryableRelations([]Domain{"C"})
	if !q["r3"] || !q["r2"] {
		t.Errorf("r2, r3 should be queryable: %v", q)
	}
	if q["r1"] {
		t.Errorf("r1 should not be queryable: %v", q)
	}

	// With seed A (query q1 of Example 2 mentions constant a1 of domain A),
	// everything becomes queryable: r1 gives C, C gives B via r3, B gives
	// access to r2.
	q = s.QueryableRelations([]Domain{"A"})
	for _, r := range []string{"r1", "r2", "r3"} {
		if !q[r] {
			t.Errorf("%s should be queryable from seed A: %v", r, q)
		}
	}
}

func TestQueryableFreeRelationsAlwaysQueryable(t *testing.T) {
	s := MustNew(
		MustRelation("free", "oo", "A", "B"),
		MustRelation("lim", "io", "B", "C"),
		MustRelation("stuck", "io", "Z", "A"),
	)
	q := s.QueryableRelations(nil)
	if !q["free"] {
		t.Error("free relation must be queryable with no seeds")
	}
	if !q["lim"] {
		t.Error("lim is reachable via free's B output")
	}
	if q["stuck"] {
		t.Error("stuck needs domain Z which nothing provides")
	}
}

func TestObtainableDomains(t *testing.T) {
	s := MustNew(
		MustRelation("free", "oo", "A", "B"),
		MustRelation("lim", "io", "B", "C"),
	)
	got := s.ObtainableDomains(nil)
	for _, d := range []Domain{"A", "B", "C"} {
		if !got[d] {
			t.Errorf("domain %s should be obtainable", d)
		}
	}
	if got["Z"] {
		t.Error("Z should not be obtainable")
	}
}

// Property: queryability is monotone in the seed set — adding seeds never
// removes a queryable relation.
func TestQueryableMonotoneInSeeds(t *testing.T) {
	s := MustNew(
		MustRelation("r1", "io", "A", "B"),
		MustRelation("r2", "iio", "B", "C", "D"),
		MustRelation("r3", "oi", "C", "D"),
		MustRelation("r4", "oo", "E", "F"),
	)
	all := []Domain{"A", "B", "C", "D", "E", "F"}
	f := func(mask, extra uint8) bool {
		var seeds, more []Domain
		for i, d := range all {
			if mask&(1<<uint(i)) != 0 {
				seeds = append(seeds, d)
				more = append(more, d)
			} else if extra&(1<<uint(i)) != 0 {
				more = append(more, d)
			}
		}
		small := s.QueryableRelations(seeds)
		big := s.QueryableRelations(more)
		for r, ok := range small {
			if ok && !big[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every relation reported queryable has all input domains inside
// the obtainable-domain closure.
func TestQueryableConsistentWithObtainable(t *testing.T) {
	s := MustNew(
		MustRelation("r1", "io", "A", "B"),
		MustRelation("r2", "io", "B", "C"),
		MustRelation("r3", "io", "C", "A"),
		MustRelation("r4", "oo", "D", "B"),
	)
	all := []Domain{"A", "B", "C", "D"}
	f := func(mask uint8) bool {
		var seeds []Domain
		for i, d := range all {
			if mask&(1<<uint(i)) != 0 {
				seeds = append(seeds, d)
			}
		}
		q := s.QueryableRelations(seeds)
		obt := s.ObtainableDomains(seeds)
		for name, ok := range q {
			if !ok {
				continue
			}
			for _, d := range s.Relation(name).InputDomains() {
				if !obt[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
