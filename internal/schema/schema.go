// Package schema models relational schemas whose relations are only
// reachable through access patterns: every argument of a relation is either
// an input argument, which must be bound by a constant before the relation
// can be probed, or an output argument, which is returned by the probe.
//
// Arguments range over abstract domains (for instance Person or Paper):
// typed pools of constants that determine which extracted values may be used
// to bind which input arguments. The package also provides the domain-level
// queryability analysis of Calì & Martinenghi (ICDE 2008), Section II: a
// relation is queryable with respect to a set of seed domains if and only if
// there exists some database instance in which it can be accessed at least
// once starting from values of those domains.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// AccessMode is the mode of a single relation argument.
type AccessMode byte

const (
	// Input marks an argument that must be bound by a constant to access
	// the relation ('i' in the paper's pattern strings).
	Input AccessMode = 'i'
	// Output marks an argument returned by an access ('o').
	Output AccessMode = 'o'
)

// String returns "i" or "o".
func (m AccessMode) String() string { return string(byte(m)) }

// Valid reports whether m is one of Input or Output.
func (m AccessMode) Valid() bool { return m == Input || m == Output }

// Domain names an abstract domain. Domains compare by name.
type Domain string

// AccessPattern is the sequence of access modes of a relation, one per
// argument, e.g. "ooi" for a ternary relation whose last argument is input.
type AccessPattern []AccessMode

// ParsePattern parses a pattern string such as "ioo".
func ParsePattern(s string) (AccessPattern, error) {
	p := make(AccessPattern, 0, len(s))
	for i := 0; i < len(s); i++ {
		m := AccessMode(s[i])
		if !m.Valid() {
			return nil, fmt.Errorf("access pattern %q: position %d: want 'i' or 'o', got %q", s, i+1, string(s[i]))
		}
		p = append(p, m)
	}
	return p, nil
}

// String renders the pattern as a string of 'i'/'o' symbols.
func (p AccessPattern) String() string {
	var b strings.Builder
	for _, m := range p {
		b.WriteByte(byte(m))
	}
	return b.String()
}

// Free reports whether the pattern has no input arguments.
func (p AccessPattern) Free() bool {
	for _, m := range p {
		if m == Input {
			return false
		}
	}
	return true
}

// Inputs returns the zero-based positions of the input arguments, in order.
func (p AccessPattern) Inputs() []int {
	var out []int
	for i, m := range p {
		if m == Input {
			out = append(out, i)
		}
	}
	return out
}

// Outputs returns the zero-based positions of the output arguments, in order.
func (p AccessPattern) Outputs() []int {
	var out []int
	for i, m := range p {
		if m == Output {
			out = append(out, i)
		}
	}
	return out
}

// Relation is a relation schema: a name, an access pattern, and the abstract
// domain of each argument. It corresponds to the paper's signature
// r^α(A1,...,An).
type Relation struct {
	Name    string
	Pattern AccessPattern
	Domains []Domain
}

// NewRelation builds and validates a relation schema. The pattern string has
// one 'i'/'o' per domain.
func NewRelation(name, pattern string, domains ...Domain) (*Relation, error) {
	p, err := ParsePattern(pattern)
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", name, err)
	}
	r := &Relation{Name: name, Pattern: p, Domains: domains}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustRelation is NewRelation that panics on error; intended for tests and
// examples with literal schemas.
func MustRelation(name, pattern string, domains ...Domain) *Relation {
	r, err := NewRelation(name, pattern, domains...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns the number of arguments of the relation.
func (r *Relation) Arity() int { return len(r.Domains) }

// Free reports whether the relation has no input arguments.
func (r *Relation) Free() bool { return r.Pattern.Free() }

// InputPositions returns the zero-based input argument positions.
func (r *Relation) InputPositions() []int { return r.Pattern.Inputs() }

// OutputPositions returns the zero-based output argument positions.
func (r *Relation) OutputPositions() []int { return r.Pattern.Outputs() }

// InputDomains returns the domains of the input arguments, parallel to
// InputPositions.
func (r *Relation) InputDomains() []Domain {
	pos := r.InputPositions()
	out := make([]Domain, len(pos))
	for i, p := range pos {
		out[i] = r.Domains[p]
	}
	return out
}

// OutputDomains returns the domains of the output arguments, parallel to
// OutputPositions.
func (r *Relation) OutputDomains() []Domain {
	pos := r.OutputPositions()
	out := make([]Domain, len(pos))
	for i, p := range pos {
		out[i] = r.Domains[p]
	}
	return out
}

// Validate checks structural consistency of the relation schema.
func (r *Relation) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("relation with empty name")
	}
	if len(r.Pattern) != len(r.Domains) {
		return fmt.Errorf("relation %s: pattern %q has %d modes for %d domains",
			r.Name, r.Pattern, len(r.Pattern), len(r.Domains))
	}
	for i, m := range r.Pattern {
		if !m.Valid() {
			return fmt.Errorf("relation %s: invalid access mode at position %d", r.Name, i+1)
		}
	}
	for i, d := range r.Domains {
		if d == "" {
			return fmt.Errorf("relation %s: empty domain at position %d", r.Name, i+1)
		}
	}
	return nil
}

// String renders the schema in the paper's notation, e.g.
// "pub1^io(Paper,Person)".
func (r *Relation) String() string {
	parts := make([]string, len(r.Domains))
	for i, d := range r.Domains {
		parts[i] = string(d)
	}
	return fmt.Sprintf("%s^%s(%s)", r.Name, r.Pattern, strings.Join(parts, ","))
}

// Schema is a database schema: a set of relation schemas with distinct names.
type Schema struct {
	rels  map[string]*Relation
	order []string // insertion order, for deterministic iteration
}

// New builds a schema from the given relations.
func New(rels ...*Relation) (*Schema, error) {
	s := &Schema{rels: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		if err := s.Add(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(rels ...*Relation) *Schema {
	s, err := New(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add inserts a relation schema; relation names must be unique.
func (s *Schema) Add(r *Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := s.rels[r.Name]; dup {
		return fmt.Errorf("duplicate relation %s in schema", r.Name)
	}
	s.rels[r.Name] = r
	s.order = append(s.order, r.Name)
	return nil
}

// Relation returns the relation schema with the given name, or nil.
func (s *Schema) Relation(name string) *Relation { return s.rels[name] }

// Has reports whether the schema contains a relation with the given name.
func (s *Schema) Has(name string) bool { return s.rels[name] != nil }

// Relations returns the relation schemas in insertion order.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// Names returns the relation names in insertion order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of relations in the schema.
func (s *Schema) Len() int { return len(s.order) }

// Domains returns the sorted set of abstract domains mentioned by the schema.
func (s *Schema) Domains() []Domain {
	set := make(map[Domain]bool)
	for _, r := range s.rels {
		for _, d := range r.Domains {
			set[d] = true
		}
	}
	out := make([]Domain, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{rels: make(map[string]*Relation, len(s.rels))}
	for _, name := range s.order {
		r := s.rels[name]
		nr := &Relation{
			Name:    r.Name,
			Pattern: append(AccessPattern(nil), r.Pattern...),
			Domains: append([]Domain(nil), r.Domains...),
		}
		c.rels[name] = nr
		c.order = append(c.order, name)
	}
	return c
}

// String renders the schema, one relation per line, in insertion order.
func (s *Schema) String() string {
	var b strings.Builder
	for i, n := range s.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s.rels[n].String())
	}
	return b.String()
}

// QueryableRelations computes, by the domain-level fixpoint of Section II of
// the paper, the set of relations that can be accessed at least once in at
// least one database instance, starting from values of the seed domains
// (those of the constants occurring in the query). A relation becomes
// accessible when all of its input domains are obtainable; the outputs of an
// accessible relation make their domains obtainable.
func (s *Schema) QueryableRelations(seeds []Domain) map[string]bool {
	obtainable := make(map[Domain]bool, len(seeds))
	for _, d := range seeds {
		obtainable[d] = true
	}
	queryable := make(map[string]bool, len(s.rels))
	for changed := true; changed; {
		changed = false
		for _, name := range s.order {
			if queryable[name] {
				continue
			}
			r := s.rels[name]
			ok := true
			for _, d := range r.InputDomains() {
				if !obtainable[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			queryable[name] = true
			changed = true
			for _, d := range r.OutputDomains() {
				if !obtainable[d] {
					obtainable[d] = true
				}
			}
		}
	}
	return queryable
}

// ObtainableDomains computes the closure of domains whose values can be
// obtained starting from the seed domains, under the schema's access
// patterns.
func (s *Schema) ObtainableDomains(seeds []Domain) map[Domain]bool {
	obtainable := make(map[Domain]bool, len(seeds))
	for _, d := range seeds {
		obtainable[d] = true
	}
	for changed := true; changed; {
		changed = false
		for _, name := range s.order {
			r := s.rels[name]
			ok := true
			for _, d := range r.InputDomains() {
				if !obtainable[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, d := range r.OutputDomains() {
				if !obtainable[d] {
					obtainable[d] = true
					changed = true
				}
			}
		}
	}
	return obtainable
}
