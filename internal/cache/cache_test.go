package cache

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// testSource builds a Counter-wrapped table source over relation text like
// "r^i(A)" with the given rows; the counter observes the probes that reach
// the table through the cache.
func testSource(t *testing.T, relText string, rows ...storage.Row) (*source.Counter, *schema.Relation) {
	t.Helper()
	sch, err := schema.Parse(relText)
	if err != nil {
		t.Fatal(err)
	}
	rel := sch.Relations()[0]
	tab := storage.NewTable(rel.Name, rel.Arity())
	tab.InsertAll(rows)
	src, err := source.NewTableSource(rel, tab)
	if err != nil {
		t.Fatal(err)
	}
	return source.NewCounter(src, false), rel
}

func TestHitMissAndStats(t *testing.T) {
	ctr, _ := testSource(t, "r^io(A, B)", storage.Row{"a", "1"}, storage.Row{"b", "2"})
	c := New(Options{})
	w := c.Wrap(ctr)

	for i := 0; i < 3; i++ {
		rows, err := w.Access([]string{"a"})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][1] != "1" {
			t.Fatalf("access %d: rows = %v", i, rows)
		}
	}
	if got := ctr.Stats().Accesses; got != 1 {
		t.Errorf("underlying accesses = %d, want 1", got)
	}
	st := c.Snapshot()["r"]
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 1 entry", st)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestNegativeCaching(t *testing.T) {
	ctr, _ := testSource(t, "r^io(A, B)") // empty table: every access is negative
	c := New(Options{})
	w := c.Wrap(ctr)
	for i := 0; i < 2; i++ {
		if rows, err := w.Access([]string{"zzz"}); err != nil || len(rows) != 0 {
			t.Fatalf("rows=%v err=%v", rows, err)
		}
	}
	if got := ctr.Stats().Accesses; got != 1 {
		t.Errorf("negative result not cached: %d underlying accesses", got)
	}

	ctr2, _ := testSource(t, "r^io(A, B)")
	c2 := New(Options{DisableNegative: true})
	w2 := c2.Wrap(ctr2)
	w2.Access([]string{"zzz"})
	w2.Access([]string{"zzz"})
	if got := ctr2.Stats().Accesses; got != 2 {
		t.Errorf("DisableNegative: underlying accesses = %d, want 2", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	ctr, _ := testSource(t, "r^io(A, B)", storage.Row{"a", "1"})
	now := time.Unix(1000, 0)
	c := New(Options{TTL: time.Minute, NegativeTTL: time.Second, now: func() time.Time { return now }})
	w := c.Wrap(ctr)

	w.Access([]string{"a"}) // positive, TTL 1m
	w.Access([]string{"x"}) // negative, TTL 1s
	if got := ctr.Stats().Accesses; got != 2 {
		t.Fatalf("underlying = %d", got)
	}

	now = now.Add(2 * time.Second) // negative expired, positive alive
	w.Access([]string{"a"})
	w.Access([]string{"x"})
	if got := ctr.Stats().Accesses; got != 3 {
		t.Errorf("after negative TTL: underlying = %d, want 3", got)
	}

	now = now.Add(2 * time.Minute) // everything expired
	w.Access([]string{"a"})
	if got := ctr.Stats().Accesses; got != 4 {
		t.Errorf("after TTL: underlying = %d, want 4", got)
	}
	if st := c.Snapshot()["r"]; st.Expirations != 2 {
		t.Errorf("expirations = %d, want 2", st.Expirations)
	}
}

func TestLRUEviction(t *testing.T) {
	ctr, _ := testSource(t, "r^io(A, B)",
		storage.Row{"a", "1"}, storage.Row{"b", "2"}, storage.Row{"c", "3"})
	c := New(Options{Capacity: 2, Shards: 1})
	w := c.Wrap(ctr)

	w.Access([]string{"a"})
	w.Access([]string{"b"})
	w.Access([]string{"a"}) // refresh a: b is now LRU
	w.Access([]string{"c"}) // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Lookup("r", source.EpochOf(ctr), []string{"b"}); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Lookup("r", source.EpochOf(ctr), []string{"a"}); !ok {
		t.Error("a should have survived (recently used)")
	}
	if st := c.Snapshot()["r"]; st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	w.Access([]string{"b"}) // re-probe after eviction
	if got := ctr.Stats().Accesses; got != 4 {
		t.Errorf("underlying = %d, want 4", got)
	}
}

func TestInvalidateAndClear(t *testing.T) {
	ctrR, _ := testSource(t, "r^io(A, B)", storage.Row{"a", "1"})
	ctrS, _ := testSource(t, "s^io(A, B)", storage.Row{"a", "9"})
	c := New(Options{})
	wr, ws := c.Wrap(ctrR), c.Wrap(ctrS)
	wr.Access([]string{"a"})
	ws.Access([]string{"a"})
	if n := c.Invalidate("r"); n != 1 {
		t.Errorf("Invalidate(r) = %d, want 1", n)
	}
	if _, ok := c.Lookup("s", source.EpochOf(ctrS), []string{"a"}); !ok {
		t.Error("s entry lost by Invalidate(r)")
	}
	wr.Access([]string{"a"})
	if got := ctrR.Stats().Accesses; got != 2 {
		t.Errorf("after invalidate: underlying r accesses = %d, want 2", got)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("after Clear: Len = %d", c.Len())
	}
}

func TestErrorsNotCached(t *testing.T) {
	ctr, _ := testSource(t, "r^io(A, B)", storage.Row{"a", "1"})
	boom := errors.New("boom")
	flaky := source.NewFlaky(ctr, 0, boom) // every access fails
	c := New(Options{})
	w := c.Wrap(flaky)
	for i := 0; i < 2; i++ {
		if _, err := w.Access([]string{"a"}); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if c.Len() != 0 {
		t.Errorf("error result cached: Len = %d", c.Len())
	}
	if st := c.Snapshot()["r"]; st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (errors retried)", st.Misses)
	}
}

// slowWrapper delays every access so that concurrent probes overlap.
type slowWrapper struct {
	inner source.Wrapper
	d     time.Duration
}

func (s *slowWrapper) Relation() *schema.Relation { return s.inner.Relation() }
func (s *slowWrapper) Access(binding []string) ([]storage.Row, error) {
	time.Sleep(s.d)
	return s.inner.Access(binding)
}

func TestSingleflightCollapsesConcurrentProbes(t *testing.T) {
	ctr, _ := testSource(t, "r^io(A, B)", storage.Row{"a", "1"})
	c := New(Options{})
	w := c.Wrap(&slowWrapper{inner: ctr, d: 20 * time.Millisecond})

	const G = 16
	var wg sync.WaitGroup
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := w.Access([]string{"a"})
			if err != nil || len(rows) != 1 {
				t.Errorf("rows=%v err=%v", rows, err)
			}
		}()
	}
	wg.Wait()
	if got := ctr.Stats().Accesses; got != 1 {
		t.Errorf("underlying accesses = %d, want 1 (singleflight)", got)
	}
	st := c.Snapshot()["r"]
	if st.Misses != 1 || st.Hits+st.Collapsed != G-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+collapsed", st, G-1)
	}
}

// TestInvalidateDuringProbeSkipsStore: a probe in flight when Invalidate
// runs must not re-populate the cache with its (possibly stale) extraction.
func TestInvalidateDuringProbeSkipsStore(t *testing.T) {
	ctr, _ := testSource(t, "r^io(A, B)", storage.Row{"a", "1"})
	c := New(Options{})
	w := c.Wrap(&slowWrapper{inner: ctr, d: 60 * time.Millisecond})

	done := make(chan struct{})
	go func() {
		defer close(done)
		if rows, err := w.Access([]string{"a"}); err != nil || len(rows) != 1 {
			t.Errorf("rows=%v err=%v", rows, err)
		}
	}()
	time.Sleep(15 * time.Millisecond) // probe is now sleeping in the source
	c.Invalidate("r")
	<-done
	if _, ok := c.Lookup("r", 0, []string{"a"}); ok {
		t.Error("extraction stored despite invalidation during the probe")
	}
	// The next access re-probes and stores normally.
	w.Access([]string{"a"})
	if _, ok := c.Lookup("r", 0, []string{"a"}); !ok {
		t.Error("cache did not recover after the skipped store")
	}
	if got := ctr.Stats().Accesses; got != 2 {
		t.Errorf("underlying accesses = %d, want 2", got)
	}
}

// panicOnceWrapper panics on its first access, then delegates.
type panicOnceWrapper struct {
	inner    source.Wrapper
	panicked bool
}

func (p *panicOnceWrapper) Relation() *schema.Relation { return p.inner.Relation() }
func (p *panicOnceWrapper) Access(binding []string) ([]storage.Row, error) {
	if !p.panicked {
		p.panicked = true
		panic("wrapper bug")
	}
	return p.inner.Access(binding)
}

// TestPanicDoesNotWedgeKey: a panicking wrapper must not leave the access
// key's singleflight permanently blocked; the next probe retries.
func TestPanicDoesNotWedgeKey(t *testing.T) {
	ctr, _ := testSource(t, "r^io(A, B)", storage.Row{"a", "1"})
	c := New(Options{})
	w := c.Wrap(&panicOnceWrapper{inner: ctr})

	func() {
		defer func() {
			if recover() == nil {
				t.Error("first access should panic through")
			}
		}()
		w.Access([]string{"a"})
	}()
	// The key must not be wedged: this would block forever on the dead
	// flight if cleanup were skipped on panic.
	rows, err := w.Access([]string{"a"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("after panic: rows=%v err=%v", rows, err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestWrapRegistryAndSummary(t *testing.T) {
	ctr, rel := testSource(t, "r^io(A, B)", storage.Row{"a", "1"})
	_ = rel
	reg := source.NewRegistry()
	reg.Bind(ctr)
	c := New(Options{})
	wrapped := c.WrapRegistry(reg)
	w := wrapped.Source("r")
	if w == nil {
		t.Fatal("r not in wrapped registry")
	}
	w.Access([]string{"a"})
	w.Access([]string{"a"})
	sum := c.Summary()
	if sum == "" {
		t.Fatal("empty summary")
	}
	for _, want := range []string{"relation", "r", "TOTAL", "50.00%"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestVersionedEntries: a mutated relation's cached extractions — negative
// entries included — stop serving without any explicit invalidation,
// because entries are keyed by the source's data epoch; an execution still
// pinned to the old version keeps hitting its own entries.
func TestVersionedEntries(t *testing.T) {
	sch, err := schema.Parse("r^io(K, V)")
	if err != nil {
		t.Fatal(err)
	}
	rel := sch.Relations()[0]
	tab := storage.NewTable("r", 2)
	tab.InsertAll([]storage.Row{{"k", "old"}})
	live, err := source.NewTableSource(rel, tab)
	if err != nil {
		t.Fatal(err)
	}
	ctr := source.NewCounter(live, false)
	c := New(Options{})
	w := c.Wrap(ctr)

	w.Access([]string{"k"})   // positive entry at the old epoch
	w.Access([]string{"amy"}) // negative entry at the old epoch
	pinned := c.Wrap(live.Snapshot())
	if got := ctr.Stats().Accesses; got != 2 {
		t.Fatalf("underlying = %d, want 2", got)
	}

	tab.InsertAll([]storage.Row{{"k", "new"}, {"amy", "here"}})

	// The live wrapper re-probes both bindings: old-epoch entries no longer
	// match, and the fresh rows are visible.
	if rows, _ := w.Access([]string{"k"}); len(rows) != 2 {
		t.Errorf("post-mutation k rows = %v, want 2", rows)
	}
	if rows, _ := w.Access([]string{"amy"}); len(rows) != 1 {
		t.Errorf("negative entry served after mutation: %v", rows)
	}
	if got := ctr.Stats().Accesses; got != 4 {
		t.Errorf("underlying = %d, want 4 (no stale hits)", got)
	}

	// The pinned wrapper, probing through the same cache, still serves the
	// old version — from the old-epoch entries, without a fresh probe.
	if rows, _ := pinned.Access([]string{"k"}); len(rows) != 1 || rows[0][1] != "old" {
		t.Errorf("pinned access = %v, want the old row", rows)
	}
	if rows, _ := pinned.Access([]string{"amy"}); len(rows) != 0 {
		t.Errorf("pinned negative access = %v, want empty", rows)
	}
}
