package cache

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

func batchWrapper(t *testing.T, rows int) source.Wrapper {
	t.Helper()
	sch := schema.MustParse("r^io(A, B)")
	tab := storage.NewTable("r", 2)
	for i := 0; i < rows; i++ {
		tab.Insert(storage.Row{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)})
	}
	src, err := source.NewTableSource(sch.Relation("r"), tab)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestMultiGetMultiPut: round-tripping extractions through MultiPut makes
// them MultiGet hits, with per-binding hit accounting.
func TestMultiGetMultiPut(t *testing.T) {
	c := New(Options{})
	bindings := [][]string{{"a0"}, {"a1"}}
	rows := [][]storage.Row{{{"a0", "b0"}}, {}}
	c.MultiPut("r", 0, bindings, rows)
	got, ok := c.MultiGet("r", 0, [][]string{{"a0"}, {"a1"}, {"a2"}})
	if !ok[0] || !ok[1] || ok[2] {
		t.Fatalf("ok = %v, want [true true false]", ok)
	}
	if !reflect.DeepEqual(got[0], rows[0]) {
		t.Errorf("got[0] = %v, want %v", got[0], rows[0])
	}
	if len(got[1]) != 0 {
		t.Errorf("negative entry must round-trip empty, got %v", got[1])
	}
	st := c.Snapshot()["r"]
	if st.Hits != 2 {
		t.Errorf("Hits = %d, want 2", st.Hits)
	}
	if st.Entries != 2 {
		t.Errorf("Entries = %d, want 2", st.Entries)
	}
}

// TestMultiPutRespectsNegativePolicy: empty extractions are skipped when
// negative caching is off.
func TestMultiPutRespectsNegativePolicy(t *testing.T) {
	c := New(Options{DisableNegative: true})
	c.MultiPut("r", 0, [][]string{{"a0"}, {"a1"}}, [][]storage.Row{{}, {{"a1", "b1"}}})
	if _, ok := c.MultiGet("r", 0, [][]string{{"a0"}}); ok[0] {
		t.Error("empty extraction cached despite DisableNegative")
	}
	if _, ok := c.MultiGet("r", 0, [][]string{{"a1"}}); !ok[0] {
		t.Error("non-empty extraction missing")
	}
}

// TestMultiPutEvicts: the LRU capacity bound holds under batch stores.
func TestMultiPutEvicts(t *testing.T) {
	c := New(Options{Capacity: 4, Shards: 1})
	var bindings [][]string
	var rows [][]storage.Row
	for i := 0; i < 10; i++ {
		bindings = append(bindings, []string{fmt.Sprintf("a%d", i)})
		rows = append(rows, []storage.Row{{fmt.Sprintf("a%d", i), "b"}})
	}
	c.MultiPut("r", 0, bindings, rows)
	if got := c.Len(); got > 4 {
		t.Errorf("Len = %d, want <= 4 after batched stores", got)
	}
	if st := c.Snapshot()["r"]; st.Evictions == 0 {
		t.Error("evictions not counted for batch stores")
	}
}

// TestCachedSourceAccessBatch: the cache-wrapped source serves batches —
// first call all misses, second call all hits, partial overlaps mixed —
// and results always match the plain source.
func TestCachedSourceAccessBatch(t *testing.T) {
	plain := batchWrapper(t, 8)
	c := New(Options{})
	cached := c.Wrap(plain)
	bs, ok := cached.(source.BatchSource)
	if !ok {
		t.Fatal("cache-wrapped source must implement BatchSource")
	}
	first := [][]string{{"a0"}, {"a1"}, {"a2"}}
	got, err := bs.AccessBatch(first)
	if err != nil {
		t.Fatal(err)
	}
	want, err := source.ProbeBatch(plain, first)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cold batch = %v, want %v", got, want)
	}
	st := c.Snapshot()["r"]
	if st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("cold batch stats = %+v, want 0 hits / 3 misses", st)
	}

	// Overlapping batch: two hits, one fresh miss.
	second := [][]string{{"a1"}, {"a2"}, {"a5"}}
	got, err = bs.AccessBatch(second)
	if err != nil {
		t.Fatal(err)
	}
	want, _ = source.ProbeBatch(plain, second)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm batch = %v, want %v", got, want)
	}
	st = c.Snapshot()["r"]
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("warm batch stats = %+v, want 2 hits / 4 misses", st)
	}
}

// TestAccessBatchSkipsStoreAfterInvalidate: a batch probe that raced an
// Invalidate must not re-populate the cache with its stale extraction.
func TestAccessBatchSkipsStoreAfterInvalidate(t *testing.T) {
	c := New(Options{})
	inner := &invalidatingWrapper{Wrapper: batchWrapper(t, 4), c: c}
	if _, err := c.accessBatch(inner, [][]string{{"a0"}, {"a1"}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 0 {
		t.Errorf("Len = %d, want 0: the batch ran against a source invalidated mid-probe", got)
	}
}

// invalidatingWrapper invalidates its own relation while the probe is in
// flight, simulating a rebind racing a batch.
type invalidatingWrapper struct {
	source.Wrapper
	c *Cache
}

func (w *invalidatingWrapper) Access(binding []string) ([]storage.Row, error) {
	w.c.Invalidate(w.Relation().Name)
	return w.Wrapper.Access(binding)
}

// TestMultiGetExpiry: expired entries are dropped and counted, not served.
func TestMultiGetExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	c := New(Options{TTL: time.Minute, now: func() time.Time { return now }})
	c.MultiPut("r", 0, [][]string{{"a0"}}, [][]storage.Row{{{"a0", "b0"}}})
	now = now.Add(2 * time.Minute)
	if _, ok := c.MultiGet("r", 0, [][]string{{"a0"}}); ok[0] {
		t.Error("expired entry served from MultiGet")
	}
	if st := c.Snapshot()["r"]; st.Expirations != 1 {
		t.Errorf("Expirations = %d, want 1", st.Expirations)
	}
}
