package cache

import (
	"context"

	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
	"toorjah/internal/sym"
)

// cachedSource is a source.Wrapper whose accesses are served through a
// shared Cache.
type cachedSource struct {
	c     *Cache
	inner source.Wrapper
}

// Relation returns the wrapped relation schema.
func (s *cachedSource) Relation() *schema.Relation { return s.inner.Relation() }

// Epoch forwards the wrapped source's data epoch (0 when unversioned), so
// layered caches and the probe protocol see through the cache decorator.
func (s *cachedSource) Epoch() uint64 { return source.EpochOf(s.inner) }

// Access serves the probe from the cache, hitting the inner wrapper only on
// a miss; concurrent identical probes collapse into one inner access.
func (s *cachedSource) Access(binding []string) ([]storage.Row, error) {
	return s.c.access(s.inner, binding)
}

// AccessBatch serves a batch of probes through the cache: hits are answered
// in place, the misses travel to the inner wrapper as one batched round
// trip, and their extractions are stored for the next query.
func (s *cachedSource) AccessBatch(bindings [][]string) ([][]storage.Row, error) {
	return s.c.accessBatch(s.inner, bindings)
}

// AccessBatchCtx is AccessBatch threading the request context (cancellation
// and trace baggage) through the cache to the inner wrapper.
func (s *cachedSource) AccessBatchCtx(ctx context.Context, bindings [][]string) ([][]storage.Row, error) {
	return s.c.accessBatchCtx(ctx, s.inner, bindings)
}

// AccessSyms serves an interned batch through the cache: the executors'
// probe path, integer keys and rows end to end.
func (s *cachedSource) AccessSyms(ctx context.Context, bindings [][]sym.ID) ([][]storage.IRow, error) {
	return s.c.accessSyms(ctx, s.inner, bindings)
}

// Wrap layers the cache over a wrapper. Decorators compose: wrap a
// source.Counter to count only the probes that actually reach the source,
// e.g. Cached(Counted(TableSource)).
func (c *Cache) Wrap(w source.Wrapper) source.Wrapper {
	return &cachedSource{c: c, inner: w}
}

// WrapRegistry returns a registry in which every source of reg is wrapped
// by the cache. The cache is keyed by relation name: registries sharing one
// cache must bind the same logical sources to the same names.
func (c *Cache) WrapRegistry(reg *source.Registry) *source.Registry {
	out := source.NewRegistry()
	for _, name := range reg.Names() {
		out.Bind(c.Wrap(reg.Source(name)))
	}
	return out
}
