package cache_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"toorjah/internal/cache"
	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/exec"
	"toorjah/internal/gen"
	"toorjah/internal/source"
)

// TestPipelinedConcurrentCachedCorrectness runs the pipelined executor with
// high per-relation parallelism, several executions concurrently, all
// sharing one access cache over Counter-wrapped sources. It asserts the
// cross-query cache's concurrency contract:
//
//   - every concurrent cached run computes exactly the uncached answer set;
//   - no distinct access ever hits an underlying table more than once
//     (singleflight collapses concurrent identical probes);
//   - all runs together probe no more than one uncached run needs.
//
// Run with -race; the CI workflow always does.
func TestPipelinedConcurrentCachedCorrectness(t *testing.T) {
	cfg := gen.SmallPublication()
	sch, db := gen.Publication(7, cfg)
	q, err := cq.Parse(gen.PublicationQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		t.Fatal(err)
	}

	// Uncached reference run: the expected answers and the access budget.
	baseReg, err := source.FromDatabase(sch, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := exec.FastFailing(context.Background(), p.Plan, baseReg)
	if err != nil {
		t.Fatal(err)
	}

	// Cached registry over per-relation counters observing table probes.
	reg := source.NewRegistry()
	counters := make(map[string]*source.Counter)
	for _, name := range baseReg.Names() {
		ctr := source.NewCounter(baseReg.Source(name), false)
		counters[name] = ctr
		reg.Bind(ctr)
	}
	c := cache.New(cache.Options{})

	const G = 6
	opts := exec.Options{
		Parallelism: 16,
		Cache:       c,
		// NoMetaCache disables the executor's own within-run access
		// sharing, so concurrent identical probes actually reach the cache
		// and exercise its singleflight.
		NoMetaCache: true,
	}
	results := make([]*exec.Result, G)
	errs := make([]error, G)
	var wg sync.WaitGroup
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = exec.Pipelined(context.Background(), p.Plan, reg, opts, nil)
		}(i)
	}
	wg.Wait()

	want := base.AnswerSet()
	for i := 0; i < G; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if got := results[i].AnswerSet(); !reflect.DeepEqual(got, want) {
			t.Errorf("run %d: %d answers, uncached run has %d", i, len(got), len(want))
		}
	}
	total := 0
	for rel, ctr := range counters {
		st := ctr.Stats()
		if st.Accesses != ctr.DistinctAccesses() {
			t.Errorf("%s: %d probes for %d distinct accesses (singleflight broken)",
				rel, st.Accesses, ctr.DistinctAccesses())
		}
		total += st.Accesses
	}
	if total > base.TotalAccesses() {
		t.Errorf("%d concurrent cached runs probed %d times, one uncached run needs %d",
			G, total, base.TotalAccesses())
	}

	// A further run over the warm cache probes nothing.
	warm, err := exec.Pipelined(context.Background(), p.Plan, reg, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalAccesses() != 0 {
		t.Errorf("warm run probed %d times, want 0", warm.TotalAccesses())
	}
	if got := warm.AnswerSet(); !reflect.DeepEqual(got, want) {
		t.Errorf("warm run: %d answers, want %d", len(got), len(want))
	}
}
