// Package cache provides the cross-query access cache of the Toorjah
// service layer. The paper's cost model is the number of accesses to
// limited-access sources; the executors already deduplicate accesses within
// one execution (per-relation meta-caches), but every new query re-probes
// the same wrappers from scratch. A Cache is shared across executions — and
// across concurrent clients of a long-running service like cmd/toorjahd —
// so that an access performed once is never performed again while its entry
// lives.
//
// The cache is keyed by source.Access.Key() (relation name plus input
// binding) plus the data epoch of the source (source.EpochOf) and is safe
// for concurrent use:
//
//   - sharded: keys are hashed over independently locked shards, so
//     concurrent probes of different accesses do not contend;
//   - bounded: each shard keeps an LRU list and evicts the least recently
//     used entry when the configured capacity is exceeded;
//   - expiring: entries older than the TTL are dropped lazily on access
//     (remote sources change; a service must not serve stale extractions
//     forever);
//   - negative-caching: empty extractions are cached too — knowing that an
//     access returns nothing is exactly as valuable under the access cost
//     model — optionally with a shorter TTL;
//   - collapsing: concurrent identical probes are merged into a single
//     probe of the underlying source (singleflight), which matters under
//     the pipelined executor's per-relation parallelism and under
//     concurrent service traffic;
//   - versioned: when a source reports a data epoch (source.Versioned —
//     live tables and federated peers do), entries are keyed by that epoch
//     too, so an execution pinned to one version of a relation never reads
//     or feeds entries of another. Mutating a relation therefore makes its
//     whole cached extraction set — negative entries included — unreachable
//     at once; Invalidate additionally frees the stale entries eagerly.
//
// Use Wrap to layer the cache over any source.Wrapper (composable
// middleware, e.g. Cached(Counted(TableSource))), or WrapRegistry for a
// whole registry. Per-relation hit/miss/eviction statistics are available
// through Snapshot and, rendered as a text table via internal/stats,
// through Summary.
//
// Errors are never cached: a failed probe is retried by the next access.
// Results handed out by the cache are shared slices and must not be
// mutated by callers (the same contract as storage.Table.Select).
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"toorjah/internal/obs"
	"toorjah/internal/source"
	"toorjah/internal/stats"
	"toorjah/internal/storage"
	"toorjah/internal/sym"
)

// Options configures a Cache. The zero value gives a 65536-entry cache with
// 16 shards, no expiry, and negative caching on.
type Options struct {
	// Capacity bounds the total number of cached accesses across all
	// shards; the least recently used entries are evicted beyond it.
	// 0 means DefaultCapacity; negative means unbounded.
	Capacity int
	// Shards is the number of independently locked shards; 0 means
	// DefaultShards.
	Shards int
	// TTL expires entries that many nanoseconds after they were stored;
	// 0 means entries never expire.
	TTL time.Duration
	// NegativeTTL, when positive, overrides TTL for empty extractions, so
	// that "nothing there" can be re-checked sooner than positive results.
	NegativeTTL time.Duration
	// DisableNegative turns off caching of empty extractions entirely.
	DisableNegative bool

	// now is a test hook for the clock; nil means time.Now.
	now func() time.Time
}

// Default capacity and shard count of the zero Options value.
const (
	DefaultCapacity = 65536
	DefaultShards   = 16
)

// RelStats is the per-relation accounting of one cache.
type RelStats struct {
	Hits        int64 `json:"hits"`        // accesses served from the cache
	Misses      int64 `json:"misses"`      // accesses that probed the source
	Collapsed   int64 `json:"collapsed"`   // accesses merged into an in-flight probe
	Evictions   int64 `json:"evictions"`   // entries dropped by the LRU bound
	Expirations int64 `json:"expirations"` // entries dropped by TTL
	Entries     int64 `json:"entries"`     // entries currently cached (Snapshot only)
}

// Add accumulates another relation's counters into s.
func (s *RelStats) Add(o RelStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Collapsed += o.Collapsed
	s.Evictions += o.Evictions
	s.Expirations += o.Expirations
	s.Entries += o.Entries
}

// entry is one cached extraction, stored interned: keys are packed symbol
// IDs and rows are IRows, so the cache's resident set carries no string
// payload and hashes in a handful of words per probe.
type entry struct {
	key     string
	rel     string
	rows    []storage.IRow
	expires time.Time // zero = never
	elem    *list.Element
}

// flight is one in-progress probe; concurrent identical probes wait on done
// and share the outcome.
type flight struct {
	done chan struct{}
	rows []storage.Row
	err  error
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recently used
	inflight map[string]*flight
	stats    map[string]*RelStats
	capacity int // per-shard entry bound; 0 = unbounded
}

func (sh *shard) bump(rel string) *RelStats {
	st, ok := sh.stats[rel]
	if !ok {
		st = &RelStats{}
		sh.stats[rel] = st
	}
	return st
}

// removeLocked unlinks an entry; the shard lock must be held.
func (sh *shard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	sh.lru.Remove(e.elem)
}

// Cache is a sharded, bounded, expiring access cache shared across query
// executions. Create one with New; the zero value is not usable.
type Cache struct {
	opts   Options
	shards []*shard
	// gen is bumped by Invalidate/Clear before entries are removed; a
	// probe captures it when it starts and skips its store when it has
	// moved, so an extraction read from a source that was replaced
	// mid-probe cannot re-populate the cache after the invalidation.
	// (Distinct from data epochs, which version the entries of one
	// relation; gen guards the whole cache against rebind races.)
	gen atomic.Uint64
}

// New creates a cache with the given options.
func New(opts Options) *Cache {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.Capacity == 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	perShard := 0
	if opts.Capacity > 0 {
		perShard = (opts.Capacity + opts.Shards - 1) / opts.Shards
	}
	c := &Cache{opts: opts, shards: make([]*shard, opts.Shards)}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries:  make(map[string]*entry),
			lru:      list.New(),
			inflight: make(map[string]*flight),
			stats:    make(map[string]*RelStats),
			capacity: perShard,
		}
	}
	return c
}

// shard picks the key's shard with an inline FNV-1a hash: this runs on
// every probe of every query, so it must not allocate.
func (c *Cache) shard(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// appendVersionedKey builds the storage key of one access at one data
// epoch: the packed integer access key, plus an epoch suffix for versioned
// sources. Unversioned sources (epoch 0) use the plain access key, so their
// entries behave exactly as before data versioning existed.
func appendVersionedKey(dst []byte, rel string, binding []sym.ID, epoch uint64) []byte {
	dst = source.AppendSymAccessKey(dst, rel, binding)
	if epoch != 0 {
		dst = append(dst, 0, '@')
		dst = strconv.AppendUint(dst, epoch, 16)
	}
	return dst
}

// versionedKey is appendVersionedKey over a boundary (string) binding; the
// values intern — an access worth caching is an access whose values the
// engine holds anyway.
func versionedKey(rel string, binding []string, epoch uint64) string {
	return string(appendVersionedKey(nil, rel, sym.InternAll(binding), epoch))
}

// access serves one probe of w through the cache. The entry is keyed by
// w's current data epoch, captured before the probe: if the source
// advances mid-probe the extraction is stored under the pre-probe epoch and
// simply never serves the new version — conservative, never stale.
//
//toorjahvet:boundary (legacy string-surface adapter; the executors use the Sym forms)
func (c *Cache) access(w source.Wrapper, binding []string) ([]storage.Row, error) {
	rel := w.Relation().Name
	key := versionedKey(rel, binding, source.EpochOf(w))
	sh := c.shard(key)
	now := c.opts.now()

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		if e.expires.IsZero() || now.Before(e.expires) {
			sh.lru.MoveToFront(e.elem)
			sh.bump(rel).Hits++
			irows := e.rows
			sh.mu.Unlock()
			return storage.MaterializeRows(irows), nil
		}
		sh.removeLocked(e)
		sh.bump(rel).Expirations++
	}
	if f, ok := sh.inflight[key]; ok {
		sh.bump(rel).Collapsed++
		sh.mu.Unlock()
		<-f.done
		return f.rows, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.bump(rel).Misses++
	gen := c.gen.Load()
	sh.mu.Unlock()

	// A panicking wrapper must not wedge the key: unregister the flight
	// and unblock waiters with an error before the panic propagates.
	completed := false
	defer func() {
		if completed {
			return
		}
		f.err = fmt.Errorf("cache: probe of %s panicked",
			source.Access{Relation: rel, Binding: binding})
		sh.mu.Lock()
		delete(sh.inflight, key)
		sh.mu.Unlock()
		close(f.done)
	}()

	rows, err := w.Access(binding)
	f.rows, f.err = rows, err

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil && gen == c.gen.Load() &&
		(len(rows) > 0 || !c.opts.DisableNegative) {
		ttl := c.opts.TTL
		if len(rows) == 0 && c.opts.NegativeTTL > 0 {
			ttl = c.opts.NegativeTTL
		}
		e := &entry{key: key, rel: rel, rows: storage.InternRows(rows)}
		if ttl > 0 {
			// TTL counts from when the extraction is stored, not from when
			// the probe began — a slow source must not shorten its entry's
			// life (or store it already expired).
			e.expires = c.opts.now().Add(ttl)
		}
		if old, ok := sh.entries[key]; ok {
			sh.removeLocked(old)
		}
		e.elem = sh.lru.PushFront(e)
		sh.entries[key] = e
		for sh.capacity > 0 && sh.lru.Len() > sh.capacity {
			oldest := sh.lru.Back().Value.(*entry)
			sh.removeLocked(oldest)
			sh.bump(oldest.rel).Evictions++
		}
	}
	sh.mu.Unlock()
	completed = true
	close(f.done)
	return rows, err
}

// accessBatch serves a batch of probes of one relation through the cache:
// cached bindings are answered in place, the misses are probed through the
// inner wrapper in a single batched round trip, and their extractions are
// stored. Unlike single access, batched misses are not collapsed with
// concurrent identical probes — the batch is itself the amortisation of the
// round trip, and a duplicate probe only costs a redundant store.
func (c *Cache) accessBatch(w source.Wrapper, bindings [][]string) ([][]storage.Row, error) {
	//toorjahvet:allow ctx-first (contextless BatchSource interface shim over the ctx-aware form)
	return c.accessBatchCtx(context.Background(), w, bindings)
}

// accessBatchCtx is accessBatch threading the request context through to
// the inner wrapper (cancellation and trace baggage travel to the source
// that pays the round trip) and, when the context carries a trace, opening
// a "cache-lookup" span recording how many of the requested accesses the
// cache absorbed.
func (c *Cache) accessBatchCtx(ctx context.Context, w source.Wrapper, bindings [][]string) ([][]storage.Row, error) {
	rel := w.Relation().Name
	ctx, sp := obs.StartSpan(ctx, "cache-lookup")
	defer sp.End()
	sp.SetAttr("relation", rel)
	sp.SetAttr("requested", len(bindings))
	epoch := source.EpochOf(w) // pre-probe, like the single-access path
	out, hit := c.MultiGet(rel, epoch, bindings)
	var missIdx []int
	var misses [][]string
	for i := range bindings {
		if !hit[i] {
			missIdx = append(missIdx, i)
			misses = append(misses, bindings[i])
		}
	}
	sp.SetAttr("hits", len(bindings)-len(misses))
	if len(misses) == 0 {
		return out, nil
	}
	for _, b := range misses {
		key := versionedKey(rel, b, epoch)
		sh := c.shard(key)
		sh.mu.Lock()
		sh.bump(rel).Misses++
		sh.mu.Unlock()
	}
	gen := c.gen.Load()
	rows, err := source.ProbeBatchCtx(ctx, w, misses)
	if err != nil {
		return nil, err
	}
	// Same invalidation contract as the single-access path: an extraction
	// read from a source replaced mid-probe must not re-populate the cache.
	if gen == c.gen.Load() {
		c.MultiPut(rel, epoch, misses, rows)
	}
	for j, i := range missIdx {
		out[i] = rows[j]
	}
	return out, nil
}

// accessSyms is the integer mirror of accessBatchCtx: the hot path of the
// executors. Hits are answered from the interned entry store, misses travel
// to the inner wrapper through source.ProbeSyms as one batched round trip,
// and no string is constructed anywhere in between.
func (c *Cache) accessSyms(ctx context.Context, w source.Wrapper, bindings [][]sym.ID) ([][]storage.IRow, error) {
	rel := w.Relation().Name
	ctx, sp := obs.StartSpan(ctx, "cache-lookup")
	defer sp.End()
	sp.SetAttr("relation", rel)
	sp.SetAttr("requested", len(bindings))
	epoch := source.EpochOf(w) // pre-probe, like the single-access path
	out, hit := c.MultiGetSym(rel, epoch, bindings)
	var missIdx []int
	var misses [][]sym.ID
	for i := range bindings {
		if !hit[i] {
			missIdx = append(missIdx, i)
			misses = append(misses, bindings[i])
		}
	}
	sp.SetAttr("hits", len(bindings)-len(misses))
	if len(misses) == 0 {
		return out, nil
	}
	var kb []byte
	for _, b := range misses {
		kb = appendVersionedKey(kb[:0], rel, b, epoch)
		sh := c.shard(string(kb))
		sh.mu.Lock()
		sh.bump(rel).Misses++
		sh.mu.Unlock()
	}
	gen := c.gen.Load()
	rows, err := source.ProbeSyms(ctx, w, misses)
	if err != nil {
		return nil, err
	}
	// Same invalidation contract as the single-access path: an extraction
	// read from a source replaced mid-probe must not re-populate the cache.
	if gen == c.gen.Load() {
		c.MultiPutSym(rel, epoch, misses, rows)
	}
	for j, i := range missIdx {
		out[i] = rows[j]
	}
	return out, nil
}

// getOne looks one key up, applying expiry and recording the hit; the
// caller does NOT hold the shard lock.
func (c *Cache) getOne(rel, key string, now time.Time) ([]storage.IRow, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, present := sh.entries[key]
	if !present {
		return nil, false
	}
	if e.expires.IsZero() || now.Before(e.expires) {
		sh.lru.MoveToFront(e.elem)
		sh.bump(rel).Hits++
		return e.rows, true
	}
	sh.removeLocked(e)
	sh.bump(rel).Expirations++
	return nil, false
}

// putOne stores one extraction, applying TTL, negative-caching and LRU
// eviction.
func (c *Cache) putOne(rel, key string, rows []storage.IRow, now time.Time) {
	if len(rows) == 0 && c.opts.DisableNegative {
		return
	}
	ttl := c.opts.TTL
	if len(rows) == 0 && c.opts.NegativeTTL > 0 {
		ttl = c.opts.NegativeTTL
	}
	e := &entry{key: key, rel: rel, rows: rows}
	if ttl > 0 {
		e.expires = now.Add(ttl)
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if old, present := sh.entries[key]; present {
		sh.removeLocked(old)
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[key] = e
	for sh.capacity > 0 && sh.lru.Len() > sh.capacity {
		oldest := sh.lru.Back().Value.(*entry)
		sh.removeLocked(oldest)
		sh.bump(oldest.rel).Evictions++
	}
	sh.mu.Unlock()
}

// MultiGetSym looks up many interned bindings of one relation at one data
// epoch at once (epoch 0 = unversioned). Result i holds the cached
// extraction for bindings[i] and ok[i] reports whether it was present (and
// unexpired); hits are recorded and touched in the LRU order exactly as
// single accesses are. The hot-path lookup of the executors: keys pack into
// one reused buffer, nothing materializes.
func (c *Cache) MultiGetSym(rel string, epoch uint64, bindings [][]sym.ID) (rows [][]storage.IRow, ok []bool) {
	rows = make([][]storage.IRow, len(bindings))
	ok = make([]bool, len(bindings))
	now := c.opts.now()
	var kb []byte
	for i, b := range bindings {
		kb = appendVersionedKey(kb[:0], rel, b, epoch)
		rows[i], ok[i] = c.getOne(rel, string(kb), now)
	}
	return rows, ok
}

// MultiPutSym stores the extractions of many interned bindings of one
// relation at one data epoch (0 = unversioned), applying the same TTL,
// negative-caching and LRU-eviction rules as a probed store. It does not
// count misses: callers that probed a source account for that at the probe
// site.
func (c *Cache) MultiPutSym(rel string, epoch uint64, bindings [][]sym.ID, rows [][]storage.IRow) {
	now := c.opts.now()
	var kb []byte
	for i, b := range bindings {
		kb = appendVersionedKey(kb[:0], rel, b, epoch)
		c.putOne(rel, string(kb), rows[i], now)
	}
}

// MultiGet is MultiGetSym over boundary (string) bindings: a binding whose
// values were never interned cannot have an entry and misses. Hits
// materialize — callers on the hot path use MultiGetSym.
//
//toorjahvet:boundary (legacy string-surface adapter; the executors use the Sym forms)
func (c *Cache) MultiGet(rel string, epoch uint64, bindings [][]string) (rows [][]storage.Row, ok []bool) {
	rows = make([][]storage.Row, len(bindings))
	ok = make([]bool, len(bindings))
	now := c.opts.now()
	for i, b := range bindings {
		ids, known := sym.LookupAll(b)
		if !known {
			continue
		}
		irows, hit := c.getOne(rel, string(appendVersionedKey(nil, rel, ids, epoch)), now)
		if hit {
			rows[i], ok[i] = storage.MaterializeRows(irows), true
		}
	}
	return rows, ok
}

// MultiPut is MultiPutSym over boundary (string) bindings and rows; values
// intern on the way in.
func (c *Cache) MultiPut(rel string, epoch uint64, bindings [][]string, rows [][]storage.Row) {
	now := c.opts.now()
	for i, b := range bindings {
		key := versionedKey(rel, b, epoch)
		c.putOne(rel, key, storage.InternRows(rows[i]), now)
	}
}

// Lookup peeks at the cache without probing or recording a hit; it reports
// whether the access is currently cached at the given data epoch (0 =
// unversioned).
//
//toorjahvet:boundary (legacy string-surface adapter; the executors use the Sym forms)
func (c *Cache) Lookup(rel string, epoch uint64, binding []string) ([]storage.Row, bool) {
	ids, known := sym.LookupAll(binding)
	if !known {
		return nil, false
	}
	key := string(appendVersionedKey(nil, rel, ids, epoch))
	sh := c.shard(key)
	now := c.opts.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok || (!e.expires.IsZero() && !now.Before(e.expires)) {
		return nil, false
	}
	return storage.MaterializeRows(e.rows), true
}

// Len returns the number of cached accesses.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Invalidate drops every cached access of one relation — every epoch,
// negative entries included — and returns the number of entries dropped.
// Call it after rebinding a relation's source; for versioned sources an
// advancing data epoch already makes the old entries unreachable, and
// Invalidate additionally frees them eagerly. Probes in flight when
// Invalidate runs do not store their (possibly stale) extraction; an
// execution pinned to an older version may still store entries under its
// own (old) epoch afterwards, which no newer execution can read.
func (c *Cache) Invalidate(rel string) int {
	c.gen.Add(1)
	dropped := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.rel == rel {
				sh.removeLocked(e)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Clear drops every cached access; statistics are preserved.
func (c *Cache) Clear() {
	c.gen.Add(1)
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.entries = make(map[string]*entry)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// Snapshot returns the per-relation statistics, including the current
// entry counts.
func (c *Cache) Snapshot() map[string]RelStats {
	out := make(map[string]RelStats)
	for _, sh := range c.shards {
		sh.mu.Lock()
		for rel, st := range sh.stats {
			cur := out[rel]
			cur.Add(*st)
			out[rel] = cur
		}
		for _, e := range sh.entries {
			cur := out[e.rel]
			cur.Entries++
			out[e.rel] = cur
		}
		sh.mu.Unlock()
	}
	return out
}

// Totals sums the per-relation statistics.
func (c *Cache) Totals() RelStats {
	var t RelStats
	for _, st := range c.Snapshot() {
		t.Add(st)
	}
	return t
}

// Summary renders the per-relation statistics as an aligned text table
// (internal/stats), with a totals row.
func (c *Cache) Summary() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for rel := range snap {
		names = append(names, rel)
	}
	sort.Strings(names)
	var tb stats.Table
	tb.Header("relation", "hits", "misses", "hit%", "collapsed", "evictions", "expired", "entries")
	row := func(name string, st RelStats) {
		ratio := 0.0
		if st.Hits+st.Misses > 0 {
			ratio = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		tb.Rowf(name, st.Hits, st.Misses, stats.Pct(ratio), st.Collapsed, st.Evictions, st.Expirations, st.Entries)
	}
	for _, rel := range names {
		row(rel, snap[rel])
	}
	var total RelStats
	for _, st := range snap {
		total.Add(st)
	}
	row("TOTAL", total)
	return tb.String()
}
