// Package gen generates the synthetic workloads of the paper's experimental
// evaluation (Section V): the fixed publication schema with randomly
// populated sources behind the q1–q3 experiments (Fig. 6), and the random
// schemata, conjunctive queries, and database instances behind the
// aggregate experiments (Figs. 10 and 11).
//
// All generation is deterministic in the seed. The published parameter
// ranges are the defaults: schemata of 5–10 relations with 1–5 attributes,
// queries of 2–6 atoms with at least one join, abstract domains of 100–1000
// values, and relations of 10–10,000 tuples; the paper's fairness filters
// (answerable queries only, no queries over free relations only) are
// applied by Query.
package gen

import (
	"fmt"
	"math/rand"

	"toorjah/internal/cq"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

// Config holds the workload generation parameters.
type Config struct {
	// Schema shape.
	MinRelations, MaxRelations int
	MinArity, MaxArity         int
	NumDomains                 int
	// InputProb is the probability that an argument is an input argument.
	InputProb float64
	// MaxInputs caps the input arguments per relation. The naive algorithm
	// probes the full cross-product of the input domains, so k input
	// arguments over d-value domains cost d^k accesses; the cap keeps the
	// baseline runnable (the paper's testbed burned 9–15 s per naive query
	// on exactly this blow-up).
	MaxInputs int
	// Query shape.
	MinAtoms, MaxAtoms int
	// ReuseProb is the probability that a position reuses an existing
	// variable of its domain (creating joins); ConstProb the probability it
	// holds a constant instead.
	ReuseProb, ConstProb float64
	// MaxHeadVars bounds the head arity.
	MaxHeadVars int
	// Instance shape.
	MinTuples, MaxTuples             int
	MinDomainValues, MaxDomainValues int
}

// Paper returns the parameter ranges published in Section V.
func Paper() Config {
	return Config{
		MinRelations: 5, MaxRelations: 10,
		MinArity: 1, MaxArity: 5,
		NumDomains: 6,
		InputProb:  0.3,
		MaxInputs:  2,
		MinAtoms:   2, MaxAtoms: 6,
		ReuseProb: 0.5, ConstProb: 0.1,
		MaxHeadVars: 3,
		MinTuples:   10, MaxTuples: 10000,
		MinDomainValues: 100, MaxDomainValues: 1000,
	}
}

// Scaled returns the paper's shape parameters with instance sizes scaled
// down for unit tests and quick runs.
func Scaled() Config {
	c := Paper()
	c.MinTuples, c.MaxTuples = 10, 200
	c.MinDomainValues, c.MaxDomainValues = 10, 40
	return c
}

// Fig10 returns the calibrated configuration of the Fig. 10/11
// reproduction. The paper publishes the structural ranges (5–10 relations,
// arity 1–5, 2–6 atoms, ≥1 join) but not the join/constant densities of its
// query generator; these densities are calibrated so that the aggregate
// d-graph statistics land on the published ones (paper: 20.54 arcs, 1.89
// strong arcs, 81.02% saved accesses on average — this configuration:
// ≈23 arcs, ≈2.2 strong, ≈79% saved). Instance sizes are scaled down from
// 10–10,000 to 10–120 tuples to keep the naive baseline runnable (the
// paper's naive runs took 9–15 s per query on a quad-core testbed).
func Fig10() Config {
	c := Paper()
	c.InputProb = 0.55
	c.ReuseProb = 0.9
	c.ConstProb = 0.3
	c.NumDomains = 8
	c.MinTuples, c.MaxTuples = 10, 120
	c.MinDomainValues, c.MaxDomainValues = 10, 30
	return c
}

// Generator produces schemas, queries and instances deterministically from
// a seed.
type Generator struct {
	rng *rand.Rand
	cfg Config
}

// New creates a generator.
func New(seed int64, cfg Config) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

func (g *Generator) intBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// domainName names the i-th abstract domain.
func domainName(i int) schema.Domain { return schema.Domain(fmt.Sprintf("D%d", i)) }

// Schema generates a random schema within the configured shape. At least
// one relation is forced to be free so that some value flow can start.
func (g *Generator) Schema() *schema.Schema {
	n := g.intBetween(g.cfg.MinRelations, g.cfg.MaxRelations)
	rels := make([]*schema.Relation, 0, n)
	for i := 0; i < n; i++ {
		arity := g.intBetween(g.cfg.MinArity, g.cfg.MaxArity)
		domains := make([]schema.Domain, arity)
		pattern := make([]byte, arity)
		inputs := 0
		for p := 0; p < arity; p++ {
			domains[p] = domainName(g.rng.Intn(g.cfg.NumDomains))
			if i > 0 && inputs < g.cfg.MaxInputs && g.rng.Float64() < g.cfg.InputProb {
				pattern[p] = 'i'
				inputs++
			} else {
				pattern[p] = 'o' // relation 0 is free: a guaranteed seed
			}
		}
		rels = append(rels, schema.MustRelation(fmt.Sprintf("r%d", i+1), string(pattern), domains...))
	}
	return schema.MustNew(rels...)
}

// constValue returns the v-th constant of a domain; instances draw from the
// same pools, so query constants actually occur in the data.
func constValue(d schema.Domain, v int) string {
	return fmt.Sprintf("%s_v%d", sanitize(string(d)), v)
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c-'A'+'a')
		}
	}
	return string(out)
}

// domainSize returns the deterministic pool size of a domain under the
// configuration (a pseudo-random but seed-independent function of the
// name so query generation and instance generation agree).
func (g *Generator) domainSize(d schema.Domain) int {
	h := 0
	for i := 0; i < len(d); i++ {
		h = h*31 + int(d[i])
	}
	if h < 0 {
		h = -h
	}
	span := g.cfg.MaxDomainValues - g.cfg.MinDomainValues + 1
	return g.cfg.MinDomainValues + h%span
}

// Query generates a random conjunctive query over the schema satisfying the
// paper's fairness filters: valid, at least one join, answerable, and not
// over free relations only. It reports ok=false when no such query was
// found within the retry budget.
func (g *Generator) Query(sch *schema.Schema, name string) (*cq.CQ, bool) {
	rels := sch.Relations()
	for attempt := 0; attempt < 200; attempt++ {
		nAtoms := g.intBetween(g.cfg.MinAtoms, g.cfg.MaxAtoms)
		q := &cq.CQ{Name: name}
		varPool := make(map[schema.Domain][]string)
		varCount := 0
		for a := 0; a < nAtoms; a++ {
			rel := rels[g.rng.Intn(len(rels))]
			args := make([]cq.Term, rel.Arity())
			for p := 0; p < rel.Arity(); p++ {
				d := rel.Domains[p]
				pool := varPool[d]
				switch {
				case g.rng.Float64() < g.cfg.ConstProb:
					args[p] = cq.C(constValue(d, g.rng.Intn(g.domainSize(d))))
				case len(pool) > 0 && g.rng.Float64() < g.cfg.ReuseProb:
					args[p] = cq.V(pool[g.rng.Intn(len(pool))])
				default:
					varCount++
					v := fmt.Sprintf("X%d", varCount)
					varPool[d] = append(pool, v)
					args[p] = cq.V(v)
				}
			}
			q.Body = append(q.Body, cq.Atom{Pred: rel.Name, Args: args})
		}
		if !q.HasJoin() {
			continue
		}
		// Head: a non-empty subset of body variables.
		vars := q.BodyVars()
		if len(vars) == 0 {
			continue
		}
		nHead := g.intBetween(1, min(g.cfg.MaxHeadVars, len(vars)))
		perm := g.rng.Perm(len(vars))
		for i := 0; i < nHead; i++ {
			q.Head = append(q.Head, cq.V(vars[perm[i]]))
		}
		ty, err := cq.Validate(q, sch)
		if err != nil {
			continue
		}
		// Fairness filter 1: exclude queries over free relations only.
		allFree := true
		for _, a := range q.Body {
			if !sch.Relation(a.Pred).Free() {
				allFree = false
				break
			}
		}
		if allFree {
			continue
		}
		// Fairness filter 2: exclude non-answerable queries.
		queryable := sch.QueryableRelations(ty.SeedDomains())
		answerable := true
		for _, a := range q.Body {
			if !queryable[a.Pred] {
				answerable = false
				break
			}
		}
		if !answerable {
			continue
		}
		return q, true
	}
	return nil, false
}

// Instance populates every relation of the schema with random tuples drawn
// from the per-domain constant pools.
func (g *Generator) Instance(sch *schema.Schema) *storage.Database {
	db := storage.NewDatabase()
	for _, rel := range sch.Relations() {
		tab, err := db.Create(rel.Name, rel.Arity())
		if err != nil {
			panic(err) // fresh database: unreachable
		}
		n := g.intBetween(g.cfg.MinTuples, g.cfg.MaxTuples)
		for i := 0; i < n; i++ {
			row := make(storage.Row, rel.Arity())
			for p, d := range rel.Domains {
				row[p] = constValue(d, g.rng.Intn(g.domainSize(d)))
			}
			tab.Insert(row)
		}
	}
	return db
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
