package gen

import (
	"testing"

	"toorjah/internal/cq"
	"toorjah/internal/schema"
)

func TestSchemaShape(t *testing.T) {
	cfg := Paper()
	for seed := int64(0); seed < 20; seed++ {
		g := New(seed, cfg)
		sch := g.Schema()
		if n := sch.Len(); n < cfg.MinRelations || n > cfg.MaxRelations {
			t.Errorf("seed %d: %d relations", seed, n)
		}
		for _, rel := range sch.Relations() {
			if a := rel.Arity(); a < cfg.MinArity || a > cfg.MaxArity {
				t.Errorf("seed %d: relation %s arity %d", seed, rel.Name, a)
			}
		}
		// Relation r1 is always free (the guaranteed seed).
		if !sch.Relation("r1").Free() {
			t.Errorf("seed %d: r1 not free", seed)
		}
	}
}

func TestSchemaDeterministic(t *testing.T) {
	a := New(42, Paper()).Schema()
	b := New(42, Paper()).Schema()
	if a.String() != b.String() {
		t.Error("same seed, different schemas")
	}
	c := New(43, Paper()).Schema()
	if a.String() == c.String() {
		t.Error("different seeds produced identical schemas (suspicious)")
	}
}

func TestQueryFairnessFilters(t *testing.T) {
	cfg := Scaled()
	queries := 0
	for seed := int64(0); seed < 30; seed++ {
		g := New(seed, cfg)
		sch := g.Schema()
		q, ok := g.Query(sch, "q")
		if !ok {
			continue
		}
		queries++
		if n := len(q.Body); n < cfg.MinAtoms || n > cfg.MaxAtoms {
			t.Errorf("seed %d: %d atoms", seed, n)
		}
		if !q.HasJoin() {
			t.Errorf("seed %d: query without join: %s", seed, q)
		}
		ty, err := cq.Validate(q, sch)
		if err != nil {
			t.Errorf("seed %d: invalid query %s: %v", seed, q, err)
			continue
		}
		// Answerability (the filter's promise).
		queryable := sch.QueryableRelations(ty.SeedDomains())
		for _, a := range q.Body {
			if !queryable[a.Pred] {
				t.Errorf("seed %d: non-answerable query emitted: %s", seed, q)
			}
		}
		// Not all-free.
		allFree := true
		for _, a := range q.Body {
			if !sch.Relation(a.Pred).Free() {
				allFree = false
			}
		}
		if allFree {
			t.Errorf("seed %d: all-free query emitted: %s", seed, q)
		}
	}
	if queries < 20 {
		t.Errorf("only %d/30 seeds produced a query; generator too restrictive", queries)
	}
}

func TestInstanceRespectsSchema(t *testing.T) {
	g := New(7, Scaled())
	sch := g.Schema()
	db := g.Instance(sch)
	for _, rel := range sch.Relations() {
		tab := db.Table(rel.Name)
		if tab == nil {
			t.Fatalf("no table for %s", rel.Name)
		}
		if tab.Len() == 0 {
			t.Errorf("empty table %s", rel.Name)
		}
		if tab.Arity != rel.Arity() {
			t.Errorf("table %s arity %d, want %d", rel.Name, tab.Arity, rel.Arity())
		}
	}
}

func TestQueryConstantsOccurInInstancePools(t *testing.T) {
	// Constants generated for queries use the same pools as instances, so a
	// constant is at least plausible in the data.
	cfg := Scaled()
	cfg.ConstProb = 0.9
	g := New(3, cfg)
	sch := g.Schema()
	q, ok := g.Query(sch, "q")
	if !ok {
		t.Skip("no query for this seed")
	}
	for _, c := range q.Constants() {
		if len(c) == 0 {
			t.Errorf("empty constant in %s", q)
		}
	}
}

func TestPublicationWorkload(t *testing.T) {
	sch, db := Publication(1, SmallPublication())
	if sch.Len() != 6 {
		t.Fatalf("schema: %d relations", sch.Len())
	}
	for _, rel := range sch.Relations() {
		if db.Table(rel.Name).Len() == 0 {
			t.Errorf("empty table %s", rel.Name)
		}
	}
	// The query constants occur in the data.
	found := map[string]bool{}
	for _, r := range db.Table("conf").Rows() {
		found[r[1]] = true
		found[r[2]] = true
	}
	if !found["icde"] || !found["y2008"] {
		t.Error("conf must mention icde and y2008")
	}
	evals := map[string]bool{}
	for _, r := range db.Table("rev_icde").Rows() {
		evals[r[2]] = true
	}
	if !evals["acc"] || !evals["rej"] {
		t.Error("rev_icde must mention acc and rej")
	}
	// All three paper queries validate.
	for _, src := range PublicationQueries {
		q := cq.MustParse(src)
		if _, err := cq.Validate(q, sch); err != nil {
			t.Errorf("query %s invalid: %v", src, err)
		}
	}
}

func TestPublicationDeterministic(t *testing.T) {
	_, a := Publication(5, SmallPublication())
	_, b := Publication(5, SmallPublication())
	for _, name := range a.Names() {
		if a.Table(name).Len() != b.Table(name).Len() {
			t.Errorf("table %s differs across runs with the same seed", name)
		}
	}
}

func TestDomainSizeStable(t *testing.T) {
	g1 := New(1, Paper())
	g2 := New(99, Paper())
	d := schema.Domain("D3")
	if g1.domainSize(d) != g2.domainSize(d) {
		t.Error("domainSize must not depend on the generator seed")
	}
	cfg := Paper()
	if s := g1.domainSize(d); s < cfg.MinDomainValues || s > cfg.MaxDomainValues {
		t.Errorf("domainSize out of range: %d", s)
	}
}
