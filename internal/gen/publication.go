package gen

import (
	"fmt"
	"math/rand"

	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

// PublicationSchemaText is the fixed schema of the paper's first series of
// tests (Section V): published papers and their authors, conference
// publications, reviewers, submissions, and ICDE reviews.
const PublicationSchemaText = `
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
sub^oi(Paper, Person)
rev_icde^iio(Person, Paper, Eval)
`

// PublicationQueries are the three test queries of Fig. 6.
var PublicationQueries = []string{
	// q1: authors of publications in conferences where they were also
	// reviewers.
	"q1(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)",
	// q2: reviewers who rejected at ICDE a paper later accepted at a
	// conference listing the same reviewer.
	"q2(R) :- rev_icde(R, P, rej), conf(P, C, Y), rev(R, C, Y)",
	// q3: reviewers of ICDE 2008 who accepted at ICDE a submission authored
	// by an ICDE coauthor.
	"q3(R) :- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), rev(R, icde, y2008), conf(P, icde, Y)",
}

// PublicationConfig sizes the synthetic publication instance.
type PublicationConfig struct {
	// Tuples per relation (the paper used ~1000).
	Tuples int
	// Values per abstract domain (the paper used 100–1000 per domain).
	Persons, Papers, Confs, Years, Evals int
}

// DefaultPublication mirrors the paper's sizes scaled to laptop runtime:
// the Person × Paper product still dominates the naive cost of q2/q3.
func DefaultPublication() PublicationConfig {
	return PublicationConfig{Tuples: 1000, Persons: 400, Papers: 400, Confs: 100, Years: 20, Evals: 2}
}

// SmallPublication is a fast variant for unit tests.
func SmallPublication() PublicationConfig {
	return PublicationConfig{Tuples: 120, Persons: 40, Papers: 40, Confs: 10, Years: 6, Evals: 2}
}

// Publication builds the fixed schema and a random instance. Constants used
// by the queries (icde, y2008, acc, rej) are guaranteed to occur.
func Publication(seed int64, cfg PublicationConfig) (*schema.Schema, *storage.Database) {
	sch := schema.MustParse(PublicationSchemaText)
	rng := rand.New(rand.NewSource(seed))
	person := func() string { return fmt.Sprintf("person%d", rng.Intn(cfg.Persons)) }
	paper := func() string { return fmt.Sprintf("paper%d", rng.Intn(cfg.Papers)) }
	conf := func() string {
		if rng.Intn(8) == 0 {
			return "icde"
		}
		return fmt.Sprintf("conf%d", rng.Intn(cfg.Confs))
	}
	year := func() string {
		if rng.Intn(8) == 0 {
			return "y2008"
		}
		return fmt.Sprintf("y%d", 1990+rng.Intn(cfg.Years))
	}
	eval := func() string {
		if rng.Intn(2) == 0 {
			return "acc"
		}
		return "rej"
	}
	db := storage.NewDatabase()
	fill := func(name string, row func() storage.Row) {
		tab, err := db.Create(name, sch.Relation(name).Arity())
		if err != nil {
			panic(err)
		}
		for i := 0; i < cfg.Tuples; i++ {
			tab.Insert(row())
		}
	}
	fill("pub1", func() storage.Row { return storage.Row{paper(), person()} })
	fill("pub2", func() storage.Row { return storage.Row{paper(), person()} })
	fill("conf", func() storage.Row { return storage.Row{paper(), conf(), year()} })
	fill("rev", func() storage.Row { return storage.Row{person(), conf(), year()} })
	fill("sub", func() storage.Row { return storage.Row{paper(), person()} })
	fill("rev_icde", func() storage.Row { return storage.Row{person(), paper(), eval()} })
	return sch, db
}
