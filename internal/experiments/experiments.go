// Package experiments implements the reproduction of the paper's
// experimental evaluation (Section V): Fig. 6 (per-relation accesses and
// extracted rows for q1–q3 over the publication schema, naive vs
// optimized), Fig. 10 (aggregate d-graph and savings statistics over random
// workloads) and Fig. 11 (average execution time by query size under a
// simulated per-access latency). The cmd/experiments binary and the
// module's benchmarks are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/exec"
	"toorjah/internal/gen"
	"toorjah/internal/plan"
	"toorjah/internal/source"
	"toorjah/internal/stats"
)

// Fig6Row is one relation's measurements for one query.
type Fig6Row struct {
	Relation                   string
	NaiveAccesses, OptAccesses int
	NaiveRows, OptRows         int
	// Relevant is false when the optimization excluded the relation; the
	// Opt columns are then meaningless (the paper leaves them blank).
	Relevant bool
}

// Fig6Result is the outcome of one query of the first test series.
type Fig6Result struct {
	Query   string
	Rows    []Fig6Row
	Answers int
	// AnswersAgree records that naive and optimized returned identical
	// answer sets (a hard invariant, checked on every run).
	AnswersAgree bool
}

// RunFig6 executes q1–q3 of the paper over a synthetic publication
// instance and returns per-relation accounting.
func RunFig6(ctx context.Context, seed int64, tuples int) ([]Fig6Result, error) {
	cfg := gen.DefaultPublication()
	cfg.Tuples = tuples
	sch, db := gen.Publication(seed, cfg)
	reg, err := source.FromDatabase(sch, db, 0)
	if err != nil {
		return nil, err
	}
	var out []Fig6Result
	for _, qs := range gen.PublicationQueries {
		q, err := cq.Parse(qs)
		if err != nil {
			return nil, err
		}
		p, err := core.Prepare(sch, q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", qs, err)
		}
		naive, err := exec.Naive(ctx, sch, reg, p.Query, p.Typing)
		if err != nil {
			return nil, err
		}
		fast, err := exec.FastFailing(ctx, p.Plan, reg)
		if err != nil {
			return nil, err
		}
		relevant := make(map[string]bool)
		for _, name := range p.Opt.RelevantRelations() {
			relevant[name] = true
		}
		res := Fig6Result{
			Query:        qs,
			Answers:      fast.Answers.Len(),
			AnswersAgree: sameAnswers(naive, fast),
		}
		for _, rel := range sch.Relations() {
			row := Fig6Row{
				Relation:      rel.Name,
				NaiveAccesses: naive.Stats[rel.Name].Accesses,
				NaiveRows:     naive.Stats[rel.Name].Tuples,
				OptAccesses:   fast.Stats[rel.Name].Accesses,
				OptRows:       fast.Stats[rel.Name].Tuples,
				Relevant:      relevant[rel.Name],
			}
			res.Rows = append(res.Rows, row)
		}
		out = append(out, res)
	}
	return out, nil
}

func sameAnswers(a, b *exec.Result) bool {
	sa, sb := a.AnswerSet(), b.AnswerSet()
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}

// Fig6 renders the first test series as the paper's table layout.
func Fig6(ctx context.Context, w io.Writer, seed int64, tuples int) error {
	results, err := RunFig6(ctx, seed, tuples)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 6 — publication schema, %d tuples/relation, seed %d\n", tuples, seed)
	for _, res := range results {
		fmt.Fprintf(w, "\n%s   (answers: %d, naive==optimized: %v)\n", res.Query, res.Answers, res.AnswersAgree)
		var tb stats.Table
		tb.Header("relation", "naive acc.", "opt. acc.", "naive rows", "opt. rows")
		for _, r := range res.Rows {
			opta, optr := "", ""
			if r.Relevant {
				opta, optr = fmt.Sprint(r.OptAccesses), fmt.Sprint(r.OptRows)
			}
			tb.Row(r.Relation, fmt.Sprint(r.NaiveAccesses), opta, fmt.Sprint(r.NaiveRows), optr)
		}
		fmt.Fprint(w, tb.String())
	}
	return nil
}

// Fig10Stats aggregates the random-workload experiment.
type Fig10Stats struct {
	Queries                    int
	Arcs, Deleted, Strong      stats.Series
	Saved                      stats.Series // fraction of naive accesses avoided
	NaiveAccesses, OptAccesses stats.Series
	// NonConnection counts queries outside the connection-query class of
	// the earlier relevance literature; the paper reports ~70% of its
	// synthetic queries are not connection queries (Section VI).
	NonConnection int
	// Orderable counts queries executable without recursion by some atom
	// ordering; the rest are the queries that genuinely need the paper's
	// recursive plans.
	Orderable int
}

// RunFig10 generates random schemata and queries with the published
// parameter ranges, measures the d-graph statistics and — on a random
// instance per schema — the access savings of the optimized plan.
func RunFig10(ctx context.Context, seed int64, nSchemas, nQueries int, cfg gen.Config) (*Fig10Stats, error) {
	out := &Fig10Stats{}
	for si := 0; si < nSchemas; si++ {
		g := gen.New(seed+int64(si)*1000, cfg)
		sch := g.Schema()
		db := g.Instance(sch)
		reg, err := source.FromDatabase(sch, db, 0)
		if err != nil {
			return nil, err
		}
		for qi := 0; qi < nQueries; qi++ {
			q, ok := g.Query(sch, fmt.Sprintf("q%d", qi))
			if !ok {
				continue
			}
			p, err := core.Prepare(sch, q)
			if err != nil || !p.Answerable() {
				continue
			}
			out.Queries++
			nStrong, nDeleted := p.Opt.Solution.Counts()
			out.Arcs.Add(float64(len(p.Graph.Arcs)))
			out.Deleted.Add(float64(nDeleted))
			out.Strong.Add(float64(nStrong))
			if !cq.IsConnectionQuery(q, sch) {
				out.NonConnection++
			}
			if _, ok := plan.Orderable(q, sch); ok {
				out.Orderable++
			}

			naive, err := exec.Naive(ctx, sch, reg, p.Query, p.Typing)
			if err != nil {
				return nil, err
			}
			fast, err := exec.FastFailing(ctx, p.Plan, reg)
			if err != nil {
				return nil, err
			}
			if !sameAnswers(naive, fast) {
				return nil, fmt.Errorf("schema %d query %q: naive and optimized disagree", si, q)
			}
			na, oa := naive.TotalAccesses(), fast.TotalAccesses()
			out.NaiveAccesses.Add(float64(na))
			out.OptAccesses.Add(float64(oa))
			if na > 0 {
				out.Saved.Add(1 - float64(oa)/float64(na))
			}
		}
	}
	return out, nil
}

// Fig10 renders the aggregate table in the paper's layout.
func Fig10(ctx context.Context, w io.Writer, seed int64, nSchemas, nQueries int) error {
	st, err := RunFig10(ctx, seed, nSchemas, nQueries, gen.Fig10())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 10 — %d random queries over %d schemata (seed %d)\n",
		st.Queries, nSchemas, seed)
	var tb stats.Table
	tb.Header("", "arcs", "deleted arcs", "strong arcs", "saved accesses")
	tb.Row("min",
		fmt.Sprintf("%.0f", st.Arcs.Min()),
		fmt.Sprintf("%.0f", st.Deleted.Min()),
		fmt.Sprintf("%.0f", st.Strong.Min()),
		stats.Pct(st.Saved.Min()))
	tb.Row("max",
		fmt.Sprintf("%.0f", st.Arcs.Max()),
		fmt.Sprintf("%.0f", st.Deleted.Max()),
		fmt.Sprintf("%.0f", st.Strong.Max()),
		stats.Pct(st.Saved.Max()))
	tb.Row("avg",
		fmt.Sprintf("%.2f", st.Arcs.Avg()),
		fmt.Sprintf("%.2f", st.Deleted.Avg()),
		fmt.Sprintf("%.2f", st.Strong.Avg()),
		stats.Pct(st.Saved.Avg()))
	fmt.Fprint(w, tb.String())
	fmt.Fprintf(w, "accesses: naive avg %.1f, optimized avg %.1f\n",
		st.NaiveAccesses.Avg(), st.OptAccesses.Avg())
	fmt.Fprintf(w, "not connection queries: %s (paper: ~70%%); need recursion (not orderable): %s\n",
		stats.Pct(float64(st.NonConnection)/float64(st.Queries)),
		stats.Pct(1-float64(st.Orderable)/float64(st.Queries)))
	return nil
}

// Fig11Bucket is the measurement for one query size.
type Fig11Bucket struct {
	Atoms              int
	Queries            int
	NaiveTime, OptTime time.Duration
}

// RunFig11 reproduces the execution-time experiment: random queries grouped
// by atom count, timed naive vs optimized, with a simulated per-access
// latency. The time of a run is its measured in-memory wall time plus
// accesses × latency — the sequential remote-source model of the paper,
// where per-access cost dominates.
func RunFig11(ctx context.Context, seed int64, nSchemas, nQueries int, latency time.Duration, cfg gen.Config) ([]Fig11Bucket, error) {
	type acc struct {
		n          int
		naive, opt time.Duration
	}
	buckets := make(map[int]*acc)
	for si := 0; si < nSchemas; si++ {
		g := gen.New(seed+int64(si)*1000, cfg)
		sch := g.Schema()
		db := g.Instance(sch)
		reg, err := source.FromDatabase(sch, db, 0)
		if err != nil {
			return nil, err
		}
		for qi := 0; qi < nQueries; qi++ {
			q, ok := g.Query(sch, fmt.Sprintf("q%d", qi))
			if !ok {
				continue
			}
			p, err := core.PrepareOpts(sch, q, core.Options{SkipMinimize: true})
			if err != nil || !p.Answerable() {
				continue
			}
			naive, err := exec.Naive(ctx, sch, reg, p.Query, p.Typing)
			if err != nil {
				return nil, err
			}
			fast, err := exec.FastFailing(ctx, p.Plan, reg)
			if err != nil {
				return nil, err
			}
			b := buckets[len(q.Body)]
			if b == nil {
				b = &acc{}
				buckets[len(q.Body)] = b
			}
			b.n++
			b.naive += naive.Elapsed + time.Duration(naive.TotalAccesses())*latency
			b.opt += fast.Elapsed + time.Duration(fast.TotalAccesses())*latency
		}
	}
	var out []Fig11Bucket
	for atoms := cfg.MinAtoms; atoms <= cfg.MaxAtoms; atoms++ {
		b := buckets[atoms]
		if b == nil || b.n == 0 {
			continue
		}
		out = append(out, Fig11Bucket{
			Atoms:     atoms,
			Queries:   b.n,
			NaiveTime: b.naive / time.Duration(b.n),
			OptTime:   b.opt / time.Duration(b.n),
		})
	}
	return out, nil
}

// Fig11 renders the execution-time table in the paper's layout.
func Fig11(ctx context.Context, w io.Writer, seed int64, nSchemas, nQueries, latencyUS int) error {
	latency := time.Duration(latencyUS) * time.Microsecond
	rows, err := RunFig11(ctx, seed, nSchemas, nQueries, latency, gen.Fig10())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 11 — average execution times, %v per access (seed %d)\n", latency, seed)
	var tb stats.Table
	tb.Header("atoms", "queries", "naive", "opt.", "speedup")
	for _, r := range rows {
		speedup := "-"
		if r.OptTime > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(r.NaiveTime)/float64(r.OptTime))
		}
		tb.Row(fmt.Sprint(r.Atoms), fmt.Sprint(r.Queries),
			r.NaiveTime.Round(time.Microsecond).String(),
			r.OptTime.Round(time.Microsecond).String(), speedup)
	}
	fmt.Fprint(w, tb.String())
	return nil
}
