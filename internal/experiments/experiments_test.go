package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"toorjah/internal/gen"
)

// TestFig6ShapeInvariants checks the reproduction targets of Fig. 6 on a
// small instance: answers agree, irrelevant relations (Figs. 7–9) have
// blank optimized columns, and the optimized plan never exceeds the naive
// access count on any relation it shares with it.
func TestFig6ShapeInvariants(t *testing.T) {
	results, err := RunFig6(context.Background(), 3, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("queries = %d", len(results))
	}
	irrelevant := map[int][]string{
		0: {"pub2", "sub", "rev_icde"}, // q1, Fig. 7
		1: {"pub1", "pub2", "sub"},     // q2, Fig. 8
		2: {"pub2"},                    // q3, Fig. 9
	}
	for qi, res := range results {
		if !res.AnswersAgree {
			t.Errorf("q%d: naive and optimized disagree", qi+1)
		}
		byName := map[string]Fig6Row{}
		for _, r := range res.Rows {
			byName[r.Relation] = r
		}
		for _, rel := range irrelevant[qi] {
			row := byName[rel]
			if row.Relevant {
				t.Errorf("q%d: %s should be irrelevant", qi+1, rel)
			}
			if row.OptAccesses != 0 {
				t.Errorf("q%d: irrelevant %s accessed %d times", qi+1, rel, row.OptAccesses)
			}
		}
		for _, r := range res.Rows {
			if r.Relevant && r.OptAccesses > r.NaiveAccesses {
				t.Errorf("q%d: %s optimized %d > naive %d accesses",
					qi+1, r.Relation, r.OptAccesses, r.NaiveAccesses)
			}
		}
		// The cartesian blow-up of rev_icde under the naive plan.
		ri := byName["rev_icde"]
		if ri.NaiveAccesses < 1000 {
			t.Errorf("q%d: rev_icde naive accesses = %d; expected a cross-product blow-up", qi+1, ri.NaiveAccesses)
		}
	}
}

func TestFig6Rendering(t *testing.T) {
	var sb strings.Builder
	if err := Fig6(context.Background(), &sb, 3, 120); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"q1(R)", "q2(R)", "q3(R)", "rev_icde", "naive acc."} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q", want)
		}
	}
}

func TestFig10ShapeInvariants(t *testing.T) {
	st, err := RunFig10(context.Background(), 1, 3, 8, gen.Fig10())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries < 10 {
		t.Fatalf("only %d queries ran", st.Queries)
	}
	if st.Saved.Avg() < 0.4 {
		t.Errorf("avg saved accesses %.1f%%; the paper reports 81%% — expected a large saving",
			100*st.Saved.Avg())
	}
	if st.Strong.Avg() <= 0 {
		t.Error("no strong arcs found on average")
	}
	if st.Deleted.Avg() <= 0 {
		t.Error("no deleted arcs found on average")
	}
	if st.Arcs.Min() < 0 || st.Arcs.Max() < st.Arcs.Avg() {
		t.Error("arc series inconsistent")
	}
	if st.OptAccesses.Avg() > st.NaiveAccesses.Avg() {
		t.Errorf("optimized avg accesses %.1f > naive %.1f", st.OptAccesses.Avg(), st.NaiveAccesses.Avg())
	}
}

func TestFig10Rendering(t *testing.T) {
	var sb strings.Builder
	if err := Fig10(context.Background(), &sb, 1, 2, 4); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deleted arcs", "strong arcs", "saved accesses", "avg"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Fig10 output missing %q", want)
		}
	}
}

// TestFig11ShapeInvariants: the optimized strategy is faster than naive in
// every atom bucket under the per-access cost model.
func TestFig11ShapeInvariants(t *testing.T) {
	rows, err := RunFig11(context.Background(), 1, 3, 8, 200*time.Microsecond, gen.Fig10())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no buckets")
	}
	slower := 0
	for _, r := range rows {
		if r.OptTime > r.NaiveTime {
			slower++
		}
	}
	// Individual buckets can be noisy with few queries, but the optimized
	// strategy must win overall.
	if slower > len(rows)/2 {
		t.Errorf("optimized slower in %d/%d buckets: %+v", slower, len(rows), rows)
	}
}

func TestFig11Rendering(t *testing.T) {
	var sb strings.Builder
	if err := Fig11(context.Background(), &sb, 1, 2, 4, 100); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"atoms", "naive", "speedup"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Fig11 output missing %q", want)
		}
	}
}
