package datalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"toorjah/internal/cq"
	"toorjah/internal/sym"
)

// Tuple is one row of a relation, in the engine's stored form: interned
// symbol IDs. Constants intern on entry (query parse, rule heads); values
// materialize back into strings only at the result boundary via Strings.
type Tuple []sym.ID

// T builds a tuple from string values, interning them — the boundary
// constructor used by tests and by callers holding boundary data.
func T(vals ...string) Tuple { return Tuple(sym.InternAll(vals)) }

// Strings materializes the tuple back into its boundary form.
//
//toorjahvet:boundary (the one sanctioned ID→string exit of a tuple)
func (t Tuple) Strings() []string { return sym.Strs(t) }

// Key packs the tuple into a collision-free string for set membership.
func (t Tuple) Key() string { return sym.Key(t) }

// Relation is a set of equal-length tuples with lazily built hash indexes on
// position subsets. All keys — membership and index — are packed symbol
// IDs, 4 bytes per value.
type Relation struct {
	Name   string
	Arity  int
	tuples []Tuple
	seen   map[string]bool
	// indexes maps a position-set signature ("0,2") to packed value-key ->
	// tuple offsets. Indexes are built on first use and extended on insert.
	indexes map[string]map[string][]int
}

// NewRelation creates an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, seen: make(map[string]bool)}
}

// Insert adds a tuple and reports whether it was new.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("relation %s: inserting arity-%d tuple into arity-%d relation", r.Name, len(t), r.Arity))
	}
	var kb [64]byte
	k := sym.AppendKey(kb[:0], t)
	if r.seen[string(k)] {
		return false
	}
	r.seen[string(k)] = true
	r.tuples = append(r.tuples, t)
	idx := len(r.tuples) - 1
	for sig, m := range r.indexes {
		key := projectKey(t, sigPositions(sig))
		m[key] = append(m[key], idx)
	}
	return true
}

// Contains reports membership of a tuple.
func (r *Relation) Contains(t Tuple) bool {
	var kb [64]byte
	return r.seen[string(sym.AppendKey(kb[:0], t))]
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the underlying tuple slice; callers must not modify it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Lookup returns the tuples whose values at the given positions equal vals.
// With no positions it returns all tuples. The lookup is backed by a hash
// index built on first use.
func (r *Relation) Lookup(positions []int, vals []sym.ID) []Tuple {
	if len(positions) == 0 {
		return r.tuples
	}
	sig := sigOf(positions)
	m, ok := r.indexes[sig]
	if !ok {
		m = make(map[string][]int)
		for i, t := range r.tuples {
			key := projectKey(t, positions)
			m[key] = append(m[key], i)
		}
		if r.indexes == nil {
			r.indexes = make(map[string]map[string][]int)
		}
		r.indexes[sig] = m
	}
	var kb [64]byte
	offs := m[string(sym.AppendKey(kb[:0], vals))]
	out := make([]Tuple, len(offs))
	for i, off := range offs {
		out[i] = r.tuples[off]
	}
	return out
}

// sigOf renders a position set as its index signature ("0,2") by integer
// append — it runs on every index build and extension, so no fmt round
// trip.
func sigOf(positions []int) string {
	var kb [32]byte
	b := kb[:0]
	for i, p := range positions {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(p), 10)
	}
	return string(b)
}

func sigPositions(sig string) []int {
	parts := strings.Split(sig, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		fmt.Sscan(p, &out[i])
	}
	return out
}

func projectKey(t Tuple, positions []int) string {
	var kb [64]byte
	out := kb[:0]
	for _, p := range positions {
		id := t[p]
		out = append(out, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return string(out)
}

// DB maps predicate names to relations.
type DB map[string]*Relation

// Get returns the relation, creating an empty one of the given arity when
// absent.
func (db DB) Get(name string, arity int) *Relation {
	r, ok := db[name]
	if !ok {
		r = NewRelation(name, arity)
		db[name] = r
	}
	return r
}

// Insert adds a tuple to the named relation, creating it when needed.
func (db DB) Insert(name string, t Tuple) bool { return db.Get(name, len(t)).Insert(t) }

// Clone returns a DB sharing no relation storage with the receiver.
func (db DB) Clone() DB {
	out := make(DB, len(db))
	for name, r := range db {
		nr := NewRelation(name, r.Arity)
		for _, t := range r.tuples {
			nr.Insert(t)
		}
		out[name] = nr
	}
	return out
}

// Summary renders relation names with cardinalities, sorted by name.
//
//toorjahvet:boundary (debug rendering, not an evaluation path)
func (db DB) Summary() string {
	names := make([]string, 0, len(db))
	for n := range db {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s:%d", n, db[n].Len())
	}
	return strings.Join(parts, " ")
}

// Eval computes the least fixpoint of the program over the extensional DB
// using stratified semi-naive evaluation, and returns a DB holding the IDB
// relations. The input DB is not modified.
func Eval(p *Program, edb DB) (DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	idb := make(DB)
	arity := make(map[string]int)
	for _, r := range p.Rules {
		arity[r.Head.Pred] = len(r.Head.Args)
	}
	lookup := func(name string) *Relation {
		if r, ok := idb[name]; ok {
			return r
		}
		if r, ok := edb[name]; ok {
			return r
		}
		return nil
	}
	for _, stratum := range strata {
		inStratum := make(map[string]bool, len(stratum))
		for _, pred := range stratum {
			inStratum[pred] = true
			idb.Get(pred, arity[pred])
		}
		var rules []*Rule
		for _, r := range p.Rules {
			if inStratum[r.Head.Pred] {
				rules = append(rules, r)
			}
		}
		if err := evalStratum(rules, inStratum, idb, lookup); err != nil {
			return nil, err
		}
	}
	return idb, nil
}

// evalStratum runs semi-naive evaluation for one stratum's rules.
func evalStratum(rules []*Rule, inStratum map[string]bool, idb DB, lookup func(string) *Relation) error {
	// Round 0: evaluate every rule over the full current database.
	delta := make(map[string]*Relation)
	for _, r := range rules {
		derived, err := evalRule(r, lookup, nil, -1)
		if err != nil {
			return err
		}
		for _, t := range derived {
			if idb[r.Head.Pred].Insert(t) {
				d, ok := delta[r.Head.Pred]
				if !ok {
					d = NewRelation(r.Head.Pred, len(t))
					delta[r.Head.Pred] = d
				}
				d.Insert(t)
			}
		}
	}
	// Subsequent rounds: for every rule and every body position whose
	// predicate changed, join the delta there with full relations elsewhere.
	for len(delta) > 0 {
		next := make(map[string]*Relation)
		for _, r := range rules {
			for i, a := range r.Body {
				d, ok := delta[a.Pred]
				if !ok || !inStratum[a.Pred] {
					continue
				}
				derived, err := evalRule(r, lookup, d, i)
				if err != nil {
					return err
				}
				for _, t := range derived {
					if idb[r.Head.Pred].Insert(t) {
						nd, ok := next[r.Head.Pred]
						if !ok {
							nd = NewRelation(r.Head.Pred, len(t))
							next[r.Head.Pred] = nd
						}
						nd.Insert(t)
					}
				}
			}
		}
		delta = next
	}
	return nil
}

// constIDs interns the constant terms of an atom once, so the join loops
// compare symbol IDs instead of strings; variable positions hold 0 (never
// a valid ID).
func constIDs(a cq.Atom) []sym.ID {
	out := make([]sym.ID, len(a.Args))
	for i, term := range a.Args {
		if !term.IsVar {
			out[i] = sym.Intern(term.Name)
		}
	}
	return out
}

// evalRule derives head tuples for one rule. When deltaPos >= 0, the body
// atom at that position ranges over deltaRel instead of its full relation
// (semi-naive differentiation). Negated atoms are checked last; safety
// guarantees they are ground by then. The whole join runs on symbol IDs:
// atom constants intern once up front, variable bindings are IDs.
func evalRule(r *Rule, lookup func(string) *Relation, deltaRel *Relation, deltaPos int) ([]Tuple, error) {
	var out []Tuple
	bind := make(map[string]sym.ID)
	// Order the body atoms: the delta atom first (it is typically smallest),
	// then greedily by number of bound variables.
	order := bodyOrder(r, deltaPos)
	bodyConst := make([][]sym.ID, len(r.Body))
	for i, a := range r.Body {
		bodyConst[i] = constIDs(a)
	}
	negConst := make([][]sym.ID, len(r.Negated))
	for i, a := range r.Negated {
		negConst[i] = constIDs(a)
	}
	headConst := constIDs(r.Head)
	var rec func(step int) error
	rec = func(step int) error {
		if step == len(order) {
			for ni, a := range r.Negated {
				rel := lookup(a.Pred)
				t, ok := groundAtom(a, negConst[ni], bind)
				if !ok {
					return fmt.Errorf("rule %s: negated atom %s not ground", r, a)
				}
				if rel != nil && rel.Contains(t) {
					return nil
				}
			}
			head := make(Tuple, len(r.Head.Args))
			for i, term := range r.Head.Args {
				if term.IsVar {
					head[i] = bind[term.Name]
				} else {
					head[i] = headConst[i]
				}
			}
			out = append(out, head)
			return nil
		}
		i := order[step]
		a := r.Body[i]
		cids := bodyConst[i]
		var rel *Relation
		if i == deltaPos {
			rel = deltaRel
		} else {
			rel = lookup(a.Pred)
		}
		if rel == nil {
			return fmt.Errorf("rule %s: unknown relation %s", r, a.Pred)
		}
		var positions []int
		var vals []sym.ID
		for p, term := range a.Args {
			if !term.IsVar {
				positions = append(positions, p)
				vals = append(vals, cids[p])
			} else if v, ok := bind[term.Name]; ok {
				positions = append(positions, p)
				vals = append(vals, v)
			}
		}
		for _, t := range rel.Lookup(positions, vals) {
			var added []string
			ok := true
			for p, term := range a.Args {
				if !term.IsVar {
					if t[p] != cids[p] {
						ok = false
						break
					}
					continue
				}
				if v, bound := bind[term.Name]; bound {
					if v != t[p] {
						ok = false
						break
					}
					continue
				}
				bind[term.Name] = t[p]
				added = append(added, term.Name)
			}
			if ok {
				if err := rec(step + 1); err != nil {
					return err
				}
			}
			for _, v := range added {
				delete(bind, v)
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// bodyOrder returns an evaluation order for the rule's body atoms: delta
// atom first, then greedily preferring atoms sharing the most variables with
// those already placed.
func bodyOrder(r *Rule, deltaPos int) []int {
	n := len(r.Body)
	order := make([]int, 0, n)
	placed := make(map[string]bool)
	used := make([]bool, n)
	place := func(i int) {
		order = append(order, i)
		used[i] = true
		for _, t := range r.Body[i].Args {
			if t.IsVar {
				placed[t.Name] = true
			}
		}
	}
	if deltaPos >= 0 {
		place(deltaPos)
	}
	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range r.Body[i].Args {
				if t.IsVar && placed[t.Name] {
					score++
				} else if !t.IsVar {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		place(best)
	}
	return order
}

// groundAtom instantiates an atom under a binding; ok is false when a
// variable is unbound. cids carries the atom's pre-interned constants.
func groundAtom(a cq.Atom, cids []sym.ID, bind map[string]sym.ID) (Tuple, bool) {
	t := make(Tuple, len(a.Args))
	for i, term := range a.Args {
		if !term.IsVar {
			t[i] = cids[i]
			continue
		}
		v, ok := bind[term.Name]
		if !ok {
			return nil, false
		}
		t[i] = v
	}
	return t, true
}

// EvalRuleWithDelta derives the head tuples of one rule over db, with the
// body atom at position deltaPos ranging over delta instead of its full
// relation. It is the incremental-join primitive of the pipelined executor:
// when new tuples arrive in one cache, only the joins involving them are
// recomputed. Pass deltaPos = -1 to evaluate against full relations.
func EvalRuleWithDelta(r *Rule, db DB, delta *Relation, deltaPos int) ([]Tuple, error) {
	lookup := func(name string) *Relation { return db[name] }
	return evalRule(r, lookup, delta, deltaPos)
}

// EvalQuery evaluates a single conjunctive query over a database and returns
// the answer relation (deduplicated head tuples). It wraps the query into a
// one-rule program.
func EvalQuery(q *cq.CQ, db DB) (*Relation, error) {
	p := &Program{}
	p.Add(&Rule{Head: cq.Atom{Pred: q.Name, Args: q.Head}, Body: q.Body, Negated: q.Negated})
	idb, err := Eval(p, db)
	if err != nil {
		return nil, err
	}
	return idb[q.Name], nil
}
