// Package datalog implements a generic Datalog engine with stratified safe
// negation and semi-naive least-fixpoint evaluation. It is the substrate on
// which the query plans of Calì & Martinenghi (ICDE 2008) are expressed: the
// planner compiles an optimized d-graph into a Datalog program over cache
// and domain predicates, and the paper's reference semantics for a plan is
// the usual least fixpoint of that program (Section IV).
//
// The engine is self-contained: programs are sets of rules over string
// tuples, extensional relations are supplied through a DB, and evaluation
// returns the intensional relations. Atoms reuse the term and atom types of
// package cq.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"toorjah/internal/cq"
)

// Rule is a Datalog rule: Head :- Body, not Negated.
type Rule struct {
	Head    cq.Atom
	Body    []cq.Atom
	Negated []cq.Atom
}

// String renders the rule in Datalog notation; facts render without ":-".
func (r *Rule) String() string {
	if len(r.Body) == 0 && len(r.Negated) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, 0, len(r.Body)+len(r.Negated))
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, a := range r.Negated {
		parts = append(parts, "not "+a.String())
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ")
}

// Validate checks range restriction (safety): every head variable and every
// variable of a negated atom must occur in a positive body atom; facts must
// be ground.
func (r *Rule) Validate() error {
	positive := make(map[string]bool)
	for _, a := range r.Body {
		for _, t := range a.Args {
			if t.IsVar {
				positive[t.Name] = true
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.IsVar && !positive[t.Name] {
			return fmt.Errorf("rule %s: unsafe head variable %s", r, t.Name)
		}
	}
	for _, a := range r.Negated {
		for _, t := range a.Args {
			if t.IsVar && !positive[t.Name] {
				return fmt.Errorf("rule %s: unsafe variable %s in negated atom", r, t.Name)
			}
		}
	}
	return nil
}

// Program is a set of Datalog rules. Predicates that appear in some rule
// head are intensional (IDB); all others are extensional (EDB) and must be
// provided by the evaluation DB.
type Program struct {
	Rules []*Rule
}

// Add appends a rule.
func (p *Program) Add(r *Rule) { p.Rules = append(p.Rules, r) }

// AddFact appends a ground fact head.
func (p *Program) AddFact(pred string, values ...string) {
	args := make([]cq.Term, len(values))
	for i, v := range values {
		args[i] = cq.C(v)
	}
	p.Add(&Rule{Head: cq.Atom{Pred: pred, Args: args}})
}

// IDB returns the sorted set of intensional predicate names.
func (p *Program) IDB() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EDB returns the sorted set of extensional predicate names: those used in
// rule bodies but never defined.
func (p *Program) EDB() []string {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	set := make(map[string]bool)
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if !idb[a.Pred] {
				set[a.Pred] = true
			}
		}
		for _, a := range r.Negated {
			if !idb[a.Pred] {
				set[a.Pred] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks the safety of every rule and consistent predicate arities
// across the program.
func (p *Program) Validate() error {
	arity := make(map[string]int)
	check := func(a cq.Atom, where string) error {
		if n, ok := arity[a.Pred]; ok && n != len(a.Args) {
			return fmt.Errorf("%s: predicate %s used with arities %d and %d", where, a.Pred, n, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
		if err := check(r.Head, r.String()); err != nil {
			return err
		}
		for _, a := range r.Body {
			if err := check(a, r.String()); err != nil {
				return err
			}
		}
		for _, a := range r.Negated {
			if err := check(a, r.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the program one rule per line.
func (p *Program) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// Stratify partitions the IDB predicates into strata such that positive
// dependencies stay within or below a stratum and negative dependencies go
// strictly below. It returns the predicates grouped by stratum, lowest
// first, or an error when a predicate depends negatively on itself through a
// cycle (the program is not stratifiable).
func (p *Program) Stratify() ([][]string, error) {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	stratum := make(map[string]int)
	for pred := range idb {
		stratum[pred] = 0
	}
	n := len(idb)
	for round := 0; ; round++ {
		if round > n+1 {
			return nil, fmt.Errorf("program is not stratifiable (recursion through negation)")
		}
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, a := range r.Body {
				if idb[a.Pred] && stratum[a.Pred] > stratum[h] {
					stratum[h] = stratum[a.Pred]
					changed = true
				}
			}
			for _, a := range r.Negated {
				if idb[a.Pred] && stratum[a.Pred]+1 > stratum[h] {
					stratum[h] = stratum[a.Pred] + 1
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	max := 0
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	out := make([][]string, max+1)
	preds := make([]string, 0, len(stratum))
	for pred := range stratum {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		s := stratum[pred]
		out[s] = append(out[s], pred)
	}
	return out, nil
}
