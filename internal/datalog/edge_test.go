package datalog

import (
	"fmt"
	"testing"

	"toorjah/internal/cq"
	"toorjah/internal/sym"
)

// TestEvalConstantInHead: rules may emit constants in head positions.
func TestEvalConstantInHead(t *testing.T) {
	p := program(t, "q(X, tag) :- r(X)")
	edb := DB{}
	edb.Insert("r", T("a"))
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if !idb["q"].Contains(T("a", "tag")) {
		t.Errorf("q = %v", idb["q"].Tuples())
	}
}

// TestEvalRepeatedHeadVariable: q(X, X) duplicates the binding.
func TestEvalRepeatedHeadVariable(t *testing.T) {
	p := program(t, "q(X, X) :- r(X)")
	edb := DB{}
	edb.Insert("r", T("a"))
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if !idb["q"].Contains(T("a", "a")) {
		t.Errorf("q = %v", idb["q"].Tuples())
	}
}

// TestEvalDeepRecursionIterative: a 3000-element chain closes without
// blowing the stack (the engine iterates, joins are shallow).
func TestEvalDeepRecursionIterative(t *testing.T) {
	p := program(t,
		"reach(Y) :- start(X), e(X, Y)",
		"reach(Y) :- reach(X), e(X, Y)",
	)
	edb := DB{}
	edb.Insert("start", T("n0"))
	const n = 3000
	for i := 0; i < n; i++ {
		edb.Insert("e", T(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)))
	}
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if got := idb["reach"].Len(); got != n {
		t.Errorf("reach = %d, want %d", got, n)
	}
}

// TestEvalMutualRecursion: even/odd over a successor chain.
func TestEvalMutualRecursion(t *testing.T) {
	p := program(t,
		"even(X) :- zero(X)",
		"odd(Y) :- even(X), succ(X, Y)",
		"even(Y) :- odd(X), succ(X, Y)",
	)
	edb := DB{}
	edb.Insert("zero", T("0"))
	for i := 0; i < 10; i++ {
		edb.Insert("succ", T(fmt.Sprint(i), fmt.Sprint(i+1)))
	}
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if !idb["even"].Contains(T("10")) || idb["even"].Contains(T("9")) {
		t.Errorf("even = %v", idb["even"].Tuples())
	}
	if !idb["odd"].Contains(T("9")) || idb["odd"].Contains(T("10")) {
		t.Errorf("odd = %v", idb["odd"].Tuples())
	}
}

// TestEvalEmptyEDBRelations: rules over empty relations derive nothing and
// do not error as long as the relations exist.
func TestEvalEmptyEDBRelations(t *testing.T) {
	p := program(t, "q(X) :- r(X, Y), s(Y)")
	edb := DB{}
	edb.Get("r", 2)
	edb.Get("s", 1)
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if idb["q"].Len() != 0 {
		t.Errorf("q = %v", idb["q"].Tuples())
	}
}

// TestEvalNegationOverIDBAndEDB mixes both in one negated stratum.
func TestEvalNegationOverIDBAndEDB(t *testing.T) {
	p := program(t,
		"good(X) :- all(X), not bad(X)",
		"bad(X) :- flagged(X)",
		"bad(X) :- all(X), not checked(X)",
	)
	edb := DB{}
	for _, v := range []string{"a", "b", "c"} {
		edb.Insert("all", T(v))
	}
	edb.Insert("flagged", T("a"))
	edb.Insert("checked", T("a"))
	edb.Insert("checked", T("b"))
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	// bad = {a (flagged), c (unchecked)}; good = {b}.
	if got := rows(idb["good"]); fmt.Sprint(got) != "[b]" {
		t.Errorf("good = %v", got)
	}
}

// TestEvalRuleWithDeltaMatchesFull: incremental evaluation over a delta plus
// previous full state covers exactly the new derivations.
func TestEvalRuleWithDeltaMatchesFull(t *testing.T) {
	r := rule(t, "q(X, Z) :- a(X, Y), b(Y, Z)")
	db := DB{}
	db.Insert("a", T("x1", "y1"))
	db.Insert("b", T("y1", "z1"))
	full1, err := EvalRuleWithDelta(r, db, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full1) != 1 {
		t.Fatalf("full1 = %v", full1)
	}
	// New b tuple arrives: the delta join must derive only the new pair.
	delta := NewRelation("b", 2)
	delta.Insert(T("y1", "z2"))
	db.Insert("b", T("y1", "z2"))
	inc, err := EvalRuleWithDelta(r, db, delta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != 1 || inc[0][1] != sym.Intern("z2") {
		t.Errorf("incremental = %v", inc)
	}
}

func TestEvalQueryHeadConstantsFilter(t *testing.T) {
	db := DB{}
	db.Insert("r", T("a", "x"))
	q := cq.MustParse("q(k, X) :- r(X, Y)")
	ans, err := EvalQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Contains(T("k", "a")) {
		t.Errorf("answers = %v", ans.Tuples())
	}
}
