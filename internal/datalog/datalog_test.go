package datalog

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"toorjah/internal/cq"
	"toorjah/internal/sym"
)

func rule(t *testing.T, src string) *Rule {
	t.Helper()
	q, err := cq.Parse(src)
	if err != nil {
		t.Fatalf("parse rule %q: %v", src, err)
	}
	return &Rule{Head: cq.Atom{Pred: q.Name, Args: q.Head}, Body: q.Body, Negated: q.Negated}
}

func program(t *testing.T, srcs ...string) *Program {
	t.Helper()
	p := &Program{}
	for _, s := range srcs {
		p.Add(rule(t, s))
	}
	return p
}

func rows(r *Relation) []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		out = append(out, strings.Join(t.Strings(), "/"))
	}
	sort.Strings(out)
	return out
}

func TestEvalTransitiveClosure(t *testing.T) {
	p := program(t,
		"tc(X, Y) :- e(X, Y)",
		"tc(X, Z) :- tc(X, Y), e(Y, Z)",
	)
	edb := DB{}
	edb.Insert("e", T("a", "b"))
	edb.Insert("e", T("b", "c"))
	edb.Insert("e", T("c", "d"))
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	got := rows(idb["tc"])
	want := []string{"a/b", "a/c", "a/d", "b/c", "b/d", "c/d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("tc = %v, want %v", got, want)
	}
}

func TestEvalCyclicClosure(t *testing.T) {
	p := program(t,
		"tc(X, Y) :- e(X, Y)",
		"tc(X, Z) :- tc(X, Y), tc(Y, Z)",
	)
	edb := DB{}
	edb.Insert("e", T("a", "b"))
	edb.Insert("e", T("b", "a"))
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	got := rows(idb["tc"])
	want := []string{"a/a", "a/b", "b/a", "b/b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("tc = %v, want %v", got, want)
	}
}

func TestEvalFactsAndConstants(t *testing.T) {
	p := program(t, "q(X) :- r(a, X)")
	p.AddFact("r", "a", "one")
	p.AddFact("r", "b", "two")
	idb, err := Eval(p, DB{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(idb["q"]); fmt.Sprint(got) != "[one]" {
		t.Errorf("q = %v", got)
	}
	// The fact relation is IDB here (defined by facts).
	if got := rows(idb["r"]); len(got) != 2 {
		t.Errorf("r = %v", got)
	}
}

func TestEvalNegationStratified(t *testing.T) {
	p := program(t,
		"reach(X) :- start(X)",
		"reach(Y) :- reach(X), e(X, Y)",
		"unreach(X) :- node(X), not reach(X)",
	)
	edb := DB{}
	edb.Insert("start", T("a"))
	edb.Insert("e", T("a", "b"))
	for _, n := range []string{"a", "b", "c"} {
		edb.Insert("node", T(n))
	}
	idb, err := Eval(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(idb["unreach"]); fmt.Sprint(got) != "[c]" {
		t.Errorf("unreach = %v", got)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	p := program(t,
		"p(X) :- r(X), not q(X)",
		"q(X) :- r(X), not p(X)",
	)
	if _, err := p.Stratify(); err == nil {
		t.Error("want stratification error")
	}
	if _, err := Eval(p, DB{}); err == nil {
		t.Error("Eval must reject unstratifiable programs")
	}
}

func TestStratifyLevels(t *testing.T) {
	p := program(t,
		"a(X) :- e(X)",
		"b(X) :- a(X)",
		"c(X) :- b(X), not a(X)",
	)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	level := make(map[string]int)
	for i, s := range strata {
		for _, pred := range s {
			level[pred] = i
		}
	}
	if !(level["a"] <= level["b"] && level["a"] < level["c"]) {
		t.Errorf("strata levels: %v", level)
	}
}

func TestRuleValidateUnsafe(t *testing.T) {
	r := &Rule{
		Head: cq.NewAtom("q", cq.V("X"), cq.V("Y")),
		Body: []cq.Atom{cq.NewAtom("r", cq.V("X"))},
	}
	if err := r.Validate(); err == nil {
		t.Error("unsafe head variable: want error")
	}
	r2 := rule(t, "q(X) :- r(X), not s(X, Y)")
	_ = r2
}

func TestProgramValidateArity(t *testing.T) {
	p := program(t, "q(X) :- r(X, Y)", "p(X) :- r(X)")
	if err := p.Validate(); err == nil {
		t.Error("inconsistent arity: want error")
	}
}

func TestIDBEDBSets(t *testing.T) {
	p := program(t,
		"q(X) :- r(X, Y), s(Y)",
		"s(X) :- t(X), not u(X)",
	)
	if got := strings.Join(p.IDB(), ","); got != "q,s" {
		t.Errorf("IDB = %s", got)
	}
	if got := strings.Join(p.EDB(), ","); got != "r,t,u" {
		t.Errorf("EDB = %s", got)
	}
}

func TestRelationLookupIndex(t *testing.T) {
	r := NewRelation("r", 3)
	r.Insert(T("a", "1", "x"))
	r.Insert(T("a", "2", "y"))
	r.Insert(T("b", "1", "z"))
	got := r.Lookup([]int{0}, T("a"))
	if len(got) != 2 {
		t.Errorf("Lookup(0=a) = %v", got)
	}
	got = r.Lookup([]int{0, 1}, T("a", "2"))
	if len(got) != 1 || got[0][2] != sym.Intern("y") {
		t.Errorf("Lookup(0=a,1=2) = %v", got)
	}
	// Index must see later inserts.
	r.Insert(T("a", "3", "w"))
	got = r.Lookup([]int{0}, T("a"))
	if len(got) != 3 {
		t.Errorf("after insert: Lookup(0=a) = %v", got)
	}
	// Duplicate insert is a no-op.
	if r.Insert(T("a", "3", "w")) {
		t.Error("duplicate insert returned true")
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestTupleKeyNoCollision(t *testing.T) {
	a := T("ab", "c")
	b := T("a", "bc")
	if a.Key() == b.Key() {
		t.Error("tuple keys collide")
	}
}

func TestDBCloneIndependence(t *testing.T) {
	db := DB{}
	db.Insert("r", T("a"))
	c := db.Clone()
	c.Insert("r", T("b"))
	if db["r"].Len() != 1 || c["r"].Len() != 2 {
		t.Error("Clone shares storage")
	}
}

func TestEvalQueryJoin(t *testing.T) {
	db := DB{}
	db.Insert("pub1", T("p1", "alice"))
	db.Insert("pub1", T("p2", "bob"))
	db.Insert("conf", T("p1", "icde", "2008"))
	db.Insert("rev", T("alice", "icde", "2008"))
	q := cq.MustParse("q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)")
	ans, err := EvalQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(ans); fmt.Sprint(got) != "[alice]" {
		t.Errorf("answers = %v", got)
	}
}

func TestEvalQueryWithNegation(t *testing.T) {
	db := DB{}
	db.Insert("r", T("a"))
	db.Insert("r", T("b"))
	db.Insert("s", T("b"))
	q := cq.MustParse("q(X) :- r(X), not s(X)")
	ans, err := EvalQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(ans); fmt.Sprint(got) != "[a]" {
		t.Errorf("answers = %v", got)
	}
}

func TestEvalUnknownRelation(t *testing.T) {
	p := program(t, "q(X) :- nosuch(X)")
	if _, err := Eval(p, DB{}); err == nil {
		t.Error("unknown EDB relation: want error")
	}
}

func TestEvalSelfJoinWithinAtom(t *testing.T) {
	db := DB{}
	db.Insert("e", T("a", "a"))
	db.Insert("e", T("a", "b"))
	q := cq.MustParse("q(X) :- e(X, X)")
	ans, err := EvalQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(ans); fmt.Sprint(got) != "[a]" {
		t.Errorf("answers = %v", got)
	}
}

// Property: semi-naive evaluation of transitive closure agrees with a
// hand-rolled Floyd-Warshall-style reachability on random small graphs.
func TestSemiNaiveAgreesWithReachabilityProperty(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 6
		adj := make([][]bool, n)
		reach := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			reach[i] = make([]bool, n)
		}
		edb := DB{}
		edb.Get("e", 2)
		for _, e := range edges {
			u := int(e>>8) % n
			v := int(e&0xff) % n
			adj[u][v] = true
			reach[u][v] = true
			edb.Insert("e", T(fmt.Sprint(u), fmt.Sprint(v)))
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		p := &Program{}
		p.Add(&Rule{Head: cq.NewAtom("tc", cq.V("X"), cq.V("Y")),
			Body: []cq.Atom{cq.NewAtom("e", cq.V("X"), cq.V("Y"))}})
		p.Add(&Rule{Head: cq.NewAtom("tc", cq.V("X"), cq.V("Z")),
			Body: []cq.Atom{cq.NewAtom("tc", cq.V("X"), cq.V("Y")), cq.NewAtom("e", cq.V("Y"), cq.V("Z"))}})
		idb, err := Eval(p, edb)
		if err != nil {
			return false
		}
		tc := idb["tc"]
		count := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] {
					count++
					if !tc.Contains(T(fmt.Sprint(i), fmt.Sprint(j))) {
						return false
					}
				}
			}
		}
		return tc.Len() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRuleStringFormats(t *testing.T) {
	r := rule(t, "q(X) :- r(X, Y), not s(Y)")
	if got := r.String(); got != "q(X) :- r(X, Y), not s(Y)" {
		t.Errorf("String = %q", got)
	}
	f := &Rule{Head: cq.NewAtom("r", cq.C("a"))}
	if got := f.String(); got != "r(a)." {
		t.Errorf("fact String = %q", got)
	}
}
