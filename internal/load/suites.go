package load

// Built-in suites over the default cluster's schema and data. Ground-truth
// expectations are left to FromGroundTruth — the runner computes them
// against the reference system before the clock starts — so the suites
// stay correct when the generated dataset changes shape.

func intp(n int) *int { return &n }

// skewedCompareQuery joins the fat big relation and the empty small one
// order-equivalently off the seeded keys; it lists big first, so the
// static tie-break probes big before discovering small is empty, while
// live sizes probe small first and fail the join at once.
const skewedCompareQuery = "q(B, C) :- big(X, B), small(X, C), seed(X)"

// builtinSuites maps -scenarios names to suites; anything else is a file.
var builtinSuites = map[string]*Suite{
	"smoke":    smokeSuite,
	"mixed":    mixedSuite,
	"adaptive": adaptiveSuite,
	"crash":    crashSuite,
}

// BuiltinSuite returns a named built-in suite (adaptive, crash, mixed,
// smoke).
func BuiltinSuite(name string) (*Suite, bool) {
	s, ok := builtinSuites[name]
	return s, ok
}

// BuiltinSuiteNames lists the built-in suite names.
func BuiltinSuiteNames() []string { return []string{"adaptive", "crash", "mixed", "smoke"} }

// smokeSuite is the CI suite: every scenario kind, no failure injection,
// tight budgets, finishes meaningfully inside ~20s.
var smokeSuite = &Suite{
	Name: "smoke",
	Scenarios: []Scenario{
		{
			Name: "point-conf", Kind: KindQuery, Weight: 4,
			Query:  "q(C, Y) :- conf(p1, C, Y)",
			Expect: Expect{FromGroundTruth: true},
		},
		{
			Name: "join-pub-conf", Kind: KindQuery, Weight: 2,
			Query:  "q(T, C) :- pub(P, T), conf(P, C, Y)",
			Expect: Expect{FromGroundTruth: true},
		},
		{
			Name: "fat-ucq", Kind: KindQuery, Weight: 2,
			Query: "q(T) :- pub(p1, T)\n" +
				"q(T) :- pub(p2, T)\n" +
				"q(T) :- pub(p3, T)",
			Expect: Expect{FromGroundTruth: true},
		},
		{
			Name: "storm-ingest", Kind: KindIngest, Weight: 2,
			Relation: "storm", Rows: 50,
		},
		{
			Name: "adaptive-skew", Kind: KindCompare,
			Query:  skewedCompareQuery,
			Expect: Expect{AdaptiveNoWorse: true},
		},
	},
}

// mixedSuite is the full production mix: the smoke scenarios plus peer
// outages, with error budgets widened on the federated scenarios to absorb
// the injected failures.
var mixedSuite = &Suite{
	Name: "mixed",
	Scenarios: []Scenario{
		{
			Name: "point-conf", Kind: KindQuery, Weight: 5,
			Query:  "q(C, Y) :- conf(p1, C, Y)",
			Expect: Expect{FromGroundTruth: true, ErrorBudget: 0.10},
		},
		{
			Name: "point-conf-cold", Kind: KindQuery, Weight: 2,
			Query:  "q(C, Y) :- conf(p7, C, Y)",
			Expect: Expect{FromGroundTruth: true, ErrorBudget: 0.10},
		},
		{
			Name: "join-pub-conf", Kind: KindQuery, Weight: 3,
			Query:  "q(T, C) :- pub(P, T), conf(P, C, Y)",
			Expect: Expect{FromGroundTruth: true, ErrorBudget: 0.10},
		},
		{
			Name: "fat-ucq", Kind: KindQuery, Weight: 3,
			Query: "q(T) :- pub(p1, T)\n" +
				"q(T) :- pub(p2, T)\n" +
				"q(T) :- pub(p3, T)\n" +
				"q(T) :- pub(p4, T)",
			Expect: Expect{FromGroundTruth: true},
		},
		{
			Name: "limited-scan", Kind: KindQuery, Weight: 1,
			Query: "q(P, T) :- pub(P, T)", Limit: 10,
			Expect: Expect{Answers: intp(10), MaxTruncatedFrac: 1},
		},
		{
			Name: "storm-ingest", Kind: KindIngest, Weight: 3,
			Relation: "storm", Rows: 100,
		},
		{
			Name: "peer-flap", Kind: KindFailure, Weight: 1,
			Node: 1, OutageMS: 250,
		},
		{
			Name: "adaptive-skew", Kind: KindCompare,
			Query:  skewedCompareQuery,
			Expect: Expect{AdaptiveNoWorse: true},
		},
	},
}

// crashSuite is the durability acceptance run: three crash-recovery
// equivalence rounds against real durable child processes. The kill-9
// rounds must hold under every fsync policy (a SIGKILL never empties the
// page cache — fsync buys power-loss durability, not process-death
// durability); the torn-write round arms the WAL failpoint so the victim
// dies mid-record and recovery must truncate the torn tail.
var crashSuite = &Suite{
	Name: "crash",
	Scenarios: []Scenario{
		{
			Name: "kill9-mid-storm", Kind: KindCrash,
			Batches: 60, Fsync: "always",
		},
		{
			Name: "kill9-fsync-never", Kind: KindCrash,
			Batches: 60, Fsync: "never",
		},
		{
			Name: "torn-write", Kind: KindCrash,
			Batches: 60, Fsync: "never", Failpoint: "crash-after-bytes=2500",
		},
	},
}

// adaptiveSuite isolates the planner-feedback acceptance check.
var adaptiveSuite = &Suite{
	Name: "adaptive",
	Scenarios: []Scenario{
		{
			Name: "adaptive-skew", Kind: KindCompare,
			Query:  skewedCompareQuery,
			Expect: Expect{AdaptiveNoWorse: true},
		},
	},
}
