package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"toorjah"
	"toorjah/internal/schema"
	"toorjah/internal/service"
	"toorjah/internal/storage"
	"toorjah/internal/wal"
)

// The crash harness proves the durability contract end to end: it re-execs
// this very binary as a real durable toorjahd child, storms it with unique
// insert batches over HTTP, SIGKILLs it at a random point (optionally
// mid-write, via the WAL failpoint), restarts it from the same data
// directory, and scores the recovered state against a never-crashed twin
// fed exactly the batches that survived:
//
//   - every acknowledged batch is fully present after the restart (an ack
//     means the WAL record was written before the HTTP response),
//   - no batch is partially applied (records are atomic: a torn final
//     record is truncated whole),
//   - answers, row counts and epochs equal the twin's.
//
// Child-process plumbing rides on environment variables so the same
// mechanism works from `go test` (TestMain calls MaybeRunCrashChild) and
// from cmd/loadgen (main calls it first thing).

// Environment variables steering a re-exec'd crash child.
const (
	crashChildEnv    = "TOORJAH_CRASH_CHILD"
	crashDirEnv      = "TOORJAH_CRASH_DIR"
	crashSchemaEnv   = "TOORJAH_CRASH_SCHEMA"
	crashPortFileEnv = "TOORJAH_CRASH_PORTFILE"
	crashFsyncEnv    = "TOORJAH_CRASH_FSYNC"
)

// crashSchemaText is the child's schema: one free relation to storm.
const crashSchemaText = "storm^oo(K, V)"

// crashScanQuery reads the whole storm relation back — the survivor census.
const crashScanQuery = "q(K, V) :- storm(K, V)"

// crashSegmentBytes keeps child WAL segments small, so a storm spans
// several sealed segments and recovery replays across rotation boundaries.
const crashSegmentBytes = 8 << 10

// MaybeRunCrashChild turns the current process into a durable crash-test
// node when the TOORJAH_CRASH_CHILD environment variable is set, and never
// returns in that case. Call it before anything else in main (and in
// TestMain), so RunCrash can re-exec the running binary as its victim.
func MaybeRunCrashChild() {
	if os.Getenv(crashChildEnv) == "" {
		return
	}
	if err := runCrashChild(); err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(2)
	}
	os.Exit(0)
}

// runCrashChild boots the durable node described by the environment: WAL
// recovery, the real service handler, a loopback listener whose address is
// published atomically through the port file. It serves until killed.
func runCrashChild() error {
	dir := os.Getenv(crashDirEnv)
	portFile := os.Getenv(crashPortFileEnv)
	schemaText := os.Getenv(crashSchemaEnv)
	if dir == "" || portFile == "" || schemaText == "" {
		return fmt.Errorf("missing TOORJAH_CRASH_{DIR,PORTFILE,SCHEMA}")
	}
	sch, err := schema.Parse(schemaText)
	if err != nil {
		return err
	}
	db, l, err := service.OpenDurable(sch, "", wal.Options{
		Dir:             dir,
		Fsync:           os.Getenv(crashFsyncEnv),
		SegmentMaxBytes: crashSegmentBytes,
		Logger:          slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError})),
	})
	if err != nil {
		return err
	}
	sys := toorjah.NewSystem(sch, toorjah.WithCache(toorjah.CacheOptions{}))
	if err := sys.BindDatabase(db); err != nil {
		return err
	}
	service.WireWAL(sys, l)
	srv := service.New(sys, toorjah.Options{}, service.WithWAL(l))
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Publish the port atomically: the parent polls for the file and must
	// never read a half-written address.
	tmp := portFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(lis.Addr().String()), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, portFile); err != nil {
		return err
	}
	return http.Serve(lis, srv.Handler())
}

// CrashConfig shapes one RunCrash round.
type CrashConfig struct {
	// Batches is how many unique insert batches the storm sends at most
	// before the plug is pulled (default 80).
	Batches int
	// RowsPerBatch is the rows per ingest batch (default 5).
	RowsPerBatch int
	// Fsync is the victim's WAL flush policy (default wal.FsyncAlways).
	// Under SIGKILL every policy must preserve acknowledged batches — the
	// page cache survives process death — so the equivalence holds even
	// at FsyncNever; the policies differ only against power loss.
	Fsync string
	// Failpoint, when set, is armed in the storm child's environment as
	// TOORJAH_WAL_FAILPOINT (e.g. "crash-after-bytes=2500"), making the
	// child kill itself mid-write and leave a torn record for recovery to
	// truncate.
	Failpoint string
	// Seed drives the kill point (default 1).
	Seed int64
}

// CrashResult is one crash-equivalence round's account.
type CrashResult struct {
	// Acked counts batches the victim acknowledged with HTTP 200 before
	// dying; Survived counts batches fully present after the restart
	// (UnackedSurvived of them were never acknowledged — the kill raced
	// the response, which is legal).
	Acked           int      `json:"acked"`
	Survived        int      `json:"survived"`
	UnackedSurvived int      `json:"unacked_survived"`
	Epoch           uint64   `json:"epoch"`
	TwinEpoch       uint64   `json:"twin_epoch"`
	AnswerHash      string   `json:"answer_hash"`
	TwinHash        string   `json:"twin_hash"`
	RecordsReplayed int      `json:"records_replayed"`
	Violations      []string `json:"violations,omitempty"`
}

// Equivalent reports whether the round found no durability violations.
func (r *CrashResult) Equivalent() bool { return len(r.Violations) == 0 }

// RunCrash executes one full crash-recovery equivalence round in a fresh
// temporary data directory: storm a durable child, kill it, read the
// recovered state back (in-process replay AND a restarted child over
// HTTP), and diff against the never-crashed twin.
func RunCrash(ctx context.Context, cfg CrashConfig) (*CrashResult, error) {
	if cfg.Batches <= 0 {
		cfg.Batches = 80
	}
	if cfg.RowsPerBatch <= 0 {
		cfg.RowsPerBatch = 5
	}
	if cfg.Fsync == "" {
		cfg.Fsync = wal.FsyncAlways
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	dir, err := os.MkdirTemp("", "toorjah-crash-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rng := rand.New(rand.NewSource(cfg.Seed))
	killAfter := 1 + rng.Intn(cfg.Batches) // acks before the plug is pulled

	// Phase 1: storm the victim and pull the plug.
	victim, err := startCrashChild(ctx, dir, cfg.Fsync, cfg.Failpoint)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	res := &CrashResult{}
	acked := make([]bool, cfg.Batches)
	for i := 0; i < cfg.Batches; i++ {
		if err := postCrashBatch(ctx, client, victim.base, i, cfg.RowsPerBatch); err != nil {
			break // the failpoint (or a racing kill) took the child down mid-batch
		}
		acked[i] = true
		res.Acked++
		// With a failpoint armed the child picks its own moment to die
		// (mid-write); without one, the harness pulls the plug after a
		// random number of acknowledged batches.
		if cfg.Failpoint == "" && res.Acked == killAfter {
			break
		}
	}
	victim.kill()

	// Phase 2: replay the directory in-process — the recovered ground
	// state the restarted child must serve.
	l, rec, err := wal.Open(wal.Options{
		Dir:    dir,
		Fsync:  wal.FsyncNever,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return nil, fmt.Errorf("load: crash recovery open: %w", err)
	}
	res.RecordsReplayed = l.Stats().Recovery.RecordsReplayed
	if err := l.Close(); err != nil {
		return nil, err
	}
	// A restarted node with nothing recovered serves a fresh empty table
	// at epoch 1 — the same observable state as an untouched twin.
	res.Epoch = 1
	perBatch := make(map[int]int)
	var recRows [][]string
	if st := rec.Relations["storm"]; st != nil {
		res.Epoch = st.Epoch
		for _, r := range st.Rows {
			recRows = append(recRows, []string(r))
			var b, j int
			if _, err := fmt.Sscanf(r[0], "c%d_r%d", &b, &j); err == nil {
				perBatch[b]++
			}
		}
	}
	res.AnswerHash = HashAnswers(recRows)

	// Score durability: acked ⊆ survived, and batches are all-or-nothing.
	for i := 0; i < cfg.Batches; i++ {
		switch n := perBatch[i]; {
		case n == cfg.RowsPerBatch:
			res.Survived++
			if !acked[i] {
				res.UnackedSurvived++
			}
		case n > 0:
			res.Violations = append(res.Violations,
				fmt.Sprintf("batch %d partially applied: %d/%d rows recovered", i, n, cfg.RowsPerBatch))
		case acked[i]:
			res.Violations = append(res.Violations,
				fmt.Sprintf("acknowledged batch %d lost: 0/%d rows recovered", i, cfg.RowsPerBatch))
		}
	}

	// The never-crashed twin: a fresh store fed exactly the surviving
	// batches, in order. Row counts, epochs and the answer set must match.
	twinDB := storage.NewDatabase()
	twin, err := twinDB.Create("storm", 2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Batches; i++ {
		if perBatch[i] == cfg.RowsPerBatch {
			twin.InsertAll(crashBatchRows(i, cfg.RowsPerBatch))
		}
	}
	snap := twin.Snapshot()
	res.TwinEpoch = snap.Epoch()
	twinRows := make([][]string, 0, snap.Len())
	for _, r := range snap.Rows() {
		twinRows = append(twinRows, []string(r))
	}
	res.TwinHash = HashAnswers(twinRows)
	if res.TwinHash != res.AnswerHash {
		res.Violations = append(res.Violations,
			fmt.Sprintf("recovered answer set %s differs from twin %s", res.AnswerHash, res.TwinHash))
	}
	if res.TwinEpoch != res.Epoch {
		res.Violations = append(res.Violations,
			fmt.Sprintf("recovered epoch %d differs from twin %d", res.Epoch, res.TwinEpoch))
	}

	// Phase 3: a real restarted child must serve the same state over HTTP.
	reborn, err := startCrashChild(ctx, dir, cfg.Fsync, "")
	if err != nil {
		return nil, err
	}
	defer reborn.kill()
	served, err := crashScan(ctx, client, reborn.base)
	if err != nil {
		return nil, fmt.Errorf("load: survivor scan: %w", err)
	}
	if h := HashAnswers(served); h != res.TwinHash {
		res.Violations = append(res.Violations,
			fmt.Sprintf("restarted node served answer set %s, twin has %s", h, res.TwinHash))
	}
	epoch, rows, err := crashDataStats(ctx, client, reborn.base)
	if err != nil {
		return nil, err
	}
	if epoch != res.TwinEpoch {
		res.Violations = append(res.Violations,
			fmt.Sprintf("restarted node serves epoch %d, twin has %d", epoch, res.TwinEpoch))
	}
	if want := res.Survived * cfg.RowsPerBatch; rows != want {
		res.Violations = append(res.Violations,
			fmt.Sprintf("restarted node serves %d rows, want %d", rows, want))
	}
	sort.Strings(res.Violations)
	return res, nil
}

// crashChild is one re-exec'd durable node under harness control.
type crashChild struct {
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer
}

// kill SIGKILLs the child — no shutdown hooks, no flush — and reaps it.
func (c *crashChild) kill() {
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

// startCrashChild re-execs the running binary as a durable node over dir
// and waits until it publishes its port and answers /stats.
func startCrashChild(ctx context.Context, dir, fsync, failpoint string) (*crashChild, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	portFile := fmt.Sprintf("%s/port.%d", dir, time.Now().UnixNano())
	cmd := exec.CommandContext(ctx, exe)
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashDirEnv+"="+dir,
		crashSchemaEnv+"="+crashSchemaText,
		crashPortFileEnv+"="+portFile,
		crashFsyncEnv+"="+fsync,
		wal.FailpointEnv+"="+failpoint,
	)
	stderr := &bytes.Buffer{}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &crashChild{cmd: cmd, stderr: stderr}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			c.base = "http://" + strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			c.kill()
			return nil, fmt.Errorf("load: crash child never published a port (stderr: %s)", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c, nil
}

// crashBatchRows builds batch i's rows — globally unique per (batch, row)
// index, so presence after a crash identifies the batch unambiguously.
func crashBatchRows(batch, rows int) []storage.Row {
	out := make([]storage.Row, rows)
	for j := 0; j < rows; j++ {
		out[j] = storage.Row{fmt.Sprintf("c%d_r%d", batch, j), fmt.Sprintf("v%d_%d", batch, j)}
	}
	return out
}

// postCrashBatch sends batch i to the child; any transport error or
// non-200 means the batch was not acknowledged.
func postCrashBatch(ctx context.Context, client *http.Client, base string, batch, rows int) error {
	var b strings.Builder
	for _, r := range crashBatchRows(batch, rows) {
		fmt.Fprintf(&b, "[%q, %q]\n", r[0], r[1])
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/ingest?relation=storm", strings.NewReader(b.String()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest batch %d: status %d", batch, resp.StatusCode)
	}
	return nil
}

// crashScan streams the full storm relation off the restarted node.
func crashScan(ctx context.Context, client *http.Client, base string) ([][]string, error) {
	q := url.Values{"q": {crashScanQuery}}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/query?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("scan status %d: %s", resp.StatusCode, b)
	}
	var rows [][]string
	sawDone := false
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for scan.Scan() {
		line := scan.Bytes()
		if len(line) == 0 {
			continue
		}
		var frame struct {
			Answer []string `json:"answer"`
			Done   bool     `json:"done"`
			Error  string   `json:"error"`
		}
		if err := json.Unmarshal(line, &frame); err != nil {
			return nil, err
		}
		if frame.Error != "" {
			return nil, fmt.Errorf("scan: %s", frame.Error)
		}
		if frame.Answer != nil {
			rows = append(rows, frame.Answer)
		}
		if frame.Done {
			sawDone = true
		}
	}
	if scan.Err() != nil {
		return nil, scan.Err()
	}
	if !sawDone {
		return nil, fmt.Errorf("scan response ended without a done frame")
	}
	return rows, nil
}

// crashDataStats reads the storm relation's served epoch and row count
// from the restarted node's /stats data block.
func crashDataStats(ctx context.Context, client *http.Client, base string) (epoch uint64, rows int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var stats struct {
		Data map[string]struct {
			Epoch uint64 `json:"epoch"`
			Rows  int    `json:"rows"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, 0, err
	}
	d, ok := stats.Data["storm"]
	if !ok {
		return 0, 0, fmt.Errorf("load: /stats has no data entry for storm")
	}
	return d.Epoch, d.Rows, nil
}
