package load

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"toorjah/internal/benchfmt"
)

func TestEvaluate(t *testing.T) {
	q := Scenario{Name: "q", Kind: KindQuery, Query: "q(X) :- r(X)"}
	budget := q
	budget.Expect.ErrorBudget = 0.10
	trunc := q
	trunc.Expect.MaxTruncatedFrac = 0.5
	cmp := Scenario{Name: "c", Kind: KindCompare, Query: "q(X) :- r(X)",
		Expect: Expect{AdaptiveNoWorse: true}}
	flap := Scenario{Name: "f", Kind: KindFailure, OutageMS: 100}

	cases := []struct {
		name   string
		sc     Scenario
		m      Measured
		pass   bool
		reason string // substring of a failure reason, "" when passing
	}{
		{"clean run passes", q, Measured{Requests: 100}, true, ""},
		{"no requests fails", q, Measured{}, false, "no requests"},
		{"failure scenario may be starved", flap, Measured{}, true, ""},
		{"zero budget rejects any error", q, Measured{Requests: 100, Errors: 1}, false, "error rate"},
		{"errors within budget pass", budget, Measured{Requests: 100, Errors: 10}, true, ""},
		{"errors beyond budget fail", budget, Measured{Requests: 100, Errors: 11}, false, "error rate"},
		{"truncation rejected by default", q, Measured{Requests: 10, Truncated: 1}, false, "truncated rate"},
		{"truncation within cap passes", trunc, Measured{Requests: 10, Truncated: 5}, true, ""},
		{"truncation beyond cap fails", trunc, Measured{Requests: 10, Truncated: 6}, false, "truncated rate"},
		{"any mismatch fails", q, Measured{Requests: 100, Mismatches: 1}, false, "contradicted"},
		{"adaptive no worse passes on tie", cmp, Measured{Requests: 1, AdaptiveAccesses: 5, StaticAccesses: 5}, true, ""},
		{"adaptive better passes", cmp, Measured{Requests: 1, AdaptiveAccesses: 3, StaticAccesses: 5}, true, ""},
		{"adaptive worse fails", cmp, Measured{Requests: 1, AdaptiveAccesses: 6, StaticAccesses: 5}, false, "adaptive ordering"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pass, reasons := Evaluate(tc.sc, tc.m)
			if pass != tc.pass {
				t.Fatalf("Evaluate() pass = %v, want %v (reasons %v)", pass, tc.pass, reasons)
			}
			if tc.reason == "" {
				if len(reasons) != 0 {
					t.Fatalf("passing evaluation carried reasons %v", reasons)
				}
				return
			}
			found := false
			for _, r := range reasons {
				if strings.Contains(r, tc.reason) {
					found = true
				}
			}
			if !found {
				t.Fatalf("reasons %v lack %q", reasons, tc.reason)
			}
		})
	}
}

func TestHashAnswers(t *testing.T) {
	a := HashAnswers([][]string{{"x", "y"}, {"z", "w"}})
	b := HashAnswers([][]string{{"z", "w"}, {"x", "y"}})
	if a != b {
		t.Fatalf("hash is order-dependent: %s vs %s", a, b)
	}
	if c := HashAnswers([][]string{{"x", "y"}}); c == a {
		t.Fatal("different answer sets collided")
	}
	// Concatenation across cells must not alias: {"ab",""} vs {"a","b"}.
	if HashAnswers([][]string{{"ab", ""}}) == HashAnswers([][]string{{"a", "b"}}) {
		t.Fatal("cell boundaries are not separated")
	}
	if len(a) != 16 {
		t.Fatalf("digest %q is not 16 hex chars", a)
	}
}

func TestParseSuite(t *testing.T) {
	good := `{"name": "s", "scenarios": [
		{"name": "q", "kind": "query", "weight": 1, "query": "q(X) :- r(X)",
		 "expect": {"from_ground_truth": true}},
		{"name": "i", "kind": "ingest", "weight": 1, "relation": "r", "rows": 5},
		{"name": "f", "kind": "failure", "weight": 1, "node": 1, "outage_ms": 50},
		{"name": "c", "kind": "compare", "query": "q(X) :- r(X)",
		 "expect": {"adaptive_no_worse": true}}
	]}`
	s, err := ParseSuite(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "s" || len(s.Scenarios) != 4 {
		t.Fatalf("parsed %+v", s)
	}
	if !s.Scenarios[0].Expect.FromGroundTruth || s.Scenarios[2].OutageMS != 50 {
		t.Fatalf("fields lost: %+v", s.Scenarios)
	}

	bad := []string{
		`{"scenarios": [{"name": "q", "kind": "query", "query": "x"}]}`,        // no suite name
		`{"name": "s", "scenarios": []}`,                                       // empty
		`{"name": "s", "scenarios": [{"name": "q", "kind": "query"}]}`,         // query without text
		`{"name": "s", "scenarios": [{"name": "i", "kind": "ingest"}]}`,        // ingest without relation
		`{"name": "s", "scenarios": [{"name": "f", "kind": "failure"}]}`,       // failure without outage
		`{"name": "s", "scenarios": [{"name": "x", "kind": "nonsense"}]}`,      // unknown kind
		`{"name": "s", "scenarios": [{"name": "q", "kind": "query", "qq":1}]}`, // unknown field
	}
	for _, in := range bad {
		if _, err := ParseSuite(strings.NewReader(in)); err == nil {
			t.Errorf("ParseSuite accepted %s", in)
		}
	}
}

func TestBuiltinSuitesValidate(t *testing.T) {
	for _, name := range BuiltinSuiteNames() {
		s, ok := BuiltinSuite(name)
		if !ok {
			t.Fatalf("BuiltinSuite(%q) missing", name)
		}
		for i, sc := range s.Scenarios {
			if err := validateScenario(sc); err != nil {
				t.Errorf("suite %s scenario %d (%s): %v", name, i, sc.Name, err)
			}
		}
	}
	if _, ok := BuiltinSuite("nonsense"); ok {
		t.Error("BuiltinSuite(nonsense) should not resolve")
	}
}

// TestRunMixedSuite drives the full mixed suite — queries, UCQs, ingest
// storms, peer outages, the adaptive comparison — against the in-process
// two-node cluster for a short timed phase, and checks the report's shape
// and the JSON round trip. Under -race this doubles as the harness's
// concurrency test.
func TestRunMixedSuite(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl, err := StartDefaultCluster(ctx, DefaultClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	suite, _ := BuiltinSuite("mixed")
	rep, err := Run(ctx, cl, suite, Config{Clients: 4, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(suite.Scenarios) {
		t.Fatalf("report has %d results, want %d", len(rep.Results), len(suite.Scenarios))
	}
	byName := make(map[string]ScenarioResult)
	for _, r := range rep.Results {
		byName[r.Scenario.Name] = r
	}
	if r := byName["point-conf"]; r.Measured.Requests == 0 || !r.Pass {
		t.Errorf("point-conf: %+v (reasons %v)", r.Measured, r.Reasons)
	}
	if r := byName["adaptive-skew"]; !r.Pass ||
		r.Measured.AdaptiveAccesses > r.Measured.StaticAccesses {
		t.Errorf("adaptive-skew: adaptive %d vs static %d (reasons %v)",
			r.Measured.AdaptiveAccesses, r.Measured.StaticAccesses, r.Reasons)
	}
	if r := byName["storm-ingest"]; r.Measured.Requests == 0 || r.Measured.Errors > 0 {
		t.Errorf("storm-ingest: %+v", r.Measured)
	}
	if _, ok := rep.ServerDeltas["node0"]; !ok {
		t.Error("report lacks node0 server deltas")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	results, err := benchfmt.ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("the JSON artifact is not a benchfmt snapshot: %v", err)
	}
	found := false
	for _, r := range results {
		if r.Name == "Load/adaptive-skew" {
			found = true
			if r.Metrics["adaptive-accesses/op"] > r.Metrics["static-accesses/op"] {
				t.Errorf("snapshot records adaptive %v > static %v",
					r.Metrics["adaptive-accesses/op"], r.Metrics["static-accesses/op"])
			}
		}
	}
	if !found {
		t.Error("snapshot lacks Load/adaptive-skew")
	}
	if rep.Markdown() == "" || rep.Text() == "" {
		t.Error("empty rendered report")
	}
}

// TestGroundTruthResolution pins the oracle path: FromGroundTruth fills
// count and hash from the reference system before the run.
func TestGroundTruthResolution(t *testing.T) {
	ctx := context.Background()
	cl, err := StartDefaultCluster(ctx, DefaultClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sc := Scenario{Name: "p", Kind: KindQuery, Query: "q(C, Y) :- conf(p1, C, Y)",
		Expect: Expect{FromGroundTruth: true}}
	if err := resolveGroundTruth(ctx, cl.Ref, &sc); err != nil {
		t.Fatal(err)
	}
	if sc.Expect.Answers == nil || *sc.Expect.Answers != 2 {
		t.Fatalf("expected 2 ground-truth answers, got %+v", sc.Expect.Answers)
	}
	if len(sc.Expect.AnswerHash) != 16 {
		t.Fatalf("bad hash %q", sc.Expect.AnswerHash)
	}
}
