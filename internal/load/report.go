package load

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"toorjah/internal/benchfmt"
	"toorjah/internal/obs"
	"toorjah/internal/stats"
)

// serverFamilies are the /metrics counter families whose before/after
// deltas the report embeds next to the client-observed numbers — the
// server's own account of what the load did to it.
var serverFamilies = []string{
	"toorjah_queries_served_total",
	"toorjah_ucqs_served_total",
	"toorjah_probes_served_total",
	"toorjah_ingests_served_total",
	"toorjah_ingest_rows_total",
	"toorjah_cache_hits_total",
	"toorjah_cache_misses_total",
	"toorjah_source_accesses_total",
	"toorjah_source_round_trips_total",
	"toorjah_remote_round_trips_total",
	"toorjah_remote_retries_total",
	"toorjah_remote_breaker_opens_total",
	"toorjah_response_write_errors_total",
	// Present only on nodes running durable (-wal); absent families
	// delta to zero and stay out of the report.
	"toorjah_wal_appends_total",
	"toorjah_wal_appended_bytes_total",
	"toorjah_wal_syncs_total",
	"toorjah_wal_errors_total",
	"toorjah_wal_segments_sealed_total",
}

// ScenarioResult is one scenario's scored outcome.
type ScenarioResult struct {
	Scenario Scenario `json:"scenario"`
	Measured Measured `json:"measured"`
	Pass     bool     `json:"pass"`
	Reasons  []string `json:"reasons,omitempty"`

	// P50 / P99 / P999 are client-observed latency quantiles in seconds
	// (NaN-free: zero when the scenario saw no requests).
	P50, P99, P999 float64
	// Throughput is requests per second over the timed phase.
	Throughput float64
	// MeanAccesses is the average per-request access count the server
	// reported in its summary frames (KindQuery only).
	MeanAccesses float64
}

// Report is one load run's full outcome.
type Report struct {
	Suite   string
	Config  Config
	Results []ScenarioResult
	Aggreg  ScenarioResult
	// ServerDeltas maps node name → metric family → counter delta across
	// the run (only nonzero families are kept).
	ServerDeltas map[string]map[string]float64
}

// Pass reports whether every scenario passed.
func (r *Report) Pass() bool {
	for _, res := range r.Results {
		if !res.Pass {
			return false
		}
	}
	return true
}

// quantiles pulls the three headline percentiles out of a tally, mapping
// the empty-histogram NaN to 0 so reports and JSON stay finite.
func quantiles(h *obs.Histogram) (p50, p99, p999 float64) {
	fin := func(v float64) float64 {
		if v != v { // NaN
			return 0
		}
		return v
	}
	return fin(h.Quantile(0.50)), fin(h.Quantile(0.99)), fin(h.Quantile(0.999))
}

func buildReport(suiteName string, scenarios []Scenario, tallies []*tally, aggregate *tally,
	compares map[string][2]int, crashes map[string]*CrashResult,
	before, after map[string]*obs.Scrape, cfg Config) *Report {

	rep := &Report{Suite: suiteName, Config: cfg, ServerDeltas: make(map[string]map[string]float64)}
	secs := cfg.Duration.Seconds()

	score := func(sc Scenario, t *tally) ScenarioResult {
		m := t.measured()
		if c, ok := compares[sc.Name]; ok {
			m.AdaptiveAccesses, m.StaticAccesses = c[0], c[1]
			if m.Requests == 0 {
				m.Requests = 1 // the one comparison run
			}
		}
		if cr, ok := crashes[sc.Name]; ok {
			m.AckedBatches, m.SurvivedBatches = cr.Acked, cr.Survived
			m.Violations = cr.Violations
			if m.Requests == 0 {
				m.Requests = 1 // the one crash round
			}
		}
		pass, reasons := Evaluate(sc, m)
		r := ScenarioResult{Scenario: sc, Measured: m, Pass: pass, Reasons: reasons}
		r.P50, r.P99, r.P999 = quantiles(t.hist)
		if secs > 0 {
			r.Throughput = float64(m.Requests) / secs
		}
		if n := t.requests.Load(); n > 0 {
			r.MeanAccesses = float64(t.accesses.Load()) / float64(n)
		}
		return r
	}

	for i, sc := range scenarios {
		rep.Results = append(rep.Results, score(sc, tallies[i]))
	}
	rep.Aggreg = score(Scenario{Name: "aggregate"}, aggregate)
	rep.Aggreg.Pass = rep.Pass()

	for node, b := range before {
		a, ok := after[node]
		if !ok {
			continue
		}
		deltas := make(map[string]float64)
		for _, fam := range serverFamilies {
			if d := a.SumDelta(b, fam); d != 0 {
				deltas[fam] = d
			}
		}
		if len(deltas) > 0 {
			rep.ServerDeltas[node] = deltas
		}
	}
	return rep
}

// BenchResults renders the report as benchfmt results, so two load runs
// diff with cmd/benchgate exactly like two benchmark snapshots:
//
//	Load/<scenario>     client-side metrics, with accesses/op gated
//	LoadAggregate       the whole-run rollup
//	LoadServer/<node>   server-side counter deltas (informational)
func (r *Report) BenchResults() []benchfmt.Result {
	toMS := func(s float64) float64 { return s * 1e3 }
	boolMetric := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	one := func(name string, res ScenarioResult) benchfmt.Result {
		m := map[string]float64{
			"p50-ms":         toMS(res.P50),
			"p99-ms":         toMS(res.P99),
			"p999-ms":        toMS(res.P999),
			"throughput-rps": res.Throughput,
			"pass":           boolMetric(res.Pass),
		}
		if res.Measured.Requests > 0 {
			m["error-rate"] = float64(res.Measured.Errors) / float64(res.Measured.Requests)
			m["truncated-rate"] = float64(res.Measured.Truncated) / float64(res.Measured.Requests)
		}
		if res.Scenario.Kind == KindQuery {
			m["accesses/op"] = res.MeanAccesses
		}
		if res.Scenario.Kind == KindCompare {
			m["adaptive-accesses/op"] = float64(res.Measured.AdaptiveAccesses)
			m["static-accesses/op"] = float64(res.Measured.StaticAccesses)
		}
		if res.Scenario.Kind == KindCrash {
			m["acked-batches"] = float64(res.Measured.AckedBatches)
			m["survived-batches"] = float64(res.Measured.SurvivedBatches)
			m["violations"] = float64(len(res.Measured.Violations))
		}
		return benchfmt.Result{Name: name, Iterations: res.Measured.Requests, Metrics: m}
	}
	out := make([]benchfmt.Result, 0, len(r.Results)+len(r.ServerDeltas)+1)
	for _, res := range r.Results {
		out = append(out, one("Load/"+res.Scenario.Name, res))
	}
	out = append(out, one("LoadAggregate", r.Aggreg))
	nodes := make([]string, 0, len(r.ServerDeltas))
	for n := range r.ServerDeltas {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		out = append(out, benchfmt.Result{
			Name:       "LoadServer/" + n,
			Iterations: 1,
			Metrics:    r.ServerDeltas[n],
		})
	}
	return out
}

// WriteJSON writes the report as a bare benchfmt result array — the shape
// cmd/benchgate's ReadJSON expects.
func (r *Report) WriteJSON(w io.Writer) error {
	return benchfmt.WriteJSON(w, r.BenchResults())
}

// table renders the per-scenario rows into t (shared by Text and Markdown).
func (r *Report) table(t *stats.Table) {
	t.Header("scenario", "kind", "reqs", "err%", "p50", "p99", "p999", "rps", "acc/op", "result")
	row := func(res ScenarioResult) {
		errPct := "-"
		if res.Measured.Requests > 0 {
			errPct = fmt.Sprintf("%.2f%%", 100*float64(res.Measured.Errors)/float64(res.Measured.Requests))
		}
		verdict := "PASS"
		if !res.Pass {
			verdict = "FAIL: " + strings.Join(res.Reasons, "; ")
		}
		acc := "-"
		switch res.Scenario.Kind {
		case KindQuery:
			acc = fmt.Sprintf("%.1f", res.MeanAccesses)
		case KindCompare:
			acc = fmt.Sprintf("%d vs %d", res.Measured.AdaptiveAccesses, res.Measured.StaticAccesses)
		case KindCrash:
			acc = fmt.Sprintf("%d acked/%d ok", res.Measured.AckedBatches, res.Measured.SurvivedBatches)
		}
		t.Row(res.Scenario.Name, string(res.Scenario.Kind),
			fmt.Sprintf("%d", res.Measured.Requests), errPct,
			fmtDur(res.P50), fmtDur(res.P99), fmtDur(res.P999),
			fmt.Sprintf("%.0f", res.Throughput), acc, verdict)
	}
	for _, res := range r.Results {
		row(res)
	}
	agg := r.Aggreg
	agg.Scenario.Kind = "-"
	row(agg)
}

// fmtDur renders seconds human-readably (µs below 1ms, ms below 1s).
func fmtDur(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Text renders the human-readable run summary: the scored scenario table
// followed by the server-side counter deltas.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "suite %s: %d clients, %s\n\n", r.Suite, r.Config.Clients, r.Config.Duration)
	var t stats.Table
	r.table(&t)
	b.WriteString(t.String())
	r.writeDeltas(&b, func(node string) string { return "\nserver deltas (" + node + "):\n" },
		func(fam string, v float64) string { return fmt.Sprintf("  %-40s %+.0f\n", fam, v) })
	return b.String()
}

// Markdown renders the same report as GFM for CI job summaries.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Load run: suite `%s` (%d clients, %s)\n\n", r.Suite, r.Config.Clients, r.Config.Duration)
	var t stats.Table
	r.table(&t)
	b.WriteString(t.Markdown())
	r.writeDeltas(&b, func(node string) string { return "\n**Server deltas (" + node + "):**\n\n" },
		func(fam string, v float64) string { return fmt.Sprintf("- `%s` %+.0f\n", fam, v) })
	return b.String()
}

func (r *Report) writeDeltas(b *strings.Builder, head func(string) string, line func(string, float64) string) {
	nodes := make([]string, 0, len(r.ServerDeltas))
	for n := range r.ServerDeltas {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		b.WriteString(head(node))
		fams := make([]string, 0, len(r.ServerDeltas[node]))
		for f := range r.ServerDeltas[node] {
			fams = append(fams, f)
		}
		sort.Strings(fams)
		for _, f := range fams {
			b.WriteString(line(f, r.ServerDeltas[node][f]))
		}
	}
}
