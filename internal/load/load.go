// Package load is the production workload harness behind cmd/loadgen: it
// replays configurable scenario mixes — point CQs, fat UCQs, ingest
// storms, federated probes, injected peer outages — from N concurrent
// clients against a live toorjahd cluster (typically the in-process
// two-node cluster of StartDefaultCluster, built on internal/service), and
// scores every scenario against declared expected outcomes, so a load run
// is simultaneously a correctness run.
//
// The harness records per-scenario latency histograms (p50/p99/p999 via
// the same bucket estimator the server's /metrics uses), throughput and
// error budgets; scrapes each node's /metrics before and after the run to
// embed the server-side deltas (cache savings, probe round trips, breaker
// opens, ingest rows) next to the client-observed numbers; and emits the
// whole report as internal/benchfmt results, so cmd/benchgate diffs two
// runs exactly like two benchmark snapshots.
package load

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// Kind classifies what one scenario does per request.
type Kind string

const (
	// KindQuery issues the scenario's CQ or UCQ against /query and checks
	// the streamed answers against the expectation.
	KindQuery Kind = "query"
	// KindIngest posts a batch of fresh rows to /ingest (an ingest storm
	// when weighted high). Rows are unique per request, so every batch
	// advances the relation's epoch.
	KindIngest Kind = "ingest"
	// KindFailure injects a peer outage: the target node answers 503 for
	// OutageMS, then recovers. The scenario itself measures the toggle; the
	// damage shows up in other scenarios' error budgets and in the server's
	// breaker metrics.
	KindFailure Kind = "failure"
	// KindCompare runs once after the timed phase: it executes the query
	// against two fresh in-process systems over the cluster's skewed
	// dataset — adaptive ordering on vs off — and scores the access counts
	// (Expect.AdaptiveNoWorse).
	KindCompare Kind = "compare"
	// KindCrash runs once after the timed phase: it boots a real durable
	// child process (RunCrash), storms it with unique insert batches,
	// SIGKILLs it at a random point — optionally mid-write, via a WAL
	// failpoint — restarts it from the same data directory, and scores
	// the recovered state against a never-crashed twin fed the surviving
	// batches. Every acknowledged batch must survive whole, and answers,
	// row counts and epochs must match the twin's.
	KindCrash Kind = "crash"
)

// Expect declares a scenario's expected outcome; the run scores observed
// behaviour against it. Zero value: nothing checked but errors (budget 0).
type Expect struct {
	// Answers, when non-nil, is the exact answer count every request must
	// observe.
	Answers *int `json:"answers,omitempty"`
	// AnswerHash, when set, is the FNV-64a hex digest (HashAnswers) of the
	// sorted answer set every request must observe.
	AnswerHash string `json:"answer_hash,omitempty"`
	// FromGroundTruth fills Answers and AnswerHash before the run by
	// executing the query once against the reference system that holds
	// every relation locally — the calibration idiom: the ground truth is
	// computed, not hand-maintained.
	FromGroundTruth bool `json:"from_ground_truth,omitempty"`
	// MaxTruncatedFrac is the highest tolerated fraction of truncated
	// responses (0 = none tolerated unless the scenario sets a limit).
	MaxTruncatedFrac float64 `json:"max_truncated_frac,omitempty"`
	// ErrorBudget is the highest tolerated fraction of failed requests.
	ErrorBudget float64 `json:"error_budget,omitempty"`
	// AdaptiveNoWorse, for KindCompare, requires the adaptive execution to
	// perform no more accesses than the static one.
	AdaptiveNoWorse bool `json:"adaptive_no_worse,omitempty"`
}

// Scenario is one replayable workload element of a suite.
type Scenario struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Query is the CQ (one line) or UCQ (one disjunct per line) of
	// KindQuery and KindCompare.
	Query string `json:"query,omitempty"`
	// Limit caps the answers per request (0 = unlimited).
	Limit int `json:"limit,omitempty"`
	// Relation and Rows shape a KindIngest batch.
	Relation string `json:"relation,omitempty"`
	Rows     int    `json:"rows,omitempty"`
	// Node indexes the cluster node the scenario targets (default 0; for
	// KindFailure, the node taken down).
	Node int `json:"node,omitempty"`
	// Weight is the scenario's relative frequency in the mix; 0 keeps it
	// out of the timed phase (KindCompare scenarios run once afterwards).
	Weight int `json:"weight,omitempty"`
	// OutageMS is how long a KindFailure outage lasts, in milliseconds.
	OutageMS int `json:"outage_ms,omitempty"`
	// Batches, Fsync and Failpoint shape a KindCrash round: how many
	// insert batches the storm sends at most, the victim's WAL flush
	// policy (always, interval, never), and an optional failpoint spec
	// (e.g. "crash-after-bytes=2500") armed in the victim's environment
	// so it dies mid-write instead of at the harness's random kill point.
	Batches   int    `json:"batches,omitempty"`
	Fsync     string `json:"fsync,omitempty"`
	Failpoint string `json:"failpoint,omitempty"`

	Expect Expect `json:"expect"`
}

// Suite is a named set of scenarios.
type Suite struct {
	Name      string     `json:"name"`
	Scenarios []Scenario `json:"scenarios"`
}

// ParseSuite decodes a scenario file: {"name": "...", "scenarios": [...]}.
func ParseSuite(r io.Reader) (*Suite, error) {
	var s Suite
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("load: bad suite: %w", err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("load: suite has no name")
	}
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("load: suite %q has no scenarios", s.Name)
	}
	for i, sc := range s.Scenarios {
		if err := validateScenario(sc); err != nil {
			return nil, fmt.Errorf("load: scenario %d (%s): %w", i, sc.Name, err)
		}
	}
	return &s, nil
}

func validateScenario(sc Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("missing name")
	}
	switch sc.Kind {
	case KindQuery, KindCompare:
		if strings.TrimSpace(sc.Query) == "" {
			return fmt.Errorf("kind %s needs a query", sc.Kind)
		}
	case KindIngest:
		if sc.Relation == "" || sc.Rows <= 0 {
			return fmt.Errorf("kind ingest needs relation and rows")
		}
	case KindFailure:
		if sc.OutageMS <= 0 {
			return fmt.Errorf("kind failure needs outage_ms")
		}
	case KindCrash:
		if sc.Batches <= 0 {
			return fmt.Errorf("kind crash needs batches")
		}
	default:
		return fmt.Errorf("unknown kind %q", sc.Kind)
	}
	return nil
}

// HashAnswers digests an answer set order-independently: rows are joined
// on unit separators, sorted, and FNV-64a hashed — the same digest whether
// computed from a streamed NDJSON response or a Result's tuples, so client
// and ground truth compare by 16 hex characters instead of full answer
// sets.
func HashAnswers(rows [][]string) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\x1e'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Measured is what one scenario's timed phase actually observed — the
// input of Evaluate, separated from the runner so scoring is a pure,
// table-testable function.
type Measured struct {
	Requests   int
	Errors     int
	Truncated  int
	Mismatches int // responses whose answers contradicted the expectation
	// AdaptiveAccesses / StaticAccesses carry a KindCompare measurement.
	AdaptiveAccesses int
	StaticAccesses   int
	// AckedBatches / SurvivedBatches / Violations carry a KindCrash
	// measurement: batches acknowledged before the kill, batches fully
	// present after the restart, and every durability-contract violation
	// the round found (acked batch lost, partial batch, answer / epoch /
	// row-count divergence from the never-crashed twin).
	AckedBatches    int
	SurvivedBatches int
	Violations      []string
}

// Evaluate scores a measurement against an expectation, returning PASS or
// FAIL with one reason per violated predicate. A scenario that never ran
// fails: a scored scenario the mix starved proves nothing.
func Evaluate(sc Scenario, m Measured) (pass bool, reasons []string) {
	if m.Requests == 0 && sc.Kind != KindFailure {
		return false, []string{"no requests completed"}
	}
	n := float64(m.Requests)
	if n > 0 {
		if frac := float64(m.Errors) / n; frac > sc.Expect.ErrorBudget {
			reasons = append(reasons, fmt.Sprintf("error rate %.3f exceeds budget %.3f",
				frac, sc.Expect.ErrorBudget))
		}
		if frac := float64(m.Truncated) / n; frac > sc.Expect.MaxTruncatedFrac {
			reasons = append(reasons, fmt.Sprintf("truncated rate %.3f exceeds %.3f",
				frac, sc.Expect.MaxTruncatedFrac))
		}
	}
	if m.Mismatches > 0 {
		reasons = append(reasons, fmt.Sprintf("%d responses contradicted the expected answers", m.Mismatches))
	}
	reasons = append(reasons, m.Violations...)
	if sc.Expect.AdaptiveNoWorse && m.AdaptiveAccesses > m.StaticAccesses {
		reasons = append(reasons, fmt.Sprintf("adaptive ordering used %d accesses, static %d",
			m.AdaptiveAccesses, m.StaticAccesses))
	}
	return len(reasons) == 0, reasons
}
