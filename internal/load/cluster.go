package load

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"toorjah"
	"toorjah/internal/obs"
	"toorjah/internal/service"
	"toorjah/internal/storage"
	"toorjah/internal/wal"
)

// Node is one in-process toorjahd instance: the real service handler (the
// exact route table a deployment serves) on a real loopback listener, plus
// an outage switch for failure injection.
type Node struct {
	Name string
	Sys  *toorjah.System
	Srv  *service.Server
	URL  string

	hs     *http.Server
	lis    net.Listener
	outage atomic.Bool
	wlog   *wal.Log
}

// startNode serves the system on a loopback port behind the outage switch.
func startNode(name string, sys *toorjah.System, execOpts toorjah.Options, svcOpts ...service.Option) (*Node, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("load: node %s: %w", name, err)
	}
	n := &Node{Name: name, Sys: sys, Srv: service.New(sys, execOpts, svcOpts...), lis: lis}
	n.URL = "http://" + lis.Addr().String()
	inner := n.Srv.Handler()
	n.hs = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.outage.Load() {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})}
	go n.hs.Serve(lis) //nolint — Serve returns when Close is called
	return n, nil
}

// SetOutage switches the node between serving and answering 503 to every
// request — the client-visible shape of a crashed or partitioned peer
// (connections still open, service gone).
func (n *Node) SetOutage(down bool) { n.outage.Store(down) }

// Scrape fetches and parses the node's /metrics exposition.
func (n *Node) Scrape(ctx context.Context, client *http.Client) (*obs.Scrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("load: scrape %s: %w", n.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: scrape %s: status %d", n.Name, resp.StatusCode)
	}
	return obs.ParseExposition(resp.Body)
}

// Close stops the listener; in-flight requests are abandoned (this is a
// harness, not a deployment — drain timing is toorjahd's job). A node
// running durable also closes its write-ahead log.
func (n *Node) Close() {
	n.hs.Close()
	if n.wlog != nil {
		n.wlog.Close()
	}
}

// Cluster is the harness's target: real nodes, plus a reference system
// holding every relation locally — the ground-truth oracle expectations
// are computed against — and the skewed dataset of the adaptive-ordering
// comparison.
type Cluster struct {
	Nodes []*Node
	// Ref answers every suite query over purely local data; ground-truth
	// expectations (Expect.FromGroundTruth) are computed against it with
	// the naive reference executor.
	Ref *toorjah.System

	skew *storage.Database
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.Close()
	}
}

// defaultSchemaText is the workload schema of the built-in suites:
//
//	pub    free (all-output): point probes and fat scans
//	conf   input-bound by person, held by the peer node: every probe is a
//	       federated round trip (until cached)
//	storm  free, never queried: the ingest-storm target, so storms advance
//	       epochs without invalidating the scored queries' ground truth
//	seed/big/small  the skewed adaptive-ordering demo: big and small join
//	       the seeded key order-equivalently, small is empty, so only
//	       linearization decides how many accesses a doomed join costs
const defaultSchemaText = `
	pub^oo(P, T)
	conf^ioo(P, C, Y)
	storm^oo(K, V)
	seed^o(A)
	big^io(A, B)
	small^io(A, C)`

// DefaultClusterOptions shapes StartDefaultCluster.
type DefaultClusterOptions struct {
	// Latency is the simulated per-access source latency of every node
	// (0 = as fast as the hardware allows).
	Latency time.Duration
	// Adaptive turns live-size plan ordering on for the query-serving node.
	Adaptive bool
	// WALDir, when set, runs the query-serving node durable: every applied
	// mutation batch is appended to a write-ahead log under this directory
	// before its acknowledgement, and /stats + /metrics grow the WAL
	// accounting. The cluster's dataset is still rebuilt in memory each
	// run — state recovered from a previous run's log stays on disk,
	// unreplayed — so the log measures durable-write overhead under load,
	// not recovery. "" keeps the cluster purely in-memory.
	WALDir string
	// Fsync is the durable node's WAL flush policy (always, interval,
	// never; default always). Ignored without WALDir.
	Fsync string
}

// StartDefaultCluster stands up the built-in two-node topology: node0
// serves queries and holds every relation except conf, which node1 holds
// and node0 attaches as a federated source — so query scenarios exercise
// local tables, remote probes, the shared access cache and the resilient
// remote client in one mix.
func StartDefaultCluster(ctx context.Context, opts DefaultClusterOptions) (*Cluster, error) {
	sch, err := toorjah.ParseSchema(defaultSchemaText)
	if err != nil {
		return nil, err
	}
	pub, conf, bigRows, seeds := defaultData()

	// node1: the peer holding conf.
	peerDB := storage.NewDatabase()
	fill(peerDB, "conf", 3, conf)
	peerSys := toorjah.NewSystem(sch, toorjah.WithLatency(opts.Latency))
	if err := peerSys.BindDatabase(peerDB); err != nil {
		return nil, err
	}
	peer, err := startNode("node1", peerSys, toorjah.Options{})
	if err != nil {
		return nil, err
	}

	// node0: everything else local, conf attached from node1.
	mainDB := storage.NewDatabase()
	fill(mainDB, "pub", 2, pub)
	fill(mainDB, "storm", 2, nil)
	fill(mainDB, "seed", 1, seeds)
	fill(mainDB, "big", 2, bigRows)
	fill(mainDB, "small", 2, nil)
	sysOpts := []toorjah.SystemOption{
		toorjah.WithLatency(opts.Latency),
		toorjah.WithCache(toorjah.CacheOptions{}),
		toorjah.WithRemoteOptions(toorjah.RemoteOptions{
			Timeout:   5 * time.Second,
			RetryBase: time.Millisecond,
			RetryMax:  20 * time.Millisecond,
		}),
	}
	if opts.Adaptive {
		sysOpts = append(sysOpts, toorjah.WithAdaptiveOrdering())
	}
	mainSys := toorjah.NewSystem(sch, sysOpts...)
	if err := mainSys.BindDatabase(mainDB); err != nil {
		peer.Close()
		return nil, err
	}
	if err := mainSys.AttachRemote(ctx, peer.URL+"=conf"); err != nil {
		peer.Close()
		return nil, fmt.Errorf("load: attach peer: %w", err)
	}
	var svcOpts []service.Option
	var wlog *wal.Log
	if opts.WALDir != "" {
		wlog, _, err = wal.Open(wal.Options{Dir: opts.WALDir, Fsync: opts.Fsync})
		if err != nil {
			peer.Close()
			return nil, fmt.Errorf("load: open wal: %w", err)
		}
		service.WireWAL(mainSys, wlog)
		svcOpts = append(svcOpts, service.WithWAL(wlog))
	}
	main, err := startNode("node0", mainSys, toorjah.Options{}, svcOpts...)
	if err != nil {
		if wlog != nil {
			wlog.Close()
		}
		peer.Close()
		return nil, err
	}
	main.wlog = wlog

	// The oracle: same schema, every relation local, no cache, no peers.
	refDB := storage.NewDatabase()
	fill(refDB, "pub", 2, pub)
	fill(refDB, "conf", 3, conf)
	fill(refDB, "storm", 2, nil)
	fill(refDB, "seed", 1, seeds)
	fill(refDB, "big", 2, bigRows)
	fill(refDB, "small", 2, nil)
	ref := toorjah.NewSystem(sch)
	if err := ref.BindDatabase(refDB); err != nil {
		main.Close()
		peer.Close()
		return nil, err
	}

	skew := storage.NewDatabase()
	fill(skew, "seed", 1, seeds)
	fill(skew, "big", 2, bigRows)
	fill(skew, "small", 2, nil)

	return &Cluster{Nodes: []*Node{main, peer}, Ref: ref, skew: skew}, nil
}

// fill creates a table with the given rows (panic-free for the fixed
// schema this file controls).
func fill(db *storage.Database, name string, arity int, rows []toorjah.Row) {
	t, err := db.Create(name, arity)
	if err != nil {
		panic(err)
	}
	t.InsertAll(rows)
}

// defaultData generates the deterministic built-in dataset: 40 persons
// with 5 publications each, 2 conference entries per person on the peer,
// and the skewed seed/big/small instance (10 seeded keys, 10 big rows
// each, small empty).
func defaultData() (pub, conf, bigRows, seeds []toorjah.Row) {
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("p%d", i)
		for j := 0; j < 5; j++ {
			pub = append(pub, toorjah.Row{p, fmt.Sprintf("title_%d_%d", i, j)})
		}
		for j := 0; j < 2; j++ {
			conf = append(conf, toorjah.Row{p, fmt.Sprintf("conf%d", (i+j)%7), fmt.Sprintf("y%d", 2000+(i+j)%9)})
		}
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		seeds = append(seeds, toorjah.Row{k})
		for j := 0; j < 10; j++ {
			bigRows = append(bigRows, toorjah.Row{k, fmt.Sprintf("v%d_%d", i, j)})
		}
	}
	return pub, conf, bigRows, seeds
}

// CompareAdaptive executes the query against two fresh systems over the
// cluster's skewed dataset — adaptive ordering on vs off, no cache, the
// fast-failing executor — and returns both access counts. The data is
// shared read-only; the systems are throwaway.
func (c *Cluster) CompareAdaptive(ctx context.Context, query string) (adaptive, static int, err error) {
	run := func(opts ...toorjah.SystemOption) (int, error) {
		sys := toorjah.NewSystem(c.Ref.Schema(), opts...)
		if err := sys.BindDatabase(c.skew); err != nil {
			return 0, err
		}
		q, err := sys.Prepare(query)
		if err != nil {
			return 0, err
		}
		res, err := q.Execute(ctx)
		if err != nil {
			return 0, err
		}
		return res.TotalAccesses(), nil
	}
	if static, err = run(); err != nil {
		return 0, 0, err
	}
	if adaptive, err = run(toorjah.WithAdaptiveOrdering()); err != nil {
		return 0, 0, err
	}
	return adaptive, static, nil
}
