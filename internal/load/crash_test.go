package load

import (
	"context"
	"os"
	"testing"

	"toorjah/internal/wal"
)

// TestMain lets RunCrash re-exec this test binary as its durable victim:
// when the crash-child environment is set, the process becomes the node
// under test and never reaches m.Run().
func TestMain(m *testing.M) {
	MaybeRunCrashChild()
	os.Exit(m.Run())
}

// TestCrashRecoveryEquivalence is the durability acceptance test: under
// every fsync policy a SIGKILLed node must come back serving exactly what
// a never-crashed twin serves after the same acknowledged batches — and a
// failpoint-torn final record must be truncated, never half-applied.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real child processes")
	}
	cases := []struct {
		name      string
		fsync     string
		failpoint string
	}{
		{"kill9-fsync-always", wal.FsyncAlways, ""},
		{"kill9-fsync-never", wal.FsyncNever, ""},
		{"torn-write", wal.FsyncNever, "crash-after-bytes=2500"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := RunCrash(context.Background(), CrashConfig{
				Batches:   40,
				Fsync:     tc.fsync,
				Failpoint: tc.failpoint,
				Seed:      7,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.Acked == 0 {
				t.Error("storm acknowledged no batches — the kill point left nothing to prove")
			}
			if res.Survived < res.Acked {
				t.Errorf("%d batches acked but only %d survived", res.Acked, res.Survived)
			}
			if res.Epoch != res.TwinEpoch || res.AnswerHash != res.TwinHash {
				t.Errorf("recovered (epoch %d, %s) vs twin (epoch %d, %s)",
					res.Epoch, res.AnswerHash, res.TwinEpoch, res.TwinHash)
			}
			if tc.failpoint != "" && res.RecordsReplayed == 0 {
				t.Error("failpoint round replayed no records — the failpoint fired before any append")
			}
		})
	}
}

// TestCrashScenarioEvaluate pins how a crash round's violations surface in
// scoring: each one is its own failure reason, and a clean round passes.
func TestCrashScenarioEvaluate(t *testing.T) {
	sc := Scenario{Name: "kill9", Kind: KindCrash, Batches: 40}
	if pass, _ := Evaluate(sc, Measured{Requests: 1, AckedBatches: 12, SurvivedBatches: 12}); !pass {
		t.Error("clean crash round should pass")
	}
	pass, reasons := Evaluate(sc, Measured{Requests: 1, Violations: []string{
		"acknowledged batch 3 lost: 0/5 rows recovered",
		"batch 7 partially applied: 2/5 rows recovered",
	}})
	if pass || len(reasons) != 2 {
		t.Errorf("violations must fail the scenario, got pass=%v reasons=%v", pass, reasons)
	}
}
