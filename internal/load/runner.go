package load

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toorjah"
	"toorjah/internal/cq"
	"toorjah/internal/obs"
)

// Config shapes one load run.
type Config struct {
	// Clients is the number of concurrent replaying clients (default 8).
	Clients int
	// Duration is the timed phase's length (default 10s).
	Duration time.Duration
	// Seed makes the scenario mix deterministic per client (default 1).
	Seed int64
}

// tally accumulates one scenario's observations across every client. The
// histogram is the same lock-free cumulative-bucket structure the server's
// /metrics uses, so client-side quantiles come from the same estimator.
type tally struct {
	hist       *obs.Histogram
	requests   atomic.Int64
	errors     atomic.Int64
	truncated  atomic.Int64
	mismatches atomic.Int64
	accesses   atomic.Int64
}

func newTally() *tally {
	return &tally{hist: obs.NewStandaloneHistogram(obs.LatencyBuckets)}
}

func (t *tally) measured() Measured {
	return Measured{
		Requests:   int(t.requests.Load()),
		Errors:     int(t.errors.Load()),
		Truncated:  int(t.truncated.Load()),
		Mismatches: int(t.mismatches.Load()),
	}
}

// outcome is one request's observation.
type outcome struct {
	err       bool
	truncated bool
	mismatch  bool
	accesses  int
	latency   time.Duration
}

func (t *tally) record(o outcome) {
	t.requests.Add(1)
	t.hist.Observe(o.latency.Seconds())
	if o.err {
		t.errors.Add(1)
	}
	if o.truncated {
		t.truncated.Add(1)
	}
	if o.mismatch {
		t.mismatches.Add(1)
	}
	t.accesses.Add(int64(o.accesses))
}

// ingestCounter makes every generated ingest row globally unique, so every
// batch really mutates the relation and advances its epoch.
var ingestCounter atomic.Int64

// Run executes the suite against the cluster: resolves ground-truth
// expectations against the reference system, scrapes every node's
// /metrics, replays the weighted mix from Config.Clients concurrent
// clients for Config.Duration, runs the KindCompare scenarios once,
// scrapes again, and scores everything into a Report.
func Run(ctx context.Context, cl *Cluster, suite *Suite, cfg Config) (*Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	scenarios := make([]Scenario, len(suite.Scenarios))
	copy(scenarios, suite.Scenarios)
	for i := range scenarios {
		if err := resolveGroundTruth(ctx, cl.Ref, &scenarios[i]); err != nil {
			return nil, err
		}
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients * 2 * len(cl.Nodes),
			MaxIdleConnsPerHost: cfg.Clients * 2,
		},
	}
	before := make(map[string]*obs.Scrape, len(cl.Nodes))
	for _, n := range cl.Nodes {
		sc, err := n.Scrape(ctx, client)
		if err != nil {
			return nil, err
		}
		before[n.Name] = sc
	}

	// The weighted mix: one entry per weight unit; a client draws uniformly.
	var mix []int
	tallies := make([]*tally, len(scenarios))
	for i, sc := range scenarios {
		tallies[i] = newTally()
		for w := 0; w < sc.Weight; w++ {
			mix = append(mix, i)
		}
	}
	aggregate := newTally()

	if len(mix) > 0 {
		deadline, cancel := context.WithTimeout(ctx, cfg.Duration)
		var wg sync.WaitGroup
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
				for deadline.Err() == nil {
					i := mix[rng.Intn(len(mix))]
					o := runScenario(deadline, client, cl, scenarios[i], rng)
					if deadline.Err() != nil && o.err {
						return // an error after the deadline is the shutdown, not the target
					}
					tallies[i].record(o)
					aggregate.record(o)
				}
			}(c)
		}
		wg.Wait()
		cancel()
	}

	// The comparison and crash scenarios run once, after the storm has
	// settled — a crash round boots (and kills) its own child processes
	// and must not distort the timed phase's latencies.
	compares := make(map[string][2]int)
	crashes := make(map[string]*CrashResult)
	for _, sc := range scenarios {
		switch sc.Kind {
		case KindCompare:
			adaptive, static, err := cl.CompareAdaptive(ctx, sc.Query)
			if err != nil {
				return nil, fmt.Errorf("load: compare %s: %w", sc.Name, err)
			}
			compares[sc.Name] = [2]int{adaptive, static}
		case KindCrash:
			res, err := RunCrash(ctx, CrashConfig{
				Batches:   sc.Batches,
				Fsync:     sc.Fsync,
				Failpoint: sc.Failpoint,
				Seed:      cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("load: crash %s: %w", sc.Name, err)
			}
			crashes[sc.Name] = res
		}
	}

	after := make(map[string]*obs.Scrape, len(cl.Nodes))
	for _, n := range cl.Nodes {
		sc, err := n.Scrape(ctx, client)
		if err != nil {
			return nil, err
		}
		after[n.Name] = sc
	}

	return buildReport(suite.Name, scenarios, tallies, aggregate, compares, crashes, before, after, cfg), nil
}

// resolveGroundTruth fills FromGroundTruth expectations by executing the
// query once against the all-local reference system with the naive
// reference executor — the paper's Fig. 1 algorithm, the slowest and most
// trustworthy oracle in the repo.
func resolveGroundTruth(ctx context.Context, ref *toorjah.System, sc *Scenario) error {
	if !sc.Expect.FromGroundTruth || sc.Kind != KindQuery {
		return nil
	}
	var res *toorjah.Result
	var err error
	if cq.IsUnion(sc.Query) {
		var u *toorjah.UnionQuery
		if u, err = ref.PrepareUCQ(sc.Query); err == nil {
			res, err = u.Execute(ctx, toorjah.WithExecutor(toorjah.ExecutorNaive))
		}
	} else {
		var q *toorjah.Query
		if q, err = ref.Prepare(sc.Query); err == nil {
			res, err = q.Execute(ctx, toorjah.WithExecutor(toorjah.ExecutorNaive))
		}
	}
	if err != nil {
		return fmt.Errorf("load: ground truth for %s: %w", sc.Name, err)
	}
	rows := make([][]string, 0, res.Answers.Len())
	for _, t := range res.Answers.Tuples() {
		rows = append(rows, t.Strings())
	}
	n := len(rows)
	sc.Expect.Answers = &n
	sc.Expect.AnswerHash = HashAnswers(rows)
	return nil
}

// runScenario performs one request of the scenario and reports what it saw.
func runScenario(ctx context.Context, client *http.Client, cl *Cluster, sc Scenario, rng *rand.Rand) outcome {
	node := cl.Nodes[0]
	if sc.Node > 0 && sc.Node < len(cl.Nodes) {
		node = cl.Nodes[sc.Node]
	}
	switch sc.Kind {
	case KindQuery:
		return runQuery(ctx, client, node.URL, sc)
	case KindIngest:
		return runIngest(ctx, client, node.URL, sc)
	case KindFailure:
		return runFailure(ctx, node, sc)
	default:
		return outcome{err: true}
	}
}

// runQuery streams one /query response, hashing the answers as they
// arrive and checking the summary frame against the expectation.
func runQuery(ctx context.Context, client *http.Client, base string, sc Scenario) outcome {
	q := url.Values{"q": {sc.Query}}
	if sc.Limit > 0 {
		q.Set("limit", strconv.Itoa(sc.Limit))
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/query?"+q.Encode(), nil)
	if err != nil {
		return outcome{err: true, latency: time.Since(start)}
	}
	resp, err := client.Do(req)
	if err != nil {
		return outcome{err: true, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return outcome{err: true, latency: time.Since(start)}
	}
	var rows [][]string
	var done struct {
		Done      bool   `json:"done"`
		Answers   int    `json:"answers"`
		Accesses  int    `json:"accesses"`
		Truncated bool   `json:"truncated"`
		Error     string `json:"error"`
	}
	sawDone := false
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for scan.Scan() {
		line := scan.Bytes()
		if len(line) == 0 {
			continue
		}
		var frame struct {
			Answer []string `json:"answer"`
		}
		if err := json.Unmarshal(line, &frame); err != nil {
			return outcome{err: true, latency: time.Since(start)}
		}
		if frame.Answer != nil {
			rows = append(rows, frame.Answer)
			continue
		}
		if err := json.Unmarshal(line, &done); err != nil {
			return outcome{err: true, latency: time.Since(start)}
		}
		if done.Error != "" {
			return outcome{err: true, latency: time.Since(start)}
		}
		if done.Done {
			sawDone = true
		}
	}
	o := outcome{latency: time.Since(start), accesses: done.Accesses, truncated: done.Truncated}
	if scan.Err() != nil || !sawDone {
		o.err = true
		return o
	}
	if exp := sc.Expect.Answers; exp != nil && len(rows) != *exp {
		o.mismatch = true
	}
	if sc.Expect.AnswerHash != "" && HashAnswers(rows) != sc.Expect.AnswerHash {
		o.mismatch = true
	}
	return o
}

// runIngest posts one batch of globally unique rows.
func runIngest(ctx context.Context, client *http.Client, base string, sc Scenario) outcome {
	var b strings.Builder
	for i := 0; i < sc.Rows; i++ {
		n := ingestCounter.Add(1)
		fmt.Fprintf(&b, "[%q, %q]\n", fmt.Sprintf("k%d", n), fmt.Sprintf("v%d", n))
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/ingest?relation="+url.QueryEscape(sc.Relation), strings.NewReader(b.String()))
	if err != nil {
		return outcome{err: true, latency: time.Since(start)}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return outcome{err: true, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return outcome{err: resp.StatusCode != http.StatusOK, latency: time.Since(start)}
}

// runFailure takes the target node down for the declared outage, then
// brings it back. At most one outage is in flight per node: overlapping
// attempts observe the switch already thrown and return immediately, so a
// heavily weighted failure scenario cannot pin a node down forever.
func runFailure(ctx context.Context, node *Node, sc Scenario) outcome {
	start := time.Now()
	if !node.outage.CompareAndSwap(false, true) {
		return outcome{latency: time.Since(start)}
	}
	select {
	case <-time.After(time.Duration(sc.OutageMS) * time.Millisecond):
	case <-ctx.Done():
	}
	node.outage.Store(false)
	return outcome{latency: time.Since(start)}
}
