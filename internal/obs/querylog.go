package obs

import (
	"log/slog"
	"time"
)

// QueryLog is the structured query log: one slog record per served query
// with its trace ID, latency, access accounting and cache-hit ratio.
// Queries at or above Slow are logged at Warn with slow=true (the
// -slow-query flag on toorjahd); everything else logs at Info. A nil
// *QueryLog is a no-op.
type QueryLog struct {
	log  *slog.Logger
	Slow time.Duration // 0 means no slow threshold
}

// NewQueryLog wraps a slog logger (nil means slog.Default) with a slow
// threshold.
func NewQueryLog(l *slog.Logger, slow time.Duration) *QueryLog {
	if l == nil {
		l = slog.Default()
	}
	return &QueryLog{log: l, Slow: slow}
}

// QueryRecord is one served query's accounting.
type QueryRecord struct {
	TraceID     string
	Query       string
	Executor    string // "pipelined", "union", ...
	Answers     int
	Accesses    int // probes that reached the sources
	Demanded    int // accesses requested above the cache (hits included)
	RoundTrips  int
	Elapsed     time.Duration
	TimeToFirst time.Duration
	Truncated   bool
	Err         error
}

// CacheHitRatio is (demanded − probed) / demanded — the fraction of
// requested accesses the cross-query cache absorbed. Zero when nothing
// was demanded.
func (r QueryRecord) CacheHitRatio() float64 {
	if r.Demanded <= 0 || r.Demanded <= r.Accesses {
		return 0
	}
	return float64(r.Demanded-r.Accesses) / float64(r.Demanded)
}

// Query logs one served query.
func (l *QueryLog) Query(r QueryRecord) {
	if l == nil {
		return
	}
	attrs := []any{
		slog.String("trace_id", r.TraceID),
		slog.String("query", r.Query),
		slog.String("executor", r.Executor),
		slog.Int("answers", r.Answers),
		slog.Int("accesses", r.Accesses),
		slog.Int("round_trips", r.RoundTrips),
		slog.Float64("cache_hit_ratio", r.CacheHitRatio()),
		slog.Duration("elapsed", r.Elapsed),
		slog.Duration("time_to_first", r.TimeToFirst),
		slog.Bool("truncated", r.Truncated),
	}
	if r.Err != nil {
		attrs = append(attrs, slog.String("error", r.Err.Error()))
		l.log.Error("query", attrs...)
		return
	}
	if l.Slow > 0 && r.Elapsed >= l.Slow {
		attrs = append(attrs, slog.Bool("slow", true))
		l.log.Warn("query", attrs...)
		return
	}
	l.log.Info("query", attrs...)
}

// Probe logs one served federated probe (the peer side of a remote round
// trip), carrying the caller's trace ID so a cross-node trace stitches in
// the logs.
func (l *QueryLog) Probe(traceID, relation string, accesses, tuples int, elapsed time.Duration) {
	if l == nil {
		return
	}
	l.log.Info("probe",
		slog.String("trace_id", traceID),
		slog.String("relation", relation),
		slog.Int("accesses", accesses),
		slog.Int("tuples", tuples),
		slog.Duration("elapsed", elapsed),
	)
}
