// Package obs is the observability layer of the Toorjah service: a
// dependency-free metrics registry rendered in the Prometheus text
// exposition format, a lightweight span-tree tracer carried through
// context.Context, and a structured query log. Every signal the system
// already collects point-in-time (exec.Result stats, cache per-relation
// stats, remote telemetry, ingest counters) becomes scrapeable time series
// here, and the hot-path instruments — counters and fixed-bucket
// histograms — are single atomic operations, so instrumented executions
// cost no locks and no allocations per probe.
//
// The package deliberately implements only what toorjahd needs of the
// Prometheus exposition format (counters, gauges, histograms with
// cumulative le buckets, HELP/TYPE comments, label escaping); it is not a
// client library. Quantiles (p50/p99/p999) are extracted from histogram
// buckets with the same linear interpolation Prometheus'
// histogram_quantile uses, for query logs and tests — the /metrics output
// exposes the raw buckets.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric families are one of the three Prometheus types this registry
// renders.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric. All methods are
// atomic and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable integer metric.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: Observe is a binary search
// plus two atomic adds, with no locking and no allocation, so it is safe
// on the per-round-trip hot path. Buckets are cumulative upper bounds in
// ascending order; the +Inf bucket is implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
}

// atomicFloat accumulates a float64 with a CAS loop (sync/atomic has no
// float add).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// NewStandaloneHistogram builds a histogram that is not attached to any
// registry — for callers (like the load harness) that want the lock-free
// bucket accounting and the shared quantile estimator without exposing the
// series on /metrics. Panics if the bounds are not strictly ascending; nil
// or empty buckets default to LatencyBuckets.
func NewStandaloneHistogram(buckets []float64) *Histogram { return newHistogram(buckets) }

// newHistogram validates and copies the bucket bounds.
func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	bounds := append([]float64(nil), buckets...)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", buckets))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; equal values belong to the
	// bucket (le = "less than or equal"), matching Prometheus semantics.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// Quantile extracts the q-quantile (0 < q <= 1, e.g. 0.5, 0.99, 0.999)
// from the buckets — the estimate QuantileFromBuckets computes, which is
// also what a scraper reconstructs from the text exposition, so the
// serving process and its observers always agree on a percentile. An empty
// histogram returns NaN; a rank falling in the +Inf bucket returns the
// highest finite bound (the histogram cannot see further).
func (h *Histogram) Quantile(q float64) float64 {
	return QuantileFromBuckets(h.bounds, h.CumulativeCounts(), q)
}

// CumulativeCounts snapshots the cumulative per-bucket counts — cum[i] is
// the number of observations <= bounds[i], exactly the `le` series of the
// text exposition — with one extra trailing entry for the implicit +Inf
// bucket (the total count).
func (h *Histogram) CumulativeCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Bounds returns the finite bucket upper bounds (shared, not copied; do
// not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// LatencyBuckets is the default histogram bucketing for durations in
// seconds: 0.5ms up to 10s, roughly logarithmic — wide enough for a cache
// hit and a cross-country federated probe to land in different buckets.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default bucketing for batch sizes (a distribution of
// small integers; MaxBatch defaults to 16, the protocol caps at 4096).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}

// family is one named metric family: a fixed type, help text and label
// names, with one series per distinct label-value combination — or a
// collector callback producing the series at scrape time.
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	buckets    []float64

	mu     sync.Mutex
	series map[string]any // label signature -> *Counter | *Gauge | *Histogram

	collect func(emit func(labelValues []string, value float64))
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Instrument registration (Counter, Histogram, …) is
// for setup time; the returned instruments are the hot-path handles.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// familyFor registers (or fetches) a family, panicking on a conflicting
// re-registration — metric names are a public contract, so a clash is a
// programming error, not a runtime condition.
func (r *Registry) familyFor(name, help, typ string, labelNames []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ,
			labelNames: append([]string(nil), labelNames...),
			series:     make(map[string]any)}
		r.fams[name] = f
		return f
	}
	if f.typ != typ || len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("obs: metric %s re-registered with a different type or labels", name))
	}
	return f
}

// seriesKey joins label values into the series map key.
func seriesKey(values []string) string { return strings.Join(values, "\x00") }

// instrument fetches or creates the series of one label combination.
func (f *family) instrument(values []string, create func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s: %d label values for %d labels", f.name, len(values), len(f.labelNames)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = create()
		f.series[key] = m
	}
	return m
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, TypeCounter, nil)
	return f.instrument(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels; resolve the per-series
// counters with With at setup time, not on the hot path.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.familyFor(name, help, TypeCounter, labelNames)}
}

// With returns the counter of one label-value combination.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.instrument(labelValues, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, TypeGauge, nil)
	return f.instrument(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers an unlabeled histogram; nil buckets means
// LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.familyFor(name, help, TypeHistogram, nil)
	f.buckets = buckets
	return f.instrument(nil, func() any { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labeled histogram family; nil buckets means
// LatencyBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	f := r.familyFor(name, help, TypeHistogram, labelNames)
	f.buckets = buckets
	return &HistogramVec{f: f, buckets: buckets}
}

// With returns the histogram of one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.instrument(labelValues, func() any { return newHistogram(v.buckets) }).(*Histogram)
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.familyFor(name, help, TypeGauge, nil)
	f.collect = func(emit func([]string, float64)) { emit(nil, fn()) }
}

// CounterFunc registers a counter computed at scrape time — for totals the
// service already accumulates elsewhere (an atomic served-request count, a
// stats snapshot); the callback must be monotone for the series to behave
// as a counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.familyFor(name, help, TypeCounter, nil)
	f.collect = func(emit func([]string, float64)) { emit(nil, fn()) }
}

// GaugeVecFunc registers a labeled gauge family collected at scrape time:
// collect is called per scrape and emits one sample per label combination.
func (r *Registry) GaugeVecFunc(name, help string, labelNames []string, collect func(emit func(labelValues []string, value float64))) {
	f := r.familyFor(name, help, TypeGauge, labelNames)
	f.collect = collect
}

// CounterVecFunc is GaugeVecFunc with counter semantics (the emitted
// values must be monotone per label combination).
func (r *Registry) CounterVecFunc(name, help string, labelNames []string, collect func(emit func(labelValues []string, value float64))) {
	f := r.familyFor(name, help, TypeCounter, labelNames)
	f.collect = collect
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; extra appends one more pair (used for
// the histogram le label).
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders every family in the Prometheus text exposition format,
// families and series in sorted order for deterministic output.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make(map[string]*family, len(r.fams))
	for n, f := range r.fams {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			type sample struct {
				labels string
				value  float64
			}
			var samples []sample
			f.collect(func(values []string, v float64) {
				samples = append(samples, sample{labelString(f.labelNames, values, "", ""), v})
			})
			sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
			for _, s := range samples {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.value))
			}
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		series := make(map[string]any, len(f.series))
		for k, m := range f.series {
			keys = append(keys, k)
			series[k] = m
		}
		f.mu.Unlock()
		sort.Strings(keys)
		for _, k := range keys {
			var values []string
			if k != "" || len(f.labelNames) > 0 {
				values = strings.Split(k, "\x00")
			}
			switch m := series[k].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labelNames, values, "", ""), formatValue(float64(m.Value())))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labelNames, values, "", ""), formatValue(float64(m.Value())))
			case *Histogram:
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labelNames, values, "le", formatValue(bound)), cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, values, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
					labelString(f.labelNames, values, "", ""), formatValue(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					labelString(f.labelNames, values, "", ""), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as a GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
