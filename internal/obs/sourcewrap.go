package obs

import (
	"context"
	"sync/atomic"
	"time"

	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
	"toorjah/internal/sym"
)

// Source-facing instrumentation. Two decorators, sitting on opposite sides
// of the cross-query cache in the executor's stack
//
//	demand( cache( probe( counter( snapshot ))))
//
// probe (inside the cache) measures what actually reaches a source: the
// per-relation access/round-trip/tuple counters, the probe latency and
// batch-size histograms, and the "probe" trace span. demand (outside the
// cache) counts every access the plan requested, cache hits included; the
// difference between demanded and probed accesses is the query's cache-hit
// count. Both record with single atomic operations — no locks, no
// allocations per probe — so the instrumented hot path stays within noise
// of the bare one.

// ProbeMetrics is the process-wide family handles fed by every
// instrumented execution. Construct once per service with
// NewProbeMetrics.
type ProbeMetrics struct {
	accesses   *CounterVec
	roundTrips *CounterVec
	tuples     *CounterVec
	duration   *Histogram
	batchSize  *Histogram
}

// NewProbeMetrics registers the source-level metric families on r.
func NewProbeMetrics(r *Registry) *ProbeMetrics {
	return &ProbeMetrics{
		accesses: r.CounterVec("toorjah_source_accesses_total",
			"Probes that reached the source (the paper's cost metric: bindings probed), by relation.", "relation"),
		roundTrips: r.CounterVec("toorjah_source_round_trips_total",
			"Round trips to the source (batches; accesses/round trips is the mean batch size), by relation.", "relation"),
		tuples: r.CounterVec("toorjah_source_tuples_total",
			"Tuples extracted from the source, by relation.", "relation"),
		duration: r.Histogram("toorjah_probe_duration_seconds",
			"Latency of one source round trip (a batch of accesses), in seconds.", LatencyBuckets),
		batchSize: r.Histogram("toorjah_probe_batch_size",
			"Accesses folded into one source round trip.", SizeBuckets),
	}
}

// ExecObs is the per-execution observability bundle the facade hands the
// executors: the shared probe metrics (nil when /metrics is not wired) and
// this execution's demanded-access counter. A nil *ExecObs disables both
// decorators.
type ExecObs struct {
	Probe    *ProbeMetrics
	demanded atomic.Int64
}

// Demanded returns the number of accesses the plan requested so far,
// cache hits included.
func (o *ExecObs) Demanded() int {
	if o == nil {
		return 0
	}
	return int(o.demanded.Load())
}

// WrapDemand decorates w with demanded-access counting; apply it above the
// cache. Returns w unchanged when o is nil.
func (o *ExecObs) WrapDemand(w source.Wrapper) source.Wrapper {
	if o == nil {
		return w
	}
	return &demandSource{inner: w, obs: o}
}

// WrapProbe decorates w with the probe metrics and the "probe" trace span;
// apply it below the cache, above the accounting Counter. Returns w
// unchanged when o (or its ProbeMetrics) is nil.
func (o *ExecObs) WrapProbe(w source.Wrapper) source.Wrapper {
	if o == nil || o.Probe == nil {
		return w
	}
	rel := w.Relation().Name
	return &probeSource{
		inner:      w,
		accesses:   o.Probe.accesses.With(rel),
		roundTrips: o.Probe.roundTrips.With(rel),
		tuples:     o.Probe.tuples.With(rel),
		duration:   o.Probe.duration,
		batchSize:  o.Probe.batchSize,
	}
}

// probeSource records each batch that reaches the source: counters,
// latency and batch-size histograms, and a "probe" span when the context
// carries a trace.
type probeSource struct {
	inner      source.Wrapper
	accesses   *Counter
	roundTrips *Counter
	tuples     *Counter
	duration   *Histogram
	batchSize  *Histogram
}

func (p *probeSource) Relation() *schema.Relation { return p.inner.Relation() }
func (p *probeSource) Epoch() uint64              { return source.EpochOf(p.inner) }

func (p *probeSource) Access(binding []string) ([]storage.Row, error) {
	rows, err := p.AccessBatch([][]string{binding})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

func (p *probeSource) AccessBatch(bindings [][]string) ([][]storage.Row, error) {
	//toorjahvet:allow ctx-first (contextless BatchSource interface shim over the ctx-aware form)
	return p.AccessBatchCtx(context.Background(), bindings)
}

func (p *probeSource) AccessBatchCtx(ctx context.Context, bindings [][]string) ([][]storage.Row, error) {
	start := time.Now()
	ctx, sp := StartSpan(ctx, "probe")
	sp.SetAttr("relation", p.inner.Relation().Name)
	sp.SetAttr("accesses", len(bindings))
	rows, err := source.ProbeBatchCtx(ctx, p.inner, bindings)
	p.duration.Observe(time.Since(start).Seconds())
	p.batchSize.Observe(float64(len(bindings)))
	p.roundTrips.Inc()
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	p.accesses.Add(int64(len(bindings)))
	var tuples int64
	for _, r := range rows {
		tuples += int64(len(r))
	}
	p.tuples.Add(tuples)
	sp.SetAttr("tuples", tuples)
	sp.End()
	return rows, nil
}

// AccessSyms records the batch exactly as AccessBatchCtx does while keeping
// the probe on the integer fast path (the instruments are counts and
// durations — they never need the values).
func (p *probeSource) AccessSyms(ctx context.Context, bindings [][]sym.ID) ([][]storage.IRow, error) {
	start := time.Now()
	ctx, sp := StartSpan(ctx, "probe")
	sp.SetAttr("relation", p.inner.Relation().Name)
	sp.SetAttr("accesses", len(bindings))
	rows, err := source.ProbeSyms(ctx, p.inner, bindings)
	p.duration.Observe(time.Since(start).Seconds())
	p.batchSize.Observe(float64(len(bindings)))
	p.roundTrips.Inc()
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	p.accesses.Add(int64(len(bindings)))
	var tuples int64
	for _, r := range rows {
		tuples += int64(len(r))
	}
	p.tuples.Add(tuples)
	sp.SetAttr("tuples", tuples)
	sp.End()
	return rows, nil
}

// demandSource counts the accesses a plan requests, before the cache gets
// a chance to absorb them.
type demandSource struct {
	inner source.Wrapper
	obs   *ExecObs
}

func (d *demandSource) Relation() *schema.Relation { return d.inner.Relation() }
func (d *demandSource) Epoch() uint64              { return source.EpochOf(d.inner) }

func (d *demandSource) Access(binding []string) ([]storage.Row, error) {
	d.obs.demanded.Add(1)
	return d.inner.Access(binding)
}

func (d *demandSource) AccessBatch(bindings [][]string) ([][]storage.Row, error) {
	//toorjahvet:allow ctx-first (contextless BatchSource interface shim over the ctx-aware form)
	return d.AccessBatchCtx(context.Background(), bindings)
}

func (d *demandSource) AccessBatchCtx(ctx context.Context, bindings [][]string) ([][]storage.Row, error) {
	d.obs.demanded.Add(int64(len(bindings)))
	return source.ProbeBatchCtx(ctx, d.inner, bindings)
}

// AccessSyms counts the demanded accesses and forwards the interned batch.
func (d *demandSource) AccessSyms(ctx context.Context, bindings [][]sym.ID) ([][]storage.IRow, error) {
	d.obs.demanded.Add(int64(len(bindings)))
	return source.ProbeSyms(ctx, d.inner, bindings)
}
