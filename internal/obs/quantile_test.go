package obs

import (
	"math"
	"strings"
	"testing"
)

// TestQuantileFromBucketsReference pins the estimator against exact values
// of a reference distribution: the integers 1..100 observed once each into
// decade buckets. Every decade bucket then holds exactly 10 observations,
// so linear interpolation reproduces the underlying uniform distribution
// exactly and the expected quantiles need no tolerance.
func TestQuantileFromBucketsReference(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := newHistogram(bounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	cases := []struct{ q, want float64 }{
		{0.5, 50},
		{0.9, 90},
		{0.99, 99},
		{0.999, 99.9},
		{0.05, 5},
		{1, 100},
	}
	for _, c := range cases {
		if got := QuantileFromBuckets(bounds, h.CumulativeCounts(), c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
		// The histogram's own method is the same estimator.
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Histogram.Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileFromBucketsEdgeCases(t *testing.T) {
	bounds := []float64{1, 2}
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram: got %v, want NaN", got)
	}
	if got := QuantileFromBuckets(bounds, []uint64{1, 2, 2}, 0); !math.IsNaN(got) {
		t.Errorf("q=0: got %v, want NaN", got)
	}
	if got := QuantileFromBuckets(bounds, []uint64{1, 2, 2}, 1.5); !math.IsNaN(got) {
		t.Errorf("q>1: got %v, want NaN", got)
	}
	if got := QuantileFromBuckets(nil, nil, 0.5); !math.IsNaN(got) {
		t.Errorf("no buckets: got %v, want NaN", got)
	}
	// Rank in the +Inf bucket clamps to the highest finite bound.
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 10}, 0.5); got != 2 {
		t.Errorf("+Inf rank: got %v, want 2", got)
	}
	// cum without the +Inf entry works too: the last finite count is the total.
	if got := QuantileFromBuckets(bounds, []uint64{2, 4}, 0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("no-inf cum: got %v, want 1", got)
	}
}

// TestScrapeQuantileMatchesHistogram proves the round trip the load harness
// relies on: serving process → text exposition → scrape → quantile equals
// the quantile the process computes on its own buckets.
func TestScrapeQuantileMatchesHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("toorjah_test_latency_seconds", "test latencies", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 2000) // 0 .. 0.4995
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := h.Quantile(q)
		got := sc.HistogramQuantile("toorjah_test_latency_seconds", q)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("q=%v: scrape %v, histogram %v", q, got, want)
		}
	}
	if got := sc.HistogramQuantile("toorjah_no_such_family", 0.5); !math.IsNaN(got) {
		t.Errorf("missing family: got %v, want NaN", got)
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE toorjah_build_info gauge",
		`toorjah_build_info{version=`,
		"# TYPE toorjah_goroutines gauge",
		"# TYPE toorjah_heap_objects_bytes gauge",
		"# TYPE toorjah_gc_cycles_total counter",
		"# TYPE toorjah_gc_pause_seconds_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	sc, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Sum("toorjah_goroutines"); got < 1 {
		t.Errorf("goroutines = %v, want >= 1", got)
	}
	if got := sc.Sum("toorjah_heap_objects_bytes"); got <= 0 {
		t.Errorf("heap bytes = %v, want > 0", got)
	}
}
