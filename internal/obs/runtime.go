package obs

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
)

// RegisterRuntimeMetrics adds the Go runtime's health gauges to a registry,
// collected at scrape time via runtime/metrics — no background goroutine,
// no sampling loop, each scrape reads the live values:
//
//	toorjah_build_info              constant 1, labeled with the module
//	                                version and Go toolchain
//	toorjah_goroutines              current goroutine count
//	toorjah_heap_objects_bytes      bytes of live heap objects
//	toorjah_gc_cycles_total         completed GC cycles
//	toorjah_gc_pause_seconds_total  cumulative stop-the-world GC pause time
//
// Registering twice on the same registry is safe (families are fetched, not
// re-created); the collectors are cheap enough to run on every scrape.
func RegisterRuntimeMetrics(r *Registry) {
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	goVersion := runtime.Version()
	r.GaugeVecFunc("toorjah_build_info",
		"Build metadata of the running binary; the value is always 1.",
		[]string{"version", "go"}, func(emit func([]string, float64)) {
			emit([]string{version, goVersion}, 1)
		})
	r.GaugeFunc("toorjah_goroutines",
		"Goroutines currently live in the process.",
		runtimeSample("/sched/goroutines:goroutines"))
	r.GaugeFunc("toorjah_heap_objects_bytes",
		"Bytes occupied by live heap objects (runtime/metrics /memory/classes/heap/objects:bytes).",
		runtimeSample("/memory/classes/heap/objects:bytes"))
	r.CounterFunc("toorjah_gc_cycles_total",
		"Completed garbage collection cycles since process start.",
		runtimeSample("/gc/cycles/total:gc-cycles"))
	r.CounterFunc("toorjah_gc_pause_seconds_total",
		"Cumulative stop-the-world garbage collection pause time.",
		runtimeSample("/sched/pauses/total/gc:seconds"))
}

// runtimeSample returns a collector reading one runtime/metrics sample. A
// histogram-valued metric (the GC pause distribution) collapses to the sum
// of its observations; an unsupported name reads as 0, so the series stays
// well-formed across Go versions.
func runtimeSample(name string) func() float64 {
	return func() float64 {
		sample := []metrics.Sample{{Name: name}}
		metrics.Read(sample)
		switch sample[0].Value.Kind() {
		case metrics.KindUint64:
			return float64(sample[0].Value.Uint64())
		case metrics.KindFloat64:
			return sample[0].Value.Float64()
		case metrics.KindFloat64Histogram:
			h := sample[0].Value.Float64Histogram()
			var sum float64
			for i, count := range h.Counts {
				// Midpoint estimate per bucket; the first and last buckets
				// may be unbounded, where the finite edge stands in.
				lo, hi := h.Buckets[i], h.Buckets[i+1]
				mid := (lo + hi) / 2
				switch {
				case lo < 0 || lo != lo: // -Inf or NaN lower edge
					mid = hi
				case hi != hi || hi > 1e300: // +Inf upper edge
					mid = lo
				}
				sum += float64(count) * mid
			}
			return sum
		}
		return 0
	}
}
