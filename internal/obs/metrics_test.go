package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration under the same name returns the same instrument.
	if r.Counter("test_total", "a counter") != c {
		t.Fatal("re-registered counter is a different instrument")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestCounterVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rel_total", "per relation", "relation")
	v.With("a").Add(2)
	v.With("b").Inc()
	v.With("a").Inc()
	if got := v.With("a").Value(); got != 3 {
		t.Fatalf("series a = %d, want 3", got)
	}
	if got := v.With("b").Value(); got != 1 {
		t.Fatalf("series b = %d, want 1", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 20} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := h.Sum(); math.Abs(got-38.5) > 1e-9 {
		t.Fatalf("sum = %g, want 38.5", got)
	}
	// p50: rank 4 falls in the (2,4] bucket (cum before it = 3, count 3);
	// interpolation gives 2 + 2*(1/3).
	if got, want := h.Quantile(0.5), 2+2.0/3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p50 = %g, want %g", got, want)
	}
	// A rank in the +Inf bucket clamps to the top finite bound.
	if got := h.Quantile(0.999); got != 8 {
		t.Fatalf("p999 = %g, want 8", got)
	}
	if !math.IsNaN(newHistogram([]float64{1}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" (equal belongs to the bucket)
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("bucket le=1 = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("bucket le=2 = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("bucket +Inf = %d, want 1", got)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_count_total", "a counter").Add(3)
	v := r.CounterVec("t_rel_total", "per relation", "relation")
	v.With("conf").Add(2)
	v.With(`we"ird\rel`).Inc()
	r.Gauge("t_gauge", "a gauge").Set(-1)
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("t_dynamic", "computed at scrape", func() float64 { return 42 })
	r.GaugeVecFunc("t_dyn_rel", "computed per relation", []string{"relation"},
		func(emit func([]string, float64)) {
			emit([]string{"b"}, 2)
			emit([]string{"a"}, 1)
		})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP t_count_total a counter\n# TYPE t_count_total counter\nt_count_total 3\n",
		`t_rel_total{relation="conf"} 2`,
		`t_rel_total{relation="we\"ird\\rel"} 1`,
		"t_gauge -1\n",
		"# TYPE t_lat_seconds histogram",
		`t_lat_seconds_bucket{le="0.01"} 0`,
		`t_lat_seconds_bucket{le="0.1"} 1`,
		`t_lat_seconds_bucket{le="1"} 2`,
		`t_lat_seconds_bucket{le="+Inf"} 3`,
		"t_lat_seconds_count 3\n",
		"t_dynamic 42\n",
		`t_dyn_rel{relation="a"} 1`,
		`t_dyn_rel{relation="b"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Families render in sorted order: deterministic scrapes.
	if strings.Index(out, "t_count_total") > strings.Index(out, "t_gauge") {
		t.Error("families not sorted")
	}
}

func TestWriteTextConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	v := r.CounterVec("c_rel_total", "per relation", "relation")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(0.005)
					v.With("r").Inc()
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		// Cumulative buckets must be monotone even mid-write.
		assertMonotoneBuckets(t, b.String(), "c_lat_seconds_bucket")
	}
	close(stop)
	wg.Wait()
}

// assertMonotoneBuckets parses the _bucket lines of one histogram family
// and fails if the cumulative counts ever decrease.
func assertMonotoneBuckets(t *testing.T, text, prefix string) {
	t.Helper()
	last := int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value %q: %v", fields[1], err)
		}
		if n < last {
			t.Fatalf("bucket counts not monotone: %d after %d in %q", n, last, line)
		}
		last = n
	}
	if last < 0 {
		t.Fatalf("no %s lines found", prefix)
	}
}
