package obs

import (
	"strings"
	"testing"
)

func TestParseExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("toorjah_test_hits_total", "hits", "rel")
	c.With("rev").Add(3)
	c.With("pub, \"quoted\"\nname").Add(4)
	r.Gauge("toorjah_test_temp", "temperature").Set(-7)
	h := r.Histogram("toorjah_test_sizes", "sizes", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseExposition: %v\nexposition:\n%s", err, b.String())
	}

	if got := sc.Value(`toorjah_test_hits_total{rel="rev"}`); got != 3 {
		t.Errorf("rev hits = %v, want 3", got)
	}
	if got := sc.Sum("toorjah_test_hits_total"); got != 7 {
		t.Errorf("total hits = %v, want 7", got)
	}
	if got := sc.Sum("toorjah_test_temp"); got != -7 {
		t.Errorf("gauge = %v, want -7", got)
	}
	if got := sc.Sum("toorjah_test_sizes_count"); got != 3 {
		t.Errorf("histogram count = %v, want 3", got)
	}
	if sc.Types["toorjah_test_hits_total"] != "counter" {
		t.Errorf("type = %q, want counter", sc.Types["toorjah_test_hits_total"])
	}
	if sc.Help["toorjah_test_temp"] != "temperature" {
		t.Errorf("help = %q, want temperature", sc.Help["toorjah_test_temp"])
	}

	// The escaped label survives the round trip.
	found := false
	for series := range sc.Samples {
		if v, ok := labelValue(series, "rel"); ok && v == "pub, \"quoted\"\nname" {
			found = true
		}
	}
	if !found {
		t.Error("escaped label value did not round-trip")
	}
}

func TestScrapeDeltaFrom(t *testing.T) {
	parse := func(text string) *Scrape {
		t.Helper()
		sc, err := ParseExposition(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	before := parse("toorjah_a_total 10\ntoorjah_b_total{x=\"1\"} 2\n")
	after := parse("toorjah_a_total 15\ntoorjah_b_total{x=\"1\"} 2\ntoorjah_c_total 4\n")

	d := after.DeltaFrom(before)
	if len(d) != 2 || d["toorjah_a_total"] != 5 || d["toorjah_c_total"] != 4 {
		t.Errorf("delta = %v, want a:+5 c:+4", d)
	}
	if got := after.SumDelta(before, "toorjah_a_total"); got != 5 {
		t.Errorf("SumDelta = %v, want 5", got)
	}
	if got := after.SumDelta(nil, "toorjah_c_total"); got != 4 {
		t.Errorf("SumDelta(nil) = %v, want 4", got)
	}
}

func TestParseExpositionMalformed(t *testing.T) {
	for _, bad := range []string{
		"toorjah_x_total notanumber",
		"toorjah_x_total",
		"}malformed{ 1",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition(%q): want error", bad)
		}
	}
}
