package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	s.SetAttr("k", 1)
	s.End()
	if c := s.Child("x"); c != nil {
		t.Fatal("nil span Child should return nil")
	}
	if d := s.Duration(); d != 0 {
		t.Fatal("nil span Duration should be 0")
	}
	// A context without a span yields nil spans from StartSpan, and the
	// context comes back unchanged.
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "probe")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a trace should be a no-op")
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTrace("abc123", "query")
	ctx := ContextWithSpan(context.Background(), tr.Root)
	ctx, d := StartSpan(ctx, "disjunct")
	d.SetAttr("index", 0)
	_, p := StartSpan(ctx, "probe")
	p.SetAttr("relation", "conf")
	p.End()
	d.End()
	tr.Root.End()

	j := tr.JSON()
	if j.Name != "query" || len(j.Children) != 1 {
		t.Fatalf("unexpected root: %+v", j)
	}
	dj := j.Children[0]
	if dj.Name != "disjunct" || dj.Attrs["index"] != 0 || len(dj.Children) != 1 {
		t.Fatalf("unexpected disjunct span: %+v", dj)
	}
	pj := dj.Children[0]
	if pj.Name != "probe" || pj.Attrs["relation"] != "conf" {
		t.Fatalf("unexpected probe span: %+v", pj)
	}
	if pj.StartMS < 0 || pj.DurMS < 0 {
		t.Fatalf("negative offsets: %+v", pj)
	}
}

func TestTraceIDContext(t *testing.T) {
	ctx := ContextWithTraceID(context.Background(), "deadbeef")
	if got := TraceIDFromContext(ctx); got != "deadbeef" {
		t.Fatalf("trace id = %q", got)
	}
	if got := TraceIDFromContext(context.Background()); got != "" {
		t.Fatalf("empty context trace id = %q", got)
	}
	var nilCtx context.Context
	if got := TraceIDFromContext(nilCtx); got != "" {
		t.Fatalf("nil context trace id = %q", got)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("ids %q, %q: want 16 hex digits", a, b)
	}
	if a == b {
		t.Fatal("two fresh trace IDs collided")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTrace("x", "query")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := tr.Root.Child("probe")
				c.SetAttr("n", j)
				c.End()
			}
		}()
	}
	// Serialize concurrently with the appends: JSON must not race.
	for i := 0; i < 20; i++ {
		tr.JSON()
	}
	wg.Wait()
	if got := len(tr.JSON().Children); got != 800 {
		t.Fatalf("children = %d, want 800", got)
	}
}

func TestQueryLogSlowThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewQueryLog(slog.New(slog.NewTextHandler(&buf, nil)), 50*time.Millisecond)

	l.Query(QueryRecord{TraceID: "aa", Query: "q(X) :- r(X)", Executor: "pipelined",
		Answers: 3, Accesses: 5, Demanded: 10, Elapsed: 10 * time.Millisecond})
	fast := buf.String()
	if !strings.Contains(fast, "level=INFO") || strings.Contains(fast, "slow=true") {
		t.Fatalf("fast query logged wrong: %s", fast)
	}
	if !strings.Contains(fast, "cache_hit_ratio=0.5") {
		t.Fatalf("cache hit ratio missing: %s", fast)
	}

	buf.Reset()
	l.Query(QueryRecord{TraceID: "bb", Query: "q(X) :- r(X)", Elapsed: 80 * time.Millisecond})
	slow := buf.String()
	if !strings.Contains(slow, "level=WARN") || !strings.Contains(slow, "slow=true") {
		t.Fatalf("slow query logged wrong: %s", slow)
	}

	// Nil log is a no-op.
	var nilLog *QueryLog
	nilLog.Query(QueryRecord{})
	nilLog.Probe("id", "r", 1, 1, time.Millisecond)
}

func TestCacheHitRatio(t *testing.T) {
	cases := []struct {
		demanded, probed int
		want             float64
	}{
		{0, 0, 0}, {10, 10, 0}, {10, 5, 0.5}, {4, 1, 0.75}, {5, 9, 0},
	}
	for _, c := range cases {
		r := QueryRecord{Demanded: c.demanded, Accesses: c.probed}
		if got := r.CacheHitRatio(); got != c.want {
			t.Errorf("ratio(%d,%d) = %g, want %g", c.demanded, c.probed, got, c.want)
		}
	}
}
