package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scrape is one parsed Prometheus text exposition — the read side of
// WriteText. A load harness scrapes a target's /metrics before and after a
// run and diffs the two scrapes, so the client-observed numbers and the
// server's own accounting land in one report.
type Scrape struct {
	// Samples maps the full series identity — `name{label="value",…}`
	// exactly as exposed — to its sample value.
	Samples map[string]float64
	// Help and Types map family names to their # HELP / # TYPE metadata.
	Help  map[string]string
	Types map[string]string
}

// ParseExposition parses the Prometheus text exposition format (the subset
// WriteText emits and any Prometheus endpoint serves): # HELP and # TYPE
// metadata lines, other comments ignored, and `name{labels} value` samples.
// Unparseable sample values are an error; timestamps after the value are
// tolerated and dropped.
func ParseExposition(r io.Reader) (*Scrape, error) {
	s := &Scrape{
		Samples: make(map[string]float64),
		Help:    make(map[string]string),
		Types:   make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			name, help, _ := strings.Cut(line[len("# HELP "):], " ")
			s.Help[name] = help
			continue
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, _ := strings.Cut(line[len("# TYPE "):], " ")
			s.Types[name] = typ
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		var series, rest string
		if open := strings.IndexByte(line, '{'); open >= 0 {
			// The label block ends at the last '}': label values are quoted
			// and escape '"' and '\', so no unquoted '}' precedes it.
			end := strings.LastIndexByte(line, '}')
			if end < open {
				return nil, fmt.Errorf("obs: malformed sample line %q", line)
			}
			series, rest = line[:end+1], strings.TrimSpace(line[end+1:])
		} else {
			var ok bool
			series, rest, ok = strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("obs: malformed sample line %q", line)
			}
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, fmt.Errorf("obs: sample line %q has no value", line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: sample line %q: %w", line, err)
		}
		s.Samples[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// seriesName strips the label block off a series identity.
func seriesName(series string) string {
	name, _, _ := strings.Cut(series, "{")
	return name
}

// labelValue extracts one label's (unescaped) value from a series
// identity, reporting whether the label is present.
func labelValue(series, label string) (string, bool) {
	_, block, ok := strings.Cut(series, "{")
	if !ok {
		return "", false
	}
	block = strings.TrimSuffix(block, "}")
	for block != "" {
		name, rest, ok := strings.Cut(block, `="`)
		if !ok {
			return "", false
		}
		// Consume the quoted value, honouring the \\ \" \n escapes of the
		// exposition format.
		var b strings.Builder
		i := 0
		for i < len(rest) && rest[i] != '"' {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				c = rest[i]
				if c == 'n' {
					c = '\n'
				}
			}
			b.WriteByte(c)
			i++
		}
		if i >= len(rest) { // unterminated value
			return "", false
		}
		if name == label {
			return b.String(), true
		}
		block = strings.TrimPrefix(rest[i+1:], ",")
	}
	return "", false
}

// Sum adds up every sample of the named family across its label
// combinations — `sum(name)` over one scrape. Zero when absent.
func (s *Scrape) Sum(name string) float64 {
	var sum float64
	for series, v := range s.Samples {
		if seriesName(series) == name {
			sum += v
		}
	}
	return sum
}

// Value returns one exact series' sample, or 0 when absent.
func (s *Scrape) Value(series string) float64 { return s.Samples[series] }

// DeltaFrom subtracts an earlier scrape series-by-series, keeping only
// series that moved (series absent from the earlier scrape count from 0).
// For the counter-dominated expositions toorjahd serves, the result is
// "what this run did to the server".
func (s *Scrape) DeltaFrom(before *Scrape) map[string]float64 {
	out := make(map[string]float64)
	for series, v := range s.Samples {
		var prev float64
		if before != nil {
			prev = before.Samples[series]
		}
		if d := v - prev; d != 0 {
			out[series] = d
		}
	}
	return out
}

// SumDelta is Sum(name) minus the earlier scrape's Sum(name).
func (s *Scrape) SumDelta(before *Scrape, name string) float64 {
	var prev float64
	if before != nil {
		prev = before.Sum(name)
	}
	return s.Sum(name) - prev
}

// HistogramQuantile reconstructs the q-quantile of the named histogram
// family from its `_bucket` series, aggregated across every label
// combination (Prometheus' `histogram_quantile(q, sum by (le) (...))`) via
// the same estimator the serving process uses. NaN when the family has no
// buckets or no observations.
func (s *Scrape) HistogramQuantile(name string, q float64) float64 {
	byBound := make(map[float64]uint64)
	var inf uint64
	for series, v := range s.Samples {
		if seriesName(series) != name+"_bucket" {
			continue
		}
		le, ok := labelValue(series, "le")
		if !ok {
			continue
		}
		if le == "+Inf" {
			inf += uint64(v)
			continue
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		byBound[bound] += uint64(v)
	}
	if len(byBound) == 0 {
		return math.NaN()
	}
	bounds := make([]float64, 0, len(byBound))
	for b := range byBound {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	cum := make([]uint64, 0, len(bounds)+1)
	for _, b := range bounds {
		cum = append(cum, byBound[b])
	}
	cum = append(cum, inf)
	return QuantileFromBuckets(bounds, cum, q)
}
