package obs

import "math"

// QuantileFromBuckets estimates the q-quantile (0 < q <= 1; 0.5, 0.99,
// 0.999) of a distribution known only through Prometheus-style cumulative
// histogram buckets: bounds are the ascending finite `le` upper bounds and
// cum[i] counts the observations <= bounds[i]. cum may carry one extra
// trailing entry for the implicit +Inf bucket; either way its last entry is
// the total observation count. The estimate interpolates linearly within
// the bucket the rank falls in — the same arithmetic Prometheus'
// histogram_quantile performs at scrape time — so a client that only ever
// saw the text exposition computes the exact same percentile the serving
// process would. A rank falling beyond the last finite bound returns that
// bound (the histogram cannot see further); an empty histogram or an
// out-of-range q returns NaN.
func QuantileFromBuckets(bounds []float64, cum []uint64, q float64) float64 {
	if len(bounds) == 0 || len(cum) < len(bounds) || q <= 0 || q > 1 {
		return math.NaN()
	}
	total := float64(cum[len(cum)-1])
	if total == 0 {
		return math.NaN()
	}
	rank := q * total
	for i, bound := range bounds {
		c := float64(cum[i])
		if c < rank {
			continue
		}
		lower, prev := 0.0, 0.0
		if i > 0 {
			lower, prev = bounds[i-1], float64(cum[i-1])
		}
		if c == prev { // defensively: an empty bucket cannot hold the rank
			return bound
		}
		return lower + (bound-lower)*((rank-prev)/(c-prev))
	}
	return bounds[len(bounds)-1]
}
