package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Tracing: a per-query span tree carried through context.Context. A trace
// ID is generated for every query (it feeds the query log and propagates
// to federated peers in the X-Toorjah-Trace header); the span tree itself
// is only built when the client asks for it (?trace=1), so the off path
// costs one context value lookup per probe batch and nothing else. All
// *Span methods are nil-safe: instrumented code calls StartSpan
// unconditionally and gets a nil span (a no-op) when tracing is off.

// TraceHeader is the HTTP header carrying the query's trace ID to
// federated peers on /probe, so one query's trace stitches across nodes.
const TraceHeader = "X-Toorjah-Trace"

// NewTraceID returns a fresh 16-hex-digit random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed ID rather than panicking inside a query.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one node of the trace tree. Attrs and children are mutex-guarded
// because executors probe concurrently (pipeline workers, union
// disjuncts). A nil *Span is a valid no-op receiver for every method.
type Span struct {
	Name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]any
	children []*Span
}

// Trace is the root of one query's span tree.
type Trace struct {
	ID   string
	Root *Span
}

// NewTrace starts a trace with the given ID and a root span.
func NewTrace(id, rootName string) *Trace {
	return &Trace{ID: id, Root: newSpan(rootName)}
}

func newSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// Child starts a child span under s; returns nil (a no-op span) if s is
// nil, so callers never branch on tracing being enabled.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span (idempotent; a span left open renders with the
// duration up to serialization).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Duration returns the span's elapsed time (up to now if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanJSON is the wire form of a span, with start offsets relative to the
// trace root so the tree is self-contained.
type SpanJSON struct {
	Name     string         `json:"name"`
	StartMS  float64        `json:"start_ms"`
	DurMS    float64        `json:"dur_ms"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanJSON     `json:"children,omitempty"`
}

// JSON serializes the trace's span tree (ending any still-open spans'
// rendering at now). Safe to call while spans are still being appended —
// each span's lock is taken while its fields are copied.
func (t *Trace) JSON() SpanJSON {
	if t == nil || t.Root == nil {
		return SpanJSON{}
	}
	return t.Root.toJSON(t.Root.start)
}

func (s *Span) toJSON(origin time.Time) SpanJSON {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	out := SpanJSON{
		Name:    s.Name,
		StartMS: float64(s.start.Sub(origin)) / float64(time.Millisecond),
		DurMS:   float64(end.Sub(s.start)) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.toJSON(origin))
	}
	return out
}

// Context plumbing. Two independent keys: the trace ID (always present for
// a served query — feeds logs and the peer header) and the current span
// (present only when span collection is on).

type ctxKey int

const (
	ctxKeyTraceID ctxKey = iota
	ctxKeySpan
)

// ContextWithTraceID attaches a trace ID to the context.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyTraceID, id)
}

// TraceIDFromContext returns the context's trace ID, or "".
func TraceIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKeyTraceID).(string)
	return id
}

// ContextWithSpan attaches the current span to the context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeySpan, s)
}

// SpanFromContext returns the context's current span, or nil (a no-op
// span) when tracing is off.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKeySpan).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns the
// derived context carrying it. When the context has no span (tracing off),
// it returns the context unchanged and a nil span — both no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.Child(name)
	return context.WithValue(ctx, ctxKeySpan, c), c
}
