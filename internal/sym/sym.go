// Package sym provides the process-wide value interning of the engine: an
// append-only, concurrency-safe symbol table mapping every data value to a
// dense uint32 ID. The paper's cost model is the number of accesses — but a
// long-running service spends its *wall clock* on string plumbing: joining
// values into NUL-separated map keys, hashing variable-length strings on
// every probe, and dragging pointer-dense []string tuples through the GC.
// Interning every value once — at ingest, CSV load, query-constant parse and
// remote-decode time — lets the whole engine below those boundaries run on
// integer tuples: storage rows, executor dedup sets, cross-query cache keys
// and Datalog relations all key on packed uint32s, and strings materialize
// again only at the result/NDJSON boundary.
//
// IDs are stable for the life of the process: the table is append-only (an
// interned value is never removed or renumbered), so IDs — and every key
// packed from them — survive table snapshots, compactions and data epochs.
// That epoch-stability is what lets the cross-query cache keep serving
// entries keyed by packed IDs while relations advance underneath it.
//
// The zero ID is never issued; it is reserved as "no value" so packed keys
// and sentinel slots stay unambiguous.
package sym

import (
	"sync"
	"sync/atomic"
)

// ID is an interned value: a dense handle into the symbol table. IDs start
// at 1; 0 is reserved and never issued.
type ID uint32

// shardCount must be a power of two; 64 shards keep concurrent interning
// from remote decodes and parallel ingests from contending.
const shardCount = 64

// Table is an append-only, concurrency-safe symbol table. The zero value is
// not usable; use NewTable (or the package-level Default table, which the
// storage, cache and executor layers share — one process, one ID space).
type Table struct {
	// next is the next ID to issue; IDs are dense and start at 1.
	next atomic.Uint32

	// shards hold the forward map (value -> ID), sharded by value hash so
	// concurrent interning scales.
	shards [shardCount]shard

	// strs is the reverse map (ID -> value), grown in fixed-size pages that
	// are published once and never moved, so Str reads are lock-free: a
	// page pointer is written exactly once (under its shard-independent
	// pageMu) and the ID's slot is written before the forward map publishes
	// the ID.
	pages  atomic.Pointer[[]*page]
	pageMu sync.Mutex
}

type shard struct {
	mu sync.RWMutex
	m  map[string]ID
}

// pageSize is the number of symbols per reverse-lookup page (power of two).
const pageSize = 1 << 12

type page [pageSize]atomic.Pointer[string]

// NewTable creates an empty symbol table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[string]ID)
	}
	empty := make([]*page, 0)
	t.pages.Store(&empty)
	return t
}

// Default is the process-wide symbol table: storage tables, the cross-query
// cache and the executors all intern through it, so an ID means the same
// value everywhere in the process.
var Default = NewTable()

// hash is FNV-1a; inlined so the intern fast path does not allocate.
func hash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Intern returns the ID of v, issuing a fresh one the first time v is seen.
// Safe for concurrent use; the common case (already interned) is one shard
// read-lock and one map hit.
func (t *Table) Intern(v string) ID {
	sh := &t.shards[hash(v)&(shardCount-1)]
	sh.mu.RLock()
	id, ok := sh.m[v]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok = sh.m[v]; ok {
		return id
	}
	id = ID(t.next.Add(1))
	t.store(id, v)
	// The reverse slot is visible before the forward map publishes the ID,
	// so any goroutine that can observe the ID can resolve it.
	sh.m[v] = id
	return id
}

// store writes the reverse-lookup slot for a freshly issued ID, growing the
// page directory when the ID lands past it.
func (t *Table) store(id ID, v string) {
	pi := int(uint32(id) / pageSize)
	for {
		pages := *t.pages.Load()
		if pi < len(pages) {
			pages[pi][uint32(id)%pageSize].Store(&v)
			return
		}
		t.pageMu.Lock()
		pages = *t.pages.Load()
		if pi >= len(pages) {
			grown := make([]*page, len(pages), pi+1)
			copy(grown, pages)
			for len(grown) <= pi {
				grown = append(grown, new(page))
			}
			t.pages.Store(&grown)
		}
		t.pageMu.Unlock()
	}
}

// Lookup returns the ID of v without interning it; ok is false when v has
// never been interned. Read paths (probes of values that may not exist in
// any relation) use Lookup so that queries for absent values cannot grow
// the table.
func (t *Table) Lookup(v string) (ID, bool) {
	sh := &t.shards[hash(v)&(shardCount-1)]
	sh.mu.RLock()
	id, ok := sh.m[v]
	sh.mu.RUnlock()
	return id, ok
}

// Str returns the value of an interned ID. Lock-free: one atomic page-
// directory load and one atomic slot load. IDs never issued (or 0) return
// the empty string.
func (t *Table) Str(id ID) string {
	if id == 0 {
		return ""
	}
	pages := *t.pages.Load()
	pi := int(uint32(id) / pageSize)
	if pi >= len(pages) {
		return ""
	}
	p := pages[pi][uint32(id)%pageSize].Load()
	if p == nil {
		return ""
	}
	return *p
}

// Len returns the number of interned symbols.
func (t *Table) Len() int { return int(t.next.Load()) }

// InternAll interns every value of a row and returns the ID tuple.
func (t *Table) InternAll(vals []string) []ID {
	out := make([]ID, len(vals))
	for i, v := range vals {
		out[i] = t.Intern(v)
	}
	return out
}

// LookupAll resolves every value of a row without interning; ok is false —
// and the returned slice nil — when any value has never been interned
// (such a row cannot match anything stored anywhere in the process).
func (t *Table) LookupAll(vals []string) ([]ID, bool) {
	out := make([]ID, len(vals))
	for i, v := range vals {
		id, ok := t.Lookup(v)
		if !ok {
			return nil, false
		}
		out[i] = id
	}
	return out, true
}

// StrsAppend materializes ids into dst (reusing its capacity) and returns
// it; the boundary layers use it to render answer tuples without a fresh
// allocation per row.
func (t *Table) StrsAppend(dst []string, ids []ID) []string {
	if cap(dst) < len(ids) {
		dst = make([]string, len(ids))
	}
	dst = dst[:len(ids)]
	for i, id := range ids {
		dst[i] = t.Str(id)
	}
	return dst
}

// Strs materializes an ID tuple back into strings.
func (t *Table) Strs(ids []ID) []string {
	return t.StrsAppend(make([]string, len(ids)), ids)
}

// Package-level conveniences over the Default table.

// Intern interns v in the Default table.
func Intern(v string) ID { return Default.Intern(v) }

// Lookup resolves v in the Default table without interning.
func Lookup(v string) (ID, bool) { return Default.Lookup(v) }

// Str resolves an ID in the Default table.
func Str(id ID) string { return Default.Str(id) }

// InternAll interns a row in the Default table.
func InternAll(vals []string) []ID { return Default.InternAll(vals) }

// LookupAll resolves a row in the Default table without interning.
func LookupAll(vals []string) ([]ID, bool) { return Default.LookupAll(vals) }

// Strs materializes a row from the Default table.
func Strs(ids []ID) []string { return Default.Strs(ids) }

// AppendKey appends the 4-byte big-endian encoding of every ID to dst and
// returns it: the packed-key primitive shared by storage indexes, executor
// dedup sets and cache keys. Packing is collision-free by construction
// (fixed width), unlike NUL-joined strings, and the resulting keys hash in
// a handful of words.
func AppendKey(dst []byte, ids []ID) []byte {
	for _, id := range ids {
		dst = append(dst, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return dst
}

// Key packs an ID tuple into a map key string.
func Key(ids []ID) string { return string(AppendKey(nil, ids)) }
