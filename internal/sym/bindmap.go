package sym

// PackBinding packs a binding of at most two IDs injectively into one
// uint64. IDs are 32-bit and never zero (0 is reserved), so [] maps to 0,
// [a] to a, and [a b] to a<<32|b without collisions across arities. ok is
// false for longer bindings, which take the packed-string fallback.
func PackBinding(b []ID) (uint64, bool) {
	switch len(b) {
	case 0:
		return 0, true
	case 1:
		return uint64(b[0]), true
	case 2:
		return uint64(b[0])<<32 | uint64(b[1]), true
	}
	return 0, false
}

// BindMap is a map keyed by bindings of interned IDs. Bindings of up to
// two IDs — virtually every access pattern of the paper's workloads — key
// an integer map directly, so the hot paths hash one machine word and
// materialize no string; bindings of three or more IDs fall back to a map
// on packed keys. The zero value is ready to use.
type BindMap[V any] struct {
	packed map[uint64]V
	long   map[string]V
}

// Get returns the value stored under binding b.
func (m *BindMap[V]) Get(b []ID) (V, bool) {
	if k, ok := PackBinding(b); ok {
		v, found := m.packed[k]
		return v, found
	}
	v, found := m.long[string(AppendKey(nil, b))]
	return v, found
}

// Put stores v under binding b; b is not retained.
func (m *BindMap[V]) Put(b []ID, v V) {
	if k, ok := PackBinding(b); ok {
		if m.packed == nil {
			m.packed = make(map[uint64]V)
		}
		m.packed[k] = v
		return
	}
	if m.long == nil {
		m.long = make(map[string]V)
	}
	m.long[string(AppendKey(nil, b))] = v
}

// Delete removes the entry stored under binding b, if any.
func (m *BindMap[V]) Delete(b []ID) {
	if k, ok := PackBinding(b); ok {
		delete(m.packed, k)
		return
	}
	delete(m.long, string(AppendKey(nil, b)))
}

// Clear removes every entry while keeping the allocated bucket capacity,
// making the map ready for pooled reuse.
func (m *BindMap[V]) Clear() {
	clear(m.packed)
	clear(m.long)
}

// Len returns the number of entries.
func (m *BindMap[V]) Len() int { return len(m.packed) + len(m.long) }

// Range calls f for every entry until f returns false. The binding slice
// passed to f is reused between calls for packed entries; f must copy it
// if it keeps it.
func (m *BindMap[V]) Range(f func(b []ID, v V) bool) {
	var buf [2]ID
	for k, v := range m.packed {
		var b []ID
		switch {
		case k == 0:
			b = buf[:0]
		case k>>32 == 0:
			buf[0] = ID(k)
			b = buf[:1]
		default:
			buf[0] = ID(k >> 32)
			buf[1] = ID(k)
			b = buf[:2]
		}
		if !f(b, v) {
			return
		}
	}
	for s, v := range m.long {
		ids := make([]ID, 0, len(s)/4)
		for i := 0; i+4 <= len(s); i += 4 {
			ids = append(ids, ID(s[i])<<24|ID(s[i+1])<<16|ID(s[i+2])<<8|ID(s[i+3]))
		}
		if !f(ids, v) {
			return
		}
	}
}
