package sym_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"toorjah/internal/storage"
	"toorjah/internal/sym"
)

// TestInternRoundTrip is the basic interning property: on a stream of
// random values (with duplicates, NULs, unicode, and the empty-adjacent
// cases), Intern is idempotent, Str inverts it, Lookup agrees with Intern,
// and the table issues dense IDs starting at 1.
func TestInternRoundTrip(t *testing.T) {
	tab := sym.NewTable()
	rng := rand.New(rand.NewSource(1))
	values := []string{"a", "\x00", "a\x00b", "héllo wörld", "0"}
	for i := 0; i < 2000; i++ {
		values = append(values, fmt.Sprintf("v%d", rng.Intn(700)))
	}

	ids := map[string]sym.ID{}
	seen := map[sym.ID]bool{}
	for _, v := range values {
		id := tab.Intern(v)
		if id == 0 {
			t.Fatalf("Intern(%q) issued the reserved zero ID", v)
		}
		if prev, ok := ids[v]; ok {
			if prev != id {
				t.Fatalf("Intern(%q) unstable: %d then %d", v, prev, id)
			}
		} else {
			if seen[id] {
				t.Fatalf("Intern(%q) reused ID %d", v, id)
			}
			ids[v] = id
			seen[id] = true
		}
		if got := tab.Str(id); got != v {
			t.Fatalf("Str(Intern(%q)) = %q", v, got)
		}
		if lid, ok := tab.Lookup(v); !ok || lid != id {
			t.Fatalf("Lookup(%q) = %d,%v; want %d,true", v, lid, ok, id)
		}
	}
	if tab.Len() != len(ids) {
		t.Errorf("Len() = %d, want %d distinct values", tab.Len(), len(ids))
	}
	for v, id := range ids {
		if uint32(id) > uint32(len(ids)) {
			t.Errorf("ID %d for %q not dense (only %d symbols)", id, v, len(ids))
		}
	}
}

// TestLookupAndStrOfAbsent pins the read-path contracts: Lookup never
// interns, and Str of the zero or a never-issued ID is the empty string.
func TestLookupAndStrOfAbsent(t *testing.T) {
	tab := sym.NewTable()
	tab.Intern("present")
	before := tab.Len()
	if _, ok := tab.Lookup("absent"); ok {
		t.Error("Lookup of an absent value reported ok")
	}
	if tab.Len() != before {
		t.Errorf("Lookup grew the table: %d -> %d", before, tab.Len())
	}
	if got := tab.Str(0); got != "" {
		t.Errorf("Str(0) = %q, want \"\"", got)
	}
	if got := tab.Str(1 << 20); got != "" {
		t.Errorf("Str(never issued) = %q, want \"\"", got)
	}
	if ids, ok := tab.LookupAll([]string{"present", "absent"}); ok || ids != nil {
		t.Errorf("LookupAll with an absent value = %v,%v; want nil,false", ids, ok)
	}
}

// TestInternPageGrowth interns several pages' worth of symbols so the
// reverse-lookup directory has to grow, then verifies every ID — including
// those issued before the growth — still resolves.
func TestInternPageGrowth(t *testing.T) {
	tab := sym.NewTable()
	const n = 3*4096 + 17
	ids := make([]sym.ID, n)
	for i := 0; i < n; i++ {
		ids[i] = tab.Intern(fmt.Sprintf("sym-%d", i))
	}
	for i, id := range ids {
		if got, want := tab.Str(id), fmt.Sprintf("sym-%d", i); got != want {
			t.Fatalf("after page growth Str(%d) = %q, want %q", id, got, want)
		}
	}
}

// TestConcurrentIntern is the -race property: goroutines interning heavily
// overlapping value sets must agree on every ID, resolve every ID back to
// its value mid-flight, and leave exactly one ID per distinct value.
func TestConcurrentIntern(t *testing.T) {
	tab := sym.NewTable()
	const goroutines = 16
	const distinct = 3000

	results := make([][]sym.ID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			out := make([]sym.ID, distinct)
			for _, i := range rng.Perm(distinct) {
				v := fmt.Sprintf("shared-%d", i)
				id := tab.Intern(v)
				out[i] = id
				if got := tab.Str(id); got != v {
					t.Errorf("g%d: Str(Intern(%q)) = %q mid-flight", g, v, got)
					return
				}
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutines disagree on shared-%d: %d vs %d", i, results[g][i], results[0][i])
			}
		}
	}
	if tab.Len() != distinct {
		t.Errorf("Len() = %d, want %d", tab.Len(), distinct)
	}
}

// TestKeyInjectivity: packed keys collide only when the ID tuples are
// equal — the property that lets dedup sets and cache keys hash packed
// bytes instead of NUL-joined strings (which DO collide on values
// containing the separator).
func TestKeyInjectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[string][]sym.ID{}
	var buf []byte
	for i := 0; i < 20000; i++ {
		ids := make([]sym.ID, rng.Intn(5))
		for j := range ids {
			ids[j] = sym.ID(rng.Intn(500) + 1)
		}
		buf = sym.AppendKey(buf[:0], ids)
		k := string(buf)
		if k != sym.Key(ids) {
			t.Fatal("AppendKey and Key disagree")
		}
		if prev, ok := seen[k]; ok {
			if len(prev) != len(ids) {
				t.Fatalf("key collision across arities: %v vs %v", prev, ids)
			}
			for j := range ids {
				if prev[j] != ids[j] {
					t.Fatalf("key collision: %v vs %v", prev, ids)
				}
			}
		} else {
			seen[k] = append([]sym.ID(nil), ids...)
		}
	}
}

// TestIDStabilityAcrossSnapshotsAndCompaction is the epoch-stability
// contract the cross-query cache rests on: IDs recorded in a storage
// snapshot keep resolving to the same values — and the forward map keeps
// returning the same IDs — after the table underneath churns through
// deletes, compaction and new epochs full of fresh symbols.
func TestIDStabilityAcrossSnapshotsAndCompaction(t *testing.T) {
	tab := storage.NewTable("r", 2)
	for i := 0; i < 200; i++ {
		tab.Insert(storage.Row{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)})
	}
	snap := tab.Snapshot()
	pinnedRows := snap.RowsSym()
	pinnedIDs := make([][]sym.ID, len(pinnedRows))
	pinnedStrs := make([][]string, len(pinnedRows))
	for i, r := range pinnedRows {
		pinnedIDs[i] = append([]sym.ID(nil), r...)
		pinnedStrs[i] = r.Strings()
	}

	// Churn: delete most rows (driving the dead fraction past the
	// compaction threshold), then insert fresh values across many epochs.
	for i := 0; i < 180; i++ {
		tab.Delete(storage.Row{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)})
	}
	for i := 0; i < 5000; i++ {
		tab.Insert(storage.Row{fmt.Sprintf("churn%d", i), fmt.Sprintf("w%d", i)})
	}
	if tab.Epoch() <= snap.Epoch() {
		t.Fatalf("churn did not advance the epoch: %d <= %d", tab.Epoch(), snap.Epoch())
	}

	for i, ids := range pinnedIDs {
		for j, id := range ids {
			if got := sym.Str(id); got != pinnedStrs[i][j] {
				t.Fatalf("ID %d renumbered: Str = %q, snapshot had %q", id, got, pinnedStrs[i][j])
			}
			if again, ok := sym.Lookup(pinnedStrs[i][j]); !ok || again != id {
				t.Fatalf("Lookup(%q) = %d,%v after churn; snapshot had %d", pinnedStrs[i][j], again, ok, id)
			}
		}
	}
	// The pinned snapshot still materializes its original contents.
	for i, r := range snap.RowsSym() {
		for j, id := range r {
			if id != pinnedIDs[i][j] {
				t.Fatalf("snapshot row %d changed: %v vs %v", i, r, pinnedIDs[i])
			}
		}
	}
}
