package sym_test

import (
	"math/rand"
	"testing"

	"toorjah/internal/sym"
)

// TestPackBinding pins the packing scheme: arities 0–2 pack injectively
// (IDs are nonzero 32-bit, so the three arity ranges cannot overlap),
// longer bindings refuse.
func TestPackBinding(t *testing.T) {
	if k, ok := sym.PackBinding(nil); !ok || k != 0 {
		t.Errorf("PackBinding(nil) = %d,%v", k, ok)
	}
	if k, ok := sym.PackBinding([]sym.ID{7}); !ok || k != 7 {
		t.Errorf("PackBinding([7]) = %d,%v", k, ok)
	}
	if k, ok := sym.PackBinding([]sym.ID{1, 2}); !ok || k != 1<<32|2 {
		t.Errorf("PackBinding([1 2]) = %d,%v", k, ok)
	}
	if _, ok := sym.PackBinding([]sym.ID{1, 2, 3}); ok {
		t.Error("PackBinding of arity 3 must refuse")
	}

	rng := rand.New(rand.NewSource(3))
	seen := map[uint64][]sym.ID{}
	for i := 0; i < 20000; i++ {
		b := make([]sym.ID, rng.Intn(3))
		for j := range b {
			b[j] = sym.ID(rng.Uint32() | 1) // nonzero, full 32-bit range
		}
		k, ok := sym.PackBinding(b)
		if !ok {
			t.Fatalf("PackBinding(%v) refused", b)
		}
		if prev, dup := seen[k]; dup && !equalIDs(prev, b) {
			t.Fatalf("packed collision: %v and %v -> %d", prev, b, k)
		} else if !dup {
			seen[k] = append([]sym.ID(nil), b...)
		}
	}
}

func equalIDs(a, b []sym.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBindMapAgainstReference drives a BindMap with random Put/Get/Delete
// over bindings of arity 0–4 — crossing the packed/long boundary — and
// checks every observation against a plain map keyed on packed strings.
func TestBindMapAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var m sym.BindMap[int] // zero value must be ready
	ref := map[string]int{}

	randBinding := func() []sym.ID {
		b := make([]sym.ID, rng.Intn(5))
		for j := range b {
			b[j] = sym.ID(rng.Intn(40) + 1)
		}
		return b
	}
	for i := 0; i < 30000; i++ {
		b := randBinding()
		k := sym.Key(b)
		switch rng.Intn(4) {
		case 0, 1:
			m.Put(b, i)
			ref[k] = i
		case 2:
			got, ok := m.Get(b)
			want, wok := ref[k]
			if ok != wok || got != want {
				t.Fatalf("Get(%v) = %d,%v; want %d,%v", b, got, ok, want, wok)
			}
		case 3:
			m.Delete(b)
			delete(ref, k)
		}
		if m.Len() != len(ref) {
			t.Fatalf("Len() = %d, want %d", m.Len(), len(ref))
		}
	}

	// Range must visit exactly the reference entries; packed bindings are
	// delivered in a reused buffer, so the collector copies.
	got := map[string]int{}
	m.Range(func(b []sym.ID, v int) bool {
		got[sym.Key(b)] = v
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("Range missed or mangled %q: %d vs %d", k, got[k], v)
		}
	}

	// Early-stop Range visits exactly one entry.
	visits := 0
	m.Range(func([]sym.ID, int) bool { visits++; return false })
	if m.Len() > 0 && visits != 1 {
		t.Errorf("early-stop Range visited %d entries", visits)
	}
}

// TestBindMapClear: Clear empties both the packed and the long side while
// leaving the map ready for pooled reuse.
func TestBindMapClear(t *testing.T) {
	var m sym.BindMap[struct{}]
	short := []sym.ID{1, 2}
	long := []sym.ID{1, 2, 3, 4}
	m.Put(short, struct{}{})
	m.Put(long, struct{}{})
	if m.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", m.Len())
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len() after Clear = %d", m.Len())
	}
	if _, ok := m.Get(short); ok {
		t.Error("packed entry survived Clear")
	}
	if _, ok := m.Get(long); ok {
		t.Error("long entry survived Clear")
	}
	m.Put(long, struct{}{})
	if _, ok := m.Get(long); !ok || m.Len() != 1 {
		t.Error("BindMap not reusable after Clear")
	}
}
