package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: toorjah
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig6_Q1_Naive-8         	       1	  5301883 ns/op	       363.0 accesses
BenchmarkFig6_Q1_Optimized-8     	       1	   346048 ns/op	        32.00 accesses
BenchmarkBatchPipelined_Batch16-8	       3	 12265846 ns/op	        46.00 accesses	        10.00 roundtrips
BenchmarkCrossQuery_Cached-8     	     100	    12345 ns/op	         0 accesses/op
PASS
ok  	toorjah	2.345s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkFig6_Q1_Naive" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", r.Name)
	}
	if r.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", r.Iterations)
	}
	if r.Metrics["ns/op"] != 5301883 || r.Metrics["accesses"] != 363 {
		t.Errorf("metrics = %v", r.Metrics)
	}
	if got := results[2].Metrics["roundtrips"]; got != 10 {
		t.Errorf("roundtrips = %v, want 10", got)
	}
}

func TestParseKeepsLastDuplicate(t *testing.T) {
	in := "BenchmarkX-4 1 100 ns/op 5 accesses\nBenchmarkX-4 1 200 ns/op 7 accesses\n"
	results, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Metrics["accesses"] != 7 {
		t.Errorf("results = %v, want single entry keeping the last run", results)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip lost results: %d vs %d", len(back), len(results))
	}
	// WriteJSON sorts by name.
	for i := 1; i < len(back); i++ {
		if back[i-1].Name > back[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", back[i-1].Name, back[i].Name)
		}
	}
}

func mk(name string, metrics map[string]float64) Result {
	return Result{Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompareGatesCounts(t *testing.T) {
	base := []Result{mk("BenchmarkA", map[string]float64{"accesses": 100, "ns/op": 5e6})}
	cur := []Result{mk("BenchmarkA", map[string]float64{"accesses": 130, "ns/op": 5e6})}
	regs := Compare(base, cur, Thresholds{Count: 0.25, Time: 1.0, TimeFloorNS: 1e6})
	if len(regs) != 1 || regs[0].Metric != "accesses" {
		t.Fatalf("regs = %v, want one accesses regression", regs)
	}
	// 20% growth stays under a 25% threshold.
	cur[0].Metrics["accesses"] = 120
	if regs := Compare(base, cur, Thresholds{Count: 0.25, Time: 1.0, TimeFloorNS: 1e6}); len(regs) != 0 {
		t.Errorf("regs = %v, want none at +20%%", regs)
	}
}

func TestCompareTimeFloor(t *testing.T) {
	base := []Result{
		mk("BenchmarkFast", map[string]float64{"ns/op": 50_000}),
		mk("BenchmarkSlow", map[string]float64{"ns/op": 50_000_000}),
	}
	cur := []Result{
		mk("BenchmarkFast", map[string]float64{"ns/op": 500_000}),     // 10x, but under the floor
		mk("BenchmarkSlow", map[string]float64{"ns/op": 120_000_000}), // 2.4x over the floor
	}
	regs := Compare(base, cur, Thresholds{Count: 0.25, Time: 1.0, TimeFloorNS: 5e6})
	if len(regs) != 1 || regs[0].Name != "BenchmarkSlow" {
		t.Fatalf("regs = %v, want only the slow benchmark gated", regs)
	}
	// 1.6x stays under a 2x time threshold.
	cur[1].Metrics["ns/op"] = 80_000_000
	if regs := Compare(base, cur, Thresholds{Count: 0.25, Time: 1.0, TimeFloorNS: 5e6}); len(regs) != 0 {
		t.Errorf("regs = %v, want none at 1.6x under a 2x time threshold", regs)
	}
}

func TestCompareIgnoresUngatedAndUnmatched(t *testing.T) {
	base := []Result{
		mk("BenchmarkGone", map[string]float64{"accesses": 1}),
		mk("BenchmarkB", map[string]float64{"%saved": 80, "first-answer-µs": 10}),
	}
	cur := []Result{
		mk("BenchmarkNew", map[string]float64{"accesses": 1e9}),
		mk("BenchmarkB", map[string]float64{"%saved": 1, "first-answer-µs": 1e9}),
	}
	if regs := Compare(base, cur, Thresholds{Count: 0.25, Time: 1.0, TimeFloorNS: 1e6}); len(regs) != 0 {
		t.Errorf("regs = %v, want none: unmatched and ungated metrics must pass", regs)
	}
}

func TestTimeDeltasInformational(t *testing.T) {
	base := []Result{
		mk("BenchmarkA", map[string]float64{"ns/op": 10_000_000, "accesses": 5}),
		mk("BenchmarkGone", map[string]float64{"ns/op": 1_000}),
		mk("BenchmarkNoTime", map[string]float64{"accesses": 3}),
	}
	cur := []Result{
		mk("BenchmarkA", map[string]float64{"ns/op": 40_000_000, "accesses": 5}),
		mk("BenchmarkNew", map[string]float64{"ns/op": 2_000}),
		mk("BenchmarkNoTime", map[string]float64{"accesses": 3}),
	}
	deltas := TimeDeltas(base, cur)
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkA" {
		t.Fatalf("deltas = %v, want only the benchmark timed on both sides", deltas)
	}
	if d := deltas[0]; d.Ratio != 4 || d.Old != 10_000_000 || d.New != 40_000_000 {
		t.Errorf("delta = %+v, want 4x from 10ms to 40ms", d)
	}
	// A zero time threshold reports the 4x slowdown as a delta only — the
	// gate must stay silent however large the drift.
	if regs := Compare(base, cur, Thresholds{Count: 0.25, TimeFloorNS: 5e6}); len(regs) != 0 {
		t.Errorf("regs = %v, want none with time gating disabled", regs)
	}
	// A positive threshold still gates it.
	if regs := Compare(base, cur, Thresholds{Count: 0.25, Time: 1.0, TimeFloorNS: 5e6}); len(regs) != 1 {
		t.Errorf("regs = %v, want the 4x slowdown gated at 2x", regs)
	}
}

func TestCompareGatesAllocs(t *testing.T) {
	base := []Result{mk("BenchmarkA", map[string]float64{"allocs/op": 100_000, "B/op": 1e6})}
	cur := []Result{mk("BenchmarkA", map[string]float64{"allocs/op": 200_000, "B/op": 9e6})}
	regs := Compare(base, cur, Thresholds{Count: 0.25, Allocs: 0.5})
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %v, want one allocs/op regression (B/op is never gated)", regs)
	}
	// 40% growth stays under a 50% alloc threshold.
	cur[0].Metrics["allocs/op"] = 140_000
	if regs := Compare(base, cur, Thresholds{Count: 0.25, Allocs: 0.5}); len(regs) != 0 {
		t.Errorf("regs = %v, want none at +40%%", regs)
	}
	// Alloc gating off: any growth passes.
	cur[0].Metrics["allocs/op"] = 1e9
	if regs := Compare(base, cur, Thresholds{Count: 0.25}); len(regs) != 0 {
		t.Errorf("regs = %v, want none with alloc gating disabled", regs)
	}
	// A baseline without -benchmem never gates allocs.
	delete(base[0].Metrics, "allocs/op")
	if regs := Compare(base, cur, Thresholds{Count: 0.25, Allocs: 0.5}); len(regs) != 0 {
		t.Errorf("regs = %v, want none without a baseline allocs metric", regs)
	}
}

func TestWriteMarkdown(t *testing.T) {
	base := []Result{mk("BenchmarkA", map[string]float64{"ns/op": 10e6, "allocs/op": 1000, "accesses": 42})}
	cur := []Result{
		mk("BenchmarkA", map[string]float64{"ns/op": 20e6, "allocs/op": 500, "accesses": 42}),
		mk("BenchmarkNew", map[string]float64{"ns/op": 5e6}),
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, base, cur); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"|benchmark|ns/op|allocs/op|accesses|",
		"|A|10ms → 20ms (+100.0%)|1000 → 500 (-50.0%)|42 → 42 (+0.0%)|",
		"|New|5ms (new)|–|–|",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
