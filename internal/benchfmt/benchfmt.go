// Package benchfmt parses the text output of `go test -bench` into a
// stable, benchstat-style JSON shape and compares two such snapshots for
// regressions. It backs the CI benchmark gate (cmd/benchgate): every CI run
// emits its parsed results as an artifact (BENCH_PR6.json) and fails when a
// benchmark regresses beyond a threshold against the committed baseline.
//
// Two classes of metrics are treated differently:
//
//   - count metrics (accesses, roundtrips, accesses/op) are deterministic —
//     the paper's cost model is the number of accesses, so these are the
//     primary regression signal and are gated at the plain threshold;
//   - allocs/op (reported under -benchmem) is deterministic up to scheduler
//     timing — pooling and map-growth effects move it a few percent, not
//     orders of magnitude — so it is gated at its own (wider) threshold;
//   - ns/op is hardware- and load-dependent: by default it is only printed
//     as an informational delta (TimeDeltas); passing a positive time
//     threshold gates it too, and only for benchmarks whose baseline time
//     exceeds a floor (sub-millisecond timings under -benchtime=1x are
//     noise).
//
// Every other reported metric (B/op, %saved, first-answer-µs, …) is
// recorded in the JSON for inspection but never gated: some are
// higher-is-better and all are too noisy at one iteration.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the parsed outcome of one benchmark.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped, so
	// snapshots from machines with different core counts compare.
	Name string `json:"name"`
	// Iterations is the b.N the reported values are averaged over.
	Iterations int `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "accesses", "B/op", ….
	Metrics map[string]float64 `json:"metrics"`
}

// benchLine matches "BenchmarkName-8   3   1234 ns/op   5 accesses".
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.*)$`)

// gomaxprocs strips the trailing "-N" processor-count suffix of a name.
var gomaxprocs = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and returns one Result per benchmark
// line, in input order. Non-benchmark lines (headers, PASS, ok) are
// ignored. A benchmark appearing several times (e.g. -count>1) keeps its
// last occurrence.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	index := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q: %w", sc.Text(), err)
		}
		res := Result{
			Name:       gomaxprocs.ReplaceAllString(m[1], ""),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchfmt: odd value/unit fields in %q", sc.Text())
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q in %q: %w", fields[i], sc.Text(), err)
			}
			res.Metrics[fields[i+1]] = v
		}
		if at, dup := index[res.Name]; dup {
			out[at] = res
			continue
		}
		index[res.Name] = len(out)
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteJSON renders results as indented JSON, sorted by name for stable
// diffs of committed baselines.
func WriteJSON(w io.Writer, results []Result) error {
	sorted := make([]Result, len(results))
	copy(sorted, results)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}

// ReadJSON parses a snapshot written by WriteJSON.
func ReadJSON(r io.Reader) ([]Result, error) {
	var out []Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("benchfmt: bad snapshot: %w", err)
	}
	return out, nil
}

// Regression is one gated metric that got worse beyond the threshold.
type Regression struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Ratio is New/Old (always > 1 for a reported regression).
	Ratio float64 `json:"ratio"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.6g -> %.6g (%.2fx)", r.Name, r.Metric, r.Old, r.New, r.Ratio)
}

// countMetric reports whether a metric is a deterministic access-count
// style metric (the paper's cost model), gated at the plain threshold.
func countMetric(unit string) bool {
	return unit == "accesses" || unit == "roundtrips" ||
		strings.HasSuffix(unit, "accesses/op")
}

// Thresholds bundles the allowed fractional growth per metric class; a
// class whose threshold is <= 0 is not gated.
type Thresholds struct {
	// Count gates the deterministic access-count metrics (accesses,
	// roundtrips, accesses/op) — the paper's cost model.
	Count float64
	// Allocs gates allocs/op, the allocation budget of the integer-tuple
	// hot path. Requires snapshots taken with -benchmem.
	Allocs float64
	// Time gates ns/op, and only for benchmarks whose baseline ns/op is at
	// least TimeFloorNS — wall time under -benchtime=1x is not comparable
	// across machines at the tightness counts are, so this threshold is
	// typically the widest.
	Time float64
	// TimeFloorNS is the baseline ns/op below which time is never gated.
	TimeFloorNS float64
}

// Compare gates current against baseline: each gated metric regresses when
// it grows by more than its class threshold (see Thresholds). Benchmarks
// present on only one side are never regressions (benchmarks come and go;
// the gate protects what both snapshots measure), and so are metrics one
// side lacks (a baseline taken without -benchmem never gates allocs).
func Compare(baseline, current []Result, t Thresholds) []Regression {
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var regs []Regression
	for _, cur := range current {
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		for unit, newV := range cur.Metrics {
			oldV, ok := old.Metrics[unit]
			if !ok || oldV <= 0 {
				continue
			}
			limit := 0.0
			switch {
			case countMetric(unit):
				limit = t.Count
			case unit == "allocs/op":
				limit = t.Allocs
			case unit == "ns/op" && oldV >= t.TimeFloorNS:
				limit = t.Time
			default:
				continue
			}
			if limit <= 0 {
				continue
			}
			if newV > oldV*(1+limit) {
				regs = append(regs, Regression{
					Name: cur.Name, Metric: unit,
					Old: oldV, New: newV, Ratio: newV / oldV,
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// TimeDelta is one benchmark's wall-clock drift between two snapshots.
type TimeDelta struct {
	Name string  `json:"name"`
	Old  float64 `json:"old_ns_op"`
	New  float64 `json:"new_ns_op"`
	// Ratio is New/Old; > 1 means slower than the baseline.
	Ratio float64 `json:"ratio"`
}

func (d TimeDelta) String() string {
	return fmt.Sprintf("%s ns/op: %.6g -> %.6g (%.2fx)", d.Name, d.Old, d.New, d.Ratio)
}

// WriteMarkdown renders a benchstat-style delta table of current against
// baseline as GitHub-flavored markdown — one row per benchmark, the
// ns/op, allocs/op and accesses columns each showing old → new (±%). CI
// appends it to the job summary so a PR's perf drift is readable without
// downloading artifacts. Benchmarks absent from the baseline show "new";
// with a nil baseline every row does.
func WriteMarkdown(w io.Writer, baseline, current []Result) error {
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	sorted := make([]Result, len(current))
	copy(sorted, current)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	cell := func(cur Result, unit string, format func(float64) string) string {
		newV, ok := cur.Metrics[unit]
		if !ok {
			return "–"
		}
		old, haveOld := base[cur.Name]
		oldV, okOld := old.Metrics[unit]
		if !haveOld || !okOld || oldV <= 0 {
			return fmt.Sprintf("%s (new)", format(newV))
		}
		return fmt.Sprintf("%s → %s (%+.1f%%)", format(oldV), format(newV), (newV/oldV-1)*100)
	}
	secs := func(ns float64) string { return fmt.Sprintf("%.3gms", ns/1e6) }
	count := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

	if _, err := fmt.Fprintf(w, "### Benchmarks vs baseline\n\n|benchmark|ns/op|allocs/op|accesses|\n|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, cur := range sorted {
		name := strings.TrimPrefix(cur.Name, "Benchmark")
		if _, err := fmt.Fprintf(w, "|%s|%s|%s|%s|\n",
			name, cell(cur, "ns/op", secs), cell(cur, "allocs/op", count), cell(cur, "accesses", count)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// TimeDeltas reports the ns/op drift of every benchmark present in both
// snapshots, sorted by name — the informational companion to Compare for
// the metric too noisy to gate under -benchtime=1x.
func TimeDeltas(baseline, current []Result) []TimeDelta {
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var out []TimeDelta
	for _, cur := range current {
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		oldV, newV := old.Metrics["ns/op"], cur.Metrics["ns/op"]
		if oldV <= 0 || newV <= 0 {
			continue
		}
		out = append(out, TimeDelta{Name: cur.Name, Old: oldV, New: newV, Ratio: newV / oldV})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
