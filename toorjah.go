// Package toorjah is a Go implementation of Toorjah, the query answering
// and optimization system of Andrea Calì and Davide Martinenghi, "Querying
// Data under Access Limitations", ICDE 2008.
//
// Toorjah answers conjunctive queries over relational sources that can only
// be probed through access patterns: some arguments must be bound by a
// constant before a source returns anything (as with web forms or wrapped
// legacy files). Answering such queries may require recursive query plans
// that probe relations the query never mentions; the dominant cost is the
// number of accesses. Toorjah builds a dependency graph of the schema and
// query, prunes it with a greatest-fixpoint algorithm to the provably
// relevant sources and value flows, and executes a ⊂-minimal plan — one
// that no other plan strictly beats on accesses on every database instance
// — with early failure detection, per-relation access deduplication, and
// optionally a parallel pipelined engine that streams answers as they are
// found.
//
// # Quick start
//
//	sch, _ := toorjah.ParseSchema(`
//	    artist^ioo(Artist, Nation, Year)
//	    song^oio(Title, Year, Artist)
//	    album^oo(Artist, Album)`)
//	sys := toorjah.NewSystem(sch)
//	sys.BindRows("artist", rows...)            // or sys.Bind(rel, wrapper)
//	q, _ := sys.Prepare("q(N) :- artist(A, N, Y1), song(volare, Y2, A)")
//	res, _ := q.Execute(ctx)
//	fmt.Println(res.SortedAnswers(), res.TotalAccesses())
//
// Execute is context-first: the context cancels the extraction (returning
// the answers derived so far as a truncated, sound subset) and carries the
// query's observability baggage down to the sources. Functional options
// select the executor and shape the run — WithExecutor picks the
// fast-failing batch strategy (default), the parallel pipelined engine or
// the naive reference algorithm; OnAnswer streams answers as they are
// derived (and alone implies the pipelined engine); WithLimit caps the
// answers; WithExecOptions opens the full executor-level Options block:
//
//	res, _ = q.Execute(ctx, toorjah.WithLimit(10),
//	    toorjah.OnAnswer(func(t toorjah.Tuple) { fmt.Println(t.Strings()) }))
//
// Unions of conjunctive queries are first-class too: PrepareUCQ takes one
// disjunct per line (same head predicate and arity), and the resulting
// UnionQuery executes its disjuncts concurrently — or streams deduplicated
// union answers via Stream — with per-relation statistics merged across
// disjuncts:
//
//	u, _ := sys.PrepareUCQ("q(N) :- artist(A, N, Y)\nq(N) :- song(N, Y, A)")
//	ures, _ := u.Execute(ctx)
//
// A System can keep a cross-query access cache (see WithCache): since the
// dominant cost is the number of accesses, a long-running service that
// remembers extractions across queries — with LRU bounds, TTL expiry,
// negative-result caching and collapsing of concurrent identical probes —
// answers repeat traffic without touching the sources at all. cmd/toorjahd
// serves exactly that setup over HTTP.
//
// First-time probes are batched (see WithMaxBatch): up to MaxBatch access
// bindings of one relation ride a single source round trip, amortising
// per-probe latency without changing answers or access counts — a batch is
// just N accesses. Result.Stats reports the round trips as Batches.
//
// Sources need not be local at all (see WithRemote): relations served by a
// remote toorjahd peer attach as federated sources probed over HTTP — a
// batch of bindings per round trip, with retries, circuit breakers and
// connection pooling — so a deployment can shard its relations across
// nodes and answer queries over the union, caching and batching included.
//
// Relations are live: System.Insert, System.Delete and System.LoadCSV
// mutate a bound relation's table while queries run. Every mutating batch
// advances the relation's epoch (see RelationEpoch / DataInfo); executors
// pin one immutable version of every relation per execution, and the
// cross-query cache keys entries by epoch, so concurrent queries always
// answer over a consistent snapshot and post-mutation queries see the new
// rows — no rebind, no restart, no explicit invalidation needed. toorjahd
// exposes the same capability over HTTP as POST /ingest.
//
// The internal packages expose every stage of the pipeline (schema, cq,
// dgraph, plan, exec, …) for programmatic use; this package is the
// high-level façade. ARCHITECTURE.md maps the paper's concepts onto the
// packages.
package toorjah

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"toorjah/internal/cache"
	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/dgraph"
	"toorjah/internal/exec"
	"toorjah/internal/obs"
	"toorjah/internal/plan"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// Re-exported types, so that most applications only import this package.
type (
	// Schema is a database schema of relations with access patterns.
	Schema = schema.Schema
	// Relation is one relation schema.
	Relation = schema.Relation
	// CQ is a conjunctive query.
	CQ = cq.CQ
	// UCQ is a parsed union of conjunctive queries (see PrepareUCQFrom).
	UCQ = cq.UCQ
	// Result is the outcome of one execution.
	Result = exec.Result
	// Tuple is one answer row.
	Tuple = datalog.Tuple
	// Plan is a ⊂-minimal query plan.
	Plan = plan.Plan
	// Wrapper is a data source with access limitations.
	Wrapper = source.Wrapper
	// Row is one stored tuple.
	Row = storage.Row
	// CommitEvent is one applied mutation batch, as delivered to a commit
	// hook (see SetCommitHook): the rows that actually changed a relation
	// and the epoch the batch advanced it to.
	CommitEvent = storage.CommitEvent
	// Options is the unified executor-level configuration (ablation
	// switches, cross-query cache, batching, pipelined tuning, union
	// parallelism); see WithExecOptions.
	Options = exec.Options
	// CacheOptions configures the cross-query access cache.
	CacheOptions = cache.Options
	// AccessCache is a shared cross-query access cache (see WithCache).
	AccessCache = cache.Cache
	// CacheStats is the per-relation accounting of an access cache.
	CacheStats = cache.RelStats
	// SourceStats is the per-relation access accounting of one execution
	// (probes, source round trips, extracted tuples).
	SourceStats = source.Stats
	// MetricsRegistry is a dependency-free metrics registry rendered in
	// the Prometheus text exposition format (see internal/obs); toorjahd
	// serves one at GET /metrics.
	MetricsRegistry = obs.Registry
	// ProbeMetricsHandles are the source-level metric families (probe
	// latency and batch-size histograms, per-relation access counters) fed
	// by instrumented executions; see WithProbeMetrics.
	ProbeMetricsHandles = obs.ProbeMetrics
	// ExecObs is one execution's observability bundle: set it on
	// Options.Obs to count the execution's demanded accesses (cache hits
	// included) alongside the probes Result.Stats reports — the difference
	// is the execution's cache-hit count.
	ExecObs = obs.ExecObs
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewProbeMetricsHandles registers the source-level metric families on r.
func NewProbeMetricsHandles(r *MetricsRegistry) *ProbeMetricsHandles {
	return obs.NewProbeMetrics(r)
}

// NewAccessCache creates a standalone access cache, for sharing between
// several Systems over the same sources (see WithSharedCache).
func NewAccessCache(opts CacheOptions) *AccessCache { return cache.New(opts) }

// ParseSchema parses a schema in the paper's notation, one relation per
// line: "rev^ooi(Person, ConfName, Year)".
func ParseSchema(text string) (*Schema, error) { return schema.Parse(text) }

// ParseQuery parses a conjunctive query in Datalog notation:
// "q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)".
func ParseQuery(text string) (*CQ, error) { return cq.Parse(text) }

// System binds a schema to data sources and prepares queries against them.
// With a cache configured (WithCache / WithSharedCache), every execution —
// whichever executor, CQ or UCQ — serves its accesses
// through the shared cross-query cache; Result.Stats then counts only the
// probes that actually reached the sources, so a fully cached run reports
// zero accesses.
type System struct {
	sch         *schema.Schema
	reg         *source.Registry
	cache       *cache.Cache
	sharedCache bool
	// Latency is applied to sources bound through BindRows/BindTable,
	// simulating remote sources.
	Latency time.Duration
	// MaxBatch is the default batch bound of every execution: how many
	// access bindings are folded into one source round trip. 0 means the
	// executor default (exec.DefaultMaxBatch); negative disables batching.
	MaxBatch int

	// probeMetrics, when set (WithProbeMetrics), instruments every
	// execution with the shared source-level metric families.
	probeMetrics *obs.ProbeMetrics

	// adaptive, when set (WithAdaptiveOrdering), feeds live per-relation
	// row counts into plan linearization and re-linearizes prepared queries
	// when the data behind them moves.
	adaptive bool

	// Federation state (see remote.go): client tuning for attached peers,
	// the WithRemote specs not yet attached, and the attached peers.
	remoteOpts    RemoteOptions
	remoteMu      sync.Mutex
	pendingRemote []pendingAttach
	peers         []*RemotePeer

	// commitHook, when set (SetCommitHook), is installed on every local
	// table the system binds — the write-ahead-log attachment point.
	commitHook func(CommitEvent)
}

// SystemOption configures a System at construction.
type SystemOption func(*System)

// WithCache equips the system with a private cross-query access cache.
func WithCache(opts CacheOptions) SystemOption {
	return func(s *System) { s.cache = cache.New(opts) }
}

// WithSharedCache makes the system serve accesses through an existing
// cache, shared with other systems bound to the same logical sources. A
// system sharing a cache must bind every relation its queries touch:
// Prepare refuses to auto-bind empty sources for it, since their (empty)
// extractions would be negative-cached under keys other systems rely on.
func WithSharedCache(c *AccessCache) SystemOption {
	return func(s *System) { s.cache, s.sharedCache = c, true }
}

// WithLatency sets the simulated per-access latency of sources bound
// through BindRows/BindTable/BindDatabase.
func WithLatency(d time.Duration) SystemOption {
	return func(s *System) { s.Latency = d }
}

// WithMaxBatch sets the batch bound of every execution: up to n access
// bindings of one relation ride a single source round trip. Batching never
// changes answers or access counts — a batch is just N accesses — it only
// amortises per-probe overhead. 0 keeps the executor default (16); negative
// disables batching.
func WithMaxBatch(n int) SystemOption {
	return func(s *System) { s.MaxBatch = n }
}

// WithProbeMetrics instruments every execution of the system with the
// given source-level metric families: probe latency and batch-size
// histograms and per-relation access/round-trip/tuple counters, recorded
// below the cross-query cache so only probes that actually reach a source
// count. The instruments are atomic — no locks or allocations on the probe
// path. Executions that bring their own Options.Obs keep it (the probe
// families are filled in when unset), so a server can pass a per-query
// ExecObs and read its demanded-access count afterwards.
func WithProbeMetrics(pm *ProbeMetricsHandles) SystemOption {
	return func(s *System) { s.probeMetrics = pm }
}

// WithAdaptiveOrdering feeds live per-relation row counts (read from the
// same pinned snapshots DataInfo reports) into the plan linearization of
// every prepared query: among order-equivalent source groups, relations
// with fewer live rows are probed first — the paper's "place small tables
// first" (§IV) driven by the actual data instead of static estimates.
// Prepared queries stay adaptive after preparation: an execution that finds
// the epoch of a relevant relation has advanced re-linearizes the plan
// against the current counts before running. Only the linearization moves —
// the set of sources probed and the ⊂-minimality of the plan are decided by
// the GFP optimization and never change, so answers are identical; what
// changes is how early a doomed extraction can fail, i.e. the access count.
// Relations not backed by a local table (federated peers, custom wrappers)
// have unknown cardinality and never demote a group (see
// plan.OrderOptions.Sizes).
func WithAdaptiveOrdering() SystemOption {
	return func(s *System) { s.adaptive = true }
}

// NewSystem creates a system over the schema with no sources bound.
func NewSystem(sch *Schema, opts ...SystemOption) *System {
	s := &System{sch: sch, reg: source.NewRegistry()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Schema returns the system's schema.
func (s *System) Schema() *Schema { return s.sch }

// AccessCache returns the system's cross-query cache, or nil when none is
// configured; use it to read hit/miss statistics or to invalidate entries.
func (s *System) AccessCache() *AccessCache { return s.cache }

// Bind attaches a wrapper as the source of its relation, dropping any
// cached accesses of that relation. Executions already in flight complete
// against the sources they started with and may re-populate cache entries
// read from the previous source; rebind quiescently, or configure a TTL
// when sources change under live traffic.
func (s *System) Bind(w Wrapper) {
	if s.commitHook != nil {
		if ts, ok := w.(interface{ Table() *storage.Table }); ok {
			ts.Table().SetCommitHook(s.commitHook)
		}
	}
	// Swap first, invalidate second: an execution snapshotting the registry
	// between the two steps reads the new source, and the invalidation
	// merely drops its fresh entries (a wasted probe, never staleness).
	s.reg.Bind(w)
	if s.cache != nil {
		s.cache.Invalidate(w.Relation().Name)
	}
}

// BindTable attaches an in-memory table as the source of relation name.
func (s *System) BindTable(name string, t *storage.Table) error {
	rel := s.sch.Relation(name)
	if rel == nil {
		return fmt.Errorf("toorjah: unknown relation %s", name)
	}
	src, err := source.NewTableSource(rel, t)
	if err != nil {
		return err
	}
	if s.Latency > 0 {
		src = src.WithLatency(s.Latency)
	}
	s.Bind(src)
	return nil
}

// BindRows attaches the given rows as the source of relation name.
func (s *System) BindRows(name string, rows ...Row) error {
	rel := s.sch.Relation(name)
	if rel == nil {
		return fmt.Errorf("toorjah: unknown relation %s", name)
	}
	t := storage.NewTable(name, rel.Arity())
	t.InsertAll(rows)
	return s.BindTable(name, t)
}

// BindDatabase attaches every relation to the same-named table of db
// (missing tables become empty sources).
func (s *System) BindDatabase(db *storage.Database) error {
	reg, err := source.FromDatabase(s.sch, db, s.Latency)
	if err != nil {
		return err
	}
	s.reg = reg
	if s.cache != nil {
		s.cache.Clear() // after the swap, for the same reason as Bind
	}
	s.applyCommitHook()
	return nil
}

// SetCommitHook installs fn on every local table the system has bound or
// will bind: each applied Insert/Delete batch is delivered, with its
// post-batch epoch, before the mutating call returns — so an ingest
// acknowledgement cannot outrun whatever fn persists. This is how the
// write-ahead log observes the system. Install the hook while the system
// is quiescent (at boot, before serving traffic); a nil fn is ignored
// rather than uninstalling, keeping the zero value inert.
func (s *System) SetCommitHook(fn func(CommitEvent)) {
	if fn == nil {
		return
	}
	s.commitHook = fn
	s.applyCommitHook()
}

// applyCommitHook sweeps the hook onto every currently bound local table.
func (s *System) applyCommitHook() {
	if s.commitHook == nil {
		return
	}
	for _, name := range s.reg.Names() {
		if ts, ok := s.reg.Source(name).(interface{ Table() *storage.Table }); ok {
			ts.Table().SetCommitHook(s.commitHook)
		}
	}
}

// RelationDump is one relation's pinned live contents, as returned by
// DataSnapshot.
type RelationDump struct {
	Arity int
	Epoch uint64
	Rows  []Row
}

// DataSnapshot reads a consistent pinned version of every relation backed
// by a local table: the live rows and the epoch they correspond to. Each
// relation's dump is internally consistent (one immutable snapshot per
// table); the write-ahead log uses this as its snapshot source, where
// cross-relation skew is harmless because replay reconciles per relation
// by epoch.
func (s *System) DataSnapshot() map[string]RelationDump {
	out := make(map[string]RelationDump)
	for _, name := range s.reg.Names() {
		ts, ok := s.reg.Source(name).(interface{ Table() *storage.Table })
		if !ok {
			continue
		}
		rel := s.sch.Relation(name)
		if rel == nil {
			continue
		}
		snap := ts.Table().Snapshot()
		out[name] = RelationDump{Arity: rel.Arity(), Epoch: snap.Epoch(), Rows: snap.Rows()}
	}
	return out
}

// mutableTable returns the live table behind a relation, auto-binding an
// empty one when the relation has no source yet; relations sourced from a
// peer or a custom wrapper have no local table to mutate.
func (s *System) mutableTable(name string) (*storage.Table, error) {
	rel := s.sch.Relation(name)
	if rel == nil {
		return nil, fmt.Errorf("toorjah: unknown relation %s", name)
	}
	src := s.reg.Source(name)
	if src == nil {
		if err := s.BindRows(name); err != nil {
			return nil, err
		}
		src = s.reg.Source(name)
	}
	// Duck-typed rather than asserting *source.TableSource, so a decorator
	// that exposes its backing table stays mutable.
	ts, ok := src.(interface{ Table() *storage.Table })
	if !ok {
		return nil, fmt.Errorf("toorjah: relation %s is not backed by a local table", name)
	}
	return ts.Table(), nil
}

// mutated follows every successful mutation of a relation: it drops the
// relation's cached accesses eagerly. Correctness does not depend on it —
// cache entries are keyed by the relation's data epoch, which the mutation
// just advanced, so stale entries are already unreachable — but freeing
// them keeps the LRU working for live data.
func (s *System) mutated(name string) {
	if s.cache != nil {
		s.cache.Invalidate(name)
	}
}

// Insert appends rows to the live table of a relation, as one batch:
// one copy-on-write step, one new epoch (when anything was actually new —
// duplicates are discarded). It returns the number of rows added. Queries
// in flight keep answering over the version they pinned at start; queries
// prepared earlier need no re-Prepare — their next execution reads the new
// version.
func (s *System) Insert(name string, rows ...Row) (int, error) {
	t, err := s.mutableTable(name)
	if err != nil {
		return 0, err
	}
	if err := validateRows(name, rows, t.Arity); err != nil {
		return 0, err
	}
	n := t.InsertAll(rows)
	if n > 0 {
		s.mutated(name)
	}
	return n, nil
}

// validateRows rejects rows a table could not store faithfully: wrong
// arity, and values containing NUL. Storage itself no longer cares — rows
// are interned to symbol IDs and indexed on packed integer keys — but the
// wire formats still do: the HTTP probe protocol and Access.Key join
// values with NUL, so a NUL inside a value would let two distinct bindings
// collide at the federation boundary (unreachable from CSV, reachable from
// JSON ingestion).
func validateRows(name string, rows []Row, arity int) error {
	for _, r := range rows {
		if len(r) != arity {
			return fmt.Errorf("toorjah: relation %s: row %v has arity %d, want %d",
				name, []string(r), len(r), arity)
		}
		for _, v := range r {
			if strings.ContainsRune(v, '\x00') {
				return fmt.Errorf("toorjah: relation %s: row value contains a NUL byte", name)
			}
		}
	}
	return nil
}

// Delete removes rows from the live table of a relation, as one batch (one
// new epoch when anything was actually removed), returning the number of
// rows removed. The same consistency contract as Insert applies.
func (s *System) Delete(name string, rows ...Row) (int, error) {
	t, err := s.mutableTable(name)
	if err != nil {
		return 0, err
	}
	// Same validation as Insert: a malformed row must be an error, not a
	// silent "row was absent" no-op.
	if err := validateRows(name, rows, t.Arity); err != nil {
		return 0, err
	}
	n := t.DeleteAll(rows)
	if n > 0 {
		s.mutated(name)
	}
	return n, nil
}

// LoadCSV parses CSV data (ReadCSV's tolerant dialect) and inserts the rows
// into the relation's live table as one batch, returning the number of rows
// added. Nothing is applied when parsing fails partway.
func (s *System) LoadCSV(name string, r io.Reader) (int, error) {
	rel := s.sch.Relation(name)
	if rel == nil {
		return 0, fmt.Errorf("toorjah: unknown relation %s", name)
	}
	rows, err := storage.ReadCSVRows(name, rel.Arity(), r)
	if err != nil {
		return 0, err
	}
	return s.Insert(name, rows...)
}

// RelationEpoch returns a relation's current data epoch: 0 when the
// relation is unbound or its source is unversioned, otherwise the version
// number advanced by every mutating batch (local tables start at 1;
// federated sources report the peer's last observed epoch).
func (s *System) RelationEpoch(name string) uint64 {
	src := s.reg.Source(name)
	if src == nil {
		return 0
	}
	return source.EpochOf(src)
}

// RelationInfo describes the live data behind one bound relation.
type RelationInfo struct {
	// Epoch is the relation's data version; 0 means unversioned.
	Epoch uint64
	// Rows is the live row count, or -1 when the source is not a local
	// table (remote peers and custom wrappers do not expose it).
	Rows int
	// ModifiedAt is when the local table's data last changed — the initial
	// load counts, so it is zero only for an empty never-touched table or
	// when the source is not a local table. LastIngest in toorjahd's
	// /stats separates HTTP ingestion from the boot-time load.
	ModifiedAt time.Time
	// Local reports whether the relation is served from a local table.
	Local bool
}

// DataInfo snapshots the data freshness of every bound relation: epoch,
// live row count and last-modification time. toorjahd serves it in /stats
// so operators can see at a glance which relations moved and when.
func (s *System) DataInfo() map[string]RelationInfo {
	out := make(map[string]RelationInfo)
	for _, name := range s.reg.Names() {
		src := s.reg.Source(name)
		info := RelationInfo{Epoch: source.EpochOf(src), Rows: -1}
		// The same duck type as mutableTable: whatever Insert can mutate,
		// DataInfo reports as local.
		if ts, ok := src.(interface{ Table() *storage.Table }); ok {
			snap := ts.Table().Snapshot()
			info.Rows = snap.Len()
			info.ModifiedAt = snap.ModifiedAt()
			info.Local = true
		}
		out[name] = info
	}
	return out
}

// AdaptiveOrdering reports whether the system feeds live relation sizes
// into plan linearization (see WithAdaptiveOrdering).
func (s *System) AdaptiveOrdering() bool { return s.adaptive }

// RelationSizes snapshots the live row count of every relation backed by a
// local table — the statistics adaptive ordering runs on. Relations served
// by federated peers or custom wrappers are absent (unknown), not zero.
func (s *System) RelationSizes() map[string]int {
	sizes := make(map[string]int)
	for name, info := range s.DataInfo() {
		if info.Local {
			sizes[name] = info.Rows
		}
	}
	return sizes
}

// execOpts threads the system's cross-query cache, batch bound and probe
// metrics into executor options.
func (s *System) execOpts(o Options) Options {
	if o.Cache == nil {
		o.Cache = s.cache
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = s.MaxBatch
	}
	if s.probeMetrics != nil {
		if o.Obs == nil {
			o.Obs = &obs.ExecObs{Probe: s.probeMetrics}
		} else if o.Obs.Probe == nil {
			o.Obs.Probe = s.probeMetrics
		}
	}
	return o
}

// ensureBound verifies every schema relation has a source, auto-binding
// empty sources for the missing ones — except when the system shares its
// cache with others: an implicitly empty source would poison the shared
// cache with negative entries for relations the other systems have data
// for, so missing bindings are an error there. Pending WithRemote peers
// attach first, so their relations are never mistaken for missing.
func (s *System) ensureBound() error {
	//toorjahvet:allow ctx-first (Prepare is not context-first; the lazy attach path has no caller context to thread)
	if err := s.AttachRemotes(context.Background()); err != nil {
		return err
	}
	for _, rel := range s.sch.Relations() {
		if s.reg.Source(rel.Name) == nil {
			if s.sharedCache {
				return fmt.Errorf("toorjah: relation %s has no source bound; a system sharing an access cache must bind every relation explicitly", rel.Name)
			}
			if err := s.BindRows(rel.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Query is a prepared query: the validated, minimized, optimized and
// planned form of a conjunctive query against a System.
type Query struct {
	sys      *System
	pipeline *core.Pipeline

	// Adaptive-ordering state (WithAdaptiveOrdering): the linearization in
	// use and the relation epochs it was computed against. planMu guards
	// both; they stay nil on non-adaptive systems, where pipeline.Plan is
	// the only plan there will ever be.
	planMu     sync.Mutex
	livePlan   *plan.Plan
	planEpochs map[string]uint64
}

// Prepare validates the query text against the schema and builds the
// optimized plan.
func (s *System) Prepare(queryText string) (*Query, error) {
	q, err := cq.Parse(queryText)
	if err != nil {
		return nil, err
	}
	return s.PrepareCQ(q)
}

// PrepareCQ is Prepare for an already-parsed query.
func (s *System) PrepareCQ(q *CQ) (*Query, error) {
	if err := s.ensureBound(); err != nil {
		return nil, err
	}
	var opts core.Options
	if s.adaptive {
		opts.Order = plan.OrderOptions{Sizes: s.RelationSizes()}
	}
	p, err := core.PrepareOpts(s.sch, q, opts)
	if err != nil {
		return nil, err
	}
	pq := &Query{sys: s, pipeline: p}
	if s.adaptive && p.Plan != nil {
		pq.livePlan = p.Plan
		pq.planEpochs = pq.snapshotEpochs()
	}
	return pq, nil
}

// snapshotEpochs records the current data epoch of every relation the
// optimized plan may access — the staleness check of adaptive ordering.
func (q *Query) snapshotEpochs() map[string]uint64 {
	eps := make(map[string]uint64)
	for _, name := range q.pipeline.Opt.RelevantRelations() {
		eps[name] = q.sys.RelationEpoch(name)
	}
	return eps
}

// Answerable reports whether the query can return any answer on any
// instance under the access limitations.
func (q *Query) Answerable() bool { return q.pipeline.Answerable() }

// Plan returns the ⊂-minimal plan, or nil for non-answerable queries. On an
// adaptive system (WithAdaptiveOrdering) it is the linearization currently
// in use, which executions refresh when relation epochs advance.
func (q *Query) Plan() *Plan {
	if q.sys.adaptive {
		q.planMu.Lock()
		defer q.planMu.Unlock()
		if q.livePlan != nil {
			return q.livePlan
		}
	}
	return q.pipeline.Plan
}

// RelevantRelations returns the relations the optimized plan may access.
func (q *Query) RelevantRelations() []string { return q.pipeline.Opt.RelevantRelations() }

// IrrelevantRelations returns the queryable relations the optimization
// proved useless for this query.
func (q *Query) IrrelevantRelations() []string { return q.pipeline.Opt.IrrelevantRelations() }

// Orderable reports whether the (minimized) query is executable without
// recursion by some left-to-right ordering of its own atoms that respects
// the access patterns; when it is not — like the paper's Example 1 — the
// recursive plan of Execute is the only way to obtain answers.
func (q *Query) Orderable() bool {
	_, ok := plan.Orderable(q.pipeline.Query, q.sys.sch)
	return ok
}

// IsConnectionQuery reports whether the query falls in the restricted
// connection-query class of earlier relevance work (Section VI); Toorjah
// handles arbitrary conjunctive queries.
func (q *Query) IsConnectionQuery() bool {
	return cq.IsConnectionQuery(q.pipeline.Query, q.sys.sch)
}

// ForAllMinimal reports whether the plan is ∀-minimal: no other plan makes
// fewer accesses on any instance (Section IV: this holds exactly when the
// source ordering is unique).
func (q *Query) ForAllMinimal() bool {
	return q.pipeline.Plan != nil && q.pipeline.Plan.ForAllMinimal()
}

// DGraphDOT renders the query's full d-graph in Graphviz DOT format;
// deleted arcs are dashed.
func (q *Query) DGraphDOT() string {
	return dgraph.DOT(q.pipeline.Graph, q.pipeline.Opt.Solution, true)
}

// OptimizedDOT renders the optimized d-graph in Graphviz DOT format.
func (q *Query) OptimizedDOT() string { return dgraph.DOTOptimized(q.pipeline.Opt) }

// emptyResult is the constant answer of non-answerable queries.
func (q *Query) emptyResult() *Result {
	return &Result{
		Answers: datalog.NewRelation(q.pipeline.Query.Name, len(q.pipeline.Query.Head)),
		Stats:   map[string]source.Stats{},
	}
}

// PipeOptions tunes the deprecated Stream entry points. The outer fields
// shadow the same-named fields of the embedded Options; flatten folds them
// into one executor-level block.
//
// Deprecated: use Execute with OnAnswer (and WithExecOptions for the
// tuning knobs); pass the context as Execute's first argument instead of
// the Ctx field.
type PipeOptions struct {
	// QueueLen is the per-wrapper access queue capacity; default 32.
	QueueLen int
	// Parallelism is the number of concurrent probes per relation;
	// default 4.
	Parallelism int
	// Limit, when positive, stops the extraction at that many answers.
	Limit int
	// Ctx, when non-nil, cancels the extraction.
	Ctx context.Context
	Options
}

// flatten folds the shadowing outer fields into the embedded Options.
//
//toorjahvet:allow no-deprecated-shims (flatten exists only to serve the deprecated Stream shims)
func (o PipeOptions) flatten() Options {
	out := o.Options
	if o.QueueLen != 0 {
		out.QueueLen = o.QueueLen
	}
	if o.Parallelism != 0 {
		out.Parallelism = o.Parallelism
	}
	if o.Limit != 0 {
		out.Limit = o.Limit
	}
	return out
}

// ExecuteOpts runs the fast-failing strategy with ablation options.
//
// Deprecated: use Execute(ctx, WithExecOptions(opts)).
func (q *Query) ExecuteOpts(opts Options) (*Result, error) {
	return q.Execute(context.Background(), WithExecOptions(opts))
}

// ExecuteNaive runs the reference algorithm of the paper's Fig. 1 (probe
// everything probeable until fixpoint).
//
// Deprecated: use Execute(ctx, WithExecutor(ExecutorNaive)).
func (q *Query) ExecuteNaive() (*Result, error) {
	return q.Execute(context.Background(), WithExecutor(ExecutorNaive))
}

// ExecuteNaiveOpts is ExecuteNaive with options.
//
// Deprecated: use Execute(ctx, WithExecutor(ExecutorNaive),
// WithExecOptions(opts)).
func (q *Query) ExecuteNaiveOpts(opts Options) (*Result, error) {
	return q.Execute(context.Background(),
		WithExecutor(ExecutorNaive), WithExecOptions(opts))
}

// Stream runs the parallel pipelined engine; onAnswer is invoked for every
// answer the moment it becomes derivable (for queries without negation) or
// at completion (with negation).
//
// Deprecated: use Execute(ctx, OnAnswer(onAnswer)) — OnAnswer alone
// selects the pipelined engine.
func (q *Query) Stream(opts PipeOptions, onAnswer func(Tuple)) (*Result, error) {
	return q.Execute(opts.Ctx, WithExecutor(ExecutorPipelined),
		WithExecOptions(opts.flatten()), OnAnswer(onAnswer))
}
